package hsis

// Cross-validation of the symbolic engine against a brute-force explicit
// interpreter: random small BLIF-MV models are executed both ways and
// the transition relations, reachable sets, and CTL fixpoints must
// agree exactly. This is the repository's deepest correctness test — it
// exercises parser, network compilation, early quantification, image
// computation and the CTL evaluator against an independent semantics.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/ctl"
	"hsis/internal/network"
	"hsis/internal/reach"
)

// explicitModel interprets a flat BLIF-MV model by enumeration.
type explicitModel struct {
	m        *blifmv.Model
	varNames []string // all variables, deterministic order
	cards    []int
	index    map[string]int
	latchOut []int // variable indices of latch outputs, model order
	latchIn  []int
	inits    [][]int
}

func newExplicit(m *blifmv.Model) *explicitModel {
	e := &explicitModel{m: m, index: map[string]int{}}
	add := func(n string) {
		if _, ok := e.index[n]; ok {
			return
		}
		e.index[n] = len(e.varNames)
		e.varNames = append(e.varNames, n)
		e.cards = append(e.cards, m.Var(n).Card)
	}
	for _, n := range m.VarDecl {
		add(n)
	}
	for _, t := range m.Tables {
		for _, c := range t.Inputs {
			add(c)
		}
		for _, c := range t.Outputs {
			add(c)
		}
	}
	for _, l := range m.Latches {
		add(l.Input)
		add(l.Output)
		e.latchOut = append(e.latchOut, e.index[l.Output])
		e.latchIn = append(e.latchIn, e.index[l.Input])
		e.inits = append(e.inits, l.Init)
	}
	return e
}

// rowMatches checks one table row against a full assignment.
func (e *explicitModel) rowMatches(t *blifmv.Table, r blifmv.Row, asg []int) bool {
	for i, vs := range r.In {
		if !vs.Contains(asg[e.index[t.Inputs[i]]]) {
			return false
		}
	}
	for j, o := range r.Out {
		v := asg[e.index[t.Outputs[j]]]
		if o.EqInput >= 0 {
			if v != asg[e.index[t.Inputs[o.EqInput]]] {
				return false
			}
		} else if !o.Set.Contains(v) {
			return false
		}
	}
	return true
}

// consistent checks whether a full assignment satisfies every table.
func (e *explicitModel) consistent(asg []int) bool {
	for _, t := range e.m.Tables {
		matched := false
		inCovered := false
		for _, r := range t.Rows {
			inOK := true
			for i, vs := range r.In {
				if !vs.Contains(asg[e.index[t.Inputs[i]]]) {
					inOK = false
					break
				}
			}
			if !inOK {
				continue
			}
			inCovered = true
			if e.rowMatches(t, r, asg) {
				matched = true
				break
			}
		}
		if !matched {
			if t.Default != nil && !inCovered {
				ok := true
				for j, vs := range t.Default {
					if !vs.Contains(asg[e.index[t.Outputs[j]]]) {
						ok = false
						break
					}
				}
				if !ok {
					return false
				}
			} else {
				return false
			}
		}
	}
	return true
}

// stateKey encodes the latch-output values of an assignment.
func (e *explicitModel) stateKey(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// successors enumerates the next-state tuples of one state tuple by
// brute force over all variable assignments.
func (e *explicitModel) successors(state []int) map[string][]int {
	out := map[string][]int{}
	asg := make([]int, len(e.varNames))
	var walk func(i int)
	walk = func(i int) {
		if i == len(e.varNames) {
			if !e.consistent(asg) {
				return
			}
			next := make([]int, len(e.latchIn))
			for k, vi := range e.latchIn {
				next[k] = asg[vi]
			}
			out[e.stateKey(next)] = next
			return
		}
		// latch outputs are pinned to the current state
		for k, vi := range e.latchOut {
			if vi == i {
				asg[i] = state[k]
				walk(i + 1)
				return
			}
		}
		for v := 0; v < e.cards[i]; v++ {
			asg[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	return out
}

// explicitGraph builds the full reachable transition graph.
func (e *explicitModel) graph() (states map[string][]int, edges map[string]map[string]bool) {
	states = map[string][]int{}
	edges = map[string]map[string]bool{}
	var frontier [][]int
	var enumInit func(i int, cur []int)
	enumInit = func(i int, cur []int) {
		if i == len(e.inits) {
			st := append([]int(nil), cur...)
			k := e.stateKey(st)
			if _, ok := states[k]; !ok {
				states[k] = st
				frontier = append(frontier, st)
			}
			return
		}
		for _, v := range e.inits[i] {
			enumInit(i+1, append(cur, v))
		}
	}
	enumInit(0, nil)
	for len(frontier) > 0 {
		st := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		k := e.stateKey(st)
		if edges[k] == nil {
			edges[k] = map[string]bool{}
		}
		for nk, next := range e.successors(st) {
			edges[k][nk] = true
			if _, ok := states[nk]; !ok {
				states[nk] = next
				frontier = append(frontier, next)
			}
		}
	}
	return states, edges
}

// randomModel generates a small well-formed flat model.
func randomModel(rng *rand.Rand) string {
	nLatch := 2 + rng.Intn(2)
	var sb strings.Builder
	sb.WriteString(".model rnd\n")
	cards := make([]int, nLatch)
	for i := range cards {
		cards[i] = 2 + rng.Intn(2) // card 2 or 3
		fmt.Fprintf(&sb, ".mv q%d,d%d %d\n", i, i, cards[i])
	}
	// one free input
	sb.WriteString(".mv in 2\n.table in\n-\n")
	// each latch input driven by a table over (in, some latch outputs)
	for i := 0; i < nLatch; i++ {
		src := rng.Intn(nLatch)
		fmt.Fprintf(&sb, ".table in q%d d%d\n", src, i)
		// rows: for each (in, qsrc) pair, a random (possibly nondet) output set
		for a := 0; a < 2; a++ {
			for b := 0; b < cards[src]; b++ {
				k := 1 + rng.Intn(2) // 1 or 2 permitted values
				seen := map[int]bool{}
				var vals []string
				for len(seen) < k {
					v := rng.Intn(cards[i])
					if !seen[v] {
						seen[v] = true
						vals = append(vals, fmt.Sprint(v))
					}
				}
				entry := vals[0]
				if len(vals) > 1 {
					entry = "{" + strings.Join(vals, ",") + "}"
				}
				fmt.Fprintf(&sb, "%d %d %s\n", a, b, entry)
			}
		}
		fmt.Fprintf(&sb, ".latch d%d q%d\n.reset q%d\n%d\n", i, i, i, rng.Intn(cards[i]))
	}
	sb.WriteString(".end\n")
	return sb.String()
}

func symbolicStateSet(t *testing.T, n *network.Network, e *explicitModel, keys map[string]bool) bdd.Ref {
	t.Helper()
	m := n.Manager()
	set := bdd.False
	for k := range keys {
		vals := strings.Split(k, ",")
		cube := bdd.True
		for i, l := range n.Latches() {
			var v int
			fmt.Sscan(vals[i], &v)
			cube = m.And(cube, l.PS.Eq(v))
		}
		set = m.Or(set, cube)
	}
	return set
}

func TestCrossCheckSymbolicVsExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 25; trial++ {
		src := randomModel(rng)
		d, err := blifmv.ParseString(src, "rnd.mv")
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		flatM, err := blifmv.Flatten(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n, err := network.Build(flatM, network.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e := newExplicit(flatM)
		states, edges := e.graph()

		// 1. reachable sets agree
		res := reach.Forward(n, reach.Options{})
		if got, want := n.NumStates(res.Reached), float64(len(states)); got != want {
			t.Fatalf("trial %d: symbolic reach %v, explicit %v\n%s", trial, got, want, src)
		}
		keys := map[string]bool{}
		for k := range states {
			keys[k] = true
		}
		if symbolicStateSet(t, n, e, keys) != res.Reached {
			t.Fatalf("trial %d: reachable sets differ as sets", trial)
		}

		// 2. per-state images agree
		m := n.Manager()
		for k, st := range states {
			cur := bdd.True
			for i, l := range n.Latches() {
				cur = m.And(cur, l.PS.Eq(st[i]))
			}
			img := reach.Image(n, cur)
			want := symbolicStateSet(t, n, e, edges[k])
			if img != want {
				t.Fatalf("trial %d: image of %s differs", trial, k)
			}
		}

		// 3. CTL fixpoints agree with explicit graph algorithms
		checker := ctl.NewForNetwork(n, nil)
		atomVar := n.Latches()[0].Src.Output
		atom := fmt.Sprintf("%s=0", atomVar)
		for _, formula := range []string{
			"EX " + atom, "EF " + atom, "EG " + atom, "AF " + atom,
		} {
			sat, err := checker.Sat(ctl.MustParse(formula))
			if err != nil {
				t.Fatal(err)
			}
			wantKeys := explicitCTL(e, states, edges, formula, atomVar)
			want := symbolicStateSet(t, n, e, wantKeys)
			// compare on reachable states only
			if m.And(sat, res.Reached) != m.And(want, res.Reached) {
				t.Fatalf("trial %d: %s differs from explicit\n%s", trial, formula, src)
			}
		}
	}
}

// explicitCTL evaluates the four fixpoints on the explicit graph.
func explicitCTL(e *explicitModel, states map[string][]int, edges map[string]map[string]bool, formula, atomVar string) map[string]bool {
	atomIdx := -1
	for i, l := range e.latchOut {
		_ = l
		if e.m.Latches[i].Output == atomVar {
			atomIdx = i
		}
	}
	p := map[string]bool{}
	for k, st := range states {
		p[k] = st[atomIdx] == 0
	}
	out := map[string]bool{}
	switch {
	case strings.HasPrefix(formula, "EX "):
		for k := range states {
			for nk := range edges[k] {
				if p[nk] {
					out[k] = true
				}
			}
		}
	case strings.HasPrefix(formula, "EF "):
		// backward least fixpoint
		for k := range states {
			if p[k] {
				out[k] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for k := range states {
				if out[k] {
					continue
				}
				for nk := range edges[k] {
					if out[nk] {
						out[k] = true
						changed = true
					}
				}
			}
		}
	case strings.HasPrefix(formula, "EG "):
		// greatest fixpoint within p
		for k := range states {
			if p[k] {
				out[k] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for k := range out {
				ok := false
				for nk := range edges[k] {
					if out[nk] {
						ok = true
						break
					}
				}
				if !ok {
					delete(out, k)
					changed = true
				}
			}
		}
	case strings.HasPrefix(formula, "AF "):
		// AF p = !EG !p
		notP := map[string]bool{}
		for k := range states {
			if !p[k] {
				notP[k] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for k := range notP {
				ok := false
				for nk := range edges[k] {
					if notP[nk] {
						ok = true
						break
					}
				}
				if !ok {
					delete(notP, k)
					changed = true
				}
			}
		}
		for k := range states {
			if !notP[k] {
				out[k] = true
			}
		}
	}
	return out
}
