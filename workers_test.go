package hsis

// Determinism of the parallel kernel: BDD canonicity guarantees that a
// function has exactly one node regardless of which thread built it, so
// every worker count must produce the same reachable set, the same
// verdict for every property, and the same state counts. Automaton
// rail variables may be created in a different order under concurrent
// compilation, so the comparison sticks to semantic results plus the
// node count of the design-rail reached set (design variables are
// created sequentially at load, before any parallel section).

import (
	"fmt"
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/core"
	"hsis/internal/designs"
	"hsis/internal/reach"
)

// designRun is the observable outcome of loading one design and
// verifying everything at a given worker count.
type designRun struct {
	states     float64
	reachNodes int
	iterations int
	verdicts   map[string]bool
}

func runDesign(t *testing.T, name string, workers int) designRun {
	return runDesignCfg(t, name, core.Options{Workers: workers}, nil)
}

// runDesignCfg is runDesign with full option control plus a post-load
// tweak hook (applied to the manager before any checking runs), so the
// stress variants can force tiny GC thresholds or arm auto-sifting.
func runDesignCfg(t *testing.T, name string, opts core.Options, tweak func(*bdd.Manager)) designRun {
	t.Helper()
	d, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, name+".v", d.Top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tweak != nil {
		tweak(w.Net.Manager())
	}
	if err := w.AddPIFString(d.PIF, name+".pif"); err != nil {
		t.Fatal(err)
	}
	m := w.Net.Manager()
	defer m.SetWorkers(1) // shut the pool down before the next run
	res := reach.Forward(w.Net, reach.Options{})
	if !res.Converged {
		t.Fatalf("%s: reachability diverged at workers=%d", name, opts.Workers)
	}
	run := designRun{
		states:     w.Net.NumStates(res.Reached),
		reachNodes: m.NodeCount(res.Reached),
		iterations: res.Steps,
		verdicts:   make(map[string]bool),
	}
	for _, r := range w.VerifyAll() {
		if r.Err != nil {
			t.Fatalf("%s/%s: workers=%d: %v", name, r.Name, opts.Workers, r.Err)
		}
		key := string(r.Kind) + "/" + r.Name
		if _, dup := run.verdicts[key]; dup {
			t.Fatalf("%s: duplicate property key %q", name, key)
		}
		run.verdicts[key] = r.Pass
	}
	return run
}

// TestWorkersDeterminism checks parallel ≡ sequential over every
// bundled design: the reach fixpoint (state count, iteration count,
// and reached-set BDD size), every CTL verdict, and every
// language-containment emptiness verdict must match at workers = 1, 2
// and 8.
func TestWorkersDeterminism(t *testing.T) {
	for _, name := range designs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && (name == "scheduler" || name == "mdlc2") {
				t.Skip("skipping large design in -short mode")
			}
			base := runDesign(t, name, 1)
			for _, wk := range []int{2, 8} {
				wk := wk
				t.Run(fmt.Sprintf("workers=%d", wk), func(t *testing.T) {
					got := runDesign(t, name, wk)
					if got.states != base.states {
						t.Errorf("states: got %v at workers=%d, want %v", got.states, wk, base.states)
					}
					if got.iterations != base.iterations {
						t.Errorf("iterations: got %d at workers=%d, want %d", got.iterations, wk, base.iterations)
					}
					if got.reachNodes != base.reachNodes {
						t.Errorf("reached-set nodes: got %d at workers=%d, want %d", got.reachNodes, wk, base.reachNodes)
					}
					if len(got.verdicts) != len(base.verdicts) {
						t.Fatalf("property count: got %d, want %d", len(got.verdicts), len(base.verdicts))
					}
					for key, want := range base.verdicts {
						gotPass, ok := got.verdicts[key]
						if !ok {
							t.Errorf("property %q missing at workers=%d", key, wk)
							continue
						}
						if gotPass != want {
							t.Errorf("property %q: pass=%v at workers=%d, want %v", key, gotPass, wk, want)
						}
					}
				})
			}
		})
	}
}

// TestWorkersDeterminismStress re-runs the determinism comparison under
// the two configurations that exercise the parallel kernel's moving
// parts hardest: a tiny GC threshold (so the concurrent-mark/exclusive-
// sweep protocol fires constantly mid-fixpoint) and growth-triggered
// auto-sifting (so zoned parallel reordering runs inside the checks).
// Either one changing a state count, verdict, or the reached-set node
// count at workers=4 would mean GC or zoned sifting is not deterministic.
func TestWorkersDeterminismStress(t *testing.T) {
	variants := []struct {
		name  string
		opts  core.Options
		tweak func(*bdd.Manager)
	}{
		{name: "gcstress", tweak: func(m *bdd.Manager) { m.SetGCThreshold(4096) }},
		{name: "autosift", opts: core.Options{Reorder: "auto", ReorderTrigger: 1.3}},
	}
	names := []string{"pingpong", "dcnew", "mdlc2"}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, name := range names {
				name := name
				t.Run(name, func(t *testing.T) {
					if testing.Short() && name == "mdlc2" {
						t.Skip("skipping large design in -short mode")
					}
					seq, par := v.opts, v.opts
					seq.Workers, par.Workers = 1, 4
					base := runDesignCfg(t, name, seq, v.tweak)
					got := runDesignCfg(t, name, par, v.tweak)
					if got.states != base.states {
						t.Errorf("states: got %v, want %v", got.states, base.states)
					}
					if got.iterations != base.iterations {
						t.Errorf("iterations: got %d, want %d", got.iterations, base.iterations)
					}
					if got.reachNodes != base.reachNodes {
						t.Errorf("reached-set nodes: got %d, want %d", got.reachNodes, base.reachNodes)
					}
					for key, want := range base.verdicts {
						if gotPass, ok := got.verdicts[key]; !ok || gotPass != want {
							t.Errorf("property %q: got (%v, present=%v), want %v", key, gotPass, ok, want)
						}
					}
				})
			}
		})
	}
}
