package hsis

// Determinism of the parallel kernel: BDD canonicity guarantees that a
// function has exactly one node regardless of which thread built it, so
// every worker count must produce the same reachable set, the same
// verdict for every property, and the same state counts. Automaton
// rail variables may be created in a different order under concurrent
// compilation, so the comparison sticks to semantic results plus the
// node count of the design-rail reached set (design variables are
// created sequentially at load, before any parallel section).

import (
	"fmt"
	"testing"

	"hsis/internal/core"
	"hsis/internal/designs"
	"hsis/internal/reach"
)

// designRun is the observable outcome of loading one design and
// verifying everything at a given worker count.
type designRun struct {
	states     float64
	reachNodes int
	iterations int
	verdicts   map[string]bool
}

func runDesign(t *testing.T, name string, workers int) designRun {
	t.Helper()
	d, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, name+".v", d.Top, core.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPIFString(d.PIF, name+".pif"); err != nil {
		t.Fatal(err)
	}
	m := w.Net.Manager()
	defer m.SetWorkers(1) // shut the pool down before the next run
	res := reach.Forward(w.Net, reach.Options{})
	if !res.Converged {
		t.Fatalf("%s: reachability diverged at workers=%d", name, workers)
	}
	run := designRun{
		states:     w.Net.NumStates(res.Reached),
		reachNodes: m.NodeCount(res.Reached),
		iterations: res.Steps,
		verdicts:   make(map[string]bool),
	}
	for _, r := range w.VerifyAll() {
		if r.Err != nil {
			t.Fatalf("%s/%s: workers=%d: %v", name, r.Name, workers, r.Err)
		}
		key := string(r.Kind) + "/" + r.Name
		if _, dup := run.verdicts[key]; dup {
			t.Fatalf("%s: duplicate property key %q", name, key)
		}
		run.verdicts[key] = r.Pass
	}
	return run
}

// TestWorkersDeterminism checks parallel ≡ sequential over every
// bundled design: the reach fixpoint (state count, iteration count,
// and reached-set BDD size), every CTL verdict, and every
// language-containment emptiness verdict must match at workers = 1, 2
// and 8.
func TestWorkersDeterminism(t *testing.T) {
	for _, name := range designs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && (name == "scheduler" || name == "mdlc2") {
				t.Skip("skipping large design in -short mode")
			}
			base := runDesign(t, name, 1)
			for _, wk := range []int{2, 8} {
				wk := wk
				t.Run(fmt.Sprintf("workers=%d", wk), func(t *testing.T) {
					got := runDesign(t, name, wk)
					if got.states != base.states {
						t.Errorf("states: got %v at workers=%d, want %v", got.states, wk, base.states)
					}
					if got.iterations != base.iterations {
						t.Errorf("iterations: got %d at workers=%d, want %d", got.iterations, wk, base.iterations)
					}
					if got.reachNodes != base.reachNodes {
						t.Errorf("reached-set nodes: got %d at workers=%d, want %d", got.reachNodes, wk, base.reachNodes)
					}
					if len(got.verdicts) != len(base.verdicts) {
						t.Fatalf("property count: got %d, want %d", len(got.verdicts), len(base.verdicts))
					}
					for key, want := range base.verdicts {
						gotPass, ok := got.verdicts[key]
						if !ok {
							t.Errorf("property %q missing at workers=%d", key, wk)
							continue
						}
						if gotPass != want {
							t.Errorf("property %q: pass=%v at workers=%d, want %v", key, gotPass, wk, want)
						}
					}
				})
			}
		})
	}
}
