package hsis

// The `make parallel-smoke` gate: one short mdlc2 reachability at
// workers=1 and workers=4 must agree exactly (states, iterations,
// reached-set size — canonicity makes any divergence a kernel bug), and
// on a host with real parallelism the workers=4 run must not be slower
// than 1.05x the sequential run — catching a change that re-introduces
// the coordination tax this kernel exists to eliminate. Single-CPU
// runners and -short runs skip the timing clause only: there the
// workers>=2 path measures scheduling overhead, not speedup.

import (
	"runtime"
	"testing"
	"time"

	"hsis/internal/core"
	"hsis/internal/designs"
	"hsis/internal/reach"
)

func smokeReach(t *testing.T, workers int) (states float64, iters, nodes int, elapsed time.Duration) {
	t.Helper()
	d, err := designs.Get("mdlc2")
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, "mdlc2.v", d.Top, core.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Net.Manager()
	defer m.SetWorkers(1)
	start := time.Now()
	res := reach.Forward(w.Net, reach.Options{})
	elapsed = time.Since(start)
	if !res.Converged {
		t.Fatalf("mdlc2 reach diverged at workers=%d", workers)
	}
	return w.Net.NumStates(res.Reached), res.Steps, m.NodeCount(res.Reached), elapsed
}

func TestParallelSmoke(t *testing.T) {
	seqStates, seqIters, seqNodes, seqTime := smokeReach(t, 1)
	parStates, parIters, parNodes, parTime := smokeReach(t, 4)
	if seqStates != parStates || seqIters != parIters || seqNodes != parNodes {
		t.Fatalf("workers=4 diverged from workers=1: states %v vs %v, iterations %d vs %d, nodes %d vs %d",
			parStates, seqStates, parIters, seqIters, parNodes, seqNodes)
	}
	if testing.Short() || runtime.NumCPU() < 4 {
		t.Logf("timing clause skipped (short=%v, cpus=%d); workers=1 %v, workers=4 %v",
			testing.Short(), runtime.NumCPU(), seqTime, parTime)
		return
	}
	if float64(parTime) > 1.05*float64(seqTime) {
		t.Fatalf("workers=4 regressed >5%% vs workers=1: %v vs %v", parTime, seqTime)
	}
	t.Logf("workers=1 %v, workers=4 %v (%.2fx)", seqTime, parTime, float64(seqTime)/float64(parTime))
}
