// Hierarchical verification (paper §2 and §8 item 3): the recommended
// top-down methodology verifies properties on an abstract design, then
// refines it "by removing some non-determinism in the specification";
// as long as no new behavior appears, universal properties carry over.
// This example proves a property on an abstract arbiter, checks that a
// concrete round-robin arbiter refines it, and shows a faulty
// "refinement" being rejected with an unmatched state.
//
//	go run ./examples/refinement
package main

import (
	"fmt"
	"log"

	"hsis/internal/blifmv"
	"hsis/internal/core"
	"hsis/internal/network"
	"hsis/internal/refine"
	"hsis/internal/verilog"
)

// Abstract arbiter: grants nondeterministically, but never both at once.
const abstractV = `
module arbiter(clk, g);
  input clk;
  output g;
  reg g;            // 0 = grant A, 1 = grant B
  initial g = 0;
  initial g = 1;    // either side may start
  always @(posedge clk) g <= $ND(0, 1);
endmodule
`

// Concrete arbiter: strict round-robin — one behavior of the abstract.
const roundRobinV = `
module arbiter(clk, g);
  input clk;
  output g;
  reg g;
  initial g = 0;
  always @(posedge clk) g <= !g;
endmodule
`

// Faulty "refinement": a second grant line that can disagree — it has a
// richer observable alphabet collapsed wrongly (here: it can hold the
// grant for two cycles AND skip; we model a machine over card-3 values
// projected to the same observation, with a fresh behavior).
const faultyV = `
module arbiter(clk, g);
  input clk;
  output [1:0] g;
  reg [1:0] g;
  initial g = 0;
  always @(posedge clk) g <= g + 1;  // counts 0,1,2,3 — values 2,3 are new
endmodule
`

func flatten(src, top string) *blifmv.Model {
	d, err := verilog.CompileString(src, top+".v", top)
	if err != nil {
		log.Fatal(err)
	}
	m, err := blifmv.Flatten(d)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	// 1. prove the property once, on the abstraction
	w, err := core.LoadVerilogString(abstractV, "abstract.v", "arbiter", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AddPIFString("ctl safe AG(g=0 + g=1)\n", "p.pif"); err != nil {
		log.Fatal(err)
	}
	for _, r := range w.VerifyAll() {
		fmt.Printf("abstract property %s: pass=%v\n", r.Name, r.Pass)
	}

	// 2. the round-robin implementation refines the abstraction
	res, err := refine.Check(
		flatten(roundRobinV, "arbiter"),
		flatten(abstractV, "arbiter"),
		[][2]string{{"g", "g"}},
		network.Options{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround-robin refines abstract: %v (in %d iterations)\n", res.Holds, res.Iterations)
	fmt.Println("→ the property proved above holds for round-robin without re-checking")

	// 3. a faulty refinement is rejected — cardinality mismatch is
	// caught immediately (the observation alphabets differ)
	_, err = refine.Check(
		flatten(faultyV, "arbiter"),
		flatten(abstractV, "arbiter"),
		[][2]string{{"g", "g"}},
		network.Options{},
	)
	fmt.Printf("\nfaulty refinement rejected: %v\n", err)

	// 4. behavioral violation: the abstract machine must alternate...
	// check the reverse direction: abstract does NOT refine round-robin
	rev, err := refine.Check(
		flatten(abstractV, "arbiter"),
		flatten(roundRobinV, "arbiter"),
		[][2]string{{"g", "g"}},
		network.Options{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nabstract refines round-robin: %v", rev.Holds)
	if !rev.Holds {
		fmt.Printf(" — unmatched implementation start state: %v\n", rev.Unmatched)
		fmt.Println("(the abstraction may hold the grant, which strict round-robin cannot match)")
	}
}
