// Figure 2 of the paper: the invariance automaton checking that "out1
// and out2 are never asserted at the same time", run against a correct
// and a buggy bus arbiter. The same condition is also checked with the
// CTL formula AG(out1=0 + out2=0), demonstrating the paper's unified
// environment: both paradigms, one engine, identical verdicts.
//
//	go run ./examples/mutex_automaton
package main

import (
	"fmt"
	"log"

	"hsis/internal/core"
	"hsis/internal/ctl"
	"hsis/internal/debug"
	"hsis/internal/lc"
)

const arbiterOK = `
module arbiter(clk, out1, out2);
  input clk;
  output out1, out2;
  reg turn;
  wire out1, out2, r1, r2;
  assign r1 = $ND(0, 1);
  assign r2 = $ND(0, 1);
  assign out1 = r1 && !turn;
  assign out2 = r2 && turn;
  initial turn = 0;
  always @(posedge clk) turn <= !turn;
endmodule
`

// the buggy arbiter forgets to gate out2 on the turn bit
const arbiterBad = `
module arbiter(clk, out1, out2);
  input clk;
  output out1, out2;
  reg turn;
  wire out1, out2, r1, r2;
  assign r1 = $ND(0, 1);
  assign r2 = $ND(0, 1);
  assign out1 = r1 && !turn;
  assign out2 = r2;
  initial turn = 0;
  always @(posedge clk) turn <= !turn;
endmodule
`

func main() {
	for _, variant := range []struct{ name, src string }{
		{"correct arbiter", arbiterOK},
		{"buggy arbiter", arbiterBad},
	} {
		fmt.Printf("== %s ==\n", variant.name)
		w, err := core.LoadVerilogString(variant.src, "arbiter.v", "arbiter", core.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Language containment with the Figure-2 automaton, built
		// programmatically from the propositional condition.
		cond := ctl.MustParse("!(out1=1 * out2=1)")
		aut, err := lc.InvarianceAutomaton(w.Net, "never_both", cond)
		if err != nil {
			log.Fatal(err)
		}
		product := lc.NewProduct(w.Net, aut)
		res := lc.Check(product, w.FC, lc.Options{})
		fmt.Printf("language containment: pass=%v\n", res.Pass)
		if !res.Pass {
			tr, err := debug.FindErrorTrace(product, res.Constraints, res.FairHull)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(debug.FormatTrace(tr, func(st debug.State) string {
				return core.DescribeProductState(product, st)
			}))
		}

		// The same property through the CTL model checker.
		checker := ctl.NewForNetwork(w.Net, w.FC)
		v, err := checker.Check(ctl.AG{F: cond})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CTL model checking:   pass=%v (invariant fast path: %v)\n\n",
			v.Pass, v.UsedInvariantPath)
		if v.Pass != res.Pass {
			log.Fatal("paradigms disagree — this is a bug")
		}
	}
}
