// State-based simulation (paper §1, item 4) of the Gigamax cache
// protocol: step the reachable-state set under user control, pin a
// nondeterministic input, focus on an interesting subset, and enumerate
// concrete states — "this facility enumerates the reachable states of
// the design, under user control".
//
//	go run ./examples/simulator
package main

import (
	"fmt"
	"log"
	"strings"

	"hsis/internal/core"
	"hsis/internal/designs"
	"hsis/internal/network"
	"hsis/internal/sim"
)

func main() {
	d, err := designs.Get("gigamax")
	if err != nil {
		log.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, "gigamax.v", d.Top, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := sim.New(w.Net)
	fmt.Printf("initial: %.0f state(s)\n", s.Count())
	show(w.Net, s, 4)

	fmt.Println("\nstep with all inputs free:")
	s.Step()
	fmt.Printf("after step %d: %.0f states\n", s.Steps(), s.Count())
	show(w.Net, s, 6)

	fmt.Println("\nstep again, free:")
	s.Step()
	fmt.Printf("after step %d: %.0f states\n", s.Steps(), s.Count())

	// focus on the states where cpu0 owns the line
	c0 := w.Net.VarByName("c0")
	if err := s.Focus(c0.Eq(2) /* COWN */); err != nil {
		fmt.Println("focus:", err, "— stepping once more")
		s.Step()
		if err := s.Focus(c0.Eq(2)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nfocused on c0=COWN: %.0f states\n", s.Count())
	show(w.Net, s, 6)

	// undo everything
	for s.Back() {
	}
	fmt.Printf("\nrewound to the beginning: %.0f state(s), %d steps\n", s.Count(), s.Steps())

	if dead := s.Deadlocked(); dead == 0 /* bdd.False */ {
		fmt.Println("no deadlocked states in the current set")
	}
}

func show(n *network.Network, s *sim.Simulator, max int) {
	for _, st := range s.States(max) {
		var parts []string
		for _, l := range n.Latches() {
			parts = append(parts, fmt.Sprintf("%s=%s", l.Src.Output, st[l.Src.Output]))
		}
		fmt.Println(" ", strings.Join(parts, " "))
	}
}
