// State minimization with bisimulation (paper §1, items 3 and 6): a
// machine with redundant states is compiled, the coarsest bisimulation
// distinguishing the observable output is computed, and the equivalence
// classes are used as don't cares to shrink set BDDs —
// "initial experiments indicate that significant reduction in BDD size
// can be achieved".
//
//	go run ./examples/bisimulation
package main

import (
	"fmt"
	"log"

	"hsis/internal/bdd"
	"hsis/internal/bisim"
	"hsis/internal/blifmv"
	"hsis/internal/network"
	"hsis/internal/reach"
)

// A ring over 8 states where the observable output is the state's
// parity; states with equal parity and matching futures collapse.
const src = `
.model redundant
.mv s,ns 8
.table s obs
0 0
1 1
2 0
3 1
4 0
5 1
6 0
7 1
.table s ns
0 {1,3}
1 {2,4}
2 {3,5}
3 {4,6}
4 {5,7}
5 {6,0}
6 {7,1}
7 {0,2}
.latch ns s
.reset s
0
.end
`

func main() {
	d, err := blifmv.ParseString(src, "redundant.mv")
	if err != nil {
		log.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		log.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := n.Manager()
	s := n.VarByName("s")

	obs, err := n.LabelEq("obs", "1")
	if err != nil {
		log.Fatal(err)
	}

	// Coarsest bisimulation distinguishing only the parity output.
	rel := bisim.Compute(n, []bdd.Ref{obs})
	fmt.Printf("bisimulation computed in %d refinement iterations\n", rel.Iterations)
	fmt.Printf("classes distinguishing obs: %d (of %d states)\n",
		rel.NumClasses(s.Domain()), s.Card())

	// Without observations, dynamics alone decide; with per-state
	// observations nothing collapses.
	relFree := bisim.Compute(n, nil)
	fmt.Printf("classes with no observations: %d\n", relFree.NumClasses(s.Domain()))

	// Don't-care minimization of an awkward state set: a half-open
	// union of partial classes.
	res := reach.Forward(n, reach.Options{})
	awkward := m.AndN(res.Reached, m.Not(s.Eq(3)))
	min := rel.MinimizeSet(awkward)
	fmt.Printf("BDD nodes: awkward set %d → minimized %d (same up to bisimulation)\n",
		m.NodeCount(awkward), m.NodeCount(min))

	// A class-closed set is preserved exactly.
	closed := rel.Closure(awkward)
	if rel.MinimizeSet(closed) == closed || m.NodeCount(rel.MinimizeSet(closed)) <= m.NodeCount(closed) {
		fmt.Println("class-closed sets are preserved (up to BDD-size improvements)")
	}
}
