// Quickstart: compile a small Verilog design, state one CTL property
// and one ω-automaton property, verify both, and print the verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hsis/internal/core"
)

const design = `
// a request/grant handshake with a nondeterministic requester
module handshake(clk, req, gnt);
  input clk;
  output req, gnt;
  reg req, gnt;
  initial req = 0;
  always @(posedge clk)
    if (!req) req <= $ND(0, 1);   // the environment may raise a request
    else if (gnt) req <= 0;       // and drops it once granted
  initial gnt = 0;
  always @(posedge clk)
    gnt <= req && !gnt;           // one-cycle grant pulses
endmodule
`

const props = `
# the model checker proves: every request is eventually granted
ctl response AG(req=1 -> AF gnt=1)

# the language containment checker proves: grants are never two cycles long
automaton short_grants {
  states A G B
  init A
  edge A A gnt=0
  edge A G gnt=1
  edge G A gnt=0
  edge G B gnt=1
  edge B B TRUE
  rabin avoid { B } recur { A G }
}
`

func main() {
	w, err := core.LoadVerilogString(design, "handshake.v", "handshake", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AddPIFString(props, "handshake.pif"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d latches, %.0f reachable states\n",
		w.Name, len(w.Net.Latches()), w.ReachableStates())
	for _, r := range w.VerifyAll() {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Name, r.Err)
		}
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("%s  %-12s (%s) in %v\n", verdict, r.Name, r.Kind, r.Time)
		if !r.Pass {
			fmt.Print(w.BugReport(r))
		}
	}
}
