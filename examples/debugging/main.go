// Debugging session (paper §6) on the dining philosophers: the
// symmetric fork protocol deadlocks, so both the language containment
// liveness property and the CTL progress property fail. This example
// shows the two debuggers the paper describes:
//
//   - the LC debugger prints a complete lasso-shaped error trace with a
//     minimum-length prefix and a heuristically minimized fair cycle;
//
//   - the MC debugger unfolds the failed formula step by step, with the
//     choice points (which disjunct to certify, which successor to
//     pursue) scripted through a Navigator.
//
//     go run ./examples/debugging
package main

import (
	"fmt"
	"log"

	"hsis/internal/core"
	"hsis/internal/ctl"
	"hsis/internal/debug"
	"hsis/internal/designs"
	"hsis/internal/lc"
)

func main() {
	d, err := designs.Get("philos")
	if err != nil {
		log.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, "philos.v", d.Top, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AddPIFString(d.PIF, "philos.pif"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== language containment debugger ==")
	for _, a := range w.Automata {
		r := w.CheckLC(a)
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		if r.Pass {
			fmt.Printf("%s: PASS\n", r.Name)
			continue
		}
		fmt.Printf("%s: FAIL — error trace (prefix is minimum-length):\n", r.Name)
		p := r.TraceSystem.(*lc.Product)
		fmt.Print(debug.FormatTrace(r.Trace, func(st debug.State) string {
			return core.DescribeProductState(p, st)
		}))
	}

	fmt.Println("\n== CTL model checker debugger (interactive unfolding) ==")
	checker := ctl.NewForNetwork(w.Net, w.FC)
	formula := ctl.MustParse("AG(p0=HUNGRY -> AF p0=EAT)")
	v, err := checker.Check(formula)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: pass=%v\n", formula, v.Pass)
	if !v.Pass {
		start, ok := w.Net.PickState(v.FailingInit)
		if !ok {
			log.Fatal("no failing initial state")
		}
		stepper := debug.NewStepper(checker, debug.FuncNavigator{
			// scripted user: always pursue the first candidate
			Successor: func(c []debug.State) int { return 0 },
		})
		stepper.Describe = func(st debug.State) string { return w.DescribeState(st) }
		report, err := stepper.ExplainFailure(formula, debug.State(start))
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range report.Lines {
			fmt.Println(" ", line)
		}
	}
}
