package hsis

// Robustness tests: the four parsers must reject arbitrary mutations of
// valid inputs with errors, never panics.

import (
	"math/rand"
	"strings"
	"testing"

	"hsis/internal/blifmv"
	"hsis/internal/ctl"
	"hsis/internal/designs"
	"hsis/internal/pif"
	"hsis/internal/verilog"
)

// mutate produces a corrupted variant of the source text.
func mutate(rng *rand.Rand, src string) string {
	b := []byte(src)
	if len(b) == 0 {
		return "("
	}
	switch rng.Intn(5) {
	case 0: // truncate
		return string(b[:rng.Intn(len(b))])
	case 1: // flip a byte to random printable
		i := rng.Intn(len(b))
		b[i] = byte(32 + rng.Intn(95))
		return string(b)
	case 2: // delete a span
		i := rng.Intn(len(b))
		j := i + rng.Intn(len(b)-i)
		return string(b[:i]) + string(b[j:])
	case 3: // duplicate a span
		i := rng.Intn(len(b))
		j := i + rng.Intn(len(b)-i)
		return string(b[:j]) + string(b[i:])
	default: // splice in noise
		noise := []string{"{", "}", "->", ".table", "$ND(", "rabin", "==", "\\\n", "\x00"}
		i := rng.Intn(len(b))
		return string(b[:i]) + noise[rng.Intn(len(noise))] + string(b[i:])
	}
}

func TestParsersNeverPanic(t *testing.T) {
	d, err := designs.Get("dcnew")
	if err != nil {
		t.Fatal(err)
	}
	var mv strings.Builder
	// produce a valid BLIF-MV to mutate
	design, err := verilog.CompileString(d.Verilog, "d.v", d.Top)
	if err != nil {
		t.Fatal(err)
	}
	if err := blifmv.Write(&mv, design); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("verilog parser panicked on mutation %d: %v", i, r)
				}
			}()
			src := mutate(rng, d.Verilog)
			if sf, err := verilog.Parse(src, "m.v"); err == nil {
				// a mutated file may still parse: compilation must also
				// not panic
				_, _ = verilog.Compile([]*verilog.SourceFile{sf}, sf.Modules[0].Name)
			}
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("blifmv parser panicked on mutation %d: %v", i, r)
				}
			}()
			src := mutate(rng, mv.String())
			if dd, err := blifmv.ParseString(src, "m.mv"); err == nil {
				_, _ = blifmv.Flatten(dd)
			}
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("pif parser panicked on mutation %d: %v", i, r)
				}
			}()
			_, _ = pif.ParseString(mutate(rng, d.PIF), "m.pif")
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ctl parser panicked on mutation %d: %v", i, r)
				}
			}()
			_, _ = ctl.Parse(mutate(rng, "AG(req=1 -> AF (ack=1 + E(p U q=done)))"))
		}()
	}
}
