package hsis

import (
	"hsis/internal/blifmv"
	"hsis/internal/verilog"
)

// verilogCompile is a bench-local shim over the Verilog front end.
func verilogCompile(src, top string) (*blifmv.Design, error) {
	return verilog.CompileString(src, top+".v", top)
}
