package hsis

// Benchmark harness regenerating the paper's evaluation (Table 1) and
// the ablations listed in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Table 1 has four measured columns per design — BLIF-MV read +
// transition-relation build time, reachable states, language containment
// time, and model checking time — so each design gets four
// sub-benchmarks. Custom metrics report state counts and BDD sizes.

import (
	"fmt"
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/bisim"
	"hsis/internal/blifmv"
	"hsis/internal/core"
	"hsis/internal/ctl"
	"hsis/internal/designs"
	"hsis/internal/lc"
	"hsis/internal/network"
	"hsis/internal/quant"
	"hsis/internal/reach"
)

func load(b *testing.B, name string, opts core.Options) *core.Workspace {
	b.Helper()
	d, err := designs.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, name+".v", d.Top, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AddPIFString(d.PIF, name+".pif"); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTable1 regenerates every measured column of Table 1.
func BenchmarkTable1(b *testing.B) {
	for _, name := range designs.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			b.Run("read", func(b *testing.B) {
				d, err := designs.Get(name)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.LoadVerilogString(d.Verilog, name+".v", d.Top, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("reach", func(b *testing.B) {
				w := load(b, name, core.Options{})
				var states float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := reach.Forward(w.Net, reach.Options{})
					states = w.Net.NumStates(res.Reached)
				}
				b.ReportMetric(states, "states")
			})
			b.Run("lc", func(b *testing.B) {
				w := load(b, name, core.Options{})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, a := range w.Automata {
						r := w.CheckLC(a)
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
				b.ReportMetric(float64(len(w.Automata)), "props")
			})
			b.Run("mc", func(b *testing.B) {
				w := load(b, name, core.Options{})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, p := range w.CTLProps {
						r := w.CheckCTL(p)
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
				b.ReportMetric(float64(len(w.CTLProps)), "props")
			})
		})
	}
}

// Ablation A (paper §1 item 2, §4): early quantification scheduling vs
// the naive monolithic conjunction when building the product transition
// relation.
func BenchmarkEarlyQuant(b *testing.B) {
	for _, design := range []string{"gigamax", "scheduler", "mdlc2"} {
		design := design
		for _, cfg := range []struct {
			label string
			opts  core.Options
		}{
			{"minwidth", core.Options{Heuristic: quant.MinWidth}},
			{"linear", core.Options{Heuristic: quant.Linear}},
			{"naive", core.Options{NaiveQuantification: true}},
		} {
			cfg := cfg
			b.Run(design+"/"+cfg.label, func(b *testing.B) {
				d, err := designs.Get(design)
				if err != nil {
					b.Fatal(err)
				}
				var peak int
				for i := 0; i < b.N; i++ {
					w, err := core.LoadVerilogString(d.Verilog, design+".v", d.Top, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					peak = w.Net.Manager().PeakSize()
				}
				b.ReportMetric(float64(peak), "peak-bdd-nodes")
			})
		}
	}
}

// Ablation B (paper §5.2 item 3): the same invariance property checked
// by language containment, by the optimized invariance model-checking
// path, and by the general fair-CTL route. The paper observes "language
// containment is faster in general. However, CTL model checking is more
// efficient for invariance properties".
func BenchmarkLCvsMC(b *testing.B) {
	const design = "gigamax"
	cond := ctl.MustParse("!(c0=COWN * c1=COWN)")

	b.Run("lc", func(b *testing.B) {
		w := load(b, design, core.Options{})
		aut, err := lc.InvarianceAutomaton(w.Net, "inv", cond)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := lc.NewProduct(w.Net, aut)
			if res := lc.Check(p, w.FC, lc.Options{}); !res.Pass {
				b.Fatal("unexpected failure")
			}
		}
	})
	b.Run("mc-invariant-path", func(b *testing.B) {
		w := load(b, design, core.Options{})
		// strip fairness so the fast path activates (safety is
		// fairness-independent)
		checker := ctl.NewForNetwork(w.Net, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := checker.Check(ctl.AG{F: cond})
			if err != nil || !v.Pass {
				b.Fatal(err)
			}
		}
	})
	b.Run("mc-general", func(b *testing.B) {
		w := load(b, design, core.Options{})
		checker := ctl.NewForNetwork(w.Net, w.FC)
		general := ctl.Not{F: ctl.EF{F: ctl.Not{F: cond}}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := checker.Check(general)
			if err != nil || !v.Pass {
				b.Fatal(err)
			}
		}
	})
}

// Ablation C (paper §5.4): early failure detection versus the full
// check. The workload is a property with a shallow violation on the
// largest design (scheduler, ~1M states): "task 1 never runs" fails
// within two steps, so a bounded-depth scan finds it long before full
// reachability converges — "most errors can be detected with only a few
// reachability steps, and since the first few steps are usually fast,
// Early Failure Detection can quickly find errors".
func BenchmarkEarlyFailure(b *testing.B) {
	cond := ctl.MustParse("b1=0") // false once task 1 starts — shallow bug
	for _, cfg := range []struct {
		label string
		steps int
	}{
		{"full", 0},
		{"early4", 4},
	} {
		cfg := cfg
		b.Run(cfg.label, func(b *testing.B) {
			w := load(b, "scheduler", core.Options{})
			aut, err := lc.InvarianceAutomaton(w.Net, "task1_never", cond)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := lc.NewProduct(w.Net, aut)
				res := lc.Check(p, w.FC, lc.Options{EarlySteps: cfg.steps})
				if res.Pass {
					b.Fatal("expected failure")
				}
				if cfg.steps > 0 && !res.EarlyDetected {
					b.Fatal("early detection should fire")
				}
			}
		})
	}
}

// Ablation D (paper §1 items 3 and 6): bisimulation-derived don't cares
// shrink set BDDs. Reports node counts before and after minimization.
func BenchmarkBisimDC(b *testing.B) {
	w := load(b, "gigamax", core.Options{})
	n := w.Net
	m := n.Manager()
	res := reach.Forward(n, reach.Options{})
	// observation: only the coherence-relevant ownership labels
	c0 := n.VarByName("c0")
	c1 := n.VarByName("c1")
	rel := bisim.Compute(n, []bdd.Ref{c0.Eq(2), c1.Eq(2)})
	// an awkward, non-class-closed set: reached minus one arbitrary state
	asg, _ := n.PickState(res.Reached)
	awkward := m.Diff(res.Reached, n.StateEq(asg))
	before := m.NodeCount(awkward)
	var after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		after = m.NodeCount(rel.MinimizeSet(awkward))
	}
	b.ReportMetric(float64(before), "nodes-before")
	b.ReportMetric(float64(after), "nodes-after")
}

// Ablation E (paper ref [1]): the interacting-FSM static variable order
// versus the naive appended declaration order. Reports the transition
// relation size.
func BenchmarkVarOrder(b *testing.B) {
	for _, cfg := range []struct {
		label string
		opts  core.Options
	}{
		{"interleaved", core.Options{}},
		{"appended", core.Options{AppendedOrder: true}},
	} {
		cfg := cfg
		for _, design := range []string{"scheduler", "mdlc2"} {
			design := design
			b.Run(design+"/"+cfg.label, func(b *testing.B) {
				d, err := designs.Get(design)
				if err != nil {
					b.Fatal(err)
				}
				var trNodes int
				for i := 0; i < b.N; i++ {
					w, err := core.LoadVerilogString(d.Verilog, design+".v", d.Top, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					trNodes = w.Net.Manager().NodeCount(w.Net.T)
				}
				b.ReportMetric(float64(trNodes), "tr-bdd-nodes")
			})
		}
	}
}

// Ablation F (paper §8 item 4): reachability with the monolithic
// product transition relation versus the partitioned relation that is
// never multiplied out.
func BenchmarkPartitionedTR(b *testing.B) {
	d, err := designs.Get("scheduler")
	if err != nil {
		b.Fatal(err)
	}
	build := func(skipMono bool) *network.Network {
		dsg, err := verilogToNetwork(d.Verilog, d.Top, skipMono)
		if err != nil {
			b.Fatal(err)
		}
		return dsg
	}
	b.Run("monolithic", func(b *testing.B) {
		n := build(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := reach.Forward(n, reach.Options{})
			if !res.Converged {
				b.Fatal("diverged")
			}
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		n := build(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := reach.Forward(n, reach.Options{Partitioned: true})
			if !res.Converged {
				b.Fatal("diverged")
			}
		}
	})
}

// BenchmarkImage compares the three image engines — monolithic T,
// per-conjunct partitioned, and clustered with the precompiled
// quantification schedule — on full forward reachability plus a
// preimage sweep (the Image/Preimage alternation is what used to thrash
// the cube-keyed quantifier caches). Reports peak live BDD nodes and
// the combined quantifier/and-exists cache hit rate.
func BenchmarkImage(b *testing.B) {
	engines := []struct {
		label string
		kind  reach.EngineKind
	}{
		{"monolithic", reach.EngineMonolithic},
		{"partitioned", reach.EnginePartitioned},
		{"clustered", reach.EngineClustered},
	}
	for _, name := range []string{"gigamax", "scheduler", "mdlc2"} {
		name := name
		for _, eng := range engines {
			eng := eng
			b.Run(name+"/"+eng.label, func(b *testing.B) {
				w := load(b, name, core.Options{})
				n := w.Net
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := reach.Forward(n, reach.Options{Engine: eng.kind})
					if !res.Converged {
						b.Fatal("diverged")
					}
					e := reach.Engine(n, eng.kind)
					if e.Preimage(res.Reached) == bdd.False {
						b.Fatal("empty preimage of reached set")
					}
				}
				b.StopTimer()
				// The unified stats formatter decides what the benchmark
				// records, so BENCH_bdd.json and the telemetry summary
				// report the same metric set (peak-live, peak-alloc,
				// quantifier-cache hit rate).
				for metric, v := range n.Manager().Stats().BenchMetrics() {
					b.ReportMetric(v, metric)
				}
			})
		}
	}
}

// BenchmarkIso compares the isomorphism-exploiting engine against the
// clustered pipeline it extends: full forward reachability plus a
// preimage of the fixpoint, over scaled ring designs where every latch
// cone is a replica (philos-N, scheduler-N) and over bundled designs
// with little (mdlc2: three pairs) or no (gigamax) replication, where
// iso must not regress. Both engines run with the monolithic relation
// skipped — the contest is cluster compilation + schedule replay, and
// iso's edge is compiling each class once and instantiating replicas by
// variable permutation. Run with -benchtime=1x: the warm op caches make
// repeat iterations nearly free, so only a cold run measures the
// compile phase honestly. benchjson derives a speedup-vs-clustered
// ratio for every design from the paired rows of BENCH_iso.json.
func BenchmarkIso(b *testing.B) {
	for _, name := range []string{"philos-16", "philos-64", "scheduler-32", "mdlc2", "gigamax"} {
		name := name
		for _, eng := range []struct {
			label string
			kind  reach.EngineKind
		}{
			{"clustered", reach.EngineClustered},
			{"iso", reach.EngineIso},
		} {
			eng := eng
			b.Run(name+"/"+eng.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w := load(b, name, core.Options{Image: eng.label})
					n := w.Net
					b.StartTimer()
					res := reach.Forward(n, reach.Options{Engine: eng.kind})
					if !res.Converged {
						b.Fatal("diverged")
					}
					e := reach.Engine(n, eng.kind)
					if e.Preimage(res.Reached) == bdd.False {
						b.Fatal("empty preimage of reached set")
					}
					b.StopTimer()
					st := n.Manager().Stats()
					for metric, v := range st.BenchMetrics() {
						b.ReportMetric(v, metric)
					}
					if eng.kind == reach.EngineIso {
						s := n.IsoSummaryInfo()
						b.ReportMetric(float64(s.Classes), "iso-classes")
						b.ReportMetric(float64(s.Replicated), "iso-latches")
						b.ReportMetric(float64(st.PermCalls), "perm-calls")
						b.ReportMetric(100*st.PermHitRate(), "perm-hit-%")
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkNegationHeavy exercises the negation-dominated access pattern
// of the backward verification algorithms: alternating image/preimage
// sweeps where every round clips the frontier against the complement of
// a care set (exactly how fair-cycle and preimage computations use
// fair/care sets), with a GC between rounds the way fixpoints invoke
// MaybeGC between iterations. A complement-edge kernel makes every Not
// free and shares each set with its complement; a GC-surviving cache
// layer keeps the sweep's operator caches warm across the collection.
func BenchmarkNegationHeavy(b *testing.B) {
	for _, name := range []string{"gigamax", "scheduler", "mdlc2"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w := load(b, name, core.Options{})
			n := w.Net
			m := n.Manager()
			e := reach.Engine(n, reach.EngineClustered)
			res := reach.Forward(n, reach.Options{Engine: reach.EngineClustered})
			if !res.Converged {
				b.Fatal("diverged")
			}
			reached := m.IncRef(res.Reached)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				care := reached
				front := n.Init
				for k := 0; k < 4; k++ {
					img := e.Image(front)
					// clip to the care set through its complement — the
					// fair/care-set pattern of the preimage sweeps
					img = m.Diff(img, m.Not(care))
					pre := e.Preimage(m.Not(m.Diff(m.Not(care), img)))
					front = m.And(m.Or(front, pre), care)
					care = m.Not(m.And(m.Not(care), m.Not(img)))
				}
				m.GC()
			}
			b.StopTimer()
			b.ReportMetric(float64(m.Size()), "live-bdd-nodes")
			for metric, v := range m.Stats().BenchMetrics() {
				b.ReportMetric(v, metric)
			}
			m.DecRef(reached)
		})
	}
}

// BenchmarkImageParallel is the BenchmarkImage clustered/mdlc2 workload
// swept over kernel worker counts: full forward reachability through
// the precompiled quantification schedules plus a preimage of the
// fixpoint. Run with -benchtime=1x — the GC-surviving op caches make
// warm repeat iterations nearly free, so only a cold run measures the
// image pipeline honestly. Reports fork/steal counters alongside the
// standard kernel metrics; forks > 0 at workers >= 2 proves the
// parallel recursion actually engaged.
func BenchmarkImageParallel(b *testing.B) {
	for _, wk := range []int{1, 2, 4, 8} {
		wk := wk
		b.Run(fmt.Sprintf("clustered/mdlc2/workers=%d", wk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := load(b, "mdlc2", core.Options{Workers: wk})
				n := w.Net
				m := n.Manager()
				b.StartTimer()
				res := reach.Forward(n, reach.Options{Engine: reach.EngineClustered})
				if !res.Converged {
					b.Fatal("diverged")
				}
				e := reach.Engine(n, reach.EngineClustered)
				if e.Preimage(res.Reached) == bdd.False {
					b.Fatal("empty preimage of reached set")
				}
				b.StopTimer()
				st := m.Stats()
				b.ReportMetric(float64(st.Forks), "forks")
				b.ReportMetric(float64(st.Steals), "steals")
				b.ReportMetric(float64(st.L1Hits), "l1-hits")
				b.ReportMetric(float64(st.L1Promotions), "l1-promotions")
				b.ReportMetric(float64(st.GrainAdjusts), "grain-adjusts")
				for metric, v := range st.BenchMetrics() {
					b.ReportMetric(v, metric)
				}
				m.SetWorkers(1) // shut the pool down between runs
				b.StartTimer()
			}
		})
	}
}

// BenchmarkParallelAndExists isolates the forked multi-operand
// conjoin-and-quantify: one image computation per reachability ring of
// mdlc2, each a fresh quant.AndExists over the network's partitioned
// image operands. This is the raw kernel workload underneath the
// clustered engine, without the fixpoint bookkeeping around it.
func BenchmarkParallelAndExists(b *testing.B) {
	for _, wk := range []int{1, 2, 4, 8} {
		wk := wk
		b.Run(fmt.Sprintf("mdlc2/workers=%d", wk), func(b *testing.B) {
			w := load(b, "mdlc2", core.Options{Workers: wk})
			n := w.Net
			m := n.Manager()
			defer m.SetWorkers(1)
			res := reach.Forward(n, reach.Options{Engine: reach.EngineClustered, KeepRings: true})
			if !res.Converged {
				b.Fatal("diverged")
			}
			b.ResetTimer()
			acc := bdd.False
			for i := 0; i < b.N; i++ {
				for _, ring := range res.Rings {
					conjs, qvars := n.ImageOperands(ring)
					acc = m.Or(acc, quant.AndExists(m, conjs, qvars, quant.MinWidth))
				}
			}
			b.StopTimer()
			if acc == bdd.False {
				b.Fatal("all images empty")
			}
			st := m.Stats()
			b.ReportMetric(float64(st.Forks), "forks")
			b.ReportMetric(float64(st.Steals), "steals")
			b.ReportMetric(float64(st.L1Hits), "l1-hits")
			b.ReportMetric(float64(st.L1Promotions), "l1-promotions")
			b.ReportMetric(float64(st.GrainAdjusts), "grain-adjusts")
			for metric, v := range st.BenchMetrics() {
				b.ReportMetric(v, metric)
			}
		})
	}
}

func verilogToNetwork(src, top string, skipMono bool) (*network.Network, error) {
	w, err := core.LoadVerilogString(src, top+".v", top, core.Options{})
	if err != nil {
		return nil, err
	}
	if !skipMono {
		return w.Net, nil
	}
	// rebuild with the partitioned-only option
	dsn, err := compileFlat(src, top)
	if err != nil {
		return nil, err
	}
	return network.Build(dsn, network.Options{SkipMonolithic: true})
}

func compileFlat(src, top string) (*blifmv.Model, error) {
	d, err := verilogCompile(src, top)
	if err != nil {
		return nil, err
	}
	return blifmv.Flatten(d)
}

// Ablation G (paper §8 item 2): automatic abstraction by cone of
// influence. The design couples a small request/acknowledge controller
// with a large unrelated payload pipeline; the response property only
// observes the controller, so COI discards the pipeline before the
// check.
const coiBenchDesign = `
module coibench(clk, req, ack);
  input clk;
  output req, ack;
  reg req, ack;
  reg [5:0] p0, p1, p2;
  // payload pipeline: three 8-bit stages fed by nondeterminism
  initial p0 = 0;
  always @(posedge clk) p0 <= p0 + 1;
  initial p1 = 0;
  always @(posedge clk) p1 <= $ND(0,1) ? p0 : p1;
  initial p2 = 0;
  always @(posedge clk) p2 <= p1;
  // controller under verification
  initial req = 0;
  always @(posedge clk)
    if (!req) req <= $ND(0, 1);
    else if (ack) req <= 0;
  initial ack = 0;
  always @(posedge clk) ack <= req && !ack;
endmodule
`

// BenchmarkReorder measures dynamic variable reordering digging a run
// out of a deliberately bad initial order: scheduler-8 and mdlc2 are
// loaded with the naive appended order (philos-16 with its default
// order — see below), then forward reachability runs with sifting
// off versus growth-triggered auto sifting at the fixpoint safe points.
// The auto-naive configuration runs the same auto sifting with every
// acceleration disabled (-reorder-accel none) — the pre-acceleration
// Rudell sifter — so sift-ms auto vs auto-naive is the acceleration
// speedup and swaps auto vs auto-naive the swap reduction; benchjson
// derives both ratios into BENCH_reorder.json. A GC and a peak reset
// after the build discard the build phase's garbage, so peak-live-nodes
// isolates the reachability phase that reordering can influence.
func BenchmarkReorder(b *testing.B) {
	type reorderCfg struct {
		label string
		opts  core.Options
	}
	for _, design := range []string{"scheduler-8", "mdlc2", "philos-16"} {
		design := design
		scramble := design != "philos-16"
		cfgs := []reorderCfg{
			{"auto", core.Options{AppendedOrder: scramble, Reorder: "auto"}},
			{"auto-naive", core.Options{AppendedOrder: scramble, Reorder: "auto", ReorderAccel: "none"}},
		}
		if scramble {
			cfgs = append([]reorderCfg{{"off", core.Options{AppendedOrder: true, Reorder: "off"}}}, cfgs...)
		} else {
			// philos-16 runs from the default interleaved order: from the
			// appended order reachability exceeds 30 minutes and 5 GB on
			// the reference container with sifting off OR on — the order
			// is unrecoverable once the intermediate sets blow up. The
			// default-order rows instead measure the sift tax in a
			// realistic run, where growth triggers still fire during
			// reachability (the parameterized-suite scenario that
			// motivated the accelerations).
		}
		if design == "mdlc2" {
			// Single-acceleration ablations on the one design where
			// reordering dominates (EXPERIMENTS.md ablation H): each row
			// disables exactly one acceleration.
			cfgs = append(cfgs,
				reorderCfg{"auto-nointer", core.Options{AppendedOrder: true, Reorder: "auto", ReorderAccel: "lowerbound,symmetry"}},
				reorderCfg{"auto-nolb", core.Options{AppendedOrder: true, Reorder: "auto", ReorderAccel: "interaction,symmetry"}},
				reorderCfg{"auto-nosym", core.Options{AppendedOrder: true, Reorder: "auto", ReorderAccel: "interaction,lowerbound"}},
			)
		}
		for _, cfg := range cfgs {
			cfg := cfg
			b.Run(design+"/"+cfg.label, func(b *testing.B) {
				var st bdd.Statistics
				var peak int
				for i := 0; i < b.N; i++ {
					w := load(b, design, cfg.opts)
					m := w.Net.Manager()
					m.GC()
					m.ResetPeaks()
					res := reach.Forward(w.Net, reach.Options{})
					if !res.Converged {
						b.Fatal("diverged")
					}
					peak = m.PeakLive()
					st = m.Stats()
				}
				b.ReportMetric(float64(peak), "peak-live-nodes")
				b.ReportMetric(float64(st.Reorders), "reorders")
				b.ReportMetric(float64(st.ReorderTime.Milliseconds()), "sift-ms")
				b.ReportMetric(float64(st.ReorderSwaps), "swaps")
				b.ReportMetric(float64(st.ReorderInterSkips), "interaction-skips")
				b.ReportMetric(float64(st.ReorderLBAborts), "lb-aborts")
				b.ReportMetric(float64(st.ReorderSymPairs), "sym-pairs")
				b.ReportMetric(float64(st.ReorderNodesAfter), "final-live-nodes")
			})
		}
	}
}

func BenchmarkConeOfInfluence(b *testing.B) {
	prop := "ctl response AG(req=1 -> AF ack=1)\n"
	for _, cfg := range []struct {
		label string
		opts  core.Options
	}{
		{"full", core.Options{}},
		{"coi", core.Options{ConeOfInfluence: true}},
	} {
		cfg := cfg
		b.Run(cfg.label, func(b *testing.B) {
			var dropped int
			for i := 0; i < b.N; i++ {
				// end-to-end: compile, build, reduce (if enabled), check
				w, err := core.LoadVerilogString(coiBenchDesign, "coi.v", "coibench", cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.AddPIFString(prop, "p.pif"); err != nil {
					b.Fatal(err)
				}
				r := w.CheckCTL(w.CTLProps[0])
				if r.Err != nil || !r.Pass {
					b.Fatalf("unexpected result: %v pass=%v", r.Err, r.Pass)
				}
				dropped = r.ConeDropped
			}
			b.ReportMetric(float64(dropped), "latches-dropped")
		})
	}
}
