package hsis

// Live-node accounting on the bundled designs: build the network, run
// forward reachability, then protect what a negation-heavy verification
// session keeps — the reached set, its complement (the unreached/error
// cone), the preimage of that cone, and the preimage's complement (the
// care set for the next sweep) — collect everything else, and report
// what survives. Fair-cycle and language-emptiness sweeps hold exactly
// such polarity pairs. This is the forest the complement-edge kernel is
// meant to shrink: f and ¬f share one DAG, so each pair costs one copy
// instead of two.

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/core"
	"hsis/internal/designs"
	"hsis/internal/reach"
)

func TestLiveNodeCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("design builds are slow")
	}
	for _, name := range []string{"gigamax", "scheduler", "mdlc2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w := load2(t, name, core.Options{})
			n := w.Net
			m := n.Manager()
			res := reach.Forward(n, reach.Options{})
			if !res.Converged {
				t.Fatal("reachability diverged")
			}
			e := reach.Engine(n, reach.EngineClustered)
			roots := []bdd.Ref{
				res.Reached,
				m.Not(res.Reached), // unreached cone
			}
			pre := e.Preimage(roots[1])
			roots = append(roots, pre, m.Not(pre)) // sweep care set
			for _, f := range roots {
				m.IncRef(f)
			}
			m.GC()
			t.Logf("%s: %d live nodes after GC (analysis sets %d, peak %d)",
				name, m.Size(), m.NodeCountMulti(roots), m.PeakSize())
			for _, f := range roots {
				m.DecRef(f)
			}
		})
	}
}

func load2(t *testing.T, name string, opts core.Options) *core.Workspace {
	t.Helper()
	d, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.LoadVerilogString(d.Verilog, name+".v", d.Top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPIFString(d.PIF, name+".pif"); err != nil {
		t.Fatal(err)
	}
	return w
}
