// Package reorder implements dynamic variable reordering for the BDD
// kernel: Rudell-style sifting generalized to atomic variable blocks so
// MDD log-encoded bit groups and interleaved present/next-state pairs
// move as units, accelerated by the three classic prunings from the
// CUDD lineage. The interaction matrix (built by the kernel at
// StartReorder) turns swaps across non-interacting variable pairs into
// pure relabels and lets a whole span of unrelated blocks be crossed
// without size checks; a lower-bound estimate aborts a sift direction
// as soon as no remaining position can beat the best size seen; and
// positive symmetry detected during a size-neutral swap glues the pair
// into a dynamic block so later passes move it as one. The kernel half
// — the in-place adjacent-level swap that keeps protected Refs valid —
// lives in internal/bdd; this package is the search strategy on top.
//
// Sift follows the GC protection contract: every Ref the caller needs
// afterwards must be protected by IncRef, directly or transitively.
// Protected functions are preserved exactly (same Ref, same function);
// unprotected nodes may be reclaimed.
package reorder

import (
	"sort"
	"sync"

	"hsis/internal/bdd"
	"hsis/internal/telemetry"
)

// zoneOps is the kernel surface siftBlock drives. Both the whole-order
// ReorderSession handle and a ReorderZone implement it: the session
// measures with the global live count and allocates unbounded, a zone
// measures its own population and spends a private slot budget. Zoned
// decisions therefore depend only on the zone's own swap sequence,
// which is what makes the final order identical at any worker count.
type zoneOps interface {
	Swap(level int)
	MoveBlock(level, width, span int)
	ProbeSymmetry(level int) bool
	LevelSize(level int) int
	NoteLowerBoundAbort()
	NoteSymmetricPair()
	NoteBlockSifted()
	Pop() int
	Headroom() int
	MaxBucket() int
}

// Options tunes one sifting run.
type Options struct {
	// MaxGrowth bounds how far the node count may rise above the best
	// size seen while one block is in motion before the move aborts in
	// that direction (Rudell's maxGrowth; default 1.2).
	MaxGrowth float64
	// Converge repeats whole sifting passes until one fails to shrink
	// the manager, bounded by MaxPasses.
	Converge bool
	// MaxPasses caps converging passes (default 4).
	MaxPasses int

	// Ablation switches: each disables one acceleration independently
	// (the -reorder-accel CLI flag and the EXPERIMENTS.md ablation use
	// them). All false — everything enabled — is the default.
	NoInteraction bool // full-cost swaps and no span skipping
	NoLowerBound  bool // abort only on growth, never on the bound
	NoSymmetry    bool // never probe or glue symmetric pairs
}

// Result reports one sifting run.
type Result struct {
	Before, After    int // live nodes entering/leaving the run
	Swaps            int // adjacent-level swaps performed
	Passes           int // sifting passes completed
	InteractionSkips int // swaps taken as pure relabels (non-interacting pair)
	LowerBoundAborts int // sift directions cut short by the lower bound
	SymmetricPairs   int // variable pairs glued into symmetry blocks
}

// block is a run of adjacent levels that moves as a unit.
type block struct {
	id    int // identity, stable across moves
	level int // topmost level currently occupied
	width int // number of levels
}

// siftState is the mutable per-run state: the block sequence and the
// id→position index swapBlocks keeps current, so the per-block loop
// finds a block in O(1) instead of scanning (posOf[id] is -1 once a
// block has been absorbed into a symmetry group).
type siftState struct {
	blocks []block
	posOf  []int
}

// Sift reorders the manager's variables by block sifting: each block in
// turn is bubbled through its zone and settled at the position
// minimizing the live node count. A GC runs first so sifting measures
// (and moves) only what the protected roots reach.
//
// The run is zoned: blocks are partitioned into connected components of
// the interaction relation, each multi-block component is packed into a
// contiguous band of levels (pure relabels — crossed blocks never
// interact with the mover), and the components then sift independently,
// concurrently when the manager has workers. A block's position
// relative to blocks it does not interact with never changes any level
// population, so confining each block to its component loses nothing;
// single-block components have no position worth searching at all. The
// NoInteraction ablation cannot partition (it pretends the matrix is
// unusable) and runs the classic whole-order loop instead.
func Sift(m *bdd.Manager, opts Options) Result {
	growth := opts.MaxGrowth
	if growth <= 1 {
		growth = 1.2
	}
	passes := opts.MaxPasses
	if passes <= 0 {
		passes = 4
	}
	if !opts.Converge {
		passes = 1
	}
	m.GC()
	res := Result{Before: m.Size(), After: m.Size()}
	blocks := materializeBlocks(m)
	if len(blocks) < 2 {
		return res
	}
	s := m.StartReorder()
	if opts.NoInteraction {
		s.SetInteractionFastPath(false)
		st := &siftState{blocks: blocks, posOf: make([]int, len(blocks))}
		for i := range blocks {
			st.posOf[i] = i
		}
		res.Passes = siftPasses(m, s, s, st, growth, passes, opts)
	} else {
		res.Passes = siftZoned(m, s, blocks, growth, passes, opts)
	}
	res.After = m.Size()
	res.Swaps = s.Swaps()
	res.InteractionSkips = s.InteractionSkips()
	res.LowerBoundAborts = s.LowerBoundAborts()
	res.SymmetricPairs = s.SymmetricPairs()
	s.Close()
	return res
}

// siftPasses runs up to maxPasses sifting passes over st's blocks under
// kz, stopping early when a pass fails to shrink kz.Pop; it returns the
// number of passes completed.
func siftPasses(m *bdd.Manager, s *bdd.ReorderSession, kz zoneOps, st *siftState, growth float64, maxPasses int, opts Options) int {
	done := 0
	for p := 0; p < maxPasses; p++ {
		startPop := kz.Pop()
		for _, id := range blockOrder(kz, st.blocks) {
			if idx := st.posOf[id]; idx >= 0 {
				siftBlock(m, s, kz, st, idx, growth, opts)
				kz.NoteBlockSifted()
			}
		}
		done++
		if kz.Pop() >= startPop {
			break
		}
	}
	return done
}

// siftZoned partitions, packs, and sifts the components concurrently.
// It returns the largest per-zone pass count.
func siftZoned(m *bdd.Manager, s *bdd.ReorderSession, blocks []block, growth float64, passes int, opts Options) int {
	comps := componentsOf(m, s, blocks)
	var multi [][]int
	for _, c := range comps {
		if len(c) >= 2 {
			multi = append(multi, c)
		}
	}
	if len(multi) == 0 {
		// Every block is its own component: no position affects any
		// level population, so there is nothing to sift.
		return 0
	}
	st := &siftState{blocks: blocks, posOf: make([]int, len(blocks))}
	for i := range blocks {
		st.posOf[i] = i
	}
	packComponents(s, st, multi)
	// Describe each packed component to the kernel by its variable band.
	varSets := make([][]int, len(multi))
	zoneBlocks := make([][]block, len(multi))
	for i, comp := range multi {
		p0 := st.posOf[comp[0]]
		zb := append([]block(nil), st.blocks[p0:p0+len(comp)]...)
		first, last := zb[0], zb[len(zb)-1]
		var vars []int
		for l := first.level; l < last.level+last.width; l++ {
			vars = append(vars, m.VarAtLevel(l))
		}
		varSets[i] = vars
		zoneBlocks[i] = zb
	}
	zones := s.OpenZones(varSets, growth)
	defer s.CloseZones()

	runZone := func(i int) int {
		zst := &siftState{blocks: zoneBlocks[i], posOf: make([]int, len(blocks))}
		for j := range zst.posOf {
			zst.posOf[j] = -1
		}
		for j, b := range zst.blocks {
			zst.posOf[b.id] = j
		}
		return siftPasses(m, s, zones[i], zst, growth, passes, opts)
	}

	maxPass := 0
	workers := m.Workers()
	if workers > len(zones) {
		workers = len(zones)
	}
	if workers <= 1 {
		for i := range zones {
			if p := runZone(i); p > maxPass {
				maxPass = p
			}
		}
		return maxPass
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		fault any
		sem   = make(chan struct{}, workers)
	)
	for i := range zones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if fault == nil {
						fault = r
					}
					mu.Unlock()
				}
			}()
			p := runZone(i)
			mu.Lock()
			if p > maxPass {
				maxPass = p
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if fault != nil {
		panic(fault)
	}
	return maxPass
}

// componentsOf groups block IDs into connected components of the
// interaction relation, each listed in ascending position, components
// ordered by first member.
func componentsOf(m *bdd.Manager, s *bdd.ReorderSession, blocks []block) [][]int {
	n := len(blocks)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ri, rj := find(i), find(j); ri != rj && interacting(m, s, blocks[i], blocks[j]) {
				parent[rj] = ri
			}
		}
	}
	byRoot := make(map[int][]int, n)
	var order []int
	for i := 0; i < n; i++ {
		r := find(i)
		if len(byRoot[r]) == 0 {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}

// packComponents makes each multi-block component occupy contiguous
// positions (hence contiguous levels), pulling later members left to
// sit after the first. Every block crossed sits between two members of
// the moving block's component and belongs to another component, so it
// cannot interact with the mover and each move is a pure relabel.
func packComponents(s *bdd.ReorderSession, st *siftState, comps [][]int) {
	for _, comp := range comps {
		target := st.posOf[comp[0]]
		for _, id := range comp[1:] {
			target++
			p := st.posOf[id]
			if p == target {
				continue
			}
			span := 0
			for q := target; q < p; q++ {
				span += st.blocks[q].width
			}
			jumpBlocks(s, st, p, -1, p-target, span)
		}
	}
}

// EnableAuto arms growth-triggered sifting on m: when live nodes exceed
// grow times the count at the last (re-)arming — at least minNodes —
// the next kernel safe point (Manager.MaybeReorder, called between
// fixpoint iterations, or MaybeGC) runs Sift with the given options and
// re-arms the trigger. grow <= 1 selects 2x, minNodes <= 0 selects 4096.
//
// The hook carries a back-off policy: a pass that shrinks the manager
// by less than 10% raises the effective growth trigger by a quarter
// (up to 2x the configured factor), so a near-converged run stops
// paying for full passes that buy little; a productive pass resets the
// trigger. The raise is gentle on purpose — near-converged passes
// often still shave a few percent each, and with the accelerated
// sifter a pass costs milliseconds, so the policy only has to damp the
// long tail, not amputate it (on mdlc2 the gentle raise keeps the
// final node count within a few percent of unlimited re-sifting while
// skipping the late no-op passes). The adjustment lands before
// MaybeReorder re-arms, so it takes effect immediately.
func EnableAuto(m *bdd.Manager, grow float64, minNodes int, opts Options) {
	if grow <= 1 {
		grow = 2
	}
	if minNodes <= 0 {
		minNodes = 1 << 12
	}
	cur := grow
	m.SetAutoReorder(grow, minNodes, func(m *bdd.Manager) {
		res := Sift(m, opts)
		if res.After*10 > res.Before*9 { // shrank < 10%: unproductive
			if cur < 2*grow {
				cur *= 1.25
				m.SetReorderGrowth(cur)
			}
		} else if cur != grow {
			cur = grow
			m.SetReorderGrowth(grow)
		}
	})
}

// DisableAuto removes the automatic sifting hook and resets the policy.
func DisableAuto(m *bdd.Manager) { m.SetAutoReorder(0, 0, nil) }

// materializeBlocks projects the registered variable groups onto the
// current order: a maximal run of adjacent levels whose variables all
// belong to one group forms a block, every other level is a singleton.
// (Group variables that are not currently adjacent fall into separate
// blocks — registration at creation time keeps them adjacent, and block
// moves preserve that.)
func materializeBlocks(m *bdd.Manager) []block {
	n := m.NumVars()
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range m.VarGroups() {
		for _, v := range g {
			groupOf[v] = gi
		}
	}
	var blocks []block
	for l := 0; l < n; {
		width := 1
		if g := groupOf[m.VarAtLevel(l)]; g >= 0 {
			for l+width < n && groupOf[m.VarAtLevel(l+width)] == g {
				width++
			}
		}
		blocks = append(blocks, block{id: len(blocks), level: l, width: width})
		l += width
	}
	return blocks
}

// blockOrder returns block ids heaviest-first: sifting the most
// populated levels first realizes the biggest reductions early, which
// tightens the max-growth bound for every later move.
func blockOrder(kz zoneOps, blocks []block) []int {
	type weighted struct{ id, nodes int }
	ws := make([]weighted, len(blocks))
	for i, b := range blocks {
		ws[i] = weighted{b.id, blockPop(kz, b)}
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].nodes > ws[j].nodes })
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = w.id
	}
	return out
}

// blockPop returns the block's current node population.
func blockPop(kz zoneOps, b block) int {
	pop := 0
	for l := b.level; l < b.level+b.width; l++ {
		pop += kz.LevelSize(l)
	}
	return pop
}

// slack is the most nodes the block could still lose: its population
// minus its width. Every level permanently holds at least its
// variable's pinned projection node, so a level's population never
// drops below one and a block's never below its width — which is what
// makes the lower bound in siftBlock sound.
func slack(kz zoneOps, b block) int { return blockPop(kz, b) - b.width }

// interacting reports whether any variable of a interacts with any
// variable of b (both blocks at their current levels).
func interacting(m *bdd.Manager, s *bdd.ReorderSession, a, b block) bool {
	for la := a.level; la < a.level+a.width; la++ {
		for lb := b.level; lb < b.level+b.width; lb++ {
			if s.Interacts(m.VarAtLevel(la), m.VarAtLevel(lb)) {
				return true
			}
		}
	}
	return false
}

// siftBlock bubbles st.blocks[idx] to both ends of the order (nearer
// end first), tracking the best position seen, and finally settles the
// block at that position. A direction is abandoned when the node count
// exceeds growth times the best, or — unless disabled — when the lower
// bound proves no remaining position can beat the best: the only levels
// that can still shrink are the moving block itself and the interacting
// blocks ahead of it (crossing a non-interacting block is an exact
// relabel, and blocks already passed are frozen for this direction), so
// once size − Σ slack(ahead) − slack(moving) ≥ best the direction is
// dead. Size-neutral swaps across an interacting pair of singleton
// blocks probe for positive symmetry and glue the pair into one block.
//
// All size decisions go through kz: inside a zone that is the zone's
// own population and its private slot budget, so the search is
// oblivious to what concurrent zones are doing.
func siftBlock(m *bdd.Manager, s *bdd.ReorderSession, kz zoneOps, st *siftState, idx int, growth float64, opts Options) {
	var sp telemetry.Span
	if t := m.Telemetry(); t != nil {
		sp = t.Start("reorder.sift_block")
	}
	fromLevel := st.blocks[idx].level
	fromSize := kz.Pop()
	best := fromSize
	bestPos := idx
	cur := idx

	// run bubbles the block toward one end: dir=+1 down, dir=-1 up.
	run := func(dir int) {
		blocks := st.blocks
		// Lower-bound state: R bounds how much the blocks still ahead
		// in this direction can shrink.
		R := 0
		if !opts.NoLowerBound {
			for q := cur + dir; q >= 0 && q < len(blocks); q += dir {
				if opts.NoInteraction || interacting(m, s, blocks[cur], blocks[q]) {
					R += slack(kz, blocks[q])
				}
			}
		}
		for {
			blocks = st.blocks
			nxt := cur + dir
			if nxt < 0 || nxt >= len(blocks) {
				return
			}
			if !opts.NoInteraction {
				// Jump the maximal run of consecutive non-interacting
				// blocks in one O(span) relabel. The crossing is exact —
				// size unchanged, nothing to check — and those blocks
				// contribute zero slack to R, so the bound learns nothing.
				k, span := 0, 0
				for q := nxt; q >= 0 && q < len(blocks) && !interacting(m, s, blocks[cur], blocks[q]); q += dir {
					k++
					span += blocks[q].width
				}
				if k > 0 {
					jumpBlocks(kz, st, cur, dir, k, span)
					cur += k * dir
					continue
				}
			}
			// Slot-budget gate: a zone allocates swap fill from a private
			// budget, and one adjacent swap can demand up to the larger
			// bucket's worth of fresh slots. Abort the direction while
			// enough remains to settle back rather than run the budget to
			// the panic wall mid-swap.
			if hr := kz.Headroom(); hr >= 0 && hr < 4*kz.MaxBucket()+64 {
				return
			}
			mover, other := blocks[cur], blocks[nxt]
			c := 0
			if !opts.NoLowerBound {
				c = slack(kz, other)
			}
			symEligible := !opts.NoSymmetry && mover.width == 1 && other.width == 1
			var popHi, popLo int
			if symEligible {
				popHi, popLo = kz.LevelSize(mover.level), kz.LevelSize(other.level)
				if dir < 0 {
					popHi, popLo = popLo, popHi
				}
			}
			j := cur
			if dir < 0 {
				j = cur - 1
			}
			swapBlocks(kz, st, j)
			cur = nxt
			sz := kz.Pop()
			if sz < best {
				best, bestPos = sz, cur
			}
			if symEligible && sz == best &&
				kz.LevelSize(st.blocks[j].level) == popLo &&
				kz.LevelSize(st.blocks[j].level+1) == popHi &&
				kz.ProbeSymmetry(st.blocks[j].level) {
				glueAt(m, st, j)
				cur = j
				bestPos = j
				kz.NoteSymmetricPair()
				if !opts.NoLowerBound {
					R -= c
				}
				continue
			}
			if float64(sz) > growth*float64(best) {
				return
			}
			if !opts.NoLowerBound {
				R -= c
				if sz-R-slack(kz, st.blocks[cur]) >= best {
					kz.NoteLowerBoundAbort()
					return
				}
			}
		}
	}
	n := len(st.blocks)
	if idx >= n/2 {
		run(1)
		run(-1)
	} else {
		run(-1)
		run(1)
	}
	for cur != bestPos {
		dir := 1
		if bestPos < cur {
			dir = -1
		}
		if !opts.NoInteraction {
			k, span := 0, 0
			for q := cur + dir; q != bestPos+dir && !interacting(m, s, st.blocks[cur], st.blocks[q]); q += dir {
				k++
				span += st.blocks[q].width
			}
			if k > 0 {
				jumpBlocks(kz, st, cur, dir, k, span)
				cur += k * dir
				continue
			}
		}
		j := cur
		if dir < 0 {
			j = cur - 1
		}
		swapBlocks(kz, st, j)
		cur += dir
	}
	sp.End(
		telemetry.Int("var", m.VarAtLevel(st.blocks[cur].level)),
		telemetry.Int("width", st.blocks[cur].width),
		telemetry.Int("from_level", fromLevel),
		telemetry.Int("to_level", st.blocks[cur].level),
		telemetry.Int("from_size", fromSize),
		telemetry.Int("to_size", kz.Pop()))
}

// glueAt merges the adjacent blocks at positions j and j+1 into one
// dynamic block (upper block's identity survives), registers the merged
// variables as a permanent group so later Sift runs move them together,
// and compacts the block sequence. The caller has just verified the
// swap was size-neutral and the pair positively symmetric; a glue can
// never be wrong, only unhelpful, because block moves preserve all
// functions regardless.
func glueAt(m *bdd.Manager, st *siftState, j int) {
	upper, lower := st.blocks[j], st.blocks[j+1]
	vars := make([]int, 0, upper.width+lower.width)
	for l := upper.level; l < lower.level+lower.width; l++ {
		vars = append(vars, m.VarAtLevel(l))
	}
	m.GroupVars(vars)
	st.posOf[lower.id] = -1
	upper.width += lower.width
	st.blocks[j] = upper
	st.blocks = append(st.blocks[:j+1], st.blocks[j+2:]...)
	for q := j + 1; q < len(st.blocks); q++ {
		st.posOf[st.blocks[q].id] = q
	}
}

// jumpBlocks moves the block at position cur across the k consecutive
// blocks next to it in direction dir — span levels in total, none of
// them interacting with the mover — with one O(span) kernel relabel,
// then fixes up block levels and the id→position index. The crossed
// blocks keep their internal order and shift by the mover's width.
func jumpBlocks(kz zoneOps, st *siftState, cur, dir, k, span int) {
	blocks := st.blocks
	mover := blocks[cur]
	if dir > 0 {
		kz.MoveBlock(mover.level, mover.width, span)
		copy(blocks[cur:], blocks[cur+1:cur+k+1])
		for q := cur; q < cur+k; q++ {
			blocks[q].level -= mover.width
			st.posOf[blocks[q].id] = q
		}
		mover.level += span
		blocks[cur+k] = mover
		st.posOf[mover.id] = cur + k
	} else {
		kz.MoveBlock(mover.level, mover.width, -span)
		copy(blocks[cur-k+1:cur+1], blocks[cur-k:cur])
		for q := cur - k + 1; q <= cur; q++ {
			blocks[q].level += mover.width
			st.posOf[blocks[q].id] = q
		}
		mover.level -= span
		blocks[cur-k] = mover
		st.posOf[mover.id] = cur - k
	}
}

// swapBlocks exchanges the adjacent blocks at positions j and j+1 with
// width(x)*width(y) adjacent-level swaps, preserving the internal order
// of both, and keeps the id→position index current.
func swapBlocks(kz zoneOps, st *siftState, j int) {
	blocks := st.blocks
	x, y := blocks[j], blocks[j+1]
	p := x.level
	// Bubble each level of y in turn up through all of x.
	for k := 0; k < y.width; k++ {
		for t := p + x.width + k; t > p+k; t-- {
			kz.Swap(t - 1)
		}
	}
	y.level = p
	x.level = p + y.width
	blocks[j], blocks[j+1] = y, x
	st.posOf[y.id], st.posOf[x.id] = j, j+1
}
