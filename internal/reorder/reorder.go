// Package reorder implements dynamic variable reordering for the BDD
// kernel: Rudell-style sifting with a max-growth abort and optional
// converging passes, generalized to atomic variable blocks so MDD
// log-encoded bit groups and interleaved present/next-state pairs move
// as units. The kernel half — the in-place adjacent-level swap that
// keeps protected Refs valid — lives in internal/bdd; this package is
// the search strategy on top of it.
//
// Sift follows the GC protection contract: every Ref the caller needs
// afterwards must be protected by IncRef, directly or transitively.
// Protected functions are preserved exactly (same Ref, same function);
// unprotected nodes may be reclaimed.
package reorder

import (
	"sort"

	"hsis/internal/bdd"
)

// Options tunes one sifting run.
type Options struct {
	// MaxGrowth bounds how far the node count may rise above the best
	// size seen while one block is in motion before the move aborts in
	// that direction (Rudell's maxGrowth; default 1.2).
	MaxGrowth float64
	// Converge repeats whole sifting passes until one fails to shrink
	// the manager, bounded by MaxPasses.
	Converge bool
	// MaxPasses caps converging passes (default 4).
	MaxPasses int
}

// Result reports one sifting run.
type Result struct {
	Before, After int // live nodes entering/leaving the run
	Swaps         int // adjacent-level swaps performed
	Passes        int // sifting passes completed
}

// block is a run of adjacent levels that moves as a unit.
type block struct {
	id    int // identity, stable across moves
	level int // topmost level currently occupied
	width int // number of levels
}

// Sift reorders the manager's variables by block sifting: each block in
// turn is bubbled through the whole order and settled at the position
// minimizing the live node count. A GC runs first so sifting measures
// (and moves) only what the protected roots reach.
func Sift(m *bdd.Manager, opts Options) Result {
	growth := opts.MaxGrowth
	if growth <= 1 {
		growth = 1.2
	}
	passes := opts.MaxPasses
	if passes <= 0 {
		passes = 4
	}
	if !opts.Converge {
		passes = 1
	}
	m.GC()
	res := Result{Before: m.Size(), After: m.Size()}
	blocks := materializeBlocks(m)
	if len(blocks) < 2 {
		return res
	}
	s := m.StartReorder()
	for p := 0; p < passes; p++ {
		startSize := m.Size()
		for _, id := range blockOrder(s, blocks) {
			siftBlock(m, s, blocks, indexOf(blocks, id), growth)
		}
		res.Passes++
		if m.Size() >= startSize {
			break
		}
	}
	res.After = m.Size()
	res.Swaps = s.Swaps()
	s.Close()
	return res
}

// EnableAuto arms growth-triggered sifting on m: when live nodes exceed
// grow times the count at the last (re-)arming — at least minNodes —
// the next kernel safe point (Manager.MaybeReorder, called between
// fixpoint iterations, or MaybeGC) runs Sift with the given options and
// re-arms the trigger. grow <= 1 selects 2x, minNodes <= 0 selects 4096.
func EnableAuto(m *bdd.Manager, grow float64, minNodes int, opts Options) {
	if grow <= 1 {
		grow = 2
	}
	if minNodes <= 0 {
		minNodes = 1 << 12
	}
	m.SetAutoReorder(grow, minNodes, func(m *bdd.Manager) { Sift(m, opts) })
}

// DisableAuto removes the automatic sifting hook and resets the policy.
func DisableAuto(m *bdd.Manager) { m.SetAutoReorder(0, 0, nil) }

// materializeBlocks projects the registered variable groups onto the
// current order: a maximal run of adjacent levels whose variables all
// belong to one group forms a block, every other level is a singleton.
// (Group variables that are not currently adjacent fall into separate
// blocks — registration at creation time keeps them adjacent, and block
// moves preserve that.)
func materializeBlocks(m *bdd.Manager) []block {
	n := m.NumVars()
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range m.VarGroups() {
		for _, v := range g {
			groupOf[v] = gi
		}
	}
	var blocks []block
	for l := 0; l < n; {
		width := 1
		if g := groupOf[m.VarAtLevel(l)]; g >= 0 {
			for l+width < n && groupOf[m.VarAtLevel(l+width)] == g {
				width++
			}
		}
		blocks = append(blocks, block{id: len(blocks), level: l, width: width})
		l += width
	}
	return blocks
}

// blockOrder returns block ids heaviest-first: sifting the most
// populated levels first realizes the biggest reductions early, which
// tightens the max-growth bound for every later move.
func blockOrder(s *bdd.ReorderSession, blocks []block) []int {
	type weighted struct{ id, nodes int }
	ws := make([]weighted, len(blocks))
	for i, b := range blocks {
		w := 0
		for l := b.level; l < b.level+b.width; l++ {
			w += s.LevelSize(l)
		}
		ws[i] = weighted{b.id, w}
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].nodes > ws[j].nodes })
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = w.id
	}
	return out
}

func indexOf(blocks []block, id int) int {
	for i, b := range blocks {
		if b.id == id {
			return i
		}
	}
	panic("reorder: unknown block id")
}

// siftBlock bubbles blocks[idx] to both ends of the order (nearer end
// first), tracking the best position seen, aborting a direction once
// the node count exceeds growth times the best, and finally settling
// the block at its best position.
func siftBlock(m *bdd.Manager, s *bdd.ReorderSession, blocks []block, idx int, growth float64) {
	n := len(blocks)
	best := m.Size()
	bestPos := idx
	cur := idx
	down := func() {
		for cur < n-1 {
			swapBlocks(s, blocks, cur)
			cur++
			if sz := m.Size(); sz < best {
				best, bestPos = sz, cur
			} else if float64(sz) > growth*float64(best) {
				return
			}
		}
	}
	up := func() {
		for cur > 0 {
			swapBlocks(s, blocks, cur-1)
			cur--
			if sz := m.Size(); sz < best {
				best, bestPos = sz, cur
			} else if float64(sz) > growth*float64(best) {
				return
			}
		}
	}
	if idx >= n/2 {
		down()
		up()
	} else {
		up()
		down()
	}
	for cur < bestPos {
		swapBlocks(s, blocks, cur)
		cur++
	}
	for cur > bestPos {
		swapBlocks(s, blocks, cur-1)
		cur--
	}
}

// swapBlocks exchanges the adjacent blocks at positions j and j+1 with
// width(x)*width(y) adjacent-level swaps, preserving the internal order
// of both.
func swapBlocks(s *bdd.ReorderSession, blocks []block, j int) {
	x, y := blocks[j], blocks[j+1]
	p := x.level
	// Bubble each level of y in turn up through all of x.
	for k := 0; k < y.width; k++ {
		for t := p + x.width + k; t > p+k; t-- {
			s.Swap(t - 1)
		}
	}
	y.level = p
	x.level = p + y.width
	blocks[j], blocks[j+1] = y, x
}
