package reorder

import (
	"testing"

	"hsis/internal/bdd"
)

// evalAll snapshots f's truth table over nVars variables.
func evalAll(m *bdd.Manager, f bdd.Ref, nVars int) []bool {
	out := make([]bool, 1<<nVars)
	assignment := make([]bool, nVars)
	for i := range out {
		for v := range assignment {
			assignment[v] = i>>v&1 == 1
		}
		out[i] = m.Eval(f, assignment)
	}
	return out
}

// achilles builds the classic order-sensitive function
// x0·x_k ∨ x1·x_{k+1} ∨ … over 2k variables: exponential under the
// creation order (partners k levels apart), linear once sifting pairs
// the partners up.
func achilles(m *bdd.Manager, vars []bdd.Ref) bdd.Ref {
	k := len(vars) / 2
	f := bdd.False
	for i := 0; i < k; i++ {
		f = m.Or(f, m.And(vars[i], vars[i+k]))
	}
	return f
}

func TestSiftShrinksAndPreservesFunctions(t *testing.T) {
	const n = 12
	m := bdd.New()
	vars := m.NewVars(n)
	f := m.IncRef(achilles(m, vars))
	g := m.IncRef(m.Xor(vars[0], m.And(vars[5], vars[11])))
	wantF, wantG := evalAll(m, f, n), evalAll(m, g, n)

	before := m.NodeCount(f)
	res := Sift(m, Options{Converge: true})
	if res.After >= res.Before {
		t.Fatalf("sifting did not shrink the manager: %d -> %d", res.Before, res.After)
	}
	if after := m.NodeCount(f); after*2 > before {
		t.Fatalf("achilles function not untangled: %d -> %d nodes", before, after)
	}
	if res.Swaps == 0 || res.Passes == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	gotF, gotG := evalAll(m, f, n), evalAll(m, g, n)
	for i, want := range wantF {
		if gotF[i] != want {
			t.Fatalf("f changed at assignment %d", i)
		}
	}
	for i, want := range wantG {
		if gotG[i] != want {
			t.Fatalf("g changed at assignment %d", i)
		}
	}
	if st := m.Stats(); st.Reorders != 1 || st.ReorderSwaps == 0 {
		t.Fatalf("reorder statistics not recorded: %+v", st)
	}
}

func TestGroupBlocksStayContiguous(t *testing.T) {
	const n = 10
	m := bdd.New()
	vars := m.NewVars(n)
	m.GroupVars([]int{0, 1, 2})
	m.GroupVars([]int{3, 4})
	f := m.IncRef(achilles(m, vars))
	want := evalAll(m, f, n)

	Sift(m, Options{Converge: true})
	for _, g := range [][]int{{0, 1, 2}, {3, 4}} {
		base := m.Level(g[0])
		for off, v := range g {
			if m.Level(v) != base+off {
				t.Fatalf("group %v torn apart: levels %d %d %d", g,
					m.Level(g[0]), m.Level(g[1]), m.Level(g[len(g)-1]))
			}
		}
	}
	got := evalAll(m, f, n)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("function changed at assignment %d", i)
		}
	}
}

// TestAutoSiftAtSafePoints drives the full automatic path: EnableAuto
// arms the kernel trigger, allocation pressure fires it, and a
// MaybeReorder safe point (with the caller's Refs protected, per the GC
// contract) runs the sift.
func TestAutoSiftAtSafePoints(t *testing.T) {
	const n = 14
	m := bdd.New()
	vars := m.NewVars(n)
	EnableAuto(m, 1.2, 64, Options{Converge: true})

	var roots []bdd.Ref
	want := make(map[bdd.Ref][]bool)
	for i := 0; i < n/2; i++ {
		f := m.IncRef(achilles(m, vars[:2*(i+1)]))
		roots = append(roots, f)
		want[f] = evalAll(m, f, n)
		m.MaybeReorder() // fixpoint-loop safe point
	}
	if m.Stats().Reorders == 0 {
		t.Fatalf("auto trigger never fired (%d live nodes)", m.Size())
	}
	for i, f := range roots {
		got := evalAll(m, f, n)
		for a, w := range want[f] {
			if got[a] != w {
				t.Fatalf("root %d changed at assignment %d after auto-sift", i, a)
			}
		}
	}
	DisableAuto(m)
	if m.GetReorderPolicy() != bdd.ReorderOff {
		t.Fatal("DisableAuto left the policy armed")
	}
}

// TestSiftGluesSymmetricPair sifts a totally symmetric function
// (majority of three) mixed with an order-sensitive one: sifting must
// detect at least one symmetric pair, glue it into a registered group,
// and preserve both functions.
func TestSiftGluesSymmetricPair(t *testing.T) {
	const n = 8
	m := bdd.New()
	vars := m.NewVars(n)
	maj := m.Or(m.Or(m.And(vars[5], vars[6]), m.And(vars[5], vars[7])), m.And(vars[6], vars[7]))
	m.IncRef(maj)
	f := m.IncRef(achilles(m, vars[:4]))
	wantM, wantF := evalAll(m, maj, n), evalAll(m, f, n)

	res := Sift(m, Options{Converge: true})
	if res.SymmetricPairs == 0 {
		t.Fatalf("no symmetric pair detected in a majority function: %+v", res)
	}
	if len(m.VarGroups()) == 0 {
		t.Fatal("symmetric pair was not registered as a group")
	}
	gotM, gotF := evalAll(m, maj, n), evalAll(m, f, n)
	for a := range wantM {
		if gotM[a] != wantM[a] || gotF[a] != wantF[a] {
			t.Fatalf("function changed at assignment %d after symmetric glue", a)
		}
	}
	// A glued group must survive a second run intact.
	groups := len(m.VarGroups())
	Sift(m, Options{})
	if len(m.VarGroups()) < groups {
		t.Fatal("second sift lost a registered symmetry group")
	}
}

// TestLowerBoundIsQualityNeutral pins the soundness of the pruning: the
// lower bound may only abort directions that provably cannot beat the
// best position, so enabling it must reach exactly the final size of the
// unpruned search on the same input.
func TestLowerBoundIsQualityNeutral(t *testing.T) {
	const n = 12
	build := func() *bdd.Manager {
		m := bdd.New()
		vars := m.NewVars(n)
		m.IncRef(achilles(m, vars))
		m.IncRef(m.And(vars[1], m.Xor(vars[4], vars[9])))
		return m
	}
	a := Sift(build(), Options{Converge: true, NoSymmetry: true})
	b := Sift(build(), Options{Converge: true, NoSymmetry: true, NoLowerBound: true})
	if a.After != b.After {
		t.Fatalf("lower bound changed the result: %d with, %d without", a.After, b.After)
	}
	if a.LowerBoundAborts == 0 {
		t.Fatalf("lower bound never fired on an order-sensitive input: %+v", a)
	}
}

// TestSiftSpanJumpsDisjointSupports sifts two groups of functions over
// disjoint variable sets: the interaction matrix must partition them
// into independent zones, so no swap (and no relabel) ever crosses the
// group boundary — each group settles entirely within its own band.
func TestSiftSpanJumpsDisjointSupports(t *testing.T) {
	const n = 12
	m := bdd.New()
	vars := m.NewVars(n)
	f := m.IncRef(achilles(m, vars[:6]))
	g := m.IncRef(achilles(m, vars[6:]))
	wantF, wantG := evalAll(m, f, n), evalAll(m, g, n)

	Sift(m, Options{Converge: true})
	if zones := m.Stats().SiftZones; zones < 2 {
		t.Fatalf("disjoint supports should sift as independent zones, got %d", zones)
	}
	for l := 0; l < 6; l++ {
		if m.VarAtLevel(l) >= 6 {
			t.Fatalf("variable %d crossed the disjoint-support boundary to level %d", m.VarAtLevel(l), l)
		}
	}
	gotF, gotG := evalAll(m, f, n), evalAll(m, g, n)
	for a := range wantF {
		if gotF[a] != wantF[a] || gotG[a] != wantG[a] {
			t.Fatalf("function changed at assignment %d", a)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSiftRandomized cross-checks sifting against evaluation snapshots
// over randomized DAGs and option combinations.
func TestSiftRandomized(t *testing.T) {
	const n = 9
	for seed := uint64(1); seed <= 8; seed++ {
		m := bdd.New()
		vars := m.NewVars(n)
		s := seed
		next := func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s >> 33
		}
		pool := append([]bdd.Ref(nil), vars...)
		var roots []bdd.Ref
		for len(pool) < 40 {
			a, b := pool[next()%uint64(len(pool))], pool[next()%uint64(len(pool))]
			var f bdd.Ref
			switch next() % 4 {
			case 0:
				f = m.And(a, b)
			case 1:
				f = m.Or(a, m.Not(b))
			case 2:
				f = m.Xor(a, b)
			default:
				f = m.ITE(a, b, m.Not(a))
			}
			pool = append(pool, f)
			if next()%3 == 0 {
				roots = append(roots, m.IncRef(f))
			}
		}
		if next()%2 == 0 {
			m.GroupVars([]int{int(next() % (n - 1)), int(next()%(n-1)) + 1})
		}
		want := make([][]bool, len(roots))
		for i, f := range roots {
			want[i] = evalAll(m, f, n)
		}
		res := Sift(m, Options{
			MaxGrowth:     1.1 + float64(seed%3)/10,
			Converge:      seed%2 == 0,
			NoInteraction: seed%3 == 0,
			NoLowerBound:  seed%5 == 0,
			NoSymmetry:    seed%7 == 0,
		})
		if res.After > res.Before {
			t.Fatalf("seed %d: sifting grew the manager %d -> %d", seed, res.Before, res.After)
		}
		for i, f := range roots {
			got := evalAll(m, f, n)
			for a := range got {
				if got[a] != want[i][a] {
					t.Fatalf("seed %d: root %d changed at assignment %d", seed, i, a)
				}
			}
		}
	}
}
