package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one Verilog source file.
func Parse(src, file string) (*SourceFile, error) {
	toks, err := lexAll(src, file)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: file}
	out := &SourceFile{}
	for !p.atEOF() {
		switch {
		case p.peekIdent("typedef"):
			td, err := p.typedef()
			if err != nil {
				return nil, err
			}
			out.Typedefs = append(out.Typedefs, td)
		case p.peekIdent("module"):
			m, err := p.module()
			if err != nil {
				return nil, err
			}
			out.Modules = append(out.Modules, m)
		default:
			return nil, p.errf("expected module or typedef, found %q", p.cur().text)
		}
	}
	if len(out.Modules) == 0 {
		return nil, fmt.Errorf("%s: no modules found", file)
	}
	return out, nil
}

type parser struct {
	toks []tok
	pos  int
	file string
}

func (p *parser) cur() tok    { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tkEOF }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) peekIdent(name string) bool {
	t := p.cur()
	return t.kind == tkIdent && t.text == name
}

func (p *parser) acceptIdent(name string) bool {
	if p.peekIdent(name) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptSym(s string) bool {
	t := p.cur()
	if t.kind == tkSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if p.acceptSym(s) {
		return nil
	}
	return p.errf("expected %q, found %q", s, p.cur().text)
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tkIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// typedef enum { A, B } name;
func (p *parser) typedef() (*Typedef, error) {
	line := p.cur().line
	p.pos++ // typedef
	if !p.acceptIdent("enum") {
		return nil, p.errf("typedef supports only enum")
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	td := &Typedef{Line: line}
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		td.Values = append(td.Values, v)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	td.Name = name
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return td, nil
}

func (p *parser) module() (*Module, error) {
	line := p.cur().line
	p.pos++ // module
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, File: p.file, Line: line}
	if p.acceptSym("(") {
		if !p.acceptSym(")") {
			for {
				port, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				m.Ports = append(m.Ports, port)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	for !p.acceptIdent("endmodule") {
		if p.atEOF() {
			return nil, p.errf("missing endmodule for %s", name)
		}
		if err := p.moduleItem(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (p *parser) moduleItem(m *Module) error {
	t := p.cur()
	if t.kind != tkIdent {
		return p.errf("unexpected %q in module body", t.text)
	}
	switch t.text {
	case "input":
		return p.decl(m, DeclInput)
	case "output":
		return p.decl(m, DeclOutput)
	case "wire":
		return p.decl(m, DeclWire)
	case "reg":
		return p.decl(m, DeclReg)
	case "parameter":
		return p.param(m)
	case "assign":
		return p.assign(m)
	case "always":
		return p.always(m)
	case "initial":
		return p.initial(m)
	default:
		// enum-typed decl ("state_t reg s;") or instance ("child c(...);")
		next := p.toks[p.pos+1]
		if next.kind == tkIdent && (next.text == "reg" || next.text == "wire") {
			return p.enumDecl(m)
		}
		return p.instance(m)
	}
}

// decl: input [3:0] a, b;
func (p *parser) decl(m *Module, kind DeclKind) error {
	line := p.cur().line
	p.pos++ // keyword
	width := 1
	if p.acceptSym("[") {
		msb, err := p.constInt(m)
		if err != nil {
			return err
		}
		if err := p.expectSym(":"); err != nil {
			return err
		}
		lsb, err := p.constInt(m)
		if err != nil {
			return err
		}
		if err := p.expectSym("]"); err != nil {
			return err
		}
		if lsb != 0 || msb < lsb {
			return p.errf("only [N:0] ranges are supported")
		}
		width = msb - lsb + 1
	}
	d := &Decl{Kind: kind, Width: width, Line: line}
	for {
		n, err := p.expectIdent()
		if err != nil {
			return err
		}
		d.Names = append(d.Names, n)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	m.Decls = append(m.Decls, d)
	return p.expectSym(";")
}

// enumDecl: state_t reg s, t;
func (p *parser) enumDecl(m *Module) error {
	line := p.cur().line
	enumName, err := p.expectIdent()
	if err != nil {
		return err
	}
	kind := DeclWire
	switch {
	case p.acceptIdent("reg"):
		kind = DeclReg
	case p.acceptIdent("wire"):
		kind = DeclWire
	default:
		return p.errf("expected reg or wire after type %s", enumName)
	}
	d := &Decl{Kind: kind, Enum: enumName, Width: 0, Line: line}
	for {
		n, err := p.expectIdent()
		if err != nil {
			return err
		}
		d.Names = append(d.Names, n)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	m.Decls = append(m.Decls, d)
	return p.expectSym(";")
}

func (p *parser) param(m *Module) error {
	line := p.cur().line
	p.pos++ // parameter
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	v, err := p.constInt(m)
	if err != nil {
		return err
	}
	m.Params = append(m.Params, &Param{Name: name, Value: v, Line: line})
	return p.expectSym(";")
}

func (p *parser) assign(m *Module) error {
	line := p.cur().line
	p.pos++ // assign
	lhs, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	rhs, err := p.expr()
	if err != nil {
		return err
	}
	m.Items = append(m.Items, &Assign{LHS: lhs, RHS: rhs, Line: line})
	return p.expectSym(";")
}

func (p *parser) always(m *Module) error {
	line := p.cur().line
	p.pos++ // always
	if err := p.expectSym("@"); err != nil {
		return err
	}
	if err := p.expectSym("("); err != nil {
		return err
	}
	if !p.acceptIdent("posedge") {
		return p.errf("only always @(posedge clk) is supported")
	}
	clk, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym(")"); err != nil {
		return err
	}
	body, err := p.stmtList()
	if err != nil {
		return err
	}
	m.Items = append(m.Items, &AlwaysFF{Clock: clk, Body: body, Line: line})
	return nil
}

func (p *parser) initial(m *Module) error {
	line := p.cur().line
	p.pos++ // initial
	// optional begin ... end with several assignments
	if p.acceptIdent("begin") {
		for !p.acceptIdent("end") {
			if err := p.initialAssign(m, line); err != nil {
				return err
			}
		}
		return nil
	}
	return p.initialAssign(m, line)
}

func (p *parser) initialAssign(m *Module, line int) error {
	lhs, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	rhs, err := p.expr()
	if err != nil {
		return err
	}
	m.Items = append(m.Items, &Initial{LHS: lhs, RHS: rhs, Line: line})
	return p.expectSym(";")
}

func (p *parser) instance(m *Module) error {
	line := p.cur().line
	modName, err := p.expectIdent()
	if err != nil {
		return err
	}
	instName, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := &Instance{Module: modName, Name: instName, Conns: map[string]string{}, Line: line}
	if err := p.expectSym("("); err != nil {
		return err
	}
	if !p.acceptSym(")") {
		named := p.cur().kind == tkSymbol && p.cur().text == "."
		for {
			if named {
				if err := p.expectSym("."); err != nil {
					return err
				}
				formal, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectSym("("); err != nil {
					return err
				}
				actual, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectSym(")"); err != nil {
					return err
				}
				inst.Conns[formal] = actual
			} else {
				actual, err := p.expectIdent()
				if err != nil {
					return err
				}
				inst.Positional = append(inst.Positional, actual)
			}
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return err
		}
	}
	m.Items = append(m.Items, inst)
	return p.expectSym(";")
}

// stmtList parses a single statement or a begin/end block.
func (p *parser) stmtList() ([]Stmt, error) {
	if p.acceptIdent("begin") {
		var out []Stmt
		for !p.acceptIdent("end") {
			if p.atEOF() {
				return nil, p.errf("missing end")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) stmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.acceptIdent("if"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		then, err := p.stmtList()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.acceptIdent("else") {
			els, err = p.stmtList()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Line: line}, nil
	case p.acceptIdent("case"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		subj, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		c := &Case{Subject: subj, Line: line}
		for !p.acceptIdent("endcase") {
			if p.atEOF() {
				return nil, p.errf("missing endcase")
			}
			if p.acceptIdent("default") {
				if err := p.expectSym(":"); err != nil {
					return nil, err
				}
				body, err := p.stmtList()
				if err != nil {
					return nil, err
				}
				c.Default = body
				continue
			}
			var arm CaseArm
			for {
				lbl, err := p.expr()
				if err != nil {
					return nil, err
				}
				arm.Labels = append(arm.Labels, lbl)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(":"); err != nil {
				return nil, err
			}
			body, err := p.stmtList()
			if err != nil {
				return nil, err
			}
			arm.Body = body
			c.Arms = append(c.Arms, arm)
		}
		return c, nil
	default:
		lhs, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !p.acceptSym("<=") {
			return nil, p.errf("expected <= in sequential assignment to %s", lhs)
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(";"); err != nil {
			return nil, err
		}
		return &NonBlocking{LHS: lhs, RHS: rhs, Line: line}, nil
	}
}

// constInt evaluates a compile-time constant expression over numbers and
// previously defined parameters, with +, -, *, /, % and parentheses —
// enough for derived parameters ("parameter LAST = N - 1;") and
// parameterized ranges ("input [N-1:0] x;"), the idioms the scaled
// design generator emits.
func (p *parser) constInt(m *Module) (int, error) {
	return p.constSum(m)
}

func (p *parser) constSum(m *Module) (int, error) {
	v, err := p.constProd(m)
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			w, err := p.constProd(m)
			if err != nil {
				return 0, err
			}
			v += w
		case p.acceptSym("-"):
			w, err := p.constProd(m)
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (p *parser) constProd(m *Module) (int, error) {
	v, err := p.constAtom(m)
	if err != nil {
		return 0, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("*"):
			op = "*"
		case p.acceptSym("/"):
			op = "/"
		case p.acceptSym("%"):
			op = "%"
		default:
			return v, nil
		}
		w, err := p.constAtom(m)
		if err != nil {
			return 0, err
		}
		if w == 0 && op != "*" {
			return 0, p.errf("division by zero in constant expression")
		}
		switch op {
		case "*":
			v *= w
		case "/":
			v /= w
		case "%":
			v %= w
		}
	}
}

func (p *parser) constAtom(m *Module) (int, error) {
	if p.acceptSym("(") {
		v, err := p.constSum(m)
		if err != nil {
			return 0, err
		}
		return v, p.expectSym(")")
	}
	if p.acceptSym("-") {
		v, err := p.constAtom(m)
		return -v, err
	}
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.pos++
		n, _, err := parseNumber(t.text)
		return n, err
	case tkIdent:
		for _, par := range m.Params {
			if par.Name == t.text {
				p.pos++
				return par.Value, nil
			}
		}
		return 0, p.errf("unknown parameter %q", t.text)
	default:
		return 0, p.errf("expected constant, found %q", t.text)
	}
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"+": 8, "-": 8,
}

func (p *parser) expr() (Expr, error) {
	return p.condExpr()
}

func (p *parser) condExpr() (Expr, error) {
	c, err := p.binExpr(1)
	if err != nil {
		return nil, err
	}
	if p.acceptSym("?") {
		t, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(":"); err != nil {
			return nil, err
		}
		f, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, T: t, F: f}, nil
	}
	return c, nil
}

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tkSymbol {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := t.text
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.kind == tkSymbol && (t.text == "!" || t.text == "~") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkSymbol && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSym(")")
	case t.kind == tkNumber:
		p.pos++
		v, w, err := parseNumber(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Number{Value: v, Width: w, Line: t.line}, nil
	case t.kind == tkIdent && t.text == "$ND":
		line := t.line
		p.pos++
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		nd := &ND{Line: line}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			nd.Choices = append(nd.Choices, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		return nd, p.expectSym(")")
	case t.kind == tkIdent:
		p.pos++
		return &Ident{Name: t.text, Line: t.line}, nil
	default:
		return nil, p.errf("unexpected %q in expression", t.text)
	}
}

// parseNumber handles 42, 4'b0101, 3'd6, 8'hff.
func parseNumber(s string) (value, width int, err error) {
	if i := strings.IndexByte(s, '\''); i >= 0 {
		w, err := strconv.Atoi(s[:i])
		if err != nil || w <= 0 || w > 30 {
			return 0, 0, fmt.Errorf("bad constant width in %q", s)
		}
		base := 10
		switch s[i+1] {
		case 'b', 'B':
			base = 2
		case 'd', 'D':
			base = 10
		case 'h', 'H':
			base = 16
		case 'o', 'O':
			base = 8
		}
		digits := strings.ReplaceAll(s[i+2:], "_", "")
		v, err := strconv.ParseInt(digits, base, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad constant %q", s)
		}
		return int(v), w, nil
	}
	v, err2 := strconv.Atoi(s)
	if err2 != nil {
		return 0, 0, fmt.Errorf("bad constant %q", s)
	}
	return v, 0, nil
}
