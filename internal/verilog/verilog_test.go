package verilog

import (
	"strings"
	"testing"

	"hsis/internal/blifmv"
	"hsis/internal/ctl"
	"hsis/internal/network"
	"hsis/internal/reach"
)

// compileNet runs the full pipeline: Verilog → BLIF-MV → flat → network.
func compileNet(t *testing.T, src, top string) *network.Network {
	t.Helper()
	d, err := CompileString(src, top+".v", top)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const counterV = `
// two-bit counter with enable
module counter(clk, en, q);
  input clk, en;
  input en;
  output [1:0] q;
  reg [1:0] q;
  initial q = 0;
  always @(posedge clk)
    if (en) q <= q + 1;
endmodule
`

func TestCounterSemantics(t *testing.T) {
	n := compileNet(t, counterV, "counter")
	q := n.VarByName("q")
	if q == nil || q.Card() != 4 {
		t.Fatalf("q missing or wrong card")
	}
	res := reach.Forward(n, reach.Options{})
	if got := n.NumStates(res.Reached); got != 4 {
		t.Fatalf("reached %v states, want 4", got)
	}
	// en is free: from q=0 both q'=0 and q'=1 possible
	img := reach.Image(n, q.Eq(0))
	if img != n.Manager().Or(q.Eq(0), q.Eq(1)) {
		t.Fatal("image of q=0 wrong")
	}
	// AG AF wraps around only if en held 1 — without fairness it fails
	c := ctl.NewForNetwork(n, nil)
	v, err := c.Check(ctl.MustParse("AG(AF q=3)"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("without fairness the counter may never advance")
	}
}

const enumV = `
typedef enum { IDLE, BUSY, DONE } state_t;
module fsm(clk, start, st);
  input clk, start;
  output st;
  state_t reg st;
  state_t wire stw;
  initial st = IDLE;
  always @(posedge clk)
    case (st)
      IDLE: if (start) st <= BUSY;
      BUSY: st <= DONE;
      DONE: st <= IDLE;
    endcase
  assign stw = st;
endmodule
`

func TestEnumFSM(t *testing.T) {
	n := compileNet(t, enumV, "fsm")
	st := n.VarByName("st")
	if st.Card() != 3 {
		t.Fatalf("enum card = %d", st.Card())
	}
	lbl, err := n.LabelEq("st", "BUSY")
	if err != nil {
		t.Fatal(err)
	}
	if lbl != st.Eq(1) {
		t.Fatal("symbolic value names lost")
	}
	res := reach.Forward(n, reach.Options{})
	if got := n.NumStates(res.Reached); got != 3 {
		t.Fatalf("reached %v states, want 3", got)
	}
	c := ctl.NewForNetwork(n, nil)
	// BUSY always advances to DONE
	v, err := c.Check(ctl.MustParse("AG(st=BUSY -> AX st=DONE)"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatal("BUSY must step to DONE")
	}
}

const ndV = `
module coin(clk, v);
  output v;
  input clk;
  reg v;
  initial v = 0;
  always @(posedge clk)
    v <= $ND(0, 1);
endmodule
`

func TestNDRegister(t *testing.T) {
	n := compileNet(t, ndV, "coin")
	v := n.VarByName("v")
	// both successors from every state
	m := n.Manager()
	if got := m.SatCount(n.T, 2); got != 4 {
		t.Fatalf("transitions = %v, want 4", got)
	}
	img := reach.Image(n, v.Eq(0))
	if img != v.Domain() {
		t.Fatal("$ND must allow both next values")
	}
}

const ndWireV = `
module ndwire(clk, w, q);
  input clk;
  output w, q;
  wire w;
  reg q;
  assign w = $ND(0, 1);
  initial q = 0;
  always @(posedge clk) q <= w;
endmodule
`

func TestNDWire(t *testing.T) {
	n := compileNet(t, ndWireV, "ndwire")
	q := n.VarByName("q")
	img := reach.Image(n, q.Eq(0))
	if img != q.Domain() {
		t.Fatal("nondeterministic wire should drive both next states")
	}
}

const hierV = `
module top(clk, a);
  input clk;
  output a;
  wire a, b;
  cell c1(clk, b, a);
  cell c2(.ck(clk), .i(a), .o(b));
endmodule

module cell(ck, i, o);
  input ck, i;
  output o;
  reg o;
  initial o = 0;
  always @(posedge ck) o <= !i;
endmodule
`

func TestHierarchyPositionalAndNamed(t *testing.T) {
	n := compileNet(t, hierV, "top")
	if len(n.Latches()) != 2 {
		t.Fatalf("latches = %d, want 2", len(n.Latches()))
	}
	res := reach.Forward(n, reach.Options{})
	// two cross-coupled inverters from (0,0): states (0,0)->(1,1)->(0,0)
	if got := n.NumStates(res.Reached); got != 2 {
		t.Fatalf("reached %v states, want 2", got)
	}
}

const initialNDV = `
module indet(clk, q);
  input clk;
  output q;
  reg q;
  initial q = 0;
  initial q = 1;
  always @(posedge clk) q <= q;
endmodule
`

func TestNondeterministicReset(t *testing.T) {
	n := compileNet(t, initialNDV, "indet")
	if got := n.NumStates(n.Init); got != 2 {
		t.Fatalf("initial states = %v, want 2 (paper: a latch may have more than one initial value)", got)
	}
}

const paramV = `
module pcount(clk, q);
  parameter W = 3;
  input clk;
  output [W:0] q;
  reg [W:0] q;
  initial q = 0;
  always @(posedge clk) q <= q + 1;
endmodule
`

func TestParameterWidth(t *testing.T) {
	n := compileNet(t, paramV, "pcount")
	q := n.VarByName("q")
	if q.Card() != 16 {
		t.Fatalf("parameterized width: card = %d, want 16", q.Card())
	}
	res := reach.Forward(n, reach.Options{})
	if got := n.NumStates(res.Reached); got != 16 {
		t.Fatalf("reached %v states, want 16", got)
	}
}

const paramExprV = `
module pexpr(clk, q);
  parameter N = 8;
  parameter LAST = N - 1;
  parameter BITS = (N / 2) - 1;
  input clk;
  output [BITS:0] q;
  reg [2*2-1 : 0] q;
  initial q = 0;
  always @(posedge clk) q <= q + 1;
endmodule
`

// Parameters may be defined by constant expressions over earlier
// parameters, and ranges may use the same arithmetic — the idioms the
// scaled design generator emits.
func TestParameterConstExpr(t *testing.T) {
	n := compileNet(t, paramExprV, "pexpr")
	q := n.VarByName("q")
	if q.Card() != 16 {
		t.Fatalf("const-expr width: card = %d, want 16", q.Card())
	}
	res := reach.Forward(n, reach.Options{})
	if got := n.NumStates(res.Reached); got != 16 {
		t.Fatalf("reached %v states, want 16", got)
	}
}

func TestOperatorsAgainstSemantics(t *testing.T) {
	src := `
module ops(clk, a, b, x);
  input clk, a, b;
  output x;
  reg x;
  wire w;
  assign w = (a && !b) || (a ^ b);
  initial x = 0;
  always @(posedge clk) x <= w;
endmodule
`
	n := compileNet(t, src, "ops")
	// w = (a & !b) | (a^b) = a&!b | a!b+!ab = a!b + !ab ... evaluate:
	// a=0,b=0: 0; a=1,b=0: 1; a=0,b=1: 1; a=1,b=1: 0  => XOR
	x := n.VarByName("x")
	img := reach.Image(n, x.Domain()) // from any state
	if img != x.Domain() {
		t.Fatal("x should reach both values under free inputs")
	}
	// pin inputs via the label: states where w can be 1
	lbl, err := n.LabelEq("w", "1")
	if err != nil {
		t.Fatal(err)
	}
	// w is input-driven: possible in every state
	if lbl != x.Domain() {
		t.Fatal("w=1 should be possible in every state")
	}
}

func TestComparisonAndArithmetic(t *testing.T) {
	src := `
module cmp(clk, q, hit);
  input clk;
  output hit;
  output [1:0] q;
  reg [1:0] q;
  wire hit;
  assign hit = q >= 2;
  initial q = 0;
  always @(posedge clk) q <= q - 1;
endmodule
`
	n := compileNet(t, src, "cmp")
	q := n.VarByName("q")
	// q counts down with wraparound: 0 -> 3 -> 2 -> 1 -> 0
	if got := reach.Image(n, q.Eq(0)); got != q.Eq(3) {
		t.Fatal("subtraction wraparound wrong")
	}
	lbl, err := n.LabelEq("hit", "1")
	if err != nil {
		t.Fatal(err)
	}
	want := n.Manager().Or(q.Eq(2), q.Eq(3))
	if lbl != want {
		t.Fatal(">= comparison wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no module", "typedef enum { A } t;\n", "no modules"},
		{"bad typedef", "typedef struct { } t;\n", "only enum"},
		{"blocking", "module m(c); input c; reg r; initial r=0; always @(posedge c) r = 1; endmodule", "<="},
		{"negedge", "module m(c); input c; reg r; always @(negedge c) r <= 1; endmodule", "posedge"},
		{"unterminated", "module m(c); input c;", "endmodule"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, c.name)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, top, want string }{
		{"no top", "module m(); endmodule", "zz", "not found"},
		{"no reset", "module m(c); input c; reg r; always @(posedge c) r <= r; endmodule", "m", "no initial value"},
		{"assign reg", "module m(c); input c; reg r; assign r = 1; initial r=0; always @(posedge c) r <= r; endmodule", "m", "use an always block"},
		{"unknown ident", "module m(c,w); input c; output w; wire w; assign w = zz; endmodule", "m", "unknown identifier"},
		{"enum arith", "typedef enum { A, B } t;\nmodule m(c,o); input c; output o; t wire o; t wire p; assign p = A; assign o = p + 1; endmodule", "m", "arithmetic on enum"},
		{"double always", "module m(c); input c; reg r; initial r=0; always @(posedge c) r <= r; always @(posedge c) r <= !r; endmodule", "m", "two always blocks"},
		{"initial no always", "module m(c); input c; reg r; initial r = 0; endmodule", "m", "no always block"},
		{"bad width", "module m(c,q); input c; output [40:0] q; reg [40:0] q; initial q=0; always @(posedge c) q <= q; endmodule", "m", "unsupported width"},
	}
	for _, c := range cases {
		_, err := CompileString(c.src, c.name+".v", c.top)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestGeneratedBlifMVRoundTrips(t *testing.T) {
	d, err := CompileString(enumV, "fsm.v", "fsm")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := blifmv.Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := blifmv.ParseString(sb.String(), "rt.mv")
	if err != nil {
		t.Fatalf("generated BLIF-MV does not re-parse: %v\n%s", err, sb.String())
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("round-tripped design invalid: %v", err)
	}
	// equivalent state counts after round trip
	f1, _ := blifmv.Flatten(d)
	f2, _ := blifmv.Flatten(d2)
	n1, err := network.Build(f1, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := network.Build(f2, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := reach.Forward(n1, reach.Options{})
	r2 := reach.Forward(n2, reach.Options{})
	if n1.NumStates(r1.Reached) != n2.NumStates(r2.Reached) {
		t.Fatal("round trip changed semantics")
	}
}

func TestCaseWithMultipleLabelsAndDefault(t *testing.T) {
	src := `
module sel(clk, q);
  input clk;
  output [1:0] q;
  reg [1:0] q;
  initial q = 0;
  always @(posedge clk)
    case (q)
      0, 1: q <= 2;
      2: q <= 3;
      default: q <= 0;
    endcase
endmodule
`
	n := compileNet(t, src, "sel")
	q := n.VarByName("q")
	if reach.Image(n, q.Eq(0)) != q.Eq(2) || reach.Image(n, q.Eq(1)) != q.Eq(2) {
		t.Fatal("multi-label arm wrong")
	}
	if reach.Image(n, q.Eq(3)) != q.Eq(0) {
		t.Fatal("default arm wrong")
	}
}

func TestHoldSemantics(t *testing.T) {
	// register not assigned on a path holds its value
	src := `
module hold(clk, g, q);
  input clk, g;
  output [1:0] q;
  reg [1:0] q;
  initial q = 1;
  always @(posedge clk)
    if (g) q <= 2;
endmodule
`
	n := compileNet(t, src, "hold")
	q := n.VarByName("q")
	img := reach.Image(n, q.Eq(1))
	want := n.Manager().Or(q.Eq(1), q.Eq(2))
	if img != want {
		t.Fatal("implicit hold on untaken branch wrong")
	}
}

func TestSourceAttributes(t *testing.T) {
	d, err := CompileString(enumV, "fsm.v", "fsm")
	if err != nil {
		t.Fatal(err)
	}
	m := d.Models["fsm"]
	loc := m.Attr("src", "st")
	if !strings.HasPrefix(loc, "fsm.v:") {
		t.Fatalf("register source attr = %q", loc)
	}
	if wloc := m.Attr("src", "stw"); !strings.HasPrefix(wloc, "fsm.v:") {
		t.Fatalf("wire source attr = %q", wloc)
	}
	// attributes survive flattening with hierarchy
	dh, err := CompileString(hierV, "hier.v", "top")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(dh)
	if err != nil {
		t.Fatal(err)
	}
	// cell outputs o bound to a/b: attr follows the actual names
	if flat.Attr("src", "a") == "" && flat.Attr("src", "b") == "" {
		t.Fatal("source attrs lost through hierarchy")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	src := `
module loopy(clk, a);
  input clk;
  output a;
  wire a, b;
  assign a = !b;
  assign b = !a;
endmodule
`
	_, err := CompileString(src, "loopy.v", "loopy")
	if err == nil || !strings.Contains(err.Error(), "combinational cycle") {
		t.Fatalf("want cycle rejection, got %v", err)
	}
	// a cycle broken by a register is fine
	ok := `
module fine(clk, a);
  input clk;
  output a;
  wire a;
  reg r;
  assign a = !r;
  initial r = 0;
  always @(posedge clk) r <= a;
endmodule
`
	if _, err := CompileString(ok, "fine.v", "fine"); err != nil {
		t.Fatalf("register-broken cycle should compile: %v", err)
	}
	// self-loop
	self := `
module s(clk, a);
  input clk;
  output a;
  wire a;
  assign a = !a;
endmodule
`
	if _, err := CompileString(self, "s.v", "s"); err == nil {
		t.Fatal("combinational self-loop should be rejected")
	}
}

// TestBinaryOperatorsExhaustive checks every supported binary operator
// against Go semantics on all 2-bit operand combinations: the operands
// are registers with fully nondeterministic initial values that hold
// forever, so each operand pair is one initial state, and the
// combinational result label must match exactly.
func TestBinaryOperatorsExhaustive(t *testing.T) {
	ops := []struct {
		op   string
		eval func(a, b int) int
		bool bool // result domain is 1-bit
	}{
		{"==", func(a, b int) int { return b2i(a == b) }, true},
		{"!=", func(a, b int) int { return b2i(a != b) }, true},
		{"<", func(a, b int) int { return b2i(a < b) }, true},
		{"<=", func(a, b int) int { return b2i(a <= b) }, true},
		{">", func(a, b int) int { return b2i(a > b) }, true},
		{">=", func(a, b int) int { return b2i(a >= b) }, true},
		{"&", func(a, b int) int { return a & b }, false},
		{"|", func(a, b int) int { return a | b }, false},
		{"^", func(a, b int) int { return a ^ b }, false},
		{"+", func(a, b int) int { return (a + b) % 4 }, false},
		{"-", func(a, b int) int { return ((a-b)%4 + 4) % 4 }, false},
	}
	for _, op := range ops {
		src := `
module optest(clk, o);
  input clk;
  output o;
  reg [1:0] a, b;
  wire ` + widthDecl(op.bool) + ` o;
  assign o = a ` + op.op + ` b;
  initial begin
    a = 0; a = 1; a = 2; a = 3;
    b = 0; b = 1; b = 2; b = 3;
  end
  always @(posedge clk) begin
    a <= a;
    b <= b;
  end
endmodule
`
		n := compileNet(t, src, "optest")
		av, bv := n.VarByName("a"), n.VarByName("b")
		m := n.Manager()
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				want := op.eval(a, b)
				lbl, err := n.LabelEq("o", itoa(want))
				if err != nil {
					t.Fatalf("%s: %v", op.op, err)
				}
				cell := m.And(av.Eq(a), bv.Eq(b))
				if m.And(lbl, cell) == 0 /* bdd.False */ {
					t.Errorf("op %s: %d %s %d should allow %d", op.op, a, op.op, b, want)
				}
				// and no other value is possible
				card := 2
				if !op.bool {
					card = 4
				}
				for v := 0; v < card; v++ {
					if v == want {
						continue
					}
					other, err := n.LabelEq("o", itoa(v))
					if err != nil {
						t.Fatal(err)
					}
					if m.AndN(other, cell) != 0 {
						t.Errorf("op %s: %d %s %d must not allow %d", op.op, a, op.op, b, v)
					}
				}
			}
		}
	}
}

func widthDecl(isBool bool) string {
	if isBool {
		return ""
	}
	return "[1:0]"
}

func b2i(x bool) int {
	if x {
		return 1
	}
	return 0
}

func itoa(v int) string { return string(rune('0' + v)) }

func TestUnaryOperatorsExhaustive(t *testing.T) {
	src := `
module utest(clk, nn, bb);
  input clk;
  output nn, bb;
  reg [1:0] a;
  wire [1:0] nn;
  wire bb;
  assign nn = ~a;
  assign bb = !a;
  initial begin
    a = 0; a = 1; a = 2; a = 3;
  end
  always @(posedge clk) a <= a;
endmodule
`
	n := compileNet(t, src, "utest")
	av := n.VarByName("a")
	m := n.Manager()
	for a := 0; a < 4; a++ {
		cell := av.Eq(a)
		not, err := n.LabelEq("nn", itoa(3-a))
		if err != nil {
			t.Fatal(err)
		}
		if m.And(not, cell) == 0 {
			t.Errorf("~%d should be %d", a, 3-a)
		}
		lnot, err := n.LabelEq("bb", itoa(b2i(a == 0)))
		if err != nil {
			t.Fatal(err)
		}
		if m.And(lnot, cell) == 0 {
			t.Errorf("!%d wrong", a)
		}
	}
}

func TestTernaryAndNestedExpressions(t *testing.T) {
	src := `
module nest(clk, o);
  input clk;
  output o;
  reg [1:0] a;
  wire [1:0] o;
  assign o = (a == 3) ? 0 : a + 1;
  initial begin
    a = 0; a = 1; a = 2; a = 3;
  end
  always @(posedge clk) a <= a;
endmodule
`
	n := compileNet(t, src, "nest")
	av := n.VarByName("a")
	m := n.Manager()
	for a := 0; a < 4; a++ {
		want := (a + 1) % 4
		lbl, err := n.LabelEq("o", itoa(want))
		if err != nil {
			t.Fatal(err)
		}
		if m.And(lbl, av.Eq(a)) == 0 {
			t.Errorf("ternary increment of %d wrong", a)
		}
	}
}

func TestSizedConstants(t *testing.T) {
	src := `
module sized(clk, o);
  input clk;
  output o;
  reg [3:0] a;
  wire o;
  assign o = a == 4'b1010;
  initial a = 10;
  always @(posedge clk) a <= 4'd10;
endmodule
`
	n := compileNet(t, src, "sized")
	lbl, err := n.LabelEq("o", "1")
	if err != nil {
		t.Fatal(err)
	}
	av := n.VarByName("a")
	if n.Manager().And(lbl, av.Eq(10)) == 0 {
		t.Fatal("sized binary constant mismatch")
	}
}

func TestNDInControlFlow(t *testing.T) {
	// $ND used inside an if-condition and a case subject
	src := `
typedef enum { RED, GREEN, BLUE } color_t;
module light(clk, c);
  input clk;
  output c;
  color_t reg c;
  wire flip;
  assign flip = $ND(0, 1);
  initial c = RED;
  always @(posedge clk)
    if (flip)
      case (c)
        RED: c <= GREEN;
        GREEN: c <= BLUE;
        BLUE: c <= RED;
      endcase
endmodule
`
	n := compileNet(t, src, "light")
	c := n.VarByName("c")
	img := reach.Image(n, c.Eq(0))
	want := n.Manager().Or(c.Eq(0), c.Eq(1)) // hold or advance
	if img != want {
		t.Fatal("ND-gated case semantics wrong")
	}
	res := reach.Forward(n, reach.Options{})
	if got := n.NumStates(res.Reached); got != 3 {
		t.Fatalf("reached %v states, want 3", got)
	}
}

func TestNestedIfElseChains(t *testing.T) {
	src := `
module prio(clk, q);
  input clk;
  output [1:0] q;
  reg [1:0] q;
  wire a, b;
  assign a = $ND(0, 1);
  assign b = $ND(0, 1);
  initial q = 0;
  always @(posedge clk)
    if (a)
      if (b) q <= 3;
      else q <= 2;
    else if (b) q <= 1;
    else q <= 0;
endmodule
`
	n := compileNet(t, src, "prio")
	q := n.VarByName("q")
	img := reach.Image(n, q.Eq(0))
	if img != q.Domain() {
		t.Fatal("all four priority outcomes should be reachable in one step")
	}
}
