package verilog

// AST node types for the supported Verilog subset.

// SourceFile is one parsed .v file.
type SourceFile struct {
	Typedefs []*Typedef
	Modules  []*Module
}

// Typedef declares an enumerated type.
type Typedef struct {
	Name   string
	Values []string
	Line   int
}

// Module is one module declaration.
type Module struct {
	Name   string
	File   string   // source file, for .attr src annotations
	Ports  []string // port order from the header
	Decls  []*Decl
	Params []*Param
	Items  []Item // assigns, always blocks, initials, instances
	Line   int
}

// DeclKind distinguishes net declarations.
type DeclKind int

// Declaration kinds.
const (
	DeclInput DeclKind = iota
	DeclOutput
	DeclWire
	DeclReg
)

// Decl declares one or more nets of a kind; Width is the bit width
// (vectors collapse to a single multi-valued variable); Enum names an
// enumerated type (overrides Width).
type Decl struct {
	Kind  DeclKind
	Names []string
	Width int    // ≥1
	Enum  string // "" for plain nets
	Line  int
}

// Param is a named compile-time constant.
type Param struct {
	Name  string
	Value int
	Line  int
}

// Item is a module body item.
type Item interface{ item() }

// Assign is a continuous assignment.
type Assign struct {
	LHS  string
	RHS  Expr
	Line int
}

// AlwaysFF is an always @(posedge clk) block of sequential statements.
type AlwaysFF struct {
	Clock string
	Body  []Stmt
	Line  int
}

// Initial sets a register's reset value (repeatable for nondeterministic
// resets).
type Initial struct {
	LHS  string
	RHS  Expr // must be a constant or enum literal
	Line int
}

// Instance instantiates a child module.
type Instance struct {
	Module string
	Name   string
	// Conns maps formal port name to actual signal; for positional
	// connections the parser resolves names later during codegen.
	Conns      map[string]string
	Positional []string
	Line       int
}

func (*Assign) item()   {}
func (*AlwaysFF) item() {}
func (*Initial) item()  {}
func (*Instance) item() {}

// Stmt is a sequential statement inside an always block.
type Stmt interface{ stmt() }

// NonBlocking is r <= expr;
type NonBlocking struct {
	LHS  string
	RHS  Expr
	Line int
}

// If is if (cond) then-else.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// Case is case (expr) with value arms and an optional default.
type Case struct {
	Subject Expr
	Arms    []CaseArm
	Default []Stmt
	Line    int
}

// CaseArm is one labeled arm; Labels are constant expressions.
type CaseArm struct {
	Labels []Expr
	Body   []Stmt
}

func (*NonBlocking) stmt() {}
func (*If) stmt()          {}
func (*Case) stmt()        {}

// Expr is an expression node.
type Expr interface{ expr() }

// Ident references a net, parameter, or enum literal.
type Ident struct {
	Name string
	Line int
}

// Number is a constant with an optional declared width.
type Number struct {
	Value int
	Width int // 0 if unsized
	Line  int
}

// Unary is !x or ~x (for one-bit nets they coincide).
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op   string
	L, R Expr
}

// Cond is c ? a : b.
type Cond struct {
	C, T, F Expr
}

// ND is the non-determinism intrinsic $ND(a, b, ...).
type ND struct {
	Choices []Expr
	Line    int
}

func (*Ident) expr()  {}
func (*Number) expr() {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
func (*Cond) expr()   {}
func (*ND) expr()     {}
