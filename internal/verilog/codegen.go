package verilog

import (
	"fmt"
	"strconv"

	"hsis/internal/blifmv"
)

// Compile translates parsed Verilog into a BLIF-MV design with the given
// top module. Like the original vl2mv, each operator becomes a small
// table with a fresh intermediate variable (the paper notes that "in
// compiling Verilog to BLIF-MV, many small tables and intermediate
// variables are created" — early quantification then cleans them up).
func Compile(files []*SourceFile, top string) (*blifmv.Design, error) {
	c := &compiler{
		typedefs: map[string]*Typedef{},
		modules:  map[string]*Module{},
		design:   &blifmv.Design{Models: map[string]*blifmv.Model{}},
	}
	for _, f := range files {
		for _, td := range f.Typedefs {
			if _, dup := c.typedefs[td.Name]; dup {
				return nil, fmt.Errorf("verilog: duplicate typedef %s", td.Name)
			}
			c.typedefs[td.Name] = td
		}
		for _, m := range f.Modules {
			if _, dup := c.modules[m.Name]; dup {
				return nil, fmt.Errorf("verilog: duplicate module %s", m.Name)
			}
			c.modules[m.Name] = m
		}
	}
	if _, ok := c.modules[top]; !ok {
		return nil, fmt.Errorf("verilog: top module %q not found", top)
	}
	for _, f := range files {
		for _, m := range f.Modules {
			if err := c.compileModule(m); err != nil {
				return nil, err
			}
		}
	}
	c.design.Root = top
	if err := c.design.Validate(); err != nil {
		return nil, fmt.Errorf("verilog: generated BLIF-MV invalid: %w", err)
	}
	return c.design, nil
}

// CompileString parses and compiles a single source string.
func CompileString(src, file, top string) (*blifmv.Design, error) {
	sf, err := Parse(src, file)
	if err != nil {
		return nil, err
	}
	return Compile([]*SourceFile{sf}, top)
}

type domain struct {
	card   int
	values []string // symbolic names; nil for numeric domains
	enum   string   // typedef name, "" for numeric
}

func (d domain) sameAs(o domain) bool {
	return d.card == o.card && d.enum == o.enum
}

var boolDomain = domain{card: 2}

type netInfo struct {
	dom     domain
	isReg   bool
	isIn    bool
	isOut   bool
	dirOnly bool // declared only as a bare 1-bit input/output so far
	line    int
}

// dirOnly reports whether a declaration carries only direction
// information (a bare, untyped 1-bit input/output).
func dirOnly(d *Decl) bool {
	return (d.Kind == DeclInput || d.Kind == DeclOutput) && d.Width == 1 && d.Enum == ""
}

func valueNames(dom domain) []string {
	if dom.values != nil {
		return append([]string(nil), dom.values...)
	}
	out := make([]string, dom.card)
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}

type compiler struct {
	typedefs map[string]*Typedef
	modules  map[string]*Module
	design   *blifmv.Design
}

type modCtx struct {
	c      *compiler
	src    *Module
	out    *blifmv.Model
	nets   map[string]*netInfo
	params map[string]int
	clocks map[string]bool
	tmpN   int
	resets map[string][]int // reg -> initial values
}

func (c *compiler) compileModule(m *Module) error {
	ctx := &modCtx{
		c:      c,
		src:    m,
		out:    &blifmv.Model{Name: m.Name, Vars: map[string]*blifmv.Variable{}},
		nets:   map[string]*netInfo{},
		params: map[string]int{},
		clocks: map[string]bool{},
		resets: map[string][]int{},
	}
	for _, p := range m.Params {
		ctx.params[p.Name] = p.Value
	}
	// Find clock names so they can be excluded from the data nets.
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysFF); ok {
			ctx.clocks[a.Clock] = true
		}
	}
	if err := ctx.declareNets(); err != nil {
		return err
	}
	if err := ctx.checkCombCycles(); err != nil {
		return err
	}
	for _, it := range m.Items {
		var err error
		switch t := it.(type) {
		case *Assign:
			err = ctx.genAssign(t)
		case *AlwaysFF:
			err = ctx.genAlways(t)
		case *Initial:
			err = ctx.genInitial(t)
		case *Instance:
			err = ctx.genInstance(t)
		}
		if err != nil {
			return err
		}
	}
	if err := ctx.finishLatches(); err != nil {
		return err
	}
	ctx.pruneUnusedInputs()
	c.design.Models[m.Name] = ctx.out
	c.design.Order = append(c.design.Order, m.Name)
	return nil
}

func (x *modCtx) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("verilog: module %s line %d: %s", x.src.Name, line, fmt.Sprintf(format, args...))
}

func (x *modCtx) declareNets() error {
	for _, d := range x.src.Decls {
		dom, err := x.declDomain(d)
		if err != nil {
			return err
		}
		for _, name := range d.Names {
			if x.clocks[name] {
				continue // the global clock is implicit in BLIF-MV
			}
			if prev, dup := x.nets[name]; dup {
				// input/output + wire/reg re-declaration merges kind.
				// A bare one-bit input/output declaration ("output st;")
				// carries only the direction when the net is separately
				// typed ("state_t reg st;") — one side may upgrade the
				// domain of the other.
				switch {
				case prev.dom.sameAs(dom):
					// identical type: nothing to reconcile
				case dirOnly(d):
					dom = prev.dom // keep the richer existing type
				case prev.dirOnly:
					prev.dom = dom
					v := x.out.Vars[name]
					v.Card = dom.card
					v.Values = valueNames(dom)
				default:
					return x.errf(d.Line, "net %s redeclared with a different type", name)
				}
				prev.isReg = prev.isReg || d.Kind == DeclReg
				prev.isIn = prev.isIn || d.Kind == DeclInput
				prev.isOut = prev.isOut || d.Kind == DeclOutput
				prev.dirOnly = prev.dirOnly && dirOnly(d)
				continue
			}
			ni := &netInfo{dom: dom, line: d.Line, dirOnly: dirOnly(d),
				isReg: d.Kind == DeclReg, isIn: d.Kind == DeclInput, isOut: d.Kind == DeclOutput}
			x.nets[name] = ni
			x.declareVar(name, dom)
		}
	}
	// ports must be declared
	for _, p := range x.src.Ports {
		if x.clocks[p] {
			continue
		}
		ni, ok := x.nets[p]
		if !ok {
			return x.errf(x.src.Line, "port %s has no declaration", p)
		}
		if ni.isIn {
			x.out.Inputs = append(x.out.Inputs, p)
		}
		if ni.isOut {
			x.out.Outputs = append(x.out.Outputs, p)
		}
	}
	return nil
}

func (x *modCtx) declDomain(d *Decl) (domain, error) {
	if d.Enum != "" {
		td, ok := x.c.typedefs[d.Enum]
		if !ok {
			return domain{}, x.errf(d.Line, "unknown type %s", d.Enum)
		}
		return domain{card: len(td.Values), values: td.Values, enum: td.Name}, nil
	}
	if d.Width < 1 || d.Width > 16 {
		return domain{}, x.errf(d.Line, "unsupported width %d (1..16)", d.Width)
	}
	return domain{card: 1 << d.Width}, nil
}

// declareVar registers a variable in the output model.
func (x *modCtx) declareVar(name string, dom domain) {
	values := dom.values
	if values == nil {
		values = make([]string, dom.card)
		for i := range values {
			values[i] = strconv.Itoa(i)
		}
	}
	x.out.Vars[name] = &blifmv.Variable{Name: name, Card: dom.card, Values: append([]string(nil), values...)}
	x.out.VarDecl = append(x.out.VarDecl, name)
}

// fresh creates an intermediate variable.
func (x *modCtx) fresh(dom domain) string {
	x.tmpN++
	name := fmt.Sprintf("_e%d", x.tmpN)
	x.declareVar(name, dom)
	return name
}

// operand is a compiled expression: a constant in some domain or a
// variable name.
type operand struct {
	isConst bool
	val     int
	name    string
	dom     domain
	flex    bool // constant without a fixed domain yet
}

// domOf resolves an operand's effective domain against a required one,
// adapting flexible constants.
func (x *modCtx) adapt(o operand, want domain, line int) (operand, error) {
	if o.flex {
		if o.val < 0 || o.val >= want.card {
			return o, x.errf(line, "constant %d out of range for cardinality %d", o.val, want.card)
		}
		o.dom = want
		o.flex = false
		return o, nil
	}
	if !o.dom.sameAs(want) {
		return o, x.errf(line, "type mismatch: %s vs %s", domName(o.dom), domName(want))
	}
	return o, nil
}

func domName(d domain) string {
	if d.enum != "" {
		return d.enum
	}
	return fmt.Sprintf("int%d", d.card)
}

// genExpr compiles an expression into an operand.
func (x *modCtx) genExpr(e Expr) (operand, error) {
	switch t := e.(type) {
	case *Number:
		o := operand{isConst: true, val: t.Value, flex: true}
		if t.Width > 0 {
			o.dom = domain{card: 1 << t.Width}
			o.flex = false
			if t.Value >= o.dom.card {
				return o, x.errf(t.Line, "constant %d exceeds width %d", t.Value, t.Width)
			}
		}
		return o, nil
	case *Ident:
		if v, ok := x.params[t.Name]; ok {
			return operand{isConst: true, val: v, flex: true}, nil
		}
		if ni, ok := x.nets[t.Name]; ok {
			return operand{name: t.Name, dom: ni.dom}, nil
		}
		// enum literal?
		for _, td := range x.c.typedefs {
			for i, v := range td.Values {
				if v == t.Name {
					return operand{isConst: true, val: i,
						dom: domain{card: len(td.Values), values: td.Values, enum: td.Name}}, nil
				}
			}
		}
		return operand{}, x.errf(t.Line, "unknown identifier %q", t.Name)
	case *Unary:
		return x.genUnary(t)
	case *Binary:
		return x.genBinary(t)
	case *Cond:
		return x.genCond(t, nil)
	case *ND:
		return x.genND(t, nil)
	default:
		return operand{}, fmt.Errorf("verilog: unknown expression node %T", e)
	}
}

// materialize turns a constant operand into a table-driven variable (for
// contexts that need a variable name).
func (x *modCtx) materialize(o operand, line int) (string, domain, error) {
	if !o.isConst {
		return o.name, o.dom, nil
	}
	dom := o.dom
	if o.flex {
		// pick the smallest numeric domain containing the value
		card := 2
		for card <= o.val {
			card *= 2
		}
		dom = domain{card: card}
	}
	name := x.fresh(dom)
	x.out.Tables = append(x.out.Tables, &blifmv.Table{
		Outputs: []string{name},
		Rows:    []blifmv.Row{{Out: []blifmv.OutSpec{{Set: blifmv.Singleton(o.val), EqInput: -1}}}},
	})
	return name, dom, nil
}

func (x *modCtx) genUnary(t *Unary) (operand, error) {
	o, err := x.genExpr(t.X)
	if err != nil {
		return o, err
	}
	if o.isConst {
		card := 2
		if !o.flex {
			card = o.dom.card
		}
		return operand{isConst: true, val: (card - 1) - o.val, dom: o.dom, flex: o.flex}, nil
	}
	in, dom, _ := x.materialize(o, 0)
	outDom := dom
	if t.Op == "!" {
		outDom = boolDomain
	}
	out := x.fresh(outDom)
	tab := &blifmv.Table{Inputs: []string{in}, Outputs: []string{out}}
	for v := 0; v < dom.card; v++ {
		var res int
		if t.Op == "!" {
			if v == 0 {
				res = 1
			}
		} else { // ~ bitwise complement
			res = (dom.card - 1) - v
		}
		tab.Rows = append(tab.Rows, blifmv.Row{
			In:  []blifmv.ValueSet{blifmv.Singleton(v)},
			Out: []blifmv.OutSpec{{Set: blifmv.Singleton(res), EqInput: -1}},
		})
	}
	x.out.Tables = append(x.out.Tables, tab)
	return operand{name: out, dom: outDom}, nil
}

func (x *modCtx) genBinary(t *Binary) (operand, error) {
	l, err := x.genExpr(t.L)
	if err != nil {
		return l, err
	}
	r, err := x.genExpr(t.R)
	if err != nil {
		return r, err
	}
	// constant folding
	if l.isConst && r.isConst {
		v, err := foldBinary(t.Op, l.val, r.val)
		if err != nil {
			return l, err
		}
		switch t.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return operand{isConst: true, val: v, dom: boolDomain}, nil
		}
		return operand{isConst: true, val: v, flex: l.flex && r.flex, dom: pickDom(l, r)}, nil
	}
	// unify domains: adapt constants to the variable side
	switch {
	case l.isConst && l.flex:
		if l2, err := x.adapt(l, r.dom, 0); err == nil {
			l = l2
		} else {
			return l, err
		}
	case r.isConst && r.flex:
		if r2, err := x.adapt(r, l.dom, 0); err == nil {
			r = r2
		} else {
			return r, err
		}
	}
	if !l.dom.sameAs(r.dom) {
		return l, fmt.Errorf("verilog: module %s: operands of %q have different types (%s vs %s)",
			x.src.Name, t.Op, domName(l.dom), domName(r.dom))
	}
	dom := l.dom
	ln, _, _ := x.materialize(l, 0)
	rn, _, _ := x.materialize(r, 0)

	var outDom domain
	switch t.Op {
	case "==", "!=", "<", "<=", ">", ">=", "&&", "||", "&", "|", "^":
		outDom = boolDomain
		if t.Op == "&" || t.Op == "|" || t.Op == "^" {
			outDom = dom // bitwise on equal widths
		}
	case "+", "-":
		if dom.enum != "" {
			return l, fmt.Errorf("verilog: module %s: arithmetic on enum type %s", x.src.Name, dom.enum)
		}
		outDom = dom
	default:
		return l, fmt.Errorf("verilog: unsupported operator %q", t.Op)
	}
	out := x.fresh(outDom)
	tab := &blifmv.Table{Inputs: []string{ln, rn}, Outputs: []string{out}}

	// Compact encodings for the common cases.
	switch t.Op {
	case "==":
		for v := 0; v < dom.card; v++ {
			tab.Rows = append(tab.Rows, row2(v, v, 1))
		}
		tab.Default = []blifmv.ValueSet{blifmv.Singleton(0)}
	case "!=":
		for v := 0; v < dom.card; v++ {
			tab.Rows = append(tab.Rows, row2(v, v, 0))
		}
		tab.Default = []blifmv.ValueSet{blifmv.Singleton(1)}
	default:
		for a := 0; a < dom.card; a++ {
			for b := 0; b < dom.card; b++ {
				v, err := foldBinary(t.Op, a, b)
				if err != nil {
					return l, err
				}
				v = ((v % outDom.card) + outDom.card) % outDom.card
				tab.Rows = append(tab.Rows, row2(a, b, v))
			}
		}
	}
	x.out.Tables = append(x.out.Tables, tab)
	return operand{name: out, dom: outDom}, nil
}

func row2(a, b, out int) blifmv.Row {
	return blifmv.Row{
		In:  []blifmv.ValueSet{blifmv.Singleton(a), blifmv.Singleton(b)},
		Out: []blifmv.OutSpec{{Set: blifmv.Singleton(out), EqInput: -1}},
	}
}

func pickDom(l, r operand) domain {
	if !l.flex {
		return l.dom
	}
	return r.dom
}

func foldBinary(op string, a, b int) (int, error) {
	bo := func(x bool) int {
		if x {
			return 1
		}
		return 0
	}
	switch op {
	case "==":
		return bo(a == b), nil
	case "!=":
		return bo(a != b), nil
	case "<":
		return bo(a < b), nil
	case "<=":
		return bo(a <= b), nil
	case ">":
		return bo(a > b), nil
	case ">=":
		return bo(a >= b), nil
	case "&&":
		return bo(a != 0 && b != 0), nil
	case "||":
		return bo(a != 0 || b != 0), nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	default:
		return 0, fmt.Errorf("verilog: unsupported operator %q", op)
	}
}

// genExpect compiles an expression in a context that expects a specific
// domain: flexible constants (and constant branches of ?: or $ND) adapt
// to it, which lets `cond ? 1 : 0` take the width of its target.
func (x *modCtx) genExpect(e Expr, want domain) (operand, error) {
	switch t := e.(type) {
	case *Cond:
		return x.genCond(t, &want)
	case *ND:
		return x.genND(t, &want)
	default:
		o, err := x.genExpr(e)
		if err != nil {
			return o, err
		}
		if o.isConst && o.flex {
			return x.adapt(o, want, 0)
		}
		return o, nil
	}
}

// genBranch compiles a sub-expression, propagating the expected domain
// when one is known.
func (x *modCtx) genBranch(e Expr, want *domain) (operand, error) {
	if want != nil {
		return x.genExpect(e, *want)
	}
	return x.genExpr(e)
}

// genCond compiles c ? t : f with the BLIF-MV '=' construct: two rows
// selecting one of the data inputs.
func (x *modCtx) genCond(t *Cond, want *domain) (operand, error) {
	c, err := x.genExpr(t.C)
	if err != nil {
		return c, err
	}
	tt, err := x.genBranch(t.T, want)
	if err != nil {
		return tt, err
	}
	ff, err := x.genBranch(t.F, want)
	if err != nil {
		return ff, err
	}
	if c.isConst {
		if c.val != 0 {
			return tt, nil
		}
		return ff, nil
	}
	// unify branch domains
	switch {
	case tt.isConst && tt.flex && !ff.isConst:
		tt, err = x.adapt(tt, ff.dom, 0)
	case ff.isConst && ff.flex && !tt.isConst:
		ff, err = x.adapt(ff, tt.dom, 0)
	case tt.isConst && tt.flex && ff.isConst && ff.flex:
		card := 2
		for card <= tt.val || card <= ff.val {
			card *= 2
		}
		d := domain{card: card}
		tt, _ = x.adapt(tt, d, 0)
		ff, _ = x.adapt(ff, d, 0)
	}
	if err != nil {
		return tt, err
	}
	tn, tdom, _ := x.materialize(tt, 0)
	fn, fdom, _ := x.materialize(ff, 0)
	if !tdom.sameAs(fdom) {
		return tt, fmt.Errorf("verilog: module %s: ?: branches have different types", x.src.Name)
	}
	cn, cdom, _ := x.materialize(c, 0)
	out := x.fresh(tdom)
	tab := &blifmv.Table{Inputs: []string{cn, tn, fn}, Outputs: []string{out}}
	nonzero := make([]int, 0, cdom.card-1)
	for v := 1; v < cdom.card; v++ {
		nonzero = append(nonzero, v)
	}
	tab.Rows = append(tab.Rows,
		blifmv.Row{
			In:  []blifmv.ValueSet{{Vals: nonzero}, blifmv.AnyValue(), blifmv.AnyValue()},
			Out: []blifmv.OutSpec{{EqInput: 1}},
		},
		blifmv.Row{
			In:  []blifmv.ValueSet{blifmv.Singleton(0), blifmv.AnyValue(), blifmv.AnyValue()},
			Out: []blifmv.OutSpec{{EqInput: 2}},
		},
	)
	x.out.Tables = append(x.out.Tables, tab)
	return operand{name: out, dom: tdom}, nil
}

// genND compiles $ND(a, b, ...): a table whose rows overlap, one per
// choice — the non-determinism extension of paper §3.
func (x *modCtx) genND(t *ND, want *domain) (operand, error) {
	if len(t.Choices) == 0 {
		return operand{}, x.errf(t.Line, "$ND needs at least one choice")
	}
	ops := make([]operand, len(t.Choices))
	var dom domain
	haveDom := false
	if want != nil {
		dom = *want
		haveDom = true
	}
	for i, ch := range t.Choices {
		o, err := x.genBranch(ch, want)
		if err != nil {
			return o, err
		}
		ops[i] = o
		if !o.isConst || !o.flex {
			if haveDom && !o.dom.sameAs(dom) {
				return o, x.errf(t.Line, "$ND choices have different types")
			}
			dom = o.dom
			haveDom = true
		}
	}
	if !haveDom {
		// all flexible constants
		card := 2
		for _, o := range ops {
			for card <= o.val {
				card *= 2
			}
		}
		dom = domain{card: card}
	}
	allConst := true
	for i := range ops {
		var err error
		ops[i], err = x.adaptOrKeep(ops[i], dom, t.Line)
		if err != nil {
			return ops[i], err
		}
		if !ops[i].isConst {
			allConst = false
		}
	}
	out := x.fresh(dom)
	tab := &blifmv.Table{Outputs: []string{out}}
	if allConst {
		for _, o := range ops {
			tab.Rows = append(tab.Rows, blifmv.Row{
				Out: []blifmv.OutSpec{{Set: blifmv.Singleton(o.val), EqInput: -1}},
			})
		}
	} else {
		var ins []string
		for i := range ops {
			n, _, _ := x.materialize(ops[i], t.Line)
			ins = append(ins, n)
		}
		tab.Inputs = ins
		for i := range ins {
			anyIn := make([]blifmv.ValueSet, len(ins))
			for j := range anyIn {
				anyIn[j] = blifmv.AnyValue()
			}
			tab.Rows = append(tab.Rows, blifmv.Row{
				In:  anyIn,
				Out: []blifmv.OutSpec{{EqInput: i}},
			})
		}
	}
	x.out.Tables = append(x.out.Tables, tab)
	return operand{name: out, dom: dom}, nil
}

func (x *modCtx) adaptOrKeep(o operand, want domain, line int) (operand, error) {
	if o.isConst && o.flex {
		return x.adapt(o, want, line)
	}
	if !o.dom.sameAs(want) {
		return o, x.errf(line, "type mismatch in choices")
	}
	return o, nil
}

// genAssign emits the driver of a wire.
func (x *modCtx) genAssign(a *Assign) error {
	ni, ok := x.nets[a.LHS]
	if !ok {
		return x.errf(a.Line, "assign to undeclared net %s", a.LHS)
	}
	if ni.isReg {
		return x.errf(a.Line, "assign to reg %s (use an always block)", a.LHS)
	}
	o, err := x.genExpect(a.RHS, ni.dom)
	if err != nil {
		return err
	}
	x.out.SetAttr("src", a.LHS, fmt.Sprintf("%s:%d", x.src.File, a.Line))
	return x.connect(a.LHS, ni.dom, o, a.Line)
}

// connect drives target (an existing variable) from an operand via an
// identity table.
func (x *modCtx) connect(target string, dom domain, o operand, line int) error {
	if o.isConst {
		o2, err := x.adapt(o, dom, line)
		if err != nil {
			return err
		}
		x.out.Tables = append(x.out.Tables, &blifmv.Table{
			Outputs: []string{target},
			Rows:    []blifmv.Row{{Out: []blifmv.OutSpec{{Set: blifmv.Singleton(o2.val), EqInput: -1}}}},
		})
		return nil
	}
	if !o.dom.sameAs(dom) {
		return x.errf(line, "type mismatch driving %s", target)
	}
	x.out.Tables = append(x.out.Tables, &blifmv.Table{
		Inputs:  []string{o.name},
		Outputs: []string{target},
		Rows: []blifmv.Row{{
			In:  []blifmv.ValueSet{blifmv.AnyValue()},
			Out: []blifmv.OutSpec{{EqInput: 0}},
		}},
	})
	return nil
}

// genAlways turns a sequential block into next-state expressions per
// register and emits latches.
func (x *modCtx) genAlways(a *AlwaysFF) error {
	// env maps each register assigned in the block to its pending
	// next-value expression; start from "hold".
	regs := map[string]bool{}
	collectRegs(a.Body, regs)
	env := map[string]Expr{}
	for r := range regs {
		ni, ok := x.nets[r]
		if !ok {
			return x.errf(a.Line, "assignment to undeclared register %s", r)
		}
		if !ni.isReg {
			return x.errf(a.Line, "non-blocking assignment to non-reg %s", r)
		}
		if hasLatch(x.out, r) {
			return x.errf(a.Line, "register %s assigned in two always blocks", r)
		}
		env[r] = &Ident{Name: r, Line: a.Line}
	}
	if err := x.walkStmts(a.Body, env); err != nil {
		return err
	}
	for r := range regs {
		ni := x.nets[r]
		o, err := x.genExpect(env[r], ni.dom)
		if err != nil {
			return err
		}
		next := fmt.Sprintf("_n_%s", r)
		x.declareVar(next, ni.dom)
		if err := x.connect(next, ni.dom, o, a.Line); err != nil {
			return err
		}
		// source-level debugging (paper §8 item 7): remember where the
		// register is assigned so traces can point back at the Verilog.
		x.out.SetAttr("src", r, fmt.Sprintf("%s:%d", x.src.File, a.Line))
		x.out.Latches = append(x.out.Latches, &blifmv.Latch{Input: next, Output: r})
	}
	return nil
}

func hasLatch(m *blifmv.Model, out string) bool {
	for _, l := range m.Latches {
		if l.Output == out {
			return true
		}
	}
	return false
}

func collectRegs(stmts []Stmt, into map[string]bool) {
	for _, s := range stmts {
		switch t := s.(type) {
		case *NonBlocking:
			into[t.LHS] = true
		case *If:
			collectRegs(t.Then, into)
			collectRegs(t.Else, into)
		case *Case:
			for _, arm := range t.Arms {
				collectRegs(arm.Body, into)
			}
			collectRegs(t.Default, into)
		}
	}
}

// walkStmts threads the pending-assignment environment through the
// statements, building MUX expressions at control-flow joins.
func (x *modCtx) walkStmts(stmts []Stmt, env map[string]Expr) error {
	for _, s := range stmts {
		switch t := s.(type) {
		case *NonBlocking:
			env[t.LHS] = t.RHS
		case *If:
			thenEnv := copyEnv(env)
			elseEnv := copyEnv(env)
			if err := x.walkStmts(t.Then, thenEnv); err != nil {
				return err
			}
			if err := x.walkStmts(t.Else, elseEnv); err != nil {
				return err
			}
			for r := range env {
				if thenEnv[r] != env[r] || elseEnv[r] != env[r] {
					env[r] = &Cond{C: t.Cond, T: thenEnv[r], F: elseEnv[r]}
				}
			}
		case *Case:
			// desugar into a chain of ifs over equality tests
			armEnvs := make([]map[string]Expr, len(t.Arms))
			for i, arm := range t.Arms {
				armEnvs[i] = copyEnv(env)
				if err := x.walkStmts(arm.Body, armEnvs[i]); err != nil {
					return err
				}
				_ = arm
			}
			defEnv := copyEnv(env)
			if err := x.walkStmts(t.Default, defEnv); err != nil {
				return err
			}
			for r := range env {
				result := defEnv[r]
				for i := len(t.Arms) - 1; i >= 0; i-- {
					cond := labelsCond(t.Subject, t.Arms[i].Labels)
					result = &Cond{C: cond, T: armEnvs[i][r], F: result}
				}
				env[r] = result
			}
		}
	}
	return nil
}

func labelsCond(subject Expr, labels []Expr) Expr {
	var cond Expr
	for _, l := range labels {
		eq := &Binary{Op: "==", L: subject, R: l}
		if cond == nil {
			cond = eq
		} else {
			cond = &Binary{Op: "||", L: cond, R: eq}
		}
	}
	return cond
}

func copyEnv(env map[string]Expr) map[string]Expr {
	out := make(map[string]Expr, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// genInitial records a reset value (several initial assignments to one
// register accumulate into a non-deterministic reset set).
func (x *modCtx) genInitial(ini *Initial) error {
	ni, ok := x.nets[ini.LHS]
	if !ok || !ni.isReg {
		return x.errf(ini.Line, "initial target %s is not a reg", ini.LHS)
	}
	o, err := x.genExpr(ini.RHS)
	if err != nil {
		return err
	}
	if !o.isConst {
		return x.errf(ini.Line, "initial value for %s must be constant", ini.LHS)
	}
	o, err = x.adapt(o, ni.dom, ini.Line)
	if err != nil {
		return err
	}
	x.resets[ini.LHS] = appendUniqueInt(x.resets[ini.LHS], o.val)
	return nil
}

func appendUniqueInt(xs []int, v int) []int {
	for _, e := range xs {
		if e == v {
			return xs
		}
	}
	return append(xs, v)
}

func (x *modCtx) genInstance(inst *Instance) error {
	child, ok := x.c.modules[inst.Module]
	if !ok {
		return x.errf(inst.Line, "unknown module %q", inst.Module)
	}
	s := &blifmv.Subckt{Model: inst.Module, Instance: inst.Name, Bindings: map[string]string{}}
	// The global clock is implicit: drop clock ports on both sides.
	childClocks := map[string]bool{}
	for _, it := range child.Items {
		if a, ok := it.(*AlwaysFF); ok {
			childClocks[a.Clock] = true
		}
	}
	if len(inst.Positional) > 0 {
		dataPorts := make([]string, 0, len(child.Ports))
		for _, p := range child.Ports {
			if !childClocks[p] {
				dataPorts = append(dataPorts, p)
			}
		}
		switch {
		case len(inst.Positional) == len(child.Ports):
			// full connection list: align pairwise, dropping clock pairs
			for i, p := range child.Ports {
				if !childClocks[p] {
					s.Bindings[p] = inst.Positional[i]
				}
			}
		case len(inst.Positional) == len(dataPorts):
			for i, p := range dataPorts {
				s.Bindings[p] = inst.Positional[i]
			}
		default:
			return x.errf(inst.Line, "instance %s: %d connections for %d ports (%d data)",
				inst.Name, len(inst.Positional), len(child.Ports), len(dataPorts))
		}
	} else {
		for formal, actual := range inst.Conns {
			if childClocks[formal] || x.clocks[actual] {
				continue
			}
			s.Bindings[formal] = actual
		}
	}
	x.out.Subckts = append(x.out.Subckts, s)
	return nil
}

// checkCombCycles rejects combinational loops through continuous
// assignments within one module: `assign a = b; assign b = !a;` has no
// clocked element to break the cycle, so its BLIF-MV translation would
// be a relational fixed point rather than hardware. (Cycles through
// registers are fine — the latch breaks them; cycles through module
// boundaries are caught when each module's own assigns are acyclic and
// instances connect only via declared ports driven once.)
func (x *modCtx) checkCombCycles() error {
	deps := map[string][]string{} // wire -> wires its assign reads
	var line = map[string]int{}
	for _, it := range x.src.Items {
		a, ok := it.(*Assign)
		if !ok {
			continue
		}
		var reads []string
		collectIdents(a.RHS, func(name string) {
			if ni, isNet := x.nets[name]; isNet && !ni.isReg {
				reads = append(reads, name)
			}
		})
		deps[a.LHS] = reads
		line[a.LHS] = a.Line
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return x.errf(line[n], "combinational cycle through wire %s", n)
		case black:
			return nil
		}
		color[n] = gray
		for _, d := range deps[n] {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for n := range deps {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

func collectIdents(e Expr, fn func(string)) {
	switch t := e.(type) {
	case *Ident:
		fn(t.Name)
	case *Unary:
		collectIdents(t.X, fn)
	case *Binary:
		collectIdents(t.L, fn)
		collectIdents(t.R, fn)
	case *Cond:
		collectIdents(t.C, fn)
		collectIdents(t.T, fn)
		collectIdents(t.F, fn)
	case *ND:
		for _, c := range t.Choices {
			collectIdents(c, fn)
		}
	}
}

// pruneUnusedInputs drops primary inputs referenced by no table, latch
// or subckt binding — typically the clock net of a module with no
// always block of its own (the global clock is implicit in BLIF-MV).
func (x *modCtx) pruneUnusedInputs() {
	used := map[string]bool{}
	for _, t := range x.out.Tables {
		for _, n := range t.Inputs {
			used[n] = true
		}
		for _, n := range t.Outputs {
			used[n] = true
		}
	}
	for _, l := range x.out.Latches {
		used[l.Input] = true
		used[l.Output] = true
	}
	for _, s := range x.out.Subckts {
		for _, a := range s.Bindings {
			used[a] = true
		}
	}
	var keptIn []string
	for _, in := range x.out.Inputs {
		if used[in] {
			keptIn = append(keptIn, in)
		} else {
			delete(x.out.Vars, in)
		}
	}
	x.out.Inputs = keptIn
	var keptDecl []string
	for _, n := range x.out.VarDecl {
		if _, ok := x.out.Vars[n]; ok {
			keptDecl = append(keptDecl, n)
		}
	}
	x.out.VarDecl = keptDecl
}

// finishLatches attaches reset values to the latches.
func (x *modCtx) finishLatches() error {
	for _, l := range x.out.Latches {
		init, ok := x.resets[l.Output]
		if !ok {
			return fmt.Errorf("verilog: module %s: register %s has no initial value", x.src.Name, l.Output)
		}
		l.Init = append([]int(nil), init...)
	}
	// initial for a register never latched?
	for r := range x.resets {
		if !hasLatch(x.out, r) {
			return fmt.Errorf("verilog: module %s: initial value for %s but no always block assigns it", x.src.Name, r)
		}
	}
	return nil
}
