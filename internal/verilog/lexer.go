// Package verilog implements the HSIS HDL front end (paper §3): a
// compiler from a synthesizable subset of Verilog — extended with
// non-determinism ($ND), enumerated types (typedef enum) and multiple
// initial values — to the BLIF-MV intermediate format, the Go
// counterpart of the vl2mv tool shipped with HSIS.
//
// Supported subset:
//
//   - module/endmodule with port lists, input/output/wire/reg
//     declarations, bit vectors [msb:lsb] (treated as one multi-valued
//     variable of cardinality 2^width)
//   - typedef enum { A, B, C } name; and enum-typed wire/reg
//     declarations ("name reg state;")
//   - continuous assignments: assign w = expr;
//   - one implicit global clock: always @(posedge clk) blocks with
//     non-blocking assignments, if/else, case/endcase, begin/end
//   - initial r = value; (repeatable: several initial assignments to
//     one register give a non-deterministic reset set)
//   - $ND(v1, v2, ...) non-deterministic choice in any expression
//   - module instantiation, named (.port(sig)) or positional
//   - parameter name = constant; usable in ranges and expressions
//   - expressions: ?:, ||, &&, |, ^, &, ==/!=, </<=/>/>=, +/-, !/~,
//     parentheses, identifiers, enum literals, decimal and sized binary
//     constants
package verilog

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber // possibly sized: 2'b01, 4'd7, plain 42
	tkSymbol // punctuation / operator
	tkString
)

type tok struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	file string
	pos  int
	line int
	toks []tok
}

func lexAll(src, file string) ([]tok, error) {
	l := &lexer{src: src, file: file, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tkEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", l.file, l.line, fmt.Sprintf(format, args...))
}

var twoCharSymbols = []string{
	"&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
}

func (l *lexer) next() (tok, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return tok{}, l.errf("unterminated block comment")
			}
			l.pos += 2
		default:
			goto content
		}
	}
	return tok{kind: tkEOF, line: l.line}, nil

content:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isLetter(c) || c == '_' || c == '$' || c == '`':
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return tok{kind: tkIdent, text: l.src[start:l.pos], line: l.line}, nil
	case isDigit(c):
		// number, possibly sized: 12, 4'b0101, 3'd6, 8'hff
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] == '\'' {
			l.pos++
			if l.pos < len(l.src) && strings.ContainsRune("bdhoBDHO", rune(l.src[l.pos])) {
				l.pos++
				for l.pos < len(l.src) && (isHexDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
					l.pos++
				}
			} else {
				return tok{}, l.errf("malformed sized constant")
			}
		}
		return tok{kind: tkNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return tok{}, l.errf("unterminated string")
		}
		l.pos++
		return tok{kind: tkString, text: l.src[start+1 : l.pos-1], line: l.line}, nil
	default:
		for _, s := range twoCharSymbols {
			if strings.HasPrefix(l.src[l.pos:], s) {
				l.pos += 2
				return tok{kind: tkSymbol, text: s, line: l.line}, nil
			}
		}
		l.pos++
		return tok{kind: tkSymbol, text: string(c), line: l.line}, nil
	}
}

func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdentByte(c byte) bool {
	return isLetter(c) || isDigit(c) || c == '_' || c == '$'
}
func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
