package core

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hsis/internal/blifmv"
	"hsis/internal/fair"
	"hsis/internal/lc"
	"hsis/internal/network"
	"hsis/internal/order"
	"hsis/internal/pif"
	"hsis/internal/reach"
)

// CompiledDesign is the read-only frontend artifact of one design: the
// parsed and flattened model (sealed, so lookups never mutate it), the
// precomputed static variable order, and the parsed property files.
// It contains no BDD state — no Manager, no Network — which is exactly
// what makes it shareable: any number of jobs may Instantiate
// workspaces from one artifact concurrently, each with its own Manager,
// while the artifact itself sits in a content-addressed cache and is
// never touched again by the frontend.
//
// Build one with CompileVerilog/CompileBlifMV, attach properties with
// AddPIF *before* publishing it to other goroutines, then Instantiate
// per job.
type CompiledDesign struct {
	// Name is the top module (Verilog) or root model (BLIF-MV) name.
	Name string

	flat        *blifmv.Model
	staticOrder []string // interacting-FSM order, computed once

	// appended is the deliberately poor declaration order (Ablation E),
	// derived lazily since almost no job asks for it.
	appendedOnce sync.Once
	appended     []string

	pifFiles []*pif.File

	// Source metrics, carried into every instantiated workspace.
	VerilogLines int
	BlifmvLines  int
	// FrontendTime is the parse+flatten+order cost paid once per
	// artifact; Workspace.ReadTime adds the per-job compile on top.
	FrontendTime time.Duration
}

// CompileVerilog runs the Verilog frontend down to a shareable artifact:
// compile to BLIF-MV, flatten, seal, order.
func CompileVerilog(src, file, top string) (*CompiledDesign, error) {
	start := time.Now()
	design, err := verilogToBlifmv(src, file, top)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	if err := blifmv.Write(&sb, design); err != nil {
		return nil, err
	}
	d, err := CompileBlifMV(sb.String(), file+".mv")
	if err != nil {
		return nil, err
	}
	d.Name = top
	d.VerilogLines = countLines(src)
	d.FrontendTime = time.Since(start)
	return d, nil
}

// CompileBlifMV runs the BLIF-MV frontend down to a shareable artifact.
func CompileBlifMV(src, file string) (*CompiledDesign, error) {
	start := time.Now()
	design, err := blifmv.ParseString(src, file)
	if err != nil {
		return nil, err
	}
	flat, err := blifmv.Flatten(design)
	if err != nil {
		return nil, err
	}
	// Seal before computing the order: from here on nothing may mutate
	// the model, and the static order is derived from the frozen form.
	flat.Seal()
	return &CompiledDesign{
		Name:         design.Root,
		flat:         flat,
		staticOrder:  order.Compute(flat),
		BlifmvLines:  countLines(src),
		FrontendTime: time.Since(start),
	}, nil
}

// AddPIF parses a PIF property file into the artifact. Must be called
// before the artifact is shared across goroutines (typically right
// after Compile*, before publishing to a cache).
func (d *CompiledDesign) AddPIF(src, file string) error {
	f, err := pif.ParseString(src, file)
	if err != nil {
		return err
	}
	d.pifFiles = append(d.pifFiles, f)
	return nil
}

// Model exposes the sealed flat model (read-only).
func (d *CompiledDesign) Model() *blifmv.Model { return d.flat }

// NumProperties reports how many properties the artifact carries.
func (d *CompiledDesign) NumProperties() (ctlProps, automata int) {
	for _, f := range d.pifFiles {
		ctlProps += len(f.CTL)
		automata += len(f.Automata)
	}
	return
}

func (d *CompiledDesign) appendedOrder() []string {
	d.appendedOnce.Do(func() { d.appended = appendedOrder(d.flat) })
	return d.appended
}

// Instantiate compiles the artifact into a fresh Workspace with its own
// bdd.Manager and mdd.Space. The artifact is only read, so concurrent
// Instantiate calls are safe — this is the per-job isolation boundary:
// jobs share the parsed design, never the BDD state.
func (d *CompiledDesign) Instantiate(opts Options) (*Workspace, error) {
	start := time.Now()
	switch opts.Reorder {
	case "", "off", "manual", "auto":
	default:
		return nil, fmt.Errorf("core: unknown reorder policy %q (want off, manual or auto)", opts.Reorder)
	}
	engine, ok := reach.ParseEngineKind(opts.Image)
	if !ok {
		return nil, fmt.Errorf("core: unknown image engine %q (want auto, monolithic, partitioned, clustered or iso)", opts.Image)
	}
	ropts, err := parseReorderOptions(opts)
	if err != nil {
		return nil, err
	}
	nopts := network.Options{
		Heuristic:           opts.Heuristic,
		NaiveQuantification: opts.NaiveQuantification,
		SkipMonolithic: opts.ConeOfInfluence ||
			(engine != reach.EngineAuto && engine != reach.EngineMonolithic),
		AutoReorder:    opts.Reorder == "auto",
		ReorderOpts:    ropts,
		ReorderTrigger: opts.ReorderTrigger,
		Order:          d.staticOrder,
		Telemetry:      opts.Telemetry,
	}
	if opts.AppendedOrder {
		nopts.Order = d.appendedOrder()
	} else if opts.OrderFile != "" {
		if entries, err := order.LoadFile(opts.OrderFile); err == nil {
			// A stale file (renamed variables, changed cardinalities)
			// falls back to the static order; a missing file just means
			// no order has been saved yet.
			if names, err := order.Apply(d.flat, entries); err == nil {
				nopts.Order = names
				nopts.ExactOrder = true
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	net, err := network.Build(d.flat, nopts)
	if err != nil {
		return nil, err
	}
	if opts.Workers > 1 {
		net.Manager().SetWorkers(opts.Workers)
	}
	w := &Workspace{
		Name:         d.Name,
		Net:          net,
		FC:           &fair.Constraints{},
		engine:       engine,
		VerilogLines: d.VerilogLines,
		BlifmvLines:  d.BlifmvLines,
		opts:         opts,
		ropts:        ropts,
	}
	// Per-job property compilation: fairness constraints become BDDs in
	// this workspace's manager; the syntactic specs stay shared.
	for _, f := range d.pifFiles {
		fc, err := lc.CompileFairness(net, f.Fairness)
		if err != nil {
			return nil, err
		}
		w.FC = fair.Merge(w.FC, fc)
		w.fairSpecs = append(w.fairSpecs, f.Fairness...)
		w.CTLProps = append(w.CTLProps, f.CTL...)
		w.Automata = append(w.Automata, f.Automata...)
	}
	w.ReadTime = d.FrontendTime + time.Since(start)
	return w, nil
}
