package core

import (
	"sync"
	"testing"

	"hsis/internal/designs"
)

// TestCompiledDesignSharedAcrossGoroutines instantiates one frontend
// artifact from several goroutines at once — the service daemon's
// hot path — and checks every workspace verifies identically to the
// classic Load path.
func TestCompiledDesignSharedAcrossGoroutines(t *testing.T) {
	d, err := designs.Get("pingpong")
	if err != nil {
		t.Fatal(err)
	}
	art, err := CompileVerilog(d.Verilog, "pingpong.v", d.Top)
	if err != nil {
		t.Fatal(err)
	}
	if err := art.AddPIF(d.PIF, "props.pif"); err != nil {
		t.Fatal(err)
	}
	if !art.Model().Sealed() {
		t.Fatal("compiled artifact's flat model is not sealed")
	}
	if ctl, lc := art.NumProperties(); ctl != 6 || lc != 6 {
		t.Fatalf("artifact carries %d CTL / %d LC props, want 6/6", ctl, lc)
	}

	ref := loadDesign(t, "pingpong", Options{})
	want := map[string]bool{}
	for _, r := range ref.VerifyAll() {
		if r.Err != nil {
			t.Fatalf("reference %s: %v", r.Name, r.Err)
		}
		want[r.Name] = r.Pass
	}
	wantStates := ref.ReachableStatesExact().String()

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws, err := art.Instantiate(Options{})
			if err != nil {
				errs <- err
				return
			}
			for _, r := range ws.VerifyAll() {
				if r.Err != nil {
					errs <- r.Err
					return
				}
				if pass, ok := want[r.Name]; !ok || pass != r.Pass {
					t.Errorf("shared-artifact verdict %s=%v diverges from Load path %v",
						r.Name, r.Pass, pass)
				}
			}
			if got := ws.ReachableStatesExact().String(); got != wantStates {
				t.Errorf("shared-artifact reached %s states, Load path %s", got, wantStates)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInstantiateValidatesOptions keeps the Load-path option errors on
// the artifact path.
func TestInstantiateValidatesOptions(t *testing.T) {
	art, err := CompileBlifMV(".model m\n.latch n s\n.reset s\n0\n.table s n\n0 1\n1 0\n.end\n", "m.mv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := art.Instantiate(Options{Image: "bogus"}); err == nil {
		t.Error("bogus image engine accepted")
	}
	if _, err := art.Instantiate(Options{Reorder: "bogus"}); err == nil {
		t.Error("bogus reorder policy accepted")
	}
	if _, err := art.Instantiate(Options{ReorderAccel: "bogus"}); err == nil {
		t.Error("bogus reorder acceleration accepted")
	}
}
