package core

import (
	"hsis/internal/blifmv"
	"hsis/internal/order"
	"hsis/internal/verilog"
)

// verilogCompile keeps the Verilog dependency in one seam so tests can
// exercise the façade with either front end.
func verilogCompile(src, file, top string) (*blifmv.Design, error) {
	return verilog.CompileString(src, file, top)
}

// appendedOrder is the deliberately poor variable order for Ablation E.
func appendedOrder(flat *blifmv.Model) []string {
	return order.Appended(flat)
}
