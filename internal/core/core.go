// Package core is the top-level façade of the HSIS reproduction: it
// wires the Verilog front end, the BLIF-MV compiler, the CTL model
// checker, the language containment engine, and the debugger into the
// verification flow of the paper's Figure 1 (HDL → BLIF-MV + PIF →
// design verification → bug report → debugger).
package core

import (
	"fmt"
	"math/big"
	"os"
	"strings"
	"sync"
	"time"

	"hsis/internal/abstract"
	"hsis/internal/blifmv"
	"hsis/internal/ctl"
	"hsis/internal/debug"
	"hsis/internal/fair"
	"hsis/internal/lc"
	"hsis/internal/network"
	"hsis/internal/order"
	"hsis/internal/pif"
	"hsis/internal/quant"
	"hsis/internal/reach"
	"hsis/internal/reorder"
	"hsis/internal/sys"
	"hsis/internal/telemetry"
)

// Options tunes the verification flow.
type Options struct {
	// Heuristic selects the early-quantification scheduler.
	Heuristic quant.Heuristic
	// NaiveQuantification disables early quantification (Ablation A).
	NaiveQuantification bool
	// AppendedOrder uses the naive declaration-order variable order
	// instead of the interacting-FSM static order (Ablation E).
	AppendedOrder bool
	// EarlySteps enables early failure detection with the given depth
	// for language containment checks.
	EarlySteps int
	// DisableInvariantFastPath forces the general CTL route even for
	// AG(propositional) formulas (Ablation B).
	DisableInvariantFastPath bool
	// ConeOfInfluence abstracts each property to the logic that can
	// influence its atoms (plus the fairness constraints' support)
	// before checking — the automatic abstraction of paper §8 item 2.
	ConeOfInfluence bool
	// Reorder selects the dynamic variable reordering policy: "" or
	// "off" (none), "manual" (only explicit SiftNow calls), "auto"
	// (growth-triggered block sifting at reachability safe points).
	Reorder string
	// ReorderMaxGrowth bounds how far the node count may rise above the
	// best size seen while one block is in motion before the move
	// aborts in that direction (<= 1 keeps the default 1.2).
	ReorderMaxGrowth float64
	// ReorderTrigger scales the automatic sifting trigger: a sift fires
	// when live nodes exceed this factor times the size at the last
	// (re-)arming (<= 1 keeps the default 2; the auto hook's back-off
	// policy may raise the effective factor after unproductive passes).
	ReorderTrigger float64
	// ReorderAccel selects which sifting accelerations run: "" or "all"
	// (everything), "none" (the plain Rudell sifter, for ablations), or
	// a comma list drawn from "interaction" (interaction-matrix fast
	// swaps), "lowerbound" (lower-bound direction aborts), "symmetry"
	// (symmetric-pair gluing) enabling just those.
	ReorderAccel string
	// OrderFile, when non-empty, seeds the variable order from a saved
	// .order file if it exists and matches the model; otherwise the
	// static interacting-FSM order is used. SaveOrder writes the file.
	OrderFile string
	// Image selects the image-computation engine for reachability and
	// invariance checking: "" or "auto" (monolithic when T is built, iso
	// when the design has replicated latch cones, clustered otherwise),
	// "monolithic", "partitioned", "clustered", or "iso" (falls back to
	// clustered on designs with no replication). Any engine other than
	// auto/monolithic also skips the eager product-relation build.
	Image string
	// Workers selects the BDD kernel's execution mode for every manager
	// the workspace builds (including cone-of-influence reductions):
	// 0 or 1 is the classic sequential kernel, n >= 2 enables the
	// concurrent kernel with an n-worker fork/join pool and makes
	// VerifyAll check independent properties in parallel.
	Workers int
	// Telemetry, when non-nil, is installed as the observability scope
	// of every manager the workspace builds (including cone-of-influence
	// sub-workspaces), so traces, latency histograms and the flight
	// recorder attach to this workspace instead of the process default.
	// The daemon sets one scope per job; the CLIs leave it nil and arm
	// the process default.
	Telemetry *telemetry.Scope
}

// Workspace is a loaded design together with its properties.
type Workspace struct {
	Name string
	Net  *network.Network
	// FC is the design-level fairness (from PIF fairness blocks).
	FC *fair.Constraints

	CTLProps []pif.CTLProp
	Automata []*pif.AutSpec

	// engine is the parsed Options.Image selection.
	engine reach.EngineKind

	// fairSpecs keeps the syntactic fairness constraints so abstracted
	// (cone-of-influence) networks can recompile them.
	fairSpecs []pif.FairSpec
	// coneCache reuses reduced workspaces across properties with the
	// same observation support; coneMu guards it when VerifyAll runs
	// property checks concurrently.
	coneCache map[string]*Workspace
	coneMu    sync.Mutex
	// compileMu serializes automaton/product compilation during parallel
	// verification: building a product extends the shared MDD space (and
	// the lc package's product name counter), which must happen one at a
	// time even though the emptiness checks themselves run concurrently.
	compileMu sync.Mutex

	// Source metrics for Table 1.
	VerilogLines int
	BlifmvLines  int
	ReadTime     time.Duration // parse BLIF-MV + build transition relation

	opts  Options
	ropts reorder.Options // parsed reorder tuning, shared by auto sifts and SiftNow
}

// parseReorderOptions translates the string-typed reorder tuning in
// Options into the sift driver's Options. Auto and manual sifts share
// the result, so a CLI ablation flag governs both.
func parseReorderOptions(opts Options) (reorder.Options, error) {
	ropts := reorder.Options{MaxGrowth: opts.ReorderMaxGrowth, Converge: true}
	switch strings.TrimSpace(opts.ReorderAccel) {
	case "", "all":
	case "none":
		ropts.NoInteraction, ropts.NoLowerBound, ropts.NoSymmetry = true, true, true
	default:
		ropts.NoInteraction, ropts.NoLowerBound, ropts.NoSymmetry = true, true, true
		for _, tok := range strings.Split(opts.ReorderAccel, ",") {
			switch strings.TrimSpace(tok) {
			case "interaction":
				ropts.NoInteraction = false
			case "lowerbound":
				ropts.NoLowerBound = false
			case "symmetry":
				ropts.NoSymmetry = false
			default:
				return ropts, fmt.Errorf("core: unknown reorder acceleration %q (want all, none, or a comma list of interaction, lowerbound, symmetry)", strings.TrimSpace(tok))
			}
		}
	}
	return ropts, nil
}

// LoadVerilogString compiles Verilog source text into a workspace.
// It is CompileVerilog + Instantiate in one step, for callers that do
// not need to share the frontend artifact across workspaces.
func LoadVerilogString(src, file, top string, opts Options) (*Workspace, error) {
	d, err := CompileVerilog(src, file, top)
	if err != nil {
		return nil, err
	}
	return d.Instantiate(opts)
}

// LoadVerilogFile compiles a .v file into a workspace.
func LoadVerilogFile(path, top string, opts Options) (*Workspace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadVerilogString(string(data), path, top, opts)
}

// LoadBlifMVString parses BLIF-MV text, flattens it and compiles the
// symbolic network, timing the read+build phase as the paper's
// "time read blif mv" column does. It is CompileBlifMV + Instantiate in
// one step, for callers that do not need to share the frontend artifact
// across workspaces.
func LoadBlifMVString(src, file string, opts Options) (*Workspace, error) {
	d, err := CompileBlifMV(src, file)
	if err != nil {
		return nil, err
	}
	return d.Instantiate(opts)
}

// LoadBlifMVFile loads a .mv file.
func LoadBlifMVFile(path string, opts Options) (*Workspace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadBlifMVString(string(data), path, opts)
}

// AddPIFString parses a PIF property file into the workspace: CTL
// properties, property automata, and design fairness constraints.
func (w *Workspace) AddPIFString(src, file string) error {
	f, err := pif.ParseString(src, file)
	if err != nil {
		return err
	}
	fc, err := lc.CompileFairness(w.Net, f.Fairness)
	if err != nil {
		return err
	}
	w.FC = fair.Merge(w.FC, fc)
	w.fairSpecs = append(w.fairSpecs, f.Fairness...)
	w.CTLProps = append(w.CTLProps, f.CTL...)
	w.Automata = append(w.Automata, f.Automata...)
	return nil
}

// fairSupport lists the variables the fairness constraints observe.
func (w *Workspace) fairSupport() []string {
	var out []string
	seen := map[string]bool{}
	add := func(f ctl.Formula) {
		if f == nil {
			return
		}
		for _, v := range ctl.Atoms(f) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for _, s := range w.fairSpecs {
		add(s.Expr)
		add(s.To)
	}
	return out
}

// coneWorkspace builds (or reuses) a reduced workspace observing the
// given variables plus the fairness constraints' support. The cache
// lookup and build run under coneMu so concurrent property checks
// share (rather than duplicate or corrupt) the reductions.
func (w *Workspace) coneWorkspace(observed []string) (*Workspace, *abstract.Result, error) {
	obs := append(append([]string(nil), observed...), w.fairSupport()...)
	res, err := abstract.ConeOfInfluence(w.Net.Model(), obs)
	if err != nil {
		return nil, nil, err
	}
	key := coneKey(res.Model)
	w.coneMu.Lock()
	defer w.coneMu.Unlock()
	if cached, ok := w.coneCache[key]; ok {
		return cached, res, nil
	}
	nopts := network.Options{
		Heuristic:           w.opts.Heuristic,
		NaiveQuantification: w.opts.NaiveQuantification,
		AutoReorder:         w.opts.Reorder == "auto",
		ReorderOpts:         w.ropts,
		ReorderTrigger:      w.opts.ReorderTrigger,
		Telemetry:           w.opts.Telemetry,
	}
	net, err := network.Build(res.Model, nopts)
	if err != nil {
		return nil, nil, err
	}
	if w.opts.Workers > 1 {
		net.Manager().SetWorkers(w.opts.Workers)
	}
	fc, err := lc.CompileFairness(net, w.fairSpecs)
	if err != nil {
		return nil, nil, err
	}
	sub := &Workspace{
		Name:      w.Name + "+coi",
		Net:       net,
		FC:        fc,
		engine:    w.engine,
		fairSpecs: w.fairSpecs,
		opts:      w.opts,
	}
	sub.opts.ConeOfInfluence = false // no recursive reduction
	if w.coneCache == nil {
		w.coneCache = map[string]*Workspace{}
	}
	w.coneCache[key] = sub
	return sub, res, nil
}

// coneKey identifies a reduced model by its kept latch outputs.
func coneKey(m *blifmv.Model) string {
	var parts []string
	for _, l := range m.Latches {
		parts = append(parts, l.Output)
	}
	return strings.Join(parts, "\x00")
}

// AddPIFFile loads a .pif file.
func (w *Workspace) AddPIFFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return w.AddPIFString(string(data), path)
}

// Kind labels a property's verification paradigm.
type Kind string

// Property kinds.
const (
	KindCTL Kind = "ctl"
	KindLC  Kind = "lc"
)

// PropertyResult is one verified property.
type PropertyResult struct {
	Name string
	Kind Kind
	Pass bool
	Time time.Duration
	// Formula is set for CTL properties.
	Formula ctl.Formula
	// Trace is the error trace for failing LC (and AG-style CTL)
	// properties, when one could be built.
	Trace *debug.Trace
	// TraceSystem is the system the trace lives in (the product for LC).
	TraceSystem sys.System
	// UsedInvariantPath / EarlyDetected mirror the engine diagnostics.
	UsedInvariantPath bool
	EarlyDetected     bool
	// ConeDropped counts latches removed by cone-of-influence
	// abstraction before this check (0 when COI was off or vacuous).
	ConeDropped int
	Err         error
}

// SiftNow runs one converging block sift on the workspace's manager and
// returns its before/after statistics. It follows the GC protection
// contract, which every long-lived Ref in the workspace satisfies.
func (w *Workspace) SiftNow() reorder.Result {
	return reorder.Sift(w.Net.Manager(), w.ropts)
}

// SaveOrder writes the current variable order (post-sifting, if any) to
// path, for a later run to seed from via Options.OrderFile.
func (w *Workspace) SaveOrder(path string) error {
	return order.SaveFile(path, order.Snapshot(w.Net.Space()))
}

// ReachableStates computes (and caches via the checker) the reachable
// state count — the paper's "# reached states" column.
func (w *Workspace) ReachableStates() float64 {
	res := reach.Forward(w.Net, reach.Options{Engine: w.engine})
	return w.Net.NumStates(res.Reached)
}

// ReachableStatesExact is ReachableStates without the float64 rounding:
// the exact math/big reachable-state count. float64 silently loses
// precision once a space exceeds 2^53 states, which parameterized
// designs (philos-64 and up) do comfortably.
func (w *Workspace) ReachableStatesExact() *big.Int {
	res := reach.Forward(w.Net, reach.Options{Engine: w.engine})
	return w.Net.NumStatesExact(res.Reached)
}

// Interrupt requests cooperative cancellation of whatever verification
// is running on this workspace (and on any cone-of-influence reductions
// derived from it): the running fixpoint unwinds with
// bdd.ErrInterrupted at its next safe point. Safe to call from any
// goroutine; the caller that owns the computation recovers the panic
// (see bdd.RecoverInterrupt).
func (w *Workspace) Interrupt() {
	w.Net.Manager().Interrupt()
	w.coneMu.Lock()
	for _, sub := range w.coneCache {
		sub.Net.Manager().Interrupt()
	}
	w.coneMu.Unlock()
}

// Engine reports the workspace's image-engine selection (parsed from
// Options.Image).
func (w *Workspace) Engine() reach.EngineKind { return w.engine }

// CheckCTL verifies one CTL property.
func (w *Workspace) CheckCTL(p pif.CTLProp) *PropertyResult {
	start := time.Now()
	if w.opts.ConeOfInfluence {
		sub, res, err := w.coneWorkspace(ctl.Atoms(p.Formula))
		if err == nil && res.DroppedLatches > 0 {
			out := sub.CheckCTL(p)
			out.Time = time.Since(start)
			out.ConeDropped = res.DroppedLatches
			return out
		}
		// reduction unavailable or vacuous: fall through to the full model
	}
	// No EnsureT: invariance properties run entirely on the image engine
	// (iso or clustered when the monolithic T was skipped); the fair-CTL
	// route builds T lazily when it first needs an edge-restricted
	// operator.
	checker := ctl.NewForNetwork(w.Net, w.FC)
	checker.Engine = w.engine
	out := &PropertyResult{Name: p.Name, Kind: KindCTL, Formula: p.Formula}
	f := p.Formula
	if w.opts.DisableInvariantFastPath {
		if inv, ok := ctl.AsInvariance(f); ok {
			// re-associate so the checker misses the AG(prop) pattern
			f = ctl.Not{F: ctl.EF{F: ctl.Not{F: inv}}}
		}
	}
	v, err := checker.Check(f)
	out.Time = time.Since(start)
	if err != nil {
		out.Err = err
		return out
	}
	out.Pass = v.Pass
	out.UsedInvariantPath = v.UsedInvariantPath
	w.emitPropCheck(out)
	return out
}

// emitPropCheck reports one finished property check to the workspace
// manager's telemetry scope.
func (w *Workspace) emitPropCheck(r *PropertyResult) {
	if t := w.Net.Manager().Telemetry(); t != nil {
		t.Emit("prop.check",
			telemetry.Str("name", r.Name),
			telemetry.Str("kind", string(r.Kind)),
			telemetry.Bool("pass", r.Pass),
			telemetry.I64("elapsed_us", r.Time.Microseconds()))
	}
}

// CheckLC verifies one automaton property by language containment.
func (w *Workspace) CheckLC(spec *pif.AutSpec) *PropertyResult {
	start := time.Now()
	if w.opts.ConeOfInfluence {
		var observed []string
		seen := map[string]bool{}
		for _, e := range spec.Edges {
			for _, v := range ctl.Atoms(e.Guard) {
				if !seen[v] {
					seen[v] = true
					observed = append(observed, v)
				}
			}
		}
		sub, res, err := w.coneWorkspace(observed)
		if err == nil && res.DroppedLatches > 0 {
			out := sub.CheckLC(spec)
			out.Time = time.Since(start)
			out.ConeDropped = res.DroppedLatches
			return out
		}
	}
	out := &PropertyResult{Name: spec.Name, Kind: KindLC}
	// Compilation extends the shared MDD space with the automaton's state
	// variables; under parallel verification only one product may do that
	// at a time. The expensive part — the emptiness check below — runs
	// outside the lock.
	w.compileMu.Lock()
	w.Net.EnsureT()
	a, err := lc.Compile(w.Net, spec)
	if err != nil {
		w.compileMu.Unlock()
		out.Err = err
		out.Time = time.Since(start)
		return out
	}
	p := lc.NewProduct(w.Net, a)
	w.compileMu.Unlock()
	res := lc.Check(p, w.FC, lc.Options{EarlySteps: w.opts.EarlySteps})
	out.Pass = res.Pass
	out.EarlyDetected = res.EarlyDetected
	if !res.Pass {
		tr, terr := debug.FindErrorTrace(p, res.Constraints, res.FairHull)
		if terr == nil {
			out.Trace = tr
			out.TraceSystem = p
		}
	}
	out.Time = time.Since(start)
	w.emitPropCheck(out)
	return out
}

// VerifyAll checks every property in the workspace: automata by
// language containment, formulas by CTL model checking. When the
// workspace's manager runs in parallel mode (Options.Workers >= 2) the
// independent property checks execute concurrently on the kernel's
// worker pool; BDD canonicity keeps every verdict identical to the
// sequential order, and results are reported in declaration order
// either way.
func (w *Workspace) VerifyAll() []*PropertyResult {
	nLC := len(w.Automata)
	out := make([]*PropertyResult, nLC+len(w.CTLProps))
	m := w.Net.Manager()
	if m.Workers() > 1 && len(out) > 1 {
		// Build T up front: every LC product conjoins it, and doing it
		// once here keeps the parallel section free of the big
		// single-threaded build (EnsureT itself is mutex-guarded, so
		// this is purely a scheduling choice).
		if nLC > 0 {
			w.Net.EnsureT()
		}
		tasks := make([]func(), 0, len(out))
		for i, a := range w.Automata {
			i, a := i, a
			tasks = append(tasks, func() { out[i] = w.CheckLC(a) })
		}
		for i, p := range w.CTLProps {
			i, p := i, p
			tasks = append(tasks, func() { out[nLC+i] = w.CheckCTL(p) })
		}
		m.ParallelDo(tasks...)
		return out
	}
	for i, a := range w.Automata {
		out[i] = w.CheckLC(a)
	}
	for i, p := range w.CTLProps {
		out[nLC+i] = w.CheckCTL(p)
	}
	return out
}

// DescribeProductState renders one product-trace state with design
// latch values and the automaton state name.
func DescribeProductState(p *lc.Product, st debug.State) string {
	asg := p.N.DecodeState(map[int]bool(st))
	var parts []string
	for _, l := range p.N.Latches() {
		parts = append(parts, fmt.Sprintf("%s=%s", l.Src.Output, asg[l.Src.Output]))
	}
	parts = append(parts, fmt.Sprintf("[%s:%s]", p.A.Name, p.A.States[p.APS.ValueFromMap(st)]))
	return strings.Join(parts, " ")
}

// DescribeState renders a design-level state.
func (w *Workspace) DescribeState(st debug.State) string {
	asg := w.Net.DecodeState(map[int]bool(st))
	var parts []string
	for _, l := range w.Net.Latches() {
		parts = append(parts, fmt.Sprintf("%s=%s", l.Src.Output, asg[l.Src.Output]))
	}
	return strings.Join(parts, " ")
}

// SourceOf maps a design variable back to its HDL source location
// ("file:line"), when the front end annotated it (paper §8 item 7:
// source-level debugging). Empty when unknown.
func (w *Workspace) SourceOf(variable string) string {
	return w.Net.Model().Attr("src", variable)
}

// BugReport renders a failing result as the textual bug report the
// debugger consumes (Figure 1's "bug report" artifact). When the design
// came from Verilog, the report maps each latch back to the source line
// that assigns it.
func (w *Workspace) BugReport(r *PropertyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "property %s (%s): FAIL\n", r.Name, r.Kind)
	if r.Err != nil {
		fmt.Fprintf(&sb, "  error: %v\n", r.Err)
		return sb.String()
	}
	if r.Trace != nil {
		describe := w.DescribeState
		if p, ok := r.TraceSystem.(*lc.Product); ok {
			describe = func(st debug.State) string { return DescribeProductState(p, st) }
		}
		sb.WriteString(debug.FormatTrace(r.Trace, describe))
		srcLines := false
		for _, l := range w.Net.Latches() {
			if loc := w.SourceOf(l.Src.Output); loc != "" {
				if !srcLines {
					sb.WriteString("  source locations:\n")
					srcLines = true
				}
				fmt.Fprintf(&sb, "    %s assigned at %s\n", l.Src.Output, loc)
			}
		}
	}
	return sb.String()
}

func verilogToBlifmv(src, file, top string) (*blifmv.Design, error) {
	return verilogCompile(src, file, top)
}

func countLines(s string) int {
	n := strings.Count(s, "\n")
	if len(s) > 0 && !strings.HasSuffix(s, "\n") {
		n++
	}
	return n
}
