package core

import (
	"strings"
	"testing"

	"hsis/internal/designs"
	"hsis/internal/quant"
)

func loadDesign(t *testing.T, name string, opts Options) *Workspace {
	t.Helper()
	d, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := LoadVerilogString(d.Verilog, name+".v", d.Top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPIFString(d.PIF, name+".pif"); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPingpongAllPropertiesPass(t *testing.T) {
	w := loadDesign(t, "pingpong", Options{})
	if got := w.ReachableStates(); got < 3 || got > 6 {
		t.Fatalf("pingpong reached %v states, expected a handful", got)
	}
	if len(w.Automata) != 6 || len(w.CTLProps) != 6 {
		t.Fatalf("pingpong: %d LC, %d CTL props; Table 1 wants 6 and 6",
			len(w.Automata), len(w.CTLProps))
	}
	for _, r := range w.VerifyAll() {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if !r.Pass {
			t.Errorf("pingpong property %s (%s) failed unexpectedly", r.Name, r.Kind)
		}
	}
}

func TestPhilosMutexPassesLivenessFails(t *testing.T) {
	w := loadDesign(t, "philos", Options{})
	if len(w.Automata) != 2 || len(w.CTLProps) != 2 {
		t.Fatalf("philos: %d LC, %d CTL props; Table 1 wants 2 and 2",
			len(w.Automata), len(w.CTLProps))
	}
	results := w.VerifyAll()
	byName := map[string]*PropertyResult{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		byName[r.Name] = r
	}
	if !byName["eat_mutex"].Pass || !byName["mutex"].Pass {
		t.Error("mutual exclusion must hold")
	}
	if byName["eat_live"].Pass {
		t.Error("liveness must fail: the symmetric protocol deadlocks")
	}
	if byName["progress"].Pass {
		t.Error("CTL progress must fail: the symmetric protocol deadlocks")
	}
	// failing LC property carries a verified error trace and bug report
	r := byName["eat_live"]
	if r.Trace == nil {
		t.Fatal("failing LC property must produce an error trace")
	}
	report := w.BugReport(r)
	if !strings.Contains(report, "FAIL") || !strings.Contains(report, "cycle") {
		t.Fatalf("bug report:\n%s", report)
	}
	// the deadlock shows both philosophers holding their left forks
	if !strings.Contains(report, "HASL") {
		t.Fatalf("expected the deadlock (HASL) in the trace:\n%s", report)
	}
}

func TestOptionsVariants(t *testing.T) {
	// The same verdicts under every engine configuration.
	for _, opts := range []Options{
		{},
		{Heuristic: quant.Linear},
		{NaiveQuantification: true},
		{AppendedOrder: true},
		{EarlySteps: 4},
		{DisableInvariantFastPath: true},
	} {
		w := loadDesign(t, "pingpong", opts)
		for _, r := range w.VerifyAll() {
			if r.Err != nil || !r.Pass {
				t.Fatalf("opts %+v: property %s failed (%v)", opts, r.Name, r.Err)
			}
		}
	}
}

func TestInvariantFastPathFlag(t *testing.T) {
	w := loadDesign(t, "pingpong", Options{})
	var mutex *PropertyResult
	for _, p := range w.CTLProps {
		if p.Name == "mutex" {
			mutex = w.CheckCTL(p)
		}
	}
	if mutex == nil || !mutex.UsedInvariantPath {
		t.Fatal("AG(prop) should use the invariance fast path without fairness")
	}
	w2 := loadDesign(t, "pingpong", Options{DisableInvariantFastPath: true})
	for _, p := range w2.CTLProps {
		if p.Name == "mutex" {
			r := w2.CheckCTL(p)
			if r.UsedInvariantPath {
				t.Fatal("fast path should be disabled")
			}
			if !r.Pass {
				t.Fatal("verdict must not change")
			}
		}
	}
}

func TestLineCounts(t *testing.T) {
	w := loadDesign(t, "pingpong", Options{})
	if w.VerilogLines == 0 || w.BlifmvLines == 0 {
		t.Fatal("source metrics missing")
	}
	if w.BlifmvLines < w.VerilogLines {
		t.Log("note: BLIF-MV smaller than Verilog (unusual but possible)")
	}
}

func TestDesignCatalog(t *testing.T) {
	names := designs.Names()
	if len(names) != 6 {
		t.Fatalf("catalog has %d designs, want 6", len(names))
	}
	if _, err := designs.Get("nope"); err == nil {
		t.Fatal("unknown design should error")
	}
}

func TestConeOfInfluenceOption(t *testing.T) {
	// mdlc2's channel-0 property ignores most of channel 1 — COI must
	// drop latches and preserve every verdict.
	full := loadDesign(t, "mdlc2", Options{})
	coi := loadDesign(t, "mdlc2", Options{ConeOfInfluence: true})
	rf := full.VerifyAll()
	rc := coi.VerifyAll()
	if len(rf) != len(rc) {
		t.Fatal("result count mismatch")
	}
	droppedSomewhere := false
	for i := range rf {
		if rf[i].Err != nil || rc[i].Err != nil {
			t.Fatalf("errors: %v / %v", rf[i].Err, rc[i].Err)
		}
		if rf[i].Pass != rc[i].Pass {
			t.Fatalf("%s: COI changed verdict %v -> %v", rf[i].Name, rf[i].Pass, rc[i].Pass)
		}
		if rc[i].ConeDropped > 0 {
			droppedSomewhere = true
		}
	}
	if !droppedSomewhere {
		t.Fatal("COI never reduced anything on mdlc2")
	}
}

func TestConeOfInfluenceAllDesignsVerdictsStable(t *testing.T) {
	for _, name := range designs.Names() {
		full := loadDesign(t, name, Options{})
		coi := loadDesign(t, name, Options{ConeOfInfluence: true})
		rf := full.VerifyAll()
		rc := coi.VerifyAll()
		for i := range rf {
			if rf[i].Err != nil || rc[i].Err != nil {
				t.Fatalf("%s/%s: %v / %v", name, rf[i].Name, rf[i].Err, rc[i].Err)
			}
			if rf[i].Pass != rc[i].Pass {
				t.Fatalf("%s/%s: COI changed the verdict", name, rf[i].Name)
			}
		}
	}
}

func TestVerificationSurvivesGC(t *testing.T) {
	// The GC contract: the network's protected roots (T, Init) survive a
	// collection, and verification after a GC produces identical
	// verdicts. (Checkers are per-property, so nothing else needs to be
	// protected between properties.)
	w := loadDesign(t, "philos", Options{})
	before := map[string]bool{}
	for _, r := range w.VerifyAll() {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		before[r.Name] = r.Pass
	}
	m := w.Net.Manager()
	sizeBefore := m.Size()
	m.GC()
	if m.GCCount != 1 {
		t.Fatal("GC did not run")
	}
	if m.Size() >= sizeBefore {
		t.Log("GC reclaimed nothing (all nodes reachable from T/Init)")
	}
	for _, r := range w.VerifyAll() {
		if r.Err != nil {
			t.Fatalf("after GC: %v", r.Err)
		}
		if before[r.Name] != r.Pass {
			t.Fatalf("after GC: %s verdict changed", r.Name)
		}
	}
}
