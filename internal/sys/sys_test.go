package sys

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/network"
)

func compile(t *testing.T, src string) *NetSystem {
	t.Helper()
	d, err := blifmv.ParseString(src, "test.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return FromNetwork(n)
}

// 0→1→2→3→0 with an extra chord 1→3
const chord = `
.model chord
.mv s,n 4
.table s n
0 1
1 {2,3}
2 3
3 0
.latch n s
.reset s
0
.end
`

func TestPostPreDuality(t *testing.T) {
	s := compile(t, chord)
	m := s.Manager()
	sv := s.N.VarByName("s")
	post1 := s.Post(sv.Eq(1))
	if post1 != m.Or(sv.Eq(2), sv.Eq(3)) {
		t.Fatal("Post wrong")
	}
	pre3 := s.Pre(sv.Eq(3))
	if pre3 != m.Or(sv.Eq(1), sv.Eq(2)) {
		t.Fatal("Pre wrong")
	}
}

func TestViaOperators(t *testing.T) {
	s := compile(t, chord)
	m := s.Manager()
	sv := s.N.VarByName("s")
	chordEdge := m.And(sv.Eq(1), s.SwapRails(sv.Eq(3)))
	// only the chord edge: successors of 1 via it = {3}
	if s.PostVia(chordEdge, sv.Eq(1)) != sv.Eq(3) {
		t.Fatal("PostVia wrong")
	}
	if s.PostVia(chordEdge, sv.Eq(2)) != bdd.False {
		t.Fatal("PostVia must respect the edge restriction")
	}
	if s.PreVia(chordEdge, sv.Eq(3)) != sv.Eq(1) {
		t.Fatal("PreVia wrong")
	}
	if s.PreVia(chordEdge, sv.Eq(0)) != bdd.False {
		t.Fatal("PreVia must respect the edge restriction")
	}
}

func TestEdgeSources(t *testing.T) {
	s := compile(t, chord)
	m := s.Manager()
	sv := s.N.VarByName("s")
	chordEdge := m.And(sv.Eq(1), s.SwapRails(sv.Eq(3)))
	// within everything: {1}
	if s.EdgeSources(chordEdge, sv.Domain()) != sv.Eq(1) {
		t.Fatal("EdgeSources wrong")
	}
	// within z excluding 3: the chord leads outside z → no source
	z := m.Diff(sv.Domain(), sv.Eq(3))
	if s.EdgeSources(chordEdge, z) != bdd.False {
		t.Fatal("EdgeSources must require the target inside z")
	}
}

func TestReached(t *testing.T) {
	s := compile(t, chord)
	sv := s.N.VarByName("s")
	if Reached(s) != sv.Domain() {
		t.Fatal("all four states are reachable")
	}
}

func TestInitAndStateBits(t *testing.T) {
	s := compile(t, chord)
	sv := s.N.VarByName("s")
	if s.Init() != sv.Eq(0) {
		t.Fatal("Init wrong")
	}
	if len(s.StateBits()) != 2 {
		t.Fatalf("state bits = %d, want 2", len(s.StateBits()))
	}
	// SwapRails is an involution
	f := sv.Eq(2)
	if s.SwapRails(s.SwapRails(f)) != f {
		t.Fatal("SwapRails not an involution")
	}
}
