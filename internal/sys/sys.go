// Package sys defines the transition-system abstraction shared by the
// CTL model checker, the language-containment engine and the fair-cycle
// machinery. A System is anything with a state space encoded over BDD
// variables, predecessor/successor operators, and an initial-state set —
// a compiled network, or a product of a network with a property
// automaton.
package sys

import (
	"hsis/internal/bdd"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/telemetry"
)

// System is a symbolic transition system.
type System interface {
	// Manager returns the BDD manager all sets live in.
	Manager() *bdd.Manager
	// Init returns the initial states (over the present-state rail).
	Init() bdd.Ref
	// Post returns the successors of s.
	Post(s bdd.Ref) bdd.Ref
	// Pre returns the predecessors of s.
	Pre(s bdd.Ref) bdd.Ref
	// PreVia returns the predecessors of s through edges satisfying the
	// edge predicate (a set over PS ∪ NS rails).
	PreVia(edges, s bdd.Ref) bdd.Ref
	// PostVia returns the successors of s through the given edges.
	PostVia(edges, s bdd.Ref) bdd.Ref
	// EdgeSources returns the states of z with at least one outgoing
	// edge in `edges` leading back into z.
	EdgeSources(edges, z bdd.Ref) bdd.Ref
	// StateBits returns the BDD variable IDs of the present-state rail.
	StateBits() []int
	// SwapRails exchanges present- and next-state variables in f.
	SwapRails(f bdd.Ref) bdd.Ref
}

// NetSystem adapts a compiled network to System. Plain Post/Pre route
// through the network's image engine (clustered when the monolithic T
// was skipped); the edge-restricted operators need the product relation
// and build it lazily on first use.
type NetSystem struct {
	N   *network.Network
	eng reach.ImageEngine
}

// FromNetwork wraps a network as a System, binding the default image
// engine (monolithic when T is built, clustered otherwise).
func FromNetwork(n *network.Network) *NetSystem {
	return &NetSystem{N: n, eng: reach.Engine(n, reach.EngineAuto)}
}

// FromNetworkEngine wraps a network with an explicit engine choice.
func FromNetworkEngine(n *network.Network, kind reach.EngineKind) *NetSystem {
	return &NetSystem{N: n, eng: reach.Engine(n, kind)}
}

// Manager returns the BDD manager of the underlying network.
func (s *NetSystem) Manager() *bdd.Manager { return s.N.Manager() }

// Init returns the network's initial states.
func (s *NetSystem) Init() bdd.Ref { return s.N.Init }

func (s *NetSystem) engine() reach.ImageEngine {
	if s.eng == nil { // zero-value construction
		s.eng = reach.Engine(s.N, reach.EngineAuto)
	}
	return s.eng
}

// Post returns the successors of set.
func (s *NetSystem) Post(set bdd.Ref) bdd.Ref { return s.engine().Image(set) }

// Pre returns the predecessors of set.
func (s *NetSystem) Pre(set bdd.Ref) bdd.Ref { return s.engine().Preimage(set) }

// PreVia returns predecessors through the restricted edge set.
func (s *NetSystem) PreVia(edges, set bdd.Ref) bdd.Ref {
	s.N.EnsureT()
	m := s.N.Manager()
	t := m.And(s.N.T, edges)
	return m.AndExists(t, s.N.SwapRails(set), s.N.NSCube())
}

// PostVia returns successors through the restricted edge set.
func (s *NetSystem) PostVia(edges, set bdd.Ref) bdd.Ref {
	s.N.EnsureT()
	m := s.N.Manager()
	t := m.And(s.N.T, edges)
	next := m.AndExists(t, set, s.N.PSCube())
	return s.N.SwapRails(next)
}

// EdgeSources returns the states of z with an out-edge in edges into z.
func (s *NetSystem) EdgeSources(edges, z bdd.Ref) bdd.Ref {
	s.N.EnsureT()
	m := s.N.Manager()
	t := m.AndN(s.N.T, edges, s.N.SwapRails(z))
	src := m.Exists(t, s.N.NSCube())
	return m.And(src, z)
}

// StateBits returns the present-state BDD variables.
func (s *NetSystem) StateBits() []int { return s.N.PSBits() }

// SwapRails exchanges the PS/NS rails in f.
func (s *NetSystem) SwapRails(f bdd.Ref) bdd.Ref { return s.N.SwapRails(f) }

// Reached computes the reachable states of any System.
func Reached(s System) bdd.Ref {
	m := s.Manager()
	reached := s.Init()
	frontier := reached
	t := m.Telemetry()
	step := 0
	for frontier != bdd.False {
		m.CheckInterrupt() // cancellation safe point (see internal/reach)
		var sp telemetry.Span
		if t != nil {
			sp = t.Start("sys.reach.iter")
		}
		next := s.Post(frontier)
		frontier = m.Diff(next, reached)
		reached = m.Or(reached, frontier)
		if t != nil {
			step++
			sp.End(telemetry.Int("step", step),
				telemetry.Int("frontier_nodes", m.NodeCount(frontier)),
				telemetry.Int("reached_nodes", m.NodeCount(reached)))
		}
	}
	return reached
}
