package ctl

import (
	"fmt"
	"strings"
)

// Parse reads one CTL formula in the HSIS/SMV style:
//
//	AG(out1=0 + out2=0)
//	AG(req=1 -> AF ack=1)
//	E(p=1 U q=done)
//	!EF bad
//
// Operators by loosening precedence: <->, ->, + (or |), * (or &), !,
// temporal unaries (AG AF AX EG EF EX), A(... U ...), E(... U ...).
// A bare identifier abbreviates ident=1. Identifiers may contain
// letters, digits, '_', '.', '$'.
func Parse(s string) (Formula, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &fparser{toks: toks, src: s}
	f, err := p.iff()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("ctl: trailing input at %q", p.toks[p.pos].text)
	}
	return f, nil
}

// MustParse is Parse that panics on error; for tests and tables.
func MustParse(s string) Formula {
	f, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return f
}

type token struct {
	kind tokenKind
	text string
}

type tokenKind int

const (
	tIdent tokenKind = iota
	tLParen
	tRParen
	tNot
	tAnd
	tOr
	tImplies
	tIff
	tEq
	tNeq
)

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tRParen, ")"})
			i++
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tNeq, "!="})
				i += 2
			} else {
				toks = append(toks, token{tNot, "!"})
				i++
			}
		case c == '*' || c == '&':
			toks = append(toks, token{tAnd, string(c)})
			i++
			if c == '&' && i < len(s) && s[i] == '&' {
				i++
			}
		case c == '+' || c == '|':
			toks = append(toks, token{tOr, string(c)})
			i++
			if c == '|' && i < len(s) && s[i] == '|' {
				i++
			}
		case c == '-':
			if i+1 < len(s) && s[i+1] == '>' {
				toks = append(toks, token{tImplies, "->"})
				i += 2
			} else {
				return nil, fmt.Errorf("ctl: stray '-' at offset %d", i)
			}
		case c == '<':
			if strings.HasPrefix(s[i:], "<->") {
				toks = append(toks, token{tIff, "<->"})
				i += 3
			} else {
				return nil, fmt.Errorf("ctl: stray '<' at offset %d", i)
			}
		case c == '=':
			toks = append(toks, token{tEq, "="})
			i++
		case isIdentChar(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{tIdent, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("ctl: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == '$'
}

type fparser struct {
	toks []token
	pos  int
	src  string
}

func (p *fparser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *fparser) accept(k tokenKind) bool {
	if t, ok := p.peek(); ok && t.kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *fparser) acceptIdent(text string) bool {
	if t, ok := p.peek(); ok && t.kind == tIdent && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *fparser) expect(k tokenKind, what string) error {
	if p.accept(k) {
		return nil
	}
	t, ok := p.peek()
	if !ok {
		return fmt.Errorf("ctl: expected %s at end of %q", what, p.src)
	}
	return fmt.Errorf("ctl: expected %s, found %q", what, t.text)
}

func (p *fparser) iff() (Formula, error) {
	l, err := p.implies()
	if err != nil {
		return nil, err
	}
	for p.accept(tIff) {
		r, err := p.implies()
		if err != nil {
			return nil, err
		}
		l = Iff{l, r}
	}
	return l, nil
}

func (p *fparser) implies() (Formula, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.accept(tImplies) {
		r, err := p.implies() // right associative
		if err != nil {
			return nil, err
		}
		return Implies{l, r}, nil
	}
	return l, nil
}

func (p *fparser) or() (Formula, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.accept(tOr) {
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *fparser) and() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept(tAnd) {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func (p *fparser) unary() (Formula, error) {
	if p.accept(tNot) {
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	}
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("ctl: unexpected end of formula %q", p.src)
	}
	if t.kind == tIdent {
		switch t.text {
		case "AG", "AF", "AX", "EG", "EF", "EX":
			p.pos++
			f, err := p.unary()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "AG":
				return AG{f}, nil
			case "AF":
				return AF{f}, nil
			case "AX":
				return AX{f}, nil
			case "EG":
				return EG{f}, nil
			case "EF":
				return EF{f}, nil
			default:
				return EX{f}, nil
			}
		case "A", "E":
			// A(f U g) / E(f U g)
			p.pos++
			if err := p.expect(tLParen, "'(' after "+t.text); err != nil {
				return nil, err
			}
			l, err := p.iff()
			if err != nil {
				return nil, err
			}
			if !p.acceptIdent("U") {
				return nil, fmt.Errorf("ctl: expected U inside %s(...)", t.text)
			}
			r, err := p.iff()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tRParen, "')'"); err != nil {
				return nil, err
			}
			if t.text == "A" {
				return AU{l, r}, nil
			}
			return EU{l, r}, nil
		}
	}
	return p.atom()
}

func (p *fparser) atom() (Formula, error) {
	if p.accept(tLParen) {
		f, err := p.iff()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	}
	t, ok := p.peek()
	if !ok || t.kind != tIdent {
		if ok {
			return nil, fmt.Errorf("ctl: expected atom, found %q", t.text)
		}
		return nil, fmt.Errorf("ctl: expected atom at end of %q", p.src)
	}
	p.pos++
	switch t.text {
	case "TRUE", "true", "1":
		return TrueF{}, nil
	case "FALSE", "false", "0":
		return FalseF{}, nil
	}
	if p.accept(tEq) {
		v, ok := p.peek()
		if !ok || v.kind != tIdent {
			return nil, fmt.Errorf("ctl: expected value after %s=", t.text)
		}
		p.pos++
		return Atom{Var: t.text, Value: v.text}, nil
	}
	if p.accept(tNeq) {
		v, ok := p.peek()
		if !ok || v.kind != tIdent {
			return nil, fmt.Errorf("ctl: expected value after %s!=", t.text)
		}
		p.pos++
		return Atom{Var: t.text, Value: v.text, Neq: true}, nil
	}
	// bare identifier: ident=1
	return Atom{Var: t.text, Value: "1"}, nil
}
