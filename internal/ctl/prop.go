package ctl

import (
	"fmt"

	"hsis/internal/bdd"
)

// EvalProp evaluates a propositional formula (no temporal operators)
// into a BDD using the given atom resolver. It is used for automaton
// guards and fairness-constraint expressions in PIF files.
func EvalProp(m *bdd.Manager, f Formula, label func(name, value string) (bdd.Ref, error)) (bdd.Ref, error) {
	switch t := f.(type) {
	case TrueF:
		return bdd.True, nil
	case FalseF:
		return bdd.False, nil
	case Atom:
		set, err := label(t.Var, t.Value)
		if err != nil {
			return bdd.False, err
		}
		if t.Neq {
			return m.Not(set), nil
		}
		return set, nil
	case Not:
		s, err := EvalProp(m, t.F, label)
		if err != nil {
			return bdd.False, err
		}
		return m.Not(s), nil
	case And:
		return evalBin(m, t.L, t.R, label, m.And)
	case Or:
		return evalBin(m, t.L, t.R, label, m.Or)
	case Implies:
		return evalBin(m, t.L, t.R, label, m.Implies)
	case Iff:
		return evalBin(m, t.L, t.R, label, m.Equiv)
	default:
		return bdd.False, fmt.Errorf("ctl: %s is not propositional", f)
	}
}

func evalBin(m *bdd.Manager, l, r Formula, label func(string, string) (bdd.Ref, error),
	op func(bdd.Ref, bdd.Ref) bdd.Ref) (bdd.Ref, error) {
	ls, err := EvalProp(m, l, label)
	if err != nil {
		return bdd.False, err
	}
	rs, err := EvalProp(m, r, label)
	if err != nil {
		return bdd.False, err
	}
	return op(ls, rs), nil
}
