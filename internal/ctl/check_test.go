package ctl

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/fair"
	"hsis/internal/network"
)

func compile(t *testing.T, src string) *network.Network {
	t.Helper()
	d, err := blifmv.ParseString(src, "test.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const counter4 = `
.model counter4
.mv s,n 4
.table s n
0 1
1 2
2 3
3 0
.latch n s
.reset s
0
.end
`

const gated5 = `
.model gated5
.mv s,n 5
.table s n
0 1
1 2
2 3
3 0
4 0
.latch n s
.reset s
0
.end
`

// pause: 0 →{0,1}, 1→0; may stutter at 0 forever
const pause = `
.model pause
.table s n
0 {0,1}
1 0
.latch n s
.reset s
0
.end
`

func TestBasicOperators(t *testing.T) {
	n := compile(t, counter4)
	c := NewForNetwork(n, nil)
	s := n.VarByName("s")

	sat := func(src string) bdd.Ref {
		t.Helper()
		r, err := c.Sat(MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if got := sat("EX s=1"); got != s.Eq(0) {
		t.Error("EX s=1 should be exactly {0}")
	}
	if got := sat("EF s=3"); n.Manager().Diff(s.Domain(), got) != bdd.False {
		t.Error("every state reaches 3 on the cycle")
	}
	if got := sat("EG TRUE"); n.Manager().Diff(s.Domain(), got) != bdd.False {
		t.Error("every state has an infinite path")
	}
	// A(s=0 U s=1): holds at exactly {0, 1}
	got := sat("A(s=0 U s=1)")
	want := n.Manager().Or(s.Eq(0), s.Eq(1))
	if n.Manager().And(got, s.Domain()) != want {
		t.Error("AU set wrong")
	}
	// E(s=0 U s=1) equals here (deterministic)
	got = sat("E(s=0 U s=1)")
	if n.Manager().And(got, s.Domain()) != want {
		t.Error("EU set wrong")
	}
	// AX/EX agree on a deterministic system (on reachable states)
	ax := sat("AX s=2")
	ex := sat("EX s=2")
	if n.Manager().And(ax, s.Domain()) != n.Manager().And(ex, s.Domain()) {
		t.Error("AX != EX on deterministic machine")
	}
}

func TestCheckVerdicts(t *testing.T) {
	n := compile(t, counter4)
	c := NewForNetwork(n, nil)
	// passes: always eventually wraps to 0
	v, err := c.Check(MustParse("AG(AF s=0)"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Error("AG AF s=0 should pass on the cycle")
	}
	// fails: s=1 is reached
	v, err = c.Check(MustParse("AG s!=1"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Error("AG s!=1 should fail")
	}
	if v.FailingInit == bdd.False {
		t.Error("failing verdict must expose failing initial states")
	}
}

func TestInvariancePath(t *testing.T) {
	n := compile(t, gated5)
	c := NewForNetwork(n, nil)
	// state 4 unreachable: invariant passes through the fast path
	v, err := c.Check(MustParse("AG s!=4"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass || !v.UsedInvariantPath {
		t.Fatalf("want pass via invariant path, got %+v", v)
	}
	// violated at depth 2
	v, err = c.Check(MustParse("AG s!=2"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass || !v.UsedInvariantPath {
		t.Fatalf("want fail via invariant path, got %+v", v)
	}
	if v.FailStep != 2 {
		t.Fatalf("FailStep = %d, want 2 (early failure depth)", v.FailStep)
	}
}

func TestInvariancePathSkippedUnderFairness(t *testing.T) {
	n := compile(t, gated5)
	fc := &fair.Constraints{}
	fc.AddPositiveStateSubset("gf0", n.VarByName("s").Eq(0))
	c := NewForNetwork(n, fc)
	v, err := c.Check(MustParse("AG s!=4"))
	if err != nil {
		t.Fatal(err)
	}
	if v.UsedInvariantPath {
		t.Fatal("fast path must be disabled under fairness constraints")
	}
	if !v.Pass {
		t.Fatal("property should still pass")
	}
}

func TestLivenessNeedsFairness(t *testing.T) {
	n := compile(t, pause)
	s := n.VarByName("s")

	// Without fairness the machine may stutter at 0 forever.
	c := NewForNetwork(n, nil)
	v, err := c.Check(MustParse("AG(s=0 -> AF s=1)"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("liveness should fail without fairness")
	}

	// The paper's canonical use of a negative fairness constraint:
	// exclude runs that stay at the pause state forever.
	fc := &fair.Constraints{}
	fc.AddNegativeStateSubset(n.Manager(), "leave0", s.Eq(0))
	cf := NewForNetwork(n, fc)
	v, err = cf.Check(MustParse("AG(s=0 -> AF s=1)"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatal("liveness should pass under the negative fairness constraint")
	}
}

func TestPositiveFairEdgesLiveness(t *testing.T) {
	n := compile(t, pause)
	m := n.Manager()
	s := n.VarByName("s")
	// the paper's alternative: mark the exit edge 0→1 as a positive
	// fair edge; only runs taking it infinitely often are legal.
	fc := &fair.Constraints{}
	fc.AddPositiveFairEdges("exit", m.And(s.Eq(0), n.SwapRails(s.Eq(1))))
	c := NewForNetwork(n, fc)
	v, err := c.Check(MustParse("AG(s=0 -> AF s=1)"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatal("liveness should pass with positive fair edges")
	}
}

func TestUnknownAtomErrors(t *testing.T) {
	n := compile(t, counter4)
	c := NewForNetwork(n, nil)
	if _, err := c.Check(MustParse("AG zz=1")); err == nil {
		t.Fatal("unknown variable should error")
	}
	if _, err := c.Check(MustParse("AG s=seven")); err == nil {
		t.Fatal("unknown value should error")
	}
}

func TestNeqAtom(t *testing.T) {
	n := compile(t, counter4)
	c := NewForNetwork(n, nil)
	s := n.VarByName("s")
	got, err := c.Sat(MustParse("s != 2"))
	if err != nil {
		t.Fatal(err)
	}
	if n.Manager().And(got, s.Domain()) != n.Manager().Diff(s.Domain(), s.Eq(2)) {
		t.Fatal("!= semantics wrong")
	}
}

func TestBooleanConnectives(t *testing.T) {
	n := compile(t, counter4)
	c := NewForNetwork(n, nil)
	m := n.Manager()
	s := n.VarByName("s")
	cases := []struct {
		src  string
		want bdd.Ref
	}{
		{"s=0 + s=1", m.Or(s.Eq(0), s.Eq(1))},
		{"s!=0 * s!=1", m.Diff(m.Not(s.Eq(0)), s.Eq(1))},
		{"s=0 -> s=1", m.Or(m.Not(s.Eq(0)), s.Eq(1))},
		{"TRUE", bdd.True},
		{"FALSE", bdd.False},
	}
	for _, cse := range cases {
		got, err := c.Sat(MustParse(cse.src))
		if err != nil {
			t.Fatal(err)
		}
		if got != cse.want {
			t.Errorf("Sat(%q) wrong", cse.src)
		}
	}
}
