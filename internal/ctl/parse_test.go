package ctl

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct{ in, out string }{
		{"AG(out1=0 + out2=0)", "AG (out1=0 + out2=0)"},
		{"AG(req=1 -> AF ack=1)", "AG (req=1 -> (AF ack=1))"},
		{"E(p=1 U q=done)", "E(p=1 U q=done)"},
		{"A(p U q)", "E..."}, // checked structurally below
		{"!EF bad", "!(EF bad=1)"},
		{"x != busy", "x!=busy"},
		{"TRUE * FALSE", "TRUE * FALSE"},
		{"a <-> b", "a=1 <-> b=1"},
		{"EX EG p=2", "EX (EG p=2)"},
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		// re-parse the printed form; must be accepted
		if _, err := Parse(f.String()); err != nil {
			t.Errorf("reparse of %q → %q failed: %v", c.in, f.String(), err)
		}
	}
}

func TestParseStructure(t *testing.T) {
	f := MustParse("AG(a=1 -> AF b=1)")
	ag, ok := f.(AG)
	if !ok {
		t.Fatalf("top is %T, want AG", f)
	}
	imp, ok := ag.F.(Implies)
	if !ok {
		t.Fatalf("inside AG is %T, want Implies", ag.F)
	}
	if _, ok := imp.R.(AF); !ok {
		t.Fatalf("consequent is %T, want AF", imp.R)
	}

	u := MustParse("A(x U y=v2)").(AU)
	if u.L.(Atom).Var != "x" || u.R.(Atom).Value != "v2" {
		t.Fatal("AU operands wrong")
	}

	// precedence: + binds looser than *
	g := MustParse("a + b * c").(Or)
	if _, ok := g.R.(And); !ok {
		t.Fatal("* should bind tighter than +")
	}
	// -> is right associative
	h := MustParse("a -> b -> c").(Implies)
	if _, ok := h.R.(Implies); !ok {
		t.Fatal("-> should be right associative")
	}
}

func TestParseIdentifiersWithDots(t *testing.T) {
	f := MustParse("c1.state=busy")
	a := f.(Atom)
	if a.Var != "c1.state" || a.Value != "busy" {
		t.Fatalf("atom = %+v", a)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "AG", "(a", "a U b", "E(a b)", "a =", "a !=", "a ->", "<- a",
		"a @ b", "E(a U b", "a) b",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestIsPropositionalAndInvariance(t *testing.T) {
	if !IsPropositional(MustParse("a=1 * (b=0 + !c)")) {
		t.Fatal("boolean combo should be propositional")
	}
	if IsPropositional(MustParse("EF a")) {
		t.Fatal("EF is temporal")
	}
	if _, ok := AsInvariance(MustParse("AG(a + b)")); !ok {
		t.Fatal("AG(prop) is an invariance")
	}
	if _, ok := AsInvariance(MustParse("AG(AF a)")); ok {
		t.Fatal("AG(AF) is not an invariance")
	}
	if _, ok := AsInvariance(MustParse("EF a")); ok {
		t.Fatal("EF is not an invariance")
	}
}

func TestIsExistential(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"AG(a -> AF b)", false},
		{"EF a", true},
		{"!EF a", false},     // negated existential is universal
		{"AG(!EX a)", false}, // still no positive existential
		{"AG(EF a)", true},   // mixed: contains positive EF
		{"!AG a", true},      // ¬AG = EF¬
	}
	for _, c := range cases {
		if got := IsExistential(MustParse(c.src)); got != c.want {
			t.Errorf("IsExistential(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestStringStable(t *testing.T) {
	srcs := []string{
		"AG (out1=0 + out2=0)",
		"E(p=1 U q=done)",
		"A(p=1 U q=1)",
		"AX (a=1 * b=1)",
	}
	for _, s := range srcs {
		f := MustParse(s)
		g := MustParse(f.String())
		if f.String() != g.String() {
			t.Errorf("String not stable: %q vs %q", f.String(), g.String())
		}
	}
	if !strings.Contains(MustParse("a != b").String(), "!=") {
		t.Fatal("Neq lost in printing")
	}
}

func TestAtoms(t *testing.T) {
	f := MustParse("AG(req=1 -> AF (ack=1 + A(req=0 U done=1))) * E(x U y) <-> !EX z")
	got := Atoms(f)
	want := []string{"req", "ack", "done", "x", "y", "z"}
	if len(got) != len(want) {
		t.Fatalf("Atoms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Atoms = %v, want %v", got, want)
		}
	}
	if len(Atoms(TrueF{})) != 0 {
		t.Fatal("constants have no atoms")
	}
}
