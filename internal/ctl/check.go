package ctl

import (
	"fmt"

	"hsis/internal/bdd"
	"hsis/internal/emptiness"
	"hsis/internal/fair"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/sys"
	"hsis/internal/telemetry"
)

// Checker evaluates fair CTL formulas over a symbolic transition system.
type Checker struct {
	S  sys.System
	FC *fair.Constraints
	// Label resolves an atom var=value to its present-state set.
	Label func(name, value string) (bdd.Ref, error)
	// Engine selects the image-computation strategy for the invariance
	// fast path's reachability run (EngineAuto by default).
	Engine reach.EngineKind

	net *network.Network // non-nil when built from a network (fast path)

	reached     bdd.Ref
	haveReached bool
	fairHull    bdd.Ref
	haveFair    bool
}

// New builds a checker over an arbitrary system.
func New(s sys.System, fc *fair.Constraints, label func(string, string) (bdd.Ref, error)) *Checker {
	return &Checker{S: s, FC: fc, Label: label}
}

// NewForNetwork builds a checker over a compiled network, resolving
// atoms with the network's label semantics.
func NewForNetwork(n *network.Network, fc *fair.Constraints) *Checker {
	c := New(sys.FromNetwork(n), fc, n.LabelEq)
	c.net = n
	return c
}

// Reached returns (and caches) the reachable states. The cached set is
// referenced so it survives garbage collections and dynamic reorders
// between checks.
func (c *Checker) Reached() bdd.Ref {
	if !c.haveReached {
		c.reached = c.S.Manager().IncRef(sys.Reached(c.S))
		c.haveReached = true
	}
	return c.reached
}

// Fair returns (and caches) the fair hull within the reachable states:
// the states with some fair path, the denotation of E G TRUE under
// fairness.
func (c *Checker) Fair() bdd.Ref {
	if !c.haveFair {
		r := emptiness.FairStates(c.S, c.FC, c.Reached())
		c.fairHull = c.S.Manager().IncRef(r.Fair)
		c.haveFair = true
	}
	return c.fairHull
}

// Verdict reports one property check.
type Verdict struct {
	Formula Formula
	// Pass is true when every initial state satisfies the formula.
	Pass bool
	// Sat is the satisfying state set (correct on reachable states).
	Sat bdd.Ref
	// FailingInit is Init ∧ ¬Sat (empty iff Pass).
	FailingInit bdd.Ref
	// UsedInvariantPath marks the optimized AG(propositional) route.
	UsedInvariantPath bool
	// FailStep is the reachability step at which the invariant was
	// first violated (invariant path only; -1 otherwise/none).
	FailStep int
}

// Check evaluates the formula and compares against the initial states.
func (c *Checker) Check(f Formula) (*Verdict, error) {
	m := c.S.Manager()
	if inv, ok := AsInvariance(f); ok && c.FC.IsEmpty() && c.net != nil {
		return c.checkInvariant(f, inv)
	}
	sat, err := c.Sat(f)
	if err != nil {
		return nil, err
	}
	failing := m.Diff(c.S.Init(), sat)
	return &Verdict{
		Formula:     f,
		Pass:        failing == bdd.False,
		Sat:         sat,
		FailingInit: failing,
		FailStep:    -1,
	}, nil
}

// checkInvariant is the optimized invariance route: forward reachability
// with a per-step violation test (which is simultaneously the early
// failure detection of paper §5.4 — "take a few reachability steps, and
// then check the property ... if the property fails on a subset of
// reachable states, then the property fails on the whole reachable set").
func (c *Checker) checkInvariant(f, p Formula) (*Verdict, error) {
	m := c.S.Manager()
	good, err := c.Sat(p) // propositional: no recursion into temporal ops
	if err != nil {
		return nil, err
	}
	bad := m.Not(good)
	// The reachability run below contains reorder safe points; good and
	// bad are read afterwards (and inside the Stop closure), so protect
	// them per the GC contract.
	m.IncRef(good)
	m.IncRef(bad)
	defer m.DecRef(bad)
	defer m.DecRef(good)
	step := 0
	failStep := -1
	res := reach.Forward(c.net, reach.Options{
		Engine: c.Engine,
		Stop: func(reached bdd.Ref) bool {
			if m.And(reached, bad) != bdd.False {
				failStep = step
				return true
			}
			step++
			return false
		},
	})
	if !c.haveReached && res.Converged {
		c.reached = m.IncRef(res.Reached)
		c.haveReached = true
	}
	pass := failStep < 0
	sat := good // AG p ⊆ p; precise Sat not needed for the verdict
	failing := bdd.False
	if !pass {
		// Any initial state fails: from it the bad state is reachable.
		failing = c.S.Init()
	}
	return &Verdict{
		Formula:           f,
		Pass:              pass,
		Sat:               sat,
		FailingInit:       failing,
		UsedInvariantPath: true,
		FailStep:          failStep,
	}, nil
}

// Sat returns the set of states satisfying f (exact on reachable
// states, under the checker's fairness constraints).
func (c *Checker) Sat(f Formula) (bdd.Ref, error) {
	m := c.S.Manager()
	switch t := f.(type) {
	case TrueF:
		return bdd.True, nil
	case FalseF:
		return bdd.False, nil
	case Atom:
		set, err := c.Label(t.Var, t.Value)
		if err != nil {
			return bdd.False, err
		}
		if t.Neq {
			return m.Not(set), nil
		}
		return set, nil
	case Not:
		s, err := c.Sat(t.F)
		if err != nil {
			return bdd.False, err
		}
		return m.Not(s), nil
	case And:
		return c.binary(t.L, t.R, m.And)
	case Or:
		return c.binary(t.L, t.R, m.Or)
	case Implies:
		return c.binary(t.L, t.R, m.Implies)
	case Iff:
		return c.binary(t.L, t.R, m.Equiv)
	case EX:
		s, err := c.Sat(t.F)
		if err != nil {
			return bdd.False, err
		}
		return c.S.Pre(m.And(s, c.Fair())), nil
	case EF:
		return c.satEU(TrueF{}, t.F)
	case EU:
		return c.satEU(t.L, t.R)
	case EG:
		s, err := c.Sat(t.F)
		if err != nil {
			return bdd.False, err
		}
		r := emptiness.FairStates(c.S, c.FC, m.And(s, c.Reached()))
		return r.Fair, nil
	case AX:
		// AX p = !EX !p
		return c.Sat(Not{EX{Not{t.F}}})
	case AF:
		// AF p = !EG !p
		return c.Sat(Not{EG{Not{t.F}}})
	case AG:
		// AG p = !EF !p
		return c.Sat(Not{EF{Not{t.F}}})
	case AU:
		// A[p U q] = !(E[!q U (!p ∧ !q)] ∨ EG !q)
		eu, err := c.Sat(EU{Not{t.R}, And{Not{t.L}, Not{t.R}}})
		if err != nil {
			return bdd.False, err
		}
		eg, err := c.Sat(EG{Not{t.R}})
		if err != nil {
			return bdd.False, err
		}
		return m.Not(m.Or(eu, eg)), nil
	default:
		return bdd.False, fmt.Errorf("ctl: unknown formula node %T", f)
	}
}

func (c *Checker) binary(l, r Formula, op func(bdd.Ref, bdd.Ref) bdd.Ref) (bdd.Ref, error) {
	ls, err := c.Sat(l)
	if err != nil {
		return bdd.False, err
	}
	rs, err := c.Sat(r)
	if err != nil {
		return bdd.False, err
	}
	return op(ls, rs), nil
}

// satEU computes fair E[p U q] = μY. (q ∧ fair-hull-reachable) ∨ (p ∧ Pre Y).
func (c *Checker) satEU(l, r Formula) (bdd.Ref, error) {
	m := c.S.Manager()
	p, err := c.Sat(l)
	if err != nil {
		return bdd.False, err
	}
	q, err := c.Sat(r)
	if err != nil {
		return bdd.False, err
	}
	y := m.And(q, c.Fair())
	t := m.Telemetry()
	iter := 0
	for {
		m.CheckInterrupt() // cancellation safe point
		var sp telemetry.Span
		if t != nil {
			sp = t.Start("ctl.eu.iter")
		}
		ny := m.Or(y, m.And(p, c.S.Pre(y)))
		if t != nil {
			iter++
			sp.End(telemetry.Int("iter", iter),
				telemetry.Int("y_nodes", m.NodeCount(ny)))
		}
		if ny == y {
			return y, nil
		}
		y = ny
	}
}
