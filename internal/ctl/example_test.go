package ctl_test

import (
	"fmt"

	"hsis/internal/blifmv"
	"hsis/internal/ctl"
	"hsis/internal/network"
)

// Model-check a request/grant property on a two-state machine.
func Example() {
	src := `
.model toggle
.table s n
0 1
1 0
.latch n s
.reset s
0
.end
`
	d, _ := blifmv.ParseString(src, "toggle.mv")
	flat, _ := blifmv.Flatten(d)
	net, _ := network.Build(flat, network.Options{})

	checker := ctl.NewForNetwork(net, nil)
	for _, prop := range []string{
		"AG(s=0 -> AX s=1)",
		"AG AF s=1",
		"AG s=0",
	} {
		f := ctl.MustParse(prop)
		v, _ := checker.Check(f)
		fmt.Printf("%-20s pass=%v\n", prop, v.Pass)
	}
	// Output:
	// AG(s=0 -> AX s=1)    pass=true
	// AG AF s=1            pass=true
	// AG s=0               pass=false
}
