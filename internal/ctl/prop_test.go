package ctl

import (
	"testing"

	"hsis/internal/bdd"
)

func TestEvalProp(t *testing.T) {
	m := bdd.New()
	a, b := m.NewVar(), m.NewVar()
	label := func(name, value string) (bdd.Ref, error) {
		switch name {
		case "a":
			if value == "1" {
				return a, nil
			}
			return m.Not(a), nil
		case "b":
			if value == "1" {
				return b, nil
			}
			return m.Not(b), nil
		}
		return bdd.False, errUnknown(name)
	}
	cases := []struct {
		src  string
		want bdd.Ref
	}{
		{"a * b", m.And(a, b)},
		{"a + !b", m.Or(a, m.Not(b))},
		{"a -> b", m.Implies(a, b)},
		{"a <-> b", m.Equiv(a, b)},
		{"a != 1", m.Not(a)},
		{"TRUE", bdd.True},
		{"FALSE", bdd.False},
	}
	for _, c := range cases {
		got, err := EvalProp(m, MustParse(c.src), label)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("EvalProp(%q) wrong", c.src)
		}
	}
	// temporal formulas are rejected
	if _, err := EvalProp(m, MustParse("EF a"), label); err == nil {
		t.Fatal("temporal formula should error")
	}
	// label errors propagate through every connective
	for _, src := range []string{"zz", "!zz", "a * zz", "zz * a", "zz -> a"} {
		if _, err := EvalProp(m, MustParse(src), label); err == nil {
			t.Fatalf("%s: unknown atom should error", src)
		}
	}
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown variable " + string(e) }
