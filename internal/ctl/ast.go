// Package ctl implements fair CTL model checking (paper §5.2): parsing
// of CTL formulas in the HSIS/SMV style, evaluation over a symbolic
// transition system under fairness constraints, and the invariance fast
// path the paper describes ("CTL model checking is more efficient for
// invariance properties, since we have optimized the model checker with
// respect to these properties").
package ctl

import "fmt"

// Formula is a CTL formula AST node.
type Formula interface {
	String() string
}

// TrueF is the constant true formula.
type TrueF struct{}

// FalseF is the constant false formula.
type FalseF struct{}

// Atom is a comparison of a design variable with a value: v=a or v!=a.
// A bare identifier parses as v=1.
type Atom struct {
	Var   string
	Value string
	Neq   bool
}

// Not is logical negation.
type Not struct{ F Formula }

// And is logical conjunction.
type And struct{ L, R Formula }

// Or is logical disjunction.
type Or struct{ L, R Formula }

// Implies is logical implication.
type Implies struct{ L, R Formula }

// Iff is logical biconditional.
type Iff struct{ L, R Formula }

// EX asserts some fair successor satisfies F.
type EX struct{ F Formula }

// EF asserts some fair path reaches F.
type EF struct{ F Formula }

// EG asserts some fair path satisfies F globally.
type EG struct{ F Formula }

// EU asserts some fair path satisfies L until R.
type EU struct{ L, R Formula }

// AX asserts every fair successor satisfies F.
type AX struct{ F Formula }

// AF asserts every fair path reaches F.
type AF struct{ F Formula }

// AG asserts every fair path satisfies F globally.
type AG struct{ F Formula }

// AU asserts every fair path satisfies L until R.
type AU struct{ L, R Formula }

func (TrueF) String() string  { return "TRUE" }
func (FalseF) String() string { return "FALSE" }

func (a Atom) String() string {
	op := "="
	if a.Neq {
		op = "!="
	}
	return a.Var + op + a.Value
}

func (f Not) String() string     { return "!" + paren(f.F) }
func (f And) String() string     { return paren(f.L) + " * " + paren(f.R) }
func (f Or) String() string      { return paren(f.L) + " + " + paren(f.R) }
func (f Implies) String() string { return paren(f.L) + " -> " + paren(f.R) }
func (f Iff) String() string     { return paren(f.L) + " <-> " + paren(f.R) }
func (f EX) String() string      { return "EX " + paren(f.F) }
func (f EF) String() string      { return "EF " + paren(f.F) }
func (f EG) String() string      { return "EG " + paren(f.F) }
func (f AX) String() string      { return "AX " + paren(f.F) }
func (f AF) String() string      { return "AF " + paren(f.F) }
func (f AG) String() string      { return "AG " + paren(f.F) }
func (f EU) String() string      { return fmt.Sprintf("E(%s U %s)", f.L, f.R) }
func (f AU) String() string      { return fmt.Sprintf("A(%s U %s)", f.L, f.R) }

func paren(f Formula) string {
	switch f.(type) {
	case Atom, TrueF, FalseF, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// IsPropositional reports whether f contains no temporal operator.
func IsPropositional(f Formula) bool {
	switch t := f.(type) {
	case TrueF, FalseF, Atom:
		return true
	case Not:
		return IsPropositional(t.F)
	case And:
		return IsPropositional(t.L) && IsPropositional(t.R)
	case Or:
		return IsPropositional(t.L) && IsPropositional(t.R)
	case Implies:
		return IsPropositional(t.L) && IsPropositional(t.R)
	case Iff:
		return IsPropositional(t.L) && IsPropositional(t.R)
	default:
		return false
	}
}

// AsInvariance matches the AG(p) pattern with propositional p — the
// shape handled by the optimized invariance path.
func AsInvariance(f Formula) (Formula, bool) {
	ag, ok := f.(AG)
	if !ok {
		return nil, false
	}
	if !IsPropositional(ag.F) {
		return nil, false
	}
	return ag.F, true
}

// Atoms collects the distinct variable names referenced by a formula, in
// first-appearance order — the observation support used by
// cone-of-influence abstraction.
func Atoms(f Formula) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch t := f.(type) {
		case Atom:
			if !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		case Not:
			walk(t.F)
		case And:
			walk(t.L)
			walk(t.R)
		case Or:
			walk(t.L)
			walk(t.R)
		case Implies:
			walk(t.L)
			walk(t.R)
		case Iff:
			walk(t.L)
			walk(t.R)
		case EX:
			walk(t.F)
		case EF:
			walk(t.F)
		case EG:
			walk(t.F)
		case AX:
			walk(t.F)
		case AF:
			walk(t.F)
		case AG:
			walk(t.F)
		case EU:
			walk(t.L)
			walk(t.R)
		case AU:
			walk(t.L)
			walk(t.R)
		}
	}
	walk(f)
	return out
}

// IsExistential reports whether the formula contains any existential
// path quantifier with positive polarity (such properties are not
// preserved by refinement, paper §2).
func IsExistential(f Formula) bool {
	return existential(f, true)
}

func existential(f Formula, pos bool) bool {
	switch t := f.(type) {
	case TrueF, FalseF, Atom:
		return false
	case Not:
		return existential(t.F, !pos)
	case And:
		return existential(t.L, pos) || existential(t.R, pos)
	case Or:
		return existential(t.L, pos) || existential(t.R, pos)
	case Implies:
		return existential(t.L, !pos) || existential(t.R, pos)
	case Iff:
		return existential(t.L, pos) || existential(t.R, pos) ||
			existential(t.L, !pos) || existential(t.R, !pos)
	case EX:
		return pos || existential(t.F, pos)
	case EF:
		return pos || existential(t.F, pos)
	case EG:
		return pos || existential(t.F, pos)
	case EU:
		return pos || existential(t.L, pos) || existential(t.R, pos)
	case AX:
		return !pos || existential(t.F, pos)
	case AF:
		return !pos || existential(t.F, pos)
	case AG:
		return !pos || existential(t.F, pos)
	case AU:
		return !pos || existential(t.L, pos) || existential(t.R, pos)
	default:
		return true
	}
}
