// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark line with the name,
// iteration count, ns/op, the -benchmem columns, and any custom
// ReportMetric values. The kernel benchmarks report the unified
// Statistics.BenchMetrics set (peak-live-nodes, peak-bdd-nodes,
// cache-hit-%) plus per-benchmark extras like live-bdd-nodes, so
// BENCH_*.json records the peak-live and hit-rate trajectories
// alongside ns/op. `make bench` pipes through it to record
// BENCH_bdd.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// addSpeedups derives a speedup-vs-clustered metric on every ".../iso"
// benchmark row that has a ".../clustered" twin (same name with the
// engine segment swapped), so BENCH_iso.json carries the per-design
// ratio directly instead of leaving readers to divide ns/op pairs.
func addSpeedups(results []result) {
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	for i := range results {
		r := &results[i]
		if !strings.Contains(r.Name, "/iso") || r.NsPerOp == 0 {
			continue
		}
		base, ok := byName[strings.Replace(r.Name, "/iso", "/clustered", 1)]
		if !ok {
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics["speedup-vs-clustered"] = base / r.NsPerOp
	}
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, NsPerOp: ns}
		// Remaining fields alternate value/unit: "123 B/op", "4 allocs/op",
		// "63448 peak-bdd-nodes", ...
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	addSpeedups(results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
