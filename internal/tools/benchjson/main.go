// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark line with the name,
// iteration count, ns/op, the -benchmem columns, and any custom
// ReportMetric values. The kernel benchmarks report the unified
// Statistics.BenchMetrics set (peak-live-nodes, peak-bdd-nodes,
// cache-hit-%) plus per-benchmark extras like live-bdd-nodes, so
// BENCH_*.json records the peak-live and hit-rate trajectories
// alongside ns/op. `make bench` pipes through it to record
// BENCH_bdd.json.
//
// Rows with twin configurations get derived ratios: every ".../iso" row
// with a ".../clustered" twin gains speedup-vs-clustered, and every
// ".../auto" reorder row with an ".../auto-naive" twin (the same auto
// sifting with all accelerations disabled) gains sift-speedup-vs-naive
// (naive sift-ms over accelerated sift-ms) and swaps-saved-% (the share
// of the naive sifter's adjacent-level swaps the accelerations
// avoided), plus speedup-vs-off against the no-reordering twin.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"numcpu"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// addSpeedups derives a speedup-vs-clustered metric on every ".../iso"
// benchmark row that has a ".../clustered" twin (same name with the
// engine segment swapped), so BENCH_iso.json carries the per-design
// ratio directly instead of leaving readers to divide ns/op pairs.
func addSpeedups(results []result) {
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	for i := range results {
		r := &results[i]
		if !strings.Contains(r.Name, "/iso") || r.NsPerOp == 0 {
			continue
		}
		base, ok := byName[strings.Replace(r.Name, "/iso", "/clustered", 1)]
		if !ok {
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics["speedup-vs-clustered"] = base / r.NsPerOp
	}
}

// addReorderMetrics derives the sifting-acceleration ratios on every
// ".../auto" row from its ".../auto-naive" and ".../off" twins. Names
// are compared with any "-<procs>" suffix `go test -bench` appends at
// GOMAXPROCS > 1 stripped.
func addReorderMetrics(results []result) {
	stripProcs := func(name string) string {
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				return name[:i]
			}
		}
		return name
	}
	byBase := make(map[string]*result, len(results))
	for i := range results {
		byBase[stripProcs(results[i].Name)] = &results[i]
	}
	for i := range results {
		r := &results[i]
		base := stripProcs(r.Name)
		if base[strings.LastIndex(base, "/")+1:] != "auto" {
			continue
		}
		set := func(k string, v float64) {
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[k] = v
		}
		if naive, ok := byBase[base+"-naive"]; ok && naive.Metrics != nil && r.Metrics != nil {
			if nms, ams := naive.Metrics["sift-ms"], r.Metrics["sift-ms"]; ams > 0 {
				set("sift-speedup-vs-naive", nms/ams)
			}
			if nsw, asw := naive.Metrics["swaps"], r.Metrics["swaps"]; nsw > 0 {
				set("swaps-saved-%", 100*(1-asw/nsw))
			}
		}
		// A ".../auto-prechange" twin is a row replayed from the revision
		// before the acceleration work (the Makefile splices the recorded
		// raw lines into the stream); derive the end-to-end speedup over
		// that sifter too.
		if pre, ok := byBase[base+"-prechange"]; ok && pre.Metrics != nil && r.Metrics != nil {
			if pms, ams := pre.Metrics["sift-ms"], r.Metrics["sift-ms"]; ams > 0 {
				set("sift-speedup-vs-prechange", pms/ams)
			}
			if psw, asw := pre.Metrics["swaps"], r.Metrics["swaps"]; psw > 0 {
				set("swaps-saved-vs-prechange-%", 100*(1-asw/psw))
			}
		}
		if off, ok := byBase[strings.TrimSuffix(base, "auto")+"off"]; ok && off.NsPerOp > 0 && r.NsPerOp > 0 {
			set("speedup-vs-off", off.NsPerOp/r.NsPerOp)
		}
	}
}

// workersSeg matches the "workers-N" / "workers=N" path segment the
// parallel-scaling and server benchmarks use for their sub-benchmark
// names.
var workersSeg = regexp.MustCompile(`workers([-=])(\d+)`)

// addParallelSpeedups derives speedup-vs-workers-1 on every row whose
// name carries a "workers-N" segment with N > 1 and that has a
// "workers-1" twin, so BENCH_parallel.json and BENCH_server.json carry
// the scaling ratio directly. Any "-<procs>" suffix `go test -bench`
// appends at GOMAXPROCS > 1 is ignored for twin matching.
func addParallelSpeedups(results []result) {
	// At GOMAXPROCS=1 the bench name has no "-<procs>" suffix and ends
	// in the workers segment itself, so only strip a trailing number
	// when the workers segment survives the cut.
	stripProcs := func(name string) string {
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil && workersSeg.MatchString(name[:i]) {
				return name[:i]
			}
		}
		return name
	}
	byBase := make(map[string]*result, len(results))
	for i := range results {
		byBase[stripProcs(results[i].Name)] = &results[i]
	}
	for i := range results {
		r := &results[i]
		base := stripProcs(r.Name)
		m := workersSeg.FindStringSubmatch(base)
		if m == nil || m[2] == "1" || r.NsPerOp == 0 {
			continue
		}
		one, ok := byBase[workersSeg.ReplaceAllString(base, "workers${1}1")]
		if !ok || one.NsPerOp == 0 {
			continue
		}
		// Throughput benchmarks (the server) scale their batch with the
		// worker count, so ns/op rows are not comparable across widths —
		// the jobs/s metric is the honest ratio there; plain wall-clock
		// benchmarks fall back to ns/op.
		speedup := one.NsPerOp / r.NsPerOp
		if j1, jn := one.Metrics["jobs/s"], r.Metrics["jobs/s"]; j1 > 0 && jn > 0 {
			speedup = jn / j1
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics["speedup-vs-workers-1"] = speedup
	}
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		// The host parallelism is stamped on every record: scaling rows
		// are meaningless without knowing how many CPUs backed the run
		// (benchjson runs in the same `make bench-*` pipeline, on the
		// same host, as the benchmark itself).
		r := result{Name: fields[0], Iterations: iters, NsPerOp: ns,
			GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
		// Remaining fields alternate value/unit: "123 B/op", "4 allocs/op",
		// "63448 peak-bdd-nodes", ...
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	addSpeedups(results)
	addReorderMetrics(results)
	addParallelSpeedups(results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
