package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsis/internal/bdd"
	"hsis/internal/core"
	"hsis/internal/designs"
	"hsis/internal/telemetry"
)

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the job worker pool size: how many jobs verify
	// concurrently, each in its own workspace. Zero auto-sizes from the
	// CPU count (NumCPU/2, clamped to [2, 8]).
	Workers int
	// QueueCapacity bounds the admission queue (default 32); a push
	// beyond it returns ErrQueueFull (HTTP 429).
	QueueCapacity int
	// CacheEntries bounds the artifact LRU (default 64 designs).
	CacheEntries int
	// SpoolDir holds per-job trace files (default: a fresh directory
	// under os.TempDir).
	SpoolDir string
	// DefaultTimeout applies to jobs that request none (default 5m);
	// MaxTimeout clamps requested deadlines (default: DefaultTimeout).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// TenantWeights sets per-tenant dispatch weights (default 1 each).
	TenantWeights map[string]int

	// testHookRunning, when set, is called on the worker goroutine right
	// after a job turns running and before it executes — tests use it to
	// observe dispatch order and to hold a worker busy deterministically.
	testHookRunning func(*Job)
}

// Server is the hsisd job engine: admission queue, worker pool, and
// artifact cache. It is transport-agnostic; Handler() (http.go) bolts
// the JSON API on top.
type Server struct {
	cfg   Config
	queue *jobQueue
	cache *artifactCache

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int64

	wg      sync.WaitGroup
	closing atomic.Bool

	// counters (atomic; surfaced by /metrics)
	submitted, rejected          atomic.Int64
	completed, failed            atomic.Int64
	timedOut, cancelled          atomic.Int64
	running                      atomic.Int64
	kernelMu                     sync.Mutex
	kernelTotals                 KernelTotals
	tracesWritten, traceFailures atomic.Int64

	// reg exports every hsis_* series (Prometheus text + JSON summaries);
	// the histogram families below are its members (see metrics.go).
	reg          *telemetry.Registry
	queueWait    *telemetry.HistogramVec // by tenant: admission → execution start
	jobDuration  *telemetry.HistogramVec // by tenant: admission → terminal status
	jobExec      *telemetry.HistogramVec // by tenant: execution start → terminal
	fixpointIter *telemetry.HistogramVec // by engine: one fixpoint frontier extension
	imageTime    *telemetry.HistogramVec // by engine: one full image computation
	gcPause      *telemetry.HistogramVec // by engine: one GC's exclusive window
	gcMark       *telemetry.HistogramVec // by engine: one GC's concurrent mark
	reorderTime  *telemetry.HistogramVec // by engine: one reordering session
	cacheLookup  *telemetry.HistogramVec // by result (hit/miss): artifact lookup
}

// New builds a server and starts its worker pool. Close shuts it down.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		// Auto-size from the host: one job worker per two CPUs keeps
		// headroom for each job's own BDD kernel workers, floored at 2
		// so a small host still overlaps compile and execution, capped
		// at 8 because beyond that the kernels fight over memory
		// bandwidth long before the pool runs dry.
		cfg.Workers = runtime.NumCPU() / 2
		if cfg.Workers < 2 {
			cfg.Workers = 2
		}
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 32
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.SpoolDir == "" {
		dir, err := os.MkdirTemp("", "hsisd-spool-")
		if err != nil {
			return nil, err
		}
		cfg.SpoolDir = dir
	} else if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		queue: newJobQueue(cfg.QueueCapacity, cfg.TenantWeights),
		cache: newArtifactCache(cfg.CacheEntries),
		jobs:  make(map[string]*Job),
	}
	s.initRegistry()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops admission, cancels queued jobs, interrupts running ones,
// and waits for the workers to drain.
func (s *Server) Close() {
	s.closing.Store(true)
	for _, j := range s.queue.drain() {
		j.finish(StatusCancelled, nil, "server shutting down")
		s.cancelled.Add(1)
	}
	s.queue.close()
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.Status() == StatusRunning {
			j.cancelRequested.Store(true)
			j.interrupt()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit validates and enqueues a request. ErrQueueFull means the
// caller should retry later (HTTP 429).
func (s *Server) Submit(req Request) (*Job, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if s.closing.Load() {
		return nil, errQueueClosed
	}
	kind, src, top, pif, design, err := resolveSources(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.mu.Unlock()
	j := &Job{
		ID:      id,
		Tenant:  req.Tenant,
		req:     req,
		key:     artifactKey(kind, src, top, pif),
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	// Stash the resolved sources so execution does not re-resolve.
	j.req.Verilog, j.req.Top, j.req.BlifMV, j.req.PIF = "", top, "", pif
	if kind == "verilog" {
		j.req.Verilog = src
	} else {
		j.req.BlifMV = src
	}
	j.req.Builtin = design
	if req.Options.Trace {
		j.tracePath = filepath.Join(s.cfg.SpoolDir, id+".jsonl")
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	s.submitted.Add(1)
	return j, nil
}

// resolveSources normalizes a request to (kind, source, top, pif) —
// expanding Builtin names via the embedded suite — plus a display name.
func resolveSources(req Request) (kind, src, top, pif, design string, err error) {
	pif = req.PIF
	if pif == "-" {
		pif = ""
	}
	switch {
	case req.Builtin != "":
		d, derr := designs.Get(req.Builtin)
		if derr != nil {
			return "", "", "", "", "", derr
		}
		if req.PIF == "" {
			pif = d.PIF // bundled properties by default
		}
		return "verilog", d.Verilog, d.Top, pif, d.Name, nil
	case req.Verilog != "":
		return "verilog", req.Verilog, req.Top, pif, req.Top, nil
	default:
		name := req.Top
		if name == "" {
			name = "blifmv"
		}
		return "blifmv", req.BlifMV, req.Top, pif, name, nil
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation: a queued job turns cancelled
// immediately (the queue skips it lazily); a running job is interrupted
// at its next fixpoint safe point. Returns false for unknown IDs.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancelRequested.Store(true)
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCancelled, nil, "cancelled while queued")
		s.cancelled.Add(1)
		return true
	}
	j.interrupt()
	return true
}

// worker is one pool goroutine: pop, execute, repeat until close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, err := s.queue.pop()
		if err != nil {
			return
		}
		if !j.setRunning() {
			continue // cancelled between push and pop
		}
		s.queueWait.With(tenantLabel(j.Tenant)).Observe(time.Since(j.created))
		if s.cfg.testHookRunning != nil {
			s.cfg.testHookRunning(j)
		}
		s.running.Add(1)
		s.execute(j)
		s.running.Add(-1)
	}
}

// execute runs one job to a terminal status. It never lets a panic out:
// an interrupt unwinds into timeout/cancelled, anything else into
// failed, so a poisoned job cannot wedge its worker.
func (s *Server) execute(j *Job) {
	start := time.Now()
	if j.cancelRequested.Load() {
		j.finish(StatusCancelled, nil, "cancelled before start")
		s.cancelled.Add(1)
		s.observeJobDone(j)
		return
	}

	// Per-job telemetry scope: a flight recorder and metric set always,
	// plus a JSONL tracer when the job asked for one. The scope is
	// threaded into the job's private manager through core.Options, so
	// any number of traced jobs run (and stream) concurrently.
	var tracer *telemetry.Tracer
	if j.req.Options.Trace {
		t, err := telemetry.OpenTrace(j.tracePath)
		if err != nil {
			j.finish(StatusFailed, nil, "trace spool: "+err.Error())
			s.failed.Add(1)
			s.observeJobDone(j)
			return
		}
		tracer = t
	}
	j.scope = telemetry.NewScope(tracer).
		WithRecorder(telemetry.NewRecorder()).
		WithMetrics(telemetry.NewMetricSet())
	if tracer != nil {
		j.scope.StartSampler(0)
	}

	st, res, msg := s.runWithDeadline(j, start)

	// The tracer must flush and close before the job turns terminal:
	// trace followers stop at (terminal status, EOF), so a late flush
	// would truncate their stream. Scope.Close stops the sampler first.
	err := j.scope.Close()
	if tracer != nil {
		if err != nil {
			s.traceFailures.Add(1)
		} else {
			s.tracesWritten.Add(1)
		}
	}
	s.foldJobMetrics(engineLabel(j.req.Options.Image), j.scope.Metrics())

	// A job that dies abnormally keeps its last moments: the flight
	// recorder's ring is dumped into the job view, so post-mortems don't
	// need a re-run with tracing on.
	if st != StatusDone {
		j.setFlightRecord(j.scope.Recorder().Dump())
	}

	j.finish(st, res, msg)
	switch st {
	case StatusDone:
		s.completed.Add(1)
	case StatusTimeout:
		s.timedOut.Add(1)
	case StatusCancelled:
		s.cancelled.Add(1)
	default:
		s.failed.Add(1)
	}
	s.observeJobDone(j)
}

// observeJobDone records the job's admission-to-terminal latency (and,
// for jobs that actually ran, its execution latency) into the
// per-tenant histograms. Called on the worker goroutine that ran the
// job, so reading j.started without the lock is safe.
func (s *Server) observeJobDone(j *Job) {
	tenant := tenantLabel(j.Tenant)
	s.jobDuration.With(tenant).Observe(time.Since(j.created))
	if !j.started.IsZero() {
		s.jobExec.With(tenant).Observe(time.Since(j.started))
	}
}

// foldJobMetrics merges a finished job's kernel latency histograms into
// the server-lifetime per-engine families.
func (s *Server) foldJobMetrics(engine string, ms *telemetry.MetricSet) {
	if ms == nil {
		return
	}
	s.fixpointIter.With(engine).Merge(ms.FixpointIter.Snapshot())
	s.imageTime.With(engine).Merge(ms.Image.Snapshot())
	s.gcPause.With(engine).Merge(ms.GCPause.Snapshot())
	s.gcMark.With(engine).Merge(ms.GCMark.Snapshot())
	s.reorderTime.With(engine).Merge(ms.Reorder.Snapshot())
}

// tenantLabel maps the empty tenant to its display name.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// engineLabel maps the image-engine option to its metrics label.
func engineLabel(image string) string {
	if image == "" {
		return "auto"
	}
	return image
}

// runWithDeadline arms the job's deadline and maps the verification
// outcome to a terminal status.
func (s *Server) runWithDeadline(j *Job, start time.Time) (Status, *Result, string) {
	// The deadline covers the whole execution; the interrupt only bites
	// at fixpoint safe points, so the frontend/compile phase may
	// overshoot slightly — the flags are re-checked as soon as the
	// workspace exists.
	deadline := time.Duration(j.req.Options.TimeoutMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultTimeout
	}
	if deadline > s.cfg.MaxTimeout {
		deadline = s.cfg.MaxTimeout
	}
	timer := time.AfterFunc(deadline, func() {
		j.deadlineHit.Store(true)
		j.interrupt()
	})
	defer timer.Stop()

	res, err := s.runVerification(j)
	switch {
	case err == nil:
		res.ElapsedMS = time.Since(start).Milliseconds()
		return StatusDone, res, ""
	case errors.Is(err, bdd.ErrInterrupted):
		if j.deadlineHit.Load() {
			return StatusTimeout, nil, fmt.Sprintf("deadline %v exceeded", deadline)
		}
		return StatusCancelled, nil, "cancelled"
	default:
		return StatusFailed, nil, err.Error()
	}
}

// runVerification compiles (or fetches) the artifact, instantiates the
// job's private workspace, and verifies. An interrupt surfaces as
// bdd.ErrInterrupted; any other panic as a wrapped error.
func (s *Server) runVerification(j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, bdd.ErrInterrupted) {
				err = bdd.ErrInterrupted
				return
			}
			err = fmt.Errorf("internal panic: %v", r)
		}
	}()

	lookupStart := time.Now()
	d, hit, err := s.cache.getOrCompile(j.key, func() (*core.CompiledDesign, error) {
		var d *core.CompiledDesign
		var cerr error
		if j.req.Verilog != "" {
			d, cerr = core.CompileVerilog(j.req.Verilog, j.ID+".v", j.req.Top)
		} else {
			d, cerr = core.CompileBlifMV(j.req.BlifMV, j.ID+".mv")
		}
		if cerr != nil {
			return nil, cerr
		}
		if j.req.PIF != "" {
			if cerr := d.AddPIF(j.req.PIF, j.ID+".pif"); cerr != nil {
				return nil, cerr
			}
		}
		return d, nil
	})
	lookupResult := "miss"
	if hit {
		lookupResult = "hit"
	}
	s.cacheLookup.With(lookupResult).Observe(time.Since(lookupStart))
	if err != nil {
		return nil, err
	}

	ws, err := d.Instantiate(core.Options{
		Workers:         j.req.Options.Workers,
		Image:           j.req.Options.Image,
		Reorder:         j.req.Options.Reorder,
		ConeOfInfluence: j.req.Options.ConeOfInfluence,
		Telemetry:       j.scope,
	})
	if err != nil {
		return nil, err
	}
	j.ws.Store(ws)
	// Re-check: a cancel/deadline that landed before the workspace
	// existed could only set the flags; arm the manager now.
	if j.cancelRequested.Load() || j.deadlineHit.Load() {
		ws.Interrupt()
	}
	defer s.accumulateKernel(ws)

	res = &Result{Design: j.req.Builtin, CacheHit: hit}
	for _, pr := range ws.VerifyAll() {
		v := PropertyVerdict{
			Name:      pr.Name,
			Kind:      string(pr.Kind),
			Pass:      pr.Pass,
			ElapsedMS: pr.Time.Milliseconds(),
		}
		if pr.Err != nil {
			v.Error = pr.Err.Error()
		}
		res.Properties = append(res.Properties, v)
	}
	if j.req.Options.Reach {
		res.ReachedStates = ws.ReachableStatesExact().String()
	}
	res.PeakLiveNodes = ws.Net.Manager().Stats().PeakLive
	return res, nil
}

// accumulateKernel folds a finished job's manager counters into the
// server-lifetime totals surfaced by /metrics.
func (s *Server) accumulateKernel(ws *core.Workspace) {
	st := ws.Net.Manager().Stats()
	s.kernelMu.Lock()
	defer s.kernelMu.Unlock()
	k := &s.kernelTotals
	k.ApplyCalls += st.ApplyCalls
	k.ApplyHits += st.ApplyHits
	k.ITECalls += st.ITECalls
	k.ITEHits += st.ITEHits
	k.QuantCalls += st.QuantCalls + st.AndExistsCalls
	k.QuantHits += st.QuantHits + st.AndExistsHits
	k.GCs += int64(st.GCs)
	k.Reorders += int64(st.Reorders)
	k.L1Hits += st.L1Hits
	k.L1Merges += st.L1Merges
	k.L1Promotions += st.L1Promotions
	k.GrainAdjusts += st.GrainAdjusts
	k.SiftZones += st.SiftZones
	k.SiftParBlocks += st.SiftParBlocks
	if int64(st.PeakLive) > k.MaxPeakLive {
		k.MaxPeakLive = int64(st.PeakLive)
	}
}
