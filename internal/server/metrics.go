package server

import (
	"hsis/internal/telemetry"
)

// KernelTotals aggregates BDD kernel counters across every job the
// server has executed (each job's manager is read once, at job end).
type KernelTotals struct {
	ApplyCalls  uint64 `json:"apply_calls"`
	ApplyHits   uint64 `json:"apply_hits"`
	ITECalls    uint64 `json:"ite_calls"`
	ITEHits     uint64 `json:"ite_hits"`
	QuantCalls  uint64 `json:"quant_calls"` // Exists/ForAll + AndExists
	QuantHits   uint64 `json:"quant_hits"`
	GCs         int64  `json:"gcs"`
	Reorders    int64  `json:"reorders"`
	MaxPeakLive int64  `json:"max_peak_live_nodes"`

	// Parallel-kernel counters (two-level op cache, grain controller,
	// zoned sifting), summed across jobs like the cache counters above.
	L1Hits        uint64 `json:"l1_hits"`
	L1Merges      uint64 `json:"l1_merges"`
	L1Promotions  uint64 `json:"l1_promotions"`
	GrainAdjusts  uint64 `json:"grain_adjusts"`
	SiftZones     uint64 `json:"sift_zones"`
	SiftParBlocks uint64 `json:"sift_par_blocks"`
}

// CacheMetrics reports the artifact cache's effectiveness.
type CacheMetrics struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// LatencySummary is the JSON rendering of one latency histogram (or one
// labeled child of a vector family): observation count plus quantiles
// in milliseconds. Quantiles are bucket upper bounds — exact to a
// factor of two (see telemetry.Histogram).
type LatencySummary struct {
	Name   string  `json:"name"`
	Label  string  `json:"label,omitempty"` // label key for vector children
	Value  string  `json:"value,omitempty"` // label value
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// TenantMetrics is one tenant's latency breakdown.
type TenantMetrics struct {
	QueueWait   LatencySummary `json:"queue_wait"`
	JobDuration LatencySummary `json:"job_duration"`
	Exec        LatencySummary `json:"exec"`
}

// Metrics is the GET /metrics snapshot.
type Metrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_capacity"`
	Running    int `json:"running_jobs"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsTimedOut  int64 `json:"jobs_timed_out"`
	JobsCancelled int64 `json:"jobs_cancelled"`

	TracesWritten int64 `json:"traces_written"`
	TraceFailures int64 `json:"trace_failures"`

	ArtifactCache CacheMetrics `json:"artifact_cache"`
	Kernel        KernelTotals `json:"kernel"`

	// Tenants breaks queue-wait and job-duration down per tenant.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// Latency summarizes every non-tenant histogram family with at
	// least one observation (per-engine kernel latencies, cache lookup).
	Latency []LatencySummary `json:"latency,omitempty"`
}

// initRegistry builds the server's metric registry: every exported
// hsis_* series, registered exactly once. Counters and gauges are
// function-backed by the server's existing atomics; the histogram
// vectors are owned by the registry and fed by the workers. A bad name
// panics here, at construction — the metrics-name lint in `make check`
// asserts the same invariants over the live registry.
func (s *Server) initRegistry() {
	r := telemetry.NewRegistry()

	r.GaugeFunc("hsis_workers", "job worker pool size",
		func() int64 { return int64(s.cfg.Workers) })
	r.GaugeFunc("hsis_queue_depth", "jobs waiting in the admission queue",
		func() int64 { return int64(s.queue.depth()) })
	r.GaugeFunc("hsis_queue_capacity", "admission queue capacity",
		func() int64 { return int64(s.cfg.QueueCapacity) })
	r.GaugeFunc("hsis_jobs_running", "jobs currently executing", s.running.Load)

	r.CounterFunc("hsis_jobs_submitted_total", "jobs admitted to the queue", s.submitted.Load)
	r.CounterFunc("hsis_jobs_rejected_total", "jobs rejected at admission (queue full)", s.rejected.Load)
	r.CounterFunc("hsis_jobs_completed_total", "jobs that finished with verdicts", s.completed.Load)
	r.CounterFunc("hsis_jobs_failed_total", "jobs that failed (compile or internal error)", s.failed.Load)
	r.CounterFunc("hsis_jobs_timed_out_total", "jobs interrupted by their deadline", s.timedOut.Load)
	r.CounterFunc("hsis_jobs_cancelled_total", "jobs cancelled by the client or by shutdown", s.cancelled.Load)
	r.CounterFunc("hsis_traces_written_total", "per-job traces flushed successfully", s.tracesWritten.Load)
	r.CounterFunc("hsis_trace_failures_total", "per-job traces that failed to flush", s.traceFailures.Load)

	kernel := func(read func(*KernelTotals) int64) func() int64 {
		return func() int64 {
			s.kernelMu.Lock()
			defer s.kernelMu.Unlock()
			return read(&s.kernelTotals)
		}
	}
	r.CounterFunc("hsis_kernel_worker_cache_hits_total", "op-cache probes answered by a private worker L1",
		kernel(func(k *KernelTotals) int64 { return int64(k.L1Hits) }))
	r.CounterFunc("hsis_kernel_worker_cache_merges_total", "L1-to-L2 op-cache promotion drains",
		kernel(func(k *KernelTotals) int64 { return int64(k.L1Merges) }))
	r.CounterFunc("hsis_kernel_worker_cache_promotions_total", "op-cache entries published to the shared L2",
		kernel(func(k *KernelTotals) int64 { return int64(k.L1Promotions) }))
	r.CounterFunc("hsis_kernel_grain_adjusts_total", "fork-depth moves by the grain controller",
		kernel(func(k *KernelTotals) int64 { return int64(k.GrainAdjusts) }))
	r.CounterFunc("hsis_kernel_sift_zones_total", "independent reorder zones opened",
		kernel(func(k *KernelTotals) int64 { return int64(k.SiftZones) }))
	r.CounterFunc("hsis_kernel_sift_par_blocks_total", "blocks sifted inside reorder zones",
		kernel(func(k *KernelTotals) int64 { return int64(k.SiftParBlocks) }))

	r.GaugeFunc("hsis_artifact_cache_entries", "compiled design artifacts cached",
		func() int64 { n, _, _, _ := s.cache.stats(); return int64(n) })
	r.CounterFunc("hsis_artifact_cache_hits_total", "artifact lookups that skipped the frontend",
		func() int64 { _, h, _, _ := s.cache.stats(); return h })
	r.CounterFunc("hsis_artifact_cache_misses_total", "artifact lookups that compiled",
		func() int64 { _, _, m, _ := s.cache.stats(); return m })
	r.CounterFunc("hsis_artifact_cache_evictions_total", "artifacts evicted from the LRU",
		func() int64 { _, _, _, e := s.cache.stats(); return e })

	s.queueWait = r.NewHistogramVec("hsis_queue_wait_seconds",
		"time from admission to execution start", "tenant")
	s.jobDuration = r.NewHistogramVec("hsis_job_duration_seconds",
		"time from admission to a terminal status", "tenant")
	s.jobExec = r.NewHistogramVec("hsis_job_exec_seconds",
		"time from execution start to a terminal status", "tenant")
	s.fixpointIter = r.NewHistogramVec("hsis_fixpoint_iteration_seconds",
		"one frontier extension of any fixpoint driver", "engine")
	s.imageTime = r.NewHistogramVec("hsis_image_seconds",
		"one full image computation", "engine")
	s.gcPause = r.NewHistogramVec("hsis_gc_pause_seconds",
		"exclusive (stop-the-world) window of one kernel garbage collection", "engine")
	s.gcMark = r.NewHistogramVec("hsis_gc_mark_seconds",
		"concurrent mark phase of one parallel kernel garbage collection", "engine")
	s.reorderTime = r.NewHistogramVec("hsis_reorder_session_seconds",
		"one dynamic-reordering session, start to close", "engine")
	s.cacheLookup = r.NewHistogramVec("hsis_artifact_cache_lookup_seconds",
		"artifact cache lookup, including the compile on a miss", "result")

	s.reg = r
}

// Registry exposes the server's metric registry (the Prometheus
// endpoint renders it; the metrics-name lint walks it).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// summarize converts a histogram snapshot to its JSON summary.
func summarize(ls telemetry.LabeledSnapshot) LatencySummary {
	usToMS := func(us int64) float64 { return float64(us) / 1e3 }
	return LatencySummary{
		Name:   ls.Name,
		Label:  ls.Label,
		Value:  ls.Value,
		Count:  ls.Count,
		P50MS:  usToMS(ls.P50US()),
		P90MS:  usToMS(ls.P90US()),
		P99MS:  usToMS(ls.P99US()),
		MeanMS: usToMS(ls.MeanUS()),
	}
}

// Metrics snapshots the server's observable state.
func (s *Server) Metrics() Metrics {
	entries, hits, misses, evictions := s.cache.stats()
	s.kernelMu.Lock()
	kernel := s.kernelTotals
	s.kernelMu.Unlock()
	m := Metrics{
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queue.depth(),
		QueueCap:      s.cfg.QueueCapacity,
		Running:       int(s.running.Load()),
		JobsSubmitted: s.submitted.Load(),
		JobsRejected:  s.rejected.Load(),
		JobsCompleted: s.completed.Load(),
		JobsFailed:    s.failed.Load(),
		JobsTimedOut:  s.timedOut.Load(),
		JobsCancelled: s.cancelled.Load(),
		TracesWritten: s.tracesWritten.Load(),
		TraceFailures: s.traceFailures.Load(),
		ArtifactCache: CacheMetrics{
			Entries:   entries,
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
		},
		Kernel: kernel,
	}
	for _, ls := range s.reg.HistogramSnapshots() {
		if ls.Label == "tenant" {
			if m.Tenants == nil {
				m.Tenants = make(map[string]TenantMetrics)
			}
			tm := m.Tenants[ls.Value]
			switch ls.Name {
			case "hsis_queue_wait_seconds":
				tm.QueueWait = summarize(ls)
			case "hsis_job_duration_seconds":
				tm.JobDuration = summarize(ls)
			case "hsis_job_exec_seconds":
				tm.Exec = summarize(ls)
			}
			m.Tenants[ls.Value] = tm
			continue
		}
		if ls.Count > 0 {
			m.Latency = append(m.Latency, summarize(ls))
		}
	}
	return m
}
