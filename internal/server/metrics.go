package server

// KernelTotals aggregates BDD kernel counters across every job the
// server has executed (each job's manager is read once, at job end).
type KernelTotals struct {
	ApplyCalls  uint64 `json:"apply_calls"`
	ApplyHits   uint64 `json:"apply_hits"`
	ITECalls    uint64 `json:"ite_calls"`
	ITEHits     uint64 `json:"ite_hits"`
	QuantCalls  uint64 `json:"quant_calls"` // Exists/ForAll + AndExists
	QuantHits   uint64 `json:"quant_hits"`
	GCs         int64  `json:"gcs"`
	Reorders    int64  `json:"reorders"`
	MaxPeakLive int64  `json:"max_peak_live_nodes"`
}

// CacheMetrics reports the artifact cache's effectiveness.
type CacheMetrics struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Metrics is the GET /metrics snapshot.
type Metrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_capacity"`
	Running    int `json:"running_jobs"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsTimedOut  int64 `json:"jobs_timed_out"`
	JobsCancelled int64 `json:"jobs_cancelled"`

	TracesWritten int64 `json:"traces_written"`
	TraceFailures int64 `json:"trace_failures"`

	ArtifactCache CacheMetrics `json:"artifact_cache"`
	Kernel        KernelTotals `json:"kernel"`
}

// Metrics snapshots the server's observable state.
func (s *Server) Metrics() Metrics {
	entries, hits, misses, evictions := s.cache.stats()
	s.kernelMu.Lock()
	kernel := s.kernelTotals
	s.kernelMu.Unlock()
	return Metrics{
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queue.depth(),
		QueueCap:      s.cfg.QueueCapacity,
		Running:       int(s.running.Load()),
		JobsSubmitted: s.submitted.Load(),
		JobsRejected:  s.rejected.Load(),
		JobsCompleted: s.completed.Load(),
		JobsFailed:    s.failed.Load(),
		JobsTimedOut:  s.timedOut.Load(),
		JobsCancelled: s.cancelled.Load(),
		TracesWritten: s.tracesWritten.Load(),
		TraceFailures: s.traceFailures.Load(),
		ArtifactCache: CacheMetrics{
			Entries:   entries,
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
		},
		Kernel: kernel,
	}
}
