package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hsis/internal/telemetry"
)

// readTrace streams a job's trace endpoint to the end, returning the
// parsed event-kind counts. Fails the test on any malformed JSONL line.
func readTrace(t *testing.T, base, path string) map[string]int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: %d", path, resp.StatusCode)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Ev == "" {
			t.Fatalf("JSONL line without ev: %q", line)
		}
		kinds[ev.Ev]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return kinds
}

// TestConcurrentTracedJobs is the proof that the solo-trace exec gate
// is gone: two traced jobs are held at a barrier until both are
// running, so they verifiably execute concurrently, and both must
// stream complete, well-formed JSONL traces.
func TestConcurrentTracedJobs(t *testing.T) {
	var barrier sync.WaitGroup
	barrier.Add(2)
	cfg := Config{
		Workers: 2,
		testHookRunning: func(*Job) {
			barrier.Done()
			barrier.Wait() // neither job executes until both are running
		},
	}
	_, base := newTestServer(t, cfg)

	var views [2]JobView
	for i := range views {
		v, resp := postJob(t, base, Request{
			Builtin: "pingpong",
			Options: JobOptions{Trace: true},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		if v.Trace == "" {
			t.Fatalf("traced job %d has no trace path", i)
		}
		views[i] = v
	}

	// Stream both traces concurrently while the jobs run.
	type streamed struct {
		kinds map[string]int
		i     int
	}
	results := make(chan streamed, 2)
	for i, v := range views {
		go func(i int, path string) {
			results <- streamed{kinds: readTrace(t, base, path), i: i}
		}(i, v.Trace)
	}
	for range views {
		r := <-results
		if len(r.kinds) == 0 {
			t.Errorf("job %d: trace stream contained no events", r.i)
		}
		if r.kinds["prop.check"] == 0 {
			t.Errorf("job %d: trace has no prop.check events (kinds: %v)", r.i, r.kinds)
		}
	}
	for i, v := range views {
		if got := waitTerminal(t, base, v.ID, 30*time.Second); got.Status != StatusDone {
			t.Fatalf("traced job %d: %s (%s)", i, got.Status, got.Error)
		}
	}

	m := getMetrics(t, base)
	if m.TracesWritten != 2 {
		t.Errorf("traces_written = %d, want 2", m.TracesWritten)
	}
}

// TestFlightRecordOnTimeout interrupts a long reachability with a short
// deadline and expects the job view to carry the flight recorder's last
// events as well-formed JSONL — without the job having asked for a
// trace. A job that completes normally must carry none.
func TestFlightRecordOnTimeout(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1})

	v, _ := postJob(t, base, Request{
		Builtin: "mdlc2",
		PIF:     "-",
		Options: JobOptions{Image: "clustered", Reach: true, TimeoutMS: 150},
	})
	got := waitTerminal(t, base, v.ID, 20*time.Second)
	if got.Status != StatusTimeout {
		t.Fatalf("status %s (%s), want timeout", got.Status, got.Error)
	}
	if len(got.FlightRecord) == 0 {
		t.Fatal("timed-out job has no flight record")
	}
	if len(got.FlightRecord) > telemetry.RecorderEvents {
		t.Fatalf("flight record has %d lines, ring holds %d",
			len(got.FlightRecord), telemetry.RecorderEvents)
	}
	kinds := map[string]int{}
	lastT := int64(-1)
	for _, line := range got.FlightRecord {
		var ev struct {
			Ev  string `json:"ev"`
			TUs int64  `json:"t_us"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad flight-record line %q: %v", line, err)
		}
		if ev.TUs < lastT {
			t.Fatalf("flight record out of order: t_us %d after %d", ev.TUs, lastT)
		}
		lastT = ev.TUs
		kinds[ev.Ev]++
	}
	// The ring must have caught the reachability in flight: reach.start
	// always lands before the fixpoint begins, and an interrupt that
	// bites mid-image can unwind before any reach.iter completes.
	if kinds["reach.start"] == 0 {
		t.Errorf("flight record has no reach.start event (kinds: %v)", kinds)
	}

	v2, _ := postJob(t, base, Request{Builtin: "pingpong", PIF: "-"})
	if done := waitTerminal(t, base, v2.ID, 30*time.Second); len(done.FlightRecord) != 0 {
		t.Errorf("completed job carries a flight record (%d lines)", len(done.FlightRecord))
	}
}

// promLineRE matches one sample line of text exposition format 0.0.4.
var promLineRE = regexp.MustCompile(
	`^hsis_[a-z_]+(_bucket|_sum|_count)?(\{[a-z]+="[^"]*"(,[a-z]+="[^"]*")*\})? -?[0-9+.eInf-]+$`)

// checkPromText asserts a /metrics?format=prom body parses as
// Prometheus text exposition and returns the set of family names seen.
func checkPromText(t *testing.T, body string) map[string]bool {
	t.Helper()
	fams := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fams[strings.Fields(line)[2]] = true
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	return fams
}

// TestMetricsUnderChurn scrapes both metrics formats continuously while
// jobs from two tenants run, then checks the final exposition carries
// the per-tenant latency histograms. Run under -race, the concurrent
// scrapes double as the registry's race test.
func TestMetricsUnderChurn(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 4, QueueCapacity: 32})

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, url := range []string{base + "/metrics", base + "/metrics?format=prom"} {
		scrapers.Add(1)
		go func(url string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(url)
	}

	var ids []string
	for i := 0; i < 8; i++ {
		tenant := "alpha"
		if i%2 == 1 {
			tenant = "beta"
		}
		v, resp := postJob(t, base, Request{Builtin: "pingpong", PIF: "-", Tenant: tenant})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v := waitTerminal(t, base, id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	close(stop)
	scrapers.Wait()

	resp, err := http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prom content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	fams := checkPromText(t, body)
	for _, want := range []string{
		"hsis_queue_wait_seconds", "hsis_job_duration_seconds",
		"hsis_jobs_completed_total", "hsis_artifact_cache_hits_total",
	} {
		if !fams[want] {
			t.Errorf("exposition is missing family %s", want)
		}
	}
	for _, want := range []string{
		`hsis_queue_wait_seconds_count{tenant="alpha"} 4`,
		`hsis_queue_wait_seconds_count{tenant="beta"} 4`,
		`hsis_job_duration_seconds_count{tenant="alpha"} 4`,
		`hsis_jobs_completed_total 8`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}

	// The JSON surface must agree on the per-tenant breakdown.
	m := getMetrics(t, base)
	for _, tenant := range []string{"alpha", "beta"} {
		tm, ok := m.Tenants[tenant]
		if !ok {
			t.Fatalf("JSON metrics have no tenant %q (have %v)", tenant, m.Tenants)
		}
		if tm.QueueWait.Count != 4 || tm.JobDuration.Count != 4 {
			t.Errorf("tenant %s counts queue=%d dur=%d, want 4/4",
				tenant, tm.QueueWait.Count, tm.JobDuration.Count)
		}
		if tm.JobDuration.P99MS <= 0 {
			t.Errorf("tenant %s job-duration p99 = %v, want > 0", tenant, tm.JobDuration.P99MS)
		}
	}
	if len(m.Latency) == 0 {
		t.Error("JSON metrics carry no engine latency summaries")
	}
}

// TestMetricsNameLint is the metrics-name lint wired into `make check`:
// every exported series name matches hsis_[a-z_]+ and is registered
// exactly once.
func TestMetricsNameLint(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	names := s.Registry().Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	seen := map[string]bool{}
	for _, name := range names {
		if !telemetry.MetricNameRE.MatchString(name) {
			t.Errorf("metric %q does not match %s", name, telemetry.MetricNameRE)
		}
		if seen[name] {
			t.Errorf("metric %q registered twice", name)
		}
		seen[name] = true
	}
	t.Logf("%d series lint clean", len(names))
}

// TestEngineLatencyFolded checks a finished job's kernel histograms
// land in the per-engine families with the engine the job asked for.
func TestEngineLatencyFolded(t *testing.T) {
	s, base := newTestServer(t, Config{Workers: 1})

	v, _ := postJob(t, base, Request{
		Builtin: "pingpong",
		PIF:     "-",
		Options: JobOptions{Image: "clustered", Reach: true},
	})
	if got := waitTerminal(t, base, v.ID, 30*time.Second); got.Status != StatusDone {
		t.Fatalf("job: %s (%s)", got.Status, got.Error)
	}

	found := false
	for _, ls := range s.Registry().HistogramSnapshots() {
		if ls.Name == "hsis_fixpoint_iteration_seconds" && ls.Value == "clustered" && ls.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error(`no fixpoint iterations folded into engine="clustered"`)
	}
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `hsis_fixpoint_iteration_seconds_count{engine="clustered"}`) {
		t.Error("exposition is missing the per-engine fixpoint family")
	}
}
