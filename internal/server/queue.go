package server

import (
	"errors"
	"sync"
)

// ErrQueueFull rejects a submission when the bounded queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("server: job queue is full")

// errQueueClosed tells workers to exit.
var errQueueClosed = errors.New("server: job queue closed")

// tenantQ is one tenant's FIFO plus its stride-scheduling state.
type tenantQ struct {
	name string
	jobs []*Job
	// pass is the tenant's virtual time: it advances by 1/weight per
	// dispatched job, so a weight-2 tenant's pass advances half as fast
	// and it gets twice the dispatch share under contention.
	pass   float64
	weight float64
}

// jobQueue is the bounded admission queue with weighted fair dispatch.
// Jobs enqueue into per-tenant FIFOs; dispatch picks the non-empty
// tenant with the smallest pass (stride scheduling). A tenant going
// from idle to active has its pass clamped up to the current virtual
// time, so saved-up idle credit cannot let it monopolize the workers.
type jobQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int
	size    int
	tenants map[string]*tenantQ
	weights map[string]float64
	// vtime tracks the pass of the last dispatched tenant — the queue's
	// global virtual time, used as the activation clamp.
	vtime  float64
	closed bool
}

func newJobQueue(capacity int, weights map[string]int) *jobQueue {
	q := &jobQueue{
		cap:     capacity,
		tenants: make(map[string]*tenantQ),
		weights: make(map[string]float64),
	}
	q.cond = sync.NewCond(&q.mu)
	for name, w := range weights {
		if w > 0 {
			q.weights[name] = float64(w)
		}
	}
	return q
}

// push admits a job or rejects with ErrQueueFull.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	t := q.tenants[j.Tenant]
	if t == nil {
		w := q.weights[j.Tenant]
		if w == 0 {
			w = 1
		}
		t = &tenantQ{name: j.Tenant, weight: w, pass: q.vtime}
		q.tenants[j.Tenant] = t
	}
	if len(t.jobs) == 0 && t.pass < q.vtime {
		t.pass = q.vtime
	}
	t.jobs = append(t.jobs, j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available (skipping jobs cancelled while
// queued) or the queue closes, in which case it returns errQueueClosed.
func (q *jobQueue) pop() (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for q.size == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.size == 0 && q.closed {
			return nil, errQueueClosed
		}
		// Stride pick: non-empty tenant with the smallest pass; ties
		// break by name for determinism.
		var best *tenantQ
		for _, t := range q.tenants {
			if len(t.jobs) == 0 {
				continue
			}
			if best == nil || t.pass < best.pass ||
				(t.pass == best.pass && t.name < best.name) {
				best = t
			}
		}
		j := best.jobs[0]
		best.jobs = best.jobs[1:]
		q.size--
		q.vtime = best.pass
		best.pass += 1 / best.weight
		// Lazy cancellation: a job cancelled while queued is already
		// terminal — drop it and pick again.
		if j.Status().Terminal() {
			continue
		}
		return j, nil
	}
}

// depth reports how many jobs are waiting.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close wakes all poppers; queued jobs drain as errQueueClosed after
// the backlog empties (Server.Close cancels the backlog first).
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// drain marks every queued job cancelled and empties the queue.
func (q *jobQueue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for _, t := range q.tenants {
		out = append(out, t.jobs...)
		t.jobs = nil
	}
	q.size = 0
	return out
}
