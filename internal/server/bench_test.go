package server

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkServer drives batches of jobs through the full daemon path
// (admission queue, fair dispatch, artifact cache, per-job workspace)
// at several worker-pool sizes, reporting end-to-end throughput plus
// the queue-wait and execution latency percentiles from the server's
// own histograms. `make bench-server` records the rows to
// BENCH_server.json via benchjson.
func BenchmarkServer(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			// Queue capacity scales with the batch so admission never
			// throttles the measurement: the contest is how fast the pool
			// drains jobs, not how big the waiting room is.
			batch := 8 * workers
			s, err := New(Config{
				Workers:       workers,
				QueueCapacity: 4 * batch,
				SpoolDir:      b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			// One warm-up job takes the artifact-cache miss out of the
			// measured window: the contest is job flow, not the frontend.
			warm, err := s.Submit(Request{Builtin: "pingpong", PIF: "-"})
			if err != nil {
				b.Fatal(err)
			}
			<-warm.Done()

			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := make([]*Job, 0, batch)
				for k := 0; k < batch; k++ {
					j, err := s.Submit(Request{Builtin: "pingpong", PIF: "-"})
					if err != nil {
						b.Fatal(err)
					}
					jobs = append(jobs, j)
				}
				for _, j := range jobs {
					<-j.Done()
					if st := j.Status(); st != StatusDone {
						_, msg := j.Result()
						b.Fatalf("job %s: %s (%s)", j.ID, st, msg)
					}
				}
				total += batch
			}
			b.StopTimer()

			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
			tm := s.Metrics().Tenants["default"]
			b.ReportMetric(tm.QueueWait.P50MS, "queue-wait-p50-ms")
			b.ReportMetric(tm.QueueWait.P99MS, "queue-wait-p99-ms")
			b.ReportMetric(tm.Exec.P50MS, "exec-p50-ms")
			b.ReportMetric(tm.Exec.P99MS, "exec-p99-ms")
		})
	}
}
