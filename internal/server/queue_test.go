package server

import (
	"strings"
	"testing"
)

func qjob(tenant string) *Job {
	return &Job{Tenant: tenant, status: StatusQueued, done: make(chan struct{})}
}

// popAll drains n jobs and returns the tenant dispatch sequence.
func popAll(t *testing.T, q *jobQueue, n int) string {
	t.Helper()
	var seq []string
	for i := 0; i < n; i++ {
		j, err := q.pop()
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		seq = append(seq, j.Tenant)
	}
	return strings.Join(seq, "")
}

func TestQueueFairInterleaving(t *testing.T) {
	q := newJobQueue(16, nil)
	// Tenant a bursts first, then tenant b: equal weights must still
	// interleave them 1:1 rather than draining a's backlog first.
	for i := 0; i < 4; i++ {
		if err := q.push(qjob("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := q.push(qjob("b")); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := popAll(t, q, 8), "abababab"; got != want {
		t.Errorf("dispatch order %q, want %q", got, want)
	}
}

func TestQueueWeightedShares(t *testing.T) {
	q := newJobQueue(16, map[string]int{"a": 2})
	for i := 0; i < 6; i++ {
		if err := q.push(qjob("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := q.push(qjob("b")); err != nil {
			t.Fatal(err)
		}
	}
	// Stride with weight a=2, b=1: a is dispatched twice per b.
	if got, want := popAll(t, q, 9), "abaabaaba"; got != want {
		t.Errorf("dispatch order %q, want %q", got, want)
	}
}

func TestQueueActivationClamp(t *testing.T) {
	q := newJobQueue(16, nil)
	// Tenant a runs alone for a while, building up virtual time.
	for i := 0; i < 4; i++ {
		if err := q.push(qjob("a")); err != nil {
			t.Fatal(err)
		}
	}
	popAll(t, q, 4)
	// Tenant b arrives late: its pass must clamp up to the current
	// virtual time, not replay the history it missed — so a and b now
	// alternate instead of b monopolizing the workers.
	for i := 0; i < 3; i++ {
		q.push(qjob("a"))
		q.push(qjob("b"))
	}
	got := popAll(t, q, 6)
	if strings.Count(got[:4], "b") > 2 {
		t.Errorf("late tenant monopolized dispatch: %q", got)
	}
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Errorf("a tenant starved: %q", got)
	}
}

func TestQueueCapacityAndCancelSkip(t *testing.T) {
	q := newJobQueue(2, nil)
	j1, j2 := qjob("a"), qjob("a")
	if err := q.push(j1); err != nil {
		t.Fatal(err)
	}
	if err := q.push(j2); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("a")); err != ErrQueueFull {
		t.Fatalf("over-capacity push: got %v, want ErrQueueFull", err)
	}
	// Cancel j1 while queued: pop must skip it.
	j1.finish(StatusCancelled, nil, "test")
	j, err := q.pop()
	if err != nil || j != j2 {
		t.Fatalf("pop after cancel: got %v (%v), want j2", j, err)
	}
}
