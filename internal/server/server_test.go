package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hsis/internal/core"
	"hsis/internal/designs"
)

// newTestServer builds a server + HTTP frontend with test-friendly
// defaults; the caller gets the engine (for Metrics etc.) and the base
// URL.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

func postJob(t *testing.T, base string, req Request) (JobView, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp
}

func getJob(t *testing.T, base, id string) JobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitTerminal polls until the job reaches a terminal status.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v", id, v.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, base string) Metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEndToEndVerdictParity submits the pingpong benchmark through the
// HTTP API and checks every verdict against a direct in-process run of
// the same design — the daemon must agree with the CLI flow.
func TestEndToEndVerdictParity(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2})

	v, resp := postJob(t, base, Request{Builtin: "pingpong", Options: JobOptions{Reach: true}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := waitTerminal(t, base, v.ID, 30*time.Second)
	if got.Status != StatusDone {
		t.Fatalf("status %s (%s), want done", got.Status, got.Error)
	}

	d, err := designs.Get("pingpong")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := core.LoadVerilogString(d.Verilog, "pingpong.v", d.Top, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.AddPIFString(d.PIF, "props.pif"); err != nil {
		t.Fatal(err)
	}
	want := ws.VerifyAll()
	if len(got.Result.Properties) != len(want) {
		t.Fatalf("daemon verified %d properties, direct run %d",
			len(got.Result.Properties), len(want))
	}
	for i, pr := range want {
		gp := got.Result.Properties[i]
		if gp.Name != pr.Name || gp.Pass != pr.Pass {
			t.Errorf("property %d: daemon %s=%v, direct %s=%v",
				i, gp.Name, gp.Pass, pr.Name, pr.Pass)
		}
	}
	if wantStates := ws.ReachableStatesExact().String(); got.Result.ReachedStates != wantStates {
		t.Errorf("reached states %s, want %s", got.Result.ReachedStates, wantStates)
	}
}

// TestArtifactCacheHit resubmits one design and expects the second job
// to skip the frontend, visibly in both the result and /metrics.
func TestArtifactCacheHit(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1})

	req := Request{Builtin: "pingpong", PIF: "-"}
	v1, _ := postJob(t, base, req)
	r1 := waitTerminal(t, base, v1.ID, 30*time.Second)
	if r1.Status != StatusDone {
		t.Fatalf("first job: %s (%s)", r1.Status, r1.Error)
	}
	if r1.Result.CacheHit {
		t.Error("first submission reported a cache hit")
	}

	v2, _ := postJob(t, base, req)
	r2 := waitTerminal(t, base, v2.ID, 30*time.Second)
	if r2.Status != StatusDone {
		t.Fatalf("second job: %s (%s)", r2.Status, r2.Error)
	}
	if !r2.Result.CacheHit {
		t.Error("resubmission missed the artifact cache")
	}

	m := getMetrics(t, base)
	if m.ArtifactCache.Hits < 1 {
		t.Errorf("metrics cache hits = %d, want >= 1", m.ArtifactCache.Hits)
	}
	if m.ArtifactCache.Misses != 1 {
		t.Errorf("metrics cache misses = %d, want 1", m.ArtifactCache.Misses)
	}
	// Different properties on the same source are a different artifact.
	v3, _ := postJob(t, base, Request{Builtin: "pingpong"})
	r3 := waitTerminal(t, base, v3.ID, 30*time.Second)
	if r3.Status != StatusDone {
		t.Fatalf("third job: %s (%s)", r3.Status, r3.Error)
	}
	if r3.Result.CacheHit {
		t.Error("job with different PIF hit the cache of the bare artifact")
	}
}

// TestAdmissionControl fills the queue behind a deliberately held
// worker and expects 429 + Retry-After for the overflow submission.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{
		Workers:       1,
		QueueCapacity: 2,
		testHookRunning: func(j *Job) {
			once.Do(func() { <-release }) // first dispatched job holds the worker
		},
	}
	_, base := newTestServer(t, cfg)
	defer close(release)

	req := Request{Builtin: "pingpong", PIF: "-"}
	// First job occupies the worker; give the pool a moment to pop it
	// so the queue is empty before the backlog fills.
	v1, resp := postJob(t, base, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d", resp.StatusCode)
	}
	waitStatus(t, base, v1.ID, StatusRunning, 5*time.Second)

	ids := []string{v1.ID}
	for i := 0; i < 2; i++ {
		v, resp := postJob(t, base, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i+2, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	_, resp = postJob(t, base, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	m := getMetrics(t, base)
	if m.JobsRejected != 1 {
		t.Errorf("jobs_rejected = %d, want 1", m.JobsRejected)
	}
	if m.QueueDepth != 2 {
		t.Errorf("queue_depth = %d, want 2", m.QueueDepth)
	}

	// Release the worker: everything admitted must finish.
	release <- struct{}{}
	for _, id := range ids {
		if v := waitTerminal(t, base, id, 30*time.Second); v.Status != StatusDone {
			t.Errorf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
}

func waitStatus(t *testing.T, base, id string, want Status, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		if v.Status == want {
			return
		}
		if v.Status.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, v.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTenantFairness lets two tenants burst against one worker and
// checks both make progress in interleaved order.
func TestTenantFairness(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	first := true
	cfg := Config{
		Workers:       1,
		QueueCapacity: 16,
		testHookRunning: func(j *Job) {
			mu.Lock()
			gate := first
			first = false
			if !gate {
				order = append(order, j.Tenant)
			}
			mu.Unlock()
			if gate {
				<-release // hold the worker while both tenants burst
			}
		},
	}
	s, base := newTestServer(t, cfg)

	req := Request{Builtin: "pingpong", PIF: "-"}
	v0, _ := postJob(t, base, req) // occupies the worker
	waitStatus(t, base, v0.ID, StatusRunning, 5*time.Second)

	var ids []string
	for i := 0; i < 4; i++ {
		r := req
		r.Tenant = "alpha"
		v, resp := postJob(t, base, r)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alpha %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	for i := 0; i < 4; i++ {
		r := req
		r.Tenant = "beta"
		v, resp := postJob(t, base, r)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("beta %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	close(release)
	for _, id := range ids {
		if v := waitTerminal(t, base, id, 30*time.Second); v.Status != StatusDone {
			t.Errorf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	want := "alpha,beta,alpha,beta,alpha,beta,alpha,beta"
	if got != want {
		t.Errorf("dispatch order %s, want %s", got, want)
	}
	_ = s
}

// TestDeadlineInterruptsFixpoint gives mdlc2 a deadline far below its
// reachability time: the job must come back "timeout" without wedging
// its (only) worker, proven by a follow-up job completing.
func TestDeadlineInterruptsFixpoint(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1})

	v, resp := postJob(t, base, Request{
		Builtin: "mdlc2",
		PIF:     "-",
		Options: JobOptions{Image: "clustered", Reach: true, TimeoutMS: 100},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := waitTerminal(t, base, v.ID, 20*time.Second)
	if got.Status != StatusTimeout {
		t.Fatalf("status %s (%s), want timeout", got.Status, got.Error)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("timeout error %q does not mention the deadline", got.Error)
	}

	// The worker that was interrupted must still serve jobs.
	v2, _ := postJob(t, base, Request{Builtin: "pingpong", PIF: "-"})
	if r := waitTerminal(t, base, v2.ID, 30*time.Second); r.Status != StatusDone {
		t.Fatalf("follow-up job: %s (%s)", r.Status, r.Error)
	}

	m := getMetrics(t, base)
	if m.JobsTimedOut != 1 {
		t.Errorf("jobs_timed_out = %d, want 1", m.JobsTimedOut)
	}
}

// TestCancelRunningJob interrupts a long reachability via DELETE.
func TestCancelRunningJob(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1})

	v, _ := postJob(t, base, Request{
		Builtin: "mdlc2",
		PIF:     "-",
		Options: JobOptions{Image: "clustered", Reach: true},
	})
	waitStatus(t, base, v.ID, StatusRunning, 5*time.Second)
	time.Sleep(50 * time.Millisecond) // let it get into the fixpoint

	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	got := waitTerminal(t, base, v.ID, 20*time.Second)
	if got.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", got.Status)
	}
}

// TestCancelQueuedJob cancels a job stuck behind a held worker.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{
		Workers:         1,
		QueueCapacity:   4,
		testHookRunning: func(*Job) { once.Do(func() { <-release }) },
	}
	_, base := newTestServer(t, cfg)
	defer close(release)

	req := Request{Builtin: "pingpong", PIF: "-"}
	v1, _ := postJob(t, base, req)
	waitStatus(t, base, v1.ID, StatusRunning, 5*time.Second)
	v2, _ := postJob(t, base, req)

	hreq, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+v2.ID, nil)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getJob(t, base, v2.ID); got.Status != StatusCancelled {
		t.Fatalf("queued job after cancel: %s, want cancelled", got.Status)
	}
	release <- struct{}{}
	if r := waitTerminal(t, base, v1.ID, 30*time.Second); r.Status != StatusDone {
		t.Fatalf("held job: %s (%s)", r.Status, r.Error)
	}
}

// TestTraceEndpoint runs a traced job and checks the streamed spool is
// valid JSONL with kernel events in it.
func TestTraceEndpoint(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2})

	v, _ := postJob(t, base, Request{
		Builtin: "pingpong",
		Options: JobOptions{Trace: true},
	})
	if v.Trace == "" {
		t.Fatal("traced job view has no trace path")
	}
	resp, err := http.Get(base + v.Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	events := 0
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds[ev.Ev]++
		events++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("trace stream contained no events")
	}
	if kinds["prop.check"] == 0 {
		t.Errorf("trace has no prop.check events (kinds: %v)", kinds)
	}
	if got := waitTerminal(t, base, v.ID, 30*time.Second); got.Status != StatusDone {
		t.Fatalf("traced job: %s (%s)", got.Status, got.Error)
	}
}

// TestConcurrentSharedArtifact hammers one design from many concurrent
// jobs: all must succeed with identical verdicts (the artifact is
// shared; the workspaces are not).
func TestConcurrentSharedArtifact(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 4, QueueCapacity: 32})

	const n = 8
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v, resp := postJob(t, base, Request{Builtin: "pingpong"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids[i] = v.ID
	}
	verdictKey := func(props []PropertyVerdict) string {
		var sb strings.Builder
		for _, p := range props {
			fmt.Fprintf(&sb, "%s/%s=%v;", p.Name, p.Kind, p.Pass)
		}
		return sb.String()
	}
	first := ""
	for i, id := range ids {
		v := waitTerminal(t, base, id, 60*time.Second)
		if v.Status != StatusDone {
			t.Fatalf("job %d: %s (%s)", i, v.Status, v.Error)
		}
		if first == "" {
			first = verdictKey(v.Result.Properties)
			continue
		}
		if got := verdictKey(v.Result.Properties); got != first {
			t.Errorf("job %d verdicts diverge: %v vs %v", i, got, first)
		}
	}
	m := getMetrics(t, base)
	if m.ArtifactCache.Misses != 1 {
		t.Errorf("artifact compiled %d times for %d identical jobs", m.ArtifactCache.Misses, n)
	}
}

// TestInvalidRequests covers the 400 paths.
func TestInvalidRequests(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1})
	for _, req := range []Request{
		{},                                  // no source
		{Builtin: "pingpong", Verilog: "x"}, // two sources
		{Verilog: "module m; endmodule"},    // verilog without top
		{Builtin: "does-not-exist"},         // unknown builtin
	} {
		_, resp := postJob(t, base, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: %d, want 400", req, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}
