// Package server implements hsisd, the verification-as-a-service
// daemon: an HTTP JSON job API in front of the HSIS verification flow.
//
// The concurrency architecture rests on three boundaries:
//
//   - Per-job isolation. Every job is verified in its own
//     core.Workspace, which owns a private bdd.Manager and mdd.Space.
//     Jobs never share BDD state, so a job that is cancelled mid-fixpoint
//     (cooperative interruption, see bdd.ErrInterrupted) simply abandons
//     its manager — any refcounts left dangling by the unwind die with
//     it, and no other job can observe the wreckage.
//
//   - Shared frontend artifacts. Parsing and flattening a design is
//     deterministic and produces a read-only core.CompiledDesign (the
//     flat model is sealed). Artifacts live in a content-addressed LRU
//     cache keyed by a hash of the sources, so resubmitting the same
//     design skips the frontend entirely; concurrent jobs instantiate
//     private workspaces from one shared artifact.
//
//   - Weighted fair admission. A bounded queue rejects work beyond
//     capacity (HTTP 429 + Retry-After) and dispatches queued jobs to
//     the worker pool by stride scheduling across tenants, so one
//     bursting tenant cannot starve another.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hsis/internal/core"
	"hsis/internal/telemetry"
)

// JobOptions tunes one verification job. The zero value is a sane
// default: sequential kernel, auto image engine, no reordering, the
// server's default deadline.
type JobOptions struct {
	// Workers is the per-job BDD kernel worker count (0/1 sequential).
	Workers int `json:"workers,omitempty"`
	// Image selects the image-computation engine ("", "auto",
	// "monolithic", "partitioned", "clustered", "iso").
	Image string `json:"image,omitempty"`
	// Reorder selects the dynamic-reordering policy ("", "off",
	// "manual", "auto").
	Reorder string `json:"reorder,omitempty"`
	// ConeOfInfluence enables per-property cone-of-influence reduction.
	ConeOfInfluence bool `json:"coi,omitempty"`
	// TimeoutMS caps the job's execution time in milliseconds; 0 uses
	// the server default, and the server's MaxTimeout clamps it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Reach additionally computes the exact reachable-state count.
	Reach bool `json:"reach,omitempty"`
	// Trace records the job's kernel telemetry to a per-job JSONL spool
	// file, streamed by GET /jobs/{id}/trace. Telemetry is scoped to the
	// job's own manager, so traced jobs run — and stream — concurrently
	// with each other and with untraced work.
	Trace bool `json:"trace,omitempty"`
}

// Request is one verification job submission. Exactly one design source
// must be given: Builtin (a named design from the embedded benchmark
// suite, scaled names like "philos-16" included), Verilog (requires
// Top), or BlifMV.
type Request struct {
	// Tenant attributes the job for fair scheduling; empty means the
	// "default" tenant.
	Tenant string `json:"tenant,omitempty"`

	Builtin string `json:"builtin,omitempty"`
	Verilog string `json:"verilog,omitempty"`
	Top     string `json:"top,omitempty"`
	BlifMV  string `json:"blifmv,omitempty"`
	// PIF holds the properties to verify (may be empty, e.g. for
	// reach-only jobs). For Builtin designs an empty PIF means the
	// design's bundled properties; pass PIF "-" to drop them.
	PIF string `json:"pif,omitempty"`

	Options JobOptions `json:"options"`
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Queued and Running are transient; the rest are
// terminal.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"      // verification completed (verdicts inside)
	StatusFailed    Status = "failed"    // compile or internal error
	StatusTimeout   Status = "timeout"   // deadline interrupted the run
	StatusCancelled Status = "cancelled" // DELETE /jobs/{id} interrupted the run
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusTimeout, StatusCancelled:
		return true
	}
	return false
}

// PropertyVerdict is one verified property in a job result.
type PropertyVerdict struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "ctl" or "lc"
	Pass      bool   `json:"pass"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Error     string `json:"error,omitempty"`
}

// Result is a finished job's payload.
type Result struct {
	Design     string            `json:"design"`
	Properties []PropertyVerdict `json:"properties"`
	// ReachedStates is the exact reachable-state count in decimal
	// (present when Options.Reach was set).
	ReachedStates string `json:"reached_states,omitempty"`
	// CacheHit reports whether the design artifact came from the
	// content-addressed cache rather than a fresh frontend run.
	CacheHit  bool  `json:"cache_hit"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// PeakLiveNodes is the job manager's peak live BDD node count.
	PeakLiveNodes int `json:"peak_live_nodes"`
}

// Job is one submitted verification request and its lifecycle.
type Job struct {
	ID     string
	Tenant string

	req Request
	key string // artifact cache key

	mu       sync.Mutex
	status   Status
	result   *Result
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	// done closes when the job reaches a terminal status.
	done chan struct{}

	// cancelRequested is set by Cancel; deadlineHit by the deadline
	// timer. Whichever flag is set when the interrupted run unwinds
	// decides between StatusCancelled and StatusTimeout (deadline wins
	// ties — the timer only fires after a real deadline).
	cancelRequested atomic.Bool
	deadlineHit     atomic.Bool
	// ws is the job's workspace once instantiated; Cancel and the
	// deadline timer interrupt through it.
	ws atomic.Pointer[core.Workspace]

	tracePath string // JSONL spool file, when Options.Trace is set

	// scope is the job's telemetry (tracer when traced, flight recorder
	// and metric set always). Written and read only on the job's worker
	// goroutine, between setRunning and finish.
	scope *telemetry.Scope

	// flight holds the flight-recorder dump (canonical JSONL lines) of a
	// job that ended failed/timeout/cancelled; nil otherwise. Guarded by
	// mu, like the rest of the terminal state.
	flight []string
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the job's result and error message (result is nil
// until the job is done; errMsg is empty unless it failed or was
// interrupted).
func (j *Job) Result() (*Result, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.errMsg
}

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// interrupt requests cooperative cancellation of the job's running
// verification, if a workspace exists yet. The execute path re-checks
// the request flags right after publishing the workspace, so a request
// that lands before instantiation is not lost.
func (j *Job) interrupt() {
	if ws := j.ws.Load(); ws != nil {
		ws.Interrupt()
	}
}

// setRunning transitions queued → running. Returns false if the job was
// cancelled while queued.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// setFlightRecord stashes the flight-recorder dump for the job view.
func (j *Job) setFlightRecord(lines []string) {
	j.mu.Lock()
	j.flight = lines
	j.mu.Unlock()
}

// finish transitions to a terminal status (idempotent: the first
// terminal transition wins).
func (j *Job) finish(st Status, res *Result, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = st
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	close(j.done)
}

// validate checks a request for structural problems before admission.
func (r *Request) validate() error {
	sources := 0
	if r.Builtin != "" {
		sources++
	}
	if r.Verilog != "" {
		sources++
	}
	if r.BlifMV != "" {
		sources++
	}
	if sources != 1 {
		return errors.New("exactly one of builtin, verilog, blifmv must be given")
	}
	if r.Verilog != "" && r.Top == "" {
		return errors.New("verilog source requires top")
	}
	if r.Options.Workers < 0 {
		return fmt.Errorf("negative workers %d", r.Options.Workers)
	}
	if r.Options.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", r.Options.TimeoutMS)
	}
	return nil
}
