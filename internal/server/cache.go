package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"hsis/internal/core"
)

// artifactKey derives the content address of a design artifact: a
// SHA-256 over everything that determines the frontend's output — the
// source kind, the source text, the top module, and the property text.
// Backend options (workers, engine, reordering) deliberately do NOT
// enter the key: they shape the per-job workspace, not the shared
// artifact. Length-prefixed fields keep the encoding injective.
func artifactKey(kind, src, top, pif string) string {
	h := sha256.New()
	field := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	field("hsisd-artifact-v1")
	field(kind)
	field(src)
	field(top)
	field(pif)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheCall is one in-flight compilation, shared by every job that asks
// for the same key while it runs (singleflight).
type cacheCall struct {
	done chan struct{}
	d    *core.CompiledDesign
	err  error
}

// artifactCache is the content-addressed LRU of compiled design
// artifacts. Entries are read-only once published (CompiledDesign is
// sealed), so a cache hit hands the same pointer to any number of
// concurrent jobs. Compile errors are never cached: a failed key is
// re-attempted on the next submission.
type artifactCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*cacheCall

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	d   *core.CompiledDesign
}

func newArtifactCache(capacity int) *artifactCache {
	if capacity < 1 {
		capacity = 1
	}
	return &artifactCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*cacheCall),
	}
}

// getOrCompile returns the artifact for key, compiling it at most once
// per concurrent wave of requests. hit reports whether the frontend was
// skipped (a cached entry or a ride on another job's in-flight
// compile).
func (c *artifactCache) getOrCompile(key string, compile func() (*core.CompiledDesign, error)) (d *core.CompiledDesign, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).d, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-call.done
		return call.d, true, call.err
	}
	call := &cacheCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	call.d, call.err = compile()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.insert(key, call.d)
	}
	c.mu.Unlock()
	return call.d, false, call.err
}

// insert publishes a freshly compiled artifact, evicting from the LRU
// tail past capacity. Caller holds c.mu.
func (c *artifactCache) insert(key string, d *core.CompiledDesign) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).d = d
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, d: d})
	for c.order.Len() > c.capacity {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the cache counters.
func (c *artifactCache) stats() (entries int, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses, c.evictions
}
