package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"time"
)

// JobView is the JSON rendering of a job for GET /jobs/{id} and the
// POST /jobs acknowledgement.
type JobView struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant,omitempty"`
	Status   Status  `json:"status"`
	Design   string  `json:"design,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
	Created  string  `json:"created"`
	Started  string  `json:"started,omitempty"`
	Finished string  `json:"finished,omitempty"`
	Trace    string  `json:"trace,omitempty"` // trace endpoint path, when traced
	// FlightRecord holds the job's last telemetry events (canonical
	// JSONL lines, oldest first) when it ended failed/timeout/cancelled.
	FlightRecord []string `json:"flight_record,omitempty"`
}

func (s *Server) view(j *Job) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Tenant:  j.Tenant,
		Status:  j.status,
		Design:  j.req.Builtin,
		Error:   j.errMsg,
		Result:  j.result,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.tracePath != "" {
		v.Trace = "/jobs/" + j.ID + "/trace"
	}
	v.FlightRecord = j.flight
	return v
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs            submit a job (202, or 429 + Retry-After)
//	GET    /jobs/{id}       job status and result
//	DELETE /jobs/{id}       cancel a queued or running job
//	GET    /jobs/{id}/trace stream the job's telemetry JSONL
//	GET    /metrics         JSON metrics snapshot (?format=prom for
//	                        Prometheus text exposition)
//	GET    /healthz         liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, s.view(j))
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue is full")
	case errors.Is(err, errQueueClosed):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleTrace streams the job's JSONL telemetry spool, following the
// file (tail -f style) until the job reaches a terminal status and the
// spool is fully drained.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.tracePath == "" {
		writeError(w, http.StatusNotFound, "job was not submitted with options.trace")
		return
	}
	// The spool file appears when the job starts executing; wait for it
	// (or for the job to die first, e.g. cancelled while queued).
	var f *os.File
	for {
		var err error
		f, err = os.Open(j.tracePath)
		if err == nil {
			break
		}
		if j.Status().Terminal() {
			writeError(w, http.StatusNotFound, "no trace was recorded")
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			if j.Status().Terminal() {
				// One final read after the terminal transition picks up
				// the tracer's closing flush.
				if n2, _ := f.Read(buf); n2 > 0 {
					w.Write(buf[:n2])
					continue
				}
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-j.Done():
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		if err != nil {
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}
