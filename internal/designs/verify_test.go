package designs

import (
	"testing"

	"hsis/internal/core"
)

// TestVerifyAllDesigns runs the complete verification flow — every LC
// and CTL property of every Table-1 design — and checks the expected
// verdicts and property counts.
func TestVerifyAllDesigns(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range all {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			w, err := core.LoadVerilogString(d.Verilog, d.Name+".v", d.Top, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.AddPIFString(d.PIF, d.Name+".pif"); err != nil {
				t.Fatal(err)
			}
			want := wantCounts[d.Name]
			if len(w.Automata) != want.lc || len(w.CTLProps) != want.ctl {
				t.Fatalf("%s: %d LC + %d CTL props, Table 1 wants %d + %d",
					d.Name, len(w.Automata), len(w.CTLProps), want.lc, want.ctl)
			}
			for _, r := range w.VerifyAll() {
				if r.Err != nil {
					t.Errorf("%s/%s: %v", d.Name, r.Name, r.Err)
					continue
				}
				wantFail := expectedFail[d.Name][r.Name]
				if r.Pass == wantFail {
					t.Errorf("%s/%s (%s): pass=%v, want pass=%v",
						d.Name, r.Name, r.Kind, r.Pass, !wantFail)
				}
				if !r.Pass && r.Kind == core.KindLC && r.Trace == nil {
					t.Errorf("%s/%s: failing LC property without error trace", d.Name, r.Name)
				}
				t.Logf("%s/%s (%s): pass=%v in %v", d.Name, r.Name, r.Kind, r.Pass, r.Time)
			}
		})
	}
}
