package designs

import (
	"strings"
	"testing"

	"hsis/internal/blifmv"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/verilog"
)

// expected verification outcomes per design; properties not listed are
// expected to pass.
var expectedFail = map[string]map[string]bool{
	"philos": {"eat_live": true, "progress": true}, // symmetric protocol deadlocks
}

// expected Table-1 property counts.
var wantCounts = map[string]struct{ lc, ctl int }{
	"philos":    {2, 2},
	"pingpong":  {6, 6},
	"gigamax":   {1, 9},
	"scheduler": {2, 1},
	"dcnew":     {1, 7},
	"mdlc2":     {1, 1},
}

func TestGetUnknownDesign(t *testing.T) {
	_, err := Get("no-such-design")
	if err == nil {
		t.Fatal("expected an error for an unknown design")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-design"`) {
		t.Errorf("error does not name the bad design: %q", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list valid design %q: %q", name, msg)
		}
	}
	if !strings.Contains(msg, "-N") && !strings.Contains(msg, "-16") {
		t.Errorf("error does not mention the scaled-name form: %q", msg)
	}
}

func TestAllDesignsCompile(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("expected 6 designs, got %d", len(all))
	}
	for _, d := range all {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			design, err := verilog.CompileString(d.Verilog, d.Name+".v", d.Top)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			flat, err := blifmv.Flatten(design)
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			n, err := network.Build(flat, network.Options{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res := reach.Forward(n, reach.Options{})
			if !res.Converged {
				t.Fatal("reachability did not converge")
			}
			states := n.NumStates(res.Reached)
			if states < 2 {
				t.Fatalf("suspicious reachable state count %v", states)
			}
			t.Logf("%s: %v reachable states in %d steps, %d latches",
				d.Name, states, res.Steps, len(n.Latches()))
		})
	}
}
