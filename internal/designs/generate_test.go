package designs

import (
	"fmt"
	"testing"

	"hsis/internal/blifmv"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/verilog"
)

func reachableStates(t *testing.T, d *Design) (float64, int) {
	t.Helper()
	dsg, err := verilog.CompileString(d.Verilog, d.Name+".v", d.Top)
	if err != nil {
		t.Fatalf("%s: compile: %v", d.Name, err)
	}
	flat, err := blifmv.Flatten(dsg)
	if err != nil {
		t.Fatalf("%s: flatten: %v", d.Name, err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatalf("%s: build: %v", d.Name, err)
	}
	res := reach.Forward(n, reach.Options{})
	if !res.Converged {
		t.Fatalf("%s: reachability diverged", d.Name)
	}
	return n.NumStates(res.Reached), len(n.Latches())
}

// TestGeneratedMatchesBundled pins the generator to the hand-written
// originals: scheduler-16 is the bundled scheduler, and philos-2 is the
// bundled philos up to the renaming of fork-owner values (P0/P1 →
// LEFT/RIGHT), so the reachable state counts must agree exactly.
func TestGeneratedMatchesBundled(t *testing.T) {
	for _, tc := range []struct{ scaled, bundled string }{
		{"scheduler-16", "scheduler"},
		{"philos-2", "philos"},
	} {
		gen, err := Get(tc.scaled)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Get(tc.bundled)
		if err != nil {
			t.Fatal(err)
		}
		got, gl := reachableStates(t, gen)
		want, wl := reachableStates(t, ref)
		if gl != wl {
			t.Errorf("%s: %d latches, bundled %s has %d", tc.scaled, gl, tc.bundled, wl)
		}
		if got != want {
			t.Errorf("%s: %v reachable states, bundled %s has %v", tc.scaled, got, tc.bundled, want)
		}
	}
}

// TestGeneratedScaling compiles a spread of scaled instances and sanity
// checks structure: a philos-N ring has 2N latches (N philosophers, N
// forks) and a scheduler-N ring has 2N (token + busy per cell), and the
// reachable space grows with N.
func TestGeneratedScaling(t *testing.T) {
	prevPhil := 0.0
	for _, n := range []int{3, 5, 8} {
		d, err := Get(fmt.Sprintf("philos-%d", n))
		if err != nil {
			t.Fatal(err)
		}
		states, latches := reachableStates(t, d)
		if latches != 2*n {
			t.Errorf("philos-%d: %d latches, want %d", n, latches, 2*n)
		}
		if states <= prevPhil {
			t.Errorf("philos-%d: %v reachable states, not above philos-%v", n, states, prevPhil)
		}
		prevPhil = states
	}
	d, err := Get("scheduler-6")
	if err != nil {
		t.Fatal(err)
	}
	states, latches := reachableStates(t, d)
	if latches != 12 {
		t.Errorf("scheduler-6: %d latches, want 12", latches)
	}
	if states < 64 {
		t.Errorf("scheduler-6: %v reachable states, suspiciously few", states)
	}
}

// TestGeneratedNames covers the name-resolution edge cases.
func TestGeneratedNames(t *testing.T) {
	if _, err := Get("philos-1"); err == nil {
		t.Error("philos-1 resolved; scaled instances need N >= 2")
	}
	if _, err := Get("gigamax-4"); err == nil {
		t.Error("gigamax-4 resolved; only philos and scheduler scale")
	}
	if _, err := Get("philos-x"); err == nil {
		t.Error("philos-x resolved")
	}
	d, err := Get("philos-16")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "philos-16" || d.Top != "philos" {
		t.Errorf("philos-16 metadata: name %q top %q", d.Name, d.Top)
	}
	if d.PIF == "" {
		t.Error("generated design has no properties")
	}
}

