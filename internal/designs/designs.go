// Package designs embeds the re-modeled benchmark suite of the paper's
// Table 1: dining philosophers, ping pong, the Gigamax cache consistency
// protocol, Milner's distributed scheduler, a data-link controller
// (dcnew) and a message data-link controller (2mdlc). Each design ships
// as Verilog (in the supported subset) plus a PIF property file.
//
// The original HSIS sources were never distributed; these models are
// reconstructed from the published descriptions (see DESIGN.md for the
// substitution notes), so absolute state counts differ from the paper
// while the qualitative behavior is preserved.
package designs

import (
	"embed"
	"fmt"
	"strings"
)

//go:embed data
var fs embed.FS

// Design is one benchmark: Verilog source, top module, properties.
type Design struct {
	Name    string
	Top     string
	Verilog string
	PIF     string
}

var catalog = []struct{ name, top string }{
	{"philos", "philos"},
	{"pingpong", "pingpong"},
	{"gigamax", "gigamax"},
	{"scheduler", "scheduler"},
	{"dcnew", "dcnew"},
	{"mdlc2", "mdlc2"},
}

// Names lists the designs in Table-1 order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, c := range catalog {
		out[i] = c.name
	}
	return out
}

// Get loads one design by name. Names with a "-N" suffix ("philos-64",
// "scheduler-8") are synthesized by the parameterized generator instead
// of loaded from the embedded data.
func Get(name string) (*Design, error) {
	if _, _, ok := parseScaled(name); ok {
		return Generate(name)
	}
	for _, c := range catalog {
		if c.name != name {
			continue
		}
		v, err := fs.ReadFile(fmt.Sprintf("data/%s/%s.v", c.name, c.name))
		if err != nil {
			return nil, err
		}
		p, err := fs.ReadFile(fmt.Sprintf("data/%s/props.pif", c.name))
		if err != nil {
			return nil, err
		}
		return &Design{Name: c.name, Top: c.top, Verilog: string(v), PIF: string(p)}, nil
	}
	return nil, fmt.Errorf("designs: unknown design %q (valid names: %s; scalable designs also accept a -N suffix, e.g. %q)",
		name, strings.Join(Names(), ", "), ScalableNames()[0]+"-16")
}

// All loads every design.
func All() ([]*Design, error) {
	out := make([]*Design, 0, len(catalog))
	for _, c := range catalog {
		d, err := Get(c.name)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
