// Milner's distributed scheduler (paper ref [22]): a ring of sixteen
// cycler cells schedules sixteen tasks in cyclic order. A cell holding
// the token starts its task as soon as the previous run of the task has
// finished, then passes the token to the next cell. Task durations are
// nondeterministic. With 16 cells the reachable space is about
// 16 * 2^16 ≈ 1M states — the largest design in the suite, as in the
// paper's Table 1.
module cell(clk, start_prev, done, start, busy);
  input clk;
  input start_prev;   // predecessor started: the token arrives
  input done;         // nondeterministic task completion
  output start, busy;
  reg tok, busy;
  wire start;
  assign start = tok && !busy;
  initial tok = 0;
  always @(posedge clk)
    if (start_prev) tok <= 1;
    else if (start) tok <= 0;
  initial busy = 0;
  always @(posedge clk)
    if (start) busy <= 1;
    else if (done) busy <= 0;
endmodule

// cell0 boots with the token.
module cell0(clk, start_prev, done, start, busy);
  input clk;
  input start_prev;
  input done;
  output start, busy;
  reg tok, busy;
  wire start;
  assign start = tok && !busy;
  initial tok = 1;
  always @(posedge clk)
    if (start_prev) tok <= 1;
    else if (start) tok <= 0;
  initial busy = 0;
  always @(posedge clk)
    if (start) busy <= 1;
    else if (done) busy <= 0;
endmodule

module scheduler(clk,
    s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15,
    b0, b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14, b15);
  input clk;
  output s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15;
  output b0, b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14, b15;
  wire s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15;
  wire b0, b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14, b15;
  wire d0, d1, d2, d3, d4, d5, d6, d7, d8, d9, d10, d11, d12, d13, d14, d15;
  assign d0 = $ND(0, 1);
  assign d1 = $ND(0, 1);
  assign d2 = $ND(0, 1);
  assign d3 = $ND(0, 1);
  assign d4 = $ND(0, 1);
  assign d5 = $ND(0, 1);
  assign d6 = $ND(0, 1);
  assign d7 = $ND(0, 1);
  assign d8 = $ND(0, 1);
  assign d9 = $ND(0, 1);
  assign d10 = $ND(0, 1);
  assign d11 = $ND(0, 1);
  assign d12 = $ND(0, 1);
  assign d13 = $ND(0, 1);
  assign d14 = $ND(0, 1);
  assign d15 = $ND(0, 1);

  cell0 c0(clk, s15, d0, s0, b0);
  cell  c1(clk, s0, d1, s1, b1);
  cell  c2(clk, s1, d2, s2, b2);
  cell  c3(clk, s2, d3, s3, b3);
  cell  c4(clk, s3, d4, s4, b4);
  cell  c5(clk, s4, d5, s5, b5);
  cell  c6(clk, s5, d6, s6, b6);
  cell  c7(clk, s6, d7, s7, b7);
  cell  c8(clk, s7, d8, s8, b8);
  cell  c9(clk, s8, d9, s9, b9);
  cell  c10(clk, s9, d10, s10, b10);
  cell  c11(clk, s10, d11, s11, b11);
  cell  c12(clk, s11, d12, s12, b12);
  cell  c13(clk, s12, d13, s13, b13);
  cell  c14(clk, s13, d14, s14, b14);
  cell  c15(clk, s14, d15, s15, b15);
endmodule
