// 2mdlc: a two-channel message data-link controller. Each channel
// fragments a variable-length message onto a shared bus, waits for an
// acknowledgment, retries up to three times on NAK, and aborts after
// the retry budget is exhausted. The receiver mirror tracks fragment
// reception with a CRC check. Bus arbitration between the channels is
// a nondeterministic coin; message arrival, message length, ACK/NAK and
// CRC outcomes are nondeterministic.
typedef enum { TIDLE, TLOAD, TSEND, TWACK, TRETRY, TDONE, TABORT } tx_t;
typedef enum { RIDLE, RRECV, RDONE } rx_t;

module mchan(clk, msg, grant, ackok, crcok, nlen, t, r, frag, retry, fin, gp);
  input clk;
  input msg;          // a new message arrives
  input grant;        // the bus is granted to this channel this cycle
  input ackok;        // the pending acknowledgment is positive
  input crcok;        // the fragment's checksum is good at the receiver
  input [1:0] nlen;   // nondeterministic message length
  output t, r, frag, retry, fin, gp;
  tx_t reg t;
  rx_t reg r;
  reg [1:0] frag, retry, len;
  reg fin, gp;
  wire lastfrag;
  assign lastfrag = frag == len;

  initial t = TIDLE;
  always @(posedge clk)
    case (t)
      TIDLE:  if (msg) t <= TLOAD;
      TLOAD:  t <= TSEND;
      TSEND:  if (grant && lastfrag) t <= TWACK;
      TWACK:  if (ackok) t <= TDONE;
              else if (retry == 3) t <= TABORT;
              else t <= TRETRY;
      TRETRY: t <= TSEND;
      TDONE:  t <= TIDLE;
      TABORT: t <= TIDLE;
    endcase

  initial len = 0;
  always @(posedge clk)
    if ((t == TIDLE) && msg) len <= nlen;

  initial frag = 0;
  always @(posedge clk)
    if (t == TLOAD) frag <= 0;
    else if (t == TRETRY) frag <= 0;
    else if ((t == TSEND) && grant && !lastfrag) frag <= frag + 1;

  initial retry = 0;
  always @(posedge clk)
    if (t == TIDLE) retry <= 0;
    else if ((t == TWACK) && !ackok && (retry != 3)) retry <= retry + 1;

  // receiver mirror
  initial r = RIDLE;
  always @(posedge clk)
    case (r)
      RIDLE: if ((t == TSEND) && grant) r <= RRECV;
      RRECV: if ((t == TSEND) && grant && lastfrag && crcok) r <= RDONE;
             else if ((t == TWACK) && !ackok) r <= RIDLE;
      RDONE: r <= RIDLE;
    endcase

  // fin pulses when a message terminates (delivered or aborted)
  initial fin = 0;
  always @(posedge clk)
    fin <= ((t == TWACK) && ackok) || ((t == TWACK) && !ackok && (retry == 3));

  // gp pulses when this channel actually used the bus
  initial gp = 0;
  always @(posedge clk)
    gp <= (t == TSEND) && grant;
endmodule

module mdlc2(clk, t0, t1, r0, r1, fin0, fin1, gp0, gp1);
  input clk;
  output t0, t1, r0, r1, fin0, fin1, gp0, gp1;
  tx_t wire t0, t1;
  rx_t wire r0, r1;
  wire fin0, fin1, gp0, gp1;
  wire [1:0] frag0, frag1, retry0, retry1;

  // environment coins
  wire msg0, msg1, ack0, ack1, crc0, crc1, pick;
  wire [1:0] nlen0, nlen1;
  assign msg0 = $ND(0, 1);
  assign msg1 = $ND(0, 1);
  assign ack0 = $ND(0, 1);
  assign ack1 = $ND(0, 1);
  assign crc0 = $ND(0, 1);
  assign crc1 = $ND(0, 1);
  assign pick = $ND(0, 1);
  assign nlen0 = $ND(0, 1, 2, 3);
  assign nlen1 = $ND(0, 1, 2, 3);

  // bus arbitration
  wire want0, want1, grant0, grant1;
  assign want0 = t0 == TSEND;
  assign want1 = t1 == TSEND;
  assign grant0 = want0 && (!want1 || pick);
  assign grant1 = want1 && (!want0 || !pick);

  mchan ch0(clk, msg0, grant0, ack0, crc0, nlen0, t0, r0, frag0, retry0, fin0, gp0);
  mchan ch1(clk, msg1, grant1, ack1, crc1, nlen1, t1, r1, frag1, retry1, fin1, gp1);
endmodule
