// Dining philosophers (2 philosophers, 2 forks) with nondeterministic
// hunger, eating duration, and symmetric fork arbitration. The symmetric
// protocol can deadlock (both philosophers holding their left fork),
// which the liveness properties expose — the verification tool's error
// trace exhibits the classic deadlock scenario.
typedef enum { THINK, HUNGRY, HASL, EAT } phil_t;
typedef enum { NONE, P0, P1 } owner_t;

module phil(clk, grabL, grabR, hungry, leave, st);
  input clk;
  input grabL;      // granted the left fork this cycle
  input grabR;      // granted the right fork this cycle
  input hungry;     // nondeterministic appetite
  input leave;      // nondeterministic end of meal
  output st;
  phil_t reg st;
  initial st = THINK;
  always @(posedge clk)
    case (st)
      THINK:  if (hungry) st <= HUNGRY;
      HUNGRY: if (grabL) st <= HASL;
      HASL:   if (grabR) st <= EAT;
      EAT:    if (leave) st <= THINK;
    endcase
endmodule

module philos(clk, p0, p1, f0, f1);
  input clk;
  output p0, p1, f0, f1;
  phil_t wire p0, p1;
  owner_t reg f0, f1;

  // nondeterministic environment choices
  wire hungry0, hungry1, done0, done1, coin0, coin1;
  assign hungry0 = $ND(0, 1);
  assign hungry1 = $ND(0, 1);
  assign done0 = $ND(0, 1);
  assign done1 = $ND(0, 1);
  assign coin0 = $ND(0, 1);   // tie-break for fork 0
  assign coin1 = $ND(0, 1);   // tie-break for fork 1

  // who wants which fork this cycle
  wire w0f0, w1f0, w0f1, w1f1;
  assign w0f0 = (p0 == HUNGRY) && (f0 == NONE);   // p0's left fork
  assign w1f0 = (p1 == HASL) && (f0 == NONE);     // p1's right fork
  assign w1f1 = (p1 == HUNGRY) && (f1 == NONE);   // p1's left fork
  assign w0f1 = (p0 == HASL) && (f1 == NONE);     // p0's right fork

  // grants with nondeterministic tie-break
  wire g0f0, g1f0, g0f1, g1f1;
  assign g0f0 = w0f0 && (!w1f0 || coin0);
  assign g1f0 = w1f0 && (!w0f0 || !coin0);
  assign g1f1 = w1f1 && (!w0f1 || coin1);
  assign g0f1 = w0f1 && (!w1f1 || !coin1);

  // meals end when the eater's leave coin fires
  wire leave0, leave1;
  assign leave0 = (p0 == EAT) && done0;
  assign leave1 = (p1 == EAT) && done1;

  phil ph0(clk, g0f0, g0f1, hungry0, done0, p0);
  phil ph1(clk, g1f1, g1f0, hungry1, done1, p1);

  initial f0 = NONE;
  initial f1 = NONE;
  always @(posedge clk)
    case (f0)
      NONE: if (g0f0) f0 <= P0; else if (g1f0) f0 <= P1;
      P0:   if (leave0) f0 <= NONE;
      P1:   if (leave1) f0 <= NONE;
    endcase
  always @(posedge clk)
    case (f1)
      NONE: if (g1f1) f1 <= P1; else if (g0f1) f1 <= P0;
      P1:   if (leave1) f1 <= NONE;
      P0:   if (leave0) f1 <= NONE;
    endcase
endmodule
