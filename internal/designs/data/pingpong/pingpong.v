// ping pong: two players exchange a ball over a table.
// A toy handshake example (paper Table 1, "ping pong", 3 reached
// states): the ball is either in flight toward pong, in flight toward
// ping, or on the table being served.
typedef enum { SERVE, TOPONG, TOPING } ball_t;

module player(clk, incoming, hit);
  input clk;
  input incoming;     // ball arriving at this player this cycle
  output hit;         // player returns the ball next cycle
  reg hit;
  initial hit = 0;
  always @(posedge clk)
    if (incoming) hit <= 1;
    else hit <= 0;
endmodule

module pingpong(clk, ball, ping_hit, pong_hit);
  input clk;
  output ball, ping_hit, pong_hit;
  ball_t reg ball;
  wire ping_hit, pong_hit;
  wire to_ping, to_pong;

  assign to_ping = ball == TOPING;
  assign to_pong = ball == TOPONG;

  player ping(clk, to_ping, ping_hit);
  player pong(clk, to_pong, pong_hit);

  initial ball = SERVE;
  always @(posedge clk)
    case (ball)
      SERVE:  ball <= TOPONG;          // ping serves
      TOPONG: ball <= TOPING;          // pong returns
      TOPING: ball <= TOPONG;          // ping returns
    endcase
endmodule
