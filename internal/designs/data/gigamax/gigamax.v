// Simplified Encore Gigamax cache consistency protocol (paper ref [20]):
// two processors with one cache line each, a shared bus servicing one
// request per cycle, an ownership-based write-invalidate protocol with
// read-downgrade and idle-cycle eviction. Requests arrive
// nondeterministically; bus arbitration is a nondeterministic coin.
typedef enum { RNONE, RD, WR } req_t;
typedef enum { CINV, CSHD, COWN } cache_t;

module cpu(clk, newreq, served, req);
  input clk;
  input newreq;      // nondeterministically proposed request
  input served;      // the bus serviced this cpu's request this cycle
  output req;
  req_t reg req;
  req_t wire newreq;
  initial req = RNONE;
  always @(posedge clk)
    case (req)
      RNONE: req <= newreq;
      default: if (served) req <= RNONE;
    endcase
endmodule

module gigamax(clk, c0, c1, req0, req1);
  input clk;
  output c0, c1, req0, req1;
  cache_t reg c0, c1;
  req_t wire req0, req1;

  // nondeterministic request generation
  req_t wire nr0, nr1;
  assign nr0 = $ND(RNONE, RD, WR);
  assign nr1 = $ND(RNONE, RD, WR);

  // bus arbitration
  wire pending0, pending1, pick, serve0, serve1, idle;
  assign pending0 = req0 != RNONE;
  assign pending1 = req1 != RNONE;
  assign pick = $ND(0, 1);
  assign serve0 = pending0 && (!pending1 || pick);
  assign serve1 = pending1 && (!pending0 || !pick);
  assign idle = !pending0 && !pending1;

  wire doRD0, doWR0, doRD1, doWR1;
  assign doRD0 = serve0 && (req0 == RD);
  assign doWR0 = serve0 && (req0 == WR);
  assign doRD1 = serve1 && (req1 == RD);
  assign doWR1 = serve1 && (req1 == WR);

  // idle-cycle eviction (writeback): 0 = none, 1 = evict c0, 2 = evict c1
  wire [1:0] ev;
  assign ev = $ND(0, 1, 2);

  cpu p0(clk, nr0, serve0, req0);
  cpu p1(clk, nr1, serve1, req1);

  initial c0 = CINV;
  always @(posedge clk)
    if (doWR0) c0 <= COWN;                       // write: take ownership
    else if (doWR1) c0 <= CINV;                  // other writes: invalidate
    else if (doRD0 && (c0 == CINV)) c0 <= CSHD;  // read miss: load shared
    else if (doRD1 && (c0 == COWN)) c0 <= CSHD;  // other reads: downgrade
    else if (idle && (ev == 1) && (c0 != CINV)) c0 <= CINV;

  initial c1 = CINV;
  always @(posedge clk)
    if (doWR1) c1 <= COWN;
    else if (doWR0) c1 <= CINV;
    else if (doRD1 && (c1 == CINV)) c1 <= CSHD;
    else if (doRD0 && (c1 == COWN)) c1 <= CSHD;
    else if (idle && (ev == 2) && (c1 != CINV)) c1 <= CINV;
endmodule
