// dcnew: a data-link controller — the alternating-bit protocol over
// lossy single-slot channels. The sender tags frames with a sequence
// bit and retransmits on timeout; the receiver delivers fresh frames,
// re-acknowledges duplicates, and echoes the received sequence bit.
// Frame and acknowledgment loss are nondeterministic coins.
typedef enum { SIDLE, SSEND, SWAIT } sst_t;
typedef enum { CEMPTY, C0, C1 } ch_t;

module dcnew(clk, sst, sseq, rseq, fch, ach, deliver, rcv, arcv, rdata);
  input clk;
  output sst, sseq, rseq, fch, ach, deliver, rcv, arcv, rdata;
  sst_t reg sst;
  ch_t reg fch, ach;
  reg sseq, rseq, deliver, rcv, arcv;
  // message payload: chosen with each new message, carried in the
  // frame, latched by the receiver on delivery
  reg [1:0] sdata, fdata, rdata;

  // environment coins
  wire newmsg, timeout, fdrop, adrop;
  wire [1:0] ndata;
  assign newmsg = $ND(0, 1);
  assign timeout = $ND(0, 1);
  assign fdrop = $ND(0, 1);   // frame lost before the receiver sees it
  assign adrop = $ND(0, 1);   // ack lost before the sender sees it
  assign ndata = $ND(0, 1, 2, 3);

  wire frame_here, frecv, fmatch, ack_here, arecvw, amatch;
  assign frame_here = fch != CEMPTY;
  assign frecv = frame_here && !fdrop;
  assign fmatch = ((fch == C0) && !rseq) || ((fch == C1) && rseq);
  assign ack_here = ach != CEMPTY;
  assign arecvw = ack_here && !adrop;
  assign amatch = ((ach == C0) && !sseq) || ((ach == C1) && sseq);

  // sender
  // the sender accepts a matching acknowledgment while retransmitting
  // too — acks discarded during SSEND would allow retry livelock
  wire acked;
  assign acked = arecvw && amatch && (sst != SIDLE);

  initial sst = SIDLE;
  always @(posedge clk)
    case (sst)
      SIDLE: if (newmsg) sst <= SSEND;
      SSEND: if (acked) sst <= SIDLE;
             else if (fch == CEMPTY) sst <= SWAIT;
      SWAIT: if (acked) sst <= SIDLE;
             else if (timeout) sst <= SSEND;
    endcase

  initial sseq = 0;
  always @(posedge clk)
    if (acked) sseq <= !sseq;

  // single-slot frame channel: filled by the sender, drained every
  // cycle it is occupied (to the receiver, or into the void)
  initial fch = CEMPTY;
  always @(posedge clk)
    if ((sst == SSEND) && (fch == CEMPTY)) fch <= sseq ? C1 : C0;
    else if (frame_here) fch <= CEMPTY;

  // receiver
  initial rseq = 0;
  always @(posedge clk)
    if (frecv && fmatch) rseq <= !rseq;

  initial deliver = 0;
  always @(posedge clk)
    deliver <= frecv && fmatch;

  initial rcv = 0;
  always @(posedge clk)
    rcv <= frecv;

  // ack channel: receiver echoes the received sequence bit; the slot
  // drains every occupied cycle (to the sender, or lost)
  initial ach = CEMPTY;
  always @(posedge clk)
    if (frecv) ach <= (fch == C0) ? C0 : C1;
    else if (ack_here) ach <= CEMPTY;

  initial arcv = 0;
  always @(posedge clk)
    arcv <= arecvw;

  // payload path
  initial sdata = 0;
  always @(posedge clk)
    if ((sst == SIDLE) && newmsg) sdata <= ndata;

  initial fdata = 0;
  always @(posedge clk)
    if ((sst == SSEND) && (fch == CEMPTY)) fdata <= sdata;

  initial rdata = 0;
  always @(posedge clk)
    if (frecv && fmatch) rdata <= fdata;
endmodule
