package mdd

import (
	"testing"
	"testing/quick"

	"hsis/internal/bdd"
)

func newSpace() (*bdd.Manager, *Space) {
	m := bdd.New()
	return m, NewSpace(m)
}

func TestBitAllocation(t *testing.T) {
	_, s := newSpace()
	cases := []struct {
		card, bits int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}}
	for _, c := range cases {
		v := s.NewVar(varName(c.card), c.card)
		if v.NumBits() != c.bits {
			t.Errorf("card %d: %d bits, want %d", c.card, v.NumBits(), c.bits)
		}
	}
}

func varName(card int) string { return "v" + string(rune('a'+card)) }

func TestEqPartitionsDomain(t *testing.T) {
	m, s := newSpace()
	v := s.NewVar("state", 5)
	// The Eq BDDs for distinct values are disjoint and cover Domain.
	union := bdd.False
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if m.And(v.Eq(i), v.Eq(j)) != bdd.False {
				t.Errorf("Eq(%d) and Eq(%d) overlap", i, j)
			}
		}
		union = m.Or(union, v.Eq(i))
	}
	if union != v.Domain() {
		t.Error("union of Eq values != Domain")
	}
	// 5 of 8 codes valid
	if got := m.SatCount(v.Domain(), v.NumBits()); got != 5 {
		t.Errorf("Domain SatCount = %v, want 5", got)
	}
}

func TestDomainPowerOfTwoIsTrue(t *testing.T) {
	_, s := newSpace()
	v := s.NewVar("x", 4)
	if v.Domain() != bdd.True {
		t.Error("power-of-two domain should be True")
	}
	u := s.NewVar("u", 1)
	if u.Domain() != bdd.True || u.NumBits() != 0 {
		t.Error("unit domain should be True with no bits")
	}
	if u.Eq(0) != bdd.True {
		t.Error("cardinality-1 Eq(0) should be True")
	}
}

func TestIn(t *testing.T) {
	m, s := newSpace()
	v := s.NewVar("x", 6)
	f := v.In([]int{1, 3, 5})
	for val := 0; val < 6; val++ {
		inSet := val == 1 || val == 3 || val == 5
		if got := m.And(f, v.Eq(val)) != bdd.False; got != inSet {
			t.Errorf("In membership for %d = %v, want %v", val, got, inSet)
		}
	}
}

func TestEqVarAndPermutation(t *testing.T) {
	m, s := newSpace()
	p := s.NewVar("p", 3)
	n := s.NewVar("n", 3)
	eq := p.EqVar(n)
	// every value pair (i,i) satisfies, (i,j≠i) does not
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sat := m.AndN(eq, p.Eq(i), n.Eq(j)) != bdd.False
			if sat != (i == j) {
				t.Errorf("EqVar at (%d,%d) = %v", i, j, sat)
			}
		}
	}
	// Permutation swaps p and n in a BDD
	perm := s.Permutation([]*Var{p}, []*Var{n})
	f := p.Eq(2)
	g := m.Permute(f, perm)
	if g != n.Eq(2) {
		t.Error("Permutation did not map p to n")
	}
	if m.Permute(g, perm) != f {
		t.Error("Permutation is not an involution")
	}
}

func TestValueDecode(t *testing.T) {
	m, s := newSpace()
	v := s.NewVar("x", 7)
	for val := 0; val < 7; val++ {
		lits, ok := m.AnySat(v.Eq(val))
		if !ok {
			t.Fatalf("Eq(%d) unsatisfiable", val)
		}
		asg := make([]bool, m.NumVars())
		for _, l := range lits {
			asg[l.Var] = l.Val
		}
		if got := v.Value(asg); got != val {
			t.Errorf("Value round-trip: got %d, want %d", got, val)
		}
	}
}

func TestCubeOfQuantifiesWholeVariable(t *testing.T) {
	m, s := newSpace()
	x := s.NewVar("x", 4)
	y := s.NewVar("y", 4)
	f := m.And(x.Eq(2), y.Eq(1))
	g := m.Exists(f, s.CubeOf([]*Var{x}))
	if g != y.Eq(1) {
		t.Error("quantifying x should leave y.Eq(1)")
	}
	if m.Exists(f, s.CubeOf([]*Var{x, y})) != bdd.True {
		t.Error("quantifying everything should be True")
	}
}

func TestByName(t *testing.T) {
	_, s := newSpace()
	v := s.NewVar("clk", 2)
	if s.ByName("clk") != v {
		t.Error("ByName lookup failed")
	}
	if s.ByName("nope") != nil {
		t.Error("ByName should return nil for unknown")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate name should panic")
		}
	}()
	s.NewVar("clk", 2)
}

func TestInterleavedAllocation(t *testing.T) {
	m, s := newSpace()
	// Creating present/next pairs adjacently interleaves their bits —
	// the static order for interacting FSMs (paper ref [1]).
	p := s.NewVar("s", 4)
	n := s.NewVar("s'", 4)
	if m.Level(p.Bits()[0]) != 0 || m.Level(n.Bits()[0]) != 2 {
		t.Error("bit levels not in creation order")
	}
	if len(s.Vars()) != 2 {
		t.Error("Vars() length wrong")
	}
}

func TestQuickEqInSemantics(t *testing.T) {
	m, s := newSpace()
	v := s.NewVar("x", 6)
	w := s.NewVar("y", 6)
	prop := func(raw []uint8) bool {
		// interpret raw as a value subset of x's domain
		var vals []int
		for i := 0; i < v.Card(); i++ {
			if i < len(raw) && raw[i]%2 == 1 {
				vals = append(vals, i)
			}
		}
		set := v.In(vals)
		// membership must agree pointwise
		for val := 0; val < v.Card(); val++ {
			inSet := false
			for _, x := range vals {
				if x == val {
					inSet = true
				}
			}
			if (m.And(set, v.Eq(val)) != bdd.False) != inSet {
				return false
			}
		}
		// In(all) over the domain equals Domain
		all := make([]int, v.Card())
		for i := range all {
			all[i] = i
		}
		if v.In(all) != v.Domain() {
			return false
		}
		// EqVar symmetric
		return v.EqVar(w) == w.EqVar(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValueFromMapIgnoresForeignBits(t *testing.T) {
	m, s := newSpace()
	v := s.NewVar("x", 4)
	w := s.NewVar("y", 4)
	_ = m
	asg := map[int]bool{
		v.Bits()[0]: true,
		w.Bits()[0]: true, // foreign
	}
	if got := v.ValueFromMap(asg); got != 1 {
		t.Fatalf("ValueFromMap = %d, want 1", got)
	}
}
