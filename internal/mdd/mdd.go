// Package mdd layers multi-valued decision-diagram variables on top of
// binary BDDs. BLIF-MV variables range over arbitrary finite domains;
// each is log-encoded onto ⌈log₂ card⌉ binary variables of the
// underlying bdd.Manager (paper §4: "Multiple-valued variables are very
// useful in describing state transition graphs symbolically").
//
// Encodings with an index ≥ the cardinality are invalid; Domain()
// characterizes valid codes, and every relation built by the network
// layer constrains outputs to valid codes, so invalid codes never enter
// reachable-state computations.
package mdd

import (
	"fmt"
	"sync"

	"hsis/internal/bdd"
)

// Space owns a set of multi-valued variables over one bdd.Manager.
// Binary variables are allocated in variable creation order, so callers
// control the BDD variable order by the order in which they create MDD
// variables (the basis of the static ordering algorithm, paper ref [1]).
//
// A Space may be read (ByName, Vars, Permutation, …) concurrently with
// one NewVar call: registration takes the write lock, lookups the read
// lock. Concurrent NewVar callers must still serialize externally when
// they care about the resulting BDD variable order, since creation
// order is the variable order.
type Space struct {
	mgr    *bdd.Manager
	mu     sync.RWMutex
	vars   []*Var
	byName map[string]*Var
}

// Var is one multi-valued variable: a name, a cardinality, and the
// binary BDD variables that encode it (least-significant bit first).
type Var struct {
	space *Space
	name  string
	card  int
	bits  []int // BDD variable IDs, LSB first
	index int   // position within the Space
}

// NewSpace creates an empty variable space over m.
func NewSpace(m *bdd.Manager) *Space {
	return &Space{mgr: m, byName: make(map[string]*Var)}
}

// Manager returns the underlying BDD manager.
func (s *Space) Manager() *bdd.Manager { return s.mgr }

// Vars returns the variables in creation order.
func (s *Space) Vars() []*Var {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vars
}

// ByName returns the variable with the given name, or nil.
func (s *Space) ByName(name string) *Var {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byName[name]
}

// NewVar creates a multi-valued variable with the given cardinality,
// allocating fresh binary variables at the bottom of the current order.
// Cardinality must be at least 1; a cardinality-1 variable occupies no
// binary variables and is constantly 0.
func (s *Space) NewVar(name string, card int) *Var {
	if card < 1 {
		panic(fmt.Sprintf("mdd: variable %q with cardinality %d", name, card))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("mdd: duplicate variable %q", name))
	}
	v := &Var{space: s, name: name, card: card, index: len(s.vars)}
	for n := card - 1; n > 0; n >>= 1 {
		ref := s.mgr.NewVar()
		v.bits = append(v.bits, s.mgr.VarOf(ref))
	}
	if len(v.bits) > 1 {
		// The bits of one multi-valued variable move as an atomic block
		// under dynamic reordering: value-level locality is what the
		// log encoding exploits, and Eq/In/Domain rebuilds stay cheap.
		s.mgr.GroupVars(v.bits)
	}
	s.vars = append(s.vars, v)
	s.byName[name] = v
	return v
}

// Name returns the variable's name.
func (v *Var) Name() string { return v.name }

// Card returns the variable's cardinality.
func (v *Var) Card() int { return v.card }

// Bits returns the binary BDD variable IDs encoding v, LSB first.
func (v *Var) Bits() []int { return v.bits }

// NumBits returns the number of binary variables encoding v.
func (v *Var) NumBits() int { return len(v.bits) }

// Eq returns the BDD asserting v == val.
func (v *Var) Eq(val int) bdd.Ref {
	if val < 0 || val >= v.card {
		panic(fmt.Sprintf("mdd: %s==%d out of domain [0,%d)", v.name, val, v.card))
	}
	m := v.space.mgr
	r := bdd.True
	for i, b := range v.bits {
		if val&(1<<i) != 0 {
			r = m.And(r, m.Var(b))
		} else {
			r = m.And(r, m.NVar(b))
		}
	}
	return r
}

// In returns the BDD asserting v ∈ vals.
func (v *Var) In(vals []int) bdd.Ref {
	m := v.space.mgr
	r := bdd.False
	for _, val := range vals {
		r = m.Or(r, v.Eq(val))
	}
	return r
}

// Domain returns the BDD of valid encodings (codes below the
// cardinality). For power-of-two cardinalities this is True.
func (v *Var) Domain() bdd.Ref {
	m := v.space.mgr
	r := bdd.False
	if 1<<len(v.bits) == v.card || v.card == 1 {
		return bdd.True
	}
	for val := 0; val < v.card; val++ {
		r = m.Or(r, v.Eq(val))
	}
	return r
}

// EqVar returns the BDD asserting v == o, bit-wise. The variables must
// have the same cardinality.
func (v *Var) EqVar(o *Var) bdd.Ref {
	if v.card != o.card {
		panic(fmt.Sprintf("mdd: EqVar cardinality mismatch %s(%d) vs %s(%d)", v.name, v.card, o.name, o.card))
	}
	m := v.space.mgr
	r := bdd.True
	for i := range v.bits {
		r = m.And(r, m.Equiv(m.Var(v.bits[i]), m.Var(o.bits[i])))
	}
	return r
}

// Cube returns the cube of v's binary variables, for quantification.
func (v *Var) Cube() bdd.Ref {
	return v.space.mgr.Cube(v.bits)
}

// Value decodes v's value from a complete binary assignment indexed by
// BDD variable ID.
func (v *Var) Value(assignment []bool) int {
	val := 0
	for i, b := range v.bits {
		if assignment[b] {
			val |= 1 << i
		}
	}
	return val
}

// ValueFromMap decodes v's value from a partial assignment map; missing
// bits read as 0.
func (v *Var) ValueFromMap(assignment map[int]bool) int {
	val := 0
	for i, b := range v.bits {
		if assignment[b] {
			val |= 1 << i
		}
	}
	return val
}

// CubeOf builds the quantification cube over all binary variables of the
// given multi-valued variables.
func (s *Space) CubeOf(vars []*Var) bdd.Ref {
	var bits []int
	for _, v := range vars {
		bits = append(bits, v.bits...)
	}
	return s.mgr.Cube(bits)
}

// BitsOf returns the binary variable IDs of the given variables, in
// variable-then-bit order.
func (s *Space) BitsOf(vars []*Var) []int {
	var bits []int
	for _, v := range vars {
		bits = append(bits, v.bits...)
	}
	return bits
}

// Permutation builds a BDD variable permutation that maps each variable
// in from to the corresponding variable in to (and vice versa). The
// slices must be parallel and each pair must have equal bit width.
// Identity elsewhere. The result is suitable for bdd.Manager.Permute.
func (s *Space) Permutation(from, to []*Var) []int {
	perm := make([]int, s.mgr.NumVars())
	for i := range perm {
		perm[i] = i
	}
	if len(from) != len(to) {
		panic("mdd: Permutation: slice length mismatch")
	}
	for i := range from {
		f, t := from[i], to[i]
		if len(f.bits) != len(t.bits) {
			panic(fmt.Sprintf("mdd: Permutation: width mismatch %s vs %s", f.name, t.name))
		}
		for j := range f.bits {
			perm[f.bits[j]] = t.bits[j]
			perm[t.bits[j]] = f.bits[j]
		}
	}
	return perm
}
