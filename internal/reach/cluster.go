package reach

// Clustered image computation and the engine abstraction: every
// fixpoint in the repository (reachability, CTL, language containment)
// computes images and preimages through an ImageEngine, selecting the
// monolithic product relation, the per-call-scheduled partitioned
// relation, or the precompiled clustered pipeline. Clustered is the
// default whenever the monolithic relation has not been built — it
// replays a schedule frozen at network.Build time and performs no
// per-call scheduling work.

import (
	"hsis/internal/bdd"
	"hsis/internal/network"
)

// EngineKind selects an image-computation strategy.
type EngineKind int

// Engine kinds.
const (
	// EngineAuto picks monolithic when the product transition relation
	// is already built; otherwise iso when the network's isomorphic
	// latch-cone replication saves enough cluster compiles to pay for
	// itself (network.IsoWorthwhile), clustered if not.
	EngineAuto EngineKind = iota
	// EngineMonolithic uses the product transition relation T (building
	// it on first use if necessary).
	EngineMonolithic
	// EnginePartitioned re-schedules the raw conjuncts on every call
	// (the pre-clustering behavior; kept as an ablation baseline).
	EnginePartitioned
	// EngineClustered replays the precompiled per-network plan.
	EngineClustered
	// EngineIso replays the isomorphism-compiled plan: clusters built
	// once per equivalence class of replicated latch cones and
	// instantiated per replica by variable permutation.
	EngineIso
)

func (k EngineKind) String() string {
	switch k {
	case EngineMonolithic:
		return "monolithic"
	case EnginePartitioned:
		return "partitioned"
	case EngineClustered:
		return "clustered"
	case EngineIso:
		return "iso"
	default:
		return "auto"
	}
}

// ParseEngineKind resolves a CLI engine name; empty and "auto" both map
// to EngineAuto.
func ParseEngineKind(s string) (EngineKind, bool) {
	switch s {
	case "", "auto":
		return EngineAuto, true
	case "monolithic":
		return EngineMonolithic, true
	case "partitioned":
		return EnginePartitioned, true
	case "clustered":
		return EngineClustered, true
	case "iso":
		return EngineIso, true
	default:
		return EngineAuto, false
	}
}

// ImageEngine computes successor and predecessor sets over a network's
// present-state rail.
type ImageEngine interface {
	Kind() EngineKind
	Image(s bdd.Ref) bdd.Ref
	Preimage(s bdd.Ref) bdd.Ref
}

// Engine binds an engine of the given kind to a network. EngineAuto
// resolves to monolithic when T is already built (it is paid for; reuse
// it); otherwise to iso when the network has enough replicated latch
// cones to profit from per-class compilation, and to the clustered
// pipeline if not — SkipMonolithic networks never multiply out the
// product relation just to take images.
func Engine(n *network.Network, kind EngineKind) ImageEngine {
	if kind == EngineAuto {
		switch {
		case n.TBuilt():
			kind = EngineMonolithic
		case n.IsoWorthwhile():
			kind = EngineIso
		default:
			kind = EngineClustered
		}
	}
	switch kind {
	case EnginePartitioned:
		return partitionedEngine{n}
	case EngineIso:
		if n.IsoImagePlan() != nil {
			return isoEngine{n}
		}
		fallthrough // no replication detected: degrade to clustered
	case EngineClustered:
		if n.ImagePlan() != nil {
			return clusteredEngine{n}
		}
		return partitionedEngine{n} // no plan compiled: degrade gracefully
	default:
		return monolithicEngine{n}
	}
}

type monolithicEngine struct{ n *network.Network }

func (e monolithicEngine) Kind() EngineKind { return EngineMonolithic }
func (e monolithicEngine) Image(s bdd.Ref) bdd.Ref {
	e.n.EnsureT()
	return Image(e.n, s)
}
func (e monolithicEngine) Preimage(s bdd.Ref) bdd.Ref {
	e.n.EnsureT()
	return Preimage(e.n, s)
}

type partitionedEngine struct{ n *network.Network }

func (e partitionedEngine) Kind() EngineKind           { return EnginePartitioned }
func (e partitionedEngine) Image(s bdd.Ref) bdd.Ref    { return ImagePartitioned(e.n, s) }
func (e partitionedEngine) Preimage(s bdd.Ref) bdd.Ref { return PreimagePartitioned(e.n, s) }

type clusteredEngine struct{ n *network.Network }

func (e clusteredEngine) Kind() EngineKind           { return EngineClustered }
func (e clusteredEngine) Image(s bdd.Ref) bdd.Ref    { return ImageClustered(e.n, s) }
func (e clusteredEngine) Preimage(s bdd.Ref) bdd.Ref { return PreimageClustered(e.n, s) }

type isoEngine struct{ n *network.Network }

func (e isoEngine) Kind() EngineKind { return EngineIso }
func (e isoEngine) Image(s bdd.Ref) bdd.Ref {
	next := e.n.IsoImagePlan().Run(e.n.Manager(), s)
	return e.n.SwapRails(next)
}
func (e isoEngine) Preimage(s bdd.Ref) bdd.Ref {
	return e.n.IsoPreimagePlan().Run(e.n.Manager(), e.n.SwapRails(s))
}

// ImageClustered computes successors by replaying the network's
// precompiled clustered plan: one AndExists per cluster, each with a
// cube frozen at Build time.
func ImageClustered(n *network.Network, s bdd.Ref) bdd.Ref {
	next := n.ImagePlan().Run(n.Manager(), s)
	return n.SwapRails(next)
}

// PreimageClustered is the clustered counterpart of Preimage.
func PreimageClustered(n *network.Network, s bdd.Ref) bdd.Ref {
	return n.PreimagePlan().Run(n.Manager(), n.SwapRails(s))
}
