package reach

// Clustered image computation and the engine abstraction: every
// fixpoint in the repository (reachability, CTL, language containment)
// computes images and preimages through an ImageEngine, selecting the
// monolithic product relation, the per-call-scheduled partitioned
// relation, or the precompiled clustered pipeline. Clustered is the
// default whenever the monolithic relation has not been built — it
// replays a schedule frozen at network.Build time and performs no
// per-call scheduling work.

import (
	"hsis/internal/bdd"
	"hsis/internal/network"
)

// EngineKind selects an image-computation strategy.
type EngineKind int

// Engine kinds.
const (
	// EngineAuto picks monolithic when the product transition relation
	// is already built, clustered otherwise.
	EngineAuto EngineKind = iota
	// EngineMonolithic uses the product transition relation T (building
	// it on first use if necessary).
	EngineMonolithic
	// EnginePartitioned re-schedules the raw conjuncts on every call
	// (the pre-clustering behavior; kept as an ablation baseline).
	EnginePartitioned
	// EngineClustered replays the precompiled per-network plan.
	EngineClustered
)

func (k EngineKind) String() string {
	switch k {
	case EngineMonolithic:
		return "monolithic"
	case EnginePartitioned:
		return "partitioned"
	case EngineClustered:
		return "clustered"
	default:
		return "auto"
	}
}

// ImageEngine computes successor and predecessor sets over a network's
// present-state rail.
type ImageEngine interface {
	Kind() EngineKind
	Image(s bdd.Ref) bdd.Ref
	Preimage(s bdd.Ref) bdd.Ref
}

// Engine binds an engine of the given kind to a network. EngineAuto
// resolves to monolithic when T is already built (it is paid for; reuse
// it) and to the clustered pipeline otherwise, so SkipMonolithic
// networks never multiply out the product relation just to take images.
func Engine(n *network.Network, kind EngineKind) ImageEngine {
	if kind == EngineAuto {
		if n.TBuilt() {
			kind = EngineMonolithic
		} else {
			kind = EngineClustered
		}
	}
	switch kind {
	case EnginePartitioned:
		return partitionedEngine{n}
	case EngineClustered:
		if n.ImagePlan() != nil {
			return clusteredEngine{n}
		}
		return partitionedEngine{n} // no plan compiled: degrade gracefully
	default:
		return monolithicEngine{n}
	}
}

type monolithicEngine struct{ n *network.Network }

func (e monolithicEngine) Kind() EngineKind { return EngineMonolithic }
func (e monolithicEngine) Image(s bdd.Ref) bdd.Ref {
	e.n.EnsureT()
	return Image(e.n, s)
}
func (e monolithicEngine) Preimage(s bdd.Ref) bdd.Ref {
	e.n.EnsureT()
	return Preimage(e.n, s)
}

type partitionedEngine struct{ n *network.Network }

func (e partitionedEngine) Kind() EngineKind           { return EnginePartitioned }
func (e partitionedEngine) Image(s bdd.Ref) bdd.Ref    { return ImagePartitioned(e.n, s) }
func (e partitionedEngine) Preimage(s bdd.Ref) bdd.Ref { return PreimagePartitioned(e.n, s) }

type clusteredEngine struct{ n *network.Network }

func (e clusteredEngine) Kind() EngineKind           { return EngineClustered }
func (e clusteredEngine) Image(s bdd.Ref) bdd.Ref    { return ImageClustered(e.n, s) }
func (e clusteredEngine) Preimage(s bdd.Ref) bdd.Ref { return PreimageClustered(e.n, s) }

// ImageClustered computes successors by replaying the network's
// precompiled clustered plan: one AndExists per cluster, each with a
// cube frozen at Build time.
func ImageClustered(n *network.Network, s bdd.Ref) bdd.Ref {
	next := n.ImagePlan().Run(n.Manager(), s)
	return n.SwapRails(next)
}

// PreimageClustered is the clustered counterpart of Preimage.
func PreimageClustered(n *network.Network, s bdd.Ref) bdd.Ref {
	return n.PreimagePlan().Run(n.Manager(), n.SwapRails(s))
}
