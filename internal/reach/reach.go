// Package reach implements symbolic image/preimage computation and
// reachability over a compiled network, including the partitioned
// transition relation variant (paper §8 item 4) and the bounded
// "few reachability steps" primitive behind early failure detection
// (paper §5.4).
package reach

import (
	"hsis/internal/bdd"
	"hsis/internal/network"
	"hsis/internal/quant"
	"hsis/internal/telemetry"
)

// Image computes the successors of the state set s (over the PS rail)
// using the monolithic product transition relation.
func Image(n *network.Network, s bdd.Ref) bdd.Ref {
	m := n.Manager()
	next := m.AndExists(n.T, s, n.PSCube())
	return n.SwapRails(next)
}

// Preimage computes the predecessors of the state set s (over the PS
// rail) using the monolithic product transition relation.
func Preimage(n *network.Network, s bdd.Ref) bdd.Ref {
	m := n.Manager()
	return m.AndExists(n.T, n.SwapRails(s), n.NSCube())
}

// ImagePartitioned computes successors without ever forming the product
// transition relation: the state set joins the per-table conjuncts and
// one early-quantification pass eliminates present-state and non-state
// variables together. The operand slices are buffers owned by the
// network, so repeated calls allocate nothing; the schedule itself is
// still derived per call (see ImageClustered for the precompiled form).
func ImagePartitioned(n *network.Network, s bdd.Ref) bdd.Ref {
	conjs, qvars := n.ImageOperands(s)
	next := quant.AndExists(n.Manager(), conjs, qvars, n.Heuristic())
	return n.SwapRails(next)
}

// PreimagePartitioned is the partitioned counterpart of Preimage.
func PreimagePartitioned(n *network.Network, s bdd.Ref) bdd.Ref {
	conjs, qvars := n.PreimageOperands(n.SwapRails(s))
	return quant.AndExists(n.Manager(), conjs, qvars, n.Heuristic())
}

// Options controls a reachability run.
type Options struct {
	// MaxSteps bounds the number of image computations (0 = unbounded).
	// Early failure detection runs with a small bound (paper §5.4).
	MaxSteps int
	// Engine selects the image-computation strategy (EngineAuto picks
	// monolithic when T is built, otherwise iso on sufficiently
	// replicated designs, clustered if not).
	Engine EngineKind
	// Partitioned selects the per-call-scheduled partitioned engine
	// (legacy knob, equivalent to Engine: EnginePartitioned).
	Partitioned bool
	// KeepRings records the frontier of every step for counterexample
	// reconstruction ("onion rings").
	KeepRings bool
	// Stop, if non-nil, is evaluated after each step on the set reached
	// so far; returning true ends the traversal early. This is the hook
	// used by early failure detection: "if the property fails on a
	// subset of reachable states, then it fails on the whole set".
	Stop func(reached bdd.Ref) bool
}

// Result reports a reachability run.
type Result struct {
	// Reached is the fixed point (or the partial set if stopped early).
	Reached bdd.Ref
	// Steps is the number of image computations performed.
	Steps int
	// Converged is true when a fixed point was established.
	Converged bool
	// Stopped is true when Options.Stop ended the run.
	Stopped bool
	// Rings[i] holds the states first reached at step i (Rings[0] is the
	// initial set); only populated with Options.KeepRings.
	Rings []bdd.Ref
}

// Forward computes the reachable states from n.Init.
func Forward(n *network.Network, opts Options) *Result {
	return ForwardFrom(n, n.Init, opts)
}

// ForwardFrom computes the states reachable from the given set.
func ForwardFrom(n *network.Network, from bdd.Ref, opts Options) *Result {
	m := n.Manager()
	kind := opts.Engine
	if opts.Partitioned && kind == EngineAuto {
		kind = EnginePartitioned
	}
	eng := Engine(n, kind)
	img := eng.Image
	res := &Result{Reached: from}
	frontier := from
	t := m.Telemetry()
	if t != nil {
		t.Emit("reach.start",
			telemetry.Str("engine", eng.Kind().String()),
			telemetry.Int("init_nodes", m.NodeCount(from)))
		defer func() {
			t.Emit("reach.done",
				telemetry.Int("steps", res.Steps),
				telemetry.Bool("converged", res.Converged),
				telemetry.Int("reached_nodes", m.NodeCount(res.Reached)))
		}()
	}
	if opts.KeepRings {
		res.Rings = append(res.Rings, frontier)
	}
	if opts.Stop != nil && opts.Stop(res.Reached) {
		res.Stopped = true
		return res
	}
	for frontier != bdd.False {
		if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
			return res
		}
		// Cancellation check at the same safe point the reorder/GC
		// machinery uses: a cancelled or timed-out job unwinds here via
		// ErrInterrupted instead of finishing the fixpoint.
		m.CheckInterrupt()
		var sp telemetry.Span
		if t != nil {
			sp = t.Start("reach.iter")
		}
		// Safe point: between image steps every Ref the loop still needs
		// is known, so an armed auto-reorder or a due garbage collection
		// can run here under the GC protection contract. The pending
		// checks gate the IncRef traffic to the (rare) iterations where
		// a sift or collection actually fires. Without the periodic GC
		// the partitioned engines' transient recursion garbage
		// accumulates across the whole fixpoint — on mdlc2's clustered
		// pipeline that alone was a 1.9M-node high-water mark for a live
		// set under 100k.
		if m.ReorderPending() || m.GCPending() {
			m.IncRef(res.Reached)
			m.IncRef(frontier)
			for _, r := range res.Rings {
				m.IncRef(r)
			}
			m.MaybeGC() // drains a pending reorder first, then collects
			for _, r := range res.Rings {
				m.DecRef(r)
			}
			m.DecRef(frontier)
			m.DecRef(res.Reached)
		}
		next := img(frontier)
		frontier = m.Diff(next, res.Reached)
		if frontier == bdd.False {
			sp.End(telemetry.Int("step", res.Steps),
				telemetry.Int("frontier_nodes", 0),
				telemetry.Int("reached_nodes", m.NodeCount(res.Reached)))
			res.Converged = true
			return res
		}
		res.Reached = m.Or(res.Reached, frontier)
		res.Steps++
		if t != nil {
			sp.End(telemetry.Int("step", res.Steps),
				telemetry.Int("frontier_nodes", m.NodeCount(frontier)),
				telemetry.Int("reached_nodes", m.NodeCount(res.Reached)))
		}
		if opts.KeepRings {
			res.Rings = append(res.Rings, frontier)
		}
		if opts.Stop != nil && opts.Stop(res.Reached) {
			res.Stopped = true
			return res
		}
	}
	res.Converged = true
	return res
}

// Backward computes the states that can reach the given set (a least
// fixed point of preimages), optionally restricted to a care set: states
// outside care are never explored. care == bdd.True means no restriction.
func Backward(n *network.Network, target, care bdd.Ref, kind EngineKind) bdd.Ref {
	m := n.Manager()
	pre := Engine(n, kind).Preimage
	reached := m.And(target, care)
	frontier := reached
	t := m.Telemetry()
	step := 0
	for frontier != bdd.False {
		m.CheckInterrupt() // cancellation safe point (see ForwardFrom)
		var sp telemetry.Span
		if t != nil {
			sp = t.Start("reach.back.iter")
		}
		// Safe point (see ForwardFrom).
		if m.ReorderPending() || m.GCPending() {
			m.IncRef(reached)
			m.IncRef(frontier)
			m.IncRef(care)
			m.MaybeGC()
			m.DecRef(care)
			m.DecRef(frontier)
			m.DecRef(reached)
		}
		prev := m.And(pre(frontier), care)
		frontier = m.Diff(prev, reached)
		reached = m.Or(reached, frontier)
		if t != nil {
			step++
			sp.End(telemetry.Int("step", step),
				telemetry.Int("frontier_nodes", m.NodeCount(frontier)),
				telemetry.Int("reached_nodes", m.NodeCount(reached)))
		}
	}
	return reached
}

// EarlyFailure runs the bounded-depth property check of paper §5.4: take
// a few reachability steps and test whether bad states are already
// reachable. It returns the step at which a bad state first appears, or
// -1 if none is seen within maxSteps.
func EarlyFailure(n *network.Network, bad bdd.Ref, maxSteps int) int {
	m := n.Manager()
	step := -1
	count := 0
	m.IncRef(bad) // the Stop closure reads bad across reorder safe points
	defer m.DecRef(bad)
	ForwardFrom(n, n.Init, Options{
		MaxSteps: maxSteps,
		Stop: func(reached bdd.Ref) bool {
			if m.And(reached, bad) != bdd.False {
				step = count
				return true
			}
			count++
			return false
		},
	})
	return step
}
