package reach

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/network"
)

func compile(t *testing.T, src string, opts network.Options) *network.Network {
	t.Helper()
	d, err := blifmv.ParseString(src, "test.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// counter4 counts 0..3 and wraps; all 4 states reachable in 3 steps.
const counter4 = `
.model counter4
.mv s,n 4
.table s n
0 1
1 2
2 3
3 0
.latch n s
.reset s
0
.end
`

// gated5 has 5 values but value 4 is unreachable.
const gated5 = `
.model gated5
.mv s,n 5
.table s n
0 1
1 2
2 3
3 0
4 0
.latch n s
.reset s
0
.end
`

func TestForwardFixedPoint(t *testing.T) {
	n := compile(t, counter4, network.Options{})
	res := Forward(n, Options{})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if got := n.NumStates(res.Reached); got != 4 {
		t.Fatalf("reached %v states, want 4", got)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
}

func TestUnreachableStateExcluded(t *testing.T) {
	n := compile(t, gated5, network.Options{})
	res := Forward(n, Options{})
	if got := n.NumStates(res.Reached); got != 4 {
		t.Fatalf("reached %v states, want 4 (state 4 unreachable)", got)
	}
	s := n.VarByName("s")
	if n.Manager().And(res.Reached, s.Eq(4)) != bdd.False {
		t.Fatal("unreachable state 4 included")
	}
}

func TestImagePreimageDuality(t *testing.T) {
	n := compile(t, counter4, network.Options{})
	m := n.Manager()
	s := n.VarByName("s")
	// Image({1}) = {2}; Preimage({2}) = {1}
	if Image(n, s.Eq(1)) != s.Eq(2) {
		t.Fatal("Image wrong")
	}
	if Preimage(n, s.Eq(2)) != s.Eq(1) {
		t.Fatal("Preimage wrong")
	}
	// general duality on sets: y ∈ Img(X) iff Pre({y}) ∩ X ≠ ∅
	x := m.Or(s.Eq(0), s.Eq(2))
	img := Image(n, x)
	for v := 0; v < 4; v++ {
		inImg := m.And(img, s.Eq(v)) != bdd.False
		pre := Preimage(n, s.Eq(v))
		meets := m.And(pre, x) != bdd.False
		if inImg != meets {
			t.Fatalf("duality broken at state %d", v)
		}
	}
}

func TestPartitionedMatchesMonolithic(t *testing.T) {
	for _, src := range []string{counter4, gated5} {
		n := compile(t, src, network.Options{})
		s := n.VarByName("s")
		for v := 0; v < s.Card(); v++ {
			if Image(n, s.Eq(v)) != ImagePartitioned(n, s.Eq(v)) {
				t.Fatalf("partitioned image differs at state %d", v)
			}
			if Preimage(n, s.Eq(v)) != PreimagePartitioned(n, s.Eq(v)) {
				t.Fatalf("partitioned preimage differs at state %d", v)
			}
		}
		// full reachability with SkipMonolithic
		np := compile(t, src, network.Options{SkipMonolithic: true})
		rp := Forward(np, Options{Partitioned: true})
		rm := Forward(n, Options{})
		if np.NumStates(rp.Reached) != n.NumStates(rm.Reached) {
			t.Fatal("partitioned reachability differs")
		}
	}
}

func TestMaxStepsBounds(t *testing.T) {
	n := compile(t, counter4, network.Options{})
	res := Forward(n, Options{MaxSteps: 1})
	if res.Converged {
		t.Fatal("should not converge in one step")
	}
	if got := n.NumStates(res.Reached); got != 2 {
		t.Fatalf("after 1 step reached %v states, want 2", got)
	}
}

func TestRings(t *testing.T) {
	n := compile(t, counter4, network.Options{})
	res := Forward(n, Options{KeepRings: true})
	if len(res.Rings) != 4 {
		t.Fatalf("rings = %d, want 4", len(res.Rings))
	}
	s := n.VarByName("s")
	for i := 0; i < 4; i++ {
		if res.Rings[i] != s.Eq(i) {
			t.Fatalf("ring %d wrong", i)
		}
	}
	// rings are disjoint and union to Reached
	m := n.Manager()
	union := bdd.False
	for i, r := range res.Rings {
		if m.And(union, r) != bdd.False {
			t.Fatalf("ring %d overlaps earlier rings", i)
		}
		union = m.Or(union, r)
	}
	if union != res.Reached {
		t.Fatal("rings do not partition Reached")
	}
}

func TestStopCallback(t *testing.T) {
	n := compile(t, counter4, network.Options{})
	s := n.VarByName("s")
	m := n.Manager()
	res := Forward(n, Options{
		Stop: func(reached bdd.Ref) bool { return m.And(reached, s.Eq(2)) != bdd.False },
	})
	if !res.Stopped {
		t.Fatal("Stop did not fire")
	}
	if got := n.NumStates(res.Reached); got != 3 {
		t.Fatalf("stopped after %v states, want 3", got)
	}
}

func TestBackward(t *testing.T) {
	n := compile(t, gated5, network.Options{})
	m := n.Manager()
	s := n.VarByName("s")
	// Everything (including 4) can reach state 0.
	back := Backward(n, s.Eq(0), bdd.True, EngineMonolithic)
	if got := m.SatCount(m.And(back, s.Domain()), 3); got != 5 {
		t.Fatalf("backward reach = %v states, want 5", got)
	}
	// With care set excluding state 3, the cycle is cut: 0,4 reach 0
	// without passing through 3... (0->1->2->3->0 requires 3) so only
	// {0,4} remain (plus nothing else).
	care := m.Diff(bdd.True, s.Eq(3))
	back = Backward(n, s.Eq(0), care, EngineMonolithic)
	want := m.Or(s.Eq(0), s.Eq(4))
	if m.And(back, s.Domain()) != want {
		t.Fatal("care-restricted backward reach wrong")
	}
}

func TestEarlyFailure(t *testing.T) {
	n := compile(t, counter4, network.Options{})
	s := n.VarByName("s")
	// state 2 first appears after 2 steps
	if got := EarlyFailure(n, s.Eq(2), 10); got != 2 {
		t.Fatalf("EarlyFailure depth = %d, want 2", got)
	}
	// initial state is bad: detected at step 0
	if got := EarlyFailure(n, s.Eq(0), 10); got != 0 {
		t.Fatalf("EarlyFailure depth = %d, want 0", got)
	}
	// unreachable bad state: -1
	n5 := compile(t, gated5, network.Options{})
	s5 := n5.VarByName("s")
	if got := EarlyFailure(n5, s5.Eq(4), 50); got != -1 {
		t.Fatalf("EarlyFailure on unreachable = %d, want -1", got)
	}
}
