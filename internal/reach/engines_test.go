package reach_test

// Property-style engine-equivalence tests: the monolithic, partitioned,
// clustered, and iso image engines must compute identical successor and
// predecessor sets on every bundled Table-1 design (plus a generated
// philos-16, where isomorphism detection covers every latch), for every
// reachability ring, and Backward must agree across engines under
// non-trivial care sets.

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/designs"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/verilog"
)

func buildNet(t *testing.T, d *designs.Design, opts network.Options) *network.Network {
	t.Helper()
	dsg, err := verilog.CompileString(d.Verilog, d.Name+".v", d.Top)
	if err != nil {
		t.Fatalf("%s: compile: %v", d.Name, err)
	}
	flat, err := blifmv.Flatten(dsg)
	if err != nil {
		t.Fatalf("%s: flatten: %v", d.Name, err)
	}
	n, err := network.Build(flat, opts)
	if err != nil {
		t.Fatalf("%s: build: %v", d.Name, err)
	}
	return n
}

var engineKinds = []reach.EngineKind{
	reach.EngineMonolithic,
	reach.EnginePartitioned,
	reach.EngineClustered,
	reach.EngineIso,
}

// equivalenceDesigns is the bundled Table-1 suite plus one generated
// philos instance, so every latch of at least one design sits in an
// isomorphism class. The scale is a parameter because backward
// fixpoints from deep rings cost minutes at N=16 under the partitioned
// engine; the image test affords the full philos-16.
func equivalenceDesigns(t *testing.T, scaled string) []*designs.Design {
	t.Helper()
	all, err := designs.All()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := designs.Get(scaled)
	if err != nil {
		t.Fatal(err)
	}
	return append(all, gen)
}

func TestEnginesAgreeOnAllDesigns(t *testing.T) {
	for _, d := range equivalenceDesigns(t, "philos-16") {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n := buildNet(t, d, network.Options{})
			m := n.Manager()
			res := reach.Forward(n, reach.Options{KeepRings: true})
			if !res.Converged {
				t.Fatal("reachability diverged")
			}
			// Every ring on small designs; evenly-sampled rings on large
			// ones (the partitioned preimage of a wide mdlc2 ring costs
			// seconds, and adjacent rings exercise the same code paths).
			sets := []bdd.Ref{n.Init, res.Reached}
			const maxRings = 6
			step := 1
			if len(res.Rings) > maxRings {
				step = (len(res.Rings) + maxRings - 1) / maxRings
			}
			for i := 0; i < len(res.Rings); i += step {
				sets = append(sets, res.Rings[i])
			}
			engines := make([]reach.ImageEngine, len(engineKinds))
			for j, kind := range engineKinds {
				engines[j] = reach.Engine(n, kind)
			}
			for i, s := range sets {
				img := engines[0].Image(s)
				pre := engines[0].Preimage(s)
				for j, e := range engines[1:] {
					if got := e.Image(s); got != img {
						t.Fatalf("set %d: %v image differs", i, engineKinds[j+1])
					}
					if got := e.Preimage(s); got != pre {
						t.Fatalf("set %d: %v preimage differs", i, engineKinds[j+1])
					}
				}
			}
			// A SkipMonolithic network never builds T; EngineAuto resolves
			// to clustered and must reach exactly the same state count.
			np := buildNet(t, d, network.Options{SkipMonolithic: true})
			if np.TBuilt() {
				t.Fatal("SkipMonolithic network built T")
			}
			rp := reach.Forward(np, reach.Options{})
			if np.TBuilt() {
				t.Fatal("clustered reachability multiplied out T")
			}
			if got, want := np.NumStates(rp.Reached), n.NumStates(res.Reached); got != want {
				t.Fatalf("clustered reachability: %v states, want %v", got, want)
			}
			_ = m
		})
	}
}

func TestBackwardEnginesAgreeWithCareSets(t *testing.T) {
	for _, d := range equivalenceDesigns(t, "philos-8") {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n := buildNet(t, d, network.Options{})
			m := n.Manager()
			res := reach.Forward(n, reach.Options{KeepRings: true})
			target := res.Rings[len(res.Rings)-1]
			// Non-trivial care sets: everything, the reachable set, and
			// the reachable set minus an intermediate ring (cutting paths).
			cares := []bdd.Ref{bdd.True, res.Reached}
			if len(res.Rings) > 2 {
				cares = append(cares, m.Diff(res.Reached, res.Rings[len(res.Rings)/2]))
			}
			// Backward is a fixpoint with GC safe points: everything held
			// across its calls must be referenced per the GC contract.
			m.IncRef(target)
			for _, care := range cares {
				m.IncRef(care)
			}
			for ci, care := range cares {
				want := m.IncRef(reach.Backward(n, target, care, reach.EngineMonolithic))
				for _, kind := range engineKinds[1:] {
					if got := reach.Backward(n, target, care, kind); got != want {
						t.Fatalf("care %d: %v backward differs from monolithic", ci, kind)
					}
				}
				m.DecRef(want)
			}
		})
	}
}
