package reach_test

// Property-style engine-equivalence tests: the monolithic, partitioned,
// and clustered image engines must compute identical successor and
// predecessor sets on every bundled Table-1 design, for every
// reachability ring, and Backward must agree across engines under
// non-trivial care sets.

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/designs"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/verilog"
)

func buildNet(t *testing.T, d *designs.Design, opts network.Options) *network.Network {
	t.Helper()
	dsg, err := verilog.CompileString(d.Verilog, d.Name+".v", d.Top)
	if err != nil {
		t.Fatalf("%s: compile: %v", d.Name, err)
	}
	flat, err := blifmv.Flatten(dsg)
	if err != nil {
		t.Fatalf("%s: flatten: %v", d.Name, err)
	}
	n, err := network.Build(flat, opts)
	if err != nil {
		t.Fatalf("%s: build: %v", d.Name, err)
	}
	return n
}

var engineKinds = []reach.EngineKind{
	reach.EngineMonolithic,
	reach.EnginePartitioned,
	reach.EngineClustered,
}

func TestEnginesAgreeOnAllDesigns(t *testing.T) {
	all, err := designs.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range all {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n := buildNet(t, d, network.Options{})
			m := n.Manager()
			res := reach.Forward(n, reach.Options{KeepRings: true})
			if !res.Converged {
				t.Fatal("reachability diverged")
			}
			// Every ring on small designs; evenly-sampled rings on large
			// ones (the partitioned preimage of a wide mdlc2 ring costs
			// seconds, and adjacent rings exercise the same code paths).
			sets := []bdd.Ref{n.Init, res.Reached}
			const maxRings = 6
			step := 1
			if len(res.Rings) > maxRings {
				step = (len(res.Rings) + maxRings - 1) / maxRings
			}
			for i := 0; i < len(res.Rings); i += step {
				sets = append(sets, res.Rings[i])
			}
			mono := reach.Engine(n, reach.EngineMonolithic)
			part := reach.Engine(n, reach.EnginePartitioned)
			clus := reach.Engine(n, reach.EngineClustered)
			for i, s := range sets {
				img := mono.Image(s)
				if got := part.Image(s); got != img {
					t.Fatalf("set %d: partitioned image differs", i)
				}
				if got := clus.Image(s); got != img {
					t.Fatalf("set %d: clustered image differs", i)
				}
				pre := mono.Preimage(s)
				if got := part.Preimage(s); got != pre {
					t.Fatalf("set %d: partitioned preimage differs", i)
				}
				if got := clus.Preimage(s); got != pre {
					t.Fatalf("set %d: clustered preimage differs", i)
				}
			}
			// A SkipMonolithic network never builds T; EngineAuto resolves
			// to clustered and must reach exactly the same state count.
			np := buildNet(t, d, network.Options{SkipMonolithic: true})
			if np.TBuilt() {
				t.Fatal("SkipMonolithic network built T")
			}
			rp := reach.Forward(np, reach.Options{})
			if np.TBuilt() {
				t.Fatal("clustered reachability multiplied out T")
			}
			if got, want := np.NumStates(rp.Reached), n.NumStates(res.Reached); got != want {
				t.Fatalf("clustered reachability: %v states, want %v", got, want)
			}
			_ = m
		})
	}
}

func TestBackwardEnginesAgreeWithCareSets(t *testing.T) {
	all, err := designs.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range all {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n := buildNet(t, d, network.Options{})
			m := n.Manager()
			res := reach.Forward(n, reach.Options{KeepRings: true})
			target := res.Rings[len(res.Rings)-1]
			// Non-trivial care sets: everything, the reachable set, and
			// the reachable set minus an intermediate ring (cutting paths).
			cares := []bdd.Ref{bdd.True, res.Reached}
			if len(res.Rings) > 2 {
				cares = append(cares, m.Diff(res.Reached, res.Rings[len(res.Rings)/2]))
			}
			for ci, care := range cares {
				want := reach.Backward(n, target, care, reach.EngineMonolithic)
				for _, kind := range engineKinds[1:] {
					if got := reach.Backward(n, target, care, kind); got != want {
						t.Fatalf("care %d: %v backward differs from monolithic", ci, kind)
					}
				}
			}
		})
	}
}
