// Package abstract implements automatic abstraction (paper §8 item 2:
// "Very large designs have to be abstracted manually for tractability of
// the verification algorithms. Research is in progress on how to achieve
// automatic abstractions.") via cone-of-influence reduction: latches and
// logic that cannot influence the observed variables are removed before
// the symbolic network is built.
//
// Cone-of-influence is an exact abstraction — the reduced model is
// bisimilar to the original over the observed variables — so every
// verdict (CTL and language containment alike) is preserved, while the
// state space shrinks by the removed latches.
package abstract

import (
	"fmt"

	"hsis/internal/blifmv"
)

// Result reports one reduction.
type Result struct {
	Model          *blifmv.Model
	KeptLatches    int
	DroppedLatches int
	KeptTables     int
	DroppedTables  int
}

// ConeOfInfluence reduces a flat model to the logic that can influence
// the given observed variables (property support). Observed names must
// exist in the model.
func ConeOfInfluence(flat *blifmv.Model, observed []string) (*Result, error) {
	if len(flat.Subckts) > 0 {
		return nil, fmt.Errorf("abstract: model must be flattened first")
	}
	// driver index: variable -> the table/latch driving it
	tableOf := map[string]*blifmv.Table{}
	for _, t := range flat.Tables {
		for _, o := range t.Outputs {
			tableOf[o] = t
		}
	}
	latchOf := map[string]*blifmv.Latch{}
	for _, l := range flat.Latches {
		latchOf[l.Output] = l
	}

	// backward closure from the observed variables
	inCone := map[string]bool{}
	var work []string
	add := func(n string) {
		if !inCone[n] {
			inCone[n] = true
			work = append(work, n)
		}
	}
	for _, o := range observed {
		if _, ok := flat.Vars[o]; !ok {
			return nil, fmt.Errorf("abstract: unknown observed variable %q", o)
		}
		add(o)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if t, ok := tableOf[n]; ok {
			// the whole table is kept: all its columns join the cone
			for _, in := range t.Inputs {
				add(in)
			}
			for _, out := range t.Outputs {
				add(out)
			}
		}
		if l, ok := latchOf[n]; ok {
			add(l.Input)
		}
	}

	out := &blifmv.Model{
		Name: flat.Name + "_coi",
		Vars: map[string]*blifmv.Variable{},
	}
	res := &Result{Model: out}
	for _, n := range flat.VarDecl {
		if !inCone[n] {
			continue
		}
		v := flat.Vars[n]
		out.Vars[n] = &blifmv.Variable{Name: n, Card: v.Card, Values: append([]string(nil), v.Values...)}
		out.VarDecl = append(out.VarDecl, n)
	}
	for _, in := range flat.Inputs {
		if inCone[in] {
			out.Inputs = append(out.Inputs, in)
		}
	}
	seenTable := map[*blifmv.Table]bool{}
	for _, t := range flat.Tables {
		kept := false
		for _, o := range t.Outputs {
			if inCone[o] {
				kept = true
			}
		}
		if !kept || seenTable[t] {
			if !seenTable[t] {
				res.DroppedTables++
				seenTable[t] = true
			}
			continue
		}
		seenTable[t] = true
		out.Tables = append(out.Tables, t)
		res.KeptTables++
	}
	for _, l := range flat.Latches {
		if !inCone[l.Output] {
			res.DroppedLatches++
			continue
		}
		out.Latches = append(out.Latches, l)
		res.KeptLatches++
	}
	for ns, byVar := range flat.Attrs {
		for v, val := range byVar {
			if inCone[v] {
				out.SetAttr(ns, v, val)
			}
		}
	}
	if len(out.Latches) == 0 {
		return nil, fmt.Errorf("abstract: cone of %v contains no latches", observed)
	}
	return res, nil
}

// SupportOf lists the design variables a set of observed names plus any
// extra property atoms depend on; a convenience wrapper for callers that
// collect atoms from formulas.
func SupportOf(names ...string) []string { return names }
