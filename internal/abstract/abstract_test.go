package abstract

import (
	"strings"
	"testing"

	"hsis/internal/blifmv"
	"hsis/internal/ctl"
	"hsis/internal/designs"
	"hsis/internal/network"
	"hsis/internal/reach"
	"hsis/internal/verilog"
)

func flatten(t *testing.T, src string) *blifmv.Model {
	t.Helper()
	d, err := blifmv.ParseString(src, "test.mv")
	if err != nil {
		t.Fatal(err)
	}
	m, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// two independent counters; only c is observed
const twoCounters = `
.model two
.mv c,nc 4
.mv d,nd 4
.table c nc
0 1
1 2
2 3
3 0
.table d nd
0 {0,1}
1 {1,2}
2 {2,3}
3 {3,0}
.latch nc c
.reset c
0
.latch nd d
.reset d
0
.end
`

func TestCOIDropsIndependentLogic(t *testing.T) {
	flat := flatten(t, twoCounters)
	res, err := ConeOfInfluence(flat, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptLatches != 1 || res.DroppedLatches != 1 {
		t.Fatalf("latches: kept %d dropped %d", res.KeptLatches, res.DroppedLatches)
	}
	if res.Model.Vars["d"] != nil {
		t.Fatal("d should be gone")
	}
	// verdicts preserved, state space smaller
	nFull, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nCOI, err := network.Build(res.Model, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := nFull.NumStates(reach.Forward(nFull, reach.Options{}).Reached)
	small := nCOI.NumStates(reach.Forward(nCOI, reach.Options{}).Reached)
	if full != 16 || small != 4 {
		t.Fatalf("states: full %v, coi %v", full, small)
	}
	f := ctl.MustParse("AG(c=0 -> AX c=1)")
	for _, n := range []*network.Network{nFull, nCOI} {
		c := ctl.NewForNetwork(n, nil)
		v, err := c.Check(f)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Pass {
			t.Fatal("property should pass on both")
		}
	}
}

func TestCOIKeepsDependencies(t *testing.T) {
	// c's next value depends on d: observing c must keep d.
	const coupled = `
.model coupled
.table d c nc
0 0 0
0 1 1
1 0 1
1 1 0
.table d nd
0 1
1 0
.latch nc c
.reset c
0
.latch nd d
.reset d
0
.end
`
	flat := flatten(t, coupled)
	res, err := ConeOfInfluence(flat, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptLatches != 2 {
		t.Fatalf("d influences c and must be kept; kept = %d", res.KeptLatches)
	}
}

func TestCOIErrors(t *testing.T) {
	flat := flatten(t, twoCounters)
	if _, err := ConeOfInfluence(flat, []string{"zz"}); err == nil {
		t.Fatal("unknown observed variable should error")
	}
	// observing only a free input yields no latches
	const inputOnly = `
.model io
.inputs i
.table i c nc
- - 1
.latch nc c
.reset c
0
.end
`
	f2 := flatten(t, inputOnly)
	if _, err := ConeOfInfluence(f2, []string{"i"}); err == nil ||
		!strings.Contains(err.Error(), "no latches") {
		t.Fatalf("want no-latches error, got %v", err)
	}
}

// The headline use: mdlc2's channel-0 property needs none of channel 1.
func TestCOIOnMdlc2(t *testing.T) {
	d, err := designs.Get("mdlc2")
	if err != nil {
		t.Fatal(err)
	}
	design, err := verilog.CompileString(d.Verilog, "mdlc2.v", d.Top)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(design)
	if err != nil {
		t.Fatal(err)
	}
	// fin0's cone: channel 0 plus the bus arbitration — which reads
	// channel 1's TX state (want1), so t1 stays but channel 1's receiver
	// and counters must go.
	res, err := ConeOfInfluence(flat, ctl.Atoms(ctl.MustParse("AG(AF fin0=1)")))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedLatches == 0 {
		t.Fatal("COI should drop channel-1 latches unrelated to arbitration")
	}
	t.Logf("mdlc2 COI: kept %d latches, dropped %d", res.KeptLatches, res.DroppedLatches)
	// verdict preserved
	nCOI, err := network.Build(res.Model, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := ctl.NewForNetwork(nCOI, nil)
	// without fairness AF fails on both (retry loops) — compare verdicts
	nFull, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cFull := ctl.NewForNetwork(nFull, nil)
	f := ctl.MustParse("AG(AF fin0=1)")
	v1, err := c.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := cFull.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Pass != v2.Pass {
		t.Fatalf("COI changed the verdict: %v vs %v", v1.Pass, v2.Pass)
	}
}

func TestAttrsSurviveCOI(t *testing.T) {
	flat := flatten(t, twoCounters)
	flat.SetAttr("src", "c", "a.v:1")
	flat.SetAttr("src", "d", "a.v:2")
	res, err := ConeOfInfluence(flat, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Attr("src", "c") != "a.v:1" {
		t.Fatal("kept attr lost")
	}
	if res.Model.Attr("src", "d") != "" {
		t.Fatal("dropped variable's attr retained")
	}
}
