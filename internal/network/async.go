package network

import (
	"fmt"
	"sync/atomic"

	"hsis/internal/bdd"
	"hsis/internal/mdd"
	"hsis/internal/quant"
)

// Synchrony implements the extended c/s concurrency model of paper §4:
// "a synchrony tree is a tree whose leaves are the latches, and whose
// intermediate nodes are labeled with A (for asynchronous) and S (for
// synchronous). The semantics is that at every point in time only a
// subset of latches change their values. The subset to be updated is any
// set of latches that can be reached using the following procedure:
// start at the root, and at each synchronous node, choose all branches,
// whereas at each asynchronous node, choose one branch randomly."
// Latches outside the chosen subset hold their values.
type Synchrony struct {
	// Async marks an A node (choose one child); false is an S node
	// (choose all children).
	Async bool
	// Children of an interior node.
	Children []*Synchrony
	// Latches names latch outputs at a leaf (Children must be empty).
	Latches []string
}

// Leaf builds a leaf grouping the given latch outputs.
func Leaf(latches ...string) *Synchrony { return &Synchrony{Latches: latches} }

// Sync builds a synchronous interior node.
func Sync(children ...*Synchrony) *Synchrony { return &Synchrony{Children: children} }

// Async builds an asynchronous interior node.
func Async(children ...*Synchrony) *Synchrony {
	return &Synchrony{Async: true, Children: children}
}

// Interleaving is the fully asynchronous tree over all of the model's
// latches: exactly one latch updates per step — the classic interleaved
// shared-memory semantics the paper maps onto the c/s model.
func Interleaving(n *Network) *Synchrony {
	root := &Synchrony{Async: true}
	for _, l := range n.Latches() {
		root.Children = append(root.Children, Leaf(l.Src.Output))
	}
	return root
}

// asyncCounter disambiguates selector-variable names. Atomic: the
// daemon builds independent workspaces concurrently.
var asyncCounter atomic.Int64

// BuildAsyncT compiles the extended-c/s transition relation for the
// given synchrony tree over this network: the latches selected by the
// tree update according to the synchronous relations while the rest
// hold. Selector choices at A nodes are existentially quantified, so
// the result is again a relation over the PS/NS rails, usable with the
// same reachability and verification engines (paper §8 item 5: "it may
// be computationally advantageous to work on asynchronous
// specifications directly").
//
// The network must have been built with SkipMonolithic or not — the
// synchronous T is untouched; the caller receives a separate relation
// and can install it with SetT.
func (n *Network) BuildAsyncT(tree *Synchrony) (bdd.Ref, error) {
	m := n.mgr
	byOutput := make(map[string]*Latch, len(n.latches))
	for _, l := range n.latches {
		byOutput[l.Src.Output] = l
	}
	// selected(l): BDD over fresh selector variables, per latch.
	asyncID := asyncCounter.Add(1)
	selected := make(map[*Latch]bdd.Ref, len(n.latches))
	var selectorBits []int
	var walk func(t *Synchrony, path bdd.Ref) error
	selN := 0
	walk = func(t *Synchrony, path bdd.Ref) error {
		if len(t.Latches) > 0 {
			if len(t.Children) > 0 {
				return fmt.Errorf("network: synchrony node has both latches and children")
			}
			for _, name := range t.Latches {
				l := byOutput[name]
				if l == nil {
					return fmt.Errorf("network: synchrony tree names unknown latch %q", name)
				}
				if _, dup := selected[l]; dup {
					return fmt.Errorf("network: latch %q appears twice in the synchrony tree", name)
				}
				selected[l] = path
			}
			return nil
		}
		if len(t.Children) == 0 {
			return fmt.Errorf("network: empty synchrony node")
		}
		if !t.Async {
			for _, c := range t.Children {
				if err := walk(c, path); err != nil {
					return err
				}
			}
			return nil
		}
		// A node: a fresh selector variable picks one child.
		selN++
		sel := n.space.NewVar(fmt.Sprintf("_sel%d_%d", asyncID, selN), len(t.Children))
		selectorBits = append(selectorBits, sel.Bits()...)
		for i, c := range t.Children {
			if err := walk(c, m.And(path, sel.Eq(i))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tree, bdd.True); err != nil {
		return bdd.False, err
	}
	for _, l := range n.latches {
		if _, ok := selected[l]; !ok {
			return bdd.False, fmt.Errorf("network: latch %q missing from the synchrony tree", l.Src.Output)
		}
	}

	// Per-latch update constraint: when selected, the next state follows
	// the latch input; otherwise it holds. The synchronous NS rail may
	// reuse latch-input variables, so updating latches keep their usual
	// constraint vacuously (y IS the input); held latches need an
	// auxiliary next-state variable y', with the original input value
	// quantified away.
	aux := make([]*mdd.Var, len(n.latches))
	var auxConjs []quant.Conjunct
	var quantifyExtra []int
	for i, l := range n.latches {
		y := n.space.NewVar(fmt.Sprintf("_async%d_ns_%d", asyncID, i), l.PS.Card())
		aux[i] = y
		inVar := l.NS // synchronous next-state carrier (input or aux)
		upd := m.And(selected[l], y.EqVar(inVar))
		hold := m.And(m.Not(selected[l]), y.EqVar(l.PS))
		cons := m.Or(upd, hold)
		sup := append(append(append([]int(nil), y.Bits()...), inVar.Bits()...), l.PS.Bits()...)
		sup = append(sup, selectorBits...)
		auxConjs = append(auxConjs, quant.Conjunct{F: cons, Support: sup})
		quantifyExtra = append(quantifyExtra, inVar.Bits()...)
	}

	conjs := append(append([]quant.Conjunct(nil), n.conjuncts...), auxConjs...)
	qvars := append(append([]int(nil), n.nonState...), quantifyExtra...)
	qvars = append(qvars, selectorBits...)
	tAux := quant.AndExists(m, conjs, qvars, n.heur)

	// Map the auxiliary rail back onto the canonical NS rail.
	perm := n.space.Permutation(aux, n.nsVars)
	return m.Permute(tAux, perm), nil
}

// SetT installs a replacement transition relation (e.g. an asynchronous
// one from BuildAsyncT). The initial states and rails are unchanged.
func (n *Network) SetT(t bdd.Ref) {
	n.mgr.DecRef(n.T)
	n.T = n.mgr.IncRef(t)
	n.tBuilt.Store(true)
}
