package network

// Isomorphism-exploiting image compilation: real designs are full of
// replicated components (philos' N philosophers, scheduler's cycler
// cells), and the clustered pipeline pays the full cluster-merge cost
// once per replica even though the replicas compute the same function
// of renamed variables. This file detects replicated latch cones
// structurally — a canonical traversal of each latch's next-state logic
// DAG, hashed with all signal names abstracted away — groups latches
// whose cones are isomorphic, compiles the cluster set once for a
// representative per class, and instantiates every other replica by BDD
// variable permutation (bdd.Permuter, near-free against a warm memo).
// One global quantification schedule is then compiled over all
// instantiated clusters plus the non-replicated remainder.
//
// Detection is purely structural and order-independent, so it is done
// once per network; the compiled plans are epoch-stamped like the
// clustered ones and re-derived after a reorder session. Candidate
// classes are verified semantically before use: a member is accepted
// only if permuting every owned conjunct of the representative yields
// exactly the member's conjunct, so a false structural match degrades
// to the shared pool rather than corrupting the image.

import (
	"fmt"
	"sort"
	"strings"

	"hsis/internal/blifmv"
	"hsis/internal/mdd"
	"hsis/internal/quant"
	"hsis/internal/telemetry"
)

// cone is the canonical traversal of one latch's next-state logic.
type cone struct {
	shape   string   // canonical serialization with names abstracted away
	signals []string // distinct signals in discovery order
	tables  []int    // model table indices in expansion order (positions)
}

// IsoClass is one equivalence class of two or more isomorphic latch
// cones: the representative's conjuncts are clustered once, the other
// members reuse the result through a variable permutation.
type IsoClass struct {
	// Latches lists the member latch indices, representative first.
	Latches []int
	// sigmas[k] maps the representative's BDD variables onto member k's
	// (sigmas[0] is nil — the representative is itself).
	sigmas [][]int
	// conjs[k] lists the conjunct indices owned by member k.
	conjs [][]int
	// local lists the representative's class-local non-state variables:
	// every occurrence is inside the representative's own conjuncts, so
	// clustering may pre-quantify them.
	local []int
}

// Members returns the number of replicas in the class.
func (c *IsoClass) Members() int { return len(c.Latches) }

// isoState caches detection results (immutable once computed) and the
// compiled iso pipeline (epoch-stamped, rebuilt after reorders).
type isoState struct {
	detected    bool
	classes     []*IsoClass
	shared      []int // conjunct indices owned by no class member
	sharedLocal []int

	built    bool
	epoch    int
	clusters []quant.Conjunct // every instantiated cluster; refs held
	imgPlan  *quant.CompiledPlan
	prePlan  *quant.CompiledPlan
}

// IsoSummary reports detection results for stats output.
type IsoSummary struct {
	Classes    int   // equivalence classes with ≥2 members
	Replicated int   // latches covered by those classes
	Sizes      []int // member count per class, largest first
}

// coneOf computes the canonical cone of latch li: breadth-first from
// the latch's next-state input, expanding through defining tables and
// stopping at present-state variables and primary inputs. The shape
// string abstracts signal names (only table structure, cardinalities,
// boundary kinds, and revisit positions remain), so isomorphic cones
// collide and nothing else should.
func (n *Network) coneOf(li int, drivenBy map[string][2]int, latchOf map[string]int, shapes []string) *cone {
	l := n.latches[li]
	c := &cone{}
	seen := map[string]int{}
	var sh strings.Builder
	queue := []string{l.Src.Input}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if idx, ok := seen[s]; ok {
			fmt.Fprintf(&sh, "ref:%d;", idx)
			continue
		}
		seen[s] = len(c.signals)
		c.signals = append(c.signals, s)
		if lj, ok := latchOf[s]; ok {
			self := 0
			if lj == li {
				self = 1
			}
			fmt.Fprintf(&sh, "ps:%d:%d;", self, n.model.Var(s).Card)
			continue
		}
		if d, ok := drivenBy[s]; ok {
			ti, oi := d[0], d[1]
			fmt.Fprintf(&sh, "tbl:%d:%s;", oi, shapes[ti])
			c.tables = append(c.tables, ti)
			queue = append(queue, n.model.Tables[ti].Inputs...)
			continue
		}
		fmt.Fprintf(&sh, "in:%d;", n.model.Var(s).Card)
	}
	c.shape = sh.String()
	return c
}

// tableShape serializes a table's structure with column names replaced
// by cardinalities and positions.
func tableShape(m *blifmv.Model, t *blifmv.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d>%d[", len(t.Inputs), len(t.Outputs))
	for _, in := range t.Inputs {
		fmt.Fprintf(&b, "%d,", m.Var(in).Card)
	}
	b.WriteString("][")
	for _, o := range t.Outputs {
		fmt.Fprintf(&b, "%d,", m.Var(o).Card)
	}
	b.WriteString("]")
	vs := func(s blifmv.ValueSet) {
		if s.All {
			b.WriteString("-")
			return
		}
		for _, v := range s.Vals {
			fmt.Fprintf(&b, "%d.", v)
		}
	}
	for _, r := range t.Rows {
		for _, in := range r.In {
			vs(in)
			b.WriteString(" ")
		}
		b.WriteString("|")
		for _, o := range r.Out {
			if o.EqInput >= 0 {
				fmt.Fprintf(&b, "=%d ", o.EqInput)
			} else {
				vs(o.Set)
				b.WriteString(" ")
			}
		}
		b.WriteString(";")
	}
	if t.Default != nil {
		b.WriteString("D:")
		for _, s := range t.Default {
			vs(s)
			b.WriteString(" ")
		}
	}
	return b.String()
}

// alignMember builds the variable permutation mapping the
// representative's cone onto a member's by positional alignment, then
// verifies it semantically: every cone table and latch-extra conjunct
// of the representative must permute to exactly the member's. Returns
// nil when the member is not a true replica.
func (n *Network) alignMember(cones []*cone, repLi, memLi int) []int {
	rep, mem := cones[repLi], cones[memLi]
	if len(rep.signals) != len(mem.signals) || len(rep.tables) != len(mem.tables) {
		return nil
	}
	if len(n.latchConj[repLi]) != len(n.latchConj[memLi]) {
		return nil
	}
	m := n.mgr
	sigma := make([]int, m.NumVars())
	for i := range sigma {
		sigma[i] = i
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	mapVar := func(a, b *mdd.Var) bool {
		ab, bb := a.Bits(), b.Bits()
		if len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if x, ok := fwd[ab[i]]; ok {
				if x != bb[i] {
					return false
				}
				continue
			}
			if y, ok := rev[bb[i]]; ok && y != ab[i] {
				return false
			}
			fwd[ab[i]] = bb[i]
			rev[bb[i]] = ab[i]
			sigma[ab[i]] = bb[i]
		}
		return true
	}
	for j := range rep.signals {
		av, bv := n.space.ByName(rep.signals[j]), n.space.ByName(mem.signals[j])
		if av == nil || bv == nil || !mapVar(av, bv) {
			return nil
		}
	}
	// The latch's own rails must map onto each other (the next-state
	// variable may be auxiliary and absent from the cone signals).
	rl, ml := n.latches[repLi], n.latches[memLi]
	if !mapVar(rl.PS, ml.PS) || !mapVar(rl.NS, ml.NS) {
		return nil
	}
	// Semantic gate: permuting each representative conjunct must yield
	// the member's counterpart node for node.
	for j := range rep.tables {
		rf := n.conjuncts[n.tableConj[rep.tables[j]]].F
		mf := n.conjuncts[n.tableConj[mem.tables[j]]].F
		if m.Permute(rf, sigma) != mf {
			return nil
		}
	}
	for j, rc := range n.latchConj[repLi] {
		mc := n.latchConj[memLi][j]
		if m.Permute(n.conjuncts[rc].F, sigma) != n.conjuncts[mc].F {
			return nil
		}
	}
	return sigma
}

// detectIso partitions the latches into isomorphism classes and the
// conjuncts into per-member sets plus a shared pool. Caller holds isoMu.
func (n *Network) detectIso() {
	st := n.iso
	st.detected = true

	drivenBy := map[string][2]int{}
	shapes := make([]string, len(n.model.Tables))
	for ti, t := range n.model.Tables {
		shapes[ti] = tableShape(n.model, t)
		for oi, o := range t.Outputs {
			drivenBy[o] = [2]int{ti, oi}
		}
	}
	latchOf := map[string]int{}
	for li, l := range n.latches {
		latchOf[l.Src.Output] = li
	}
	cones := make([]*cone, len(n.latches))
	for li := range n.latches {
		cones[li] = n.coneOf(li, drivenBy, latchOf, shapes)
	}

	// Group by shape, preserving latch order; verify each candidate
	// member against the group's first latch (the representative).
	byShape := map[string][]int{}
	var shapeOrder []string
	for li, c := range cones {
		if _, ok := byShape[c.shape]; !ok {
			shapeOrder = append(shapeOrder, c.shape)
		}
		byShape[c.shape] = append(byShape[c.shape], li)
	}
	for _, shape := range shapeOrder {
		group := byShape[shape]
		if len(group) < 2 {
			continue
		}
		cls := &IsoClass{Latches: []int{group[0]}, sigmas: [][]int{nil}}
		for _, li := range group[1:] {
			if sigma := n.alignMember(cones, group[0], li); sigma != nil {
				cls.Latches = append(cls.Latches, li)
				cls.sigmas = append(cls.sigmas, sigma)
			}
		}
		if len(cls.Latches) >= 2 {
			st.classes = append(st.classes, cls)
		}
	}

	// Claim pass: walk each class's cone positions; a position is kept
	// only when every member's table at it is still unclaimed and the
	// members' tables are pairwise distinct — cones overlap (a wire can
	// feed two latches), and dropping the position class-wide keeps the
	// per-member sets exact permutation images of each other. Dropped
	// tables fall to the shared pool unless another position claims them.
	type ownKey struct{ class, member int }
	var owners map[int]ownKey
	claim := func() {
		owners = make(map[int]ownKey, len(n.conjuncts))
		for ci, cls := range st.classes {
			cls.conjs = make([][]int, len(cls.Latches))
			npos := len(cones[cls.Latches[0]].tables)
			for pos := 0; pos < npos; pos++ {
				cjs := make([]int, len(cls.Latches))
				ok := true
				dup := map[int]bool{}
				for k, li := range cls.Latches {
					cj := n.tableConj[cones[li].tables[pos]]
					if _, claimed := owners[cj]; claimed || dup[cj] {
						ok = false
						break
					}
					dup[cj] = true
					cjs[k] = cj
				}
				if !ok {
					continue
				}
				for k, cj := range cjs {
					owners[cj] = ownKey{ci, k}
					cls.conjs[k] = append(cls.conjs[k], cj)
				}
			}
			// Latch extras (auxiliary equality, domain constraint) belong to
			// their latch unconditionally.
			for k, li := range cls.Latches {
				for _, cj := range n.latchConj[li] {
					owners[cj] = ownKey{ci, k}
					cls.conjs[k] = append(cls.conjs[k], cj)
				}
			}
		}
	}
	// A class is only instantiable by permutation if each member's sigma
	// is injective on the union of the representative's owned conjunct
	// supports: Permute distributes over the cluster ANDs exactly when no
	// two support variables collapse onto one. A colliding class is
	// demoted wholesale to the shared pool, and the claim pass re-runs
	// because its freed tables may belong to another class's cones.
	for {
		claim()
		drop := -1
	scan:
		for ci, cls := range st.classes {
			repVars := map[int]bool{}
			for _, cj := range cls.conjs[0] {
				for _, v := range n.conjuncts[cj].Support {
					repVars[v] = true
				}
			}
			for k := 1; k < len(cls.Latches); k++ {
				hit := map[int]int{}
				for v := range repVars {
					w := cls.sigmas[k][v]
					if u, ok := hit[w]; ok && u != v {
						drop = ci
						break scan
					}
					hit[w] = v
				}
			}
		}
		if drop < 0 {
			break
		}
		st.classes = append(st.classes[:drop], st.classes[drop+1:]...)
	}
	for cj := range n.conjuncts {
		if _, claimed := owners[cj]; !claimed {
			st.shared = append(st.shared, cj)
		}
	}

	// Locality: a non-state variable is class-local to a member when
	// every conjunct mentioning it is that member's, and the property
	// must mirror across the whole class for pre-quantification during
	// representative clustering to be sound for every replica.
	nonState := make(map[int]bool, len(n.nonState))
	for _, v := range n.nonState {
		nonState[v] = true
	}
	varOwners := map[int]map[ownKey]bool{}
	sharedKey := ownKey{-1, -1}
	for cj, c := range n.conjuncts {
		o, claimed := owners[cj]
		if !claimed {
			o = sharedKey
		}
		for _, v := range c.Support {
			if varOwners[v] == nil {
				varOwners[v] = map[ownKey]bool{}
			}
			varOwners[v][o] = true
		}
	}
	soleOwner := func(v int, o ownKey) bool {
		os := varOwners[v]
		return len(os) == 1 && os[o]
	}
	for ci, cls := range st.classes {
		for _, cj := range cls.conjs[0] {
			for _, v := range n.conjuncts[cj].Support {
				if !nonState[v] || !soleOwner(v, ownKey{ci, 0}) {
					continue
				}
				mirrored := true
				for k := 1; k < len(cls.Latches); k++ {
					if !soleOwner(cls.sigmas[k][v], ownKey{ci, k}) {
						mirrored = false
						break
					}
				}
				if mirrored {
					cls.local = append(cls.local, v)
				}
			}
		}
		sort.Ints(cls.local)
		cls.local = dedupInts(cls.local)
	}
	for _, cj := range st.shared {
		for _, v := range n.conjuncts[cj].Support {
			if nonState[v] && soleOwner(v, sharedKey) {
				st.sharedLocal = append(st.sharedLocal, v)
			}
		}
	}
	sort.Ints(st.sharedLocal)
	st.sharedLocal = dedupInts(st.sharedLocal)

	if t := n.Manager().Telemetry(); t != nil {
		repl := 0
		for _, cls := range st.classes {
			repl += len(cls.Latches)
		}
		t.Emit("network.iso.detect",
			telemetry.Int("classes", len(st.classes)),
			telemetry.Int("replicated_latches", repl),
			telemetry.Int("latches", len(n.latches)),
			telemetry.Int("shared_conjuncts", len(st.shared)))
	}
}

// ensureIsoDetect runs detection once; cheap relative to any image work
// (one model traversal plus small verification permutes per candidate).
func (n *Network) ensureIsoDetect() *isoState {
	n.isoMu.Lock()
	defer n.isoMu.Unlock()
	if n.iso == nil {
		n.iso = &isoState{}
	}
	if !n.iso.detected {
		n.detectIso()
	}
	return n.iso
}

// ensureIsoPlans compiles (or, after a reorder session, recompiles) the
// iso pipeline: per class, cluster the representative's conjuncts once
// and instantiate every replica by permutation; cluster the shared pool
// normally; then compile one global quantification schedule per
// direction over all instantiated clusters.
func (n *Network) ensureIsoPlans() *isoState {
	n.isoMu.Lock()
	defer n.isoMu.Unlock()
	if n.iso == nil {
		n.iso = &isoState{}
	}
	st := n.iso
	if !st.detected {
		n.detectIso()
	}
	if len(st.classes) == 0 {
		return st
	}
	m := n.mgr
	epoch := m.ReorderCount()
	if st.built && st.epoch == epoch {
		return st
	}
	if st.built {
		st.imgPlan.Release(m)
		st.prePlan.Release(m)
		for _, c := range st.clusters {
			m.DecRef(c.F)
		}
		st.clusters = nil
	}
	t := m.Telemetry()
	var all []quant.Conjunct
	for ci, cls := range st.classes {
		var sp telemetry.Span
		if t != nil {
			sp = t.Start("network.iso.class")
		}
		permBefore := m.Stats().PermCalls
		repConjs := make([]quant.Conjunct, 0, len(cls.conjs[0]))
		for _, cj := range cls.conjs[0] {
			repConjs = append(repConjs, n.conjuncts[cj])
		}
		repClusters := quant.Clusters(m, repConjs, cls.local, n.clusterLimit)
		all = append(all, repClusters...)
		for k := 1; k < len(cls.Latches); k++ {
			p := m.NewPermuter(cls.sigmas[k])
			for _, c := range repClusters {
				all = append(all, quant.Conjunct{
					F:       p.Permute(c.F),
					Support: mapSupport(c.Support, cls.sigmas[k]),
				})
			}
		}
		if t != nil {
			sp.End(telemetry.Int("class", ci),
				telemetry.Int("members", len(cls.Latches)),
				telemetry.Int("rep_clusters", len(repClusters)),
				telemetry.I64("perm_calls", int64(m.Stats().PermCalls-permBefore)))
		}
	}
	if len(st.shared) > 0 {
		sharedConjs := make([]quant.Conjunct, 0, len(st.shared))
		for _, cj := range st.shared {
			sharedConjs = append(sharedConjs, n.conjuncts[cj])
		}
		all = append(all, quant.Clusters(m, sharedConjs, st.sharedLocal, n.clusterLimit)...)
	}
	for _, c := range all {
		m.IncRef(c.F)
	}
	imgQ := append(append([]int(nil), n.nonState...), n.psBits...)
	preQ := append(append([]int(nil), n.nonState...), n.nsBits...)
	st.imgPlan = quant.Compile(m, all, n.psBits, imgQ)
	st.prePlan = quant.Compile(m, all, n.nsBits, preQ)
	st.imgPlan.Retain(m)
	st.prePlan.Retain(m)
	st.clusters = all
	st.built = true
	st.epoch = epoch
	return st
}

func mapSupport(sup, sigma []int) []int {
	out := make([]int, len(sup))
	for i, v := range sup {
		out[i] = sigma[v]
	}
	sort.Ints(out)
	return out
}

// IsoAvailable reports whether the network has at least one class of
// two or more isomorphic latch cones (running detection on first call).
func (n *Network) IsoAvailable() bool {
	return len(n.ensureIsoDetect().classes) > 0
}

// IsoWorthwhile reports whether the iso pipeline is likely to beat the
// plain clustered one: each class saves members−1 cluster compilations,
// but splitting the conjuncts into per-member sets also constrains the
// cluster merge, so a design with only a couple of replicated pairs
// (mdlc2: three classes of two) pays more in worse clusters than it
// saves in compiles. Auto-selection demands a few compiles actually
// saved; an explicit EngineIso request overrides this.
func (n *Network) IsoWorthwhile() bool {
	saved := 0
	for _, cls := range n.ensureIsoDetect().classes {
		saved += len(cls.Latches) - 1
	}
	return saved >= 4
}

// IsoImagePlan returns the isomorphism-compiled image schedule, or nil
// when the network has no replication to exploit.
func (n *Network) IsoImagePlan() *quant.CompiledPlan {
	return n.ensureIsoPlans().imgPlan
}

// IsoPreimagePlan is the preimage counterpart of IsoImagePlan.
func (n *Network) IsoPreimagePlan() *quant.CompiledPlan {
	return n.ensureIsoPlans().prePlan
}

// IsoSummaryInfo reports detection results (classes sorted largest
// first) for stats and CLI output.
func (n *Network) IsoSummaryInfo() IsoSummary {
	st := n.ensureIsoDetect()
	s := IsoSummary{Classes: len(st.classes)}
	for _, cls := range st.classes {
		s.Replicated += len(cls.Latches)
		s.Sizes = append(s.Sizes, len(cls.Latches))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(s.Sizes)))
	return s
}

// IsoClasses returns the detected equivalence classes (read-only).
func (n *Network) IsoClasses() []*IsoClass {
	return n.ensureIsoDetect().classes
}
