// Package network implements the combinational/sequential (c/s)
// concurrency model of BLIF-MV (paper §4): a flat model becomes a set of
// MDD variables, one relation BDD per table, and a product transition
// relation T(x, y) over present-state (x) and next-state (y) rails,
// obtained by conjoining all relations and existentially quantifying the
// non-state variables with an early-quantification schedule.
//
// The next-state rail reuses each latch's input variable where possible
// (the latch transfers its input to its output at every clock tick);
// when a latch input cannot serve as a next-state variable — it is
// shared between latches, or is itself a latch output — an auxiliary
// next-state variable plus an equality relation is introduced.
package network

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/mdd"
	"hsis/internal/order"
	"hsis/internal/quant"
	"hsis/internal/reorder"
	"hsis/internal/telemetry"
)

// Options configures symbolic compilation.
type Options struct {
	// Heuristic selects the early-quantification scheduler.
	Heuristic quant.Heuristic
	// Order optionally fixes the MDD variable creation order (variable
	// names of the flat model). Default: order.Compute.
	Order []string
	// SkipMonolithic leaves N.T unbuilt (False); reachability then uses
	// the partitioned relation via Conjuncts (Ablation F) or the
	// clustered plans.
	SkipMonolithic bool
	// NaiveQuantification disables early quantification and builds the
	// full conjunction before quantifying (Ablation A baseline).
	NaiveQuantification bool
	// ClusterLimit bounds the BDD size of one merged conjunct cluster in
	// the precompiled image pipeline (0 = quant.DefaultClusterLimit).
	ClusterLimit int
	// ExactOrder places the names in Order verbatim: a latch's next-state
	// variable is auto-created right after its output only when its name
	// is absent from Order, and names unknown to the model are skipped.
	// This is how an order saved after dynamic reordering is replayed.
	ExactOrder bool
	// AutoReorder arms growth-triggered sifting on the manager: when live
	// nodes grow past the adaptive threshold, the next reachability safe
	// point runs a converging block sift.
	AutoReorder bool
	// ReorderOpts tunes the automatic sift runs (growth bound and the
	// acceleration ablation switches); Converge is forced on.
	ReorderOpts reorder.Options
	// ReorderTrigger overrides the auto-sift growth trigger factor
	// (<= 1 keeps the default 2).
	ReorderTrigger float64
	// Telemetry, when non-nil, becomes the new manager's observability
	// scope (Manager.SetTelemetry) before any node is built, so even
	// construction-time GC and cache-growth events land in the right
	// per-job sink.
	Telemetry *telemetry.Scope
}

// Latch pairs a source latch with its present/next-state variables.
type Latch struct {
	Src *blifmv.Latch
	PS  *mdd.Var
	NS  *mdd.Var
	Aux bool // NS is an auxiliary variable tied to the latch input by an equality relation
}

// Network is the symbolic form of one flat model.
type Network struct {
	mgr   *bdd.Manager
	space *mdd.Space
	model *blifmv.Model

	latches []*Latch
	inputs  []*mdd.Var // primary inputs (free variables)

	conjuncts []quant.Conjunct // table relations + auxiliary equalities
	nonState  []int            // BDD variable IDs quantified out of T

	// Conjunct provenance, used by isomorphism detection to partition the
	// conjuncts by owning latch cone: tableConj[ti] is the conjunct index
	// of model table ti, latchConj[li] lists the extra conjunct indices
	// (auxiliary equality, domain constraint) of latch li.
	tableConj []int
	latchConj [][]int

	// Isomorphism-exploiting image pipeline (see iso.go), detected and
	// compiled lazily like the clustered plans.
	iso   *isoState
	isoMu sync.Mutex

	// Clustered image pipeline, compiled lazily on first use: the
	// conjuncts merged into size-bounded clusters, and one frozen
	// multiply-and-quantify plan per direction. The plans are stamped
	// with the manager's reorder epoch; after a sift session changes the
	// variable order the stale schedule (cluster sizes and step order
	// were tuned for the old order) is released and re-derived.
	clusters     []quant.Conjunct
	imgPlan      *quant.CompiledPlan
	prePlan      *quant.CompiledPlan
	planMu       sync.Mutex
	plansBuilt   bool
	planEpoch    int // Manager.ReorderCount() when the plans were compiled
	clusterLimit int

	// Reusable operand buffers for the per-call partitioned engine, so
	// ImagePartitioned/PreimagePartitioned allocate nothing per call.
	imgConjs, preConjs []quant.Conjunct
	imgQVars, preQVars []int

	psVars, nsVars []*mdd.Var
	psBits, nsBits []int
	perm           []int // BDD permutation swapping the PS and NS rails

	// T is the product transition relation over PS ∪ NS (bdd.False when
	// SkipMonolithic was set and EnsureT has not run). Init is the set
	// of initial states over PS.
	T    bdd.Ref
	Init bdd.Ref

	heur  quant.Heuristic
	naive bool

	// tMu serializes the lazy EnsureT build; tBuilt is atomic so
	// concurrent property checks may poll TBuilt without the lock.
	tMu    sync.Mutex
	tBuilt atomic.Bool
}

// Build compiles a flat model. The model must contain at least one latch
// (a purely combinational description has no state to verify).
func Build(flat *blifmv.Model, opts Options) (*Network, error) {
	if len(flat.Latches) == 0 {
		return nil, fmt.Errorf("network: model %q has no latches", flat.Name)
	}
	n := &Network{
		mgr:   bdd.New(),
		model: flat,
		heur:  opts.Heuristic,
	}
	if opts.Telemetry != nil {
		n.mgr.SetTelemetry(opts.Telemetry)
	}
	n.space = mdd.NewSpace(n.mgr)

	names := opts.Order
	if names == nil {
		names = order.Compute(flat)
	}

	// Decide the next-state variable name for each latch.
	latchByOutput := make(map[string]*blifmv.Latch, len(flat.Latches))
	for _, l := range flat.Latches {
		latchByOutput[l.Output] = l
	}
	nsName := make(map[*blifmv.Latch]string, len(flat.Latches))
	nsAux := make(map[*blifmv.Latch]bool, len(flat.Latches))
	claimed := make(map[string]bool)
	for _, l := range flat.Latches {
		usable := l.Input != l.Output && latchByOutput[l.Input] == nil && !claimed[l.Input]
		if usable {
			nsName[l] = l.Input
			claimed[l.Input] = true
		} else {
			nsName[l] = l.Output + "$ns"
			nsAux[l] = true
		}
	}

	// Create MDD variables in order; a latch output is immediately
	// followed by its next-state variable (interleaved rails, ref [1]).
	// Under ExactOrder the list is authoritative — auxiliary $ns names
	// appear in it explicitly (order.Snapshot records them), so the
	// auto-follow only fills in names the list does not place itself.
	inOrder := make(map[string]bool, len(names))
	if opts.ExactOrder {
		for _, name := range names {
			inOrder[name] = true
		}
	}
	makeVar := func(name string) *mdd.Var {
		if v := n.space.ByName(name); v != nil {
			return v
		}
		return n.space.NewVar(name, flat.Var(name).Card)
	}
	cardOf := func(name string) int {
		if l := latchByOutput[strings.TrimSuffix(name, "$ns")]; l != nil && nsName[l] == name {
			return flat.Var(l.Output).Card
		}
		if mv := flat.Var(name); mv != nil {
			return mv.Card
		}
		return 0
	}
	for _, name := range names {
		if n.space.ByName(name) != nil {
			continue
		}
		card := cardOf(name)
		if card == 0 {
			continue // unknown to this model (stale saved order): skip
		}
		n.space.NewVar(name, card)
		if l := latchByOutput[name]; l != nil && !inOrder[nsName[l]] {
			if n.space.ByName(nsName[l]) == nil {
				n.space.NewVar(nsName[l], card)
			}
		}
	}
	// Any variable missed by the ordering (defensive) and auxiliary NS
	// variables for latches whose output was absent from names.
	for _, l := range flat.Latches {
		makeVar(l.Output)
		if n.space.ByName(nsName[l]) == nil {
			n.space.NewVar(nsName[l], n.space.ByName(l.Output).Card())
		}
	}
	for vn := range flat.Vars {
		makeVar(vn)
	}

	// Record rails.
	for _, l := range flat.Latches {
		ps := n.space.ByName(l.Output)
		ns := n.space.ByName(nsName[l])
		n.latches = append(n.latches, &Latch{Src: l, PS: ps, NS: ns, Aux: nsAux[l]})
		n.psVars = append(n.psVars, ps)
		n.nsVars = append(n.nsVars, ns)
		n.psBits = append(n.psBits, ps.Bits()...)
		n.nsBits = append(n.nsBits, ns.Bits()...)
	}
	for _, in := range flat.Inputs {
		n.inputs = append(n.inputs, n.space.ByName(in))
	}
	n.perm = n.space.Permutation(n.psVars, n.nsVars)

	// Each latch's present/next-state pair sifts as one block: the
	// Permute-based rail swap is correct under any order, but keeping
	// the rails interleaved keeps it (and image computation) cheap.
	for _, l := range n.latches {
		n.mgr.GroupVars(append(append([]int(nil), l.PS.Bits()...), l.NS.Bits()...))
	}
	if opts.AutoReorder {
		ropts := opts.ReorderOpts
		ropts.Converge = true
		reorder.EnableAuto(n.mgr, opts.ReorderTrigger, 0, ropts)
	}

	// Non-state variables: everything not on the PS or NS rail.
	rail := make(map[int]bool, len(n.psBits)+len(n.nsBits))
	for _, b := range n.psBits {
		rail[b] = true
	}
	for _, b := range n.nsBits {
		rail[b] = true
	}
	for b := 0; b < n.mgr.NumVars(); b++ {
		if !rail[b] {
			n.nonState = append(n.nonState, b)
		}
	}

	// Relation conjuncts.
	for ti, t := range flat.Tables {
		rel, sup, err := n.tableRel(t)
		if err != nil {
			return nil, fmt.Errorf("network: table %d of %s: %w", ti, flat.Name, err)
		}
		n.tableConj = append(n.tableConj, len(n.conjuncts))
		n.conjuncts = append(n.conjuncts, quant.Conjunct{F: rel, Support: sup})
	}
	n.latchConj = make([][]int, len(n.latches))
	for li, l := range n.latches {
		if l.Aux {
			in := n.space.ByName(l.Src.Input)
			eq := l.NS.EqVar(in)
			n.latchConj[li] = append(n.latchConj[li], len(n.conjuncts))
			n.conjuncts = append(n.conjuncts, quant.Conjunct{
				F:       eq,
				Support: append(append([]int(nil), l.NS.Bits()...), in.Bits()...),
			})
		}
		// Keep next states inside the variable's domain even when the
		// latch input is an unconstrained primary input.
		if dom := l.NS.Domain(); dom != bdd.True {
			n.latchConj[li] = append(n.latchConj[li], len(n.conjuncts))
			n.conjuncts = append(n.conjuncts, quant.Conjunct{F: dom, Support: l.NS.Bits()})
		}
	}
	// The partitioned engines read the conjuncts on every image call,
	// across GC and reorder safe points: protect them for the life of
	// the network.
	for _, c := range n.conjuncts {
		n.mgr.IncRef(c.F)
	}

	// Initial states.
	n.Init = bdd.True
	for _, l := range n.latches {
		n.Init = n.mgr.And(n.Init, l.PS.In(l.Src.Init))
	}

	// The clustered image pipeline (size-bounded clusters plus one frozen
	// quantification schedule per direction) is compiled lazily by
	// ensurePlans on first use, so a run that only ever touches the
	// monolithic or per-call partitioned engines never pays for it.
	n.clusterLimit = opts.ClusterLimit
	n.buildPartitionedBuffers()

	// Product transition relation.
	n.naive = opts.NaiveQuantification
	if opts.SkipMonolithic {
		n.T = bdd.False
	} else {
		n.buildT()
	}
	n.mgr.IncRef(n.T)
	n.mgr.IncRef(n.Init)
	return n, nil
}

// ensurePlans compiles the clustered image pipeline on first use and
// recompiles it when a reorder session has run since: cluster merging is
// bounded by BDD node counts, which a sift changes, so a schedule tuned
// for the old variable order is stale. Non-state variables are
// pre-quantified during clustering when local to one cluster; the
// remaining schedule (which variables die at which cluster) is computed
// here and merely replayed by every image/preimage call.
func (n *Network) ensurePlans() {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	epoch := n.mgr.ReorderCount()
	if n.plansBuilt && n.planEpoch == epoch {
		return
	}
	if n.plansBuilt {
		// Superseded by a reorder session: release the stale schedule
		// before re-deriving it under the new order.
		n.imgPlan.Release(n.mgr)
		n.prePlan.Release(n.mgr)
		for _, c := range n.clusters {
			n.mgr.DecRef(c.F)
		}
	}
	n.clusters = quant.Clusters(n.mgr, n.conjuncts, n.nonState, n.clusterLimit)
	for _, c := range n.clusters {
		n.mgr.IncRef(c.F)
	}
	imgQ := append(append([]int(nil), n.nonState...), n.psBits...)
	preQ := append(append([]int(nil), n.nonState...), n.nsBits...)
	n.imgPlan = quant.Compile(n.mgr, n.clusters, n.psBits, imgQ)
	n.prePlan = quant.Compile(n.mgr, n.clusters, n.nsBits, preQ)
	n.imgPlan.Retain(n.mgr)
	n.prePlan.Retain(n.mgr)
	n.plansBuilt = true
	n.planEpoch = epoch
}

// buildPartitionedBuffers preallocates the operand slices the
// per-call-scheduled partitioned engine reuses on every image.
func (n *Network) buildPartitionedBuffers() {
	n.imgConjs = make([]quant.Conjunct, len(n.conjuncts)+1)
	copy(n.imgConjs, n.conjuncts)
	n.preConjs = make([]quant.Conjunct, len(n.conjuncts)+1)
	copy(n.preConjs, n.conjuncts)
	n.imgQVars = append(append([]int(nil), n.nonState...), n.psBits...)
	n.preQVars = append(append([]int(nil), n.nonState...), n.nsBits...)
}

// ImageOperands returns the conjunct list (every table relation plus the
// present-state set s) and the quantification variables for one
// partitioned image call. In sequential mode the returned slices are
// buffers owned by the network, valid until the next ImageOperands
// call; in parallel mode each call gets its own snapshot, so concurrent
// fixpoints never scribble over each other's seed slot.
func (n *Network) ImageOperands(s bdd.Ref) ([]quant.Conjunct, []int) {
	seed := quant.Conjunct{F: s, Support: n.psBits}
	if n.mgr.Workers() > 1 {
		conjs := make([]quant.Conjunct, len(n.imgConjs))
		copy(conjs, n.imgConjs)
		conjs[len(conjs)-1] = seed
		return conjs, n.imgQVars
	}
	n.imgConjs[len(n.imgConjs)-1] = seed
	return n.imgConjs, n.imgQVars
}

// PreimageOperands is the next-state counterpart of ImageOperands; sNext
// must already live on the NS rail (SwapRails applied).
func (n *Network) PreimageOperands(sNext bdd.Ref) ([]quant.Conjunct, []int) {
	seed := quant.Conjunct{F: sNext, Support: n.nsBits}
	if n.mgr.Workers() > 1 {
		conjs := make([]quant.Conjunct, len(n.preConjs))
		copy(conjs, n.preConjs)
		conjs[len(conjs)-1] = seed
		return conjs, n.preQVars
	}
	n.preConjs[len(n.preConjs)-1] = seed
	return n.preConjs, n.preQVars
}

// ImagePlan returns the precompiled clustered image schedule, compiling
// (or, after a reorder session, recompiling) it on demand.
func (n *Network) ImagePlan() *quant.CompiledPlan {
	n.ensurePlans()
	return n.imgPlan
}

// PreimagePlan returns the precompiled clustered preimage schedule,
// compiling it on demand like ImagePlan.
func (n *Network) PreimagePlan() *quant.CompiledPlan {
	n.ensurePlans()
	return n.prePlan
}

// ClusterConjuncts returns the clustered partitioned transition relation
// (non-state variables local to one cluster already quantified out),
// compiling it on demand. Callers must not mutate the slice and must not
// hold it across a reorder session (it is re-derived then).
func (n *Network) ClusterConjuncts() []quant.Conjunct {
	n.ensurePlans()
	return n.clusters
}

// TBuilt reports whether the monolithic product transition relation has
// been built (false until EnsureT on a SkipMonolithic network).
func (n *Network) TBuilt() bool { return n.tBuilt.Load() }

func (n *Network) buildT() {
	if n.naive {
		n.T = quant.Naive(n.mgr, n.conjuncts, n.nonState)
		n.tBuilt.Store(true)
		return
	}
	n.ensurePlans()
	if n.clusters != nil {
		// The clusters already absorbed the locally-quantifiable
		// non-state variables; finish from them instead of redoing the
		// full schedule over raw conjuncts.
		n.T = quant.AndExists(n.mgr, n.clusters, n.nonState, n.heur)
	} else {
		n.T = quant.AndExists(n.mgr, n.conjuncts, n.nonState, n.heur)
	}
	n.tBuilt.Store(true)
}

// EnsureT builds the monolithic product transition relation on demand
// when the network was created with SkipMonolithic. It is idempotent
// and safe to call from concurrent property checks: the first caller
// builds, later callers wait on the mutex and see the finished T.
func (n *Network) EnsureT() {
	n.tMu.Lock()
	defer n.tMu.Unlock()
	if n.tBuilt.Load() {
		return
	}
	n.mgr.DecRef(n.T)
	n.buildT()
	n.mgr.IncRef(n.T)
}

// tableRel builds the relation BDD of one table together with its
// structural support.
func (n *Network) tableRel(t *blifmv.Table) (bdd.Ref, []int, error) {
	m := n.mgr
	inVars := make([]*mdd.Var, len(t.Inputs))
	for i, name := range t.Inputs {
		inVars[i] = n.space.ByName(name)
		if inVars[i] == nil {
			return bdd.False, nil, fmt.Errorf("unknown input column %q", name)
		}
	}
	outVars := make([]*mdd.Var, len(t.Outputs))
	for i, name := range t.Outputs {
		outVars[i] = n.space.ByName(name)
		if outVars[i] == nil {
			return bdd.False, nil, fmt.Errorf("unknown output column %q", name)
		}
	}
	setBDD := func(vs blifmv.ValueSet, v *mdd.Var) bdd.Ref {
		if vs.All {
			return bdd.True
		}
		return v.In(vs.Vals)
	}
	rows := bdd.False
	covered := bdd.False
	for _, r := range t.Rows {
		inConj := bdd.True
		for i, vs := range r.In {
			inConj = m.And(inConj, setBDD(vs, inVars[i]))
		}
		rowRel := inConj
		for j, o := range r.Out {
			if o.EqInput >= 0 {
				rowRel = m.And(rowRel, outVars[j].EqVar(inVars[o.EqInput]))
			} else {
				rowRel = m.And(rowRel, setBDD(o.Set, outVars[j]))
			}
		}
		rows = m.Or(rows, rowRel)
		covered = m.Or(covered, inConj)
	}
	if t.Default != nil {
		defConj := m.Not(covered)
		for j, vs := range t.Default {
			defConj = m.And(defConj, setBDD(vs, outVars[j]))
		}
		rows = m.Or(rows, defConj)
	}
	// Constrain every column to its valid domain; "-" means any *valid*
	// value, and outputs never take invalid codes.
	rel := rows
	var sup []int
	for _, v := range append(append([]*mdd.Var(nil), inVars...), outVars...) {
		rel = m.And(rel, v.Domain())
		sup = append(sup, v.Bits()...)
	}
	sort.Ints(sup)
	sup = dedupInts(sup)
	return rel, sup, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Manager returns the BDD manager owning all of the network's functions.
func (n *Network) Manager() *bdd.Manager { return n.mgr }

// Space returns the MDD variable space.
func (n *Network) Space() *mdd.Space { return n.space }

// Model returns the flat source model.
func (n *Network) Model() *blifmv.Model { return n.model }

// Latches returns the latch records in declaration order.
func (n *Network) Latches() []*Latch { return n.latches }

// Inputs returns the primary-input variables.
func (n *Network) Inputs() []*mdd.Var { return n.inputs }

// PSVars and NSVars return the state rails in latch order.
func (n *Network) PSVars() []*mdd.Var { return n.psVars }

// NSVars returns the next-state rail in latch order.
func (n *Network) NSVars() []*mdd.Var { return n.nsVars }

// PSBits returns the BDD variable IDs of the present-state rail.
func (n *Network) PSBits() []int { return n.psBits }

// NSBits returns the BDD variable IDs of the next-state rail.
func (n *Network) NSBits() []int { return n.nsBits }

// PSCube returns the quantification cube of the present-state rail.
func (n *Network) PSCube() bdd.Ref { return n.mgr.Cube(n.psBits) }

// NSCube returns the quantification cube of the next-state rail.
func (n *Network) NSCube() bdd.Ref { return n.mgr.Cube(n.nsBits) }

// SwapRails exchanges PS and NS variables in f (an involution).
func (n *Network) SwapRails(f bdd.Ref) bdd.Ref { return n.mgr.Permute(f, n.perm) }

// Conjuncts returns the partitioned transition relation: every table
// relation and auxiliary equality, with structural supports. Callers
// must not mutate the slice.
func (n *Network) Conjuncts() []quant.Conjunct { return n.conjuncts }

// NonStateBits returns the BDD variable IDs quantified out of T.
func (n *Network) NonStateBits() []int { return n.nonState }

// Heuristic returns the early-quantification heuristic in use.
func (n *Network) Heuristic() quant.Heuristic { return n.heur }

// VarByName resolves a model variable to its MDD variable, or nil.
func (n *Network) VarByName(name string) *mdd.Var { return n.space.ByName(name) }

// NumStates returns the number of states represented by a set over the
// present-state rail.
func (n *Network) NumStates(set bdd.Ref) float64 {
	return n.mgr.SatCount(set, len(n.psBits))
}

// NumStatesExact is NumStates without the float64 rounding: the exact
// math/big count of states in a set over the present-state rail.
func (n *Network) NumStatesExact(set bdd.Ref) *big.Int {
	return n.mgr.SatCountExact(set, len(n.psBits))
}

// LabelEq returns the present-state label of the condition
// <name> == <value>. For a state variable this is the plain equality;
// for a combinational or input variable it is the set of states where
// the network *can* produce that value in the current step (the
// relations constrain the variable, inputs and other intermediates are
// existentially quantified).
func (n *Network) LabelEq(name, value string) (bdd.Ref, error) {
	v := n.space.ByName(name)
	if v == nil {
		return bdd.False, fmt.Errorf("network: unknown variable %q", name)
	}
	mv := n.model.Var(name)
	if mv == nil {
		// Only auxiliary $ns rail variables exist in the space but not in
		// a sealed model; properties cannot meaningfully observe them.
		return bdd.False, fmt.Errorf("network: %q is not a model variable", name)
	}
	idx := mv.ValueIndex(value)
	if idx < 0 {
		return bdd.False, fmt.Errorf("network: %q is not a value of %s", value, name)
	}
	if n.isPSVar(v) {
		return v.Eq(idx), nil
	}
	// quantify everything but the PS rail out of (relations ∧ v=idx)
	conjs := append(append([]quant.Conjunct(nil), n.conjuncts...),
		quant.Conjunct{F: v.Eq(idx), Support: v.Bits()})
	var qvars []int
	ps := make(map[int]bool, len(n.psBits))
	for _, b := range n.psBits {
		ps[b] = true
	}
	for b := 0; b < n.mgr.NumVars(); b++ {
		if !ps[b] {
			qvars = append(qvars, b)
		}
	}
	return quant.AndExists(n.mgr, conjs, qvars, n.heur), nil
}

func (n *Network) isPSVar(v *mdd.Var) bool {
	for _, p := range n.psVars {
		if p == v {
			return true
		}
	}
	return false
}

// StateAssignment maps latch outputs to symbolic value names for one
// concrete state; used by trace printing.
type StateAssignment map[string]string

// DecodeState extracts the latch values of one concrete state from a
// full assignment over BDD variables.
func (n *Network) DecodeState(assignment map[int]bool) StateAssignment {
	out := make(StateAssignment, len(n.latches))
	for _, l := range n.latches {
		idx := l.PS.ValueFromMap(assignment)
		out[l.Src.Output] = n.model.Var(l.Src.Output).ValueName(idx)
	}
	return out
}

// PickState returns one concrete state from a non-empty set over the PS
// rail, as an assignment over the PS bits (unconstrained bits read 0).
func (n *Network) PickState(set bdd.Ref) (map[int]bool, bool) {
	return n.mgr.PickCube(set, n.psBits)
}

// StateEq returns the BDD of exactly the given concrete state.
func (n *Network) StateEq(assignment map[int]bool) bdd.Ref {
	r := bdd.True
	for _, b := range n.psBits {
		if assignment[b] {
			r = n.mgr.And(r, n.mgr.Var(b))
		} else {
			r = n.mgr.And(r, n.mgr.NVar(b))
		}
	}
	return r
}
