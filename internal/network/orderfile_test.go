package network

import (
	"bytes"
	"reflect"
	"testing"

	"hsis/internal/blifmv"
	"hsis/internal/order"
	"hsis/internal/reorder"
)

// A ternary state variable (two-bit group block) plus two binary
// latches that share their input, so the network invents auxiliary
// "$ns" rails — the order file must reproduce all of them.
const mixedRadix = `
.model mixed
.mv s,ns3 3 zero one two
.table s ns3
zero one
one two
two zero
.latch ns3 s
.reset s
zero
.table a b n
0 0 0
0 1 1
1 0 1
1 1 0
.latch n a
.reset a
0
.latch n b
.reset b
1
.end
`

// TestOrderFileRoundTrip is the golden round-trip for order
// persistence: sift a network, snapshot the order, save and reload it,
// rebuild the network from the saved order, and check that the rebuilt
// network lays its variables out exactly as recorded — including the
// multi-bit MDD variable and the auxiliary next-state rails.
func TestOrderFileRoundTrip(t *testing.T) {
	d, err := blifmv.ParseString(mixedRadix, "mixed.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reorder.Sift(n.Manager(), reorder.Options{Converge: true})

	entries := order.Snapshot(n.Space())
	if len(entries) != len(n.Space().Vars()) {
		t.Fatalf("snapshot has %d entries for %d variables", len(entries), len(n.Space().Vars()))
	}

	var buf bytes.Buffer
	if err := order.Save(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := order.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Fatalf("save/load round trip changed the order:\nsaved  %v\nloaded %v", entries, back)
	}

	names, err := order.Apply(flat, back)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Build(flat, Options{Order: names, ExactOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := order.Snapshot(n2.Space())
	if !reflect.DeepEqual(rebuilt, entries) {
		t.Fatalf("rebuild from saved order diverged:\nwant %v\ngot  %v", entries, rebuilt)
	}

	// The multi-bit MDD variables must still occupy adjacent levels in
	// the rebuilt network.
	m2 := n2.Manager()
	for _, v := range n2.Space().Vars() {
		bits := v.Bits()
		if len(bits) < 2 {
			continue
		}
		levels := make([]int, len(bits))
		for i, b := range bits {
			levels[i] = m2.Level(b)
		}
		lo, hi := levels[0], levels[0]
		for _, l := range levels[1:] {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if hi-lo != len(bits)-1 {
			t.Errorf("variable %s: encoding bits at levels %v are not contiguous", v.Name(), levels)
		}
	}
}

// TestOrderFileStaleRejected checks that Apply refuses an order file
// whose cardinalities or names no longer match the model.
func TestOrderFileStaleRejected(t *testing.T) {
	d, err := blifmv.ParseString(mixedRadix, "mixed.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := order.Apply(flat, []order.Entry{{Name: "s", Card: 4}}); err == nil {
		t.Error("cardinality mismatch not rejected")
	}
	if _, err := order.Apply(flat, []order.Entry{{Name: "ghost", Card: 2}}); err == nil {
		t.Error("unknown variable not rejected")
	}
	if _, err := order.Apply(flat, []order.Entry{{Name: "a", Card: 2}, {Name: "a", Card: 2}}); err == nil {
		t.Error("duplicate variable not rejected")
	}
}
