package network

import (
	"strings"
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/quant"
)

func compile(t *testing.T, src string, opts Options) *Network {
	t.Helper()
	d, err := blifmv.ParseString(src, "test.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(flat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const grayCounter = `
.model gray
.table b0 n0
0 1
1 0
.table b0 b1 n1
0 0 0
0 1 1
1 0 1
1 1 0
.latch n0 b0
.reset b0
0
.latch n1 b1
.reset b1
0
.end
`

func TestBuildGrayCounter(t *testing.T) {
	n := compile(t, grayCounter, Options{})
	if len(n.Latches()) != 2 {
		t.Fatalf("latches = %d", len(n.Latches()))
	}
	for _, l := range n.Latches() {
		if l.Aux {
			t.Errorf("latch %s should reuse its input as NS", l.Src.Output)
		}
	}
	if n.T == bdd.False {
		t.Fatal("transition relation empty")
	}
	// Deterministic machine: from each state exactly one successor.
	if got := n.Manager().SatCount(n.T, len(n.PSBits())+len(n.NSBits())); got != 4 {
		t.Fatalf("T has %v transitions, want 4", got)
	}
	if got := n.NumStates(n.Init); got != 1 {
		t.Fatalf("Init has %v states, want 1", got)
	}
}

func TestTransitionFunction(t *testing.T) {
	n := compile(t, grayCounter, Options{})
	m := n.Manager()
	b0, b1 := n.VarByName("b0"), n.VarByName("b1")
	n0, n1 := n.VarByName("n0"), n.VarByName("n1")
	// state (0,0) -> (1,0): check T ∧ b0=0 ∧ b1=0 implies n0=1 ∧ n1=0
	now := m.And(b0.Eq(0), b1.Eq(0))
	tr := m.And(n.T, now)
	if m.Diff(tr, m.And(n0.Eq(1), n1.Eq(0))) != bdd.False {
		t.Fatal("successor of 00 is not 10")
	}
	if tr == bdd.False {
		t.Fatal("no transition from initial state")
	}
}

const mod3 = `
.model mod3
.mv s,ns 3 zero one two
.table s ns
zero one
one two
two zero
.latch ns s
.reset s
zero
.end
`

func TestMultiValuedDomainConstraint(t *testing.T) {
	n := compile(t, mod3, Options{})
	m := n.Manager()
	// exactly 3 transitions despite the 2-bit encoding having 4 codes
	if got := m.SatCount(n.T, 4); got != 3 {
		t.Fatalf("T has %v transitions, want 3", got)
	}
	s := n.VarByName("s")
	// no transition leads to the invalid code 3
	inv := m.Diff(bdd.True, s.Domain())
	if m.And(n.SwapRails(inv), n.T) != bdd.False {
		t.Fatal("transition into invalid code")
	}
}

const sharedInput = `
.model shared
.table a b n
0 0 0
0 1 1
1 0 1
1 1 0
.latch n a
.reset a
0
.latch n b
.reset b
1
.end
`

func TestSharedLatchInputUsesAux(t *testing.T) {
	n := compile(t, sharedInput, Options{})
	auxCount := 0
	for _, l := range n.Latches() {
		if l.Aux {
			auxCount++
		}
	}
	if auxCount != 1 {
		t.Fatalf("aux latches = %d, want exactly 1 (second claim of n)", auxCount)
	}
	// Both latches load the same value: after any step a==b.
	m := n.Manager()
	a, b := n.VarByName("a"), n.VarByName("b")
	nextEq := n.SwapRails(a.EqVar(b))
	if m.Diff(n.T, nextEq) != bdd.False {
		t.Fatal("shared input did not force equal next states")
	}
}

const selfLoop = `
.model self
.table q nq
0 1
1 0
.latch q q2
.reset q2
0
.latch nq q
.reset q
0
.end
`

func TestLatchOutputAsLatchInput(t *testing.T) {
	// q is both a latch output and the input of another latch; the
	// second latch must get an auxiliary NS variable.
	n := compile(t, selfLoop, Options{})
	var q2 *Latch
	for _, l := range n.Latches() {
		if l.Src.Output == "q2" {
			q2 = l
		}
	}
	if q2 == nil || !q2.Aux {
		t.Fatal("latch fed by a latch output must use an aux NS variable")
	}
	m := n.Manager()
	// Semantics: q2' = q, so T ∧ (q=1) implies q2'=1.
	qv, q2v := n.VarByName("q"), n.VarByName("q2")
	tr := m.And(n.T, qv.Eq(1))
	if m.Diff(tr, n.SwapRails(q2v.Eq(1))) != bdd.False {
		t.Fatal("aux NS semantics wrong")
	}
}

const nondetSrc = `
.model nd
.mv c 2 stay go
.table c        # free choice
-
.table c s n
stay - =s
go 0 1
go 1 0
.latch n s
.reset s
0
.end
`

func TestNondeterministicTransitions(t *testing.T) {
	n := compile(t, nondetSrc, Options{})
	m := n.Manager()
	// from each state two successors (stay or flip) -> 4 transitions
	if got := m.SatCount(n.T, 2); got != 4 {
		t.Fatalf("T has %v transitions, want 4", got)
	}
}

func TestLabelEqStateVar(t *testing.T) {
	n := compile(t, mod3, Options{})
	lbl, err := n.LabelEq("s", "two")
	if err != nil {
		t.Fatal(err)
	}
	if lbl != n.VarByName("s").Eq(2) {
		t.Fatal("state-variable label should be plain equality")
	}
	if _, err := n.LabelEq("s", "bogus"); err == nil {
		t.Fatal("unknown value should error")
	}
	if _, err := n.LabelEq("zz", "0"); err == nil {
		t.Fatal("unknown variable should error")
	}
}

func TestLabelEqCombinational(t *testing.T) {
	// n = !s, so label(n=1) = states with s=0
	n := compile(t, mod3, Options{})
	lbl, err := n.LabelEq("ns", "one")
	if err != nil {
		t.Fatal(err)
	}
	if lbl != n.VarByName("s").Eq(0) {
		t.Fatal("combinational label wrong: ns==one exactly when s==zero")
	}
}

func TestQuantHeuristicsAgree(t *testing.T) {
	for _, src := range []string{grayCounter, mod3, sharedInput, nondetSrc} {
		nw := compile(t, src, Options{Heuristic: quant.MinWidth})
		nl := compile(t, src, Options{Heuristic: quant.Linear})
		nn := compile(t, src, Options{NaiveQuantification: true})
		// Compare via transition counts (different managers, same design).
		w := nw.Manager().SatCount(nw.T, len(nw.PSBits())+len(nw.NSBits()))
		l := nl.Manager().SatCount(nl.T, len(nl.PSBits())+len(nl.NSBits()))
		nv := nn.Manager().SatCount(nn.T, len(nn.PSBits())+len(nn.NSBits()))
		if w != l || w != nv {
			t.Fatalf("heuristics disagree on transitions: %v %v %v", w, l, nv)
		}
	}
}

func TestSkipMonolithic(t *testing.T) {
	n := compile(t, grayCounter, Options{SkipMonolithic: true})
	if n.T != bdd.False {
		t.Fatal("SkipMonolithic should leave T unbuilt")
	}
	if len(n.Conjuncts()) == 0 {
		t.Fatal("partitioned conjuncts missing")
	}
}

func TestDecodeAndPickState(t *testing.T) {
	n := compile(t, mod3, Options{})
	asg, ok := n.PickState(n.VarByName("s").Eq(2))
	if !ok {
		t.Fatal("PickState failed on nonempty set")
	}
	st := n.DecodeState(asg)
	if st["s"] != "two" {
		t.Fatalf("decoded %v, want s=two", st)
	}
	eq := n.StateEq(asg)
	if eq != n.VarByName("s").Eq(2) {
		t.Fatal("StateEq should rebuild the same singleton set")
	}
}

func TestNoLatchesRejected(t *testing.T) {
	src := ".model comb\n.table a b\n0 1\n1 0\n.end\n"
	d, err := blifmv.ParseString(src, "c.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(flat, Options{}); err == nil || !strings.Contains(err.Error(), "no latches") {
		t.Fatalf("want no-latches error, got %v", err)
	}
}

func TestPrimaryInputIsFree(t *testing.T) {
	src := `
.model pi
.inputs go
.table go s n
0 - =s
1 0 1
1 1 0
.latch n s
.reset s
0
.end
`
	n := compile(t, src, Options{})
	m := n.Manager()
	// input quantified: from each state both stay and flip possible
	if got := m.SatCount(n.T, 2); got != 4 {
		t.Fatalf("T has %v transitions, want 4", got)
	}
	if len(n.Inputs()) != 1 || n.Inputs()[0].Name() != "go" {
		t.Fatal("primary input not recorded")
	}
}
