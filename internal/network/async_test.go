package network_test

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/network"
	"hsis/internal/reach"
)

// two independent toggles
const toggles = `
.model toggles
.table a na
0 1
1 0
.table b nb
0 1
1 0
.latch na a
.reset a
0
.latch nb b
.reset b
0
.end
`

func buildToggles(t *testing.T) *network.Network {
	t.Helper()
	d, err := blifmv.ParseString(toggles, "t.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInterleavingSemantics(t *testing.T) {
	n := buildToggles(t)
	m := n.Manager()
	a, b := n.VarByName("a"), n.VarByName("b")

	// synchronous: (0,0) -> (1,1) only
	img := reach.Image(n, m.And(a.Eq(0), b.Eq(0)))
	if img != m.And(a.Eq(1), b.Eq(1)) {
		t.Fatal("synchronous image wrong")
	}

	tAsync, err := n.BuildAsyncT(network.Interleaving(n))
	if err != nil {
		t.Fatal(err)
	}
	n.SetT(tAsync)
	// interleaved: (0,0) -> (1,0) or (0,1); never (1,1) in one step
	img = reach.Image(n, m.And(a.Eq(0), b.Eq(0)))
	want := m.Or(m.And(a.Eq(1), b.Eq(0)), m.And(a.Eq(0), b.Eq(1)))
	if img != want {
		t.Fatal("interleaved image wrong")
	}
	// all four states reachable under interleaving
	res := reach.Forward(n, reach.Options{})
	if got := n.NumStates(res.Reached); got != 4 {
		t.Fatalf("interleaved reach = %v, want 4", got)
	}
}

func TestSynchronousTreeMatchesDefault(t *testing.T) {
	n := buildToggles(t)
	tSync := n.T
	// an all-S tree must reproduce the synchronous relation
	tAsync, err := n.BuildAsyncT(network.Sync(network.Leaf("a"), network.Leaf("b")))
	if err != nil {
		t.Fatal(err)
	}
	if tAsync != tSync {
		t.Fatal("all-synchronous tree should equal the synchronous T")
	}
}

func TestMixedTree(t *testing.T) {
	// three latches: a and b synchronous with each other, the pair
	// asynchronous with c: each step updates {a,b} or {c}.
	const three = `
.model three
.table a na
0 1
1 0
.table b nb
0 1
1 0
.table c nc
0 1
1 0
.latch na a
.reset a
0
.latch nb b
.reset b
0
.latch nc c
.reset c
0
.end
`
	d, _ := blifmv.ParseString(three, "3.mv")
	flat, _ := blifmv.Flatten(d)
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Manager()
	a, b, c := n.VarByName("a"), n.VarByName("b"), n.VarByName("c")
	tree := network.Async(network.Sync(network.Leaf("a"), network.Leaf("b")), network.Leaf("c"))
	tAsync, err := n.BuildAsyncT(tree)
	if err != nil {
		t.Fatal(err)
	}
	n.SetT(tAsync)
	img := reach.Image(n, m.AndN(a.Eq(0), b.Eq(0), c.Eq(0)))
	want := m.Or(
		m.AndN(a.Eq(1), b.Eq(1), c.Eq(0)), // {a,b} updated
		m.AndN(a.Eq(0), b.Eq(0), c.Eq(1)), // {c} updated
	)
	if img != want {
		t.Fatal("mixed synchrony tree semantics wrong")
	}
}

func TestSynchronyTreeErrors(t *testing.T) {
	n := buildToggles(t)
	cases := []*network.Synchrony{
		network.Sync(network.Leaf("a")),                                       // missing b
		network.Sync(network.Leaf("a"), network.Leaf("a"), network.Leaf("b")), // duplicate a
		network.Sync(network.Leaf("a"), network.Leaf("zz")),                   // unknown latch
		network.Sync(network.Leaf("a"), &network.Synchrony{}),                 // empty node
	}
	for i, tree := range cases {
		if _, err := n.BuildAsyncT(tree); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestInterleavingWithSharedLatchInput(t *testing.T) {
	const shared = `
.model shared
.table a b n
0 0 0
0 1 1
1 0 1
1 1 0
.latch n a
.reset a
0
.latch n b
.reset b
1
.end
`
	d, _ := blifmv.ParseString(shared, "s.mv")
	flat, _ := blifmv.Flatten(d)
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Manager()
	tAsync, err := n.BuildAsyncT(network.Interleaving(n))
	if err != nil {
		t.Fatal(err)
	}
	n.SetT(tAsync)
	a, b := n.VarByName("a"), n.VarByName("b")
	// from (0,1): n = xor = 1; updating a alone gives (1,1); updating b
	// alone keeps (0,1)
	img := reach.Image(n, m.And(a.Eq(0), b.Eq(1)))
	want := m.Or(m.And(a.Eq(1), b.Eq(1)), m.And(a.Eq(0), b.Eq(1)))
	if img != want {
		t.Fatal("interleaving with shared latch input wrong")
	}
	_ = bdd.True
}

func TestEnsureT(t *testing.T) {
	d, err := blifmv.ParseString(toggles, "t.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{SkipMonolithic: true})
	if err != nil {
		t.Fatal(err)
	}
	if n.T != bdd.False {
		t.Fatal("T should be unbuilt")
	}
	n.EnsureT()
	if n.T == bdd.False {
		t.Fatal("EnsureT did not build T")
	}
	tFirst := n.T
	n.EnsureT() // idempotent
	if n.T != tFirst {
		t.Fatal("EnsureT not idempotent")
	}
	// matches an eagerly-built network
	n2, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := n.Manager()
	c1 := m1.SatCount(n.T, len(n.PSBits())+len(n.NSBits()))
	c2 := n2.Manager().SatCount(n2.T, len(n2.PSBits())+len(n2.NSBits()))
	if c1 != c2 {
		t.Fatalf("lazy T differs: %v vs %v transitions", c1, c2)
	}
}
