package bdd

// Permuter: a variable permutation bound to a persistent memo table.
//
// Permute keys its memo per call, which is right for the rail swap (each
// call sees a different function). The isomorphism-exploiting image
// pipeline has the opposite profile: the same permutation is applied to
// a whole family of closely related functions (every cluster of a
// representative cone, again after every replan), and those functions
// share most of their subgraphs. A Permuter keeps the rebuild memo alive
// across calls, so a subgraph permuted once is never rebuilt again —
// replica instantiation degenerates to a memo walk.
//
// The memo maps regular stored nodes of input BDDs to their rebuilt
// images. Both keys and values can die: a GC recycles unreferenced
// nodes, and a reorder session rewrites the arena in place. The memo is
// therefore validated against the manager's GC and reorder counters on
// every call and discarded wholesale when either moved — correctness
// never depends on the cache, it only loses warmth.
//
// Permutations are variable-ID based, not level based, so a reorder does
// NOT change what a Permuter computes; it only invalidates the cached
// node mapping. Variables created after the Permuter (beyond len(perm))
// map to themselves, mirroring Permute.
type Permuter struct {
	m    *Manager
	perm []int
	memo map[Ref]Ref

	gcAt      int // GCCount the memo entries were built under
	reorderAt int // statReorders likewise
}

// NewPermuter binds a permutation over variable IDs to the manager with
// a persistent memo. The perm slice is retained, not copied; callers
// must not mutate it afterwards.
func (m *Manager) NewPermuter(perm []int) *Permuter {
	return &Permuter{
		m:         m,
		perm:      perm,
		memo:      make(map[Ref]Ref),
		gcAt:      m.GCCount,
		reorderAt: m.statReorders,
	}
}

// Permute returns f with every variable v replaced by perm[v], sharing
// rebuilt structure with every earlier call through the persistent memo.
func (p *Permuter) Permute(f Ref) Ref {
	m := p.m
	m.check(f)
	c := m.begin()
	if len(p.perm) > m.numVars {
		m.end(c)
		panic("bdd: Permuter: permutation longer than variable count")
	}
	m.memoMu.Lock()
	if m.GCCount != p.gcAt || m.statReorders != p.reorderAt {
		// Nodes may have been recycled (GC) or the arena rewritten in
		// place (reorder): every cached Ref is suspect. Drop the map.
		clear(p.memo)
		p.gcAt = m.GCCount
		p.reorderAt = m.statReorders
	}
	r := m.permuterRec(c, f, p)
	m.memoMu.Unlock()
	m.end(c)
	return r
}

// Size returns the number of live memo entries (observability hook).
func (p *Permuter) Size() int { return len(p.memo) }

func (m *Manager) permuterRec(c *kctx, f Ref, p *Permuter) Ref {
	if m.IsTerminal(f) {
		return f
	}
	// Permutation commutes with complement: fold the mark into the
	// result so f and ¬f share one memo entry.
	cm := f & compBit
	f ^= cm
	m.statPermCalls.Add(1)
	if r, ok := p.memo[f]; ok {
		m.statPermHits.Add(1)
		return r ^ cm
	}
	n := *m.node(f)
	v := int(n.varID)
	low := m.permuterRec(c, n.low, p)
	high := m.permuterRec(c, n.high, p)
	target := v
	if v < len(p.perm) {
		target = p.perm[v]
	}
	r := m.iteRec(c, m.varRef(c, target), high, low, 0)
	p.memo[f] = r
	return r ^ cm
}
