// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with complement edges, the symbolic kernel underneath every
// verification algorithm in this repository.
//
// The design follows the classic shared-BDD architecture used by the
// original HSIS (and by BuDDy/CUDD): a single Manager owns an arena of
// nodes, a unique table guaranteeing canonicity, operation caches, and
// reference counts for garbage collection. Node handles are small
// integer Refs that are only meaningful together with their Manager.
//
// The sign bit of a Ref is a complement mark: a negative Ref denotes the
// Boolean complement of the function stored at the underlying node, so a
// function and its negation share one DAG and Not is a single XOR with
// no allocation. Canonicity is preserved by the standard rule that the
// low (else) edge of a stored node is never complemented; mk re-roots
// any violating node onto the complement of its flipped twin. There is a
// single stored terminal — the False node at index 0 — and True is its
// complement edge, so the identity False = ¬True holds on Refs rather
// than between two distinct nodes.
//
// Variables are identified by stable integer IDs assigned at creation
// time. Each variable sits at a level in the global order; adjacent
// levels can be exchanged in place through a ReorderSession (see
// reorder.go), which is how the sifting driver in internal/reorder
// permutes the order dynamically. All operations are deterministic.
package bdd

import (
	"fmt"
	"math/bits"
	"time"

	"hsis/internal/telemetry"
)

// Ref is a handle to a BDD node inside a Manager, with the sign bit
// carrying the complement mark. The zero value is the constant false
// BDD; True is the constant true BDD. Refs are only valid for the
// Manager that produced them.
type Ref int32

// compBit is the complement mark: XOR-ing it negates the function.
const compBit Ref = -1 << 31

// Terminal constants. A Manager stores one terminal node (False, at
// index 0); True is the complement edge onto the same node.
const (
	False Ref = 0
	True  Ref = compBit
)

// regular strips the complement mark from f.
func regular(f Ref) Ref { return f &^ compBit }

// isComp reports whether f carries the complement mark.
func isComp(f Ref) bool { return f < 0 }

// neg complements f. This is the O(1), allocation-free negation that
// complement edges exist to provide.
func neg(f Ref) Ref { return f ^ compBit }

// terminalLevel is the level assigned to the terminal node. It compares
// greater than any variable level.
const terminalLevel = int32(1 << 30)

// node is one stored BDD node. The low edge is always regular (the
// canonical-form invariant); the high edge may carry a complement mark.
type node struct {
	level int32 // level in the variable order (not the variable ID)
	low   Ref   // else-branch (variable = 0), never complemented
	high  Ref   // then-branch (variable = 1)
}

// Manager owns a shared forest of BDD nodes. It is not safe for
// concurrent use; verification algorithms in this repository are
// single-threaded per Manager, matching the original C implementation.
type Manager struct {
	nodes []node
	refs  []int32 // external reference counts, parallel to nodes

	// unique table: open-addressing hash from (level,low,high) to index
	table     []int32 // holds node indices + 1; 0 means empty
	tableMask uint64

	free []Ref // recycled node indices (dead after GC)

	var2level []int32
	level2var []int32

	// Operation caches. Each is a direct-mapped power-of-two array that
	// starts at its initial size and doubles adaptively (see cache.go);
	// entries whose operands and result survive a GC are kept.
	ite       []iteEntry
	binop     []binopEntry
	quant     []quantEntry // Exists cache, keyed on (f, cube)
	aex       []aexEntry   // AndExists cache, keyed on (f, g, cube)
	iteMask   uint64
	binopMask uint64
	quantMask uint64
	aexMask   uint64

	cacheBudget int                    // total entry budget across all op caches
	cacheWin    [numCaches]cacheWindow // adaptive-growth bookkeeping
	allocs      uint64                 // node allocations, drives adaptation checks
	allocsAtGC  uint64                 // allocs at the last collection (demand estimate)

	marks []uint64 // reusable mark bitmap, one bit per node slot

	// Reusable rebuild memo (Permute/Compose/VectorCompose): indexed by
	// stored-node id, validated by an epoch stamp so calls never clear
	// it. memoLast (stored nodes visited by the previous rebuild) picks
	// between this and a plain map per call; see subst.go.
	memoVal   []Ref
	memoStamp []uint32
	memoEpoch uint32
	memoCount int
	memoLast  int

	statApplyCalls, statApplyHits uint64
	statITECalls, statITEHits     uint64
	statQuantCalls, statQuantHits uint64
	statAexCalls, statAexHits     uint64
	statCompShared                uint64 // mk results re-rooted onto a complement-shared node
	statCacheGrowths              int
	statCacheKept                 int // op-cache entries that survived the last GC

	gcEnabled bool
	autoGCAt  int // node count that triggers an automatic GC on allocation
	GCCount   int // number of garbage collections performed
	lastLive  int
	numVars   int
	peakNodes int
	peakLive  int                  // largest live count seen at an allocation
	OnGC      func(live, dead int) // optional GC observer

	// Dynamic variable reordering (reorder.go; sifting driver in
	// internal/reorder).
	session        *ReorderSession // non-nil while a reorder is in progress
	groups         [][]int         // atomic sifting blocks (variable IDs)
	reorderPolicy  ReorderPolicy
	reorderFn      func(*Manager) // automatic-reorder hook
	reorderGrow    float64
	reorderMin     int
	reorderAt      int  // live count that arms reorderPending (0 = disarmed)
	reorderPending bool // trigger fired; next safe point reorders

	statReorders     int
	statReorderSwaps uint64
	statReorderTime  time.Duration
	reorderBefore    int // manager size entering the last reorder
	reorderAfter     int // manager size leaving the last reorder

	// statsSnap is the coherent Statistics snapshot taken when a reorder
	// session opens; Stats() serves it while the session is rewriting the
	// arena (see stats.go).
	statsSnap Statistics
}

type iteEntry struct {
	f, g, h, res Ref
}

type binopEntry struct {
	op        int32
	f, g, res Ref
}

// quantEntry caches one Exists recursion (ForAll is derived through
// complement edges: ∀x.f = ¬∃x.¬f, so one cache serves both). The
// quantification cube (the suffix actually reaching this node) is part
// of the key, so plans that alternate cubes — an image step followed by
// a preimage step, as every fixpoint does — do not thrash the cache.
type quantEntry struct {
	f, cube, res Ref
}

// aexEntry caches one AndExists recursion, cube included in the key for
// the same reason.
type aexEntry struct {
	f, g, cube, res Ref
}

// Empty cache entries are all-zero. A zero operand field can never match
// a probe: every recursion resolves terminal operands before probing, so
// a cached f is always a non-terminal (index ≥ 1) Ref.

const (
	opAnd = iota + 1
	opXor
)

const defaultTableSize = 1 << 14

// New creates a Manager with no variables. Variables are added with
// NewVar or NewVars.
func New() *Manager {
	m := &Manager{
		table:       make([]int32, defaultTableSize),
		tableMask:   defaultTableSize - 1,
		ite:         make([]iteEntry, initITECache),
		binop:       make([]binopEntry, initBinopCache),
		quant:       make([]quantEntry, initQuantCache),
		aex:         make([]aexEntry, initAexCache),
		iteMask:     initITECache - 1,
		binopMask:   initBinopCache - 1,
		quantMask:   initQuantCache - 1,
		aexMask:     initAexCache - 1,
		cacheBudget: defaultCacheBudget,
		gcEnabled:   true,
		autoGCAt:    1 << 20,
	}
	// Install the single terminal at index 0.
	m.nodes = append(m.nodes, node{level: terminalLevel, low: False, high: False})
	m.refs = append(m.refs, 1) // permanently referenced
	return m
}

// NumVars returns the number of variables created in the manager.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live plus dead nodes currently allocated,
// including the terminal.
func (m *Manager) Size() int { return len(m.nodes) - len(m.free) }

// PeakSize returns the largest node count observed since creation.
func (m *Manager) PeakSize() int { return m.peakNodes }

// NewVar appends a fresh variable at the bottom of the current order and
// returns its projection function (the BDD "v"). Projection nodes are
// permanently referenced: callers everywhere hold them for the life of
// the manager (spaces, networks, cubes), and a reorder session must
// never reclaim and reuse their slots.
func (m *Manager) NewVar() Ref {
	v := m.numVars
	m.numVars++
	m.var2level = append(m.var2level, int32(v))
	m.level2var = append(m.level2var, int32(v))
	return m.IncRef(m.mk(int32(v), False, True))
}

// NewVars creates n fresh variables and returns their projection
// functions in creation order.
func (m *Manager) NewVars(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = m.NewVar()
	}
	return out
}

// Var returns the projection function of variable id v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(m.var2level[v], False, True)
}

// NVar returns the negative literal of variable id v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(m.var2level[v], True, False)
}

// Level returns the current level of variable id v in the order.
func (m *Manager) Level(v int) int { return int(m.var2level[v]) }

// VarAtLevel returns the variable id currently placed at the given level.
func (m *Manager) VarAtLevel(l int) int { return int(m.level2var[l]) }

// VarOf returns the variable id labelling the root node of f. It panics
// if f is a terminal.
func (m *Manager) VarOf(f Ref) int {
	n := m.nodes[regular(f)]
	if n.level == terminalLevel {
		panic("bdd: VarOf on terminal")
	}
	return int(m.level2var[n.level])
}

// IsTerminal reports whether f is one of the two constants.
func (m *Manager) IsTerminal(f Ref) bool { return regular(f) == 0 }

// Low returns the else-cofactor of the root node of f.
func (m *Manager) Low(f Ref) Ref { return m.nodes[regular(f)].low ^ (f & compBit) }

// High returns the then-cofactor of the root node of f.
func (m *Manager) High(f Ref) Ref { return m.nodes[regular(f)].high ^ (f & compBit) }

// top returns the root level of f and its two cofactors, pushing f's
// complement mark down onto the children.
func (m *Manager) top(f Ref) (level int32, low, high Ref) {
	n := &m.nodes[f&^compBit]
	c := f & compBit
	return n.level, n.low ^ c, n.high ^ c
}

// levelOf returns the root level of f (terminalLevel for constants).
func (m *Manager) levelOf(f Ref) int32 { return m.nodes[f&^compBit].level }

// mk returns the canonical ref for the triple (level, low, high),
// applying the reduction rules: equal children collapse, structurally
// identical nodes are shared through the unique table, and a node whose
// low edge is complemented is re-rooted onto the complement of its
// flipped twin so f and ¬f share one stored node.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if isComp(low) {
		m.statCompShared++
		return neg(m.mkNode(level, neg(low), neg(high)))
	}
	return m.mkNode(level, low, high)
}

// mkNode finds or allocates the stored node (level, low, high); low must
// already be regular.
func (m *Manager) mkNode(level int32, low, high Ref) Ref {
	if m.session != nil {
		panic("bdd: operation during an active reorder session")
	}
	h := hash3(uint64(level), uint64(low), uint64(high)) & m.tableMask
	for {
		idx := m.table[h]
		if idx == 0 {
			break
		}
		n := &m.nodes[idx-1]
		if n.level == level && n.low == low && n.high == high {
			return Ref(idx - 1)
		}
		h = (h + 1) & m.tableMask
	}
	// Not found: allocate. The probe loop left h at an empty slot for
	// this key, so insert there directly instead of rehashing.
	var r Ref
	if len(m.free) > 0 {
		r = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.nodes[r] = node{level: level, low: low, high: high}
		m.refs[r] = 0
	} else {
		r = Ref(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, low: low, high: high})
		m.refs = append(m.refs, 0)
	}
	m.table[h] = int32(r) + 1
	if s := len(m.nodes); s > m.peakNodes {
		m.peakNodes = s
	}
	if live := m.Size(); live > m.peakLive {
		m.peakLive = live
	}
	if m.reorderAt > 0 && m.Size() >= m.reorderAt {
		// The growth trigger arms here; the reorder itself runs at the
		// next safe point (MaybeReorder/MaybeGC), never inside an
		// operation.
		m.reorderPending = true
	}
	if 10*m.Size() > 7*len(m.table) {
		m.growTable()
	}
	if m.allocs++; m.allocs&(cacheAdaptEvery-1) == 0 {
		// Allocation-driven adaptation point: lets the caches grow in
		// the middle of a long recursion that never reaches a GC. It is
		// also the periodic checkpoint where the kernel publishes its
		// node counts for the telemetry sampler — off the per-allocation
		// hot path, but frequent enough that a blowup shows up in the
		// timeline while it happens.
		m.adaptCaches()
		if telemetry.Enabled() {
			telemetry.PublishNodes(m.Size(), m.peakLive)
		}
	}
	return r
}

func (m *Manager) tableInsert(r Ref) {
	n := m.nodes[r]
	h := hash3(uint64(n.level), uint64(n.low), uint64(n.high)) & m.tableMask
	for m.table[h] != 0 {
		h = (h + 1) & m.tableMask
	}
	m.table[h] = int32(r) + 1
}

func (m *Manager) growTable() {
	newSize := len(m.table) * 2
	m.table = make([]int32, newSize)
	m.tableMask = uint64(newSize - 1)
	m.resetMarks()
	for _, f := range m.free {
		m.setMark(f) // mark recycled slots so we skip them
	}
	for i := 1; i < len(m.nodes); i++ {
		if !m.marked(Ref(i)) {
			m.tableInsert(Ref(i))
		}
	}
}

// resetMarks sizes the reusable mark bitmap to the node arena and clears
// it. The bitmap is shared by GC and unique-table rebuilds, so neither
// allocates per collection.
func (m *Manager) resetMarks() {
	n := (len(m.nodes) + 63) / 64
	if cap(m.marks) < n {
		m.marks = make([]uint64, n)
		return
	}
	m.marks = m.marks[:n]
	clear(m.marks)
}

func (m *Manager) setMark(i Ref) { m.marks[i>>6] |= 1 << (uint(i) & 63) }

func (m *Manager) marked(i Ref) bool { return m.marks[i>>6]&(1<<(uint(i)&63)) != 0 }

func hash3(a, b, c uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 ^ bits.RotateLeft64(b, 21)*0xbf58476d1ce4e5b9 ^ bits.RotateLeft64(c, 42)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// check panics if f is not a plausible handle for this manager. It is
// used at public API boundaries.
func (m *Manager) check(f Ref) {
	if int(regular(f)) >= len(m.nodes) {
		panic(fmt.Sprintf("bdd: invalid ref %d (manager has %d nodes)", f, len(m.nodes)))
	}
}
