// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs), the symbolic kernel underneath every verification algorithm
// in this repository.
//
// The design follows the classic shared-BDD architecture used by the
// original HSIS (and by BuDDy/CUDD): a single Manager owns an arena of
// nodes, a unique table guaranteeing canonicity, operation caches, and
// reference counts for garbage collection. Node handles are small
// integer Refs that are only meaningful together with their Manager.
//
// Variables are identified by stable integer IDs assigned at creation
// time. Each variable sits at a level in the global order; levels can be
// permuted with Manager.Reorder. All operations are deterministic.
package bdd

import (
	"fmt"
	"math/bits"
)

// Ref is a handle to a BDD node inside a Manager. The zero value is the
// constant false BDD; True is the constant true BDD. Refs are only valid
// for the Manager that produced them.
type Ref int32

// Terminal nodes. They exist in every Manager at fixed indices.
const (
	False Ref = 0
	True  Ref = 1
)

// terminalLevel is the level assigned to the two terminal nodes. It
// compares greater than any variable level.
const terminalLevel = int32(1 << 30)

type node struct {
	level int32 // level in the variable order (not the variable ID)
	low   Ref   // else-branch (variable = 0)
	high  Ref   // then-branch (variable = 1)
}

// Manager owns a shared forest of BDD nodes. It is not safe for
// concurrent use; verification algorithms in this repository are
// single-threaded per Manager, matching the original C implementation.
type Manager struct {
	nodes []node
	refs  []int32 // external reference counts, parallel to nodes

	// unique table: open-addressing hash from (level,low,high) to index
	table     []int32 // holds node indices + 1; 0 means empty
	tableMask uint64

	free []Ref // recycled node indices (dead after GC)

	var2level []int32
	level2var []int32

	ite   []iteEntry
	binop []binopEntry
	quant []quantEntry // Exists/ForAll cache, keyed on (op, f, cube)
	aex   []aexEntry   // AndExists cache, keyed on (f, g, cube)
	sat   map[Ref]float64

	statApplyCalls, statApplyHits uint64
	statITECalls, statITEHits     uint64
	statQuantCalls, statQuantHits uint64
	statAexCalls, statAexHits     uint64

	gcEnabled  bool
	autoGCAt   int // node count that triggers an automatic GC on allocation
	GCCount    int // number of garbage collections performed
	lastLive   int
	numVars    int
	peakNodes  int
	OnGC       func(live, dead int) // optional GC observer
	growthSeed int
}

type iteEntry struct {
	f, g, h, res Ref
}

type binopEntry struct {
	op        int32
	f, g, res Ref
}

// quantEntry caches one Exists/ForAll recursion. The quantification cube
// (the suffix actually reaching this node) and the operator are part of
// the key, so plans that alternate cubes — an image step followed by a
// preimage step, as every fixpoint does — no longer thrash the cache.
type quantEntry struct {
	f, cube, res Ref
	op           int32
}

// aexEntry caches one AndExists recursion, cube included in the key for
// the same reason.
type aexEntry struct {
	f, g, cube, res Ref
}

const (
	opAnd = iota + 1
	opOr
	opXor
	opDiff // f AND NOT g
)

const (
	defaultTableSize = 1 << 14
	iteCacheSize     = 1 << 15
	binopCacheSize   = 1 << 16
	quantCacheSize   = 1 << 15
	aexCacheSize     = 1 << 16
)

// New creates a Manager with no variables. Variables are added with
// NewVar or NewVars.
func New() *Manager {
	m := &Manager{
		table:     make([]int32, defaultTableSize),
		tableMask: defaultTableSize - 1,
		ite:       make([]iteEntry, iteCacheSize),
		binop:     make([]binopEntry, binopCacheSize),
		quant:     make([]quantEntry, quantCacheSize),
		aex:       make([]aexEntry, aexCacheSize),
		gcEnabled: true,
		autoGCAt:  1 << 20,
	}
	// Install the two terminals. Index 0 = False, 1 = True.
	m.nodes = append(m.nodes,
		node{level: terminalLevel, low: False, high: False},
		node{level: terminalLevel, low: True, high: True},
	)
	m.refs = append(m.refs, 1, 1) // terminals are permanently referenced
	m.invalidateCaches()
	return m
}

// NumVars returns the number of variables created in the manager.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live plus dead nodes currently allocated,
// including the two terminals.
func (m *Manager) Size() int { return len(m.nodes) - len(m.free) }

// PeakSize returns the largest node count observed since creation.
func (m *Manager) PeakSize() int { return m.peakNodes }

// NewVar appends a fresh variable at the bottom of the current order and
// returns its projection function (the BDD "v").
func (m *Manager) NewVar() Ref {
	v := m.numVars
	m.numVars++
	m.var2level = append(m.var2level, int32(v))
	m.level2var = append(m.level2var, int32(v))
	return m.mk(int32(v), False, True)
}

// NewVars creates n fresh variables and returns their projection
// functions in creation order.
func (m *Manager) NewVars(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = m.NewVar()
	}
	return out
}

// Var returns the projection function of variable id v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(m.var2level[v], False, True)
}

// NVar returns the negative literal of variable id v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(m.var2level[v], True, False)
}

// Level returns the current level of variable id v in the order.
func (m *Manager) Level(v int) int { return int(m.var2level[v]) }

// VarAtLevel returns the variable id currently placed at the given level.
func (m *Manager) VarAtLevel(l int) int { return int(m.level2var[l]) }

// VarOf returns the variable id labelling the root node of f. It panics
// if f is a terminal.
func (m *Manager) VarOf(f Ref) int {
	n := m.nodes[f]
	if n.level == terminalLevel {
		panic("bdd: VarOf on terminal")
	}
	return int(m.level2var[n.level])
}

// IsTerminal reports whether f is one of the two constants.
func (m *Manager) IsTerminal(f Ref) bool { return f == False || f == True }

// Low returns the else-cofactor of the root node of f.
func (m *Manager) Low(f Ref) Ref { return m.nodes[f].low }

// High returns the then-cofactor of the root node of f.
func (m *Manager) High(f Ref) Ref { return m.nodes[f].high }

// mk returns the canonical node (level, low, high), applying the
// reduction rules: equal children collapse, and structurally identical
// nodes are shared through the unique table.
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	h := hash3(uint64(level), uint64(low), uint64(high)) & m.tableMask
	for {
		idx := m.table[h]
		if idx == 0 {
			break
		}
		n := &m.nodes[idx-1]
		if n.level == level && n.low == low && n.high == high {
			return Ref(idx - 1)
		}
		h = (h + 1) & m.tableMask
	}
	// Not found: allocate.
	var r Ref
	if len(m.free) > 0 {
		r = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.nodes[r] = node{level: level, low: low, high: high}
		m.refs[r] = 0
	} else {
		r = Ref(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, low: low, high: high})
		m.refs = append(m.refs, 0)
	}
	m.tableInsert(r)
	if s := len(m.nodes); s > m.peakNodes {
		m.peakNodes = s
	}
	if float64(m.Size()) > 0.7*float64(len(m.table)) {
		m.growTable()
	}
	return r
}

func (m *Manager) tableInsert(r Ref) {
	n := m.nodes[r]
	h := hash3(uint64(n.level), uint64(n.low), uint64(n.high)) & m.tableMask
	for m.table[h] != 0 {
		h = (h + 1) & m.tableMask
	}
	m.table[h] = int32(r) + 1
}

func (m *Manager) growTable() {
	newSize := len(m.table) * 2
	m.table = make([]int32, newSize)
	m.tableMask = uint64(newSize - 1)
	live := make([]bool, len(m.nodes))
	for _, f := range m.free {
		live[f] = true // mark recycled slots so we skip them
	}
	for i := 2; i < len(m.nodes); i++ {
		if !live[i] {
			m.tableInsert(Ref(i))
		}
	}
}

func hash3(a, b, c uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 ^ bits.RotateLeft64(b, 21)*0xbf58476d1ce4e5b9 ^ bits.RotateLeft64(c, 42)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

func (m *Manager) invalidateCaches() {
	for i := range m.ite {
		m.ite[i] = iteEntry{f: -1}
	}
	for i := range m.binop {
		m.binop[i] = binopEntry{f: -1}
	}
	m.invalidateQuantCache()
	m.sat = nil
}

func (m *Manager) invalidateQuantCache() {
	for i := range m.quant {
		m.quant[i] = quantEntry{f: -1}
	}
	for i := range m.aex {
		m.aex[i] = aexEntry{f: -1}
	}
}

// check panics if f is not a plausible handle for this manager. It is
// used at public API boundaries.
func (m *Manager) check(f Ref) {
	if f < 0 || int(f) >= len(m.nodes) {
		panic(fmt.Sprintf("bdd: invalid ref %d (manager has %d nodes)", f, len(m.nodes)))
	}
}
