// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with complement edges, the symbolic kernel underneath every
// verification algorithm in this repository.
//
// The design follows the classic shared-BDD architecture used by the
// original HSIS (and by BuDDy/CUDD): a single Manager owns an arena of
// nodes, a unique table guaranteeing canonicity, operation caches, and
// reference counts for garbage collection. Node handles are small
// integer Refs that are only meaningful together with their Manager.
//
// The sign bit of a Ref is a complement mark: a negative Ref denotes the
// Boolean complement of the function stored at the underlying node, so a
// function and its negation share one DAG and Not is a single XOR with
// no allocation. Canonicity is preserved by the standard rule that the
// low (else) edge of a stored node is never complemented; mk re-roots
// any violating node onto the complement of its flipped twin. There is a
// single stored terminal — the False node at index 0 — and True is its
// complement edge, so the identity False = ¬True holds on Refs rather
// than between two distinct nodes.
//
// Variables are identified by stable integer IDs assigned at creation
// time. Each variable sits at a level in the global order; adjacent
// levels can be exchanged in place through a ReorderSession (see
// reorder.go), which is how the sifting driver in internal/reorder
// permutes the order dynamically. All operations are deterministic.
//
// # Concurrency
//
// A Manager has two execution modes selected by SetWorkers. With one
// worker (the default) it is single-threaded and every hot path is
// identical to the classic sequential kernel: plain unique-table probes,
// plain cache slots, no locks. With two or more workers the manager is
// safe for concurrent operations from any number of goroutines and
// additionally splits large And/Exists/AndExists recursions across a
// bounded work-stealing pool (see pool.go):
//
//   - the node arena is a chunked store whose chunks never move, so a
//     Ref-to-node lookup is stable under concurrent allocation;
//   - the unique table is sharded into lock-striped segments keyed on
//     the top bits of the node hash;
//   - the operation caches publish fixed-width entries through a
//     per-slot sequence lock, so lookups are lock-free and exact;
//   - refcounts and gauges are atomic;
//   - GC, cache adaptation and reorder sessions are stop-the-world
//     epochs behind an RWMutex every operation read-locks.
//
// GC and reordering keep their sequential safe-point contract: they run
// only at explicit calls (GC, MaybeGC, MaybeReorder), never implicitly
// inside an operation, and they must be invoked from one goroutine at a
// time while no other goroutine holds unprotected Refs across the call.
// ParallelDo sections defer MaybeGC/MaybeReorder automatically so
// concurrent tasks cannot collect each other's intermediate results.
package bdd

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"hsis/internal/telemetry"
)

// Ref is a handle to a BDD node inside a Manager, with the sign bit
// carrying the complement mark. The zero value is the constant false
// BDD; True is the constant true BDD. Refs are only valid for the
// Manager that produced them.
type Ref int32

// compBit is the complement mark: XOR-ing it negates the function.
const compBit Ref = -1 << 31

// Terminal constants. A Manager stores one terminal node (False, at
// index 0); True is the complement edge onto the same node.
const (
	False Ref = 0
	True  Ref = compBit
)

// regular strips the complement mark from f.
func regular(f Ref) Ref { return f &^ compBit }

// isComp reports whether f carries the complement mark.
func isComp(f Ref) bool { return f < 0 }

// neg complements f. This is the O(1), allocation-free negation that
// complement edges exist to provide.
func neg(f Ref) Ref { return f ^ compBit }

// terminalLevel is the level assigned to the terminal node. It compares
// greater than any variable level.
const terminalLevel = int32(1 << 30)

// node is one stored BDD node. The low edge is always regular (the
// canonical-form invariant); the high edge may carry a complement mark.
//
// The node stores its *variable ID*, not its level: the level is read
// through var2level (see levelOf). IDs are stable across reordering
// while levels are not, so exchanging two adjacent levels whose
// variables do not interact is a pure order-map update that touches no
// node — the O(1) swap fast path dynamic reordering is built on. The
// variable/level bijection makes the triple (varID, low, high) exactly
// as canonical as (level, low, high), so the unique table keys on the
// stored triple directly.
type node struct {
	varID int32 // variable ID (terminalLevel for the terminal node)
	low   Ref   // else-branch (variable = 0), never complemented
	high  Ref   // then-branch (variable = 1)
}

// The node arena is chunked: chunks are fixed-size blocks that are
// allocated on demand, published with an atomic pointer, and never
// moved or freed, so a concurrent reader can follow any Ref it has
// legitimately received without synchronizing with allocators. Slot
// indices are dense; index 0 is the terminal.
const (
	chunkShift = 16
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
	maxChunks  = 1 << (31 - chunkShift)
)

// chunk stores one block of nodes plus their external reference counts
// (kept out of node so the reorder session can keep keying its maps on
// the bare triple).
type chunk struct {
	nodes [chunkSize]node
	refs  [chunkSize]int32
}

// The unique table is sharded: the top shardBits of a node hash select
// a segment, the low bits probe inside it. Each segment is an
// open-addressing table guarded by its own mutex in parallel mode;
// sequential mode skips the locks entirely.
const (
	shardBits      = 6
	numShards      = 1 << shardBits
	initShardSlots = defaultTableSize / numShards
)

type tableShard struct {
	mu    sync.Mutex
	slots []int32 // node indices + 1; 0 means empty
	mask  uint64
	count int // occupied slots, drives per-shard growth
	// pad the shard to its own cache lines so neighbouring shard locks
	// do not false-share under contention
	_ [64]byte
}

// Manager owns a shared forest of BDD nodes. It is single-threaded by
// default; SetWorkers(n > 1) makes it safe for concurrent operations
// and enables the fork/join worker pool (see the package comment).
type Manager struct {
	chunks  []atomic.Pointer[chunk]
	nodeCap atomic.Int64 // number of initialized node slots (high water)

	shards [numShards]tableShard

	free    []Ref // recycled node indices (dead after GC); free[:freeLen]
	freeLen atomic.Int64

	var2level []int32
	level2var []int32

	// Operation caches. Each is a direct-mapped power-of-two array that
	// starts at its initial size and doubles adaptively (see cache.go);
	// entries whose operands and result survive a GC are kept. Each
	// entry carries a sequence word used only in parallel mode.
	ite       []iteEntry
	binop     []binopEntry
	quant     []quantEntry // Exists cache, keyed on (f, cube)
	aex       []aexEntry   // AndExists cache, keyed on (f, g, cube)
	iteMask   uint64
	binopMask uint64
	quantMask uint64
	aexMask   uint64

	cacheBudget int                    // total entry budget across all op caches
	cacheWin    [numCaches]cacheWindow // adaptive-growth bookkeeping
	allocs      atomic.Uint64          // node allocations (flushed from contexts)
	allocsAtGC  uint64                 // allocs at the last collection (demand estimate)

	marks []uint64 // reusable mark bitmap, one bit per node slot

	// Reusable rebuild memo (Permute/Compose/VectorCompose): indexed by
	// stored-node id, validated by an epoch stamp so calls never clear
	// it. memoLast (stored nodes visited by the previous rebuild) picks
	// between this and a plain map per call; see subst.go. memoMu
	// serializes the substitution family in parallel mode.
	memoMu    sync.Mutex
	memoVal   []Ref
	memoStamp []uint32
	memoEpoch uint32
	memoCount int
	memoLast  int

	statApplyCalls, statApplyHits atomic.Uint64
	statITECalls, statITEHits     atomic.Uint64
	statQuantCalls, statQuantHits atomic.Uint64
	statAexCalls, statAexHits     atomic.Uint64
	statCompShared                atomic.Uint64 // mk results re-rooted onto a complement-shared node
	statPermCalls, statPermHits   atomic.Uint64 // Permuter node visits / persistent-memo hits
	statCacheGrowths              atomic.Int64
	statCacheKept                 int // op-cache entries that survived the last GC

	statForks      atomic.Uint64 // subproblems forked onto the pool
	statSteals     atomic.Uint64 // futures executed off the forking call path
	statContention atomic.Uint64 // shard-lock waits + cache-publication conflicts

	statL1Hits   atomic.Uint64 // probes answered by a private L1 cache
	statL1Merges atomic.Uint64 // L1→L2 promotion drains (fork-join/op boundaries)
	statL1Promos atomic.Uint64 // entries successfully published to the shared L2

	statSiftZones     atomic.Uint64 // independent sift zones opened across sessions
	statSiftParBlocks atomic.Uint64 // blocks sifted inside zoned sessions

	statGrainAdjusts atomic.Uint64 // fork-depth moves by the grain controller

	// l1Every overrides the L1 pending-buffer size (test knob; see
	// SetL1MergeInterval). Zero means the default batch. Set only while
	// the manager is quiescent.
	l1Every int32

	// cacheEpoch invalidates every private L1 op cache at once: it is
	// bumped at each point that sweeps or clears the shared caches (GC,
	// reorder Close). L1 entries carry the epoch they were stored under
	// and fail validation after a bump, so the L1s need no sweeping.
	cacheEpoch atomic.Uint32

	// Concurrent-GC barrier state (gc.go). gcMarking is set for the
	// concurrent mark phase; while it is set, every ref that surfaces
	// from the unique table, an op cache, or IncRef below gcWatermark is
	// pushed onto gcResq so the exclusive window can mark it before the
	// sweep — the resurrection barrier.
	gcActive    atomic.Bool
	gcMarking   atomic.Bool
	gcWatermark atomic.Int64
	gcMu        sync.Mutex
	gcResq      []Ref

	// interrupted is the cooperative-cancellation flag (interrupt.go):
	// set by Interrupt from any goroutine, polled by the fixpoint
	// drivers' CheckInterrupt calls at their safe points.
	interrupted atomic.Bool

	gcEnabled bool
	autoGCAt  int // node count that triggers an automatic GC on allocation
	GCCount   int // number of garbage collections performed
	lastLive  int
	numVars   int
	// numVarsPub mirrors numVars for lock-free external readers:
	// NumVars() and the Var/NVar range checks run outside the epoch
	// lock, so they must not read the plain field NewVar mutates.
	numVarsPub atomic.Int32
	peakNodes  atomic.Int64
	peakLive   atomic.Int64         // largest live count seen at an allocation
	OnGC       func(live, dead int) // optional GC observer

	// Parallel mode (pool.go, parallel.go). par is set by SetWorkers at
	// a quiescent point and selects the lock-striped/atomic access
	// paths; stw is the stop-the-world epoch lock: operations hold it
	// for read, GC / cache adaptation / reorder sessions for write.
	par          bool
	workers      int
	stw          sync.RWMutex
	sections     atomic.Int32 // open ParallelDo sections (defers GC/reorder)
	adaptPending atomic.Bool  // a context requested a cache-adaptation check
	pool         *pool
	ctxFree      sync.Pool
	seqCtx       *kctx

	// Dynamic variable reordering (reorder.go; sifting driver in
	// internal/reorder).
	session        *ReorderSession // non-nil while a reorder is in progress
	inSession      atomic.Bool     // lock-free mirror of session != nil
	groupsMu       sync.Mutex      // guards groups: zone sifters glue concurrently
	groups         [][]int         // atomic sifting blocks (variable IDs)
	reorderPolicy  ReorderPolicy
	reorderFn      func(*Manager) // automatic-reorder hook
	reorderGrow    float64
	reorderMin     int
	reorderAt      atomic.Int64 // live count that arms reorderPending (0 = disarmed)
	reorderPending atomic.Bool  // trigger fired; next safe point reorders

	statReorders     int
	statReorderSwaps uint64
	statInterSkips   uint64 // swaps taken as non-interacting relabels
	statLBAborts     uint64 // sift directions cut by the lower bound
	statSymPairs     int    // symmetric pairs glued into blocks
	statReorderTime  time.Duration
	reorderBefore    int // manager size entering the last reorder
	reorderAfter     int // manager size leaving the last reorder

	// statsSnap is the coherent Statistics snapshot taken when a reorder
	// session opens; Stats() serves it while the session is rewriting the
	// arena (see stats.go).
	statsSnap Statistics

	// scope is the manager's observability endpoint: every kernel
	// instrumentation site (GC, cache growth, reorder sessions, gauge
	// publication) and every fixpoint driver working on this manager
	// reports through Telemetry(). Nil falls back to the process
	// default, which keeps the single-manager CLI behaviour; the daemon
	// sets one scope per job so concurrent jobs never share a sink.
	scope atomic.Pointer[telemetry.Scope]
}

// SetTelemetry installs sc as this manager's observability scope (nil
// reverts to the process default). Safe to call at any time; sites
// read the pointer atomically.
func (m *Manager) SetTelemetry(sc *telemetry.Scope) {
	m.scope.Store(sc)
}

// Telemetry returns the scope instrumentation on this manager should
// use: the instance scope if set, else the process default, else nil
// (the disarmed case — two atomic loads and a branch, no allocation).
func (m *Manager) Telemetry() *telemetry.Scope {
	if sc := m.scope.Load(); sc != nil {
		return sc
	}
	return telemetry.Default()
}

// Cache entries. The seq word is the per-slot sequence lock used by the
// parallel publication protocol (cache.go); sequential mode reads and
// writes the fields directly. Empty cache entries are all-zero. A zero
// operand field can never match a probe: every recursion resolves
// terminal operands before probing, so a cached f is always a
// non-terminal (index ≥ 1) Ref.
type iteEntry struct {
	seq          uint32
	f, g, h, res Ref
}

type binopEntry struct {
	seq       uint32
	op        int32
	f, g, res Ref
}

// quantEntry caches one Exists recursion (ForAll is derived through
// complement edges: ∀x.f = ¬∃x.¬f, so one cache serves both). The
// quantification cube (the suffix actually reaching this node) is part
// of the key, so plans that alternate cubes — an image step followed by
// a preimage step, as every fixpoint does — do not thrash the cache.
type quantEntry struct {
	seq          uint32
	f, cube, res Ref
}

// aexEntry caches one AndExists recursion, cube included in the key for
// the same reason.
type aexEntry struct {
	seq             uint32
	f, g, cube, res Ref
}

const (
	opAnd = iota + 1
	opXor
)

const defaultTableSize = 1 << 14

// New creates a Manager with no variables. Variables are added with
// NewVar or NewVars.
func New() *Manager {
	m := &Manager{
		chunks:      make([]atomic.Pointer[chunk], maxChunks),
		ite:         make([]iteEntry, initITECache),
		binop:       make([]binopEntry, initBinopCache),
		quant:       make([]quantEntry, initQuantCache),
		aex:         make([]aexEntry, initAexCache),
		iteMask:     initITECache - 1,
		binopMask:   initBinopCache - 1,
		quantMask:   initQuantCache - 1,
		aexMask:     initAexCache - 1,
		cacheBudget: defaultCacheBudget,
		gcEnabled:   true,
		autoGCAt:    1 << 19,
		workers:     1,
	}
	for i := range m.shards {
		m.shards[i].slots = make([]int32, initShardSlots)
		m.shards[i].mask = initShardSlots - 1
	}
	m.seqCtx = &kctx{m: m}
	m.ctxFree.New = func() any { return &kctx{m: m} }
	// Install the single terminal at index 0.
	m.chunks[0].Store(new(chunk))
	m.nodeCap.Store(1)
	t := m.node(0)
	t.varID = terminalLevel
	*m.rcPtr(0) = 1 // permanently referenced
	return m
}

// node returns the stored node underlying f (complement mark ignored).
// Chunks never move, so the pointer stays valid across allocations; in
// parallel mode callers may read it plainly for any Ref they received
// through a synchronized channel (a cache hit, a unique-table hit, a
// joined future, or program order).
func (m *Manager) node(f Ref) *node {
	i := uint32(f &^ compBit)
	return &m.chunks[i>>chunkShift].Load().nodes[i&chunkMask]
}

// rcPtr returns the external reference-count cell of f's stored node.
func (m *Manager) rcPtr(f Ref) *int32 {
	i := uint32(f &^ compBit)
	return &m.chunks[i>>chunkShift].Load().refs[i&chunkMask]
}

// ensureChunk makes sure the chunk containing slot i exists. Losing the
// publication race just discards the extra chunk.
func (m *Manager) ensureChunk(i int64) {
	ci := i >> chunkShift
	if ci >= maxChunks {
		panic("bdd: node arena exhausted")
	}
	if m.chunks[ci].Load() == nil {
		m.chunks[ci].CompareAndSwap(nil, new(chunk))
	}
}

// NumVars returns the number of variables created in the manager.
func (m *Manager) NumVars() int { return int(m.numVarsPub.Load()) }

// Size returns the number of live plus dead nodes currently allocated,
// including the terminal.
func (m *Manager) Size() int { return int(m.nodeCap.Load() - m.freeLen.Load()) }

// PeakSize returns the largest node count observed since creation.
func (m *Manager) PeakSize() int { return int(m.peakNodes.Load()) }

// newVarLocked is NewVar's body; callers in parallel mode must hold the
// stop-the-world write lock.
func (m *Manager) newVarLocked() Ref {
	v := m.numVars
	m.numVars++
	m.numVarsPub.Store(int32(m.numVars))
	m.var2level = append(m.var2level, int32(v))
	m.level2var = append(m.level2var, int32(v))
	r := m.mk(m.seqCtx, int32(v), False, True)
	atomic.AddInt32(m.rcPtr(r), 1)
	return r
}

// NewVar appends a fresh variable at the bottom of the current order and
// returns its projection function (the BDD "v"). Projection nodes are
// permanently referenced: callers everywhere hold them for the life of
// the manager (spaces, networks, cubes), and a reorder session must
// never reclaim and reuse their slots.
func (m *Manager) NewVar() Ref {
	if m.par {
		m.stw.Lock()
		defer m.stw.Unlock()
	}
	return m.newVarLocked()
}

// NewVars creates n fresh variables and returns their projection
// functions in creation order.
func (m *Manager) NewVars(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = m.NewVar()
	}
	return out
}

// Var returns the projection function of variable id v.
func (m *Manager) Var(v int) Ref {
	if nv := m.NumVars(); v < 0 || v >= nv {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, nv))
	}
	c := m.begin()
	r := m.mk(c, m.var2level[v], False, True)
	m.end(c)
	return r
}

// NVar returns the negative literal of variable id v.
func (m *Manager) NVar(v int) Ref {
	if nv := m.NumVars(); v < 0 || v >= nv {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, nv))
	}
	c := m.begin()
	r := m.mk(c, m.var2level[v], True, False)
	m.end(c)
	return r
}

// varRef is the internal projection builder used inside held operations
// (public Var would re-enter the operation lock).
func (m *Manager) varRef(c *kctx, v int) Ref {
	return m.mk(c, m.var2level[v], False, True)
}

// Level returns the current level of variable id v in the order.
// Deliberately lock-free: the sifting driver queries it from inside a
// reorder session (which holds the stop-the-world lock), so callers
// outside a session must not run it concurrently with NewVar.
func (m *Manager) Level(v int) int { return int(m.var2level[v]) }

// VarAtLevel returns the variable id currently placed at the given
// level. Lock-free with the same contract as Level.
func (m *Manager) VarAtLevel(l int) int { return int(m.level2var[l]) }

// VarOf returns the variable id labelling the root node of f. It panics
// if f is a terminal.
func (m *Manager) VarOf(f Ref) int {
	m.rlock()
	defer m.runlock()
	n := m.node(f)
	if n.varID == terminalLevel {
		panic("bdd: VarOf on terminal")
	}
	return int(n.varID)
}

// IsTerminal reports whether f is one of the two constants.
func (m *Manager) IsTerminal(f Ref) bool { return regular(f) == 0 }

// Low returns the else-cofactor of the root node of f.
func (m *Manager) Low(f Ref) Ref { return m.node(f).low ^ (f & compBit) }

// High returns the then-cofactor of the root node of f.
func (m *Manager) High(f Ref) Ref { return m.node(f).high ^ (f & compBit) }

// top returns the root level of f and its two cofactors, pushing f's
// complement mark down onto the children.
func (m *Manager) top(f Ref) (level int32, low, high Ref) {
	n := m.node(f)
	c := f & compBit
	return m.nodeLevel(n), n.low ^ c, n.high ^ c
}

// nodeLevel maps a stored node to its current level. The terminal's
// varID is the terminalLevel sentinel, above every var2level index.
func (m *Manager) nodeLevel(n *node) int32 {
	if n.varID == terminalLevel {
		return terminalLevel
	}
	return m.var2level[n.varID]
}

// levelOf returns the root level of f (terminalLevel for constants).
func (m *Manager) levelOf(f Ref) int32 { return m.nodeLevel(m.node(f)) }

// mk returns the canonical ref for the triple (level, low, high),
// applying the reduction rules: equal children collapse, structurally
// identical nodes are shared through the unique table, and a node whose
// low edge is complemented is re-rooted onto the complement of its
// flipped twin so f and ¬f share one stored node.
func (m *Manager) mk(c *kctx, level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if isComp(low) {
		c.compShared++
		return neg(m.mkNode(c, level, neg(low), neg(high)))
	}
	return m.mkNode(c, level, low, high)
}

// mkNode finds or allocates the stored node for the variable at the
// given level; low must already be regular. The table keys on the
// variable ID (what nodes store), so the level is translated exactly
// once per probe. In parallel mode the probe and insert run under
// the shard lock selected by the top hash bits; node fields are written
// before the slot index is published, so the shard mutex (for same-shard
// lookups) or any later synchronized hand-off of the Ref (cache
// publication, future completion) orders the field writes before every
// reader.
func (m *Manager) mkNode(c *kctx, level int32, low, high Ref) Ref {
	vid := m.level2var[level]
	h := hash3(uint64(vid), uint64(low), uint64(high))
	sh := &m.shards[h>>(64-shardBits)]
	if c.par {
		if !sh.mu.TryLock() {
			c.contention++
			sh.mu.Lock()
		}
	} else if m.session != nil {
		panic("bdd: operation during an active reorder session")
	}
	hh := h & sh.mask
	for {
		idx := sh.slots[hh]
		if idx == 0 {
			break
		}
		n := m.node(Ref(idx - 1))
		if n.varID == vid && n.low == low && n.high == high {
			if c.par {
				sh.mu.Unlock()
				m.gcProtect(Ref(idx - 1))
			}
			return Ref(idx - 1)
		}
		hh = (hh + 1) & sh.mask
	}
	// Not found: allocate. The probe loop left hh at an empty slot for
	// this key, so insert there directly instead of rehashing.
	r := m.allocSlot(c)
	n := m.node(r)
	n.varID, n.low, n.high = vid, low, high
	sh.slots[hh] = int32(r) + 1
	sh.count++
	if 10*sh.count > 7*len(sh.slots) {
		sh.grow(m)
	}
	if c.par {
		sh.mu.Unlock()
		m.gcProtect(r)
	}
	m.afterAlloc(c)
	return r
}

// gcProtect is the concurrent-GC resurrection barrier: while a mark
// phase is in flight, any ref that surfaces from the unique table, an
// operation cache, or IncRef — and whose slot predates the mark
// snapshot — is queued for the collector, which marks it (transitively)
// in the exclusive window before sweeping. Slots at or above the
// watermark were allocated after the snapshot and are retained
// wholesale. Off the mark phase this is one atomic load.
func (m *Manager) gcProtect(f Ref) {
	if !m.gcMarking.Load() {
		return
	}
	if int64(regular(f)) >= m.gcWatermark.Load() {
		return
	}
	m.gcMu.Lock()
	m.gcResq = append(m.gcResq, f)
	m.gcMu.Unlock()
}

// allocSlot pops a recycled slot or extends the arena. Free-list pushes
// happen only at stop-the-world points (GC, reorder), so the parallel
// path is a simple CAS pop against a stable backing array.
func (m *Manager) allocSlot(c *kctx) Ref {
	if c.par {
		for {
			top := m.freeLen.Load()
			if top == 0 {
				break
			}
			r := m.free[top-1]
			if m.freeLen.CompareAndSwap(top, top-1) {
				return r
			}
		}
		i := m.nodeCap.Add(1) - 1
		m.ensureChunk(i)
		return Ref(i)
	}
	if top := m.freeLen.Load(); top > 0 {
		r := m.free[top-1]
		m.freeLen.Store(top - 1)
		return r
	}
	i := m.nodeCap.Add(1) - 1
	m.ensureChunk(i)
	return Ref(i)
}

// maxStore raises a to v if v is larger (monotonic gauge update).
func maxStore(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// afterAlloc is mkNode's post-allocation bookkeeping: peak gauges, the
// reorder growth trigger, and the allocation-driven cache-adaptation
// checkpoint. Sequential mode keeps the exact per-allocation behaviour
// of the classic kernel; parallel mode samples the gauges (every 64th
// allocation per context) to stay off the shared cache lines, and turns
// the adaptation check into a flag drained at the next stop-the-world
// point — the caches must not be resized under concurrent probes.
func (m *Manager) afterAlloc(c *kctx) {
	c.allocs++
	c.sinceAdapt++
	if c.par {
		if c.allocs&63 == 0 {
			maxStore(&m.peakNodes, m.nodeCap.Load())
			live := int64(m.Size())
			maxStore(&m.peakLive, live)
			if at := m.reorderAt.Load(); at > 0 && live >= at {
				m.reorderPending.Store(true)
			}
		}
		if c.sinceAdapt >= cacheAdaptEvery {
			c.sinceAdapt = 0
			m.adaptPending.Store(true)
			if sc := m.Telemetry(); sc != nil {
				sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
			}
		}
		return
	}
	maxStore(&m.peakNodes, m.nodeCap.Load())
	live := int64(m.Size())
	maxStore(&m.peakLive, live)
	if at := m.reorderAt.Load(); at > 0 && live >= at {
		// The growth trigger arms here; the reorder itself runs at the
		// next safe point (MaybeReorder/MaybeGC), never inside an
		// operation.
		m.reorderPending.Store(true)
	}
	if c.sinceAdapt >= cacheAdaptEvery {
		// Allocation-driven adaptation point: lets the caches grow in
		// the middle of a long recursion that never reaches a GC. It is
		// also the periodic checkpoint where the kernel publishes its
		// node counts for the telemetry sampler — off the per-allocation
		// hot path, but frequent enough that a blowup shows up in the
		// timeline while it happens.
		c.sinceAdapt = 0
		c.flush(m)
		m.adaptCaches()
		if sc := m.Telemetry(); sc != nil {
			sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
		}
	}
}

// tableInsert re-indexes node r during a stop-the-world rebuild (GC,
// reorder Close).
func (m *Manager) tableInsert(r Ref) {
	n := m.node(r)
	h := hash3(uint64(n.varID), uint64(n.low), uint64(n.high))
	sh := &m.shards[h>>(64-shardBits)]
	hh := h & sh.mask
	for sh.slots[hh] != 0 {
		hh = (hh + 1) & sh.mask
	}
	sh.slots[hh] = int32(r) + 1
	sh.count++
	if 10*sh.count > 7*len(sh.slots) {
		sh.grow(m)
	}
}

// grow doubles one shard, re-probing its entries into the larger array.
// Callers hold the shard lock (parallel mode) or are at a
// stop-the-world point.
func (sh *tableShard) grow(m *Manager) {
	old := sh.slots
	n := len(old) * 2
	sh.slots = make([]int32, n)
	sh.mask = uint64(n - 1)
	for _, idx := range old {
		if idx == 0 {
			continue
		}
		nd := m.node(Ref(idx - 1))
		h := hash3(uint64(nd.varID), uint64(nd.low), uint64(nd.high)) & sh.mask
		for sh.slots[h] != 0 {
			h = (h + 1) & sh.mask
		}
		sh.slots[h] = idx
	}
}

// resetMarks sizes the reusable mark bitmap to the node arena and clears
// it. The bitmap is shared by GC and unique-table rebuilds, so neither
// allocates per collection.
func (m *Manager) resetMarks() {
	n := (int(m.nodeCap.Load()) + 63) / 64
	if cap(m.marks) < n {
		m.marks = make([]uint64, n)
		return
	}
	m.marks = m.marks[:n]
	clear(m.marks)
}

func (m *Manager) setMark(i Ref) { m.marks[i>>6] |= 1 << (uint(i) & 63) }

func (m *Manager) marked(i Ref) bool { return m.marks[i>>6]&(1<<(uint(i)&63)) != 0 }

func hash3(a, b, c uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 ^ bits.RotateLeft64(b, 21)*0xbf58476d1ce4e5b9 ^ bits.RotateLeft64(c, 42)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// check panics if f is not a plausible handle for this manager. It is
// used at public API boundaries.
func (m *Manager) check(f Ref) {
	if int64(regular(f)) >= m.nodeCap.Load() {
		panic(fmt.Sprintf("bdd: invalid ref %d (manager has %d nodes)", f, m.nodeCap.Load()))
	}
}
