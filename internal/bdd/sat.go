package bdd

import (
	"math/big"
	"sort"
)

// Satisfiability utilities: counting, witness extraction, support and
// structural metrics. Traversals either push the complement mark onto
// cofactors as they descend (top) or memoize on regular nodes and fold
// the mark into the result — SatCount uses the complement identity
// |¬f| = 2^n − |f| directly.

// SatCount returns the number of satisfying assignments of f over the
// given number of variables (typically Manager.NumVars(), but callers
// counting over a sub-space, e.g. state variables only, pass that
// sub-space's size and must ensure f's support lies within it).
// Fractions are accumulated in exact binary floating point (one mantissa
// bit per variable plus headroom): in float64 the complement identity
// 1 − (1 − x) cancels to zero for any set smaller than 2^-52 of the
// space, which is every individual state once a design has more than 52
// state bits. Only the final count is rounded to float64.
func (m *Manager) SatCount(f Ref, nvars int) float64 {
	m.check(f)
	m.rlock()
	defer m.runlock()
	prec := uint(m.numVars) + 64
	memo := make(map[Ref]*big.Float)
	// fraction of the full space satisfying f, times 2^nvars
	frac := m.satFrac(f, memo, prec)
	if frac.Sign() == 0 {
		return 0
	}
	total := new(big.Float).SetPrec(prec).SetMantExp(frac, nvars)
	out, _ := total.Float64()
	return out
}

// SatCountExact returns the exact number of satisfying assignments of f
// over nvars variables as a math/big integer. It shares SatCount's
// exact dyadic accumulation; the difference is purely the final
// rounding — SatCount rounds to float64 (silently losing precision once
// the count exceeds 2^53), while SatCountExact keeps every digit. The
// mantissa budget covers the worst case: frac is a dyadic rational with
// denominator at most 2^numVars, so frac·2^nvars is an integer needing
// at most numVars significant bits.
func (m *Manager) SatCountExact(f Ref, nvars int) *big.Int {
	m.check(f)
	m.rlock()
	defer m.runlock()
	prec := uint(m.numVars) + 64
	memo := make(map[Ref]*big.Float)
	frac := m.satFrac(f, memo, prec)
	if frac.Sign() == 0 {
		return new(big.Int)
	}
	total := new(big.Float).SetPrec(prec).SetMantExp(frac, nvars)
	out, acc := total.Int(nil)
	if acc != big.Exact {
		// Cannot happen under the precision argument above; fail loudly
		// rather than return a silently rounded "exact" count.
		panic("bdd: SatCountExact lost precision")
	}
	return out
}

// satFrac returns the fraction of all assignments satisfying f. The memo
// keys on regular nodes; complement marks become 1 − x on the way out.
func (m *Manager) satFrac(f Ref, memo map[Ref]*big.Float, prec uint) *big.Float {
	if f == False {
		return new(big.Float).SetPrec(prec)
	}
	if f == True {
		return new(big.Float).SetPrec(prec).SetInt64(1)
	}
	if isComp(f) {
		one := new(big.Float).SetPrec(prec).SetInt64(1)
		return one.Sub(one, m.satFrac(neg(f), memo, prec))
	}
	if v, ok := memo[f]; ok {
		return v
	}
	n := m.node(f)
	v := new(big.Float).SetPrec(prec)
	v.Add(m.satFrac(n.low, memo, prec), m.satFrac(n.high, memo, prec))
	v.SetMantExp(v, -1)
	memo[f] = v
	return v
}

// Literal is one variable assignment in a satisfying cube.
type Literal struct {
	Var int  // variable ID
	Val bool // assigned value
}

// AnySat returns one satisfying cube of f (assignments for the variables
// on one true-path; unmentioned variables are don't cares). Returns nil
// and false when f is unsatisfiable.
func (m *Manager) AnySat(f Ref) ([]Literal, bool) {
	m.check(f)
	if f == False {
		return nil, false
	}
	m.rlock()
	defer m.runlock()
	var out []Literal
	for f != True {
		level, low, high := m.top(f)
		v := int(m.level2var[level])
		if low != False {
			out = append(out, Literal{Var: v, Val: false})
			f = low
		} else {
			out = append(out, Literal{Var: v, Val: true})
			f = high
		}
	}
	return out, true
}

// AllSat invokes fn for every satisfying cube of f, where a cube is
// presented as a full slice indexed by variable ID with values 0, 1, or
// -1 (don't care). Iteration stops early if fn returns false.
func (m *Manager) AllSat(f Ref, fn func(cube []int8) bool) {
	m.check(f)
	m.rlock()
	defer m.runlock()
	cube := make([]int8, m.numVars)
	for i := range cube {
		cube[i] = -1
	}
	m.allSatRec(f, cube, fn)
}

func (m *Manager) allSatRec(f Ref, cube []int8, fn func([]int8) bool) bool {
	if f == False {
		return true
	}
	if f == True {
		return fn(cube)
	}
	level, low, high := m.top(f)
	v := m.level2var[level]
	cube[v] = 0
	if !m.allSatRec(low, cube, fn) {
		cube[v] = -1
		return false
	}
	cube[v] = 1
	if !m.allSatRec(high, cube, fn) {
		cube[v] = -1
		return false
	}
	cube[v] = -1
	return true
}

// Eval evaluates f under a complete assignment indexed by variable ID.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	m.check(f)
	m.rlock()
	defer m.runlock()
	for !m.IsTerminal(f) {
		level, low, high := m.top(f)
		if assignment[m.level2var[level]] {
			f = high
		} else {
			f = low
		}
	}
	return f == True
}

// Support returns the sorted variable IDs f depends on.
func (m *Manager) Support(f Ref) []int {
	m.check(f)
	m.rlock()
	defer m.runlock()
	seen := make(map[Ref]bool)
	vars := make(map[int]bool)
	m.supportRec(f, seen, vars)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (m *Manager) supportRec(f Ref, seen map[Ref]bool, vars map[int]bool) {
	f = regular(f)
	if f == False || seen[f] {
		return
	}
	seen[f] = true
	n := m.node(f)
	vars[int(n.varID)] = true
	m.supportRec(n.low, seen, vars)
	m.supportRec(n.high, seen, vars)
}

// NodeCount returns the number of stored BDD nodes in f, including the
// terminal when it is reachable. f and ¬f have the same count.
func (m *Manager) NodeCount(f Ref) int {
	m.check(f)
	m.rlock()
	defer m.runlock()
	seen := make(map[Ref]bool)
	m.countRec(f, seen)
	return len(seen)
}

// NodeCountMulti returns the number of distinct stored nodes in the
// shared forest rooted at the given functions.
func (m *Manager) NodeCountMulti(fs []Ref) int {
	m.rlock()
	defer m.runlock()
	seen := make(map[Ref]bool)
	for _, f := range fs {
		m.check(f)
		m.countRec(f, seen)
	}
	return len(seen)
}

func (m *Manager) countRec(f Ref, seen map[Ref]bool) {
	f = regular(f)
	if seen[f] {
		return
	}
	seen[f] = true
	if f == False {
		return
	}
	n := m.node(f)
	m.countRec(n.low, seen)
	m.countRec(n.high, seen)
}

// PickCube returns a full minterm (one concrete satisfying assignment)
// of f over the variables in vars, preferring value 0 for don't-care
// positions. The result maps variable ID to value. Returns false when f
// is unsatisfiable.
func (m *Manager) PickCube(f Ref, vars []int) (map[int]bool, bool) {
	lits, ok := m.AnySat(f)
	if !ok {
		return nil, false
	}
	out := make(map[int]bool, len(vars))
	for _, v := range vars {
		out[v] = false
	}
	for _, l := range lits {
		out[l.Var] = l.Val
	}
	return out, true
}
