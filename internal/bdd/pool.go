package bdd

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Fork/join recursion splitting. Near the root of a large And, Exists
// or AndExists recursion the two cofactor subproblems are independent,
// so the kernel forks one of them as a future onto a small
// work-stealing pool and computes the other inline. Determinism is free:
// the unique table makes every subresult canonical, so the final Ref is
// identical regardless of which goroutine computed which half.
//
// The pool is deliberately simple — a Treiber stack of futures and
// n-1 persistent workers that park on a condition variable when the
// stack drains. Futures are tiny and forked only above a depth cutoff
// (and only when enough variable levels remain below the current node
// for the subproblem to plausibly amortize a dispatch), so the stack
// never holds more than a few dozen entries per operation.

// futKind selects the recursion a future runs.
type futKind uint8

const (
	futAnd futKind = iota
	futExists
	futAndExists
)

// future states: a future is claimed exactly once, by the first
// goroutine (owner at join, or a worker/helper stealing it) to CAS
// pending→running.
const (
	futPending uint32 = iota
	futRunning
	futDone
)

type future struct {
	next  *future // Treiber-stack link
	m     *Manager
	kind  futKind
	depth int32
	f, g  Ref
	cube  Ref
	res   Ref
	state atomic.Uint32
}

// run executes the future's recursion with the given context and
// publishes the result. The state store is the release barrier that
// makes res (and every node the recursion built) visible to the joiner.
func (fu *future) run(c *kctx) {
	m := fu.m
	var r Ref
	switch fu.kind {
	case futAnd:
		r = m.andRec(c, fu.f, fu.g, fu.depth)
	case futExists:
		r = m.existsRec(c, fu.f, fu.cube, fu.depth)
	case futAndExists:
		r = m.andExistsRec(c, fu.f, fu.g, fu.cube, fu.depth)
	}
	fu.res = r
	fu.state.Store(futDone)
}

// pool is the bounded work-stealing worker pool: one per Manager in
// parallel mode, holding workers-1 persistent goroutines.
type pool struct {
	m          *Manager
	depthLimit int32
	head       atomic.Pointer[future]

	mu     sync.Mutex
	cond   *sync.Cond
	parked atomic.Int32
	stop   bool
	wg     sync.WaitGroup
}

// forkDepth bounds how deep in the recursion forking may still happen:
// every level doubles the potential future count, so a few levels past
// saturating the workers is enough.
func forkDepth(workers int) int32 {
	d := int32(3)
	for w := 1; w < workers; w *= 2 {
		d++
	}
	return d
}

// forkHeadroom is the minimum number of variable levels that must
// remain below a node before its cofactors are worth dispatching: a
// subproblem over a handful of levels finishes faster than a fork.
const forkHeadroom = 12

func newPool(m *Manager, workers int) *pool {
	p := &pool{m: m, depthLimit: forkDepth(workers)}
	p.cond = sync.NewCond(&p.mu)
	for i := 1; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// push publishes a future and wakes a parked worker if there is one.
// The parked counter is read without the mutex: the worker re-checks
// the stack after announcing itself parked (see worker), so the pair of
// sequentially consistent atomics cannot lose a wakeup.
func (p *pool) push(fu *future) {
	for {
		h := p.head.Load()
		fu.next = h
		if p.head.CompareAndSwap(h, fu) {
			break
		}
	}
	if p.parked.Load() > 0 {
		p.mu.Lock()
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// pop removes one future. Futures are never reused, so the bare CAS has
// no ABA problem.
func (p *pool) pop() *future {
	for {
		h := p.head.Load()
		if h == nil {
			return nil
		}
		if p.head.CompareAndSwap(h, h.next) {
			return h
		}
	}
}

// runIfPending claims and executes fu under ctx c; returns false if
// another goroutine got there first.
func runIfPending(fu *future, c *kctx) bool {
	if !fu.state.CompareAndSwap(futPending, futRunning) {
		return false
	}
	fu.run(c)
	return true
}

// helpOne steals one pending future off the stack and runs it. It is
// called by joiners waiting on a future another goroutine claimed, so
// the wait is productive.
func (p *pool) helpOne(c *kctx) bool {
	fu := p.pop()
	if fu == nil {
		return false
	}
	if runIfPending(fu, c) {
		c.steals++
	}
	return true
}

func (p *pool) worker() {
	defer p.wg.Done()
	c := &kctx{m: p.m, par: true, mayFork: true, depthLimit: p.depthLimit}
	for {
		if fu := p.pop(); fu != nil {
			if runIfPending(fu, c) {
				c.steals++
			}
			continue
		}
		// Stack looked empty: flush the counters (the pool may stay idle
		// for a long time) and park. The parked.Add happens before the
		// re-check of the stack, so a push that missed the parked counter
		// is seen here, and a push that saw it signals under the mutex.
		c.flush(p.m)
		p.mu.Lock()
		if p.stop {
			p.mu.Unlock()
			return
		}
		p.parked.Add(1)
		if p.head.Load() == nil && !p.stop {
			p.cond.Wait()
		}
		p.parked.Add(-1)
		p.mu.Unlock()
	}
}

// shutdown stops the workers and waits for them to exit. The pool must
// be quiescent (no operations in flight).
func (p *pool) shutdown() {
	p.mu.Lock()
	p.stop = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// canFork reports whether a recursion at the given depth over a node at
// the given level should split its cofactors.
func (c *kctx) canFork(depth, level int32) bool {
	return c.mayFork && depth < c.depthLimit &&
		int32(c.m.numVars)-level >= forkHeadroom
}

// forkTask publishes one cofactor subproblem as a future.
func (c *kctx) forkTask(kind futKind, f, g, cube Ref, depth int32) *future {
	fu := &future{m: c.m, kind: kind, f: f, g: g, cube: cube, depth: depth}
	fu.state.Store(futPending)
	c.forks++
	c.m.pool.push(fu)
	return fu
}

// join returns the future's result, executing it inline if nobody has
// claimed it yet, and otherwise helping with other pool work (or
// yielding) until the thief finishes.
func (c *kctx) join(fu *future) Ref {
	if runIfPending(fu, c) {
		return fu.res
	}
	p := c.m.pool
	for fu.state.Load() != futDone {
		if !p.helpOne(c) {
			runtime.Gosched()
		}
	}
	return fu.res
}
