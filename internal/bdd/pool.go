package bdd

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Fork/join recursion splitting. Near the root of a large And, Exists
// or AndExists recursion the two cofactor subproblems are independent,
// so the kernel forks one of them as a future onto a small
// work-stealing pool and computes the other inline. Determinism is free:
// the unique table makes every subresult canonical, so the final Ref is
// identical regardless of which goroutine computed which half.
//
// The pool is deliberately simple — a Treiber stack of futures and
// n-1 persistent workers that park on a condition variable when the
// stack drains. Futures are tiny and forked only above a depth cutoff
// (and only when enough variable levels remain below the current node
// for the subproblem to plausibly amortize a dispatch), so the stack
// never holds more than a few dozen entries per operation.

// futKind selects the recursion a future runs.
type futKind uint8

const (
	futAnd futKind = iota
	futExists
	futAndExists
	// futMark is a concurrent-GC mark task: scan a slot range of the
	// arena for externally referenced roots and mark from them (gc.go).
	// It carries no Refs — fu.f/fu.g encode the slot bounds.
	futMark
)

// future states: a future is claimed exactly once, by the first
// goroutine (owner at join, or a worker/helper stealing it) to CAS
// pending→running.
const (
	futPending uint32 = iota
	futRunning
	futDone
)

type future struct {
	next  *future // Treiber-stack link
	m     *Manager
	kind  futKind
	depth int32
	f, g  Ref
	cube  Ref
	res   Ref
	state atomic.Uint32
}

// run executes the future's recursion with the given context and
// publishes the result. The state store is the release barrier that
// makes res (and every node the recursion built) visible to the joiner.
// A future boundary is also an L1 safe point: the epoch is recaptured
// on entry (a pooled worker context may have sat parked across a GC)
// and the pending L1 entries are promoted before the done-store, while
// the joining operation still holds the stop-the-world read lock.
func (fu *future) run(c *kctx) {
	m := fu.m
	if fu.kind == futMark {
		m.markRange(int(fu.f), int(fu.g))
		fu.state.Store(futDone)
		return
	}
	c.l1Epoch = m.cacheEpoch.Load()
	var r Ref
	switch fu.kind {
	case futAnd:
		r = m.andRec(c, fu.f, fu.g, fu.depth)
	case futExists:
		r = m.existsRec(c, fu.f, fu.cube, fu.depth)
	case futAndExists:
		r = m.andExistsRec(c, fu.f, fu.g, fu.cube, fu.depth)
	}
	fu.res = r
	c.drainL1()
	fu.state.Store(futDone)
}

// pool is the bounded work-stealing worker pool: one per Manager in
// parallel mode, holding workers-1 persistent goroutines.
type pool struct {
	m          *Manager
	depthLimit atomic.Int32 // adaptive fork-depth cutoff (grain controller)
	head       atomic.Pointer[future]

	mu     sync.Mutex
	cond   *sync.Cond
	parked atomic.Int32
	stop   bool
	wg     sync.WaitGroup

	// Grain-controller state. maybeTune samples the fork/steal totals
	// every few operations: a low steal ratio means forked subproblems
	// are being executed inline by their owners anyway (the grain is too
	// fine — coarsen), a high ratio means the workers drain everything
	// offered and could use more (deepen). The window floor keeps noise
	// from moving the cutoff.
	tuneOps            atomic.Uint64
	tuneMu             sync.Mutex
	minDepth, maxDepth int32
	lastForks          uint64
	lastSteals         uint64
}

// forkDepth bounds how deep in the recursion forking may still happen:
// every level doubles the potential future count, so a few levels past
// saturating the workers is enough.
func forkDepth(workers int) int32 {
	d := int32(3)
	for w := 1; w < workers; w *= 2 {
		d++
	}
	return d
}

// forkHeadroom is the minimum number of variable levels that must
// remain below a node before its cofactors are worth dispatching: a
// subproblem over a handful of levels finishes faster than a fork.
const forkHeadroom = 12

// forkMinNodes is the forest-size floor below which begin disables
// forking outright: an operation over a few thousand nodes finishes
// faster than one future dispatch plus its join.
const forkMinNodes = 4096

// Grain-controller bounds and cadence.
const (
	minForkDepth  = 2   // never coarsen below: keeps the pool warm
	tuneEveryMask = 255 // consider tuning every 256 completed operations
	tuneWindow    = 64  // fork deltas below this yield no verdict
)

func newPool(m *Manager, workers int) *pool {
	p := &pool{m: m, minDepth: minForkDepth, maxDepth: forkDepth(workers) + 4}
	p.depthLimit.Store(forkDepth(workers))
	p.cond = sync.NewCond(&p.mu)
	for i := 1; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// maybeTune runs one grain-controller step if it is due and the tune
// lock is free. It is called from end, off the stop-the-world lock: it
// reads only atomic totals and moves the atomic cutoff, so it never
// blocks an operation.
func (p *pool) maybeTune(m *Manager) {
	if p.tuneOps.Add(1)&tuneEveryMask != 0 {
		return
	}
	if !p.tuneMu.TryLock() {
		return
	}
	defer p.tuneMu.Unlock()
	forks, steals := m.statForks.Load(), m.statSteals.Load()
	df, ds := forks-p.lastForks, steals-p.lastSteals
	if df < tuneWindow {
		return // not enough forking since the last verdict
	}
	p.lastForks, p.lastSteals = forks, steals
	cur := p.depthLimit.Load()
	ratio := float64(ds) / float64(df)
	switch {
	case ratio < 0.25 && cur > p.minDepth:
		// Owners execute most of their own forks inline: the split is too
		// fine for the pool to beat the owner to it. Coarsen.
		p.depthLimit.Store(cur - 1)
		m.statGrainAdjusts.Add(1)
	case ratio > 0.75 && cur < p.maxDepth:
		// Nearly everything offered is stolen: the workers are hungry.
		// Split deeper to feed them.
		p.depthLimit.Store(cur + 1)
		m.statGrainAdjusts.Add(1)
	}
}

// push publishes a future and wakes a parked worker if there is one.
// The parked counter is read without the mutex: the worker re-checks
// the stack after announcing itself parked (see worker), so the pair of
// sequentially consistent atomics cannot lose a wakeup.
func (p *pool) push(fu *future) {
	for {
		h := p.head.Load()
		fu.next = h
		if p.head.CompareAndSwap(h, fu) {
			break
		}
	}
	if p.parked.Load() > 0 {
		p.mu.Lock()
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// pop removes one future. Futures are never reused, so the bare CAS has
// no ABA problem.
func (p *pool) pop() *future {
	for {
		h := p.head.Load()
		if h == nil {
			return nil
		}
		if p.head.CompareAndSwap(h, h.next) {
			return h
		}
	}
}

// runIfPending claims and executes fu under ctx c; returns false if
// another goroutine got there first.
func runIfPending(fu *future, c *kctx) bool {
	if !fu.state.CompareAndSwap(futPending, futRunning) {
		return false
	}
	fu.run(c)
	return true
}

// helpOne steals one pending future off the stack and runs it. It is
// called by joiners waiting on a future another goroutine claimed, so
// the wait is productive.
func (p *pool) helpOne(c *kctx) bool {
	fu := p.pop()
	if fu == nil {
		return false
	}
	if runIfPending(fu, c) && fu.kind != futMark {
		c.steals++ // mark tasks are GC work, not grain-controller signal
	}
	return true
}

func (p *pool) worker() {
	defer p.wg.Done()
	c := &kctx{m: p.m, par: true, mayFork: true, l1: make([]l1Entry, l1Size), l1Cap: l1PendCap}
	for {
		if fu := p.pop(); fu != nil {
			// Re-read the adaptive cutoff and the merge knob per future:
			// the grain controller moves the former between operations.
			c.depthLimit = p.depthLimit.Load()
			if n := p.m.l1Every; n > 0 {
				c.l1Cap = int(n)
			} else {
				c.l1Cap = l1PendCap
			}
			if runIfPending(fu, c) && fu.kind != futMark {
				c.steals++
			}
			continue
		}
		// Stack looked empty: flush the counters (the pool may stay idle
		// for a long time) and park. The parked.Add happens before the
		// re-check of the stack, so a push that missed the parked counter
		// is seen here, and a push that saw it signals under the mutex.
		// Pending L1 entries were already promoted by the futures that
		// produced them (run drains before its done-store); clearing here
		// is defensive — a drain at park would write the shared caches
		// without any stop-the-world cover.
		c.l1Pending = c.l1Pending[:0]
		c.flush(p.m)
		p.mu.Lock()
		if p.stop {
			p.mu.Unlock()
			return
		}
		p.parked.Add(1)
		if p.head.Load() == nil && !p.stop {
			p.cond.Wait()
		}
		p.parked.Add(-1)
		p.mu.Unlock()
	}
}

// forkDepthNow reports the grain controller's current fork-depth
// cutoff, zero in sequential mode.
func (m *Manager) forkDepthNow() int {
	if m.pool == nil {
		return 0
	}
	return int(m.pool.depthLimit.Load())
}

// shutdown stops the workers and waits for them to exit. The pool must
// be quiescent (no operations in flight).
func (p *pool) shutdown() {
	p.mu.Lock()
	p.stop = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// canFork reports whether a recursion at the given depth over a node at
// the given level should split its cofactors.
func (c *kctx) canFork(depth, level int32) bool {
	return c.mayFork && depth < c.depthLimit &&
		int32(c.m.numVars)-level >= forkHeadroom
}

// forkTask publishes one cofactor subproblem as a future.
func (c *kctx) forkTask(kind futKind, f, g, cube Ref, depth int32) *future {
	fu := &future{m: c.m, kind: kind, f: f, g: g, cube: cube, depth: depth}
	fu.state.Store(futPending)
	c.forks++
	c.m.pool.push(fu)
	return fu
}

// join returns the future's result, executing it inline if nobody has
// claimed it yet, and otherwise helping with other pool work (or
// yielding) until the thief finishes.
func (c *kctx) join(fu *future) Ref {
	if runIfPending(fu, c) {
		return fu.res
	}
	p := c.m.pool
	for fu.state.Load() != futDone {
		if !p.helpOne(c) {
			runtime.Gosched()
		}
	}
	return fu.res
}
