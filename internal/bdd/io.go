package bdd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteBDDs serializes a set of named functions in a compact text
// format. Nodes are emitted in an order where children precede parents,
// so ReadBDDs can rebuild them with single mk calls. The format records
// variable IDs (not levels): a dump is portable across managers whose
// variables mean the same thing positionally. Complement edges are
// spelled with a "!" prefix on the referenced node id; "F" and "T" name
// the constants, so dumps written before complement edges existed still
// read back.
//
//	bdd 12            # variable count
//	n 2 0 F T         # node 2 = (var 0, low False, high True)
//	n 3 1 F !2        # high edge is the complement of node 2
//	root init 3
func (m *Manager) WriteBDDs(w io.Writer, roots map[string]Ref) error {
	m.rlock()
	defer m.runlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "bdd %d\n", m.numVars)
	// collect stored nodes reachable from all roots
	seen := map[Ref]bool{}
	var order []Ref
	var visit func(f Ref)
	visit = func(f Ref) {
		f = regular(f)
		if f == False || seen[f] {
			return
		}
		seen[f] = true
		n := *m.node(f)
		visit(n.low)
		visit(n.high)
		order = append(order, f) // post-order: children first
	}
	names := make([]string, 0, len(roots))
	for name, f := range roots {
		m.check(f)
		visit(f)
		names = append(names, name)
	}
	sort.Strings(names)
	enc := func(f Ref) string {
		switch f {
		case False:
			return "F"
		case True:
			return "T"
		}
		if isComp(f) {
			return "!" + fmt.Sprint(int(regular(f)))
		}
		return fmt.Sprint(int(f))
	}
	for _, f := range order {
		n := *m.node(f)
		fmt.Fprintf(bw, "n %d %d %s %s\n", int(f), int(n.varID), enc(n.low), enc(n.high))
	}
	for _, name := range names {
		if strings.ContainsAny(name, " \t\n") {
			return fmt.Errorf("bdd: root name %q contains whitespace", name)
		}
		fmt.Fprintf(bw, "root %s %s\n", name, enc(roots[name]))
	}
	return bw.Flush()
}

// ReadBDDs reconstructs functions written by WriteBDDs into this
// manager. The manager must have at least as many variables as the
// writer had; missing variables are created. Because it may create
// variables mid-stream it runs as one exclusive (stop-the-world) epoch
// in parallel mode rather than an ordinary operation.
func (m *Manager) ReadBDDs(r io.Reader) (map[string]Ref, error) {
	kc := m.exclusive()
	defer m.release(kc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := map[string]Ref{}
	remap := map[string]Ref{"F": False, "T": True}
	dec := func(tok string) (Ref, bool) {
		comp := strings.HasPrefix(tok, "!")
		if comp {
			tok = tok[1:]
		}
		f, ok := remap[tok]
		if !ok {
			return False, false
		}
		if comp {
			f = neg(f)
		}
		return f, true
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "bdd":
			if len(fields) != 2 {
				return nil, fmt.Errorf("bdd: line %d: malformed header", lineNo)
			}
			var nv int
			if _, err := fmt.Sscan(fields[1], &nv); err != nil {
				return nil, fmt.Errorf("bdd: line %d: %v", lineNo, err)
			}
			for m.numVars < nv {
				m.newVarLocked()
			}
		case "n":
			if len(fields) != 5 {
				return nil, fmt.Errorf("bdd: line %d: malformed node", lineNo)
			}
			var v int
			if _, err := fmt.Sscan(fields[2], &v); err != nil {
				return nil, fmt.Errorf("bdd: line %d: %v", lineNo, err)
			}
			if v < 0 || v >= m.numVars {
				return nil, fmt.Errorf("bdd: line %d: variable %d out of range", lineNo, v)
			}
			low, ok := dec(fields[3])
			if !ok {
				return nil, fmt.Errorf("bdd: line %d: unknown node id %q", lineNo, fields[3])
			}
			high, ok := dec(fields[4])
			if !ok {
				return nil, fmt.Errorf("bdd: line %d: unknown node id %q", lineNo, fields[4])
			}
			// rebuild with ITE rather than mk so the dump stays valid
			// even if the reading manager uses a different variable
			// order (ITE re-normalizes; mk would not)
			remap[fields[1]] = m.iteRec(kc, m.varRef(kc, v), high, low, 0)
		case "root":
			if len(fields) != 3 {
				return nil, fmt.Errorf("bdd: line %d: malformed root", lineNo)
			}
			f, ok := dec(fields[2])
			if !ok {
				return nil, fmt.Errorf("bdd: line %d: unknown node id %q", lineNo, fields[2])
			}
			out[fields[1]] = f
		default:
			return nil, fmt.Errorf("bdd: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
