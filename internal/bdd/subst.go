package bdd

// Substitution and permutation. These rebuild BDDs with memoized
// recursion; they are used to shift between present-state and next-state
// variable rails and to compose intermediate signal definitions into
// transition relations.

// Permute returns f with every variable v replaced by perm[v]. perm must
// be a permutation over variable IDs; identity entries are allowed and
// common. Variables beyond len(perm) — e.g. created after the
// permutation was built — map to themselves, so cached permutations stay
// valid as the manager grows.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	m.check(f)
	if len(perm) > m.numVars {
		panic("bdd: Permute: permutation longer than variable count")
	}
	memo := make(map[Ref]Ref)
	return m.permuteRec(f, perm, memo)
}

func (m *Manager) permuteRec(f Ref, perm []int, memo map[Ref]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	n := m.nodes[f]
	v := int(m.level2var[n.level])
	low := m.permuteRec(n.low, perm, memo)
	high := m.permuteRec(n.high, perm, memo)
	target := v
	if v < len(perm) {
		target = perm[v]
	}
	r := m.iteRec(m.Var(target), high, low)
	memo[f] = r
	return r
}

// Compose substitutes g for variable v in f: f[v := g].
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	m.check(f)
	m.check(g)
	if v < 0 || v >= m.numVars {
		panic("bdd: Compose: variable out of range")
	}
	memo := make(map[Ref]Ref)
	return m.composeRec(f, m.var2level[v], g, memo)
}

func (m *Manager) composeRec(f Ref, level int32, g Ref, memo map[Ref]Ref) Ref {
	n := m.nodes[f]
	if n.level > level {
		// f does not depend on the substituted variable.
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	var r Ref
	if n.level == level {
		r = m.iteRec(g, n.high, n.low)
	} else {
		low := m.composeRec(n.low, level, g, memo)
		high := m.composeRec(n.high, level, g, memo)
		// The substituted function g may depend on variables above
		// f's root, so rebuild with ITE on the root variable rather
		// than mk.
		r = m.iteRec(m.mk(n.level, False, True), high, low)
	}
	memo[f] = r
	return r
}

// VectorCompose simultaneously substitutes subst[v] for each variable v
// present in the map. Substitution is simultaneous, not sequential: the
// replacement functions are interpreted over the original variables.
func (m *Manager) VectorCompose(f Ref, subst map[int]Ref) Ref {
	m.check(f)
	if len(subst) == 0 {
		return f
	}
	byLevel := make(map[int32]Ref, len(subst))
	for v, g := range subst {
		m.check(g)
		byLevel[m.var2level[v]] = g
	}
	memo := make(map[Ref]Ref)
	return m.vectorComposeRec(f, byLevel, memo)
}

func (m *Manager) vectorComposeRec(f Ref, byLevel map[int32]Ref, memo map[Ref]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	n := m.nodes[f]
	low := m.vectorComposeRec(n.low, byLevel, memo)
	high := m.vectorComposeRec(n.high, byLevel, memo)
	g, ok := byLevel[n.level]
	if !ok {
		g = m.mk(n.level, False, True)
	}
	r := m.iteRec(g, high, low)
	memo[f] = r
	return r
}
