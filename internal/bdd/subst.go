package bdd

// Substitution and permutation. These rebuild BDDs with memoized
// recursion; they are used to shift between present-state and next-state
// variable rails and to compose intermediate signal definitions into
// transition relations.
//
// All three recursions commute with output complement — substituting
// into ¬f complements every rebuilt leaf — so complement marks are
// normalized away at entry and the memos key on regular nodes.
//
// The memo has two representations, chosen per call by the size of the
// previous rebuild. Small rebuilds (a frontier set during the early
// fixpoint iterations) use a map: a few dozen entries stay in L1 and the
// per-call setup is one small allocation. Large rebuilds (shifting a
// converged reached set between variable rails) use a pair of
// epoch-stamped arrays indexed by stored-node id: no hashing, no
// allocation, O(1) reset by bumping the epoch — on a 60k-node input this
// is worth more than 2× — but for a tiny input those same arrays are
// pure cache-miss territory, which is why the map path survives.

// memoSmallMax is the crossover: a rebuild that visited fewer stored
// nodes than this keeps the map representation on the next call.
const memoSmallMax = 4096

// memoBegin opens a fresh stamped-array memo generation. The arrays are
// indexed by stored-node id and validated by the current epoch, so
// starting a new rebuild is O(1): bumping the epoch invalidates every
// previous entry without touching memory. Keys are always nodes of the
// input BDD, which exist before the call, so sizing the arrays at entry
// is sufficient even though the rebuild allocates new nodes.
func (m *Manager) memoBegin() {
	if len(m.memoStamp) < len(m.nodes) {
		// Grow geometrically: the node array grows continuously during a
		// cold build, and resizing the memo on every call would turn each
		// rebuild into an O(nodes) allocation.
		n := 2 * len(m.memoStamp)
		if n < len(m.nodes) {
			n = len(m.nodes)
		}
		m.memoVal = make([]Ref, n)
		m.memoStamp = make([]uint32, n)
		m.memoEpoch = 0
	}
	if m.memoEpoch++; m.memoEpoch == 0 { // epoch wrapped: stamps are stale
		clear(m.memoStamp)
		m.memoEpoch = 1
	}
	m.memoCount = 0
}

// Permute returns f with every variable v replaced by perm[v]. perm must
// be a permutation over variable IDs; identity entries are allowed and
// common. Variables beyond len(perm) — e.g. created after the
// permutation was built — map to themselves, so cached permutations stay
// valid as the manager grows.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	m.check(f)
	if len(perm) > m.numVars {
		panic("bdd: Permute: permutation longer than variable count")
	}
	if m.memoLast < memoSmallMax {
		memo := make(map[Ref]Ref, m.memoLast+16)
		r := m.permuteRecMap(f, perm, memo)
		m.memoLast = len(memo)
		return r
	}
	m.memoBegin()
	r := m.permuteRec(f, perm)
	m.memoLast = m.memoCount
	return r
}

func (m *Manager) permuteRecMap(f Ref, perm []int, memo map[Ref]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	// Permutation commutes with complement, so fold the mark into the
	// result instead of spending a recursive call on it.
	c := f & compBit
	f ^= c
	if r, ok := memo[f]; ok {
		return r ^ c
	}
	n := m.nodes[f]
	v := int(m.level2var[n.level])
	low := m.permuteRecMap(n.low, perm, memo)
	high := m.permuteRecMap(n.high, perm, memo)
	target := v
	if v < len(perm) {
		target = perm[v]
	}
	r := m.iteRec(m.Var(target), high, low)
	memo[f] = r
	return r ^ c
}

func (m *Manager) permuteRec(f Ref, perm []int) Ref {
	if m.IsTerminal(f) {
		return f
	}
	c := f & compBit
	f ^= c
	if m.memoStamp[f] == m.memoEpoch {
		return m.memoVal[f] ^ c
	}
	n := m.nodes[f]
	v := int(m.level2var[n.level])
	low := m.permuteRec(n.low, perm)
	high := m.permuteRec(n.high, perm)
	target := v
	if v < len(perm) {
		target = perm[v]
	}
	r := m.iteRec(m.Var(target), high, low)
	m.memoStamp[f] = m.memoEpoch
	m.memoVal[f] = r
	m.memoCount++
	return r ^ c
}

// Compose substitutes g for variable v in f: f[v := g].
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	m.check(f)
	m.check(g)
	if v < 0 || v >= m.numVars {
		panic("bdd: Compose: variable out of range")
	}
	if m.memoLast < memoSmallMax {
		memo := make(map[Ref]Ref, m.memoLast+16)
		r := m.composeRecMap(f, m.var2level[v], g, memo)
		m.memoLast = len(memo)
		return r
	}
	m.memoBegin()
	r := m.composeRec(f, m.var2level[v], g)
	m.memoLast = m.memoCount
	return r
}

func (m *Manager) composeRecMap(f Ref, level int32, g Ref, memo map[Ref]Ref) Ref {
	if m.levelOf(f) > level {
		// f does not depend on the substituted variable.
		return f
	}
	c := f & compBit
	f ^= c
	if r, ok := memo[f]; ok {
		return r ^ c
	}
	n := m.nodes[f]
	var r Ref
	if n.level == level {
		r = m.iteRec(g, n.high, n.low)
	} else {
		low := m.composeRecMap(n.low, level, g, memo)
		high := m.composeRecMap(n.high, level, g, memo)
		// The substituted function g may depend on variables above
		// f's root, so rebuild with ITE on the root variable rather
		// than mk.
		r = m.iteRec(m.mk(n.level, False, True), high, low)
	}
	memo[f] = r
	return r ^ c
}

func (m *Manager) composeRec(f Ref, level int32, g Ref) Ref {
	if m.levelOf(f) > level {
		return f
	}
	c := f & compBit
	f ^= c
	if m.memoStamp[f] == m.memoEpoch {
		return m.memoVal[f] ^ c
	}
	n := m.nodes[f]
	var r Ref
	if n.level == level {
		r = m.iteRec(g, n.high, n.low)
	} else {
		low := m.composeRec(n.low, level, g)
		high := m.composeRec(n.high, level, g)
		r = m.iteRec(m.mk(n.level, False, True), high, low)
	}
	m.memoStamp[f] = m.memoEpoch
	m.memoVal[f] = r
	m.memoCount++
	return r ^ c
}

// VectorCompose simultaneously substitutes subst[v] for each variable v
// present in the map. Substitution is simultaneous, not sequential: the
// replacement functions are interpreted over the original variables.
func (m *Manager) VectorCompose(f Ref, subst map[int]Ref) Ref {
	m.check(f)
	if len(subst) == 0 {
		return f
	}
	byLevel := make(map[int32]Ref, len(subst))
	for v, g := range subst {
		m.check(g)
		byLevel[m.var2level[v]] = g
	}
	if m.memoLast < memoSmallMax {
		memo := make(map[Ref]Ref, m.memoLast+16)
		r := m.vectorComposeRecMap(f, byLevel, memo)
		m.memoLast = len(memo)
		return r
	}
	m.memoBegin()
	r := m.vectorComposeRec(f, byLevel)
	m.memoLast = m.memoCount
	return r
}

func (m *Manager) vectorComposeRecMap(f Ref, byLevel map[int32]Ref, memo map[Ref]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	c := f & compBit
	f ^= c
	if r, ok := memo[f]; ok {
		return r ^ c
	}
	n := m.nodes[f]
	low := m.vectorComposeRecMap(n.low, byLevel, memo)
	high := m.vectorComposeRecMap(n.high, byLevel, memo)
	g, ok := byLevel[n.level]
	if !ok {
		g = m.mk(n.level, False, True)
	}
	r := m.iteRec(g, high, low)
	memo[f] = r
	return r ^ c
}

func (m *Manager) vectorComposeRec(f Ref, byLevel map[int32]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	c := f & compBit
	f ^= c
	if m.memoStamp[f] == m.memoEpoch {
		return m.memoVal[f] ^ c
	}
	n := m.nodes[f]
	low := m.vectorComposeRec(n.low, byLevel)
	high := m.vectorComposeRec(n.high, byLevel)
	g, ok := byLevel[n.level]
	if !ok {
		g = m.mk(n.level, False, True)
	}
	r := m.iteRec(g, high, low)
	m.memoStamp[f] = m.memoEpoch
	m.memoVal[f] = r
	m.memoCount++
	return r ^ c
}
