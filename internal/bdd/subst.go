package bdd

// Substitution and permutation. These rebuild BDDs with memoized
// recursion; they are used to shift between present-state and next-state
// variable rails and to compose intermediate signal definitions into
// transition relations.
//
// All three recursions commute with output complement — substituting
// into ¬f complements every rebuilt leaf — so complement marks are
// normalized away at entry and the memos key on regular nodes.
//
// The memo has two representations, chosen per call by the size of the
// previous rebuild. Small rebuilds (a frontier set during the early
// fixpoint iterations) use a map: a few dozen entries stay in L1 and the
// per-call setup is one small allocation. Large rebuilds (shifting a
// converged reached set between variable rails) use a pair of
// epoch-stamped arrays indexed by stored-node id: no hashing, no
// allocation, O(1) reset by bumping the epoch — on a 60k-node input this
// is worth more than 2× — but for a tiny input those same arrays are
// pure cache-miss territory, which is why the map path survives.
//
// The manager-resident memo is the one kernel structure that is not
// per-slot synchronized, so in parallel mode the substitution family
// serializes on memoMu (each call still runs under the operation
// read-lock like any other op). Rail shifts happen once per fixpoint
// step, not per recursion, so the serialization is invisible next to
// the image computations around it; the recursions never fork.

// memoSmallMax is the crossover: a rebuild that visited fewer stored
// nodes than this keeps the map representation on the next call.
const memoSmallMax = 4096

// memoBegin opens a fresh stamped-array memo generation. The arrays are
// indexed by stored-node id and validated by the current epoch, so
// starting a new rebuild is O(1): bumping the epoch invalidates every
// previous entry without touching memory. Keys are always nodes of the
// input BDD, which exist before the call, so sizing the arrays at entry
// is sufficient even though the rebuild allocates new nodes.
func (m *Manager) memoBegin() {
	alloc := int(m.nodeCap.Load())
	if len(m.memoStamp) < alloc {
		// Grow geometrically: the node array grows continuously during a
		// cold build, and resizing the memo on every call would turn each
		// rebuild into an O(nodes) allocation.
		n := 2 * len(m.memoStamp)
		if n < alloc {
			n = alloc
		}
		m.memoVal = make([]Ref, n)
		m.memoStamp = make([]uint32, n)
		m.memoEpoch = 0
	}
	if m.memoEpoch++; m.memoEpoch == 0 { // epoch wrapped: stamps are stale
		clear(m.memoStamp)
		m.memoEpoch = 1
	}
	m.memoCount = 0
}

// Permute returns f with every variable v replaced by perm[v]. perm must
// be a permutation over variable IDs; identity entries are allowed and
// common. Variables beyond len(perm) — e.g. created after the
// permutation was built — map to themselves, so cached permutations stay
// valid as the manager grows.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	m.check(f)
	c := m.begin()
	// Read numVars only inside the epoch: NewVar mutates it under the
	// stop-the-world write lock.
	if len(perm) > m.numVars {
		m.end(c)
		panic("bdd: Permute: permutation longer than variable count")
	}
	m.memoMu.Lock()
	var r Ref
	if m.memoLast < memoSmallMax {
		memo := make(map[Ref]Ref, m.memoLast+16)
		r = m.permuteRecMap(c, f, perm, memo)
		m.memoLast = len(memo)
	} else {
		m.memoBegin()
		r = m.permuteRec(c, f, perm)
		m.memoLast = m.memoCount
	}
	m.memoMu.Unlock()
	m.end(c)
	return r
}

func (m *Manager) permuteRecMap(c *kctx, f Ref, perm []int, memo map[Ref]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	// Permutation commutes with complement, so fold the mark into the
	// result instead of spending a recursive call on it.
	cm := f & compBit
	f ^= cm
	if r, ok := memo[f]; ok {
		return r ^ cm
	}
	n := *m.node(f)
	v := int(n.varID)
	low := m.permuteRecMap(c, n.low, perm, memo)
	high := m.permuteRecMap(c, n.high, perm, memo)
	target := v
	if v < len(perm) {
		target = perm[v]
	}
	r := m.iteRec(c, m.varRef(c, target), high, low, 0)
	memo[f] = r
	return r ^ cm
}

func (m *Manager) permuteRec(c *kctx, f Ref, perm []int) Ref {
	if m.IsTerminal(f) {
		return f
	}
	cm := f & compBit
	f ^= cm
	if m.memoStamp[f] == m.memoEpoch {
		return m.memoVal[f] ^ cm
	}
	n := *m.node(f)
	v := int(n.varID)
	low := m.permuteRec(c, n.low, perm)
	high := m.permuteRec(c, n.high, perm)
	target := v
	if v < len(perm) {
		target = perm[v]
	}
	r := m.iteRec(c, m.varRef(c, target), high, low, 0)
	m.memoStamp[f] = m.memoEpoch
	m.memoVal[f] = r
	m.memoCount++
	return r ^ cm
}

// Compose substitutes g for variable v in f: f[v := g].
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	m.check(f)
	m.check(g)
	if v < 0 || v >= m.numVars {
		panic("bdd: Compose: variable out of range")
	}
	c := m.begin()
	m.memoMu.Lock()
	var r Ref
	if m.memoLast < memoSmallMax {
		memo := make(map[Ref]Ref, m.memoLast+16)
		r = m.composeRecMap(c, f, m.var2level[v], g, memo)
		m.memoLast = len(memo)
	} else {
		m.memoBegin()
		r = m.composeRec(c, f, m.var2level[v], g)
		m.memoLast = m.memoCount
	}
	m.memoMu.Unlock()
	m.end(c)
	return r
}

func (m *Manager) composeRecMap(c *kctx, f Ref, level int32, g Ref, memo map[Ref]Ref) Ref {
	if m.levelOf(f) > level {
		// f does not depend on the substituted variable.
		return f
	}
	cm := f & compBit
	f ^= cm
	if r, ok := memo[f]; ok {
		return r ^ cm
	}
	n := *m.node(f)
	var r Ref
	if m.var2level[n.varID] == level {
		r = m.iteRec(c, g, n.high, n.low, 0)
	} else {
		low := m.composeRecMap(c, n.low, level, g, memo)
		high := m.composeRecMap(c, n.high, level, g, memo)
		// The substituted function g may depend on variables above
		// f's root, so rebuild with ITE on the root variable rather
		// than mk.
		r = m.iteRec(c, m.varRef(c, int(n.varID)), high, low, 0)
	}
	memo[f] = r
	return r ^ cm
}

func (m *Manager) composeRec(c *kctx, f Ref, level int32, g Ref) Ref {
	if m.levelOf(f) > level {
		return f
	}
	cm := f & compBit
	f ^= cm
	if m.memoStamp[f] == m.memoEpoch {
		return m.memoVal[f] ^ cm
	}
	n := *m.node(f)
	var r Ref
	if m.var2level[n.varID] == level {
		r = m.iteRec(c, g, n.high, n.low, 0)
	} else {
		low := m.composeRec(c, n.low, level, g)
		high := m.composeRec(c, n.high, level, g)
		r = m.iteRec(c, m.varRef(c, int(n.varID)), high, low, 0)
	}
	m.memoStamp[f] = m.memoEpoch
	m.memoVal[f] = r
	m.memoCount++
	return r ^ cm
}

// VectorCompose simultaneously substitutes subst[v] for each variable v
// present in the map. Substitution is simultaneous, not sequential: the
// replacement functions are interpreted over the original variables.
func (m *Manager) VectorCompose(f Ref, subst map[int]Ref) Ref {
	m.check(f)
	if len(subst) == 0 {
		return f
	}
	byLevel := make(map[int32]Ref, len(subst))
	for v, g := range subst {
		m.check(g)
		byLevel[m.var2level[v]] = g
	}
	c := m.begin()
	m.memoMu.Lock()
	var r Ref
	if m.memoLast < memoSmallMax {
		memo := make(map[Ref]Ref, m.memoLast+16)
		r = m.vectorComposeRecMap(c, f, byLevel, memo)
		m.memoLast = len(memo)
	} else {
		m.memoBegin()
		r = m.vectorComposeRec(c, f, byLevel)
		m.memoLast = m.memoCount
	}
	m.memoMu.Unlock()
	m.end(c)
	return r
}

func (m *Manager) vectorComposeRecMap(c *kctx, f Ref, byLevel map[int32]Ref, memo map[Ref]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	cm := f & compBit
	f ^= cm
	if r, ok := memo[f]; ok {
		return r ^ cm
	}
	n := *m.node(f)
	low := m.vectorComposeRecMap(c, n.low, byLevel, memo)
	high := m.vectorComposeRecMap(c, n.high, byLevel, memo)
	g, ok := byLevel[m.var2level[n.varID]]
	if !ok {
		g = m.varRef(c, int(n.varID))
	}
	r := m.iteRec(c, g, high, low, 0)
	memo[f] = r
	return r ^ cm
}

func (m *Manager) vectorComposeRec(c *kctx, f Ref, byLevel map[int32]Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	cm := f & compBit
	f ^= cm
	if m.memoStamp[f] == m.memoEpoch {
		return m.memoVal[f] ^ cm
	}
	n := *m.node(f)
	low := m.vectorComposeRec(c, n.low, byLevel)
	high := m.vectorComposeRec(c, n.high, byLevel)
	g, ok := byLevel[m.var2level[n.varID]]
	if !ok {
		g = m.varRef(c, int(n.varID))
	}
	r := m.iteRec(c, g, high, low, 0)
	m.memoStamp[f] = m.memoEpoch
	m.memoVal[f] = r
	m.memoCount++
	return r ^ cm
}
