package bdd

// Reorder zones: the kernel half of parallel sifting. A ReorderZone is
// an interaction-closed set of variables occupying a contiguous band of
// levels inside an open reorder session. Because no variable in the
// zone interacts with any variable outside it, no zone node has an
// out-of-zone child and no out-of-zone node has a zone child — so every
// structure a swap touches (the rewritten nodes, the session unique
// index entries for the zone's variables, their buckets, their
// reference counts, the order-map entries of the band) is private to
// the zone, and zones can sift concurrently with no locking on the hot
// path. The only state physically shared between zones is bitmap words
// (a 64-slot free/tainted word can span slots owned by different
// zones), which the accessors below touch atomically, and the group
// registry, which GroupVars guards with its own mutex.
//
// Slot allocation is the one resource a naive split would contend on.
// Each zone therefore runs as a closed system: OpenZones hands it a
// private free list — recycled slots off the global free list first,
// then a deterministic run of fresh arena slots — sized at 3·growth×
// its population plus a constant, which covers the transient worst case
// of a sift bounded by the driver's growth factor. Slots a zone
// releases return to its own list and are reused by it alone, so the
// slots backing a zone's nodes, and hence every Ref printed or probed,
// are a deterministic function of the zone's own swap sequence — the
// same at any worker count. The driver additionally budget-gates on
// Headroom before committing to a move; exhausting the quota anyway is
// a kernel bug and panics.
//
// The whole-order session of StartReorder is itself a zone (legacy:
// band covering every level, allocation against the global free list
// and the growable arena). Session-level Swap/MoveBlock/ProbeSymmetry
// forward to it, so single-zone and pre-zone behavior is unchanged.

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// ReorderZone is one independently siftable slice of an open reorder
// session. Methods on different zones of the same session may be called
// concurrently; methods on one zone must be called from one goroutine
// at a time.
type ReorderZone struct {
	s      *ReorderSession
	legacy bool // the whole-order zone: global free list, growable arena

	lo, hi int     // inclusive level band owned by the zone
	vars   []int32 // variable IDs owned by the zone (nil for legacy)
	pop    int     // live nodes labeled with the zone's variables

	// uniq is the zone's slice of the session unique index: exactly the
	// triples labeled with the zone's variables.
	uniq map[node]Ref

	// free is the zone's private slot budget (unused for legacy).
	free []Ref

	relStack []Ref
	sa       []Ref
	inter    []Ref
	rot      []int32
	arcEpoch int32

	swaps        int
	interSkips   int
	lbAborts     int
	symPairs     int
	blocksSifted int
}

// Zone accessors for the sift driver.

// Pop returns the zone's live node count — the quantity its sifting
// minimizes. Unlike Manager.Size it is exact during concurrent zone
// execution and independent of every other zone.
func (z *ReorderZone) Pop() int { return z.pop }

// Headroom returns the remaining private slot budget; the legacy
// whole-order zone reports -1 (unbounded — it grows the arena).
func (z *ReorderZone) Headroom() int {
	if z.legacy {
		return -1
	}
	return len(z.free)
}

// MaxBucket returns the largest single-level population in the zone,
// the unit the driver's budget gate multiplies by.
func (z *ReorderZone) MaxBucket() int {
	mx := 0
	for _, v := range z.vars {
		if n := len(z.s.bucket[v]); n > mx {
			mx = n
		}
	}
	return mx
}

// Lo and Hi bound the zone's level band (inclusive).
func (z *ReorderZone) Lo() int { return z.lo }
func (z *ReorderZone) Hi() int { return z.hi }

// LevelSize returns the population of one level inside the band.
func (z *ReorderZone) LevelSize(level int) int { return z.s.LevelSize(level) }

// NoteLowerBoundAbort and NoteSymmetricPair record driver events
// against the zone; CloseZones folds them into the session totals.
func (z *ReorderZone) NoteLowerBoundAbort() { z.lbAborts++ }
func (z *ReorderZone) NoteSymmetricPair()   { z.symPairs++ }

// NoteBlockSifted records one completed block sift (the parallel-sift
// throughput statistic).
func (z *ReorderZone) NoteBlockSifted() { z.blocksSifted++ }

// Atomic bitmap accessors: free/tainted words may be shared between
// zones, so all session-concurrent paths go through these.

func orBit(w *uint64, b uint64) {
	for {
		old := atomic.LoadUint64(w)
		if old&b != 0 || atomic.CompareAndSwapUint64(w, old, old|b) {
			return
		}
	}
}

func andNotBit(w *uint64, b uint64) {
	for {
		old := atomic.LoadUint64(w)
		if old&b == 0 || atomic.CompareAndSwapUint64(w, old, old&^b) {
			return
		}
	}
}

func (s *ReorderSession) setFreeBit(r Ref)   { orBit(&s.free[r>>6], 1<<(uint(r)&63)) }
func (s *ReorderSession) clearFreeBit(r Ref) { andNotBit(&s.free[r>>6], 1<<(uint(r)&63)) }
func (s *ReorderSession) setTaintBit(r Ref)  { orBit(&s.tainted[r>>6], 1<<(uint(r)&63)) }

// Swap exchanges the variables at level and level+1 inside the zone's
// band, rewriting the affected nodes in place (see the package comment
// in reorder.go for the exchange itself).
func (z *ReorderZone) Swap(level int) {
	s := z.s
	m := s.m
	if m.session != s {
		panic("bdd: Swap on an inactive reorder session")
	}
	if level < z.lo || level+1 > z.hi {
		panic(fmt.Sprintf("bdd: Swap(%d) outside zone band [%d,%d]", level, z.lo, z.hi))
	}
	l := int32(level)
	lv1 := l + 1
	u, v := m.level2var[l], m.level2var[lv1]

	if s.useInter && !s.interacts(int(u), int(v)) {
		m.level2var[l], m.level2var[lv1] = v, u
		m.var2level[u], m.var2level[v] = lv1, l
		z.swaps++
		z.interSkips++
		return
	}

	z.sa = append(z.sa[:0], s.bucket[u]...)
	dead := z.inter[:0]
	for _, f := range z.sa {
		np := m.node(f)
		n := *np
		f0, f1 := n.low, n.high
		r1, c := regular(f1), f1&compBit
		d0 := m.node(f0).varID == v
		d1 := m.node(r1).varID == v
		if !d0 && !d1 {
			continue // no v-child: triple unchanged, moves with the maps
		}
		var f00, f01 Ref
		if d0 {
			b := *m.node(f0)
			f00, f01 = b.low, b.high
		} else {
			f00, f01 = f0, f0
		}
		var f10, f11 Ref
		if d1 {
			b := *m.node(r1)
			f10, f11 = b.low^c, b.high^c
		} else {
			f10, f11 = f1, f1
		}
		g0 := z.swapMk(u, f00, f10)
		g1 := z.swapMk(u, f01, f11)
		// Terminal reference counts are never consulted; skipping slot 0
		// keeps the counter zone-private (the word is shared otherwise).
		if rg := regular(g0); rg != 0 {
			s.ref[rg]++
		}
		if rg := regular(g1); rg != 0 {
			s.ref[rg]++
		}
		if z.uniq[n] == f {
			delete(z.uniq, n)
		}
		*np = node{varID: v, low: g0, high: g1}
		z.uniq[*np] = f
		s.removeFromBucket(f, int(u))
		s.addToBucket(f, int(v))
		if f0 != 0 {
			if s.ref[f0]--; s.ref[f0] == 0 {
				dead = append(dead, f0)
			}
		}
		if r1 != 0 {
			if s.ref[r1]--; s.ref[r1] == 0 {
				dead = append(dead, r1)
			}
		}
	}
	// Settle the drops. A candidate may have been re-referenced by a
	// later rewrite (as a shared cofactor) or already released through
	// an earlier candidate's cascade — both are skipped.
	for _, g := range dead {
		if s.ref[g] == 0 && !s.isFree(g) {
			z.release(g)
		}
	}
	z.inter = dead[:0]
	m.level2var[l], m.level2var[lv1] = v, u
	m.var2level[u], m.var2level[v] = lv1, l
	z.swaps++
}

// MoveBlock moves the block of width adjacent levels starting at level
// across span further levels in one order-map rotation, provided the
// rotation window stays inside the zone band and no crossed variable
// interacts with any block variable (it panics otherwise; callers gate
// on Interacts). See the session-level description in reorder.go.
func (z *ReorderZone) MoveBlock(level, width, span int) {
	s := z.s
	m := s.m
	if m.session != s {
		panic("bdd: MoveBlock on an inactive reorder session")
	}
	if span == 0 || width == 0 {
		return
	}
	lo, hi := level, level+width+span // rotation window [lo, hi)
	if span < 0 {
		lo, hi = level+span, level+width
	}
	if lo < z.lo || hi > z.hi+1 {
		panic(fmt.Sprintf("bdd: MoveBlock(%d,%d,%d) outside zone band [%d,%d]", level, width, span, z.lo, z.hi))
	}
	for bl := level; bl < level+width; bl++ {
		b := int(m.level2var[bl])
		for k := lo; k < hi; k++ {
			if k >= level && k < level+width {
				continue
			}
			if s.interacts(b, int(m.level2var[k])) {
				panic("bdd: MoveBlock across an interacting variable")
			}
		}
	}
	z.rot = append(z.rot[:0], m.level2var[level:level+width]...)
	if span > 0 {
		copy(m.level2var[level:], m.level2var[level+width:level+width+span])
		copy(m.level2var[level+span:level+span+width], z.rot)
	} else {
		copy(m.level2var[level+span+width:level+width], m.level2var[level+span:level])
		copy(m.level2var[level+span:level+span+width], z.rot)
	}
	for k := lo; k < hi; k++ {
		m.var2level[m.level2var[k]] = int32(k)
	}
	if span < 0 {
		span = -span
	}
	z.interSkips += width * span
}

// swapMk is the zone's mk: reduction, canonical-low re-rooting, and
// find-or-allocate against the zone's slice of the session index.
func (z *ReorderZone) swapMk(varID int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if isComp(low) {
		return neg(z.swapMkNode(varID, neg(low), neg(high)))
	}
	return z.swapMkNode(varID, low, high)
}

func (z *ReorderZone) swapMkNode(varID int32, low, high Ref) Ref {
	s := z.s
	m := s.m
	key := node{varID: varID, low: low, high: high}
	if r, ok := z.uniq[key]; ok {
		return r
	}
	var r Ref
	switch {
	case !z.legacy:
		if len(z.free) == 0 {
			// The driver's Headroom gate makes this unreachable; reaching
			// it means the budget model is wrong, not the workload big.
			panic("bdd: reorder zone slot budget exhausted")
		}
		r = z.free[len(z.free)-1]
		z.free = z.free[:len(z.free)-1]
		s.clearFreeBit(r) // taint, if set, stays set
		*m.node(r) = key
		*m.rcPtr(r) = 0
		s.ref[r] = 0
	case len(m.free) > 0:
		r = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.freeLen.Store(int64(len(m.free)))
		s.clearFreeBit(r)
		*m.node(r) = key
		*m.rcPtr(r) = 0
		s.ref[r] = 0
	default:
		i := m.nodeCap.Add(1) - 1
		m.ensureChunk(i)
		r = Ref(i)
		*m.node(r) = key
		s.ref = append(s.ref, 0)
		s.pos = append(s.pos, 0)
		for len(s.free)*64 < int(i)+1 {
			s.free = append(s.free, 0)
			s.tainted = append(s.tainted, 0)
		}
		maxStore(&m.peakNodes, i+1)
	}
	if low != 0 {
		s.ref[low]++
	}
	if rh := regular(high); rh != 0 {
		s.ref[rh]++
	}
	z.uniq[key] = r
	s.addToBucket(r, int(varID))
	z.pop++
	if z.legacy {
		// Zone mode skips the peak update: Size() reads the stale global
		// free length there; CloseZones records the final peak instead.
		maxStore(&m.peakLive, int64(m.Size()))
	}
	return r
}

// ProbeSymmetry reports whether the variables at level and level+1 are
// positively symmetric in every live function; see the session-level
// description in reorder.go. symNeg rows are per-variable and the
// variables are zone-owned, so concurrent probes never share a row.
func (z *ReorderZone) ProbeSymmetry(level int) bool {
	s := z.s
	m := s.m
	if level < z.lo || level+1 > z.hi {
		return false
	}
	u, v := m.level2var[level], m.level2var[level+1]
	if s.symNeg == nil {
		s.symNeg = make([]uint64, m.numVars*s.imatW)
	}
	if s.symNeg[int(u)*s.imatW+int(v)>>6]&(1<<(uint(v)&63)) != 0 {
		return false
	}
	if z.probePair(u, v) {
		return true
	}
	s.symNeg[int(u)*s.imatW+int(v)>>6] |= 1 << (uint(v) & 63)
	s.symNeg[int(v)*s.imatW+int(u)>>6] |= 1 << (uint(u) & 63)
	return false
}

// probePair runs the structural symmetry check with u adjacent above v.
// The arc counters are epoch-stamped per zone; zones stamp disjoint
// slots, so sharing the arrays is safe without clearing.
func (z *ReorderZone) probePair(u, v int32) bool {
	s := z.s
	m := s.m
	if len(s.arcStamp) < len(s.ref) {
		s.arcCnt = make([]int32, len(s.ref))
		s.arcStamp = make([]int32, len(s.ref))
		z.arcEpoch = 0
	}
	z.arcEpoch++
	ep := z.arcEpoch
	real := false
	for _, f := range s.bucket[u] {
		n := *m.node(f)
		if n.low == False && n.high == True {
			continue // projection node of the upper variable
		}
		real = true
		f0 := n.low
		r1, c := regular(n.high), n.high&compBit
		f01, f10 := f0, n.high
		if m.node(f0).varID == v {
			f01 = m.node(f0).high
			if s.arcStamp[f0] != ep {
				s.arcStamp[f0], s.arcCnt[f0] = ep, 0
			}
			s.arcCnt[f0]++
		}
		if m.node(r1).varID == v {
			f10 = m.node(r1).low ^ c
			if s.arcStamp[r1] != ep {
				s.arcStamp[r1], s.arcCnt[r1] = ep, 0
			}
			s.arcCnt[r1]++
		}
		if f01 != f10 {
			return false
		}
	}
	if !real {
		return false
	}
	for _, g := range s.bucket[v] {
		n := *m.node(g)
		want := s.ref[g]
		if n.low == False && n.high == True {
			want-- // the projection node's permanent NewVar pin
		}
		got := int32(0)
		if s.arcStamp[g] == ep {
			got = s.arcCnt[g]
		}
		if got != want {
			return false
		}
	}
	return true
}

// release frees a node whose last reason to live is gone, cascading to
// children left with no external reference and no parent. Children of a
// zone node are zone nodes or terminal, so the cascade never leaves the
// zone.
func (z *ReorderZone) release(g Ref) {
	s := z.s
	m := s.m
	stack := append(z.relStack[:0], g)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := *m.node(r)
		if z.uniq[n] == r {
			delete(z.uniq, n)
		}
		s.removeFromBucket(r, int(n.varID))
		s.setFreeBit(r)
		s.setTaintBit(r)
		if z.legacy {
			m.free = append(m.free, r)
			m.freeLen.Store(int64(len(m.free)))
		} else {
			z.free = append(z.free, r)
		}
		z.pop--
		for _, ch := range [2]Ref{n.low, regular(n.high)} {
			if ch == 0 {
				continue
			}
			if s.ref[ch]--; s.ref[ch] == 0 {
				stack = append(stack, ch)
			}
		}
	}
	z.relStack = stack[:0]
}

// OpenZones splits the open session into independently siftable zones,
// one per variable set. Each set must be interaction-closed (no member
// interacts with a non-member — OpenZones verifies this against the
// matrix) and must occupy a contiguous band of levels (the driver packs
// components first). growth is the driver's max-growth bound; it sizes
// each zone's private slot budget. After OpenZones the session-level
// mutation primitives panic until CloseZones; zones may then run
// concurrently, one goroutine per zone.
func (s *ReorderSession) OpenZones(varSets [][]int, growth float64) []*ReorderZone {
	m := s.m
	if m.session != s {
		panic("bdd: OpenZones on an inactive reorder session")
	}
	if s.whole == nil {
		panic("bdd: OpenZones with zones already open")
	}
	if len(varSets) == 0 {
		return nil
	}
	if growth < 1 {
		growth = 1
	}
	w := s.whole
	zoneOf := make([]int32, m.numVars)
	for i := range zoneOf {
		zoneOf[i] = -1
	}
	zones := make([]*ReorderZone, len(varSets))
	mask := make([]uint64, s.imatW)
	for zi, set := range varSets {
		z := &ReorderZone{s: s, lo: m.numVars, hi: -1, arcEpoch: w.arcEpoch}
		for j := range mask {
			mask[j] = 0
		}
		for _, v := range set {
			if v < 0 || v >= m.numVars || zoneOf[v] >= 0 {
				panic("bdd: OpenZones: variable out of range or claimed twice")
			}
			zoneOf[v] = int32(zi)
			z.vars = append(z.vars, int32(v))
			mask[v>>6] |= 1 << (uint(v) & 63)
			if l := int(m.var2level[v]); l < z.lo {
				z.lo = l
			}
			if l := int(m.var2level[v]); l > z.hi {
				z.hi = l
			}
			z.pop += len(s.bucket[v])
		}
		if z.hi-z.lo+1 != len(set) {
			panic("bdd: OpenZones: zone levels not contiguous")
		}
		for _, v := range z.vars {
			row := s.imat[int(v)*s.imatW : (int(v)+1)*s.imatW]
			for j, rw := range row {
				if rw&^mask[j] != 0 {
					panic("bdd: OpenZones: zone is not interaction-closed")
				}
			}
		}
		z.uniq = make(map[node]Ref, z.pop+z.pop/4)
		zones[zi] = z
	}
	// Private slot budgets: recycled slots off the global free list
	// first (so repeated sifts do not grow the arena without bound),
	// fresh arena slots for the rest. 3·growth×pop covers a sift's
	// transient worst case — the driver aborts a direction near
	// growth×pop live plus one swap's worth of new inner nodes.
	for _, z := range zones {
		quota := int(3*growth*float64(z.pop)) + 1024
		take := quota
		if take > len(m.free) {
			take = len(m.free)
		}
		z.free = append(make([]Ref, 0, quota), m.free[len(m.free)-take:]...)
		m.free = m.free[:len(m.free)-take]
		if rest := quota - take; rest > 0 {
			base := m.nodeCap.Add(int64(rest)) - int64(rest)
			for i := base; i < base+int64(rest); i += chunkSize {
				m.ensureChunk(i)
			}
			m.ensureChunk(base + int64(rest) - 1)
			// Descending, so pops hand out ascending slot numbers.
			for i := int64(rest) - 1; i >= 0; i-- {
				z.free = append(z.free, Ref(base+i))
			}
			maxStore(&m.peakNodes, base+int64(rest))
		}
	}
	m.freeLen.Store(int64(len(m.free)))
	// One-time extension of the per-slot session arrays to the final
	// allocation bound: nothing may append to them while zones run (the
	// slice headers are read by every zone).
	alloc := int(m.nodeCap.Load())
	s.ref = append(s.ref, make([]int32, alloc-len(s.ref))...)
	s.pos = append(s.pos, make([]int32, alloc-len(s.pos))...)
	for len(s.free)*64 < alloc {
		s.free = append(s.free, 0)
		s.tainted = append(s.tainted, 0)
	}
	for _, z := range zones {
		for _, r := range z.free {
			s.free[r>>6] |= 1 << (uint(r) & 63)
		}
	}
	if len(s.arcStamp) < alloc {
		s.arcCnt = make([]int32, alloc)
		s.arcStamp = make([]int32, alloc)
	}
	if s.symNeg == nil {
		s.symNeg = make([]uint64, m.numVars*s.imatW)
	}
	// Split the unique index: every triple labeled with a zoned variable
	// moves to its zone's map. Un-zoned variables keep their entries in
	// the retired whole-order map, which nothing consults until Close
	// rebuilds the real table from the arena.
	for n, r := range w.uniq {
		if zi := zoneOf[n.varID]; zi >= 0 {
			zones[zi].uniq[n] = r
			delete(w.uniq, n)
		}
	}
	// Fold the packing phase's counters and retire the whole-order zone:
	// session-level mutation primitives panic until CloseZones.
	s.swaps += w.swaps
	s.interSkips += w.interSkips
	s.lbAborts += w.lbAborts
	s.symPairs += w.symPairs
	s.whole = nil
	s.zones = zones
	m.statSiftZones.Add(uint64(len(zones)))
	return zones
}

// CloseZones retires the open zones: leftover private slots return to
// the global free list in zone order (deterministic at any worker
// count), counters fold into the session totals, and the group registry
// is put into a canonical order after concurrent symmetric-pair glues.
// Only Close and the read accessors may follow.
func (s *ReorderSession) CloseZones() {
	m := s.m
	if s.zones == nil {
		return
	}
	for _, z := range s.zones {
		m.free = append(m.free, z.free...)
		s.swaps += z.swaps
		s.interSkips += z.interSkips
		s.lbAborts += z.lbAborts
		s.symPairs += z.symPairs
		m.statSiftParBlocks.Add(uint64(z.blocksSifted))
		z.free = nil
		z.uniq = nil
	}
	m.freeLen.Store(int64(len(m.free)))
	s.zones = nil
	maxStore(&m.peakLive, int64(m.Size()))
	m.groupsMu.Lock()
	sort.Slice(m.groups, func(i, j int) bool { return m.groups[i][0] < m.groups[j][0] })
	m.groupsMu.Unlock()
}
