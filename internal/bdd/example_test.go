package bdd_test

import (
	"fmt"

	"hsis/internal/bdd"
)

// Build the majority function of three variables and count its models.
func Example() {
	m := bdd.New()
	a, b, c := m.NewVar(), m.NewVar(), m.NewVar()
	maj := m.OrN(m.And(a, b), m.And(a, c), m.And(b, c))
	fmt.Println("satisfying assignments:", m.SatCount(maj, 3))
	cube, ok := m.AnySat(maj)
	fmt.Println("witness found:", ok, "with", len(cube), "literals")
	// Output:
	// satisfying assignments: 4
	// witness found: true with 3 literals
}

// The relational product at the heart of image computation: next states
// of {s=1} under the transition s' = ¬s, in one AndExists call.
func ExampleManager_AndExists() {
	m := bdd.New()
	s := m.NewVar()  // present state
	s2 := m.NewVar() // next state
	trans := m.Equiv(s2, m.Not(s))
	current := s // the set {s=1}
	next := m.AndExists(trans, current, m.Cube([]int{0}))
	fmt.Println("next == (s'=0):", next == m.Not(s2))
	// Output:
	// next == (s'=0): true
}

// Don't-care minimization: restrict a function to a care set.
func ExampleManager_Restrict() {
	m := bdd.New()
	a, b := m.NewVar(), m.NewVar()
	f := m.Xor(a, b)
	care := a // only assignments with a=1 matter
	g := m.Restrict(f, care)
	fmt.Println("g == !b:", g == m.Not(b))
	fmt.Println("agrees on care set:", m.And(f, care) == m.And(g, care))
	// Output:
	// g == !b: true
	// agrees on care set: true
}
