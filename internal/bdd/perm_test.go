package bdd

import (
	"math/rand"
	"testing"
)

// randPerm builds a random permutation over n variable IDs.
func randPerm(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}

// TestPermuteCommutesWithOps pins the complement-edge algebra of
// variable permutation: π(¬f) = ¬π(f) and π(f∧g) = π(f)∧π(g), for both
// the per-call Permute and the persistent Permuter. Random functions are
// negation-heavy so complement marks appear throughout the inputs.
func TestPermuteCommutesWithOps(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		perm := randPerm(6, rng)
		p := m.NewPermuter(perm)
		f := randomBDD(m, vs, rng, 4)
		g := randomBDD(m, vs, rng, 4)
		if m.Permute(m.Not(f), perm) != m.Not(m.Permute(f, perm)) {
			t.Fatalf("trial %d: Permute does not commute with Not", trial)
		}
		if m.Permute(m.And(f, g), perm) != m.And(m.Permute(f, perm), m.Permute(g, perm)) {
			t.Fatalf("trial %d: Permute does not commute with And", trial)
		}
		if p.Permute(m.Not(f)) != m.Not(p.Permute(f)) {
			t.Fatalf("trial %d: Permuter does not commute with Not", trial)
		}
		if p.Permute(m.And(f, g)) != m.And(p.Permute(f), p.Permute(g)) {
			t.Fatalf("trial %d: Permuter does not commute with And", trial)
		}
		// Permuter and Permute agree node for node.
		if p.Permute(f) != m.Permute(f, perm) {
			t.Fatalf("trial %d: Permuter disagrees with Permute", trial)
		}
	}
}

// TestPermuterSurvivesGCAndReorder drives one Permuter across a garbage
// collection and a reorder session: the persistent memo must be
// discarded (no stale Refs served) while results stay canonical — the
// permutation is variable-ID based, so a level shuffle must not change
// what it computes.
func TestPermuterSurvivesGCAndReorder(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	rng := rand.New(rand.NewSource(23))
	perm := []int{5, 4, 3, 2, 1, 0}
	p := m.NewPermuter(perm)

	roots := make([]Ref, 0, 8)
	for i := 0; i < 8; i++ {
		f := randomBDD(m, vs, rng, 5)
		m.IncRef(f)
		roots = append(roots, f)
	}
	want := make([]Ref, len(roots))
	for i, f := range roots {
		want[i] = p.Permute(f)
		m.IncRef(want[i])
	}
	if calls := m.Stats().PermCalls; calls == 0 {
		t.Fatal("Permuter did not count node visits")
	}

	// GC: memo values were unreferenced and may be recycled; the next
	// call must rebuild rather than serve stale Refs.
	m.GC()
	for i, f := range roots {
		if got := p.Permute(f); got != want[i] {
			t.Fatalf("root %d: Permuter changed its result across GC", i)
		}
	}

	// Reorder session: shuffle levels in place, then verify both that
	// results are identical Refs (canonical under the new order) and
	// that a fresh Permute agrees.
	s := m.StartReorder()
	for _, l := range []int{0, 2, 4, 1, 3, 2, 0} {
		s.Swap(l)
	}
	s.Close()
	checkKernelInvariants(t, m)
	for i, f := range roots {
		if got := p.Permute(f); got != want[i] {
			t.Fatalf("root %d: Permuter changed its result across reorder", i)
		}
		if got := m.Permute(f, perm); got != want[i] {
			t.Fatalf("root %d: Permute changed its result across reorder", i)
		}
	}

	// Warm repeat on an unchanged manager must hit the persistent memo.
	before := m.Stats()
	for _, f := range roots {
		p.Permute(f)
	}
	after := m.Stats()
	if after.PermHits == before.PermHits {
		t.Fatal("persistent memo produced no hits on a warm repeat")
	}
}
