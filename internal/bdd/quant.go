package bdd

// Quantification. Cubes are BDDs that are conjunctions of positive
// literals; they name the set of variables to quantify. Cube nodes are
// always regular (their low edges are False), so cube traversal reads
// stored nodes directly. The quantification caches key on (operand,
// cube) pairs, so results survive across calls with different cubes — an
// image step (quantifying the present-state rail) no longer evicts the
// entries of the preimage step (quantifying the next-state rail) that
// alternates with it in every backward/forward fixpoint. With complement
// edges, universal quantification is derived — ∀x.f = ¬∃x.¬f — so a
// single Exists cache serves both quantifiers.
//
// In parallel mode the recursions fork the high cofactor of
// non-quantified nodes onto the worker pool (pool.go). Quantified
// levels are never forked: their or(low, high) keeps the low == True
// short-circuit, and forking the high half would compute it
// speculatively even when the short-circuit fires.

// Cube builds the positive cube over the given variable IDs.
func (m *Manager) Cube(vars []int) Ref {
	c := m.begin()
	// Build bottom-up in level order for linear-size intermediate results.
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.var2level[v])
	}
	sortInt32(levels)
	r := True
	for i := len(levels) - 1; i >= 0; i-- {
		if i+1 < len(levels) && levels[i] == levels[i+1] {
			continue // duplicate variable
		}
		r = m.mk(c, levels[i], False, r)
	}
	m.end(c)
	return r
}

// CubeVars decomposes a positive cube into the variable IDs it mentions.
func (m *Manager) CubeVars(cube Ref) []int {
	m.rlock()
	defer m.runlock()
	var out []int
	for cube != True {
		level, low, high := m.top(cube)
		if level == terminalLevel {
			panic("bdd: CubeVars on non-cube (reached False)")
		}
		if low != False {
			panic("bdd: CubeVars on non-cube (negative or shared literal)")
		}
		out = append(out, int(m.level2var[level]))
		cube = high
	}
	return out
}

// Exists existentially quantifies the variables of cube out of f.
func (m *Manager) Exists(f, cube Ref) Ref {
	m.check(f)
	m.check(cube)
	if cube == True || m.IsTerminal(f) {
		return f
	}
	c := m.begin()
	r := m.existsRec(c, f, cube, 0)
	m.end(c)
	return r
}

// ForAll universally quantifies the variables of cube out of f. It is
// the complement-edge dual ¬∃x.¬f, sharing the Exists cache.
func (m *Manager) ForAll(f, cube Ref) Ref {
	m.check(f)
	m.check(cube)
	if cube == True || m.IsTerminal(f) {
		return f
	}
	c := m.begin()
	r := neg(m.existsRec(c, neg(f), cube, 0))
	m.end(c)
	return r
}

// AndExists computes Exists(cube, f AND g) without building the full
// conjunction — the core "relational product" used by image computation.
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	m.check(f)
	m.check(g)
	m.check(cube)
	c := m.begin()
	var r Ref
	if cube == True {
		r = m.andRec(c, f, g, 0)
	} else {
		r = m.andExistsRec(c, f, g, cube, 0)
	}
	m.end(c)
	return r
}

func (m *Manager) existsRec(c *kctx, f, cube Ref, depth int32) Ref {
	if m.IsTerminal(f) {
		return f
	}
	lf, f0, f1 := m.top(f)
	// Skip cube variables above f's top variable.
	for cube != True && m.levelOf(cube) < lf {
		cube = m.node(cube).high
	}
	if cube == True {
		return f
	}
	c.quantCalls++
	h := hash3(uint64(f), uint64(cube), 0x5eed)
	slot := &m.quant[h&m.quantMask]
	if c.par {
		if r, ok := c.l1probe(h, l1Quant, f, cube, 0); ok {
			c.quantHits++
			return r
		}
		if e, ok := slot.loadPar(); ok && e.f == f && e.cube == cube {
			c.quantHits++
			m.gcProtect(e.res)
			c.l1put(h, l1Quant, f, cube, 0, e.res)
			return e.res
		}
	} else if slot.f == f && slot.cube == cube {
		c.quantHits++
		return slot.res
	}
	nc := m.node(cube)
	var r Ref
	if lf == m.var2level[nc.varID] {
		low := m.existsRec(c, f0, nc.high, depth+1)
		if low == True {
			r = True
		} else {
			high := m.existsRec(c, f1, nc.high, depth+1)
			r = m.or(c, low, high, depth)
		}
	} else if c.canFork(depth, lf) {
		fu := c.forkTask(futExists, f1, False, cube, depth+1)
		low := m.existsRec(c, f0, cube, depth+1)
		high := c.join(fu)
		r = m.mk(c, lf, low, high)
	} else {
		low := m.existsRec(c, f0, cube, depth+1)
		high := m.existsRec(c, f1, cube, depth+1)
		r = m.mk(c, lf, low, high)
	}
	if c.par {
		c.l1store(h, l1Quant, cacheQuant, 0, f, cube, 0, r)
	} else {
		*slot = quantEntry{f: f, cube: cube, res: r}
	}
	return r
}

func (m *Manager) andExistsRec(c *kctx, f, g, cube Ref, depth int32) Ref {
	switch {
	case f == False, g == False, f == neg(g):
		return False
	case f == True:
		return m.existsRec(c, g, cube, depth)
	case g == True, f == g:
		return m.existsRec(c, f, cube, depth)
	}
	if f > g {
		f, g = g, f
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	top := lf
	if lg < top {
		top = lg
	}
	for cube != True && m.levelOf(cube) < top {
		cube = m.node(cube).high
	}
	if cube == True {
		return m.andRec(c, f, g, depth)
	}
	c.aexCalls++
	h := hash3(uint64(f), uint64(g), uint64(cube))
	slot := &m.aex[h&m.aexMask]
	if c.par {
		if r, ok := c.l1probe(h, l1Aex, f, g, cube); ok {
			c.aexHits++
			return r
		}
		if e, ok := slot.loadPar(); ok && e.f == f && e.g == g && e.cube == cube {
			c.aexHits++
			m.gcProtect(e.res)
			c.l1put(h, l1Aex, f, g, cube, e.res)
			return e.res
		}
	} else if slot.f == f && slot.g == g && slot.cube == cube {
		c.aexHits++
		return slot.res
	}
	if lf != top {
		f0, f1 = f, f
	}
	if lg != top {
		g0, g1 = g, g
	}
	nc := m.node(cube)
	var r Ref
	if m.var2level[nc.varID] == top {
		low := m.andExistsRec(c, f0, g0, nc.high, depth+1)
		if low == True {
			r = True
		} else {
			high := m.andExistsRec(c, f1, g1, nc.high, depth+1)
			r = m.or(c, low, high, depth)
		}
	} else if c.canFork(depth, top) {
		fu := c.forkTask(futAndExists, f1, g1, cube, depth+1)
		low := m.andExistsRec(c, f0, g0, cube, depth+1)
		high := c.join(fu)
		r = m.mk(c, top, low, high)
	} else {
		low := m.andExistsRec(c, f0, g0, cube, depth+1)
		high := m.andExistsRec(c, f1, g1, cube, depth+1)
		r = m.mk(c, top, low, high)
	}
	if c.par {
		c.l1store(h, l1Aex, cacheAex, 0, f, g, cube, r)
	} else {
		*slot = aexEntry{f: f, g: g, cube: cube, res: r}
	}
	return r
}

// ExistsAbstractAnd is an alias of AndExists with argument order matching
// the image-computation literature: ∃cube. f ∧ g.
func (m *Manager) ExistsAbstractAnd(cube, f, g Ref) Ref { return m.AndExists(f, g, cube) }

func sortInt32(a []int32) {
	// insertion sort; cubes are small
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
