package bdd

// Quantification. Cubes are BDDs that are conjunctions of positive
// literals; they name the set of variables to quantify. Cube nodes are
// always regular (their low edges are False), so cube traversal reads
// stored nodes directly. The quantification caches key on (operand,
// cube) pairs, so results survive across calls with different cubes — an
// image step (quantifying the present-state rail) no longer evicts the
// entries of the preimage step (quantifying the next-state rail) that
// alternates with it in every backward/forward fixpoint. With complement
// edges, universal quantification is derived — ∀x.f = ¬∃x.¬f — so a
// single Exists cache serves both quantifiers.

// Cube builds the positive cube over the given variable IDs.
func (m *Manager) Cube(vars []int) Ref {
	// Build bottom-up in level order for linear-size intermediate results.
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.var2level[v])
	}
	sortInt32(levels)
	r := True
	for i := len(levels) - 1; i >= 0; i-- {
		if i+1 < len(levels) && levels[i] == levels[i+1] {
			continue // duplicate variable
		}
		r = m.mk(levels[i], False, r)
	}
	return r
}

// CubeVars decomposes a positive cube into the variable IDs it mentions.
func (m *Manager) CubeVars(cube Ref) []int {
	var out []int
	for cube != True {
		level, low, high := m.top(cube)
		if level == terminalLevel {
			panic("bdd: CubeVars on non-cube (reached False)")
		}
		if low != False {
			panic("bdd: CubeVars on non-cube (negative or shared literal)")
		}
		out = append(out, int(m.level2var[level]))
		cube = high
	}
	return out
}

// Exists existentially quantifies the variables of cube out of f.
func (m *Manager) Exists(f, cube Ref) Ref {
	m.check(f)
	m.check(cube)
	if cube == True || m.IsTerminal(f) {
		return f
	}
	return m.existsRec(f, cube)
}

// ForAll universally quantifies the variables of cube out of f. It is
// the complement-edge dual ¬∃x.¬f, sharing the Exists cache.
func (m *Manager) ForAll(f, cube Ref) Ref {
	m.check(f)
	m.check(cube)
	if cube == True || m.IsTerminal(f) {
		return f
	}
	return neg(m.existsRec(neg(f), cube))
}

// AndExists computes Exists(cube, f AND g) without building the full
// conjunction — the core "relational product" used by image computation.
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	m.check(f)
	m.check(g)
	m.check(cube)
	if cube == True {
		return m.andRec(f, g)
	}
	return m.andExistsRec(f, g, cube)
}

func (m *Manager) existsRec(f, cube Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	lf, f0, f1 := m.top(f)
	// Skip cube variables above f's top variable.
	for cube != True && m.nodes[cube].level < lf {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return f
	}
	m.statQuantCalls++
	slot := &m.quant[hash3(uint64(f), uint64(cube), 0x5eed)&m.quantMask]
	if slot.f == f && slot.cube == cube {
		m.statQuantHits++
		return slot.res
	}
	nc := m.nodes[cube]
	var r Ref
	if lf == nc.level {
		low := m.existsRec(f0, nc.high)
		if low == True {
			r = True
		} else {
			high := m.existsRec(f1, nc.high)
			r = m.or(low, high)
		}
	} else {
		low := m.existsRec(f0, cube)
		high := m.existsRec(f1, cube)
		r = m.mk(lf, low, high)
	}
	*slot = quantEntry{f: f, cube: cube, res: r}
	return r
}

func (m *Manager) andExistsRec(f, g, cube Ref) Ref {
	switch {
	case f == False, g == False, f == neg(g):
		return False
	case f == True:
		return m.existsRec(g, cube)
	case g == True, f == g:
		return m.existsRec(f, cube)
	}
	if f > g {
		f, g = g, f
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	top := lf
	if lg < top {
		top = lg
	}
	for cube != True && m.nodes[cube].level < top {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return m.andRec(f, g)
	}
	m.statAexCalls++
	slot := &m.aex[hash3(uint64(f), uint64(g), uint64(cube))&m.aexMask]
	if slot.f == f && slot.g == g && slot.cube == cube {
		m.statAexHits++
		return slot.res
	}
	if lf != top {
		f0, f1 = f, f
	}
	if lg != top {
		g0, g1 = g, g
	}
	nc := m.nodes[cube]
	var r Ref
	if nc.level == top {
		low := m.andExistsRec(f0, g0, nc.high)
		if low == True {
			r = True
		} else {
			high := m.andExistsRec(f1, g1, nc.high)
			r = m.or(low, high)
		}
	} else {
		low := m.andExistsRec(f0, g0, cube)
		high := m.andExistsRec(f1, g1, cube)
		r = m.mk(top, low, high)
	}
	*slot = aexEntry{f: f, g: g, cube: cube, res: r}
	return r
}

// ExistsAbstractAnd is an alias of AndExists with argument order matching
// the image-computation literature: ∃cube. f ∧ g.
func (m *Manager) ExistsAbstractAnd(cube, f, g Ref) Ref { return m.AndExists(f, g, cube) }

func sortInt32(a []int32) {
	// insertion sort; cubes are small
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
