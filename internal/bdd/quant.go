package bdd

// Quantification. Cubes are BDDs that are conjunctions of positive
// literals; they name the set of variables to quantify. The
// quantification caches key on (operand, cube) pairs, so results survive
// across calls with different cubes — an image step (quantifying the
// present-state rail) no longer evicts the entries of the preimage step
// (quantifying the next-state rail) that alternates with it in every
// backward/forward fixpoint.

// Cube builds the positive cube over the given variable IDs.
func (m *Manager) Cube(vars []int) Ref {
	// Build bottom-up in level order for linear-size intermediate results.
	levels := make([]int32, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.var2level[v])
	}
	sortInt32(levels)
	r := True
	for i := len(levels) - 1; i >= 0; i-- {
		if i+1 < len(levels) && levels[i] == levels[i+1] {
			continue // duplicate variable
		}
		r = m.mk(levels[i], False, r)
	}
	return r
}

// CubeVars decomposes a positive cube into the variable IDs it mentions.
func (m *Manager) CubeVars(cube Ref) []int {
	var out []int
	for cube != True {
		n := m.nodes[cube]
		if n.level == terminalLevel {
			panic("bdd: CubeVars on non-cube (reached False)")
		}
		if n.low != False {
			panic("bdd: CubeVars on non-cube (negative or shared literal)")
		}
		out = append(out, int(m.level2var[n.level]))
		cube = n.high
	}
	return out
}

const (
	qopExists = 1
	qopForall = 2
)

// Exists existentially quantifies the variables of cube out of f.
func (m *Manager) Exists(f, cube Ref) Ref {
	m.check(f)
	m.check(cube)
	if cube == True || m.IsTerminal(f) {
		return f
	}
	return m.existsRec(f, cube)
}

// ForAll universally quantifies the variables of cube out of f.
func (m *Manager) ForAll(f, cube Ref) Ref {
	m.check(f)
	m.check(cube)
	if cube == True || m.IsTerminal(f) {
		return f
	}
	return m.forallRec(f, cube)
}

// AndExists computes Exists(cube, f AND g) without building the full
// conjunction — the core "relational product" used by image computation.
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	m.check(f)
	m.check(g)
	m.check(cube)
	if cube == True {
		return m.And(f, g)
	}
	return m.andExistsRec(f, g, cube)
}

func (m *Manager) existsRec(f, cube Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	nf := m.nodes[f]
	// Skip cube variables above f's top variable.
	for cube != True && m.nodes[cube].level < nf.level {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return f
	}
	m.statQuantCalls++
	slot := &m.quant[hash3(uint64(f), uint64(cube), 0x5eed)&(quantCacheSize-1)]
	if slot.f == f && slot.cube == cube && slot.op == qopExists {
		m.statQuantHits++
		return slot.res
	}
	nc := m.nodes[cube]
	var r Ref
	if nf.level == nc.level {
		low := m.existsRec(nf.low, nc.high)
		if low == True {
			r = True
		} else {
			high := m.existsRec(nf.high, nc.high)
			r = m.applyRec(opOr, low, high)
		}
	} else {
		low := m.existsRec(nf.low, cube)
		high := m.existsRec(nf.high, cube)
		r = m.mk(nf.level, low, high)
	}
	*slot = quantEntry{f: f, cube: cube, op: qopExists, res: r}
	return r
}

func (m *Manager) forallRec(f, cube Ref) Ref {
	if m.IsTerminal(f) {
		return f
	}
	nf := m.nodes[f]
	for cube != True && m.nodes[cube].level < nf.level {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return f
	}
	m.statQuantCalls++
	slot := &m.quant[hash3(uint64(f), uint64(cube), 0xa11)&(quantCacheSize-1)]
	if slot.f == f && slot.cube == cube && slot.op == qopForall {
		m.statQuantHits++
		return slot.res
	}
	nc := m.nodes[cube]
	var r Ref
	if nf.level == nc.level {
		low := m.forallRec(nf.low, nc.high)
		if low == False {
			r = False
		} else {
			high := m.forallRec(nf.high, nc.high)
			r = m.applyRec(opAnd, low, high)
		}
	} else {
		low := m.forallRec(nf.low, cube)
		high := m.forallRec(nf.high, cube)
		r = m.mk(nf.level, low, high)
	}
	*slot = quantEntry{f: f, cube: cube, op: qopForall, res: r}
	return r
}

func (m *Manager) andExistsRec(f, g, cube Ref) Ref {
	if f == False || g == False {
		return False
	}
	if f == True && g == True {
		return True
	}
	if f == True {
		return m.existsRec(g, cube)
	}
	if g == True {
		return m.existsRec(f, cube)
	}
	if f == g {
		return m.existsRec(f, cube)
	}
	if f > g {
		f, g = g, f
	}
	nf, ng := m.nodes[f], m.nodes[g]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	for cube != True && m.nodes[cube].level < top {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return m.applyRec(opAnd, f, g)
	}
	m.statAexCalls++
	slot := &m.aex[hash3(uint64(f), uint64(g), uint64(cube))&(aexCacheSize-1)]
	if slot.f == f && slot.g == g && slot.cube == cube {
		m.statAexHits++
		return slot.res
	}
	f0, f1 := cofactor(nf, f, top)
	g0, g1 := cofactor(ng, g, top)
	nc := m.nodes[cube]
	var r Ref
	if nc.level == top {
		low := m.andExistsRec(f0, g0, nc.high)
		if low == True {
			r = True
		} else {
			high := m.andExistsRec(f1, g1, nc.high)
			r = m.applyRec(opOr, low, high)
		}
	} else {
		low := m.andExistsRec(f0, g0, cube)
		high := m.andExistsRec(f1, g1, cube)
		r = m.mk(top, low, high)
	}
	*slot = aexEntry{f: f, g: g, cube: cube, res: r}
	return r
}

// ExistsAbstractAnd is an alias of AndExists with argument order matching
// the image-computation literature: ∃cube. f ∧ g.
func (m *Manager) ExistsAbstractAnd(cube, f, g Ref) Ref { return m.AndExists(f, g, cube) }

func sortInt32(a []int32) {
	// insertion sort; cubes are small
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
