package bdd

// Boolean connectives. With complement edges only two recursions are
// needed: AND and XOR. Everything else is derived through De Morgan
// identities that cost a sign flip — Or(f,g) = ¬(¬f ∧ ¬g) shares the
// AND cache, Not is a single XOR — so f, ¬f, f∧g, ¬f∨¬g … all draw on
// one shared DAG and one set of cache entries. Results are canonical by
// construction.

// Not returns the complement of f in O(1): complement edges make
// negation a sign flip, with no node allocation and no recursion.
func (m *Manager) Not(f Ref) Ref {
	m.check(f)
	return neg(f)
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.andRec(f, g)
}

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.or(f, g)
}

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.xorRec(f, g)
}

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.andRec(f, neg(g))
}

// Implies returns NOT f OR g.
func (m *Manager) Implies(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return neg(m.andRec(f, neg(g)))
}

// Equiv returns the biconditional f XNOR g.
func (m *Manager) Equiv(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return neg(m.xorRec(f, g))
}

// ITE returns if-then-else(f, g, h) = f·g + f'·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	m.check(f)
	m.check(g)
	m.check(h)
	return m.iteRec(f, g, h)
}

// AndN folds And over its arguments; AndN() is True.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over its arguments; OrN() is False.
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// Leq reports whether f implies g (f ≤ g pointwise).
func (m *Manager) Leq(f, g Ref) bool {
	return m.andRec(f, neg(g)) == False
}

// or is the internal disjunction: ¬(¬f ∧ ¬g), sharing the AND cache.
func (m *Manager) or(f, g Ref) Ref { return neg(m.andRec(neg(f), neg(g))) }

func (m *Manager) andRec(f, g Ref) Ref {
	// Terminal and complement-identity cases.
	switch {
	case f == g:
		return f
	case f == neg(g), f == False, g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	}
	if f > g {
		f, g = g, f
	}
	m.statApplyCalls++
	slot := &m.binop[hash3(opAnd, uint64(f), uint64(g))&m.binopMask]
	if slot.op == opAnd && slot.f == f && slot.g == g {
		m.statApplyHits++
		return slot.res
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	level := lf
	if lg < level {
		level = lg
	}
	if lf != level {
		f0, f1 = f, f
	}
	if lg != level {
		g0, g1 = g, g
	}
	low := m.andRec(f0, g0)
	high := m.andRec(f1, g1)
	r := m.mk(level, low, high)
	*slot = binopEntry{op: opAnd, f: f, g: g, res: r}
	return r
}

func (m *Manager) xorRec(f, g Ref) Ref {
	switch {
	case f == g:
		return False
	case f == neg(g):
		return True
	case f == False:
		return g
	case g == False:
		return f
	case f == True:
		return neg(g)
	case g == True:
		return neg(f)
	}
	// XOR commutes with complement on either input: ¬f ⊕ g = ¬(f ⊕ g).
	// Strip both marks, recurse on the regular pair, and re-apply the
	// parity to the result, so all four sign combinations share one
	// cache entry.
	c := (f ^ g) & compBit
	f, g = regular(f), regular(g)
	if f > g {
		f, g = g, f
	}
	m.statApplyCalls++
	slot := &m.binop[hash3(opXor, uint64(f), uint64(g))&m.binopMask]
	if slot.op == opXor && slot.f == f && slot.g == g {
		m.statApplyHits++
		return slot.res ^ c
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	level := lf
	if lg < level {
		level = lg
	}
	if lf != level {
		f0, f1 = f, f
	}
	if lg != level {
		g0, g1 = g, g
	}
	low := m.xorRec(f0, g0)
	high := m.xorRec(f1, g1)
	r := m.mk(level, low, high)
	*slot = binopEntry{op: opXor, f: f, g: g, res: r}
	return r ^ c
}

func (m *Manager) iteRec(f, g, h Ref) Ref {
	// Terminal and simplification cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	}
	if g == f {
		g = True
	} else if g == neg(f) {
		g = False
	}
	if h == f {
		h = False
	} else if h == neg(f) {
		h = True
	}
	// Reductions to the binary recursions keep the cache hit rate high.
	switch {
	case g == True && h == False:
		return f
	case g == False && h == True:
		return neg(f)
	case g == True:
		return m.or(f, h)
	case g == False:
		return m.andRec(neg(f), h)
	case h == False:
		return m.andRec(f, g)
	case h == True:
		return neg(m.andRec(f, neg(g))) // f → g
	case g == neg(h):
		return m.xorRec(f, h)
	}
	// Complement normalization: ITE(¬f,g,h) = ITE(f,h,g) makes the first
	// argument regular, and ITE(f,¬g,h) = ¬ITE(f,g,¬h) makes the second
	// regular, so the cache stores one canonical triple per function.
	if isComp(f) {
		f, g, h = neg(f), h, g
	}
	var c Ref
	if isComp(g) {
		c = compBit
		g, h = neg(g), neg(h)
	}
	m.statITECalls++
	slot := &m.ite[hash3(uint64(f), uint64(g), uint64(h))&m.iteMask]
	if slot.f == f && slot.g == g && slot.h == h {
		m.statITEHits++
		return slot.res ^ c
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	lh, h0, h1 := m.top(h)
	level := lf
	if lg < level {
		level = lg
	}
	if lh < level {
		level = lh
	}
	if lf != level {
		f0, f1 = f, f
	}
	if lg != level {
		g0, g1 = g, g
	}
	if lh != level {
		h0, h1 = h, h
	}
	low := m.iteRec(f0, g0, h0)
	high := m.iteRec(f1, g1, h1)
	r := m.mk(level, low, high)
	*slot = iteEntry{f: f, g: g, h: h, res: r}
	return r ^ c
}
