package bdd

// Boolean connectives. All operations are implemented on top of either
// the binary-operator recursion (with a shared cache) or the ternary ITE
// recursion. Results are canonical by construction.

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref {
	m.check(f)
	return m.iteRec(f, False, True)
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.applyRec(opAnd, f, g)
}

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.applyRec(opOr, f, g)
}

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.applyRec(opXor, f, g)
}

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	return m.applyRec(opDiff, f, g)
}

// Implies returns NOT f OR g.
func (m *Manager) Implies(f, g Ref) Ref {
	return m.Or(m.Not(f), g)
}

// Equiv returns the biconditional f XNOR g.
func (m *Manager) Equiv(f, g Ref) Ref {
	return m.Not(m.Xor(f, g))
}

// ITE returns if-then-else(f, g, h) = f·g + f'·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	m.check(f)
	m.check(g)
	m.check(h)
	return m.iteRec(f, g, h)
}

// AndN folds And over its arguments; AndN() is True.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over its arguments; OrN() is False.
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// Leq reports whether f implies g (f ≤ g pointwise).
func (m *Manager) Leq(f, g Ref) bool {
	return m.Diff(f, g) == False
}

func (m *Manager) applyRec(op int32, f, g Ref) Ref {
	// Terminal cases per operator.
	switch op {
	case opAnd:
		if f == g {
			return f
		}
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f > g {
			f, g = g, f
		}
	case opOr:
		if f == g {
			return f
		}
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f > g {
			f, g = g, f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return m.iteRec(g, False, True)
		}
		if g == True {
			return m.iteRec(f, False, True)
		}
		if f > g {
			f, g = g, f
		}
	case opDiff:
		if f == g || f == False || g == True {
			return False
		}
		if g == False {
			return f
		}
		if f == True {
			return m.iteRec(g, False, True)
		}
	}
	m.statApplyCalls++
	slot := &m.binop[hash3(uint64(op), uint64(f), uint64(g))&(binopCacheSize-1)]
	if slot.op == op && slot.f == f && slot.g == g {
		m.statApplyHits++
		return slot.res
	}
	nf, ng := m.nodes[f], m.nodes[g]
	var level int32
	var f0, f1, g0, g1 Ref
	switch {
	case nf.level == ng.level:
		level, f0, f1, g0, g1 = nf.level, nf.low, nf.high, ng.low, ng.high
	case nf.level < ng.level:
		level, f0, f1, g0, g1 = nf.level, nf.low, nf.high, g, g
	default:
		level, f0, f1, g0, g1 = ng.level, f, f, ng.low, ng.high
	}
	low := m.applyRec(op, f0, g0)
	high := m.applyRec(op, f1, g1)
	r := m.mk(level, low, high)
	*slot = binopEntry{op: op, f: f, g: g, res: r}
	return r
}

func (m *Manager) iteRec(f, g, h Ref) Ref {
	// Terminal and simplification cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if g == f {
		g = True
	}
	if h == f {
		h = False
	}
	// Standard-triple normalization keeps the cache hit rate high.
	if g == True && h != False {
		// f + h: commutes
		return m.applyRec(opOr, f, h)
	}
	if h == False && g != True {
		return m.applyRec(opAnd, f, g)
	}
	m.statITECalls++
	slot := &m.ite[hash3(uint64(f), uint64(g), uint64(h))&(iteCacheSize-1)]
	if slot.f == f && slot.g == g && slot.h == h {
		m.statITEHits++
		return slot.res
	}
	nf, ng, nh := m.nodes[f], m.nodes[g], m.nodes[h]
	level := nf.level
	if ng.level < level {
		level = ng.level
	}
	if nh.level < level {
		level = nh.level
	}
	f0, f1 := cofactor(nf, f, level)
	g0, g1 := cofactor(ng, g, level)
	h0, h1 := cofactor(nh, h, level)
	low := m.iteRec(f0, g0, h0)
	high := m.iteRec(f1, g1, h1)
	r := m.mk(level, low, high)
	*slot = iteEntry{f: f, g: g, h: h, res: r}
	return r
}

func cofactor(n node, f Ref, level int32) (lo, hi Ref) {
	if n.level == level {
		return n.low, n.high
	}
	return f, f
}
