package bdd

// Boolean connectives. With complement edges only two recursions are
// needed: AND and XOR. Everything else is derived through De Morgan
// identities that cost a sign flip — Or(f,g) = ¬(¬f ∧ ¬g) shares the
// AND cache, Not is a single XOR — so f, ¬f, f∧g, ¬f∨¬g … all draw on
// one shared DAG and one set of cache entries. Results are canonical by
// construction.
//
// Every recursion threads a kernel context (ctx.go) carrying the
// execution mode and counters, plus its depth, which drives the
// fork/join cutoff: in parallel mode an AND node near the recursion
// root forks its high cofactor onto the worker pool and computes the
// low cofactor inline (pool.go). Canonicity makes the result identical
// either way.

// Not returns the complement of f in O(1): complement edges make
// negation a sign flip, with no node allocation and no recursion.
func (m *Manager) Not(f Ref) Ref {
	m.check(f)
	return neg(f)
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	c := m.begin()
	r := m.andRec(c, f, g, 0)
	m.end(c)
	return r
}

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	c := m.begin()
	r := m.or(c, f, g, 0)
	m.end(c)
	return r
}

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	c := m.begin()
	r := m.xorRec(c, f, g)
	m.end(c)
	return r
}

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	c := m.begin()
	r := m.andRec(c, f, neg(g), 0)
	m.end(c)
	return r
}

// Implies returns NOT f OR g.
func (m *Manager) Implies(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	c := m.begin()
	r := neg(m.andRec(c, f, neg(g), 0))
	m.end(c)
	return r
}

// Equiv returns the biconditional f XNOR g.
func (m *Manager) Equiv(f, g Ref) Ref {
	m.check(f)
	m.check(g)
	c := m.begin()
	r := neg(m.xorRec(c, f, g))
	m.end(c)
	return r
}

// ITE returns if-then-else(f, g, h) = f·g + f'·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	m.check(f)
	m.check(g)
	m.check(h)
	c := m.begin()
	r := m.iteRec(c, f, g, h, 0)
	m.end(c)
	return r
}

// AndN folds And over its arguments; AndN() is True.
func (m *Manager) AndN(fs ...Ref) Ref {
	c := m.begin()
	r := True
	for _, f := range fs {
		m.check(f)
		r = m.andRec(c, r, f, 0)
		if r == False {
			break
		}
	}
	m.end(c)
	return r
}

// OrN folds Or over its arguments; OrN() is False.
func (m *Manager) OrN(fs ...Ref) Ref {
	c := m.begin()
	r := False
	for _, f := range fs {
		m.check(f)
		r = m.or(c, r, f, 0)
		if r == True {
			break
		}
	}
	m.end(c)
	return r
}

// Leq reports whether f implies g (f ≤ g pointwise).
func (m *Manager) Leq(f, g Ref) bool {
	c := m.begin()
	r := m.andRec(c, f, neg(g), 0)
	m.end(c)
	return r == False
}

// or is the internal disjunction: ¬(¬f ∧ ¬g), sharing the AND cache.
func (m *Manager) or(c *kctx, f, g Ref, depth int32) Ref {
	return neg(m.andRec(c, neg(f), neg(g), depth))
}

func (m *Manager) andRec(c *kctx, f, g Ref, depth int32) Ref {
	// Terminal and complement-identity cases.
	switch {
	case f == g:
		return f
	case f == neg(g), f == False, g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	}
	if f > g {
		f, g = g, f
	}
	c.applyCalls++
	h := hash3(opAnd, uint64(f), uint64(g))
	slot := &m.binop[h&m.binopMask]
	if c.par {
		if r, ok := c.l1probe(h, l1And, f, g, 0); ok {
			c.applyHits++
			return r
		}
		if e, ok := slot.loadPar(); ok && e.op == opAnd && e.f == f && e.g == g {
			c.applyHits++
			m.gcProtect(e.res)
			c.l1put(h, l1And, f, g, 0, e.res)
			return e.res
		}
	} else if slot.op == opAnd && slot.f == f && slot.g == g {
		c.applyHits++
		return slot.res
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	level := lf
	if lg < level {
		level = lg
	}
	if lf != level {
		f0, f1 = f, f
	}
	if lg != level {
		g0, g1 = g, g
	}
	var low, high Ref
	if c.canFork(depth, level) {
		fu := c.forkTask(futAnd, f1, g1, False, depth+1)
		low = m.andRec(c, f0, g0, depth+1)
		high = c.join(fu)
	} else {
		low = m.andRec(c, f0, g0, depth+1)
		high = m.andRec(c, f1, g1, depth+1)
	}
	r := m.mk(c, level, low, high)
	if c.par {
		c.l1store(h, l1And, cacheBinop, opAnd, f, g, 0, r)
	} else {
		*slot = binopEntry{op: opAnd, f: f, g: g, res: r}
	}
	return r
}

func (m *Manager) xorRec(c *kctx, f, g Ref) Ref {
	switch {
	case f == g:
		return False
	case f == neg(g):
		return True
	case f == False:
		return g
	case g == False:
		return f
	case f == True:
		return neg(g)
	case g == True:
		return neg(f)
	}
	// XOR commutes with complement on either input: ¬f ⊕ g = ¬(f ⊕ g).
	// Strip both marks, recurse on the regular pair, and re-apply the
	// parity to the result, so all four sign combinations share one
	// cache entry.
	cm := (f ^ g) & compBit
	f, g = regular(f), regular(g)
	if f > g {
		f, g = g, f
	}
	c.applyCalls++
	h := hash3(opXor, uint64(f), uint64(g))
	slot := &m.binop[h&m.binopMask]
	if c.par {
		if r, ok := c.l1probe(h, l1Xor, f, g, 0); ok {
			c.applyHits++
			return r ^ cm
		}
		if e, ok := slot.loadPar(); ok && e.op == opXor && e.f == f && e.g == g {
			c.applyHits++
			m.gcProtect(e.res)
			c.l1put(h, l1Xor, f, g, 0, e.res)
			return e.res ^ cm
		}
	} else if slot.op == opXor && slot.f == f && slot.g == g {
		c.applyHits++
		return slot.res ^ cm
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	level := lf
	if lg < level {
		level = lg
	}
	if lf != level {
		f0, f1 = f, f
	}
	if lg != level {
		g0, g1 = g, g
	}
	low := m.xorRec(c, f0, g0)
	high := m.xorRec(c, f1, g1)
	r := m.mk(c, level, low, high)
	if c.par {
		c.l1store(h, l1Xor, cacheBinop, opXor, f, g, 0, r)
	} else {
		*slot = binopEntry{op: opXor, f: f, g: g, res: r}
	}
	return r ^ cm
}

func (m *Manager) iteRec(c *kctx, f, g, h Ref, depth int32) Ref {
	// Terminal and simplification cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	}
	if g == f {
		g = True
	} else if g == neg(f) {
		g = False
	}
	if h == f {
		h = False
	} else if h == neg(f) {
		h = True
	}
	// Reductions to the binary recursions keep the cache hit rate high.
	switch {
	case g == True && h == False:
		return f
	case g == False && h == True:
		return neg(f)
	case g == True:
		return m.or(c, f, h, depth)
	case g == False:
		return m.andRec(c, neg(f), h, depth)
	case h == False:
		return m.andRec(c, f, g, depth)
	case h == True:
		return neg(m.andRec(c, f, neg(g), depth)) // f → g
	case g == neg(h):
		return m.xorRec(c, f, h)
	}
	// Complement normalization: ITE(¬f,g,h) = ITE(f,h,g) makes the first
	// argument regular, and ITE(f,¬g,h) = ¬ITE(f,g,¬h) makes the second
	// regular, so the cache stores one canonical triple per function.
	if isComp(f) {
		f, g, h = neg(f), h, g
	}
	var cm Ref
	if isComp(g) {
		cm = compBit
		g, h = neg(g), neg(h)
	}
	c.iteCalls++
	hh := hash3(uint64(f), uint64(g), uint64(h))
	slot := &m.ite[hh&m.iteMask]
	if c.par {
		if r, ok := c.l1probe(hh, l1ITE, f, g, h); ok {
			c.iteHits++
			return r ^ cm
		}
		if e, ok := slot.loadPar(); ok && e.f == f && e.g == g && e.h == h {
			c.iteHits++
			m.gcProtect(e.res)
			c.l1put(hh, l1ITE, f, g, h, e.res)
			return e.res ^ cm
		}
	} else if slot.f == f && slot.g == g && slot.h == h {
		c.iteHits++
		return slot.res ^ cm
	}
	lf, f0, f1 := m.top(f)
	lg, g0, g1 := m.top(g)
	lh, h0, h1 := m.top(h)
	level := lf
	if lg < level {
		level = lg
	}
	if lh < level {
		level = lh
	}
	if lf != level {
		f0, f1 = f, f
	}
	if lg != level {
		g0, g1 = g, g
	}
	if lh != level {
		h0, h1 = h, h
	}
	low := m.iteRec(c, f0, g0, h0, depth+1)
	high := m.iteRec(c, f1, g1, h1, depth+1)
	r := m.mk(c, level, low, high)
	if c.par {
		c.l1store(hh, l1ITE, cacheITE, 0, f, g, h, r)
	} else {
		*slot = iteEntry{f: f, g: g, h: h, res: r}
	}
	return r ^ cm
}
