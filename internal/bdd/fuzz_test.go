package bdd

// Differential fuzzing of the complement-edge kernel against a naive
// truth-table evaluator. A fuzz input is a byte program for a small
// stack machine whose operations mirror the Manager API — push a
// variable or constant, negate, combine with and/or/xor/ite, quantify a
// single variable, run a garbage collection with the stack as roots, or
// run a reordering session of adjacent-level swaps with the stack as
// roots. Every operation is applied in parallel to a Ref and to a
// 1024-bit truth table over nVars = 10 variables; after the program
// runs, every surviving stack entry must agree with its table on all
// 2^10 assignments. This exercises exactly the invariants complement
// edges make delicate: sign propagation through cofactors, the
// canonical low-edge rule in mk (and its swapMk twin during reorders),
// ITE complement normalization, derived ForAll, and cache survival
// across GC and reordering.

import "testing"

const fuzzVars = 10

// table is a truth table over fuzzVars variables: bit i of word i/64
// holds the function value under assignment i, where bit v of i is the
// value of variable v.
type table [1 << fuzzVars / 64]uint64

func ttVar(v int) table {
	var t table
	for i := 0; i < 1<<fuzzVars; i++ {
		if i>>v&1 == 1 {
			t[i/64] |= 1 << (i % 64)
		}
	}
	return t
}

func ttNot(a table) table {
	for i := range a {
		a[i] = ^a[i]
	}
	return a
}

func ttAnd(a, b table) table {
	for i := range a {
		a[i] &= b[i]
	}
	return a
}

func ttOr(a, b table) table {
	for i := range a {
		a[i] |= b[i]
	}
	return a
}

func ttXor(a, b table) table {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}

// ttExists existentially quantifies variable v: or of both cofactors.
func ttExists(a table, v int) table {
	var t table
	for i := 0; i < 1<<fuzzVars; i++ {
		lo := i &^ (1 << v)
		hi := i | 1<<v
		if a[lo/64]>>(lo%64)&1 == 1 || a[hi/64]>>(hi%64)&1 == 1 {
			t[i/64] |= 1 << (i % 64)
		}
	}
	return t
}

type fuzzEntry struct {
	f  Ref
	tt table
}

// runFuzzProgram interprets prog, returning the final stack. The Ref
// and truth-table sides only share the program bytes, never
// intermediate results.
func runFuzzProgram(m *Manager, prog []byte) []fuzzEntry {
	var trueTT table
	for i := range trueTT {
		trueTT[i] = ^uint64(0)
	}
	stack := []fuzzEntry{}
	pop := func() fuzzEntry {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	for pc := 0; pc < len(prog); pc++ {
		op := prog[pc] % 14
		arg := 0
		if pc+1 < len(prog) {
			arg = int(prog[pc+1]) % fuzzVars
		}
		switch {
		case op == 0: // push variable
			stack = append(stack, fuzzEntry{m.Var(arg), ttVar(arg)})
			pc++
		case op == 1: // push constant
			if arg%2 == 0 {
				stack = append(stack, fuzzEntry{True, trueTT})
			} else {
				stack = append(stack, fuzzEntry{False, table{}})
			}
			pc++
		case len(stack) == 0:
			// every remaining op needs at least one operand
		case op == 2:
			e := pop()
			stack = append(stack, fuzzEntry{m.Not(e.f), ttNot(e.tt)})
		case op == 3 && len(stack) >= 2:
			a, b := pop(), pop()
			stack = append(stack, fuzzEntry{m.And(a.f, b.f), ttAnd(a.tt, b.tt)})
		case op == 4 && len(stack) >= 2:
			a, b := pop(), pop()
			stack = append(stack, fuzzEntry{m.Or(a.f, b.f), ttOr(a.tt, b.tt)})
		case op == 5 && len(stack) >= 2:
			a, b := pop(), pop()
			stack = append(stack, fuzzEntry{m.Xor(a.f, b.f), ttXor(a.tt, b.tt)})
		case op == 6 && len(stack) >= 2:
			a, b := pop(), pop()
			stack = append(stack, fuzzEntry{m.Diff(a.f, b.f), ttAnd(a.tt, ttNot(b.tt))})
		case op == 7 && len(stack) >= 3:
			f, g, h := pop(), pop(), pop()
			tt := ttOr(ttAnd(f.tt, g.tt), ttAnd(ttNot(f.tt), h.tt))
			stack = append(stack, fuzzEntry{m.ITE(f.f, g.f, h.f), tt})
		case op == 8: // exists over one variable
			e := pop()
			cube := m.Cube([]int{arg})
			stack = append(stack, fuzzEntry{m.Exists(e.f, cube), ttExists(e.tt, arg)})
			pc++
		case op == 9: // forall over one variable: ¬∃v.¬f
			e := pop()
			cube := m.Cube([]int{arg})
			tt := ttNot(ttExists(ttNot(e.tt), arg))
			stack = append(stack, fuzzEntry{m.ForAll(e.f, cube), tt})
			pc++
		case op == 10: // equiv
			if len(stack) >= 2 {
				a, b := pop(), pop()
				stack = append(stack, fuzzEntry{m.Equiv(a.f, b.f), ttNot(ttXor(a.tt, b.tt))})
			}
		case op == 11: // GC with the stack as the only roots
			for _, e := range stack {
				m.IncRef(e.f)
			}
			m.GC()
			for _, e := range stack {
				m.DecRef(e.f)
			}
		case op == 12: // reorder: adjacent swaps with the stack as roots
			for _, e := range stack {
				m.IncRef(e.f)
			}
			s := m.StartReorder()
			for k := 0; k < 4; k++ {
				s.Swap((arg + k) % (fuzzVars - 1))
			}
			// Probe a pair for symmetry (the verdict is irrelevant; the
			// probe must not disturb anything) and take one O(span) jump
			// across the first non-interacting adjacent pair, if any.
			s.ProbeSymmetry(arg % (fuzzVars - 1))
			for l := 0; l+1 < fuzzVars; l++ {
				if !s.Interacts(m.VarAtLevel(l), m.VarAtLevel(l+1)) {
					s.MoveBlock(l, 1, 1)
					break
				}
			}
			s.Close()
			for _, e := range stack {
				m.DecRef(e.f)
			}
			pc++
		case op == 13: // register the adjacent pair at a level as a group
			l := arg % (fuzzVars - 1)
			m.GroupVars([]int{m.VarAtLevel(l), m.VarAtLevel(l + 1)})
			pc++
		}
	}
	return stack
}

func checkFuzzStack(t *testing.T, m *Manager, stack []fuzzEntry) {
	t.Helper()
	assignment := make([]bool, fuzzVars)
	for _, e := range stack {
		for i := 0; i < 1<<fuzzVars; i++ {
			for v := range assignment {
				assignment[v] = i>>v&1 == 1
			}
			want := e.tt[i/64]>>(i%64)&1 == 1
			if got := m.Eval(e.f, assignment); got != want {
				t.Fatalf("assignment %010b: kernel says %v, truth table says %v", i, got, want)
			}
		}
	}
}

func FuzzComplementKernel(f *testing.F) {
	// Seeds: plain connective chains, quantification, GC in the middle
	// of a computation, deep ITE nesting.
	f.Add([]byte{0, 1, 0, 2, 3})
	f.Add([]byte{0, 0, 0, 3, 2, 2, 8, 4})
	f.Add([]byte{0, 1, 0, 5, 5, 0, 7, 11, 0, 3, 3})
	f.Add([]byte{0, 9, 0, 3, 0, 7, 9, 2, 11, 5, 0, 0, 7, 7})
	f.Add([]byte{1, 0, 1, 1, 2, 10, 0, 4, 9, 1, 11, 0, 6, 6, 3})
	// Reordering interleaved with construction, quantification and GC.
	f.Add([]byte{0, 3, 0, 5, 3, 12, 0, 0, 4, 3, 12, 4, 8, 2})
	f.Add([]byte{0, 1, 0, 2, 12, 8, 3, 11, 0, 6, 12, 0, 7, 7, 12, 1})
	// Symmetric-group registration interleaved with ops, swaps and GC.
	f.Add([]byte{0, 2, 0, 3, 3, 13, 2, 12, 2, 0, 4, 5, 13, 5, 11, 12, 0})
	f.Add([]byte{13, 0, 0, 0, 1, 5, 3, 12, 4, 13, 8, 11, 0, 6, 7, 12, 9})
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 256 {
			t.Skip("long programs add time, not coverage")
		}
		m := New()
		m.NewVars(fuzzVars)
		stack := runFuzzProgram(m, prog)
		checkFuzzStack(t, m, stack)
		checkKernelInvariants(t, m)
		// The stack survived arbitrary GCs and reorders; a final
		// collection with the stack as roots must not change any
		// function either.
		for _, e := range stack {
			m.IncRef(e.f)
		}
		m.GC()
		checkFuzzStack(t, m, stack)
	})
}

// TestFuzzCorpus runs the seed programs as a plain test so `go test`
// exercises the differential harness without -fuzz.
func TestFuzzCorpus(t *testing.T) {
	progs := [][]byte{
		{0, 1, 0, 2, 3},
		{0, 0, 0, 3, 2, 2, 8, 4},
		{0, 1, 0, 5, 5, 0, 7, 11, 0, 3, 3},
		{0, 9, 0, 3, 0, 7, 9, 2, 11, 5, 0, 0, 7, 7},
		{1, 0, 1, 1, 2, 10, 0, 4, 9, 1, 11, 0, 6, 6, 3},
		{11, 11, 0, 0, 0, 0, 2, 7, 9, 3, 11, 8, 1, 10, 5},
		{0, 3, 0, 5, 3, 12, 0, 0, 4, 3, 12, 4, 8, 2},
		{0, 1, 0, 2, 12, 8, 3, 11, 0, 6, 12, 0, 7, 7, 12, 1},
		{12, 0, 0, 0, 5, 12, 9, 3, 7, 12, 2, 11, 12, 5, 10},
		{0, 2, 0, 3, 3, 13, 2, 12, 2, 0, 4, 5, 13, 5, 11, 12, 0},
		{13, 0, 0, 0, 1, 5, 3, 12, 4, 13, 8, 11, 0, 6, 7, 12, 9},
	}
	for _, prog := range progs {
		m := New()
		m.NewVars(fuzzVars)
		checkFuzzStack(t, m, runFuzzProgram(m, prog))
		checkKernelInvariants(t, m)
	}
}

// TestCacheSurvival pins the GC-surviving cache policy: at a high live
// ratio the collector sweeps the operation caches instead of clearing
// them, and entries whose operands and result are all live are kept.
func TestCacheSurvival(t *testing.T) {
	m := New()
	vars := m.NewVars(16)
	var roots []Ref
	f := True
	for i := 0; i+1 < len(vars); i++ {
		f = m.And(f, m.Or(vars[i], m.Not(vars[i+1])))
		roots = append(roots, m.IncRef(f))
	}
	m.GC() // nearly everything is rooted: this must take the sweep path
	st := m.Stats()
	if st.CacheEntriesKept == 0 {
		t.Fatal("no operation-cache entries survived a high-live-ratio GC")
	}
	for _, r := range roots {
		m.DecRef(r)
	}
}
