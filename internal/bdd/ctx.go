package bdd

import "sync/atomic"

// kctx is the per-operation kernel context. Every recursion takes one:
// it carries the execution mode (sequential or parallel), the fork
// budget, and a set of plain statistics counters that are flushed into
// the manager's atomic totals when the operation ends. Keeping the hot
// counters private to the running goroutine is what lets the parallel
// mode avoid a shared contended cache line per recursion step, and lets
// the sequential mode keep its zero-atomic fast path.
//
// Sequential mode uses the manager's single long-lived seqCtx, so the
// cumulative sinceAdapt counter preserves the classic "adaptation check
// every 2^14 allocations" cadence across operations. Parallel mode
// draws pooled contexts in begin and returns them in end; pool workers
// own one context each for the futures they execute.
type kctx struct {
	m          *Manager
	par        bool  // use the lock-striped/atomic access paths
	mayFork    bool  // may split subproblems onto the worker pool
	depthLimit int32 // forking allowed strictly above this recursion depth

	applyCalls, applyHits uint64
	iteCalls, iteHits     uint64
	quantCalls, quantHits uint64
	aexCalls, aexHits     uint64
	compShared            uint64
	allocs                uint64
	forks, steals         uint64
	contention            uint64

	// sinceAdapt is the allocation counter driving the periodic cache
	// adaptation checkpoint; unlike the fields above it is never flushed,
	// so the cadence is cumulative across operations.
	sinceAdapt uint64

	// Private L1 op cache (parallel mode only; see l1cache.go). l1 is
	// allocated lazily on the first parallel begin and kept across
	// operations; l1Epoch is recaptured at every begin and at every
	// future start, so a stale context cannot serve pre-GC entries.
	l1        []l1Entry
	l1Epoch   uint32
	l1Pending []l1Pend
	l1Cap     int
	l1Hits    uint64
	l1Merges  uint64
	l1Promos  uint64
}

// flush folds the context's counters into the manager totals and zeroes
// them, leaving the context reusable.
func (c *kctx) flush(m *Manager) {
	addClear(&m.statApplyCalls, &c.applyCalls)
	addClear(&m.statApplyHits, &c.applyHits)
	addClear(&m.statITECalls, &c.iteCalls)
	addClear(&m.statITEHits, &c.iteHits)
	addClear(&m.statQuantCalls, &c.quantCalls)
	addClear(&m.statQuantHits, &c.quantHits)
	addClear(&m.statAexCalls, &c.aexCalls)
	addClear(&m.statAexHits, &c.aexHits)
	addClear(&m.statCompShared, &c.compShared)
	addClear(&m.allocs, &c.allocs)
	addClear(&m.statForks, &c.forks)
	addClear(&m.statSteals, &c.steals)
	addClear(&m.statContention, &c.contention)
	addClear(&m.statL1Hits, &c.l1Hits)
	addClear(&m.statL1Merges, &c.l1Merges)
	addClear(&m.statL1Promos, &c.l1Promos)
}

func addClear(dst *atomic.Uint64, src *uint64) {
	if *src != 0 {
		dst.Add(*src)
		*src = 0
	}
}

// begin opens an operation epoch. Sequential mode returns the resident
// context with no synchronization at all; parallel mode read-locks the
// stop-the-world lock (so GC, cache adaptation and reorder sessions
// exclude the operation) and draws a pooled context.
func (m *Manager) begin() *kctx {
	if !m.par {
		return m.seqCtx
	}
	m.stw.RLock()
	c := m.ctxFree.Get().(*kctx)
	c.par = true
	// Forests below the fork floor never fork: the whole operation is
	// cheaper than one dispatch, and the estimate costs one atomic load.
	c.mayFork = m.pool != nil && m.nodeCap.Load() >= forkMinNodes
	if c.mayFork {
		c.depthLimit = m.pool.depthLimit.Load()
	}
	if c.l1 == nil {
		c.l1 = make([]l1Entry, l1Size)
	}
	c.l1Epoch = m.cacheEpoch.Load()
	c.l1Cap = l1PendCap
	if n := m.l1Every; n > 0 {
		c.l1Cap = int(n)
	}
	return c
}

// end closes an operation epoch opened by begin.
func (m *Manager) end(c *kctx) {
	if c == m.seqCtx {
		return
	}
	c.drainL1() // promote private results while the read lock still holds
	c.flush(m)
	c.par = false
	c.mayFork = false
	m.ctxFree.Put(c)
	m.stw.RUnlock()
	if m.pool != nil {
		m.pool.maybeTune(m)
	}
	// Drain a pending cache-adaptation request if the manager happens to
	// be quiescent right now; otherwise a later end, MaybeGC or GC gets
	// it. Resizing a cache requires the stop-the-world lock because
	// concurrent probes hold slot pointers into the old array.
	if m.adaptPending.Load() {
		m.tryAdapt()
	}
}

// rlock/runlock guard read-only public entry points (SatCount, Support,
// WriteBDDs, ...) against stop-the-world epochs in parallel mode. They
// are no-ops sequentially.
func (m *Manager) rlock() {
	if m.par {
		m.stw.RLock()
	}
}

func (m *Manager) runlock() {
	if m.par {
		m.stw.RUnlock()
	}
}

// exclusive opens a stop-the-world epoch and returns a sequential-mode
// context for it. It serves cold structural entry points (ReadBDDs,
// NewVar) that mix node construction with manager mutations no
// concurrent reader may observe. release closes the epoch.
func (m *Manager) exclusive() *kctx {
	if !m.par {
		return m.seqCtx
	}
	m.stw.Lock()
	return m.seqCtx
}

func (m *Manager) release(c *kctx) {
	if !m.par {
		return
	}
	c.flush(m)
	m.stw.Unlock()
}

// tryAdapt runs a requested cache-adaptation check if the
// stop-the-world lock is immediately available; contended attempts are
// simply retried at a later drain point.
func (m *Manager) tryAdapt() {
	if !m.stw.TryLock() {
		return
	}
	if m.adaptPending.CompareAndSwap(true, false) {
		m.adaptCaches()
	}
	m.stw.Unlock()
}
