package bdd

import (
	"sync"
	"testing"
)

// Tests for the two-level op cache and the concurrent-GC protocol under
// true multi-goroutine load. Both compare against a sequential oracle
// manager through the exact dump-transfer equality: canonicity means a
// lost or misdirected cache entry can only cost time, never change a
// result — so any Ref mismatch here is a real correctness bug in the
// L1 merge or the mark/sweep phases.

// TestL1CacheMergeRace hammers And/Exists/AndExists from 8 goroutines
// on one 4-worker manager with L1→L2 promotion forced every 2 entries,
// so the promotion path (seqlock publication, epoch validation, retry
// on contention) runs constantly under the race detector, and asserts
// every goroutine's results are identical to the sequential kernel's.
func TestL1CacheMergeRace(t *testing.T) {
	const (
		nv         = 24
		goroutines = 8
	)
	build := func(m *Manager, salt uint32) (f, g, cube Ref) {
		rngF := xorshift32(0x9e3779b9 ^ salt)
		rngG := xorshift32(0x85ebca6b ^ salt)
		f = m.IncRef(buildDNF(m, &rngF, nv, 40, 7))
		g = m.IncRef(buildDNF(m, &rngG, nv, 40, 7))
		vars := make([]int, 0, nv/3)
		for v := 0; v < nv; v += 3 {
			vars = append(vars, v)
		}
		cube = m.IncRef(m.Cube(vars))
		return
	}

	seq := New()
	seq.NewVars(nv)
	type triple struct{ and, ex, aex Ref }
	want := make([]triple, goroutines)
	for i := range want {
		f, g, cube := build(seq, uint32(i))
		want[i] = triple{seq.And(f, g), seq.Exists(f, cube), seq.AndExists(f, g, cube)}
		seq.IncRef(want[i].and)
		seq.IncRef(want[i].ex)
		seq.IncRef(want[i].aex)
	}

	par := New()
	par.NewVars(nv)
	par.SetWorkers(4)
	par.SetL1MergeInterval(2)
	type inputs struct{ f, g, cube Ref }
	ins := make([]inputs, goroutines)
	for i := range ins {
		f, g, cube := build(par, uint32(i))
		ins[i] = inputs{f, g, cube}
	}
	got := make([]triple, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := ins[i]
			// Three rounds per goroutine: later rounds re-derive the same
			// functions, so they hit whatever the merges promoted — a bad
			// promotion would surface as a wrong (non-canonical) Ref here.
			for round := 0; round < 3; round++ {
				got[i] = triple{
					and: par.And(in.f, in.g),
					ex:  par.Exists(in.f, in.cube),
					aex: par.AndExists(in.f, in.g, in.cube),
				}
			}
		}(i)
	}
	wg.Wait()
	if st := par.Stats(); st.L1Merges == 0 || st.L1Promotions == 0 {
		t.Fatalf("merge knob did not engage: %d merges, %d promotions", st.L1Merges, st.L1Promotions)
	}
	for i := range got {
		if r := transfer(t, par, seq, got[i].and); r != want[i].and {
			t.Errorf("goroutine %d: And diverged from sequential", i)
		}
		if r := transfer(t, par, seq, got[i].ex); r != want[i].ex {
			t.Errorf("goroutine %d: Exists diverged from sequential", i)
		}
		if r := transfer(t, par, seq, got[i].aex); r != want[i].aex {
			t.Errorf("goroutine %d: AndExists diverged from sequential", i)
		}
	}
	checkKernelInvariants(t, par)
	par.SetWorkers(1)
}

// TestConcurrentGCDuringOps interleaves parallel GC cycles (concurrent
// mark on the pool + short exclusive sweep) with bursts of concurrent
// operations: each round builds garbage from several goroutines, then
// collects at the safe point, and the protected results must survive
// every collection bit for bit.
func TestConcurrentGCDuringOps(t *testing.T) {
	const (
		nv     = 24
		tasks  = 8
		rounds = 4
	)
	seq := New()
	seq.NewVars(nv)
	par := New()
	par.NewVars(nv)
	par.SetWorkers(4)

	wantRes := make([]Ref, tasks)
	gotRes := make([]Ref, tasks)
	for round := 0; round < rounds; round++ {
		work := make([]func(), tasks)
		for i := 0; i < tasks; i++ {
			i := i
			salt := uint32(round*tasks + i)
			work[i] = func() {
				rngF := xorshift32(0xdeadbeef ^ salt)
				rngG := xorshift32(0xcafef00d ^ salt)
				f := buildDNF(par, &rngF, nv, 30, 6)
				g := buildDNF(par, &rngG, nv, 30, 6)
				gotRes[i] = par.IncRef(par.And(f, g))
			}
		}
		par.ParallelDo(work...)
		for i := 0; i < tasks; i++ {
			salt := uint32(round*tasks + i)
			rngF := xorshift32(0xdeadbeef ^ salt)
			rngG := xorshift32(0xcafef00d ^ salt)
			f := buildDNF(seq, &rngF, nv, 30, 6)
			g := buildDNF(seq, &rngG, nv, 30, 6)
			wantRes[i] = seq.IncRef(seq.And(f, g))
		}
		// Safe point: all tasks quiesced, every result protected. The
		// collection marks concurrently on the pool and only the
		// sweep+rebuild window is exclusive.
		par.GC()
		for i := range gotRes {
			if r := transfer(t, par, seq, gotRes[i]); r != wantRes[i] {
				t.Fatalf("round %d task %d: result corrupted across concurrent GC", round, i)
			}
			par.DecRef(gotRes[i])
			seq.DecRef(wantRes[i])
		}
		checkKernelInvariants(t, par)
	}
	if par.GCCount < rounds {
		t.Fatalf("expected %d collections, ran %d", rounds, par.GCCount)
	}
	par.SetWorkers(1)
}
