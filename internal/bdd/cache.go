package bdd

import (
	"sync/atomic"

	"hsis/internal/telemetry"
)

// The adaptive operation-cache layer. The four direct-mapped caches
// (ITE, binary ops, Exists, AndExists) start at fixed power-of-two sizes
// and grow on demand: when a cache shows a sustained hit-rate collapse —
// at least cacheGrowStreak consecutive observation windows below
// cacheGrowHitRate — its array doubles, bounded by a per-Manager total
// entry budget. Growth rehashes the surviving entries into the larger
// array, so a resize never discards warm state.
//
// The caches also survive garbage collection: sweepCaches (called from
// GC while the mark bitmap is valid) keeps every entry whose operands
// and result are all still live, and only zeroes entries that reference
// a reclaimed node. Before this, every collection cleared all caches
// wholesale, so each fixpoint iteration after a GC recomputed work the
// previous iteration had already done.

// Initial cache sizes (entries, powers of two). These match the old
// fixed constants, so a session that never collects sees the same
// capacity as before — but they are now just a starting point: a cache
// under sustained pressure doubles, and the collector shrinks an
// oversized cache down to minCacheSize when the working set no longer
// justifies it.
const (
	initITECache   = 1 << 15
	initBinopCache = 1 << 16
	initQuantCache = 1 << 15
	initAexCache   = 1 << 16

	// minCacheSize is the shrink floor: no cache drops below this, so
	// even a tiny session keeps enough associativity to be useful.
	minCacheSize = 1 << 12
)

// defaultCacheBudget caps the total entries across the four op caches
// (~32 MiB at 16 bytes/entry). SetCacheBudget overrides it.
const defaultCacheBudget = 1 << 21

const (
	cacheWindowMin   = 1 << 14 // probes before a window yields a verdict
	cacheGrowHitRate = 0.25    // below this, a window counts toward growth
	cacheGrowStreak  = 2       // consecutive low windows before doubling

	// cacheAdaptEvery is the node-allocation interval at which mkNode
	// runs an adaptation check, so caches grow during long recursions
	// that never reach a GC point.
	cacheAdaptEvery = 1 << 14
)

type cacheID int

const (
	cacheITE cacheID = iota
	cacheBinop
	cacheQuant
	cacheAex
	numCaches
)

func (id cacheID) String() string {
	switch id {
	case cacheITE:
		return "ite"
	case cacheBinop:
		return "apply"
	case cacheQuant:
		return "quant"
	case cacheAex:
		return "andexists"
	default:
		return "unknown"
	}
}

// cacheWindow tracks one cache's counters at the last adaptation check.
type cacheWindow struct {
	calls, hits uint64
	lowStreak   int
}

// SetCacheBudget bounds the total number of operation-cache entries the
// adaptive growth policy may reach, across all four caches.
func (m *Manager) SetCacheBudget(entries int) { m.cacheBudget = entries }

// adaptCaches runs one adaptation check per cache. It is O(1) unless a
// cache actually grows, so callers (MaybeGC, GC) can invoke it freely.
// In parallel mode it must run at a stop-the-world point: growth swaps
// the cache arrays out from under concurrent probes.
func (m *Manager) adaptCaches() {
	m.adaptOne(cacheITE, m.statITECalls.Load(), m.statITEHits.Load())
	m.adaptOne(cacheBinop, m.statApplyCalls.Load(), m.statApplyHits.Load())
	m.adaptOne(cacheQuant, m.statQuantCalls.Load(), m.statQuantHits.Load())
	m.adaptOne(cacheAex, m.statAexCalls.Load(), m.statAexHits.Load())
}

func (m *Manager) adaptOne(id cacheID, calls, hits uint64) {
	w := &m.cacheWin[id]
	dcalls := calls - w.calls
	if dcalls < cacheWindowMin {
		return // not enough traffic since the last check for a verdict
	}
	dhits := hits - w.hits
	w.calls, w.hits = calls, hits
	if float64(dhits) >= cacheGrowHitRate*float64(dcalls) {
		w.lowStreak = 0
		return
	}
	if w.lowStreak++; w.lowStreak < cacheGrowStreak {
		return
	}
	w.lowStreak = 0
	// A low hit rate alone is not a capacity signal: a cold phase misses
	// because its subproblems are new, and doubling then just buys more
	// memory to wipe. Only grow when the cache is also nearly full, the
	// evidence that misses come from entries evicting each other.
	if m.cacheOccupied(id) {
		m.growCache(id)
	}
}

// cacheOccupied samples the cache and reports whether it is mostly full
// (≥ 3/4 of sampled slots in use). Empty entries have f == 0.
func (m *Manager) cacheOccupied(id cacheID) bool {
	const samples = 256
	used := 0
	switch id {
	case cacheITE:
		stride := len(m.ite) / samples
		for i := 0; i < samples; i++ {
			if m.ite[i*stride].f != 0 {
				used++
			}
		}
	case cacheBinop:
		stride := len(m.binop) / samples
		for i := 0; i < samples; i++ {
			if m.binop[i*stride].f != 0 {
				used++
			}
		}
	case cacheQuant:
		stride := len(m.quant) / samples
		for i := 0; i < samples; i++ {
			if m.quant[i*stride].f != 0 {
				used++
			}
		}
	case cacheAex:
		stride := len(m.aex) / samples
		for i := 0; i < samples; i++ {
			if m.aex[i*stride].f != 0 {
				used++
			}
		}
	}
	return used >= samples*3/4
}

func (m *Manager) totalCacheEntries() int {
	return len(m.ite) + len(m.binop) + len(m.quant) + len(m.aex)
}

// growCache doubles one cache, rehashing its entries into the new array,
// unless doing so would exceed the per-Manager budget.
func (m *Manager) growCache(id cacheID) {
	switch id {
	case cacheITE:
		if m.totalCacheEntries()+len(m.ite) > m.cacheBudget {
			return
		}
		old := m.ite
		m.ite = make([]iteEntry, 2*len(old))
		m.iteMask = uint64(len(m.ite) - 1)
		for _, e := range old {
			if e.f == 0 {
				continue
			}
			m.ite[hash3(uint64(e.f), uint64(e.g), uint64(e.h))&m.iteMask] = e
		}
	case cacheBinop:
		if m.totalCacheEntries()+len(m.binop) > m.cacheBudget {
			return
		}
		old := m.binop
		m.binop = make([]binopEntry, 2*len(old))
		m.binopMask = uint64(len(m.binop) - 1)
		for _, e := range old {
			if e.f == 0 {
				continue
			}
			m.binop[hash3(uint64(e.op), uint64(e.f), uint64(e.g))&m.binopMask] = e
		}
	case cacheQuant:
		if m.totalCacheEntries()+len(m.quant) > m.cacheBudget {
			return
		}
		old := m.quant
		m.quant = make([]quantEntry, 2*len(old))
		m.quantMask = uint64(len(m.quant) - 1)
		for _, e := range old {
			if e.f == 0 {
				continue
			}
			m.quant[hash3(uint64(e.f), uint64(e.cube), 0x5eed)&m.quantMask] = e
		}
	case cacheAex:
		if m.totalCacheEntries()+len(m.aex) > m.cacheBudget {
			return
		}
		old := m.aex
		m.aex = make([]aexEntry, 2*len(old))
		m.aexMask = uint64(len(m.aex) - 1)
		for _, e := range old {
			if e.f == 0 {
				continue
			}
			m.aex[hash3(uint64(e.f), uint64(e.g), uint64(e.cube))&m.aexMask] = e
		}
	}
	m.statCacheGrowths.Add(1)
	if sc := m.Telemetry(); sc != nil {
		sc.Emit("bdd.cache_grow",
			telemetry.Str("cache", id.String()),
			telemetry.Int("entries", m.cacheLen(id)),
			telemetry.Int("total_entries", m.totalCacheEntries()))
	}
}

// cacheLen returns the current entry count of one cache.
func (m *Manager) cacheLen(id cacheID) int {
	switch id {
	case cacheITE:
		return len(m.ite)
	case cacheBinop:
		return len(m.binop)
	case cacheQuant:
		return len(m.quant)
	default:
		return len(m.aex)
	}
}

// clearCaches wipes all four operation caches and resizes each toward
// the working set measured by `demand` (max of surviving nodes and
// allocations since the previous collection). GC uses it instead of
// sweepCaches when almost everything died: an entry survives a sweep
// only if every node it mentions is live, so at a low live ratio the
// scan-and-test is all cost and no yield. Shrinking at the same point
// keeps a cache that ballooned during one heavy phase (a transition
// relation build, a pathological preimage) from taxing every later
// collection with a multi-megabyte wipe, while the demand signal keeps
// a steady-state loop that rebuilds a large forest every iteration from
// losing its sizing; if demand resurges anyway, the adaptive growth
// path brings a shrunk cache back within a few windows.
func (m *Manager) clearCaches(demand int) {
	target := pow2AtLeast(demand)
	resize := func(n, init int) int {
		want := target
		if want < init {
			want = init
		}
		// 2× hysteresis: resizing is only worth it when the cache is
		// oversized by at least a factor of two.
		if 2*want > n {
			want = n
		}
		return want
	}
	if n := resize(len(m.ite), minCacheSize); n < len(m.ite) {
		m.ite = make([]iteEntry, n)
		m.iteMask = uint64(n - 1)
	} else {
		clear(m.ite)
	}
	if n := resize(len(m.binop), minCacheSize); n < len(m.binop) {
		m.binop = make([]binopEntry, n)
		m.binopMask = uint64(n - 1)
	} else {
		clear(m.binop)
	}
	if n := resize(len(m.quant), minCacheSize); n < len(m.quant) {
		m.quant = make([]quantEntry, n)
		m.quantMask = uint64(n - 1)
	} else {
		clear(m.quant)
	}
	if n := resize(len(m.aex), minCacheSize); n < len(m.aex) {
		m.aex = make([]aexEntry, n)
		m.aexMask = uint64(n - 1)
	} else {
		clear(m.aex)
	}
	for i := range m.cacheWin {
		m.cacheWin[i].lowStreak = 0
	}
	m.statCacheKept = 0
}

// pow2AtLeast returns the smallest power of two ≥ n (and ≥ 1).
func pow2AtLeast(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Lock-free cache publication (parallel mode). Each slot carries a
// sequence word: a writer moves it odd with a CAS, stores the fields,
// and moves it back even; a reader snapshots the word, copies the
// fields, and accepts the copy only if the word is unchanged and even.
// A writer that loses the CAS simply skips the store — the result is
// already canonical in the unique table, so a dropped cache entry costs
// a recomputation, never correctness. Exact key comparison on the copy
// means a torn or stale slot can only miss, never return a wrong
// result — the property a verification kernel cannot compromise on.
//
// The fields are stored with address-based atomics over the plain
// struct fields, so sequential mode keeps its direct loads and stores
// of the very same slots: the two access modes never overlap (mode
// switches happen at quiescent points, and within parallel mode every
// access is atomic or stop-the-world).

func refLoad(p *Ref) Ref     { return Ref(atomic.LoadInt32((*int32)(p))) }
func refStore(p *Ref, v Ref) { atomic.StoreInt32((*int32)(p), int32(v)) }

func (e *iteEntry) loadPar() (iteEntry, bool) {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 {
		return iteEntry{}, false
	}
	out := iteEntry{
		f: refLoad(&e.f), g: refLoad(&e.g), h: refLoad(&e.h), res: refLoad(&e.res),
	}
	if atomic.LoadUint32(&e.seq) != s {
		return iteEntry{}, false
	}
	return out, true
}

func (e *iteEntry) storePar(v iteEntry) bool {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 || !atomic.CompareAndSwapUint32(&e.seq, s, s+1) {
		return false
	}
	refStore(&e.f, v.f)
	refStore(&e.g, v.g)
	refStore(&e.h, v.h)
	refStore(&e.res, v.res)
	atomic.StoreUint32(&e.seq, s+2)
	return true
}

func (e *binopEntry) loadPar() (binopEntry, bool) {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 {
		return binopEntry{}, false
	}
	out := binopEntry{
		op: atomic.LoadInt32(&e.op),
		f:  refLoad(&e.f), g: refLoad(&e.g), res: refLoad(&e.res),
	}
	if atomic.LoadUint32(&e.seq) != s {
		return binopEntry{}, false
	}
	return out, true
}

func (e *binopEntry) storePar(v binopEntry) bool {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 || !atomic.CompareAndSwapUint32(&e.seq, s, s+1) {
		return false
	}
	atomic.StoreInt32(&e.op, v.op)
	refStore(&e.f, v.f)
	refStore(&e.g, v.g)
	refStore(&e.res, v.res)
	atomic.StoreUint32(&e.seq, s+2)
	return true
}

func (e *quantEntry) loadPar() (quantEntry, bool) {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 {
		return quantEntry{}, false
	}
	out := quantEntry{
		f: refLoad(&e.f), cube: refLoad(&e.cube), res: refLoad(&e.res),
	}
	if atomic.LoadUint32(&e.seq) != s {
		return quantEntry{}, false
	}
	return out, true
}

func (e *quantEntry) storePar(v quantEntry) bool {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 || !atomic.CompareAndSwapUint32(&e.seq, s, s+1) {
		return false
	}
	refStore(&e.f, v.f)
	refStore(&e.cube, v.cube)
	refStore(&e.res, v.res)
	atomic.StoreUint32(&e.seq, s+2)
	return true
}

func (e *aexEntry) loadPar() (aexEntry, bool) {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 {
		return aexEntry{}, false
	}
	out := aexEntry{
		f: refLoad(&e.f), g: refLoad(&e.g), cube: refLoad(&e.cube), res: refLoad(&e.res),
	}
	if atomic.LoadUint32(&e.seq) != s {
		return aexEntry{}, false
	}
	return out, true
}

func (e *aexEntry) storePar(v aexEntry) bool {
	s := atomic.LoadUint32(&e.seq)
	if s&1 != 0 || !atomic.CompareAndSwapUint32(&e.seq, s, s+1) {
		return false
	}
	refStore(&e.f, v.f)
	refStore(&e.g, v.g)
	refStore(&e.cube, v.cube)
	refStore(&e.res, v.res)
	atomic.StoreUint32(&e.seq, s+2)
	return true
}

// sweepCaches drops every cache entry that references a node reclaimed
// by the current collection, keeping the rest. It must run while the GC
// mark bitmap is valid.
func (m *Manager) sweepCaches() {
	kept := 0
	for i := range m.ite {
		e := &m.ite[i]
		if e.f == 0 {
			continue
		}
		if m.marked(regular(e.f)) && m.marked(regular(e.g)) &&
			m.marked(regular(e.h)) && m.marked(regular(e.res)) {
			kept++
			continue
		}
		*e = iteEntry{}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f == 0 {
			continue
		}
		if m.marked(regular(e.f)) && m.marked(regular(e.g)) && m.marked(regular(e.res)) {
			kept++
			continue
		}
		*e = binopEntry{}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f == 0 {
			continue
		}
		if m.marked(regular(e.f)) && m.marked(regular(e.cube)) && m.marked(regular(e.res)) {
			kept++
			continue
		}
		*e = quantEntry{}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f == 0 {
			continue
		}
		if m.marked(regular(e.f)) && m.marked(regular(e.g)) &&
			m.marked(regular(e.cube)) && m.marked(regular(e.res)) {
			kept++
			continue
		}
		*e = aexEntry{}
	}
	m.statCacheKept = kept
}
