package bdd

import (
	"runtime"
	"sync"
)

// SetWorkers selects the manager's execution mode. n <= 1 (the default)
// is the classic single-threaded kernel: no locks, plain cache slots,
// bit-for-bit the sequential fast paths. n >= 2 makes the manager safe
// for concurrent operations from any number of goroutines and starts a
// pool of n-1 worker goroutines that large And/Exists/AndExists
// recursions fork subproblems onto; n = 0 means GOMAXPROCS.
//
// SetWorkers must be called from a single goroutine while no operations
// are in flight (typically right after New, or between verification
// phases). Results are unaffected by the mode: BDDs are canonical, so a
// parallel run returns the same Refs the sequential kernel would.
//
// The parallel kernel layers four mechanisms on the sequential one:
// each worker context carries a private L1 op cache drained into the
// shared seqlock L2 at fork-join boundaries (l1cache.go), GC marks
// concurrently on the pool and stops the world only for a short
// sweep+rebuild window (gc.go), a grain controller retunes the fork
// depth from steal-ratio feedback (pool.go), and reorder sessions sift
// non-interacting variable zones concurrently (reorder_zones.go).
//
// GC and reordering keep their safe-point contract in parallel mode:
// they still run only at explicit MaybeGC/MaybeReorder/GC calls, and
// those calls must come from one orchestrating goroutine while no other
// goroutine holds unprotected Refs — inside a ParallelDo section both
// are deferred automatically.
func (m *Manager) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == m.workers {
		return
	}
	if m.pool != nil {
		m.pool.shutdown()
		m.pool = nil
	}
	m.workers = n
	if n > 1 {
		m.par = true
		m.pool = newPool(m, n)
	} else {
		m.par = false
	}
}

// Workers returns the configured worker count (1 = sequential mode).
func (m *Manager) Workers() int { return m.workers }

// ParallelDo runs the given tasks, concurrently when the manager is in
// parallel mode (bounded by the worker count) and sequentially
// otherwise. While any section is open, MaybeGC and MaybeReorder are
// no-ops: sibling tasks hold intermediate Refs that no collection may
// reclaim, so the garbage-collection safe-point contract is preserved
// without every task protecting its locals.
//
// Tasks must confine themselves to manager operations and their own
// data; they must not call GC, StartReorder or SetWorkers.
func (m *Manager) ParallelDo(tasks ...func()) {
	if !m.par || len(tasks) <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	m.sections.Add(1)
	defer m.sections.Add(-1)
	sem := make(chan struct{}, m.workers)
	var wg sync.WaitGroup
	// A task that panics (notably CheckInterrupt's ErrInterrupted when a
	// job is cancelled) must not kill its goroutine silently or crash the
	// process: the first panic value is captured and re-raised on the
	// calling goroutine after every sibling finishes, preserving the
	// section invariant that all tasks have quiesced before return.
	var (
		panicMu  sync.Mutex
		panicVal any
	)
	for _, t := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(fn func()) {
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
				<-sem
				wg.Done()
			}()
			fn()
		}(t)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
