package bdd

// Don't-care based minimization operators (paper §1, item 3). Both take
// a care set c and return a function that agrees with f on c but may be
// anything outside it, chosen to make the BDD smaller.
//
// Constrain is the generalized cofactor of Coudert and Madre; it has the
// useful algebraic property f·c = constrain(f,c)·c and distributes over
// Boolean connectives, but can introduce variables not in f's support.
// Restrict is the "safe" variant that never grows the support of f.
//
// Both recursions commute with output complement — cofactoring ¬f along
// the care set complements every leaf of the recursion — so complement
// marks on f are normalized away at entry and the memo tables key on
// regular nodes only. The recursions memoize in per-call maps rather
// than the shared op caches and never fork.

type pairKey struct{ a, b Ref }

// Constrain returns the generalized cofactor f ↓ c. c must not be False.
func (m *Manager) Constrain(f, c Ref) Ref {
	m.check(f)
	m.check(c)
	if c == False {
		panic("bdd: Constrain with empty care set")
	}
	kc := m.begin()
	memo := make(map[pairKey]Ref)
	r := m.constrainRec(kc, f, c, memo)
	m.end(kc)
	return r
}

func (m *Manager) constrainRec(kc *kctx, f, c Ref, memo map[pairKey]Ref) Ref {
	if c == True || m.IsTerminal(f) {
		return f
	}
	if f == c {
		return True
	}
	if f == neg(c) {
		return False
	}
	if isComp(f) {
		return neg(m.constrainRec(kc, neg(f), c, memo))
	}
	key := pairKey{f, c}
	if r, ok := memo[key]; ok {
		return r
	}
	lf, f0, f1 := m.top(f)
	lc, c0, c1 := m.top(c)
	top := lf
	if lc < top {
		top = lc
	}
	if lf != top {
		f0, f1 = f, f
	}
	if lc != top {
		c0, c1 = c, c
	}
	var r Ref
	switch {
	case c1 == False:
		r = m.constrainRec(kc, f0, c0, memo)
	case c0 == False:
		r = m.constrainRec(kc, f1, c1, memo)
	default:
		low := m.constrainRec(kc, f0, c0, memo)
		high := m.constrainRec(kc, f1, c1, memo)
		r = m.mk(kc, top, low, high)
	}
	memo[key] = r
	return r
}

// Restrict returns the Coudert–Madre restrict of f with care set c: a
// function agreeing with f on c whose support is a subset of f's.
// c must not be False.
func (m *Manager) Restrict(f, c Ref) Ref {
	m.check(f)
	m.check(c)
	if c == False {
		panic("bdd: Restrict with empty care set")
	}
	kc := m.begin()
	memo := make(map[pairKey]Ref)
	r := m.restrictRec(kc, f, c, memo)
	// Restrict is a heuristic: on rare inputs the recursion grows the
	// graph. f itself trivially agrees with f on the care set, so fall
	// back to it whenever minimization did not pay off. Count through
	// countRec directly — the public NodeCount would re-enter the
	// operation lock.
	if r != f {
		seen := make(map[Ref]bool)
		m.countRec(r, seen)
		nr := len(seen)
		seen = make(map[Ref]bool)
		m.countRec(f, seen)
		if nr > len(seen) {
			r = f
		}
	}
	m.end(kc)
	return r
}

func (m *Manager) restrictRec(kc *kctx, f, c Ref, memo map[pairKey]Ref) Ref {
	if c == True || m.IsTerminal(f) {
		return f
	}
	if f == c {
		return True
	}
	if f == neg(c) {
		return False
	}
	if isComp(f) {
		return neg(m.restrictRec(kc, neg(f), c, memo))
	}
	key := pairKey{f, c}
	if r, ok := memo[key]; ok {
		return r
	}
	nf := *m.node(f)
	lf := m.var2level[nf.varID]
	lc, c0, c1 := m.top(c)
	var r Ref
	if lc < lf {
		// The care set constrains a variable f does not depend on:
		// drop it by existential quantification to stay in f's support.
		cc := m.or(kc, c0, c1, 0)
		r = m.restrictRec(kc, f, cc, memo)
	} else if lc == lf {
		switch {
		case c1 == False:
			r = m.restrictRec(kc, nf.low, c0, memo)
		case c0 == False:
			r = m.restrictRec(kc, nf.high, c1, memo)
		default:
			low := m.restrictRec(kc, nf.low, c0, memo)
			high := m.restrictRec(kc, nf.high, c1, memo)
			r = m.mk(kc, lf, low, high)
		}
	} else {
		low := m.restrictRec(kc, nf.low, c, memo)
		high := m.restrictRec(kc, nf.high, c, memo)
		r = m.mk(kc, lf, low, high)
	}
	memo[key] = r
	return r
}

// Squeeze returns some function between lower and upper (pointwise),
// chosen heuristically to have a small BDD. It requires lower ≤ upper.
// This implements interval minimization used when bisimulation don't
// cares provide both a lower and an upper bound.
func (m *Manager) Squeeze(lower, upper Ref) Ref {
	m.check(lower)
	m.check(upper)
	if !m.Leq(lower, upper) {
		panic("bdd: Squeeze requires lower ≤ upper")
	}
	// care set = lower ∨ ¬upper; restrict lower to it.
	care := m.Or(lower, m.Not(upper))
	return m.Restrict(lower, care)
}
