package bdd

import (
	"fmt"
	"io"
	"sort"
)

// WriteDot emits a Graphviz rendering of the BDDs rooted at the given
// functions, with variables labelled by the names slice (indexed by
// variable ID; missing names fall back to "v<i>"). It is a debugging
// aid, mirroring the original tool's BDD dump facility.
func (m *Manager) WriteDot(w io.Writer, names []string, roots map[string]Ref) error {
	nodes := make(map[Ref]bool)
	var keys []string
	for k, f := range roots {
		m.check(f)
		m.countRec(f, nodes)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintln(w, "digraph bdd {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, `  node0 [label="0", shape=box];`)
	fmt.Fprintln(w, `  node1 [label="1", shape=box];`)
	ordered := make([]Ref, 0, len(nodes))
	for f := range nodes {
		if !m.IsTerminal(f) {
			ordered = append(ordered, f)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, f := range ordered {
		n := m.nodes[f]
		v := int(m.level2var[n.level])
		name := fmt.Sprintf("v%d", v)
		if v < len(names) && names[v] != "" {
			name = names[v]
		}
		fmt.Fprintf(w, "  node%d [label=%q];\n", f, name)
		fmt.Fprintf(w, "  node%d -> node%d [style=dashed];\n", f, n.low)
		fmt.Fprintf(w, "  node%d -> node%d;\n", f, n.high)
	}
	for _, k := range keys {
		fmt.Fprintf(w, "  root_%s [label=%q, shape=plaintext];\n", sanitize(k), k)
		fmt.Fprintf(w, "  root_%s -> node%d;\n", sanitize(k), roots[k])
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
