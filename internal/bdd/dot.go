package bdd

import (
	"fmt"
	"io"
	"sort"
)

// WriteDot emits a Graphviz rendering of the BDDs rooted at the given
// functions, with variables labelled by the names slice (indexed by
// variable ID; missing names fall back to "v<i>"). It is a debugging
// aid, mirroring the original tool's BDD dump facility. There is a
// single terminal box ("0"); complement edges are drawn with a dot
// arrowhead, so the constant true appears as a complemented edge into
// the 0-terminal. Low (else) edges are dashed and, by the canonical-form
// invariant, never complemented.
func (m *Manager) WriteDot(w io.Writer, names []string, roots map[string]Ref) error {
	m.rlock()
	defer m.runlock()
	nodes := make(map[Ref]bool)
	var keys []string
	for k, f := range roots {
		m.check(f)
		m.countRec(f, nodes)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintln(w, "digraph bdd {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, `  node0 [label="0", shape=box];`)
	edge := func(from Ref, to Ref, dashed bool) {
		attrs := ""
		switch {
		case dashed && isComp(to):
			attrs = " [style=dashed, arrowhead=odot]"
		case dashed:
			attrs = " [style=dashed]"
		case isComp(to):
			attrs = " [arrowhead=odot]"
		}
		fmt.Fprintf(w, "  node%d -> node%d%s;\n", from, regular(to), attrs)
	}
	ordered := make([]Ref, 0, len(nodes))
	for f := range nodes {
		if !m.IsTerminal(f) {
			ordered = append(ordered, f)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, f := range ordered {
		n := *m.node(f)
		v := int(n.varID)
		name := fmt.Sprintf("v%d", v)
		if v < len(names) && names[v] != "" {
			name = names[v]
		}
		fmt.Fprintf(w, "  node%d [label=%q];\n", f, name)
		edge(f, n.low, true)
		edge(f, n.high, false)
	}
	for _, k := range keys {
		f := roots[k]
		fmt.Fprintf(w, "  root_%s [label=%q, shape=plaintext];\n", sanitize(k), k)
		attrs := ""
		if isComp(f) {
			attrs = " [arrowhead=odot]"
		}
		fmt.Fprintf(w, "  root_%s -> node%d%s;\n", sanitize(k), regular(f), attrs)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
