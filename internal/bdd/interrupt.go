package bdd

// Cooperative interruption. A long-running verification (a fixpoint, a
// hull iteration) owned by one Manager can be cancelled from another
// goroutine — a job deadline, a client disconnect, a daemon shutdown —
// by calling Interrupt. The kernel itself never polls the flag: the
// fixpoint drivers (reach, sys, emptiness, ctl) call CheckInterrupt at
// their existing reorder/GC safe points, where no unprotected
// intermediate Refs are at risk, and CheckInterrupt unwinds by
// panicking with ErrInterrupted.
//
// The panic is the propagation mechanism, not an error: verdict-carrying
// error returns would have to thread through every fixpoint layer, while
// an interrupted manager is abandoned wholesale (each job owns its
// Manager, so leaked refcounts or garbage on the way out are reclaimed
// with the manager itself). Callers that interrupt must therefore wrap
// the top of the computation with recover and match ErrInterrupted —
// see RecoverInterrupt. ParallelDo re-raises a task panic on the calling
// goroutine, so the contract holds under the concurrent kernel too.
//
// The check is one atomic load; an uninterrupted run pays nothing
// measurable.

// interruptError is the sentinel panic value raised by CheckInterrupt.
type interruptError struct{}

func (interruptError) Error() string { return "bdd: operation interrupted" }

// ErrInterrupted is the value CheckInterrupt panics with after
// Interrupt. Compare with == in a recover handler (RecoverInterrupt
// does this for you).
var ErrInterrupted error = interruptError{}

// Interrupt requests cancellation of the computation running on this
// manager. Safe to call from any goroutine at any time; the running
// computation unwinds at its next safe point. Idempotent.
func (m *Manager) Interrupt() { m.interrupted.Store(true) }

// ResetInterrupt clears a pending interrupt so the manager can be used
// again. Only meaningful once the interrupted computation has unwound.
func (m *Manager) ResetInterrupt() { m.interrupted.Store(false) }

// Interrupted reports whether an interrupt has been requested and not
// yet cleared.
func (m *Manager) Interrupted() bool { return m.interrupted.Load() }

// CheckInterrupt panics with ErrInterrupted when an interrupt is
// pending. Fixpoint drivers call it at their safe points.
func (m *Manager) CheckInterrupt() {
	if m.interrupted.Load() {
		panic(ErrInterrupted)
	}
}

// RecoverInterrupt converts an ErrInterrupted panic into a normal
// return, for use at the boundary that owns the interrupted manager:
//
//	defer bdd.RecoverInterrupt(&err)
//
// Any other panic value is re-raised unchanged. When err already holds
// a value it is left alone (the interrupt lost the race with a real
// failure).
func RecoverInterrupt(err *error) {
	if r := recover(); r != nil {
		if r == ErrInterrupted {
			if *err == nil {
				*err = ErrInterrupted
			}
			return
		}
		panic(r)
	}
}
