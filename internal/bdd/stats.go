package bdd

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hsis/internal/telemetry"
)

// Statistics reports operation and cache-effectiveness counters, the
// numbers the original tool's BDD package printed for tuning.
type Statistics struct {
	ApplyCalls     uint64 // binary-operator recursions with a cache probe
	ApplyHits      uint64
	ITECalls       uint64
	ITEHits        uint64
	QuantCalls     uint64 // Exists/ForAll recursions (cube-keyed cache)
	QuantHits      uint64
	AndExistsCalls uint64 // AndExists recursions (cube-keyed cache)
	AndExistsHits  uint64
	GCs            int
	LiveNodes      int
	AllocatedNodes int
	PeakNodes      int
	Variables      int

	// Complement-edge sharing: mk calls whose result was re-rooted onto
	// the complement of an existing (or newly shared) node, i.e. cases
	// where f and ¬f ended up sharing storage.
	ComplementShared uint64

	// Persistent permutation cache (Permuter): node visits and
	// cross-call memo hits. The isomorphism-exploiting image pipeline
	// instantiates replica cluster plans through Permuters, so a high
	// hit rate here means replica plans were near-free.
	PermCalls uint64
	PermHits  uint64

	// Adaptive cache layer: current per-cache sizes (entries, after any
	// adaptive growth), how many times a cache doubled, and how many
	// entries survived the most recent GC sweep.
	ITECacheEntries       int
	ApplyCacheEntries     int
	QuantCacheEntries     int
	AndExistsCacheEntries int
	CacheGrowths          int
	CacheEntriesKept      int

	// Parallel kernel: the configured worker count, subproblems forked
	// onto the pool, futures executed off the forking call path, and
	// contention events (shard-lock waits plus lost cache publications).
	Workers    int
	Forks      uint64
	Steals     uint64
	Contention uint64

	// Two-level op cache: probes answered by a context-private L1,
	// L1→L2 promotion drains (each fork-join or operation boundary), and
	// entries that actually landed in the shared L2 during those drains.
	L1Hits       uint64
	L1Merges     uint64
	L1Promotions uint64

	// Grain controller: the current adaptive fork-depth cutoff and how
	// many times the steal-ratio feedback loop has moved it.
	ForkDepth    int
	GrainAdjusts uint64

	// Zoned sifting: interaction-closed zones opened across reorder
	// sessions and blocks sifted inside them (zones sift concurrently
	// when the manager has workers).
	SiftZones     uint64
	SiftParBlocks uint64

	// Dynamic variable reordering: number of sifting runs, total
	// adjacent-level swaps, cumulative time spent reordering, the node
	// counts around the most recent run, and the peak live node count
	// (the quantity reordering exists to bound). The acceleration
	// counters break the swap total down: InterSkips counts swaps that
	// degenerated to pure relabels because the two variables never
	// co-occur in a live support, LBAborts counts sift directions cut
	// short by the lower-bound estimate, and SymPairs counts variable
	// pairs detected positively symmetric and glued into atomic blocks.
	Reorders           int
	ReorderSwaps       uint64
	ReorderInterSkips  uint64
	ReorderLBAborts    uint64
	ReorderSymPairs    int
	ReorderTime        time.Duration
	ReorderNodesBefore int
	ReorderNodesAfter  int
	PeakLive           int

	// Latency histograms, present when the manager's telemetry scope
	// carries a MetricSet (armed by `hsis -stats` and by every daemon
	// job): fixpoint iteration, image, GC pause and reorder-session
	// durations, rendered by WriteTable as count/p50/p99 rows. Empty
	// snapshots (Count == 0) are skipped when rendering.
	Latency []telemetry.HistogramSnapshot
}

func ratio(hits, calls uint64) float64 {
	if calls == 0 {
		return 0
	}
	return float64(hits) / float64(calls)
}

// String renders a two-line summary, plus a reordering line when any
// reorder has run.
func (s Statistics) String() string {
	out := fmt.Sprintf(
		"bdd: %d vars, %d live / %d alloc nodes (peak %d, live-peak %d), %d GCs, %d comp-shared; cache hits: apply %.0f%%, ite %.0f%%, quant %.0f%%, andexists %.0f%%\n"+
			"bdd: cache entries: apply %d, ite %d, quant %d, andexists %d (%d growths, %d kept across last GC)",
		s.Variables, s.LiveNodes, s.AllocatedNodes, s.PeakNodes, s.PeakLive, s.GCs, s.ComplementShared,
		100*ratio(s.ApplyHits, s.ApplyCalls),
		100*ratio(s.ITEHits, s.ITECalls),
		100*ratio(s.QuantHits, s.QuantCalls),
		100*ratio(s.AndExistsHits, s.AndExistsCalls),
		s.ApplyCacheEntries, s.ITECacheEntries, s.QuantCacheEntries, s.AndExistsCacheEntries,
		s.CacheGrowths, s.CacheEntriesKept)
	if s.Reorders > 0 {
		out += fmt.Sprintf(
			"\nbdd: reorders: %d (%d swaps in %v; last %d -> %d nodes; %d fast-swaps, %d lb-aborts, %d sym-pairs)",
			s.Reorders, s.ReorderSwaps, s.ReorderTime.Round(time.Millisecond),
			s.ReorderNodesBefore, s.ReorderNodesAfter,
			s.ReorderInterSkips, s.ReorderLBAborts, s.ReorderSymPairs)
	}
	if s.Workers > 1 {
		out += fmt.Sprintf(
			"\nbdd: parallel: %d workers, %d forks, %d steals, %d contention events; l1 %d hits / %d merges / %d promoted; grain depth %d (%d adjusts)",
			s.Workers, s.Forks, s.Steals, s.Contention,
			s.L1Hits, s.L1Merges, s.L1Promotions, s.ForkDepth, s.GrainAdjusts)
	}
	return out
}

// QuantHitRate returns the combined hit rate of the two cube-keyed
// quantifier caches (Exists/ForAll and AndExists), the number the image
// pipeline benchmarks report.
func (s Statistics) QuantHitRate() float64 {
	return ratio(s.QuantHits+s.AndExistsHits, s.QuantCalls+s.AndExistsCalls)
}

// PermHitRate returns the hit rate of the persistent permutation cache
// (Permuter), the number the iso image pipeline benchmarks report.
func (s Statistics) PermHitRate() float64 {
	return ratio(s.PermHits, s.PermCalls)
}

// WriteTable renders the statistics as an aligned name/value table —
// the one formatter behind the shell's print_stats, the CLIs' -stats
// output and the telemetry summary's statistics block.
func (s Statistics) WriteTable(w io.Writer) {
	row := func(name string, format string, args ...any) {
		fmt.Fprintf(w, "  %-22s %s\n", name, fmt.Sprintf(format, args...))
	}
	row("variables", "%d", s.Variables)
	row("nodes live/alloc", "%d / %d", s.LiveNodes, s.AllocatedNodes)
	row("peak alloc / live", "%d / %d", s.PeakNodes, s.PeakLive)
	row("gcs", "%d", s.GCs)
	row("complement-shared", "%d", s.ComplementShared)
	row("apply cache", "%.1f%% of %d calls (%d entries)",
		100*ratio(s.ApplyHits, s.ApplyCalls), s.ApplyCalls, s.ApplyCacheEntries)
	row("ite cache", "%.1f%% of %d calls (%d entries)",
		100*ratio(s.ITEHits, s.ITECalls), s.ITECalls, s.ITECacheEntries)
	row("quant cache", "%.1f%% of %d calls (%d entries)",
		100*ratio(s.QuantHits, s.QuantCalls), s.QuantCalls, s.QuantCacheEntries)
	row("andexists cache", "%.1f%% of %d calls (%d entries)",
		100*ratio(s.AndExistsHits, s.AndExistsCalls), s.AndExistsCalls, s.AndExistsCacheEntries)
	row("cache growths/kept", "%d / %d", s.CacheGrowths, s.CacheEntriesKept)
	if s.PermCalls > 0 {
		row("perm cache", "%.1f%% of %d calls",
			100*ratio(s.PermHits, s.PermCalls), s.PermCalls)
	}
	if s.Workers > 1 {
		row("workers", "%d", s.Workers)
		row("forks/steals", "%d / %d", s.Forks, s.Steals)
		row("contention", "%d", s.Contention)
		row("l1 cache", "%d hits, %d merges, %d promoted", s.L1Hits, s.L1Merges, s.L1Promotions)
		row("fork grain", "depth %d, %d adjusts", s.ForkDepth, s.GrainAdjusts)
	}
	if s.Reorders > 0 {
		row("reorders", "%d (%d swaps in %v; last %d -> %d nodes)",
			s.Reorders, s.ReorderSwaps, s.ReorderTime.Round(time.Millisecond),
			s.ReorderNodesBefore, s.ReorderNodesAfter)
		row("reorder accel", "%d interaction-skips, %d lb-aborts, %d symmetric-pairs",
			s.ReorderInterSkips, s.ReorderLBAborts, s.ReorderSymPairs)
		if s.SiftZones > 0 {
			row("sift zones", "%d zones, %d blocks sifted zoned", s.SiftZones, s.SiftParBlocks)
		}
	}
	for _, h := range s.Latency {
		if h.Count == 0 {
			continue
		}
		row(h.Name+" latency", "%d obs, p50 %v, p99 %v",
			h.Count,
			time.Duration(h.P50US())*time.Microsecond,
			time.Duration(h.P99US())*time.Microsecond)
	}
}

// Table returns WriteTable's rendering as a string.
func (s Statistics) Table() string {
	var sb strings.Builder
	s.WriteTable(&sb)
	return sb.String()
}

// BenchMetrics returns the statistics the benchmark harness records
// alongside ns/op, keyed by the metric names benchjson emits into
// BENCH_*.json (peak-live and hit-rate trajectories).
func (s Statistics) BenchMetrics() map[string]float64 {
	return map[string]float64{
		"peak-live-nodes": float64(s.PeakLive),
		"peak-bdd-nodes":  float64(s.PeakNodes),
		"cache-hit-%":     100 * s.QuantHitRate(),
	}
}

// TelemetryFields renders the headline statistics as telemetry fields,
// for the "bdd.stats" event the CLIs emit when a traced run ends.
func (s Statistics) TelemetryFields() []telemetry.Field {
	return []telemetry.Field{
		telemetry.Int("vars", s.Variables),
		telemetry.Int("live", s.LiveNodes),
		telemetry.Int("peak_live", s.PeakLive),
		telemetry.Int("peak_alloc", s.PeakNodes),
		telemetry.Int("gcs", s.GCs),
		telemetry.Int("reorders", s.Reorders),
		telemetry.F64("quant_hit_rate", s.QuantHitRate()),
		telemetry.F64("apply_hit_rate", ratio(s.ApplyHits, s.ApplyCalls)),
		telemetry.F64("ite_hit_rate", ratio(s.ITEHits, s.ITECalls)),
		telemetry.F64("perm_hit_rate", s.PermHitRate()),
		telemetry.Int("workers", s.Workers),
		telemetry.I64("forks", int64(s.Forks)),
		telemetry.I64("steals", int64(s.Steals)),
		telemetry.I64("contention", int64(s.Contention)),
		telemetry.I64("l1_hits", int64(s.L1Hits)),
		telemetry.I64("l1_merges", int64(s.L1Merges)),
		telemetry.I64("l1_promotions", int64(s.L1Promotions)),
		telemetry.Int("fork_depth", s.ForkDepth),
		telemetry.I64("grain_adjusts", int64(s.GrainAdjusts)),
		telemetry.I64("sift_zones", int64(s.SiftZones)),
		telemetry.I64("sift_par_blocks", int64(s.SiftParBlocks)),
	}
}

// Stats snapshots the manager's counters. While a reorder session is
// open the node arena, the unique table and the cache arrays are all
// mid-rewrite, so Stats returns the coherent snapshot taken at the
// session boundary instead of reading half-swapped state — telemetry
// samples and shell commands never observe a partially reordered level.
// In parallel mode every counter read is atomic, so Stats is safe to
// call concurrently with operations (counts from operations still in
// flight appear when they complete).
func (m *Manager) Stats() Statistics {
	var s Statistics
	if m.inSession.Load() {
		s = m.statsSnap
	} else {
		s = m.statsNow()
	}
	// Latency snapshots come from the scope, not the frozen snapshot:
	// the histograms are lock-free and coherent at any time.
	if ms := m.Telemetry().Metrics(); ms != nil {
		s.Latency = ms.Snapshots()
	}
	return s
}

// statsNow collects the counters directly; callers must ensure no
// reorder session is rewriting the arena.
func (m *Manager) statsNow() Statistics {
	if !m.par {
		// Fold the resident sequential context into the totals so the
		// snapshot reflects every completed operation exactly.
		m.seqCtx.flush(m)
	}
	return Statistics{
		ApplyCalls:     m.statApplyCalls.Load(),
		ApplyHits:      m.statApplyHits.Load(),
		ITECalls:       m.statITECalls.Load(),
		ITEHits:        m.statITEHits.Load(),
		QuantCalls:     m.statQuantCalls.Load(),
		QuantHits:      m.statQuantHits.Load(),
		AndExistsCalls: m.statAexCalls.Load(),
		AndExistsHits:  m.statAexHits.Load(),
		GCs:            m.GCCount,
		LiveNodes:      m.Size(),
		AllocatedNodes: int(m.nodeCap.Load()),
		PeakNodes:      int(m.peakNodes.Load()),
		Variables:      m.numVars,

		ComplementShared:      m.statCompShared.Load(),
		PermCalls:             m.statPermCalls.Load(),
		PermHits:              m.statPermHits.Load(),
		ITECacheEntries:       len(m.ite),
		ApplyCacheEntries:     len(m.binop),
		QuantCacheEntries:     len(m.quant),
		AndExistsCacheEntries: len(m.aex),
		CacheGrowths:          int(m.statCacheGrowths.Load()),
		CacheEntriesKept:      m.statCacheKept,

		Workers:    m.workers,
		Forks:      m.statForks.Load(),
		Steals:     m.statSteals.Load(),
		Contention: m.statContention.Load(),

		L1Hits:       m.statL1Hits.Load(),
		L1Merges:     m.statL1Merges.Load(),
		L1Promotions: m.statL1Promos.Load(),
		ForkDepth:    m.forkDepthNow(),
		GrainAdjusts: m.statGrainAdjusts.Load(),

		SiftZones:     m.statSiftZones.Load(),
		SiftParBlocks: m.statSiftParBlocks.Load(),

		Reorders:           m.statReorders,
		ReorderSwaps:       m.statReorderSwaps,
		ReorderInterSkips:  m.statInterSkips,
		ReorderLBAborts:    m.statLBAborts,
		ReorderSymPairs:    m.statSymPairs,
		ReorderTime:        m.statReorderTime,
		ReorderNodesBefore: m.reorderBefore,
		ReorderNodesAfter:  m.reorderAfter,
		PeakLive:           int(m.peakLive.Load()),
	}
}
