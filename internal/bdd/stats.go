package bdd

import "fmt"

// Statistics reports operation and cache-effectiveness counters, the
// numbers the original tool's BDD package printed for tuning.
type Statistics struct {
	ApplyCalls     uint64 // binary-operator recursions with a cache probe
	ApplyHits      uint64
	ITECalls       uint64
	ITEHits        uint64
	QuantCalls     uint64 // Exists/ForAll recursions (cube-keyed cache)
	QuantHits      uint64
	AndExistsCalls uint64 // AndExists recursions (cube-keyed cache)
	AndExistsHits  uint64
	GCs            int
	LiveNodes      int
	AllocatedNodes int
	PeakNodes      int
	Variables      int
}

func ratio(hits, calls uint64) float64 {
	if calls == 0 {
		return 0
	}
	return float64(hits) / float64(calls)
}

// String renders a one-line summary.
func (s Statistics) String() string {
	return fmt.Sprintf(
		"bdd: %d vars, %d live / %d alloc nodes (peak %d), %d GCs; cache hits: apply %.0f%%, ite %.0f%%, quant %.0f%%, andexists %.0f%%",
		s.Variables, s.LiveNodes, s.AllocatedNodes, s.PeakNodes, s.GCs,
		100*ratio(s.ApplyHits, s.ApplyCalls),
		100*ratio(s.ITEHits, s.ITECalls),
		100*ratio(s.QuantHits, s.QuantCalls),
		100*ratio(s.AndExistsHits, s.AndExistsCalls))
}

// QuantHitRate returns the combined hit rate of the two cube-keyed
// quantifier caches (Exists/ForAll and AndExists), the number the image
// pipeline benchmarks report.
func (s Statistics) QuantHitRate() float64 {
	return ratio(s.QuantHits+s.AndExistsHits, s.QuantCalls+s.AndExistsCalls)
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Statistics {
	return Statistics{
		ApplyCalls:     m.statApplyCalls,
		ApplyHits:      m.statApplyHits,
		ITECalls:       m.statITECalls,
		ITEHits:        m.statITEHits,
		QuantCalls:     m.statQuantCalls,
		QuantHits:      m.statQuantHits,
		AndExistsCalls: m.statAexCalls,
		AndExistsHits:  m.statAexHits,
		GCs:            m.GCCount,
		LiveNodes:      m.Size(),
		AllocatedNodes: len(m.nodes),
		PeakNodes:      m.peakNodes,
		Variables:      m.numVars,
	}
}
