package bdd

import "fmt"

// Statistics reports operation and cache-effectiveness counters, the
// numbers the original tool's BDD package printed for tuning.
type Statistics struct {
	ApplyCalls     uint64 // binary-operator recursions with a cache probe
	ApplyHits      uint64
	ITECalls       uint64
	ITEHits        uint64
	QuantCalls     uint64
	QuantHits      uint64
	GCs            int
	LiveNodes      int
	AllocatedNodes int
	PeakNodes      int
	Variables      int
}

func ratio(hits, calls uint64) float64 {
	if calls == 0 {
		return 0
	}
	return float64(hits) / float64(calls)
}

// String renders a one-line summary.
func (s Statistics) String() string {
	return fmt.Sprintf(
		"bdd: %d vars, %d live / %d alloc nodes (peak %d), %d GCs; cache hits: apply %.0f%%, ite %.0f%%, quant %.0f%%",
		s.Variables, s.LiveNodes, s.AllocatedNodes, s.PeakNodes, s.GCs,
		100*ratio(s.ApplyHits, s.ApplyCalls),
		100*ratio(s.ITEHits, s.ITECalls),
		100*ratio(s.QuantHits, s.QuantCalls))
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Statistics {
	return Statistics{
		ApplyCalls:     m.statApplyCalls,
		ApplyHits:      m.statApplyHits,
		ITECalls:       m.statITECalls,
		ITEHits:        m.statITEHits,
		QuantCalls:     m.statQuantCalls,
		QuantHits:      m.statQuantHits,
		GCs:            m.GCCount,
		LiveNodes:      m.Size(),
		AllocatedNodes: len(m.nodes),
		PeakNodes:      m.peakNodes,
		Variables:      m.numVars,
	}
}
