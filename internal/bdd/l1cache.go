package bdd

// Private L1 operation caches. In parallel mode every kernel context —
// the per-operation contexts drawn in begin and the resident contexts
// the pool workers own — carries a small direct-mapped cache probed
// before the shared seqlock L2. The L1 is single-owner, so a probe is
// two plain loads and a hit costs no atomics at all; under contention
// the seqlock L2 loses published entries to CAS races (a dropped store
// is legal, see cache.go), and before the L1 existed every lost entry
// forced each worker to recompute hot subresults the others had already
// finished. The L1 keeps those subresults worker-local.
//
// Results computed by the owner are installed in the L1 and appended to
// a pending buffer instead of being published to the L2 inline; the
// buffer is drained — each entry promoted to the L2 with a bounded
// storePar retry — at fork-join boundaries (a future completing, before
// its done-store) and when the operation ends. Both drain points run
// while some operation holds the stop-the-world read lock, which is
// what makes the L2 writes safe against cache resizes and GC.
//
// Coherence is by epoch, not by sweeping: entries carry the value of
// Manager.cacheEpoch at store time, and every point that sweeps or
// clears the shared caches (GC, reorder close) bumps the epoch, so all
// L1 entries die at once. During a concurrent mark phase an L1 hit may
// surface a ref stored before the mark snapshot; l1probe routes it
// through the resurrection barrier like any table or L2 hit.

const (
	l1Bits = 12
	l1Size = 1 << l1Bits
	l1Mask = l1Size - 1

	// l1PendCap is the default pending-buffer size: how many computed
	// results a context holds privately before promoting them to the L2.
	l1PendCap = 64
)

// L1 op kinds, packed into the high word of the first key half. Values
// start at 1 so an empty entry (k0 == 0) can never match a probe.
const (
	l1And uint64 = iota + 1
	l1Xor
	l1ITE
	l1Quant
	l1Aex
)

// l1Entry is one direct-mapped slot: the packed operand key, the
// result, and the cache epoch the entry was stored under.
type l1Entry struct {
	k0, k1 uint64
	res    Ref
	epoch  uint32
}

// l1Pend is one computed result awaiting promotion to the shared L2.
type l1Pend struct {
	id      cacheID
	op      int32
	f, g, h Ref
	res     Ref
}

// l1key packs an op kind and its (already canonicalized) operands into
// the two key words. Refs are 32-bit, so two words hold kind + three
// operands exactly.
func l1key(kind uint64, f, g, h Ref) (uint64, uint64) {
	return kind<<32 | uint64(uint32(f)), uint64(uint32(g))<<32 | uint64(uint32(h))
}

// l1probe looks the operation up in the context's private cache. hash
// is the same hash3 value the L2 probe uses, so a miss costs nothing
// extra. A hit is routed through the concurrent-GC barrier: the entry
// may predate an in-flight mark snapshot.
func (c *kctx) l1probe(hash, kind uint64, f, g, h Ref) (Ref, bool) {
	if c.l1 == nil {
		return 0, false
	}
	e := &c.l1[hash&l1Mask]
	k0, k1 := l1key(kind, f, g, h)
	if e.epoch != c.l1Epoch || e.k0 != k0 || e.k1 != k1 {
		return 0, false
	}
	c.l1Hits++
	c.m.gcProtect(e.res)
	return e.res, true
}

// l1put installs a result in the private cache without queueing it for
// promotion — used for results that are already in the L2 (probe hits).
func (c *kctx) l1put(hash, kind uint64, f, g, h, res Ref) {
	if c.l1 == nil {
		return
	}
	k0, k1 := l1key(kind, f, g, h)
	c.l1[hash&l1Mask] = l1Entry{k0: k0, k1: k1, res: res, epoch: c.l1Epoch}
}

// l1store installs a freshly computed result and queues it for L2
// promotion, draining the pending buffer when it fills.
func (c *kctx) l1store(hash, kind uint64, id cacheID, op int32, f, g, h, res Ref) {
	c.l1put(hash, kind, f, g, h, res)
	c.l1Pending = append(c.l1Pending, l1Pend{id: id, op: op, f: f, g: g, h: h, res: res})
	if len(c.l1Pending) >= c.l1Cap {
		c.drainL1()
	}
}

// drainL1 promotes every pending result to the shared L2, retrying each
// seqlock publication a few times before giving up (a lost entry is a
// recomputation, never wrongness). It must run while the stop-the-world
// read lock is held by some operation — the call sites are the end of
// an operation epoch and the completion of a future, both of which are
// covered by the owning operation's lock.
func (c *kctx) drainL1() {
	if len(c.l1Pending) == 0 {
		return
	}
	m := c.m
	c.l1Merges++
	for i := range c.l1Pending {
		p := &c.l1Pending[i]
		ok := false
		switch p.id {
		case cacheBinop:
			slot := &m.binop[hash3(uint64(p.op), uint64(p.f), uint64(p.g))&m.binopMask]
			v := binopEntry{op: p.op, f: p.f, g: p.g, res: p.res}
			for try := 0; try < 4 && !ok; try++ {
				ok = slot.storePar(v)
			}
		case cacheITE:
			slot := &m.ite[hash3(uint64(p.f), uint64(p.g), uint64(p.h))&m.iteMask]
			v := iteEntry{f: p.f, g: p.g, h: p.h, res: p.res}
			for try := 0; try < 4 && !ok; try++ {
				ok = slot.storePar(v)
			}
		case cacheQuant:
			slot := &m.quant[hash3(uint64(p.f), uint64(p.g), 0x5eed)&m.quantMask]
			v := quantEntry{f: p.f, cube: p.g, res: p.res}
			for try := 0; try < 4 && !ok; try++ {
				ok = slot.storePar(v)
			}
		case cacheAex:
			slot := &m.aex[hash3(uint64(p.f), uint64(p.g), uint64(p.h))&m.aexMask]
			v := aexEntry{f: p.f, g: p.g, cube: p.h, res: p.res}
			for try := 0; try < 4 && !ok; try++ {
				ok = slot.storePar(v)
			}
		}
		if ok {
			c.l1Promos++
		} else {
			c.contention++
		}
	}
	c.l1Pending = c.l1Pending[:0]
}

// SetL1MergeInterval forces parallel contexts to promote their private
// results to the shared cache every n computed entries instead of the
// default batch. It is a test knob for the merge protocol (tiny n makes
// promotion races constant under -race); n <= 0 restores the default.
// Call only while the manager is quiescent.
func (m *Manager) SetL1MergeInterval(n int) {
	if n <= 0 {
		n = 0
	}
	m.l1Every = int32(n)
}
