package bdd

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New()
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("terminal complement wrong")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("terminal connectives wrong")
	}
	if !m.IsTerminal(True) || !m.IsTerminal(False) {
		t.Fatal("IsTerminal wrong")
	}
	// With complement edges there is a single stored terminal: True is
	// the complement edge onto the False node.
	if m.Size() != 1 {
		t.Fatalf("fresh manager size = %d, want 1", m.Size())
	}
	if True != m.Not(False) || regular(True) != False {
		t.Fatal("True is not the complement edge onto the terminal")
	}
}

func TestVarBasics(t *testing.T) {
	m := New()
	a := m.NewVar()
	b := m.NewVar()
	if a == b {
		t.Fatal("distinct variables share a node")
	}
	if m.VarOf(a) != 0 || m.VarOf(b) != 1 {
		t.Fatal("VarOf mismatch")
	}
	if m.Var(0) != a || m.Var(1) != b {
		t.Fatal("Var projection not canonical")
	}
	if m.NVar(0) != m.Not(a) {
		t.Fatal("NVar disagrees with Not")
	}
	if m.Low(a) != False || m.High(a) != True {
		t.Fatal("projection cofactors wrong")
	}
}

func TestCanonicity(t *testing.T) {
	m := New()
	vs := m.NewVars(4)
	// (a&b)|(c&d) built two different ways must be the same node.
	f1 := m.Or(m.And(vs[0], vs[1]), m.And(vs[2], vs[3]))
	f2 := m.Not(m.And(m.Not(m.And(vs[0], vs[1])), m.Not(m.And(vs[2], vs[3]))))
	if f1 != f2 {
		t.Fatalf("canonicity violated: %d vs %d", f1, f2)
	}
}

func TestDeMorganAndAbsorption(t *testing.T) {
	m := New()
	a, b := m.NewVar(), m.NewVar()
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Error("De Morgan AND failed")
	}
	if m.Not(m.Or(a, b)) != m.And(m.Not(a), m.Not(b)) {
		t.Error("De Morgan OR failed")
	}
	if m.Or(a, m.And(a, b)) != a {
		t.Error("absorption failed")
	}
	if m.Xor(a, b) != m.Or(m.Diff(a, b), m.Diff(b, a)) {
		t.Error("xor decomposition failed")
	}
}

func TestITE(t *testing.T) {
	m := New()
	a, b, c := m.NewVar(), m.NewVar(), m.NewVar()
	f := m.ITE(a, b, c)
	want := m.Or(m.And(a, b), m.And(m.Not(a), c))
	if f != want {
		t.Fatal("ITE expansion mismatch")
	}
	if m.ITE(a, True, False) != a {
		t.Fatal("ITE(a,1,0) != a")
	}
	if m.ITE(a, False, True) != m.Not(a) {
		t.Fatal("ITE(a,0,1) != !a")
	}
}

func TestEvalAgainstTruthTable(t *testing.T) {
	m := New()
	vs := m.NewVars(3)
	f := m.Xor(m.And(vs[0], vs[1]), vs[2])
	for i := 0; i < 8; i++ {
		asg := []bool{i&1 != 0, i&2 != 0, i&4 != 0}
		want := (asg[0] && asg[1]) != asg[2]
		if got := m.Eval(f, asg); got != want {
			t.Errorf("Eval(%v) = %v, want %v", asg, got, want)
		}
	}
}

func TestQuantification(t *testing.T) {
	m := New()
	a, b, c := m.NewVar(), m.NewVar(), m.NewVar()
	f := m.And(m.Or(a, b), c)
	// ∃a. (a|b)&c = c
	if got := m.Exists(f, m.Cube([]int{0})); got != c {
		t.Errorf("Exists over a: got node %d, want c", got)
	}
	// ∀a. (a|b)&c = b&c
	if got := m.ForAll(f, m.Cube([]int{0})); got != m.And(b, c) {
		t.Error("ForAll over a wrong")
	}
	// ∃{a,b,c}. f = True (f is satisfiable)
	if got := m.Exists(f, m.Cube([]int{0, 1, 2})); got != True {
		t.Error("Exists over all vars of satisfiable f should be True")
	}
	if got := m.ForAll(f, m.Cube([]int{0, 1, 2})); got != False {
		t.Error("ForAll over all vars of non-tautology should be False")
	}
}

func TestAndExistsEqualsComposed(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		f := randomBDD(m, vs, rng, 4)
		g := randomBDD(m, vs, rng, 4)
		cubeVars := []int{}
		for v := 0; v < 6; v++ {
			if rng.Intn(2) == 0 {
				cubeVars = append(cubeVars, v)
			}
		}
		cube := m.Cube(cubeVars)
		got := m.AndExists(f, g, cube)
		want := m.Exists(m.And(f, g), cube)
		if got != want {
			t.Fatalf("trial %d: AndExists != Exists∘And", trial)
		}
	}
}

func TestCubeRoundTrip(t *testing.T) {
	m := New()
	m.NewVars(8)
	vars := []int{1, 3, 7}
	cube := m.Cube(vars)
	got := m.CubeVars(cube)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("CubeVars = %v, want [1 3 7]", got)
	}
	if m.Cube(nil) != True {
		t.Fatal("empty cube must be True")
	}
	// duplicates collapse
	if m.Cube([]int{2, 2, 2}) != m.Cube([]int{2}) {
		t.Fatal("duplicate cube vars not collapsed")
	}
}

func TestPermute(t *testing.T) {
	m := New()
	vs := m.NewVars(4)
	f := m.Or(m.And(vs[0], vs[1]), vs[2])
	perm := []int{3, 2, 1, 0}
	g := m.Permute(f, perm)
	want := m.Or(m.And(vs[3], vs[2]), vs[1])
	if g != want {
		t.Fatal("Permute mismatch")
	}
	// permuting twice with an involution is the identity
	if m.Permute(g, perm) != f {
		t.Fatal("Permute involution failed")
	}
}

func TestCompose(t *testing.T) {
	m := New()
	a, b, c := m.NewVar(), m.NewVar(), m.NewVar()
	f := m.Xor(a, b)
	// f[b := b&c] = a XOR (b&c)
	got := m.Compose(f, 1, m.And(b, c))
	want := m.Xor(a, m.And(b, c))
	if got != want {
		t.Fatal("Compose mismatch")
	}
	// substituting a constant
	if m.Compose(f, 1, True) != m.Not(a) {
		t.Fatal("Compose with constant failed")
	}
	// substituting a variable above the root
	g := m.Xor(b, c)
	if m.Compose(g, 2, a) != m.Xor(b, a) {
		t.Fatal("Compose with higher-level substituent failed")
	}
}

func TestVectorComposeSimultaneous(t *testing.T) {
	m := New()
	a, b := m.NewVar(), m.NewVar()
	f := m.And(a, m.Not(b))
	// simultaneous swap a<->b: result must be b & !a, NOT sequential.
	got := m.VectorCompose(f, map[int]Ref{0: b, 1: a})
	want := m.And(b, m.Not(a))
	if got != want {
		t.Fatal("VectorCompose is not simultaneous")
	}
}

func TestConstrainProperty(t *testing.T) {
	m := New()
	vs := m.NewVars(5)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		f := randomBDD(m, vs, rng, 4)
		c := randomBDD(m, vs, rng, 4)
		if c == False {
			continue
		}
		fc := m.Constrain(f, c)
		// Fundamental identity: f·c = constrain(f,c)·c
		if m.And(f, c) != m.And(fc, c) {
			t.Fatalf("trial %d: constrain identity violated", trial)
		}
	}
}

func TestRestrictProperties(t *testing.T) {
	m := New()
	vs := m.NewVars(5)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		f := randomBDD(m, vs, rng, 4)
		c := randomBDD(m, vs, rng, 4)
		if c == False {
			continue
		}
		fr := m.Restrict(f, c)
		// agreement on the care set
		if m.And(f, c) != m.And(fr, c) {
			t.Fatalf("trial %d: restrict does not agree on care set", trial)
		}
		// support containment
		sup := map[int]bool{}
		for _, v := range m.Support(f) {
			sup[v] = true
		}
		for _, v := range m.Support(fr) {
			if !sup[v] {
				t.Fatalf("trial %d: restrict grew support with var %d", trial, v)
			}
		}
		// size never larger than f on care set... (restrict heuristic: usually
		// smaller; we check it is never catastrophically larger than f)
		if m.NodeCount(fr) > m.NodeCount(f) {
			t.Fatalf("trial %d: restrict grew the BDD", trial)
		}
	}
}

func TestSqueeze(t *testing.T) {
	m := New()
	vs := m.NewVars(4)
	lower := m.And(vs[0], vs[1])
	upper := m.Or(vs[0], vs[2])
	g := m.Squeeze(lower, upper)
	if !m.Leq(lower, g) || !m.Leq(g, upper) {
		t.Fatal("Squeeze result outside interval")
	}
}

func TestSatCount(t *testing.T) {
	m := New()
	vs := m.NewVars(4)
	if got := m.SatCount(True, 4); got != 16 {
		t.Fatalf("SatCount(True) = %v, want 16", got)
	}
	if got := m.SatCount(False, 4); got != 0 {
		t.Fatalf("SatCount(False) = %v, want 0", got)
	}
	if got := m.SatCount(vs[0], 4); got != 8 {
		t.Fatalf("SatCount(a) = %v, want 8", got)
	}
	f := m.Xor(vs[0], vs[1]) // half the space
	if got := m.SatCount(f, 4); got != 8 {
		t.Fatalf("SatCount(a^b) = %v, want 8", got)
	}
	if got := m.SatCount(m.AndN(vs...), 4); got != 1 {
		t.Fatalf("SatCount(a&b&c&d) = %v, want 1", got)
	}
}

func TestSatCountExact(t *testing.T) {
	m := New()
	vs := m.NewVars(60)
	if got := m.SatCountExact(False, 60).Sign(); got != 0 {
		t.Fatalf("SatCountExact(False) sign = %d, want 0", got)
	}
	if got := m.SatCountExact(m.AndN(vs[:4]...), 4); got.Int64() != 1 {
		t.Fatalf("SatCountExact(a&b&c&d) = %v, want 1", got)
	}
	// Small counts agree with the float path exactly.
	f := m.Xor(vs[0], vs[1])
	if got, want := m.SatCountExact(f, 4), m.SatCount(f, 4); float64(got.Int64()) != want {
		t.Fatalf("SatCountExact(a^b) = %v, float path %v", got, want)
	}
	// All assignments but one over 60 variables: 2^60 − 1 has 60
	// significant bits, beyond float64's 53-bit mantissa — the float
	// path rounds to 2^60, the exact path must not.
	g := m.Not(m.AndN(vs...))
	want := new(big.Int).Lsh(big.NewInt(1), 60)
	want.Sub(want, big.NewInt(1))
	if got := m.SatCountExact(g, 60); got.Cmp(want) != 0 {
		t.Fatalf("SatCountExact(¬(v0..v59)) = %v, want %v", got, want)
	}
	if rounded := m.SatCount(g, 60); rounded != float64(1)*(1<<60) {
		t.Fatalf("float SatCount(¬(v0..v59)) = %v, want it rounded to 2^60", rounded)
	}
}

func TestAnySatIsWitness(t *testing.T) {
	m := New()
	vs := m.NewVars(5)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		f := randomBDD(m, vs, rng, 4)
		lits, ok := m.AnySat(f)
		if f == False {
			if ok {
				t.Fatal("AnySat on False returned a witness")
			}
			continue
		}
		if !ok {
			t.Fatal("AnySat failed on satisfiable f")
		}
		asg := make([]bool, 5)
		for _, l := range lits {
			asg[l.Var] = l.Val
		}
		if !m.Eval(f, asg) {
			t.Fatalf("trial %d: AnySat witness does not satisfy f", trial)
		}
	}
}

func TestAllSatEnumeratesExactly(t *testing.T) {
	m := New()
	vs := m.NewVars(3)
	f := m.Or(m.And(vs[0], vs[1]), m.Not(vs[2]))
	count := 0
	m.AllSat(f, func(cube []int8) bool {
		weight := 1
		for _, c := range cube {
			if c == -1 {
				weight *= 2
			}
		}
		count += weight
		return true
	})
	if want := int(m.SatCount(f, 3)); count != want {
		t.Fatalf("AllSat enumerated %d minterms, want %d", count, want)
	}
}

func TestSupport(t *testing.T) {
	m := New()
	vs := m.NewVars(5)
	f := m.Or(m.And(vs[1], vs[3]), vs[4])
	got := m.Support(f)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Support = %v, want [1 3 4]", got)
	}
	if len(m.Support(True)) != 0 {
		t.Fatal("Support of a constant must be empty")
	}
}

func TestGCPreservesProtectedNodes(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	f := m.IncRef(m.Or(m.And(vs[0], vs[1]), m.And(vs[2], vs[3])))
	// create garbage
	for i := 0; i < 1000; i++ {
		g := m.Xor(vs[i%6], m.And(vs[(i+1)%6], vs[(i+2)%6]))
		_ = g
	}
	before := m.Eval(f, []bool{true, true, false, false, false, false})
	m.GC()
	after := m.Eval(f, []bool{true, true, false, false, false, false})
	if before != after || !after {
		t.Fatal("GC corrupted a protected node")
	}
	// rebuilding the same function must give the same ref back
	f2 := m.Or(m.And(vs[0], vs[1]), m.And(vs[2], vs[3]))
	if f2 != f {
		t.Fatal("unique table broken after GC")
	}
	m.DecRef(f)
}

func TestGCReclaimsGarbage(t *testing.T) {
	m := New()
	vs := m.NewVars(8)
	for i := 0; i < 200; i++ {
		_ = m.And(m.Xor(vs[i%8], vs[(i+3)%8]), m.Or(vs[(i+1)%8], vs[(i+5)%8]))
	}
	big := m.Size()
	m.GC()
	if m.Size() >= big {
		t.Fatalf("GC reclaimed nothing: before %d, after %d", big, m.Size())
	}
	// Projections are rebuildable after GC and operations still canonical.
	a, b := m.Var(0), m.Var(1)
	if m.And(a, b) != m.And(b, a) {
		t.Fatal("canonicity broken after GC")
	}
}

func TestMaybeGCThreshold(t *testing.T) {
	m := New()
	m.SetGCThreshold(12)
	vs := m.NewVars(8)
	ran := false
	for i := 0; i < 500 && !ran; i++ {
		_ = m.Xor(vs[i%8], m.And(vs[(i+1)%8], vs[(i+2)%8]))
		ran = m.MaybeGC()
	}
	if !ran {
		t.Fatal("MaybeGC never triggered past threshold")
	}
	if m.GCCount == 0 {
		t.Fatal("GCCount not incremented")
	}
}

func TestLeq(t *testing.T) {
	m := New()
	a, b := m.NewVar(), m.NewVar()
	if !m.Leq(m.And(a, b), a) {
		t.Fatal("a&b ≤ a should hold")
	}
	if m.Leq(a, m.And(a, b)) {
		t.Fatal("a ≤ a&b should not hold")
	}
	if !m.Leq(False, a) || !m.Leq(a, True) {
		t.Fatal("bounds of the lattice wrong")
	}
}

func TestWriteDot(t *testing.T) {
	m := New()
	a, b := m.NewVar(), m.NewVar()
	f := m.And(a, m.Not(b))
	var sb strings.Builder
	if err := m.WriteDot(&sb, []string{"req", "ack"}, map[string]Ref{"prop": f}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "req", "ack", "root_prop"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

// quick-based property: BDD operations agree with Boolean semantics on
// random 5-variable functions represented as truth tables.
func TestQuickSemantics(t *testing.T) {
	m := New()
	vs := m.NewVars(5)
	fromTable := func(tbl uint32) Ref {
		f := False
		for i := 0; i < 32; i++ {
			if tbl&(1<<i) == 0 {
				continue
			}
			minterm := True
			for v := 0; v < 5; v++ {
				if i&(1<<v) != 0 {
					minterm = m.And(minterm, vs[v])
				} else {
					minterm = m.And(minterm, m.Not(vs[v]))
				}
			}
			f = m.Or(f, minterm)
		}
		return f
	}
	prop := func(ta, tb uint32) bool {
		fa, fb := fromTable(ta), fromTable(tb)
		if m.And(fa, fb) != fromTable(ta&tb) {
			return false
		}
		if m.Or(fa, fb) != fromTable(ta|tb) {
			return false
		}
		if m.Xor(fa, fb) != fromTable(ta^tb) {
			return false
		}
		if m.Not(fa) != fromTable(^ta) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomBDD builds a random function over the given variables.
func randomBDD(m *Manager, vs []Ref, rng *rand.Rand, depth int) Ref {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return True
		case 1:
			return False
		default:
			v := vs[rng.Intn(len(vs))]
			if rng.Intn(2) == 0 {
				return m.Not(v)
			}
			return v
		}
	}
	a := randomBDD(m, vs, rng, depth-1)
	b := randomBDD(m, vs, rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return m.And(a, b)
	case 1:
		return m.Or(a, b)
	case 2:
		return m.Xor(a, b)
	default:
		return m.ITE(a, b, randomBDD(m, vs, rng, depth-1))
	}
}

func TestStatsCounters(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	f := m.AndN(vs...)
	g := m.OrN(vs...)
	_ = m.Exists(m.And(f, g), m.Cube([]int{0, 1}))
	// repeat the same work: the caches must hit
	_ = m.AndN(vs...)
	_ = m.Exists(m.And(f, g), m.Cube([]int{0, 1}))
	s := m.Stats()
	if s.ApplyCalls == 0 || s.QuantCalls == 0 {
		t.Fatalf("counters not advancing: %+v", s)
	}
	if s.ApplyHits == 0 {
		t.Fatal("repeated work should hit the apply cache")
	}
	if s.Variables != 6 || s.LiveNodes < 6 {
		t.Fatalf("structural stats wrong: %+v", s)
	}
	if s.PeakNodes < s.LiveNodes {
		t.Fatal("peak below live")
	}
	out := s.String()
	if !strings.Contains(out, "vars") || !strings.Contains(out, "cache hits") {
		t.Fatalf("stats string: %s", out)
	}
}

func TestStatsAfterGC(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	for i := 0; i < 100; i++ {
		_ = m.Xor(vs[i%6], m.And(vs[(i+1)%6], vs[(i+2)%6]))
	}
	m.GC()
	s := m.Stats()
	if s.GCs != 1 {
		t.Fatalf("GCs = %d", s.GCs)
	}
	if s.LiveNodes > s.AllocatedNodes {
		t.Fatal("live nodes exceed allocation")
	}
}

func TestWriteReadBDDsRoundTrip(t *testing.T) {
	m := New()
	vs := m.NewVars(6)
	rng := rand.New(rand.NewSource(11))
	roots := map[Ref]string{}
	named := map[string]Ref{}
	for i := 0; i < 8; i++ {
		f := randomBDD(m, vs, rng, 4)
		name := "f" + string(rune('0'+i))
		named[name] = f
		roots[f] = name
	}
	var sb strings.Builder
	if err := m.WriteBDDs(&sb, named); err != nil {
		t.Fatal(err)
	}
	// same manager: must map back to identical refs
	got, err := m.ReadBDDs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range named {
		if got[name] != f {
			t.Fatalf("%s: round trip changed the function", name)
		}
	}
	// fresh manager: semantics must match via Eval
	m2 := New()
	got2, err := m2.ReadBDDs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		asg := make([]bool, 6)
		for b := 0; b < 6; b++ {
			asg[b] = i&(1<<b) != 0
		}
		for name, f := range named {
			if m.Eval(f, asg) != m2.Eval(got2[name], asg) {
				t.Fatalf("%s: semantics changed across managers", name)
			}
		}
	}
}

func TestReadBDDsErrors(t *testing.T) {
	m := New()
	cases := []string{
		"bdd x\n",
		"n 2 0 F\n",
		"n 2 9 F T\nbdd 2\n", // var out of range (no header first)
		"n 2 0 Q T\nbdd 1\n",
		"root a 5\n",
		"frob\n",
	}
	for _, src := range cases {
		if _, err := m.ReadBDDs(strings.NewReader(src)); err == nil {
			t.Errorf("input %q should fail", src)
		}
	}
	// whitespace in names rejected on write
	if err := m.WriteBDDs(&strings.Builder{}, map[string]Ref{"a b": True}); err == nil {
		t.Error("whitespace name should fail")
	}
}

func TestWriteReadTerminalsAndShared(t *testing.T) {
	m := New()
	a, b := m.NewVar(), m.NewVar()
	shared := m.And(a, b)
	named := map[string]Ref{
		"t":  True,
		"f":  False,
		"s1": shared,
		"s2": m.Or(shared, m.Not(a)),
	}
	var sb strings.Builder
	if err := m.WriteBDDs(&sb, named); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBDDs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range named {
		if got[n] != f {
			t.Fatalf("%s mismatched", n)
		}
	}
}
