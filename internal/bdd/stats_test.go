package bdd

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// buildForest allocates a few dozen nodes and runs every cached
// operation at least once, so the counters move.
func buildForest(m *Manager) Ref {
	vars := make([]Ref, 8)
	for i := range vars {
		vars[i] = m.NewVar()
	}
	f := False
	for i := 0; i < len(vars)-1; i++ {
		f = m.Or(f, m.And(vars[i], m.Not(vars[i+1])))
	}
	f = m.ITE(vars[0], f, m.Not(f))
	f = m.Or(f, m.Exists(f, m.Cube([]int{1, 3})))
	f = m.Or(f, m.AndExists(f, vars[2], m.Cube([]int{5})))
	return f
}

// TestQuantHitRateZeroCalls pins the division-by-zero edge: a fresh
// manager has made no quantifier calls, and the rate must be 0, not NaN.
func TestQuantHitRateZeroCalls(t *testing.T) {
	st := New().Stats()
	if st.QuantCalls != 0 || st.AndExistsCalls != 0 {
		t.Fatal("fresh manager has quantifier calls")
	}
	r := st.QuantHitRate()
	if r != 0 {
		t.Fatalf("QuantHitRate() = %v, want 0", r)
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("QuantHitRate() = %v on zero calls", r)
	}
	for k, v := range st.BenchMetrics() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("BenchMetrics[%s] = %v on a fresh manager", k, v)
		}
	}
}

// TestCounterMonotonicityAcrossGC checks the cumulative counters never
// move backwards across garbage collections: GC reclaims nodes, but the
// call/hit tallies and the peaks only grow.
func TestCounterMonotonicityAcrossGC(t *testing.T) {
	m := New()
	prev := m.Stats()
	for round := 0; round < 5; round++ {
		f := buildForest(m)
		m.IncRef(f)
		m.GC()
		m.DecRef(f)
		st := m.Stats()
		assertMonotone(t, prev, st)
		if st.GCs != prev.GCs+1 {
			t.Fatalf("round %d: GCs = %d, want %d", round, st.GCs, prev.GCs+1)
		}
		prev = st
	}
}

// TestCounterMonotonicityAcrossReorder runs full sift passes between
// operation batches and checks the same monotonicity contract; sifting
// rewrites the arena but must not lose counters.
func TestCounterMonotonicityAcrossReorder(t *testing.T) {
	m := New()
	f := m.IncRef(buildForest(m))
	prev := m.Stats()
	for round := 0; round < 3; round++ {
		s := m.StartReorder()
		for lvl := 0; lvl+1 < m.NumVars(); lvl++ {
			s.Swap(lvl)
		}
		s.Close()
		f = m.IncRef(m.Or(f, buildForest(m)))
		st := m.Stats()
		assertMonotone(t, prev, st)
		if st.Reorders != prev.Reorders+1 {
			t.Fatalf("round %d: Reorders = %d, want %d", round, st.Reorders, prev.Reorders+1)
		}
		prev = st
	}
}

func assertMonotone(t *testing.T, prev, cur Statistics) {
	t.Helper()
	type pair struct {
		name      string
		old, this uint64
	}
	for _, p := range []pair{
		{"ApplyCalls", prev.ApplyCalls, cur.ApplyCalls},
		{"ApplyHits", prev.ApplyHits, cur.ApplyHits},
		{"ITECalls", prev.ITECalls, cur.ITECalls},
		{"ITEHits", prev.ITEHits, cur.ITEHits},
		{"QuantCalls", prev.QuantCalls, cur.QuantCalls},
		{"QuantHits", prev.QuantHits, cur.QuantHits},
		{"AndExistsCalls", prev.AndExistsCalls, cur.AndExistsCalls},
		{"AndExistsHits", prev.AndExistsHits, cur.AndExistsHits},
		{"ComplementShared", prev.ComplementShared, cur.ComplementShared},
		{"ReorderSwaps", prev.ReorderSwaps, cur.ReorderSwaps},
		{"GCs", uint64(prev.GCs), uint64(cur.GCs)},
		{"PeakNodes", uint64(prev.PeakNodes), uint64(cur.PeakNodes)},
		{"PeakLive", uint64(prev.PeakLive), uint64(cur.PeakLive)},
		{"Reorders", uint64(prev.Reorders), uint64(cur.Reorders)},
	} {
		if p.this < p.old {
			t.Fatalf("%s went backwards: %d -> %d", p.name, p.old, p.this)
		}
	}
}

// TestStatsSnapshotDuringReorder checks the coherence satellite: while a
// reorder session has the arena mid-rewrite, Stats() serves the frozen
// boundary snapshot instead of reading half-swapped state, and the live
// view resumes after Close.
func TestStatsSnapshotDuringReorder(t *testing.T) {
	m := New()
	f := m.IncRef(buildForest(m))
	_ = f
	// Latency holds slices (histogram snapshots from the scope), so
	// counter comparisons strip it first.
	counters := func(s Statistics) Statistics {
		s.Latency = nil
		return s
	}
	before := m.Stats()
	s := m.StartReorder()
	during := m.Stats()
	if !reflect.DeepEqual(counters(during), counters(before)) {
		t.Fatalf("Stats during session differs from boundary snapshot:\n%v\nvs\n%v", during, before)
	}
	s.Swap(0)
	// Still frozen after a swap mutated the arena.
	if got := m.Stats(); !reflect.DeepEqual(counters(got), counters(before)) {
		t.Fatal("Stats changed mid-session after a swap")
	}
	s.Close()
	after := m.Stats()
	if after.Reorders != before.Reorders+1 {
		t.Fatalf("Reorders after Close = %d, want %d", after.Reorders, before.Reorders+1)
	}
	if after.LiveNodes <= 0 {
		t.Fatal("live view did not resume after Close")
	}
}

// TestWriteTableRendering sanity-checks the unified formatter shared by
// the shell, the CLIs and the telemetry summary.
func TestWriteTableRendering(t *testing.T) {
	m := New()
	f := m.IncRef(buildForest(m))
	_ = f
	m.GC()
	table := m.Stats().Table()
	for _, want := range []string{
		"variables", "nodes live/alloc", "peak alloc / live",
		"apply cache", "ite cache", "quant cache", "andexists cache",
		"gcs", "complement-shared", "cache growths/kept",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// The reorders row only appears once a reorder has run.
	if strings.Contains(table, "reorders") {
		t.Error("reorders row rendered with zero reorders")
	}
	s := m.StartReorder()
	s.Swap(0)
	s.Close()
	if got := m.Stats().Table(); !strings.Contains(got, "reorders") {
		t.Errorf("reorders row missing after a reorder:\n%s", got)
	}
}
