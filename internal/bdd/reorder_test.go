package bdd

import "testing"

// checkKernelInvariants verifies the structural invariants a reorder
// session must restore: canonical-low edges, strictly increasing levels,
// no child pointing at a freed slot, exact unique-table membership, no
// duplicate triples, and no operation-cache entry naming a freed slot.
func checkKernelInvariants(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// evalAll snapshots f's truth table over nVars variables.
func evalAll(m *Manager, f Ref, nVars int) []bool {
	out := make([]bool, 1<<nVars)
	assignment := make([]bool, nVars)
	for i := range out {
		for v := range assignment {
			assignment[v] = i>>v&1 == 1
		}
		out[i] = m.Eval(f, assignment)
	}
	return out
}

// buildRandomRoots grows a pool of functions by combining projections
// with random connectives (deterministic LCG).
func buildRandomRoots(m *Manager, vars []Ref, count int, seed uint64) []Ref {
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	pool := append([]Ref(nil), vars...)
	for len(pool) < count+len(vars) {
		a := pool[next()%uint64(len(pool))]
		b := pool[next()%uint64(len(pool))]
		var f Ref
		switch next() % 4 {
		case 0:
			f = m.And(a, b)
		case 1:
			f = m.Or(a, m.Not(b))
		case 2:
			f = m.Xor(a, b)
		default:
			f = m.ITE(a, b, m.Not(a))
		}
		pool = append(pool, f)
	}
	return pool[len(vars):]
}

func TestSwapAdjacentLevels(t *testing.T) {
	m := New()
	vars := m.NewVars(4)
	roots := []Ref{
		m.ITE(vars[0], vars[1], vars[2]),
		m.And(vars[1], m.Not(vars[2])),
		m.Xor(m.Xor(vars[0], vars[1]), m.Xor(vars[2], vars[3])),
		m.Or(m.And(vars[0], vars[2]), m.And(m.Not(vars[1]), vars[3])),
	}
	want := make([][]bool, len(roots))
	for i, f := range roots {
		want[i] = evalAll(m, f, 4)
		m.IncRef(f)
	}
	s := m.StartReorder()
	s.Swap(1)
	s.Close()
	if m.Level(1) != 2 || m.Level(2) != 1 || m.VarAtLevel(1) != 2 || m.VarAtLevel(2) != 1 {
		t.Fatalf("order maps not swapped: var2level %v", m.var2level)
	}
	checkKernelInvariants(t, m)
	for i, f := range roots {
		got := evalAll(m, f, 4)
		for a := range got {
			if got[a] != want[i][a] {
				t.Fatalf("root %d changed function at assignment %04b after swap", i, a)
			}
		}
	}
	// The manager must be fully operational after Close.
	if g := m.And(roots[0], roots[2]); evalAll(m, g, 4)[0b1111] != (want[0][15] && want[2][15]) {
		t.Fatal("post-reorder operation computed a wrong result")
	}
}

// TestSwapFullReversal bubbles the order into its exact reverse with
// adjacent swaps and checks every protected root keeps its function and
// that rebuilding a function in the reversed order reuses the same
// canonical Ref.
func TestSwapFullReversal(t *testing.T) {
	const n = 8
	m := New()
	vars := m.NewVars(n)
	roots := buildRandomRoots(m, vars, 40, 0x5eed)
	want := make([][]bool, len(roots))
	for i, f := range roots {
		want[i] = evalAll(m, f, n)
		m.IncRef(f)
	}
	s := m.StartReorder()
	for i := 0; i < n; i++ { // bubble-sort into full reversal
		for l := 0; l < n-1-i; l++ {
			s.Swap(l)
		}
	}
	if s.Swaps() != n*(n-1)/2 {
		t.Fatalf("expected %d swaps, did %d", n*(n-1)/2, s.Swaps())
	}
	s.Close()
	for v := 0; v < n; v++ {
		if m.Level(v) != n-1-v {
			t.Fatalf("variable %d at level %d, want %d", v, m.Level(v), n-1-v)
		}
	}
	checkKernelInvariants(t, m)
	for i, f := range roots {
		got := evalAll(m, f, n)
		for a := range got {
			if got[a] != want[i][a] {
				t.Fatalf("root %d changed function at assignment %08b", i, a)
			}
		}
	}
	// Canonicity: rebuilding an existing function from scratch in the
	// new order must return the identical Ref.
	if rebuilt := m.And(m.Var(0), m.Var(1)); rebuilt != m.And(m.Var(0), m.Var(1)) {
		t.Fatal("canonical rebuild disagreed with itself")
	}
	for i, f := range roots {
		if g := m.Or(f, False); g != f {
			t.Fatalf("root %d no longer canonical: Or(f, False) = %d != %d", i, g, f)
		}
	}
	// A GC with the roots protected must keep them all intact.
	m.GC()
	checkKernelInvariants(t, m)
	for i, f := range roots {
		got := evalAll(m, f, n)
		for a := range got {
			if got[a] != want[i][a] {
				t.Fatalf("root %d changed function after post-reorder GC", i)
			}
		}
	}
}

// TestReorderReclaimsUnprotected pins the GC-equivalent contract: nodes
// not reachable from an IncRef'd root melt away as their levels are
// swapped, without disturbing protected functions.
func TestSwapReclaimsUnprotected(t *testing.T) {
	const n = 8
	m := New()
	vars := m.NewVars(n)
	kept := m.IncRef(m.And(vars[0], vars[7]))
	garbage := True
	for _, v := range vars {
		garbage = m.And(garbage, v)
	}
	_ = garbage // deliberately unprotected
	before := m.Size()
	s := m.StartReorder()
	for i := 0; i < n; i++ {
		for l := 0; l < n-1-i; l++ {
			s.Swap(l)
		}
	}
	s.Close()
	if m.Size() >= before {
		t.Fatalf("unprotected chain not reclaimed: size %d -> %d", before, m.Size())
	}
	checkKernelInvariants(t, m)
	if got := evalAll(m, kept, n); !got[1<<0|1<<7] || got[1<<0] {
		t.Fatal("protected root corrupted by reclamation")
	}
}

// TestInteractionMatrix pins the matrix built at StartReorder: variables
// co-occurring in the support of any root — protected or garbage — are
// marked interacting, disjoint pairs are not. Garbage counts because
// swaps must preserve every allocated node until it melts.
func TestInteractionMatrix(t *testing.T) {
	m := New()
	vars := m.NewVars(6)
	m.IncRef(m.And(vars[0], vars[1]))
	m.IncRef(m.Xor(vars[2], vars[3]))
	_ = m.And(vars[4], vars[5]) // deliberately unprotected
	s := m.StartReorder()
	defer s.Close()
	for _, p := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {4, 5}} {
		if !s.Interacts(p[0], p[1]) {
			t.Fatalf("co-occurring pair %v not marked interacting", p)
		}
	}
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {0, 4}, {3, 5}, {2, 5}} {
		if s.Interacts(p[0], p[1]) {
			t.Fatalf("disjoint pair %v marked interacting", p)
		}
	}
	for v := 0; v < 6; v++ {
		if s.Interacts(v, v) != true {
			// A variable trivially co-occurs with itself wherever it
			// appears in a support of size >= 2.
			t.Fatalf("variable %d not marked self-interacting", v)
		}
	}
}

// TestSwapNonInteractingFastPath checks the O(1) relabel: swapping two
// levels whose variables never co-occur must leave every node untouched
// (same count, same functions) while still counting as a swap and as an
// interaction skip.
func TestSwapNonInteractingFastPath(t *testing.T) {
	m := New()
	vars := m.NewVars(4)
	f := m.IncRef(m.And(vars[0], vars[1]))
	g := m.IncRef(m.Or(vars[2], vars[3]))
	wf, wg := evalAll(m, f, 4), evalAll(m, g, 4)
	before := m.Size()
	s := m.StartReorder()
	// Levels 1 and 2 hold variables 1 and 2, which never co-occur.
	s.Swap(1)
	if s.InteractionSkips() != 1 || s.Swaps() != 1 {
		t.Fatalf("fast path not taken: skips=%d swaps=%d", s.InteractionSkips(), s.Swaps())
	}
	s.Close()
	if m.Size() != before {
		t.Fatalf("pure relabel changed the node count %d -> %d", before, m.Size())
	}
	if m.VarAtLevel(1) != 2 || m.VarAtLevel(2) != 1 {
		t.Fatal("order maps not updated by the fast path")
	}
	checkKernelInvariants(t, m)
	for a := range wf {
		if got := evalAll(m, f, 4); got[a] != wf[a] {
			t.Fatalf("f changed function at assignment %04b", a)
		}
		if got := evalAll(m, g, 4); got[a] != wg[a] {
			t.Fatalf("g changed function at assignment %04b", a)
		}
	}
}

// TestMoveBlockSpanJump crosses a span of non-interacting variables in
// one rotation and checks the order maps, the counter split (skips, not
// swaps), function preservation, and the interacting-crossing panic.
func TestMoveBlockSpanJump(t *testing.T) {
	m := New()
	vars := m.NewVars(6)
	f := m.IncRef(m.And(vars[0], vars[5]))
	parity := vars[1]
	for _, v := range vars[2:5] {
		parity = m.Xor(parity, v)
	}
	m.IncRef(parity)
	wf, wp := evalAll(m, f, 6), evalAll(m, parity, 6)
	s := m.StartReorder()
	// Variable 0 interacts with 5 only; jump it past variables 1..4.
	s.MoveBlock(0, 1, 4)
	if s.Swaps() != 0 || s.InteractionSkips() != 4 {
		t.Fatalf("jump counted wrong: swaps=%d skips=%d", s.Swaps(), s.InteractionSkips())
	}
	if m.Level(0) != 4 {
		t.Fatalf("variable 0 at level %d after jump, want 4", m.Level(0))
	}
	for v := 1; v <= 4; v++ {
		if m.Level(v) != v-1 {
			t.Fatalf("variable %d at level %d after jump, want %d", v, m.Level(v), v-1)
		}
	}
	// Crossing the interacting variable 5 must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MoveBlock across an interacting variable did not panic")
			}
		}()
		s.MoveBlock(4, 1, 1)
	}()
	// Jump back up (negative span) and close.
	s.MoveBlock(4, 1, -4)
	if s.InteractionSkips() != 8 {
		t.Fatalf("negative-span jump not counted: skips=%d", s.InteractionSkips())
	}
	s.Close()
	if m.Level(0) != 0 {
		t.Fatalf("variable 0 at level %d after round trip, want 0", m.Level(0))
	}
	checkKernelInvariants(t, m)
	for a := range wf {
		if got := evalAll(m, f, 6); got[a] != wf[a] {
			t.Fatalf("f changed function at assignment %06b", a)
		}
		if got := evalAll(m, parity, 6); got[a] != wp[a] {
			t.Fatalf("parity changed function at assignment %06b", a)
		}
	}
}

// TestProbeSymmetry pins the structural symmetry check on known
// positives (x0 and x1, x0 xor x1 — both symmetric in {0,1}) and a known
// negative (x0 and not x1).
func TestProbeSymmetry(t *testing.T) {
	build := []struct {
		name string
		mk   func(m *Manager, a, b Ref) Ref
		want bool
	}{
		{"and", func(m *Manager, a, b Ref) Ref { return m.And(a, b) }, true},
		{"xor", func(m *Manager, a, b Ref) Ref { return m.Xor(a, b) }, true},
		{"andnot", func(m *Manager, a, b Ref) Ref { return m.And(a, m.Not(b)) }, false},
	}
	for _, tc := range build {
		t.Run(tc.name, func(t *testing.T) {
			m := New()
			vars := m.NewVars(2)
			m.IncRef(tc.mk(m, vars[0], vars[1]))
			s := m.StartReorder()
			if got := s.ProbeSymmetry(0); got != tc.want {
				t.Fatalf("ProbeSymmetry(0) = %v, want %v", got, tc.want)
			}
			// The verdict must be stable on a re-probe (negative results
			// are cached per variable pair).
			if got := s.ProbeSymmetry(0); got != tc.want {
				t.Fatalf("re-probe flipped to %v", got)
			}
			s.Close()
			checkKernelInvariants(t, m)
		})
	}
}

func TestGroupVarsMerge(t *testing.T) {
	m := New()
	m.NewVars(6)
	m.GroupVars([]int{0, 1})
	m.GroupVars([]int{4, 5})
	m.GroupVars([]int{1, 2})
	groups := m.VarGroups()
	if len(groups) != 2 {
		t.Fatalf("expected 2 groups after merge, got %v", groups)
	}
	var merged []int
	for _, g := range groups {
		if len(g) == 3 {
			merged = g
		}
	}
	if merged == nil || merged[0] != 0 || merged[1] != 1 || merged[2] != 2 {
		t.Fatalf("overlapping registrations did not merge: %v", groups)
	}
}

func TestAutoReorderTrigger(t *testing.T) {
	m := New()
	vars := m.NewVars(10)
	runs := 0
	m.SetAutoReorder(1.5, 64, func(m *Manager) {
		runs++
		s := m.StartReorder()
		s.Swap(0)
		s.Close()
	})
	if m.GetReorderPolicy() != ReorderAuto {
		t.Fatal("SetAutoReorder did not set the auto policy")
	}
	f := True
	for i := 0; i+1 < len(vars); i++ {
		f = m.And(f, m.Xor(vars[i], vars[i+1]))
		m.IncRef(f)
	}
	if !m.ReorderPending() {
		t.Fatalf("trigger never armed at %d nodes", m.Size())
	}
	if !m.MaybeReorder() || runs != 1 {
		t.Fatal("MaybeReorder did not run the hook")
	}
	if m.ReorderPending() {
		t.Fatal("trigger still pending right after a reorder")
	}
	if m.Stats().Reorders != 1 {
		t.Fatalf("stats report %d reorders, want 1", m.Stats().Reorders)
	}
	m.SetReorderPolicy(ReorderOff)
	if m.ReorderPending() || m.MaybeReorder() {
		t.Fatal("ReorderOff did not disarm the trigger")
	}
}
