package bdd

// Dynamic variable reordering: the kernel half of the sifting subsystem
// (the search strategy lives in internal/reorder). A ReorderSession
// exposes the one primitive reordering needs — swapping two adjacent
// levels in place — while keeping every Ref that is protected by IncRef
// (directly or transitively) valid and denoting the same Boolean
// function. The contract is exactly the GC contract: starting a session
// may reclaim nodes no protected root reaches, so callers protect what
// they hold, and in exchange never need to translate a single Ref.
//
// The swap itself is the classic Rudell in-place exchange adapted to
// complement edges. Writing u for the variable at level l and v for the
// one at l+1, a node f = (u, F0, F1) whose cofactors depend on v is
// rewritten in place as f = (v, G0, G1) with G0 = (u, F00, F10) and
// G1 = (u, F01, F11): the stored slot keeps its index (so parents and
// external Refs are untouched) while the node it holds changes label.
// Complement edges add two wrinkles. First, cofactoring F1 through a
// complemented high edge pushes the mark onto F1's children (F10, F11
// pick up the mark). Second, the canonical low-edge-never-complemented
// rule must be re-established for the new inner nodes: G0 inherits F00,
// which is a stored low edge and hence always regular, so the rewritten
// node itself is safe, but G1's low edge F01 is a stored *high* edge and
// may carry the mark — swapMk re-roots exactly like mk does, returning
// the complement of the flipped twin.
//
// Nodes store variable IDs, not levels (see the node type), which is
// what makes swaps cheap. A u-node with no v-child keeps its triple
// verbatim and "moves" purely through the final order-map update; a
// v-node is never visited at all — it either survives untouched or is
// released when a rewrite severs its last reference. Only the nodes
// that genuinely couple the two variables are rewritten. When the two
// variables do not interact anywhere there is nothing to rewrite and
// the swap degenerates to exchanging two order-map entries: O(1),
// independent of the populations. MoveBlock extends that to whole
// non-interacting spans in a single order-map rotation.
//
// During a session the sharded unique table is stale (Close rebuilds
// it), so no mk/mkNode may run; the session keeps its own exact index
// instead — a map keyed on the stored triple (varID, low, high), which
// relabel-free moves never touch. A rewritten node's new (v, G0, G1)
// key cannot collide with a stale (v, b0, b1) one: a rewritten node
// keeps its dependence on u, so at least one of G0, G1 is an inner
// u-node — a slot the stale keys, whose children all lie strictly below
// the pair, cannot mention at that position. Per-variable node
// populations are maintained incrementally in bucket lists, which
// doubles as the level-size signal sifting uses (a variable occupies
// exactly one level).
//
// StartReorder also computes the variable interaction matrix: bit v of
// row u is set when u and v co-occur in the support of some live
// function (protected or garbage — the walk starts from every parentless
// node, so a session opened without a prior GC is still covered). Two
// facts make it load-bearing. A node's own variable and its children's
// variables all lie in the support of any function reaching it, so
// "u and v do not interact" implies no u-node has a v-child or vice
// versa; and swaps preserve every function (garbage included — rewrites
// are function-preserving, releases only drop whole functions), so the
// matrix stays valid for the life of the session. When the two levels
// being swapped do not interact, swapLevels degenerates to relabeling
// the two buckets: no snapshot, no map traffic, no cofactoring, no
// allocation or release — the driver counts these as interaction skips.
// Operation caches are function-keyed, so surviving entries stay
// semantically correct across swaps; the only invalid entries are those
// naming a slot freed during the session (possibly since reused), which
// Close sweeps out via a sticky "tainted" bitmap.
//
// In parallel mode a session is a stop-the-world epoch: StartReorder
// takes the write side of the epoch lock and Close releases it, so the
// sifting invariants above are untouched by worker concurrency — every
// operation is excluded for the whole session. The sift driver itself
// runs on the orchestrating goroutine and uses only session methods,
// Size() and Stats(), all of which stay lock-free.

import (
	"fmt"
	"sort"
	"time"

	"hsis/internal/telemetry"
)

// ReorderPolicy names the dynamic-reordering modes the CLIs surface as
// -reorder: no reordering at all, reordering only on explicit request,
// or growth-triggered automatic sifting.
type ReorderPolicy int

const (
	ReorderOff ReorderPolicy = iota
	ReorderManual
	ReorderAuto
)

func (p ReorderPolicy) String() string {
	switch p {
	case ReorderManual:
		return "manual"
	case ReorderAuto:
		return "auto"
	default:
		return "off"
	}
}

// ReorderSession is an open reordering transaction on a Manager. Between
// StartReorder and Close only session methods may touch the manager (no
// BDD operations), and the GC protection contract applies to the whole
// session: Refs not reachable from an IncRef'd root may be reclaimed.
type ReorderSession struct {
	m *Manager

	// ref[i] counts why slot i must stay: its external references plus
	// one per allocated parent node (dead parents included — a node is
	// only reclaimed when the session itself severs its last edge, which
	// is how unprotected garbage melts away as its levels are swapped).
	ref []int32

	// bucket[v] lists exactly the slots labeled with variable v; pos[i]
	// is slot i's index within its bucket (swap-remove bookkeeping).
	bucket [][]Ref
	pos    []int32

	// uniq replaces the (stale) open-addressing unique table for the
	// duration of the session, keyed on the stored triple directly:
	// nodes carry variable IDs, which are stable across swaps, so moves
	// that rewrite nothing never touch the map.
	uniq map[node]Ref

	free    []uint64 // slots currently on the free list
	tainted []uint64 // slots freed at any point during the session (sticky across reuse)

	relStack []Ref
	sa       []Ref   // per-swap upper-bucket snapshot, reused across swaps
	inter    []Ref   // per-swap deferred-release candidates, reused
	rot      []int32 // MoveBlock rotation scratch

	// imat is the variable interaction matrix (numVars rows of imatW
	// words): bit v of row u set iff u,v co-occur in a live support.
	// useInter gates the fast-path swap (ablation switch).
	imat     []uint64
	imatW    int
	useInter bool

	// symNeg caches failed symmetry probes, one bit per ordered variable
	// pair (imat's shape, allocated on first probe). Positive symmetry is
	// a property of the represented functions, which swaps preserve, so a
	// failed probe stays failed for the session — except that garbage
	// melting away can turn a blocked pair symmetric, which the cache
	// (conservatively) ignores. arcCnt/arcStamp are the probe's
	// lower-variable arc counters, epoch-stamped so probes reuse them
	// without clearing.
	symNeg   []uint64
	arcCnt   []int32
	arcStamp []int32
	arcEpoch int32

	swaps      int
	interSkips int // crossings taken as pure order-map relabels (fast-path swaps and MoveBlock spans)
	lbAborts   int // sift directions cut short by the lower bound (driver-counted)
	symPairs   int // symmetric pairs glued into blocks (driver-counted)
	before     int
	start      time.Time
}

// StartReorder opens a reordering session. It panics if one is already
// active. All ordinary operations (mk-based construction, Apply, GC, …)
// are forbidden until Close; Refs protected per the GC contract remain
// valid across the session and keep their functions. In parallel mode
// the session holds the stop-the-world lock until Close.
func (m *Manager) StartReorder() *ReorderSession {
	if m.par {
		m.stw.Lock()
	}
	if m.session != nil {
		panic("bdd: StartReorder with a reorder session already active")
	}
	// Freeze a coherent Statistics snapshot before the session starts
	// rewriting the arena; Stats() serves it until Close.
	m.statsSnap = m.statsNow()
	if sc := m.Telemetry(); sc != nil {
		sc.Emit("bdd.reorder_start", telemetry.Int("live", m.Size()))
	}
	// Parallel free-list pops consume the tail without shrinking the
	// slice; re-establish len(m.free) == freeLen for the session, which
	// mutates the list with plain appends and pops.
	m.free = m.free[:m.freeLen.Load()]
	alloc := int(m.nodeCap.Load())
	s := &ReorderSession{
		m:       m,
		start:   time.Now(),
		before:  m.Size(),
		ref:     make([]int32, alloc),
		pos:     make([]int32, alloc),
		free:    make([]uint64, (alloc+63)/64),
		tainted: make([]uint64, (alloc+63)/64),
		bucket:  make([][]Ref, m.numVars),
		// Size the map by the live count, not the arena: after the GC a
		// sifting driver runs first, live is typically a small fraction
		// of alloc, and map presizing is O(capacity).
		uniq: make(map[node]Ref, m.Size()+m.Size()/4),
	}
	for _, f := range m.free {
		s.free[f>>6] |= 1 << (uint(f) & 63)
	}
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if s.isFree(r) {
			continue
		}
		n := *m.node(r)
		s.ref[i] += *m.rcPtr(r)
		s.ref[n.low]++
		s.ref[regular(n.high)]++
		s.uniq[n] = r
		s.addToBucket(r, int(n.varID))
	}
	s.buildInteractions(alloc)
	s.useInter = true
	m.session = s
	m.inSession.Store(true)
	return s
}

// buildInteractions computes the interaction matrix. Every allocated
// node is reachable from some parentless top (the parent relation is a
// finite DAG), so walking the support of each node whose session ref
// count equals its external count — no allocated parent — covers
// protected roots and garbage alike.
func (s *ReorderSession) buildInteractions(alloc int) {
	m := s.m
	nv := m.numVars
	s.imatW = (nv + 63) / 64
	s.imat = make([]uint64, nv*s.imatW)
	visited := make([]int32, alloc) // epoch stamps: one DFS per top, no clearing
	varSeen := make([]int32, nv)
	mask := make([]uint64, s.imatW)
	var stack []Ref
	var support []int32
	epoch := int32(0)
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if s.isFree(r) || s.ref[i] != *m.rcPtr(r) {
			continue
		}
		epoch++
		support = support[:0]
		visited[r] = epoch
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := *m.node(f)
			if v := n.varID; varSeen[v] != epoch {
				varSeen[v] = epoch
				support = append(support, v)
			}
			for _, ch := range [2]Ref{n.low, regular(n.high)} {
				if ch != 0 && visited[ch] != epoch {
					visited[ch] = epoch
					stack = append(stack, ch)
				}
			}
		}
		if len(support) < 2 {
			continue
		}
		for j := range mask {
			mask[j] = 0
		}
		for _, v := range support {
			mask[v>>6] |= 1 << (uint(v) & 63)
		}
		for _, v := range support {
			row := s.imat[int(v)*s.imatW : (int(v)+1)*s.imatW]
			for j, w := range mask {
				row[j] |= w
			}
		}
	}
}

func (s *ReorderSession) interacts(u, v int) bool {
	return s.imat[u*s.imatW+(v>>6)]&(1<<(uint(v)&63)) != 0
}

// Interacts reports whether variables u and v co-occur in the support
// of any live function (the interaction matrix frozen at StartReorder).
func (s *ReorderSession) Interacts(u, v int) bool { return s.interacts(u, v) }

// SetInteractionFastPath toggles the non-interacting relabel fast path
// in Swap; it exists so ablation runs can measure the full-cost swap.
func (s *ReorderSession) SetInteractionFastPath(on bool) { s.useInter = on }

// InteractionSkips returns the number of swaps taken as pure relabels.
func (s *ReorderSession) InteractionSkips() int { return s.interSkips }

// NoteLowerBoundAbort records a sift direction cut short by the
// lower-bound estimate; LowerBoundAborts reads the tally. The search
// strategy lives in internal/reorder, the counter here so Close can
// fold it into the manager statistics with the rest.
func (s *ReorderSession) NoteLowerBoundAbort() { s.lbAborts++ }

// LowerBoundAborts returns the recorded lower-bound aborts.
func (s *ReorderSession) LowerBoundAborts() int { return s.lbAborts }

// NoteSymmetricPair records a variable pair glued into a symmetry
// block; SymmetricPairs reads the tally.
func (s *ReorderSession) NoteSymmetricPair() { s.symPairs++ }

// SymmetricPairs returns the recorded symmetric-pair detections.
func (s *ReorderSession) SymmetricPairs() int { return s.symPairs }

// Swap exchanges the variables at level and level+1, rewriting the
// affected nodes in place.
func (s *ReorderSession) Swap(level int) { s.m.swapLevels(s, level) }

// Swaps returns the number of adjacent-level swaps performed so far.
func (s *ReorderSession) Swaps() int { return s.swaps }

// LevelSize returns the number of nodes currently stored at the given
// level (the per-level population sifting minimizes). A variable
// occupies exactly one level, so this is its bucket's length.
func (s *ReorderSession) LevelSize(level int) int {
	return len(s.bucket[s.m.level2var[level]])
}

// Manager returns the manager this session reorders.
func (s *ReorderSession) Manager() *Manager { return s.m }

// swapLevels is the kernel swap primitive. When the two variables do
// not interact the swap is the O(1) fast path: exchanging the two
// order-map entries moves both whole populations at once, because nodes
// store variable IDs and read their level through var2level — no node
// is touched, no bucket scanned. Otherwise the Rudell exchange runs,
// reduced by ID-labeling to a single pass over the upper variable's
// bucket:
//
//  1. a u-node with no v-child keeps its triple verbatim — its level
//     changes implicitly with the final order-map update;
//  2. a u-node with a v-child is rewritten in place onto variable v,
//     its new cofactors built with swapMk (which shares or allocates
//     inner u-nodes). Old-child reference drops are recorded but not
//     settled — later rewrites in the same pass still read the old
//     children, so no slot may be freed or reused yet;
//  3. the recorded drops are settled: nodes left with no external
//     reference and no parent are released (cascading).
//
// v-nodes are never visited: a live one keeps its triple and moves up
// implicitly with the maps, a dead one is exactly a recorded drop
// settled in step 3.
func (m *Manager) swapLevels(s *ReorderSession, level int) {
	if m.session != s {
		panic("bdd: Swap on an inactive reorder session")
	}
	if level < 0 || level+1 >= m.numVars {
		panic(fmt.Sprintf("bdd: Swap(%d) out of range [0,%d)", level, m.numVars-1))
	}
	l := int32(level)
	lv1 := l + 1
	u, v := m.level2var[l], m.level2var[lv1]

	if s.useInter && !s.interacts(int(u), int(v)) {
		m.level2var[l], m.level2var[lv1] = v, u
		m.var2level[u], m.var2level[v] = lv1, l
		s.swaps++
		s.interSkips++
		return
	}

	s.sa = append(s.sa[:0], s.bucket[u]...)
	dead := s.inter[:0]
	for _, f := range s.sa {
		np := m.node(f)
		n := *np
		f0, f1 := n.low, n.high
		r1, c := regular(f1), f1&compBit
		d0 := m.node(f0).varID == v
		d1 := m.node(r1).varID == v
		if !d0 && !d1 {
			continue // no v-child: triple unchanged, moves with the maps
		}
		var f00, f01 Ref
		if d0 {
			b := *m.node(f0)
			f00, f01 = b.low, b.high
		} else {
			f00, f01 = f0, f0
		}
		var f10, f11 Ref
		if d1 {
			b := *m.node(r1)
			f10, f11 = b.low^c, b.high^c
		} else {
			f10, f11 = f1, f1
		}
		g0 := s.swapMk(u, f00, f10)
		g1 := s.swapMk(u, f01, f11)
		s.ref[regular(g0)]++
		s.ref[regular(g1)]++
		if s.uniq[n] == f {
			delete(s.uniq, n)
		}
		*np = node{varID: v, low: g0, high: g1}
		s.uniq[*np] = f
		s.removeFromBucket(f, int(u))
		s.addToBucket(f, int(v))
		if s.ref[f0]--; s.ref[f0] == 0 && f0 != 0 {
			dead = append(dead, f0)
		}
		if s.ref[r1]--; s.ref[r1] == 0 && r1 != 0 {
			dead = append(dead, r1)
		}
	}
	// Settle the drops. A candidate may have been re-referenced by a
	// later rewrite (as a shared cofactor) or already released through
	// an earlier candidate's cascade — both are skipped.
	for _, g := range dead {
		if s.ref[g] == 0 && !s.isFree(g) {
			s.release(g)
		}
	}
	s.inter = dead[:0]
	m.level2var[l], m.level2var[lv1] = v, u
	m.var2level[u], m.var2level[v] = lv1, l
	s.swaps++
}

// MoveBlock moves the block of width adjacent levels starting at level
// across span further levels — downward past the next span levels for
// span > 0, upward for span < 0 — in one order-map rotation, provided
// no crossed variable interacts with any block variable (it panics
// otherwise; callers gate on Interacts). Because nodes store variable
// IDs, nothing but the two order maps is touched, and every function is
// preserved exactly as if the width×|span| adjacent swaps had run; the
// session counts those avoided swaps as interaction skips. This is what
// lets the sifting driver cross a whole span of unrelated variables in
// O(span) instead of O(span × population).
func (s *ReorderSession) MoveBlock(level, width, span int) {
	m := s.m
	if m.session != s {
		panic("bdd: MoveBlock on an inactive reorder session")
	}
	if span == 0 || width == 0 {
		return
	}
	lo, hi := level, level+width+span // rotation window [lo, hi)
	if span < 0 {
		lo, hi = level+span, level+width
	}
	if lo < 0 || hi > m.numVars {
		panic(fmt.Sprintf("bdd: MoveBlock(%d,%d,%d) out of range [0,%d)", level, width, span, m.numVars))
	}
	for bl := level; bl < level+width; bl++ {
		b := int(m.level2var[bl])
		for k := lo; k < hi; k++ {
			if k >= level && k < level+width {
				continue
			}
			if s.interacts(b, int(m.level2var[k])) {
				panic("bdd: MoveBlock across an interacting variable")
			}
		}
	}
	s.rot = append(s.rot[:0], m.level2var[level:level+width]...)
	if span > 0 {
		copy(m.level2var[level:], m.level2var[level+width:level+width+span])
		copy(m.level2var[level+span:level+span+width], s.rot)
	} else {
		copy(m.level2var[level+span+width:level+width], m.level2var[level+span:level])
		copy(m.level2var[level+span:level+span+width], s.rot)
	}
	for k := lo; k < hi; k++ {
		m.var2level[m.level2var[k]] = int32(k)
	}
	if span < 0 {
		span = -span
	}
	s.interSkips += width * span
}

// swapMk is the session's mk: reduction, canonical-low re-rooting, and
// find-or-allocate against the session index. low is a cofactor of a
// stored node, so it is regular unless it inherited a pushed-down
// complement mark from a complemented high edge.
func (s *ReorderSession) swapMk(varID int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if isComp(low) {
		return neg(s.swapMkNode(varID, neg(low), neg(high)))
	}
	return s.swapMkNode(varID, low, high)
}

func (s *ReorderSession) swapMkNode(varID int32, low, high Ref) Ref {
	m := s.m
	key := node{varID: varID, low: low, high: high}
	if r, ok := s.uniq[key]; ok {
		return r
	}
	var r Ref
	if len(m.free) > 0 {
		r = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.freeLen.Store(int64(len(m.free)))
		s.free[r>>6] &^= 1 << (uint(r) & 63) // taint, if set, stays set
		*m.node(r) = key
		*m.rcPtr(r) = 0
		s.ref[r] = 0
	} else {
		i := m.nodeCap.Add(1) - 1
		m.ensureChunk(i)
		r = Ref(i)
		*m.node(r) = key
		s.ref = append(s.ref, 0)
		s.pos = append(s.pos, 0)
		for len(s.free)*64 < int(i)+1 {
			s.free = append(s.free, 0)
			s.tainted = append(s.tainted, 0)
		}
		maxStore(&m.peakNodes, i+1)
	}
	s.ref[low]++
	s.ref[regular(high)]++
	s.uniq[key] = r
	s.addToBucket(r, int(varID))
	maxStore(&m.peakLive, int64(m.Size()))
	return r
}

// ProbeSymmetry reports whether the variable at level and the one at
// level+1 are positively symmetric in every live function: exchanging
// the two leaves every function unchanged. The check is the classic
// structural one on the two populations. Writing u for the upper and v
// for the lower variable, every real u-node f must satisfy f01 == f10
// (its "u=0,v=1" and "u=1,v=0" cofactors agree), and every v-node must
// be referenced only from the u level — an external reference or a
// parent above u means some function sees v without passing through u
// and cannot be u,v-symmetric. The projection node of each variable is
// infrastructure, not a function — NewVar pins one per variable forever
// — so u's is skipped in the scan and v's expected reference count is
// discounted by its permanent pin. A false positive is impossible for
// protected functions; gluing is only a heuristic hint anyway, since
// block moves preserve all functions regardless.
func (s *ReorderSession) ProbeSymmetry(level int) bool {
	m := s.m
	if level < 0 || level+1 >= m.numVars {
		return false
	}
	u, v := m.level2var[level], m.level2var[level+1]
	if s.symNeg == nil {
		s.symNeg = make([]uint64, m.numVars*s.imatW)
	}
	if s.symNeg[int(u)*s.imatW+int(v)>>6]&(1<<(uint(v)&63)) != 0 {
		return false
	}
	if s.probePair(u, v) {
		return true
	}
	s.symNeg[int(u)*s.imatW+int(v)>>6] |= 1 << (uint(v) & 63)
	s.symNeg[int(v)*s.imatW+int(u)>>6] |= 1 << (uint(u) & 63)
	return false
}

// probePair runs the structural check with u adjacent above v.
func (s *ReorderSession) probePair(u, v int32) bool {
	m := s.m
	if len(s.arcStamp) < len(s.ref) {
		s.arcCnt = make([]int32, len(s.ref))
		s.arcStamp = make([]int32, len(s.ref))
		s.arcEpoch = 0
	}
	s.arcEpoch++
	ep := s.arcEpoch
	real := false
	for _, f := range s.bucket[u] {
		n := *m.node(f)
		if n.low == False && n.high == True {
			continue // projection node of the upper variable
		}
		real = true
		f0 := n.low
		r1, c := regular(n.high), n.high&compBit
		f01, f10 := f0, n.high
		if m.node(f0).varID == v {
			f01 = m.node(f0).high
			if s.arcStamp[f0] != ep {
				s.arcStamp[f0], s.arcCnt[f0] = ep, 0
			}
			s.arcCnt[f0]++
		}
		if m.node(r1).varID == v {
			f10 = m.node(r1).low ^ c
			if s.arcStamp[r1] != ep {
				s.arcStamp[r1], s.arcCnt[r1] = ep, 0
			}
			s.arcCnt[r1]++
		}
		if f01 != f10 {
			return false
		}
	}
	if !real {
		return false
	}
	for _, g := range s.bucket[v] {
		n := *m.node(g)
		want := s.ref[g]
		if n.low == False && n.high == True {
			want-- // the projection node's permanent NewVar pin
		}
		got := int32(0)
		if s.arcStamp[g] == ep {
			got = s.arcCnt[g]
		}
		if got != want {
			return false
		}
	}
	return true
}

// release frees a node whose last reason to live is gone, cascading to
// children left with no external reference and no parent.
func (s *ReorderSession) release(g Ref) {
	m := s.m
	stack := append(s.relStack[:0], g)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := *m.node(r)
		if s.uniq[n] == r {
			delete(s.uniq, n)
		}
		s.removeFromBucket(r, int(n.varID))
		s.free[r>>6] |= 1 << (uint(r) & 63)
		s.tainted[r>>6] |= 1 << (uint(r) & 63)
		m.free = append(m.free, r)
		m.freeLen.Store(int64(len(m.free)))
		for _, ch := range [2]Ref{n.low, regular(n.high)} {
			if ch == 0 {
				continue
			}
			if s.ref[ch]--; s.ref[ch] == 0 {
				stack = append(stack, ch)
			}
		}
	}
	s.relStack = stack[:0]
}

// Close ends the session: it rebuilds the sharded unique table for the
// new order, sweeps operation-cache entries that name a slot freed
// during the session, and records the reorder statistics. The manager is
// fully operational again afterwards.
func (s *ReorderSession) Close() {
	m := s.m
	if m.session != s {
		panic("bdd: Close on an inactive reorder session")
	}
	m.session = nil
	for i := range m.shards {
		sh := &m.shards[i]
		clear(sh.slots)
		sh.count = 0
	}
	alloc := int(m.nodeCap.Load())
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if !s.isFree(r) {
			m.tableInsert(r)
		}
	}
	m.freeLen.Store(int64(len(m.free)))
	m.sweepCachesTainted(s.tainted)
	m.statReorders++
	m.statReorderSwaps += uint64(s.swaps)
	m.statInterSkips += uint64(s.interSkips)
	m.statLBAborts += uint64(s.lbAborts)
	m.statSymPairs += s.symPairs
	m.statReorderTime += time.Since(s.start)
	m.reorderBefore = s.before
	m.reorderAfter = m.Size()
	if sc := m.Telemetry(); sc != nil {
		sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
		sc.EmitElapsed("bdd.reorder_end", time.Since(s.start),
			telemetry.Int("swaps", s.swaps),
			telemetry.Int("inter_skips", s.interSkips),
			telemetry.Int("lb_aborts", s.lbAborts),
			telemetry.Int("sym_pairs", s.symPairs),
			telemetry.Int("before", s.before),
			telemetry.Int("after", m.Size()))
	}
	m.inSession.Store(false)
	if m.par {
		m.stw.Unlock()
	}
}

func (s *ReorderSession) isFree(r Ref) bool {
	return s.free[r>>6]&(1<<(uint(r)&63)) != 0
}

func (s *ReorderSession) addToBucket(r Ref, v int) {
	s.bucket[v] = append(s.bucket[v], r)
	s.pos[r] = int32(len(s.bucket[v]) - 1)
}

func (s *ReorderSession) removeFromBucket(r Ref, v int) {
	b := s.bucket[v]
	i := s.pos[r]
	last := b[len(b)-1]
	b[i] = last
	s.pos[last] = i
	s.bucket[v] = b[:len(b)-1]
}

// sweepCachesTainted drops every operation-cache entry mentioning a slot
// freed during a reorder session. Entries whose nodes all survived are
// function-keyed and stay correct under any permutation of levels, so
// they are kept. Slots already free when the session started cannot
// appear in any entry (the GC that freed them swept or cleared the
// caches), so the tainted set is exactly the invalid one.
func (m *Manager) sweepCachesTainted(tainted []uint64) {
	bad := func(f Ref) bool {
		i := regular(f)
		return tainted[i>>6]&(1<<(uint(i)&63)) != 0
	}
	for i := range m.ite {
		e := &m.ite[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.h) || bad(e.res)) {
			*e = iteEntry{}
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.res)) {
			*e = binopEntry{}
		}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f != 0 && (bad(e.f) || bad(e.cube) || bad(e.res)) {
			*e = quantEntry{}
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.cube) || bad(e.res)) {
			*e = aexEntry{}
		}
	}
}

// GroupVars registers the given variable IDs as one atomic reordering
// block: sifting moves them together, preserving their relative order.
// This is how MDD log-encoded value bits and interleaved present/next
// state pairs stay adjacent — the Permute-based rail swap is keyed on
// variable IDs and stays *correct* under any order, but block sifting
// keeps the orders that make it *cheap*. Registrations sharing a
// variable merge into one block; IDs are kept sorted and deduplicated.
func (m *Manager) GroupVars(vars []int) {
	if len(vars) < 2 {
		return
	}
	// A concurrent reorder session reads m.groups through VarGroups
	// while holding the stop-the-world lock, so registration takes it
	// exclusively (registration is cold: variable-creation time, plus
	// symmetric-pair glues during sifting). During a session the caller
	// IS the session's orchestrator and already holds the lock.
	if m.par && m.session == nil {
		m.stw.Lock()
		defer m.stw.Unlock()
	}
	merged := append([]int(nil), vars...)
	for _, v := range merged {
		if v < 0 || v >= m.numVars {
			panic(fmt.Sprintf("bdd: GroupVars: variable %d out of range [0,%d)", v, m.numVars))
		}
	}
	in := make(map[int]bool, len(merged))
	for _, v := range merged {
		in[v] = true
	}
	kept := m.groups[:0]
	for _, g := range m.groups {
		overlap := false
		for _, v := range g {
			if in[v] {
				overlap = true
				break
			}
		}
		if !overlap {
			kept = append(kept, g)
			continue
		}
		for _, v := range g {
			if !in[v] {
				in[v] = true
				merged = append(merged, v)
			}
		}
	}
	sort.Ints(merged)
	m.groups = append(kept, merged)
}

// VarGroups returns the registered atomic reordering blocks. Callers
// must not mutate the result.
func (m *Manager) VarGroups() [][]int { return m.groups }

// SetReorderPolicy records the reordering mode. Setting ReorderOff or
// ReorderManual disarms any pending automatic trigger; ReorderAuto is
// normally installed through SetAutoReorder, which supplies the hook.
func (m *Manager) SetReorderPolicy(p ReorderPolicy) {
	m.reorderPolicy = p
	if p != ReorderAuto {
		m.reorderPending.Store(false)
		m.reorderAt.Store(0)
	} else if m.reorderFn != nil {
		m.armReorder()
	}
}

// GetReorderPolicy returns the recorded reordering mode.
func (m *Manager) GetReorderPolicy() ReorderPolicy { return m.reorderPolicy }

// SetAutoReorder installs fn as the automatic reordering hook and sets
// the policy to ReorderAuto: when live nodes exceed grow times the size
// at the last (re-)arming — but at least minNodes — the next safe point
// (MaybeReorder or MaybeGC) runs fn and re-arms the trigger. A nil fn
// reverts the policy to ReorderOff.
func (m *Manager) SetAutoReorder(grow float64, minNodes int, fn func(*Manager)) {
	m.reorderFn = fn
	m.reorderGrow = grow
	m.reorderMin = minNodes
	m.reorderPending.Store(false)
	if fn == nil {
		m.reorderPolicy = ReorderOff
		m.reorderAt.Store(0)
		return
	}
	m.reorderPolicy = ReorderAuto
	m.armReorder()
}

// SetReorderGrowth replaces the growth factor of the armed automatic
// trigger without touching the hook or the floor. The auto-sift hook's
// back-off policy calls it after an unproductive pass, before
// MaybeReorder re-arms the trigger, so the raised factor takes effect
// immediately; it has no effect until the next (re-)arming otherwise.
func (m *Manager) SetReorderGrowth(grow float64) {
	if grow > 1 {
		m.reorderGrow = grow
	}
}

func (m *Manager) armReorder() {
	at := int(m.reorderGrow * float64(m.Size()))
	if at < m.reorderMin {
		at = m.reorderMin
	}
	m.reorderAt.Store(int64(at))
}

// ReorderPending reports whether an automatic reorder is armed and due.
// Fixpoint loops test it before paying to protect their live Refs for a
// MaybeReorder call. Inside a ParallelDo section it reports false:
// sibling tasks hold unprotected Refs, so the safe point is deferred to
// the orchestrator.
func (m *Manager) ReorderPending() bool {
	return m.reorderPending.Load() && m.reorderFn != nil &&
		!m.inSession.Load() && m.sections.Load() == 0
}

// MaybeReorder runs the automatic reordering hook if its growth trigger
// has fired, then re-arms the trigger; it reports whether a reorder ran.
// This is a safe point with the same contract as GC: all Refs the caller
// needs afterwards must be protected by IncRef (their functions are
// preserved — unlike after a GC, protected Refs need no recomputation).
func (m *Manager) MaybeReorder() bool {
	if !m.ReorderPending() {
		return false
	}
	if !m.reorderPending.CompareAndSwap(true, false) {
		return false
	}
	m.reorderFn(m)
	m.armReorder()
	return true
}

// CheckInvariants validates the kernel's structural invariants —
// canonical-low edges, strictly increasing levels, no freed children or
// duplicate triples, exact unique-table membership, and no operation
// cache entry naming a freed slot. It exists for tests and debugging;
// it is O(nodes + cache entries). It takes no locks (the sift driver
// may call it mid-session), so in parallel mode run it only at
// quiescent points.
func (m *Manager) CheckInvariants() error {
	freeList := m.free[:m.freeLen.Load()]
	free := make(map[Ref]bool, len(freeList))
	for _, f := range freeList {
		if free[f] {
			return fmt.Errorf("slot %d appears twice on the free list", f)
		}
		free[f] = true
	}
	alloc := int(m.nodeCap.Load())
	seen := make(map[node]Ref, alloc)
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if free[r] {
			continue
		}
		n := *m.node(r)
		if isComp(n.low) {
			return fmt.Errorf("node %d has a complemented low edge", i)
		}
		if free[n.low] || free[regular(n.high)] {
			return fmt.Errorf("node %d has a freed child", i)
		}
		ln := m.nodeLevel(&n)
		if m.levelOf(n.low) <= ln || m.levelOf(regular(n.high)) <= ln {
			return fmt.Errorf("node %d (level %d) has a child at level <= its own", i, ln)
		}
		if prev, dup := seen[n]; dup {
			return fmt.Errorf("nodes %d and %d store the same triple", prev, i)
		}
		seen[n] = r
		if m.session == nil {
			h := hash3(uint64(n.varID), uint64(n.low), uint64(n.high))
			sh := &m.shards[h>>(64-shardBits)]
			hh := h & sh.mask
			for {
				idx := sh.slots[hh]
				if idx == 0 {
					return fmt.Errorf("node %d missing from the unique table", i)
				}
				if Ref(idx-1) == r {
					break
				}
				hh = (hh + 1) & sh.mask
			}
		}
	}
	bad := func(f Ref) bool { return free[regular(f)] }
	for i := range m.ite {
		e := &m.ite[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.h) || bad(e.res)) {
			return fmt.Errorf("ite cache entry names a freed slot")
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.res)) {
			return fmt.Errorf("binop cache entry names a freed slot")
		}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f != 0 && (bad(e.f) || bad(e.cube) || bad(e.res)) {
			return fmt.Errorf("quant cache entry names a freed slot")
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.cube) || bad(e.res)) {
			return fmt.Errorf("andexists cache entry names a freed slot")
		}
	}
	return nil
}

// PeakLive returns the largest live node count observed (allocated minus
// free at each allocation), the number dynamic reordering exists to
// shrink.
func (m *Manager) PeakLive() int { return int(m.peakLive.Load()) }

// ReorderCount returns the number of completed reorder sessions. Plan
// caches (the network's compiled quantification schedules) stamp
// themselves with it and recompile when it moves, so a sift never
// leaves a schedule tuned for the dead variable order in service.
func (m *Manager) ReorderCount() int { return m.statReorders }

// ResetPeaks restarts peak tracking from the current state, so a
// measurement can isolate one phase.
func (m *Manager) ResetPeaks() {
	m.peakNodes.Store(m.nodeCap.Load())
	m.peakLive.Store(int64(m.Size()))
}
