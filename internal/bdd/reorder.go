package bdd

// Dynamic variable reordering: the kernel half of the sifting subsystem
// (the search strategy lives in internal/reorder). A ReorderSession
// exposes the one primitive reordering needs — swapping two adjacent
// levels in place — while keeping every Ref that is protected by IncRef
// (directly or transitively) valid and denoting the same Boolean
// function. The contract is exactly the GC contract: starting a session
// may reclaim nodes no protected root reaches, so callers protect what
// they hold, and in exchange never need to translate a single Ref.
//
// The swap itself is the classic Rudell in-place exchange adapted to
// complement edges. Writing u for the variable at level l and v for the
// one at l+1, a node f = (u, F0, F1) whose cofactors depend on v is
// rewritten in place as f = (v, G0, G1) with G0 = (u, F00, F10) and
// G1 = (u, F01, F11): the stored slot keeps its index (so parents and
// external Refs are untouched) while the node it holds changes level.
// Complement edges add two wrinkles. First, cofactoring F1 through a
// complemented high edge pushes the mark onto F1's children (F10, F11
// pick up the mark). Second, the canonical low-edge-never-complemented
// rule must be re-established for the new inner nodes: G0 inherits F00,
// which is a stored low edge and hence always regular, so the rewritten
// node itself is safe, but G1's low edge F01 is a stored *high* edge and
// may carry the mark — swapMk re-roots exactly like mk does, returning
// the complement of the flipped twin.
//
// During a session the unique table is stale (Close rebuilds it), so no
// mk/mkNode may run; the session keeps its own exact (level, low, high)
// index instead. Per-level node populations are maintained incrementally
// in bucket lists, which doubles as the level-size signal sifting uses.
// Operation caches are function-keyed, so surviving entries stay
// semantically correct across swaps; the only invalid entries are those
// naming a slot freed during the session (possibly since reused), which
// Close sweeps out via a sticky "tainted" bitmap.
//
// In parallel mode a session is a stop-the-world epoch: StartReorder
// takes the write side of the epoch lock and Close releases it, so the
// sifting invariants above are untouched by worker concurrency — every
// operation is excluded for the whole session. The sift driver itself
// runs on the orchestrating goroutine and uses only session methods,
// Size() and Stats(), all of which stay lock-free.

import (
	"fmt"
	"sort"
	"time"

	"hsis/internal/telemetry"
)

// ReorderPolicy names the dynamic-reordering modes the CLIs surface as
// -reorder: no reordering at all, reordering only on explicit request,
// or growth-triggered automatic sifting.
type ReorderPolicy int

const (
	ReorderOff ReorderPolicy = iota
	ReorderManual
	ReorderAuto
)

func (p ReorderPolicy) String() string {
	switch p {
	case ReorderManual:
		return "manual"
	case ReorderAuto:
		return "auto"
	default:
		return "off"
	}
}

// ReorderSession is an open reordering transaction on a Manager. Between
// StartReorder and Close only session methods may touch the manager (no
// BDD operations), and the GC protection contract applies to the whole
// session: Refs not reachable from an IncRef'd root may be reclaimed.
type ReorderSession struct {
	m *Manager

	// ref[i] counts why slot i must stay: its external references plus
	// one per allocated parent node (dead parents included — a node is
	// only reclaimed when the session itself severs its last edge, which
	// is how unprotected garbage melts away as its levels are swapped).
	ref []int32

	// bucket[l] lists exactly the slots stored at level l; pos[i] is
	// slot i's index within its bucket (swap-remove bookkeeping).
	bucket [][]Ref
	pos    []int32

	// uniq replaces the (stale) open-addressing unique table for the
	// duration of the session.
	uniq map[node]Ref

	free    []uint64 // slots currently on the free list
	tainted []uint64 // slots freed at any point during the session (sticky across reuse)

	relStack []Ref
	sa, sb   []Ref // per-swap bucket snapshots, reused across swaps
	inter    []Ref

	swaps  int
	before int
	start  time.Time
}

// StartReorder opens a reordering session. It panics if one is already
// active. All ordinary operations (mk-based construction, Apply, GC, …)
// are forbidden until Close; Refs protected per the GC contract remain
// valid across the session and keep their functions. In parallel mode
// the session holds the stop-the-world lock until Close.
func (m *Manager) StartReorder() *ReorderSession {
	if m.par {
		m.stw.Lock()
	}
	if m.session != nil {
		panic("bdd: StartReorder with a reorder session already active")
	}
	// Freeze a coherent Statistics snapshot before the session starts
	// rewriting the arena; Stats() serves it until Close.
	m.statsSnap = m.statsNow()
	if t := telemetry.T(); t != nil {
		t.Emit("bdd.reorder_start", telemetry.Int("live", m.Size()))
	}
	// Parallel free-list pops consume the tail without shrinking the
	// slice; re-establish len(m.free) == freeLen for the session, which
	// mutates the list with plain appends and pops.
	m.free = m.free[:m.freeLen.Load()]
	alloc := int(m.nodeCap.Load())
	s := &ReorderSession{
		m:       m,
		start:   time.Now(),
		before:  m.Size(),
		ref:     make([]int32, alloc),
		pos:     make([]int32, alloc),
		free:    make([]uint64, (alloc+63)/64),
		tainted: make([]uint64, (alloc+63)/64),
		bucket:  make([][]Ref, m.numVars),
		uniq:    make(map[node]Ref, alloc),
	}
	for _, f := range m.free {
		s.free[f>>6] |= 1 << (uint(f) & 63)
	}
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if s.isFree(r) {
			continue
		}
		n := *m.node(r)
		s.ref[i] += *m.rcPtr(r)
		s.ref[n.low]++
		s.ref[regular(n.high)]++
		s.uniq[n] = r
		s.addToBucket(r, int(n.level))
	}
	m.session = s
	m.inSession.Store(true)
	return s
}

// Swap exchanges the variables at level and level+1, rewriting the
// affected nodes in place.
func (s *ReorderSession) Swap(level int) { s.m.swapLevels(s, level) }

// Swaps returns the number of adjacent-level swaps performed so far.
func (s *ReorderSession) Swaps() int { return s.swaps }

// LevelSize returns the number of nodes currently stored at the given
// level (the per-level population sifting minimizes).
func (s *ReorderSession) LevelSize(level int) int { return len(s.bucket[level]) }

// Manager returns the manager this session reorders.
func (s *ReorderSession) Manager() *Manager { return s.m }

// swapLevels is the kernel swap primitive. Phases:
//
//  0. unindex every old level-(l+1) node — their keys are about to be
//     reused by rewritten nodes and must not satisfy lookups;
//  1. relabel level-l nodes independent of the level-(l+1) variable
//     (both children below l+1): only their level field changes;
//  2. rewrite each interacting level-l node in place onto the
//     level-(l+1) variable, building its new cofactors with swapMk
//     (which shares or allocates inner level-(l+1) nodes). Edge
//     accounting is numeric only; no slot is freed yet, because later
//     rewrites in the same phase still read the old children;
//  3. relabel the old level-(l+1) nodes that retained a reason to live
//     down to level l, and release the rest (cascading to children
//     whose last edge this severs).
func (m *Manager) swapLevels(s *ReorderSession, level int) {
	if m.session != s {
		panic("bdd: Swap on an inactive reorder session")
	}
	if level < 0 || level+1 >= m.numVars {
		panic(fmt.Sprintf("bdd: Swap(%d) out of range [0,%d)", level, m.numVars-1))
	}
	l := int32(level)
	lv1 := l + 1
	s.sa = append(s.sa[:0], s.bucket[l]...)
	s.sb = append(s.sb[:0], s.bucket[lv1]...)

	// Phase 0.
	for _, g := range s.sb {
		n := *m.node(g)
		if s.uniq[n] == g {
			delete(s.uniq, n)
		}
	}

	// Phase 1.
	s.inter = s.inter[:0]
	for _, f := range s.sa {
		np := m.node(f)
		n := *np
		if m.levelOf(n.low) == lv1 || m.levelOf(regular(n.high)) == lv1 {
			s.inter = append(s.inter, f)
			continue
		}
		delete(s.uniq, n)
		s.removeFromBucket(f, int(l))
		n.level = lv1
		*np = n
		s.uniq[n] = f
		s.addToBucket(f, int(lv1))
	}

	// Phase 2.
	for _, f := range s.inter {
		np := m.node(f)
		n := *np
		f0, f1 := n.low, n.high
		var f00, f01 Ref
		if m.levelOf(f0) == lv1 {
			b := *m.node(f0)
			f00, f01 = b.low, b.high
		} else {
			f00, f01 = f0, f0
		}
		r1, c := regular(f1), f1&compBit
		var f10, f11 Ref
		if m.levelOf(r1) == lv1 {
			b := *m.node(r1)
			f10, f11 = b.low^c, b.high^c
		} else {
			f10, f11 = f1, f1
		}
		g0 := s.swapMk(lv1, f00, f10)
		g1 := s.swapMk(lv1, f01, f11)
		s.ref[regular(g0)]++
		s.ref[regular(g1)]++
		s.ref[f0]--
		s.ref[r1]--
		if s.uniq[n] == f {
			delete(s.uniq, n)
		}
		n = node{level: l, low: g0, high: g1}
		*m.node(f) = n
		s.uniq[n] = f
	}

	// Phase 3.
	for _, g := range s.sb {
		if s.ref[g] > 0 {
			s.removeFromBucket(g, int(lv1))
			np := m.node(g)
			n := *np
			n.level = l
			*np = n
			s.uniq[n] = g
			s.addToBucket(g, int(l))
		} else {
			s.release(g)
		}
	}

	u, v := m.level2var[l], m.level2var[lv1]
	m.level2var[l], m.level2var[lv1] = v, u
	m.var2level[u], m.var2level[v] = lv1, l
	s.swaps++
}

// swapMk is the session's mk: reduction, canonical-low re-rooting, and
// find-or-allocate against the session index. low is a cofactor of a
// stored node, so it is regular unless it inherited a pushed-down
// complement mark from a complemented high edge.
func (s *ReorderSession) swapMk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if isComp(low) {
		return neg(s.swapMkNode(level, neg(low), neg(high)))
	}
	return s.swapMkNode(level, low, high)
}

func (s *ReorderSession) swapMkNode(level int32, low, high Ref) Ref {
	m := s.m
	key := node{level: level, low: low, high: high}
	if r, ok := s.uniq[key]; ok {
		return r
	}
	var r Ref
	if len(m.free) > 0 {
		r = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.freeLen.Store(int64(len(m.free)))
		s.free[r>>6] &^= 1 << (uint(r) & 63) // taint, if set, stays set
		*m.node(r) = key
		*m.rcPtr(r) = 0
		s.ref[r] = 0
	} else {
		i := m.nodeCap.Add(1) - 1
		m.ensureChunk(i)
		r = Ref(i)
		*m.node(r) = key
		s.ref = append(s.ref, 0)
		s.pos = append(s.pos, 0)
		for len(s.free)*64 < int(i)+1 {
			s.free = append(s.free, 0)
			s.tainted = append(s.tainted, 0)
		}
		maxStore(&m.peakNodes, i+1)
	}
	s.ref[low]++
	s.ref[regular(high)]++
	s.uniq[key] = r
	s.addToBucket(r, int(level))
	maxStore(&m.peakLive, int64(m.Size()))
	return r
}

// release frees a node whose last reason to live is gone, cascading to
// children left with no external reference and no parent.
func (s *ReorderSession) release(g Ref) {
	m := s.m
	stack := append(s.relStack[:0], g)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := *m.node(r)
		if s.uniq[n] == r {
			delete(s.uniq, n)
		}
		s.removeFromBucket(r, int(n.level))
		s.free[r>>6] |= 1 << (uint(r) & 63)
		s.tainted[r>>6] |= 1 << (uint(r) & 63)
		m.free = append(m.free, r)
		m.freeLen.Store(int64(len(m.free)))
		for _, ch := range [2]Ref{n.low, regular(n.high)} {
			if ch == 0 {
				continue
			}
			if s.ref[ch]--; s.ref[ch] == 0 {
				stack = append(stack, ch)
			}
		}
	}
	s.relStack = stack[:0]
}

// Close ends the session: it rebuilds the sharded unique table for the
// new order, sweeps operation-cache entries that name a slot freed
// during the session, and records the reorder statistics. The manager is
// fully operational again afterwards.
func (s *ReorderSession) Close() {
	m := s.m
	if m.session != s {
		panic("bdd: Close on an inactive reorder session")
	}
	m.session = nil
	for i := range m.shards {
		sh := &m.shards[i]
		clear(sh.slots)
		sh.count = 0
	}
	alloc := int(m.nodeCap.Load())
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if !s.isFree(r) {
			m.tableInsert(r)
		}
	}
	m.freeLen.Store(int64(len(m.free)))
	m.sweepCachesTainted(s.tainted)
	m.statReorders++
	m.statReorderSwaps += uint64(s.swaps)
	m.statReorderTime += time.Since(s.start)
	m.reorderBefore = s.before
	m.reorderAfter = m.Size()
	if t := telemetry.T(); t != nil {
		telemetry.PublishNodes(m.Size(), int(m.peakLive.Load()))
		t.Emit("bdd.reorder_end",
			telemetry.Int("swaps", s.swaps),
			telemetry.Int("before", s.before),
			telemetry.Int("after", m.Size()),
			telemetry.I64("elapsed_us", time.Since(s.start).Microseconds()))
	}
	m.inSession.Store(false)
	if m.par {
		m.stw.Unlock()
	}
}

func (s *ReorderSession) isFree(r Ref) bool {
	return s.free[r>>6]&(1<<(uint(r)&63)) != 0
}

func (s *ReorderSession) addToBucket(r Ref, level int) {
	s.bucket[level] = append(s.bucket[level], r)
	s.pos[r] = int32(len(s.bucket[level]) - 1)
}

func (s *ReorderSession) removeFromBucket(r Ref, level int) {
	b := s.bucket[level]
	i := s.pos[r]
	last := b[len(b)-1]
	b[i] = last
	s.pos[last] = i
	s.bucket[level] = b[:len(b)-1]
}

// sweepCachesTainted drops every operation-cache entry mentioning a slot
// freed during a reorder session. Entries whose nodes all survived are
// function-keyed and stay correct under any permutation of levels, so
// they are kept. Slots already free when the session started cannot
// appear in any entry (the GC that freed them swept or cleared the
// caches), so the tainted set is exactly the invalid one.
func (m *Manager) sweepCachesTainted(tainted []uint64) {
	bad := func(f Ref) bool {
		i := regular(f)
		return tainted[i>>6]&(1<<(uint(i)&63)) != 0
	}
	for i := range m.ite {
		e := &m.ite[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.h) || bad(e.res)) {
			*e = iteEntry{}
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.res)) {
			*e = binopEntry{}
		}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f != 0 && (bad(e.f) || bad(e.cube) || bad(e.res)) {
			*e = quantEntry{}
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.cube) || bad(e.res)) {
			*e = aexEntry{}
		}
	}
}

// GroupVars registers the given variable IDs as one atomic reordering
// block: sifting moves them together, preserving their relative order.
// This is how MDD log-encoded value bits and interleaved present/next
// state pairs stay adjacent — the Permute-based rail swap is keyed on
// variable IDs and stays *correct* under any order, but block sifting
// keeps the orders that make it *cheap*. Registrations sharing a
// variable merge into one block; IDs are kept sorted and deduplicated.
func (m *Manager) GroupVars(vars []int) {
	if len(vars) < 2 {
		return
	}
	// A concurrent reorder session reads m.groups through VarGroups
	// while holding the stop-the-world lock, so registration takes it
	// exclusively (registration is cold: variable-creation time only).
	if m.par {
		m.stw.Lock()
		defer m.stw.Unlock()
	}
	merged := append([]int(nil), vars...)
	for _, v := range merged {
		if v < 0 || v >= m.numVars {
			panic(fmt.Sprintf("bdd: GroupVars: variable %d out of range [0,%d)", v, m.numVars))
		}
	}
	in := make(map[int]bool, len(merged))
	for _, v := range merged {
		in[v] = true
	}
	kept := m.groups[:0]
	for _, g := range m.groups {
		overlap := false
		for _, v := range g {
			if in[v] {
				overlap = true
				break
			}
		}
		if !overlap {
			kept = append(kept, g)
			continue
		}
		for _, v := range g {
			if !in[v] {
				in[v] = true
				merged = append(merged, v)
			}
		}
	}
	sort.Ints(merged)
	m.groups = append(kept, merged)
}

// VarGroups returns the registered atomic reordering blocks. Callers
// must not mutate the result.
func (m *Manager) VarGroups() [][]int { return m.groups }

// SetReorderPolicy records the reordering mode. Setting ReorderOff or
// ReorderManual disarms any pending automatic trigger; ReorderAuto is
// normally installed through SetAutoReorder, which supplies the hook.
func (m *Manager) SetReorderPolicy(p ReorderPolicy) {
	m.reorderPolicy = p
	if p != ReorderAuto {
		m.reorderPending.Store(false)
		m.reorderAt.Store(0)
	} else if m.reorderFn != nil {
		m.armReorder()
	}
}

// GetReorderPolicy returns the recorded reordering mode.
func (m *Manager) GetReorderPolicy() ReorderPolicy { return m.reorderPolicy }

// SetAutoReorder installs fn as the automatic reordering hook and sets
// the policy to ReorderAuto: when live nodes exceed grow times the size
// at the last (re-)arming — but at least minNodes — the next safe point
// (MaybeReorder or MaybeGC) runs fn and re-arms the trigger. A nil fn
// reverts the policy to ReorderOff.
func (m *Manager) SetAutoReorder(grow float64, minNodes int, fn func(*Manager)) {
	m.reorderFn = fn
	m.reorderGrow = grow
	m.reorderMin = minNodes
	m.reorderPending.Store(false)
	if fn == nil {
		m.reorderPolicy = ReorderOff
		m.reorderAt.Store(0)
		return
	}
	m.reorderPolicy = ReorderAuto
	m.armReorder()
}

func (m *Manager) armReorder() {
	at := int(m.reorderGrow * float64(m.Size()))
	if at < m.reorderMin {
		at = m.reorderMin
	}
	m.reorderAt.Store(int64(at))
}

// ReorderPending reports whether an automatic reorder is armed and due.
// Fixpoint loops test it before paying to protect their live Refs for a
// MaybeReorder call. Inside a ParallelDo section it reports false:
// sibling tasks hold unprotected Refs, so the safe point is deferred to
// the orchestrator.
func (m *Manager) ReorderPending() bool {
	return m.reorderPending.Load() && m.reorderFn != nil &&
		!m.inSession.Load() && m.sections.Load() == 0
}

// MaybeReorder runs the automatic reordering hook if its growth trigger
// has fired, then re-arms the trigger; it reports whether a reorder ran.
// This is a safe point with the same contract as GC: all Refs the caller
// needs afterwards must be protected by IncRef (their functions are
// preserved — unlike after a GC, protected Refs need no recomputation).
func (m *Manager) MaybeReorder() bool {
	if !m.ReorderPending() {
		return false
	}
	if !m.reorderPending.CompareAndSwap(true, false) {
		return false
	}
	m.reorderFn(m)
	m.armReorder()
	return true
}

// CheckInvariants validates the kernel's structural invariants —
// canonical-low edges, strictly increasing levels, no freed children or
// duplicate triples, exact unique-table membership, and no operation
// cache entry naming a freed slot. It exists for tests and debugging;
// it is O(nodes + cache entries). It takes no locks (the sift driver
// may call it mid-session), so in parallel mode run it only at
// quiescent points.
func (m *Manager) CheckInvariants() error {
	freeList := m.free[:m.freeLen.Load()]
	free := make(map[Ref]bool, len(freeList))
	for _, f := range freeList {
		if free[f] {
			return fmt.Errorf("slot %d appears twice on the free list", f)
		}
		free[f] = true
	}
	alloc := int(m.nodeCap.Load())
	seen := make(map[node]Ref, alloc)
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if free[r] {
			continue
		}
		n := *m.node(r)
		if isComp(n.low) {
			return fmt.Errorf("node %d has a complemented low edge", i)
		}
		if free[n.low] || free[regular(n.high)] {
			return fmt.Errorf("node %d has a freed child", i)
		}
		if m.levelOf(n.low) <= n.level || m.levelOf(regular(n.high)) <= n.level {
			return fmt.Errorf("node %d (level %d) has a child at level <= its own", i, n.level)
		}
		if prev, dup := seen[n]; dup {
			return fmt.Errorf("nodes %d and %d store the same triple", prev, i)
		}
		seen[n] = r
		if m.session == nil {
			h := hash3(uint64(n.level), uint64(n.low), uint64(n.high))
			sh := &m.shards[h>>(64-shardBits)]
			hh := h & sh.mask
			for {
				idx := sh.slots[hh]
				if idx == 0 {
					return fmt.Errorf("node %d missing from the unique table", i)
				}
				if Ref(idx-1) == r {
					break
				}
				hh = (hh + 1) & sh.mask
			}
		}
	}
	bad := func(f Ref) bool { return free[regular(f)] }
	for i := range m.ite {
		e := &m.ite[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.h) || bad(e.res)) {
			return fmt.Errorf("ite cache entry names a freed slot")
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.res)) {
			return fmt.Errorf("binop cache entry names a freed slot")
		}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f != 0 && (bad(e.f) || bad(e.cube) || bad(e.res)) {
			return fmt.Errorf("quant cache entry names a freed slot")
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.cube) || bad(e.res)) {
			return fmt.Errorf("andexists cache entry names a freed slot")
		}
	}
	return nil
}

// PeakLive returns the largest live node count observed (allocated minus
// free at each allocation), the number dynamic reordering exists to
// shrink.
func (m *Manager) PeakLive() int { return int(m.peakLive.Load()) }

// ReorderCount returns the number of completed reorder sessions. Plan
// caches (the network's compiled quantification schedules) stamp
// themselves with it and recompile when it moves, so a sift never
// leaves a schedule tuned for the dead variable order in service.
func (m *Manager) ReorderCount() int { return m.statReorders }

// ResetPeaks restarts peak tracking from the current state, so a
// measurement can isolate one phase.
func (m *Manager) ResetPeaks() {
	m.peakNodes.Store(m.nodeCap.Load())
	m.peakLive.Store(int64(m.Size()))
}
