package bdd

// Dynamic variable reordering: the kernel half of the sifting subsystem
// (the search strategy lives in internal/reorder). A ReorderSession
// exposes the one primitive reordering needs — swapping two adjacent
// levels in place — while keeping every Ref that is protected by IncRef
// (directly or transitively) valid and denoting the same Boolean
// function. The contract is exactly the GC contract: starting a session
// may reclaim nodes no protected root reaches, so callers protect what
// they hold, and in exchange never need to translate a single Ref.
//
// The swap itself is the classic Rudell in-place exchange adapted to
// complement edges. Writing u for the variable at level l and v for the
// one at l+1, a node f = (u, F0, F1) whose cofactors depend on v is
// rewritten in place as f = (v, G0, G1) with G0 = (u, F00, F10) and
// G1 = (u, F01, F11): the stored slot keeps its index (so parents and
// external Refs are untouched) while the node it holds changes label.
// Complement edges add two wrinkles. First, cofactoring F1 through a
// complemented high edge pushes the mark onto F1's children (F10, F11
// pick up the mark). Second, the canonical low-edge-never-complemented
// rule must be re-established for the new inner nodes: G0 inherits F00,
// which is a stored low edge and hence always regular, so the rewritten
// node itself is safe, but G1's low edge F01 is a stored *high* edge and
// may carry the mark — swapMk re-roots exactly like mk does, returning
// the complement of the flipped twin.
//
// Nodes store variable IDs, not levels (see the node type), which is
// what makes swaps cheap. A u-node with no v-child keeps its triple
// verbatim and "moves" purely through the final order-map update; a
// v-node is never visited at all — it either survives untouched or is
// released when a rewrite severs its last reference. Only the nodes
// that genuinely couple the two variables are rewritten. When the two
// variables do not interact anywhere there is nothing to rewrite and
// the swap degenerates to exchanging two order-map entries: O(1),
// independent of the populations. MoveBlock extends that to whole
// non-interacting spans in a single order-map rotation.
//
// During a session the sharded unique table is stale (Close rebuilds
// it), so no mk/mkNode may run; the session keeps its own exact index
// instead — a map keyed on the stored triple (varID, low, high), which
// relabel-free moves never touch. A rewritten node's new (v, G0, G1)
// key cannot collide with a stale (v, b0, b1) one: a rewritten node
// keeps its dependence on u, so at least one of G0, G1 is an inner
// u-node — a slot the stale keys, whose children all lie strictly below
// the pair, cannot mention at that position. Per-variable node
// populations are maintained incrementally in bucket lists, which
// doubles as the level-size signal sifting uses (a variable occupies
// exactly one level).
//
// StartReorder also computes the variable interaction matrix: bit v of
// row u is set when u and v co-occur in the support of some live
// function (protected or garbage — the walk starts from every parentless
// node, so a session opened without a prior GC is still covered). Two
// facts make it load-bearing. A node's own variable and its children's
// variables all lie in the support of any function reaching it, so
// "u and v do not interact" implies no u-node has a v-child or vice
// versa; and swaps preserve every function (garbage included — rewrites
// are function-preserving, releases only drop whole functions), so the
// matrix stays valid for the life of the session. When the two levels
// being swapped do not interact, swapLevels degenerates to relabeling
// the two buckets: no snapshot, no map traffic, no cofactoring, no
// allocation or release — the driver counts these as interaction skips.
// Operation caches are function-keyed, so surviving entries stay
// semantically correct across swaps; the only invalid entries are those
// naming a slot freed during the session (possibly since reused), which
// Close sweeps out via a sticky "tainted" bitmap.
//
// In parallel mode a session is a stop-the-world epoch: StartReorder
// takes the write side of the epoch lock and Close releases it, so the
// sifting invariants above are untouched by worker concurrency — every
// operation is excluded for the whole session. The sift driver itself
// runs on the orchestrating goroutine and uses only session methods,
// Size() and Stats(), all of which stay lock-free.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"hsis/internal/telemetry"
)

// ReorderPolicy names the dynamic-reordering modes the CLIs surface as
// -reorder: no reordering at all, reordering only on explicit request,
// or growth-triggered automatic sifting.
type ReorderPolicy int

const (
	ReorderOff ReorderPolicy = iota
	ReorderManual
	ReorderAuto
)

func (p ReorderPolicy) String() string {
	switch p {
	case ReorderManual:
		return "manual"
	case ReorderAuto:
		return "auto"
	default:
		return "off"
	}
}

// ReorderSession is an open reordering transaction on a Manager. Between
// StartReorder and Close only session methods may touch the manager (no
// BDD operations), and the GC protection contract applies to the whole
// session: Refs not reachable from an IncRef'd root may be reclaimed.
type ReorderSession struct {
	m *Manager

	// ref[i] counts why slot i must stay: its external references plus
	// one per allocated parent node (dead parents included — a node is
	// only reclaimed when the session itself severs its last edge, which
	// is how unprotected garbage melts away as its levels are swapped).
	ref []int32

	// bucket[v] lists exactly the slots labeled with variable v; pos[i]
	// is slot i's index within its bucket (swap-remove bookkeeping).
	bucket [][]Ref
	pos    []int32

	free    []uint64 // slots currently on the free list
	tainted []uint64 // slots freed at any point during the session (sticky across reuse)

	// imat is the variable interaction matrix (numVars rows of imatW
	// words): bit v of row u set iff u,v co-occur in a live support.
	// useInter gates the fast-path swap (ablation switch).
	imat     []uint64
	imatW    int
	useInter bool

	// symNeg caches failed symmetry probes, one bit per ordered variable
	// pair (imat's shape, allocated on first probe). Positive symmetry is
	// a property of the represented functions, which swaps preserve, so a
	// failed probe stays failed for the session — except that garbage
	// melting away can turn a blocked pair symmetric, which the cache
	// (conservatively) ignores. arcCnt/arcStamp are the probe's
	// lower-variable arc counters, epoch-stamped so probes reuse them
	// without clearing.
	symNeg   []uint64
	arcCnt   []int32
	arcStamp []int32

	// whole is the legacy whole-order zone every session starts with: it
	// owns the unique index, the scratch buffers and the mutation
	// counters, and the session-level primitives forward to it. OpenZones
	// retires it (whole becomes nil) and installs zones instead; the
	// zoned counters fold into the session totals at CloseZones.
	whole *ReorderZone
	zones []*ReorderZone

	swaps      int // folded totals: packing phase plus closed zones
	interSkips int // crossings taken as pure order-map relabels (fast-path swaps and MoveBlock spans)
	lbAborts   int // sift directions cut short by the lower bound (driver-counted)
	symPairs   int // symmetric pairs glued into blocks (driver-counted)
	before     int
	start      time.Time
}

// StartReorder opens a reordering session. It panics if one is already
// active. All ordinary operations (mk-based construction, Apply, GC, …)
// are forbidden until Close; Refs protected per the GC contract remain
// valid across the session and keep their functions. In parallel mode
// the session holds the stop-the-world lock until Close.
func (m *Manager) StartReorder() *ReorderSession {
	if m.par {
		m.stw.Lock()
	}
	if m.session != nil {
		panic("bdd: StartReorder with a reorder session already active")
	}
	// Freeze a coherent Statistics snapshot before the session starts
	// rewriting the arena; Stats() serves it until Close.
	m.statsSnap = m.statsNow()
	if sc := m.Telemetry(); sc != nil {
		sc.Emit("bdd.reorder_start", telemetry.Int("live", m.Size()))
	}
	// Parallel free-list pops consume the tail without shrinking the
	// slice; re-establish len(m.free) == freeLen for the session, which
	// mutates the list with plain appends and pops.
	m.free = m.free[:m.freeLen.Load()]
	alloc := int(m.nodeCap.Load())
	s := &ReorderSession{
		m:       m,
		start:   time.Now(),
		before:  m.Size(),
		ref:     make([]int32, alloc),
		pos:     make([]int32, alloc),
		free:    make([]uint64, (alloc+63)/64),
		tainted: make([]uint64, (alloc+63)/64),
		bucket:  make([][]Ref, m.numVars),
	}
	s.whole = &ReorderZone{
		s:      s,
		legacy: true,
		lo:     0,
		hi:     m.numVars - 1,
		// Size the map by the live count, not the arena: after the GC a
		// sifting driver runs first, live is typically a small fraction
		// of alloc, and map presizing is O(capacity).
		uniq: make(map[node]Ref, m.Size()+m.Size()/4),
	}
	for _, f := range m.free {
		s.free[f>>6] |= 1 << (uint(f) & 63)
	}
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if s.isFree(r) {
			continue
		}
		n := *m.node(r)
		s.ref[i] += *m.rcPtr(r)
		s.ref[n.low]++
		s.ref[regular(n.high)]++
		s.whole.uniq[n] = r
		s.addToBucket(r, int(n.varID))
		s.whole.pop++
	}
	s.buildInteractions(alloc)
	s.useInter = true
	m.session = s
	m.inSession.Store(true)
	return s
}

// buildInteractions computes the interaction matrix. Every allocated
// node is reachable from some parentless top (the parent relation is a
// finite DAG), so walking the support of each node whose session ref
// count equals its external count — no allocated parent — covers
// protected roots and garbage alike.
func (s *ReorderSession) buildInteractions(alloc int) {
	m := s.m
	nv := m.numVars
	s.imatW = (nv + 63) / 64
	s.imat = make([]uint64, nv*s.imatW)
	visited := make([]int32, alloc) // epoch stamps: one DFS per top, no clearing
	varSeen := make([]int32, nv)
	mask := make([]uint64, s.imatW)
	var stack []Ref
	var support []int32
	epoch := int32(0)
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if s.isFree(r) || s.ref[i] != *m.rcPtr(r) {
			continue
		}
		epoch++
		support = support[:0]
		visited[r] = epoch
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := *m.node(f)
			if v := n.varID; varSeen[v] != epoch {
				varSeen[v] = epoch
				support = append(support, v)
			}
			for _, ch := range [2]Ref{n.low, regular(n.high)} {
				if ch != 0 && visited[ch] != epoch {
					visited[ch] = epoch
					stack = append(stack, ch)
				}
			}
		}
		if len(support) < 2 {
			continue
		}
		for j := range mask {
			mask[j] = 0
		}
		for _, v := range support {
			mask[v>>6] |= 1 << (uint(v) & 63)
		}
		for _, v := range support {
			row := s.imat[int(v)*s.imatW : (int(v)+1)*s.imatW]
			for j, w := range mask {
				row[j] |= w
			}
		}
	}
}

func (s *ReorderSession) interacts(u, v int) bool {
	return s.imat[u*s.imatW+(v>>6)]&(1<<(uint(v)&63)) != 0
}

// Interacts reports whether variables u and v co-occur in the support
// of any live function (the interaction matrix frozen at StartReorder).
func (s *ReorderSession) Interacts(u, v int) bool { return s.interacts(u, v) }

// SetInteractionFastPath toggles the non-interacting relabel fast path
// in Swap; it exists so ablation runs can measure the full-cost swap.
func (s *ReorderSession) SetInteractionFastPath(on bool) { s.useInter = on }

// InteractionSkips returns the number of swaps taken as pure relabels.
func (s *ReorderSession) InteractionSkips() int {
	n := s.interSkips
	if s.whole != nil {
		n += s.whole.interSkips
	}
	return n
}

// wholeZone returns the legacy whole-order zone backing the
// session-level mutation primitives; it panics while OpenZones zones
// are active (mutations must go through the zones then).
func (s *ReorderSession) wholeZone() *ReorderZone {
	if s.whole == nil {
		panic("bdd: whole-order session primitive while reorder zones are open")
	}
	return s.whole
}

// NoteLowerBoundAbort records a sift direction cut short by the
// lower-bound estimate; LowerBoundAborts reads the tally. The search
// strategy lives in internal/reorder, the counter here so Close can
// fold it into the manager statistics with the rest.
func (s *ReorderSession) NoteLowerBoundAbort() { s.wholeZone().lbAborts++ }

// LowerBoundAborts returns the recorded lower-bound aborts.
func (s *ReorderSession) LowerBoundAborts() int {
	n := s.lbAborts
	if s.whole != nil {
		n += s.whole.lbAborts
	}
	return n
}

// NoteSymmetricPair records a variable pair glued into a symmetry
// block; SymmetricPairs reads the tally.
func (s *ReorderSession) NoteSymmetricPair() { s.wholeZone().symPairs++ }

// SymmetricPairs returns the recorded symmetric-pair detections.
func (s *ReorderSession) SymmetricPairs() int {
	n := s.symPairs
	if s.whole != nil {
		n += s.whole.symPairs
	}
	return n
}

// Swap exchanges the variables at level and level+1, rewriting the
// affected nodes in place. It forwards to the whole-order zone and may
// not be used while OpenZones zones are active.
func (s *ReorderSession) Swap(level int) { s.wholeZone().Swap(level) }

// Swaps returns the number of adjacent-level swaps performed so far.
func (s *ReorderSession) Swaps() int {
	n := s.swaps
	if s.whole != nil {
		n += s.whole.swaps
	}
	return n
}

// Pop returns the live node count the session minimizes — the global
// Size. A ReorderZone's Pop scopes the same quantity to its own band;
// the two implement one interface for the sift driver.
func (s *ReorderSession) Pop() int { return s.m.Size() }

// Headroom reports the remaining allocation budget; the whole-order
// session grows the arena on demand, so it is unbounded (-1).
func (s *ReorderSession) Headroom() int { return -1 }

// MaxBucket returns 0 for the whole-order session: only zones, whose
// allocation is budgeted, gate moves on bucket size.
func (s *ReorderSession) MaxBucket() int { return 0 }

// NoteBlockSifted is a no-op on the whole-order session; the
// parallel-sift block counter only tracks zoned work.
func (s *ReorderSession) NoteBlockSifted() {}

// LevelSize returns the number of nodes currently stored at the given
// level (the per-level population sifting minimizes). A variable
// occupies exactly one level, so this is its bucket's length.
func (s *ReorderSession) LevelSize(level int) int {
	return len(s.bucket[s.m.level2var[level]])
}

// Manager returns the manager this session reorders.
func (s *ReorderSession) Manager() *Manager { return s.m }

// The swap primitive itself — the Rudell exchange adapted to complement
// edges, reduced by ID-labeling to one pass over the upper variable's
// bucket — lives on ReorderZone in reorder_zones.go:
//
//  1. a u-node with no v-child keeps its triple verbatim — its level
//     changes implicitly with the final order-map update;
//  2. a u-node with a v-child is rewritten in place onto variable v,
//     its new cofactors built with swapMk (which shares or allocates
//     inner u-nodes). Old-child reference drops are recorded but not
//     settled — later rewrites in the same pass still read the old
//     children, so no slot may be freed or reused yet;
//  3. the recorded drops are settled: nodes left with no external
//     reference and no parent are released (cascading).
//
// v-nodes are never visited: a live one keeps its triple and moves up
// implicitly with the maps, a dead one is exactly a recorded drop
// settled in step 3.

// MoveBlock moves the block of width adjacent levels starting at level
// across span further levels — downward past the next span levels for
// span > 0, upward for span < 0 — in one order-map rotation, provided
// no crossed variable interacts with any block variable (it panics
// otherwise; callers gate on Interacts). Because nodes store variable
// IDs, nothing but the two order maps is touched, and every function is
// preserved exactly as if the width×|span| adjacent swaps had run; the
// session counts those avoided swaps as interaction skips. This is what
// lets the sifting driver cross a whole span of unrelated variables in
// O(span) instead of O(span × population). It forwards to the
// whole-order zone; during zoned sifting each zone has its own.
func (s *ReorderSession) MoveBlock(level, width, span int) {
	s.wholeZone().MoveBlock(level, width, span)
}

// ProbeSymmetry reports whether the variable at level and the one at
// level+1 are positively symmetric in every live function: exchanging
// the two leaves every function unchanged. The check is the classic
// structural one on the two populations. Writing u for the upper and v
// for the lower variable, every real u-node f must satisfy f01 == f10
// (its "u=0,v=1" and "u=1,v=0" cofactors agree), and every v-node must
// be referenced only from the u level — an external reference or a
// parent above u means some function sees v without passing through u
// and cannot be u,v-symmetric. The projection node of each variable is
// infrastructure, not a function — NewVar pins one per variable forever
// — so u's is skipped in the scan and v's expected reference count is
// discounted by its permanent pin. A false positive is impossible for
// protected functions; gluing is only a heuristic hint anyway, since
// block moves preserve all functions regardless. The probe itself lives
// on ReorderZone; this forwards to the whole-order zone.
func (s *ReorderSession) ProbeSymmetry(level int) bool {
	return s.wholeZone().ProbeSymmetry(level)
}

// Close ends the session: it rebuilds the sharded unique table for the
// new order, sweeps operation-cache entries that name a slot freed
// during the session, and records the reorder statistics. The manager is
// fully operational again afterwards.
func (s *ReorderSession) Close() {
	m := s.m
	if m.session != s {
		panic("bdd: Close on an inactive reorder session")
	}
	s.CloseZones() // tolerate a driver that panicked out of the zone phase
	if w := s.whole; w != nil {
		s.swaps += w.swaps
		s.interSkips += w.interSkips
		s.lbAborts += w.lbAborts
		s.symPairs += w.symPairs
		s.whole = nil
	}
	m.session = nil
	for i := range m.shards {
		sh := &m.shards[i]
		clear(sh.slots)
		sh.count = 0
	}
	alloc := int(m.nodeCap.Load())
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if !s.isFree(r) {
			m.tableInsert(r)
		}
	}
	m.freeLen.Store(int64(len(m.free)))
	m.sweepCachesTainted(s.tainted)
	// Per-worker L1 caches may hold entries naming tainted slots too;
	// bumping the epoch invalidates them all at their next safe point.
	m.cacheEpoch.Add(1)
	m.statReorders++
	m.statReorderSwaps += uint64(s.swaps)
	m.statInterSkips += uint64(s.interSkips)
	m.statLBAborts += uint64(s.lbAborts)
	m.statSymPairs += s.symPairs
	m.statReorderTime += time.Since(s.start)
	m.reorderBefore = s.before
	m.reorderAfter = m.Size()
	if sc := m.Telemetry(); sc != nil {
		sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
		sc.EmitElapsed("bdd.reorder_end", time.Since(s.start),
			telemetry.Int("swaps", s.swaps),
			telemetry.Int("inter_skips", s.interSkips),
			telemetry.Int("lb_aborts", s.lbAborts),
			telemetry.Int("sym_pairs", s.symPairs),
			telemetry.Int("before", s.before),
			telemetry.Int("after", m.Size()))
	}
	m.inSession.Store(false)
	if m.par {
		m.stw.Unlock()
	}
}

// isFree reads the free bitmap atomically: one 64-slot word can span
// slots owned by different concurrent zones.
func (s *ReorderSession) isFree(r Ref) bool {
	return atomic.LoadUint64(&s.free[r>>6])&(1<<(uint(r)&63)) != 0
}

func (s *ReorderSession) addToBucket(r Ref, v int) {
	s.bucket[v] = append(s.bucket[v], r)
	s.pos[r] = int32(len(s.bucket[v]) - 1)
}

func (s *ReorderSession) removeFromBucket(r Ref, v int) {
	b := s.bucket[v]
	i := s.pos[r]
	last := b[len(b)-1]
	b[i] = last
	s.pos[last] = i
	s.bucket[v] = b[:len(b)-1]
}

// sweepCachesTainted drops every operation-cache entry mentioning a slot
// freed during a reorder session. Entries whose nodes all survived are
// function-keyed and stay correct under any permutation of levels, so
// they are kept. Slots already free when the session started cannot
// appear in any entry (the GC that freed them swept or cleared the
// caches), so the tainted set is exactly the invalid one.
func (m *Manager) sweepCachesTainted(tainted []uint64) {
	bad := func(f Ref) bool {
		i := regular(f)
		return tainted[i>>6]&(1<<(uint(i)&63)) != 0
	}
	for i := range m.ite {
		e := &m.ite[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.h) || bad(e.res)) {
			*e = iteEntry{}
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.res)) {
			*e = binopEntry{}
		}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f != 0 && (bad(e.f) || bad(e.cube) || bad(e.res)) {
			*e = quantEntry{}
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.cube) || bad(e.res)) {
			*e = aexEntry{}
		}
	}
}

// GroupVars registers the given variable IDs as one atomic reordering
// block: sifting moves them together, preserving their relative order.
// This is how MDD log-encoded value bits and interleaved present/next
// state pairs stay adjacent — the Permute-based rail swap is keyed on
// variable IDs and stays *correct* under any order, but block sifting
// keeps the orders that make it *cheap*. Registrations sharing a
// variable merge into one block; IDs are kept sorted and deduplicated.
func (m *Manager) GroupVars(vars []int) {
	if len(vars) < 2 {
		return
	}
	// A concurrent reorder session reads m.groups through VarGroups
	// while holding the stop-the-world lock, so registration takes it
	// exclusively (registration is cold: variable-creation time, plus
	// symmetric-pair glues during sifting). During a session the caller
	// IS the session's orchestrator and already holds the lock.
	if m.par && m.session == nil {
		m.stw.Lock()
		defer m.stw.Unlock()
	}
	// Concurrent sift zones glue symmetric pairs from their own
	// goroutines; the registry itself gets a dedicated mutex.
	m.groupsMu.Lock()
	defer m.groupsMu.Unlock()
	merged := append([]int(nil), vars...)
	for _, v := range merged {
		if v < 0 || v >= m.numVars {
			panic(fmt.Sprintf("bdd: GroupVars: variable %d out of range [0,%d)", v, m.numVars))
		}
	}
	in := make(map[int]bool, len(merged))
	for _, v := range merged {
		in[v] = true
	}
	kept := m.groups[:0]
	for _, g := range m.groups {
		overlap := false
		for _, v := range g {
			if in[v] {
				overlap = true
				break
			}
		}
		if !overlap {
			kept = append(kept, g)
			continue
		}
		for _, v := range g {
			if !in[v] {
				in[v] = true
				merged = append(merged, v)
			}
		}
	}
	sort.Ints(merged)
	m.groups = append(kept, merged)
}

// VarGroups returns the registered atomic reordering blocks. Callers
// must not mutate the result.
func (m *Manager) VarGroups() [][]int { return m.groups }

// SetReorderPolicy records the reordering mode. Setting ReorderOff or
// ReorderManual disarms any pending automatic trigger; ReorderAuto is
// normally installed through SetAutoReorder, which supplies the hook.
func (m *Manager) SetReorderPolicy(p ReorderPolicy) {
	m.reorderPolicy = p
	if p != ReorderAuto {
		m.reorderPending.Store(false)
		m.reorderAt.Store(0)
	} else if m.reorderFn != nil {
		m.armReorder()
	}
}

// GetReorderPolicy returns the recorded reordering mode.
func (m *Manager) GetReorderPolicy() ReorderPolicy { return m.reorderPolicy }

// SetAutoReorder installs fn as the automatic reordering hook and sets
// the policy to ReorderAuto: when live nodes exceed grow times the size
// at the last (re-)arming — but at least minNodes — the next safe point
// (MaybeReorder or MaybeGC) runs fn and re-arms the trigger. A nil fn
// reverts the policy to ReorderOff.
func (m *Manager) SetAutoReorder(grow float64, minNodes int, fn func(*Manager)) {
	m.reorderFn = fn
	m.reorderGrow = grow
	m.reorderMin = minNodes
	m.reorderPending.Store(false)
	if fn == nil {
		m.reorderPolicy = ReorderOff
		m.reorderAt.Store(0)
		return
	}
	m.reorderPolicy = ReorderAuto
	m.armReorder()
}

// SetReorderGrowth replaces the growth factor of the armed automatic
// trigger without touching the hook or the floor. The auto-sift hook's
// back-off policy calls it after an unproductive pass, before
// MaybeReorder re-arms the trigger, so the raised factor takes effect
// immediately; it has no effect until the next (re-)arming otherwise.
func (m *Manager) SetReorderGrowth(grow float64) {
	if grow > 1 {
		m.reorderGrow = grow
	}
}

func (m *Manager) armReorder() {
	at := int(m.reorderGrow * float64(m.Size()))
	if at < m.reorderMin {
		at = m.reorderMin
	}
	m.reorderAt.Store(int64(at))
}

// ReorderPending reports whether an automatic reorder is armed and due.
// Fixpoint loops test it before paying to protect their live Refs for a
// MaybeReorder call. Inside a ParallelDo section it reports false:
// sibling tasks hold unprotected Refs, so the safe point is deferred to
// the orchestrator.
func (m *Manager) ReorderPending() bool {
	return m.reorderPending.Load() && m.reorderFn != nil &&
		!m.inSession.Load() && m.sections.Load() == 0
}

// MaybeReorder runs the automatic reordering hook if its growth trigger
// has fired, then re-arms the trigger; it reports whether a reorder ran.
// This is a safe point with the same contract as GC: all Refs the caller
// needs afterwards must be protected by IncRef (their functions are
// preserved — unlike after a GC, protected Refs need no recomputation).
func (m *Manager) MaybeReorder() bool {
	if !m.ReorderPending() {
		return false
	}
	if !m.reorderPending.CompareAndSwap(true, false) {
		return false
	}
	m.reorderFn(m)
	m.armReorder()
	return true
}

// CheckInvariants validates the kernel's structural invariants —
// canonical-low edges, strictly increasing levels, no freed children or
// duplicate triples, exact unique-table membership, and no operation
// cache entry naming a freed slot. It exists for tests and debugging;
// it is O(nodes + cache entries). It takes no locks (the sift driver
// may call it mid-session), so in parallel mode run it only at
// quiescent points.
func (m *Manager) CheckInvariants() error {
	freeList := m.free[:m.freeLen.Load()]
	free := make(map[Ref]bool, len(freeList))
	for _, f := range freeList {
		if free[f] {
			return fmt.Errorf("slot %d appears twice on the free list", f)
		}
		free[f] = true
	}
	alloc := int(m.nodeCap.Load())
	seen := make(map[node]Ref, alloc)
	for i := 1; i < alloc; i++ {
		r := Ref(i)
		if free[r] {
			continue
		}
		n := *m.node(r)
		if isComp(n.low) {
			return fmt.Errorf("node %d has a complemented low edge", i)
		}
		if free[n.low] || free[regular(n.high)] {
			return fmt.Errorf("node %d has a freed child", i)
		}
		ln := m.nodeLevel(&n)
		if m.levelOf(n.low) <= ln || m.levelOf(regular(n.high)) <= ln {
			return fmt.Errorf("node %d (level %d) has a child at level <= its own", i, ln)
		}
		if prev, dup := seen[n]; dup {
			return fmt.Errorf("nodes %d and %d store the same triple", prev, i)
		}
		seen[n] = r
		if m.session == nil {
			h := hash3(uint64(n.varID), uint64(n.low), uint64(n.high))
			sh := &m.shards[h>>(64-shardBits)]
			hh := h & sh.mask
			for {
				idx := sh.slots[hh]
				if idx == 0 {
					return fmt.Errorf("node %d missing from the unique table", i)
				}
				if Ref(idx-1) == r {
					break
				}
				hh = (hh + 1) & sh.mask
			}
		}
	}
	bad := func(f Ref) bool { return free[regular(f)] }
	for i := range m.ite {
		e := &m.ite[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.h) || bad(e.res)) {
			return fmt.Errorf("ite cache entry names a freed slot")
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.res)) {
			return fmt.Errorf("binop cache entry names a freed slot")
		}
	}
	for i := range m.quant {
		e := &m.quant[i]
		if e.f != 0 && (bad(e.f) || bad(e.cube) || bad(e.res)) {
			return fmt.Errorf("quant cache entry names a freed slot")
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if e.f != 0 && (bad(e.f) || bad(e.g) || bad(e.cube) || bad(e.res)) {
			return fmt.Errorf("andexists cache entry names a freed slot")
		}
	}
	return nil
}

// PeakLive returns the largest live node count observed (allocated minus
// free at each allocation), the number dynamic reordering exists to
// shrink.
func (m *Manager) PeakLive() int { return int(m.peakLive.Load()) }

// ReorderCount returns the number of completed reorder sessions. Plan
// caches (the network's compiled quantification schedules) stamp
// themselves with it and recompile when it moves, so a sift never
// leaves a schedule tuned for the dead variable order in service.
func (m *Manager) ReorderCount() int { return m.statReorders }

// ResetPeaks restarts peak tracking from the current state, so a
// measurement can isolate one phase.
func (m *Manager) ResetPeaks() {
	m.peakNodes.Store(m.nodeCap.Load())
	m.peakLive.Store(int64(m.Size()))
}
