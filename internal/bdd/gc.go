package bdd

// Reference counting and garbage collection. External code that must
// keep a BDD alive across a GC point calls IncRef; the verification
// algorithms call MaybeGC between fixpoint iterations. GC never runs
// implicitly inside an operation, so plain Refs held in local variables
// are stable for the duration of any sequence of operations that does
// not call GC.

// IncRef marks f as externally referenced and returns f for chaining.
func (m *Manager) IncRef(f Ref) Ref {
	m.check(f)
	m.refs[f]++
	return f
}

// DecRef releases one external reference to f.
func (m *Manager) DecRef(f Ref) {
	m.check(f)
	if m.refs[f] <= 0 {
		panic("bdd: DecRef without matching IncRef")
	}
	m.refs[f]--
}

// GC sweeps all nodes not reachable from externally referenced roots,
// rebuilds the unique table, and clears the operation caches. All Refs
// not protected (directly or transitively) by IncRef are invalidated.
func (m *Manager) GC() {
	live := make([]bool, len(m.nodes))
	live[False], live[True] = true, true
	for i, rc := range m.refs {
		if rc > 0 {
			m.markLive(Ref(i), live)
		}
	}
	// Sweep into the free list and rebuild the unique table.
	m.free = m.free[:0]
	for i := range m.table {
		m.table[i] = 0
	}
	dead := 0
	for i := 2; i < len(m.nodes); i++ {
		if live[i] {
			m.tableInsert(Ref(i))
		} else {
			m.free = append(m.free, Ref(i))
			dead++
		}
	}
	m.invalidateCaches()
	m.GCCount++
	m.lastLive = len(m.nodes) - dead
	if m.OnGC != nil {
		m.OnGC(m.lastLive, dead)
	}
}

func (m *Manager) markLive(f Ref, live []bool) {
	for !live[f] {
		live[f] = true
		n := m.nodes[f]
		m.markLive(n.low, live)
		f = n.high
	}
}

// MaybeGC runs a collection if the node count has crossed the adaptive
// threshold. It returns true if a collection ran.
func (m *Manager) MaybeGC() bool {
	if !m.gcEnabled || m.Size() < m.autoGCAt {
		return false
	}
	before := m.Size()
	m.GC()
	freed := before - m.lastLive
	if freed < before/4 {
		// Collection was not productive; defer the next one.
		m.autoGCAt *= 2
	}
	return true
}

// SetGCThreshold sets the node count at which MaybeGC collects.
func (m *Manager) SetGCThreshold(n int) { m.autoGCAt = n }

// DisableGC turns MaybeGC into a no-op (explicit GC still works).
func (m *Manager) DisableGC() { m.gcEnabled = false }
