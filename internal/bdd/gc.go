package bdd

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"hsis/internal/telemetry"
)

// Reference counting and garbage collection. External code that must
// keep a BDD alive across a GC point calls IncRef; the verification
// algorithms call MaybeGC between fixpoint iterations. GC never runs
// implicitly inside an operation, so plain Refs held in local variables
// are stable for the duration of any sequence of operations that does
// not call GC.
//
// Reference counts live on stored nodes, so f and ¬f share one count.
// The mark phase uses the Manager's reusable bitmap (no per-collection
// allocation), and the operation caches are swept — entries whose
// operands and result all survived are kept — rather than cleared.
//
// In parallel mode a collection is a stop-the-world epoch: GC takes the
// write side of the epoch lock, so it excludes every operation, and the
// safe-point contract is unchanged — GC and MaybeGC must be called from
// one orchestrating goroutine while no other goroutine holds
// unprotected Refs. Inside a ParallelDo section MaybeGC is a no-op,
// because sibling tasks hold unprotected intermediate Refs by design.

// IncRef marks f as externally referenced and returns f for chaining.
// It is also a resurrection-barrier site: protecting a ref during a
// concurrent mark phase queues it for the collector, so a root acquired
// after the mark snapshot cannot be swept.
func (m *Manager) IncRef(f Ref) Ref {
	m.check(f)
	m.rlock()
	atomic.AddInt32(m.rcPtr(f), 1)
	m.gcProtect(f)
	m.runlock()
	return f
}

// DecRef releases one external reference to f.
func (m *Manager) DecRef(f Ref) {
	m.check(f)
	m.rlock()
	if atomic.AddInt32(m.rcPtr(f), -1) < 0 {
		panic("bdd: DecRef without matching IncRef")
	}
	m.runlock()
}

// GC sweeps all nodes not reachable from externally referenced roots and
// rebuilds the unique table. Operation-cache entries survive when every
// node they mention is still live. All Refs not protected (directly or
// transitively) by IncRef are invalidated.
//
// Sequential mode collects in one step. Parallel mode runs the
// concurrent protocol in gcParallel: a brief pulse to snapshot the
// arena, a mark phase that runs concurrently with kernel operations
// (the pool workers help), and a short exclusive window for the sweep
// and table rebuild — so a collection no longer stalls every in-flight
// fixpoint for the full mark.
func (m *Manager) GC() {
	if m.par {
		m.gcParallel()
		return
	}
	if m.session != nil {
		panic("bdd: GC during an active reorder session")
	}
	gcStart := time.Now()
	m.seqCtx.flush(m)
	alloc := int(m.nodeCap.Load())
	m.resetMarks()
	m.setMark(0) // the terminal is always live
	for base := 0; base < alloc; base += chunkSize {
		ch := m.chunks[base>>chunkShift].Load()
		n := chunkSize
		if alloc-base < n {
			n = alloc - base
		}
		for j := 0; j < n; j++ {
			if ch.refs[j] > 0 {
				m.mark(Ref(base + j))
			}
		}
	}
	markDur := time.Since(gcStart)
	sweepStart := time.Now()
	live := m.gcFinish(alloc, alloc)
	if sc := m.Telemetry(); sc != nil {
		sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
		sc.EmitElapsed("bdd.gc_mark", markDur,
			telemetry.Int("live", live))
		sc.EmitElapsed("bdd.gc", time.Since(sweepStart),
			telemetry.Int("live", live),
			telemetry.Int("dead", alloc-live),
			telemetry.Int("kept_cache_entries", m.statCacheKept))
	}
	if m.OnGC != nil {
		m.OnGC(live, alloc-live)
	}
}

// gcParallel is the parallel-mode collection: concurrent mark, short
// exclusive sweep.
//
// Phase A (pulse, exclusive): wait out in-flight operations, snapshot
// the allocation watermark, reset the mark bitmap, and raise the
// gcMarking flag. From here every operation routes table hits, L2/L1
// cache hits, free-slot reuse and IncRef through gcProtect, which
// queues refs below the watermark on gcResq.
//
// Phase B (concurrent): scan every pre-watermark slot for an external
// reference count and mark reachable nodes, with CAS-set bits so the
// pool workers can help via futMark tasks. Operations proceed freely:
// any pre-watermark ref they can possibly surface comes from the table,
// a cache, or IncRef — all barrier sites — and interior nodes are
// covered transitively when the queue drains. Nodes at or above the
// watermark are retained wholesale this cycle.
//
// Phase C (exclusive window): stop the world again, drop the flag,
// extend the bitmap over post-snapshot allocations, mark them and the
// queued refs, then sweep, rebuild the table, and resize the caches —
// the only full stop, and it no longer includes the mark.
func (m *Manager) gcParallel() {
	if !m.gcActive.CompareAndSwap(false, true) {
		return // a collection is already in flight
	}
	defer m.gcActive.Store(false)

	// Phase A: pulse.
	pulseStart := time.Now()
	m.stw.Lock()
	if m.session != nil {
		m.stw.Unlock()
		panic("bdd: GC during an active reorder session")
	}
	m.seqCtx.flush(m)
	watermark := m.nodeCap.Load()
	m.resetMarks()
	m.setMark(0) // the terminal is always live
	m.gcMu.Lock()
	m.gcResq = m.gcResq[:0]
	m.gcMu.Unlock()
	m.gcWatermark.Store(watermark)
	m.gcMarking.Store(true)
	m.stw.Unlock()
	pulseDur := time.Since(pulseStart)

	// Phase B: concurrent mark. Chunk-sized ranges go to the pool; this
	// goroutine scans alongside the workers and then joins its own
	// futures — never helpOne, which could hand it an application future
	// to run under the sequential context.
	markStart := time.Now()
	alloc := int(watermark)
	if m.pool != nil && alloc > chunkSize {
		var futs []*future
		for base := chunkSize; base < alloc; base += chunkSize {
			end := base + chunkSize
			if end > alloc {
				end = alloc
			}
			fu := &future{m: m, kind: futMark, f: Ref(base), g: Ref(end)}
			futs = append(futs, fu)
			m.pool.push(fu)
		}
		m.markRange(0, chunkSize)
		for _, fu := range futs {
			if runIfPending(fu, m.seqCtx) {
				continue
			}
			for fu.state.Load() != futDone {
				runtime.Gosched()
			}
		}
	} else {
		m.markRange(0, alloc)
	}
	markDur := time.Since(markStart)

	// Phase C: exclusive window.
	exStart := time.Now()
	m.stw.Lock()
	m.gcMarking.Store(false)
	alloc = int(m.nodeCap.Load())
	// Extend the bitmap over post-snapshot allocations and retain them
	// wholesale (they are this cycle's floor, collected next time).
	// Their children may sit below the watermark, so mark through them.
	nw := (alloc + 63) / 64
	if old := len(m.marks); nw > old {
		if cap(m.marks) >= nw {
			m.marks = m.marks[:nw]
			clear(m.marks[old:])
		} else {
			grown := make([]uint64, nw)
			copy(grown, m.marks)
			m.marks = grown
		}
	}
	for i := int(watermark); i < alloc; i++ {
		m.setMark(Ref(i))
		n := m.node(Ref(i))
		m.mark(n.low)
		m.mark(n.high)
	}
	// Drain the resurrection queue: every pre-watermark ref surfaced
	// during the mark, marked transitively.
	m.gcMu.Lock()
	for _, f := range m.gcResq {
		m.mark(f)
	}
	m.gcResq = m.gcResq[:0]
	m.gcMu.Unlock()
	live := m.gcFinish(alloc, alloc)
	m.stw.Unlock()
	if sc := m.Telemetry(); sc != nil {
		sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
		sc.EmitElapsed("bdd.gc_mark", markDur,
			telemetry.Int("live", live))
		sc.EmitElapsed("bdd.gc", pulseDur+time.Since(exStart),
			telemetry.Int("live", live),
			telemetry.Int("dead", alloc-live),
			telemetry.Int("kept_cache_entries", m.statCacheKept))
	}
	if m.OnGC != nil {
		m.OnGC(live, alloc-live)
	}
}

// gcFinish is the shared tail of both collectors: count the marked
// nodes, rebuild the unique table, sweep the dead into the free list,
// and resize/sweep the operation caches. The mark bitmap must cover
// [0, alloc) and the caller must be at an exclusive point. It returns
// the live count.
func (m *Manager) gcFinish(alloc, scanned int) int {
	live := 0
	for _, w := range m.marks {
		live += bits.OnesCount64(w)
	}
	// Demand estimate: the phase between two collections needed table
	// and cache room for everything it allocated, not just for what
	// survived. Sizing decisions use max(live, allocations since the
	// last GC) so a steady-state loop that rebuilds a large forest every
	// iteration keeps its structures, while a loop over a small working
	// set stops paying for a long-gone peak.
	demand := live
	if d := int(m.allocs.Load() - m.allocsAtGC); d > demand {
		demand = d
	}
	m.allocsAtGC = m.allocs.Load()
	// Rebuild the unique table shard by shard. A table sized for a
	// long-gone peak makes every later collection wipe megabytes to
	// reinsert a few hundred survivors, so shrink each shard when demand
	// has fallen well below it (2× hysteresis; shards regrow on their
	// load factor as usual).
	perShard := pow2AtLeast(4 * demand / numShards)
	if perShard < initShardSlots {
		perShard = initShardSlots
	}
	for i := range m.shards {
		sh := &m.shards[i]
		if 2*perShard <= len(sh.slots) {
			sh.slots = make([]int32, perShard)
			sh.mask = uint64(perShard - 1)
		} else {
			clear(sh.slots)
		}
		sh.count = 0
	}
	// Sweep into the free list.
	m.free = m.free[:0]
	for i := 1; i < alloc; i++ {
		if m.marked(Ref(i)) {
			m.tableInsert(Ref(i))
		} else {
			m.free = append(m.free, Ref(i))
		}
	}
	m.freeLen.Store(int64(len(m.free)))
	m.GCCount++
	m.lastLive = live
	// The mark bitmap is still valid here: use it to retain cache
	// entries that only mention surviving nodes. When almost everything
	// died, survival is hopeless (an entry needs all of its nodes live),
	// so skip the scan, wipe, and shrink toward the live set. Then give
	// each cache a chance to grow if its hit rate collapsed since the
	// last check.
	if 4*live >= scanned {
		m.sweepCaches()
	} else {
		m.clearCaches(demand)
	}
	m.adaptPending.Store(false)
	m.adaptCaches()
	// Invalidate every private L1 op cache: their entries may reference
	// swept slots, and unlike the shared caches they are not sweepable
	// from here.
	m.cacheEpoch.Add(1)
	return live
}

// mark sets the live bit on f's stored node and everything below it,
// iterating down high chains to keep recursion depth at the BDD width.
func (m *Manager) mark(f Ref) {
	f = regular(f)
	for !m.marked(f) {
		m.setMark(f)
		n := m.node(f)
		m.mark(n.low)
		f = regular(n.high)
	}
}

// markRange scans arena slots [lo, hi) for externally referenced nodes
// and marks everything reachable from them. It is the concurrent-mark
// work unit: reference counts are read atomically (IncRef runs
// concurrently) and bits are CAS-set, so any number of rangers —
// futMark tasks on the pool plus the collecting goroutine — can share
// the scan. It only ever touches pre-watermark slots, whose node fields
// are immutable while the collection is in flight (free slots are
// unreachable, and reused free slots are reached only via the
// resurrection queue, after this phase).
func (m *Manager) markRange(lo, hi int) {
	for i := lo; i < hi; {
		ch := m.chunks[i>>chunkShift].Load()
		end := (i | chunkMask) + 1
		if end > hi {
			end = hi
		}
		for ; i < end; i++ {
			if atomic.LoadInt32(&ch.refs[i&chunkMask]) > 0 {
				m.markPar(Ref(i))
			}
		}
	}
}

// markPar is mark with CAS-set bits, for the concurrent phase. The
// terminal's bit is set before the phase starts, so traversal stops
// there without a special case.
func (m *Manager) markPar(f Ref) {
	f = regular(f)
	for m.setMarkAtomic(f) {
		n := m.node(f)
		m.markPar(n.low)
		f = regular(n.high)
	}
}

// setMarkAtomic CAS-sets f's live bit, reporting whether this call set
// it (go 1.22 lacks atomic Or-fetch, hence the loop).
func (m *Manager) setMarkAtomic(f Ref) bool {
	w := &m.marks[f>>6]
	bit := uint64(1) << (uint(f) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return true
		}
	}
}

// MaybeGC runs a collection if the node count has crossed the adaptive
// threshold. It returns true if a collection ran. Even when no
// collection is due it performs the O(1) cache-adaptation check, so
// fixpoint loops that never trigger a GC still grow their caches.
// Inside a ParallelDo section it is a no-op.
func (m *Manager) MaybeGC() bool {
	if m.sections.Load() > 0 {
		return false
	}
	// MaybeGC call sites already satisfy the protection contract a
	// reorder needs, so a pending automatic reorder drains here too.
	m.MaybeReorder()
	if !m.gcEnabled || m.Size() < m.autoGCAt {
		if m.par {
			m.tryAdapt()
		} else {
			m.seqCtx.flush(m)
			m.adaptCaches()
		}
		return false
	}
	before := m.Size()
	m.GC()
	freed := before - m.lastLive
	if freed < before/4 {
		// Collection was not productive; defer the next one.
		m.autoGCAt *= 2
	}
	return true
}

// GCPending reports whether the next MaybeGC call would collect — the
// node count has crossed the adaptive threshold and no ParallelDo
// section defers collection. Fixpoint loops use it to gate the IncRef
// traffic that protects their loop state across a safe point, the same
// way ReorderPending gates reorder protection.
func (m *Manager) GCPending() bool {
	return m.gcEnabled && m.Size() >= m.autoGCAt && m.sections.Load() == 0
}

// SetGCThreshold sets the node count at which MaybeGC collects.
func (m *Manager) SetGCThreshold(n int) { m.autoGCAt = n }

// DisableGC turns MaybeGC into a no-op (explicit GC still works).
func (m *Manager) DisableGC() { m.gcEnabled = false }
