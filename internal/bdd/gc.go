package bdd

import (
	"math/bits"
	"sync/atomic"
	"time"

	"hsis/internal/telemetry"
)

// Reference counting and garbage collection. External code that must
// keep a BDD alive across a GC point calls IncRef; the verification
// algorithms call MaybeGC between fixpoint iterations. GC never runs
// implicitly inside an operation, so plain Refs held in local variables
// are stable for the duration of any sequence of operations that does
// not call GC.
//
// Reference counts live on stored nodes, so f and ¬f share one count.
// The mark phase uses the Manager's reusable bitmap (no per-collection
// allocation), and the operation caches are swept — entries whose
// operands and result all survived are kept — rather than cleared.
//
// In parallel mode a collection is a stop-the-world epoch: GC takes the
// write side of the epoch lock, so it excludes every operation, and the
// safe-point contract is unchanged — GC and MaybeGC must be called from
// one orchestrating goroutine while no other goroutine holds
// unprotected Refs. Inside a ParallelDo section MaybeGC is a no-op,
// because sibling tasks hold unprotected intermediate Refs by design.

// IncRef marks f as externally referenced and returns f for chaining.
func (m *Manager) IncRef(f Ref) Ref {
	m.check(f)
	m.rlock()
	atomic.AddInt32(m.rcPtr(f), 1)
	m.runlock()
	return f
}

// DecRef releases one external reference to f.
func (m *Manager) DecRef(f Ref) {
	m.check(f)
	m.rlock()
	if atomic.AddInt32(m.rcPtr(f), -1) < 0 {
		panic("bdd: DecRef without matching IncRef")
	}
	m.runlock()
}

// GC sweeps all nodes not reachable from externally referenced roots and
// rebuilds the unique table. Operation-cache entries survive when every
// node they mention is still live. All Refs not protected (directly or
// transitively) by IncRef are invalidated.
func (m *Manager) GC() {
	if m.par {
		m.stw.Lock()
		defer m.stw.Unlock()
	}
	if m.session != nil {
		panic("bdd: GC during an active reorder session")
	}
	var gcStart time.Time
	if m.Telemetry() != nil {
		gcStart = time.Now()
	}
	m.seqCtx.flush(m)
	alloc := int(m.nodeCap.Load())
	m.resetMarks()
	m.setMark(0) // the terminal is always live
	for base := 0; base < alloc; base += chunkSize {
		ch := m.chunks[base>>chunkShift].Load()
		n := chunkSize
		if alloc-base < n {
			n = alloc - base
		}
		for j := 0; j < n; j++ {
			if ch.refs[j] > 0 {
				m.mark(Ref(base + j))
			}
		}
	}
	live := 0
	for _, w := range m.marks {
		live += bits.OnesCount64(w)
	}
	// Demand estimate: the phase between two collections needed table
	// and cache room for everything it allocated, not just for what
	// survived. Sizing decisions use max(live, allocations since the
	// last GC) so a steady-state loop that rebuilds a large forest every
	// iteration keeps its structures, while a loop over a small working
	// set stops paying for a long-gone peak.
	demand := live
	if d := int(m.allocs.Load() - m.allocsAtGC); d > demand {
		demand = d
	}
	m.allocsAtGC = m.allocs.Load()
	// Rebuild the unique table shard by shard. A table sized for a
	// long-gone peak makes every later collection wipe megabytes to
	// reinsert a few hundred survivors, so shrink each shard when demand
	// has fallen well below it (2× hysteresis; shards regrow on their
	// load factor as usual).
	perShard := pow2AtLeast(4 * demand / numShards)
	if perShard < initShardSlots {
		perShard = initShardSlots
	}
	for i := range m.shards {
		sh := &m.shards[i]
		if 2*perShard <= len(sh.slots) {
			sh.slots = make([]int32, perShard)
			sh.mask = uint64(perShard - 1)
		} else {
			clear(sh.slots)
		}
		sh.count = 0
	}
	// Sweep into the free list.
	m.free = m.free[:0]
	for i := 1; i < alloc; i++ {
		if m.marked(Ref(i)) {
			m.tableInsert(Ref(i))
		} else {
			m.free = append(m.free, Ref(i))
		}
	}
	m.freeLen.Store(int64(len(m.free)))
	m.GCCount++
	m.lastLive = live
	// The mark bitmap is still valid here: use it to retain cache
	// entries that only mention surviving nodes. When almost everything
	// died, survival is hopeless (an entry needs all of its nodes live),
	// so skip the scan, wipe, and shrink toward the live set. Then give
	// each cache a chance to grow if its hit rate collapsed since the
	// last check.
	if 4*live >= alloc {
		m.sweepCaches()
	} else {
		m.clearCaches(demand)
	}
	m.adaptPending.Store(false)
	m.adaptCaches()
	if sc := m.Telemetry(); sc != nil {
		sc.PublishNodes(m.Size(), int(m.peakLive.Load()))
		sc.EmitElapsed("bdd.gc", time.Since(gcStart),
			telemetry.Int("live", live),
			telemetry.Int("dead", alloc-live),
			telemetry.Int("kept_cache_entries", m.statCacheKept))
	}
	if m.OnGC != nil {
		m.OnGC(live, alloc-live)
	}
}

// mark sets the live bit on f's stored node and everything below it,
// iterating down high chains to keep recursion depth at the BDD width.
func (m *Manager) mark(f Ref) {
	f = regular(f)
	for !m.marked(f) {
		m.setMark(f)
		n := m.node(f)
		m.mark(n.low)
		f = regular(n.high)
	}
}

// MaybeGC runs a collection if the node count has crossed the adaptive
// threshold. It returns true if a collection ran. Even when no
// collection is due it performs the O(1) cache-adaptation check, so
// fixpoint loops that never trigger a GC still grow their caches.
// Inside a ParallelDo section it is a no-op.
func (m *Manager) MaybeGC() bool {
	if m.sections.Load() > 0 {
		return false
	}
	// MaybeGC call sites already satisfy the protection contract a
	// reorder needs, so a pending automatic reorder drains here too.
	m.MaybeReorder()
	if !m.gcEnabled || m.Size() < m.autoGCAt {
		if m.par {
			m.tryAdapt()
		} else {
			m.seqCtx.flush(m)
			m.adaptCaches()
		}
		return false
	}
	before := m.Size()
	m.GC()
	freed := before - m.lastLive
	if freed < before/4 {
		// Collection was not productive; defer the next one.
		m.autoGCAt *= 2
	}
	return true
}

// GCPending reports whether the next MaybeGC call would collect — the
// node count has crossed the adaptive threshold and no ParallelDo
// section defers collection. Fixpoint loops use it to gate the IncRef
// traffic that protects their loop state across a safe point, the same
// way ReorderPending gates reorder protection.
func (m *Manager) GCPending() bool {
	return m.gcEnabled && m.Size() >= m.autoGCAt && m.sections.Load() == 0
}

// SetGCThreshold sets the node count at which MaybeGC collects.
func (m *Manager) SetGCThreshold(n int) { m.autoGCAt = n }

// DisableGC turns MaybeGC into a no-op (explicit GC still works).
func (m *Manager) DisableGC() { m.gcEnabled = false }
