package bdd

import (
	"math/bits"
	"time"

	"hsis/internal/telemetry"
)

// Reference counting and garbage collection. External code that must
// keep a BDD alive across a GC point calls IncRef; the verification
// algorithms call MaybeGC between fixpoint iterations. GC never runs
// implicitly inside an operation, so plain Refs held in local variables
// are stable for the duration of any sequence of operations that does
// not call GC.
//
// Reference counts live on stored nodes, so f and ¬f share one count.
// The mark phase uses the Manager's reusable bitmap (no per-collection
// allocation), and the operation caches are swept — entries whose
// operands and result all survived are kept — rather than cleared.

// IncRef marks f as externally referenced and returns f for chaining.
func (m *Manager) IncRef(f Ref) Ref {
	m.check(f)
	m.refs[regular(f)]++
	return f
}

// DecRef releases one external reference to f.
func (m *Manager) DecRef(f Ref) {
	m.check(f)
	i := regular(f)
	if m.refs[i] <= 0 {
		panic("bdd: DecRef without matching IncRef")
	}
	m.refs[i]--
}

// GC sweeps all nodes not reachable from externally referenced roots and
// rebuilds the unique table. Operation-cache entries survive when every
// node they mention is still live. All Refs not protected (directly or
// transitively) by IncRef are invalidated.
func (m *Manager) GC() {
	if m.session != nil {
		panic("bdd: GC during an active reorder session")
	}
	var gcStart time.Time
	if telemetry.Enabled() {
		gcStart = time.Now()
	}
	m.resetMarks()
	m.setMark(0) // the terminal is always live
	for i, rc := range m.refs {
		if rc > 0 {
			m.mark(Ref(i))
		}
	}
	live := 0
	for _, w := range m.marks {
		live += bits.OnesCount64(w)
	}
	// Demand estimate: the phase between two collections needed table
	// and cache room for everything it allocated, not just for what
	// survived. Sizing decisions use max(live, allocations since the
	// last GC) so a steady-state loop that rebuilds a large forest every
	// iteration keeps its structures, while a loop over a small working
	// set stops paying for a long-gone peak.
	demand := live
	if d := int(m.allocs - m.allocsAtGC); d > demand {
		demand = d
	}
	m.allocsAtGC = m.allocs
	// Rebuild the unique table. A table sized for a long-gone peak makes
	// every later collection wipe megabytes to reinsert a few hundred
	// survivors, so shrink it when demand has fallen well below it (2×
	// hysteresis; it regrows on its load factor as usual).
	if target := max(pow2AtLeast(4*demand), defaultTableSize); 2*target <= len(m.table) {
		m.table = make([]int32, target)
		m.tableMask = uint64(target - 1)
	} else {
		clear(m.table)
	}
	// Sweep into the free list.
	m.free = m.free[:0]
	for i := 1; i < len(m.nodes); i++ {
		if m.marked(Ref(i)) {
			m.tableInsert(Ref(i))
		} else {
			m.free = append(m.free, Ref(i))
		}
	}
	m.GCCount++
	m.lastLive = live
	// The mark bitmap is still valid here: use it to retain cache
	// entries that only mention surviving nodes. When almost everything
	// died, survival is hopeless (an entry needs all of its nodes live),
	// so skip the scan, wipe, and shrink toward the live set. Then give
	// each cache a chance to grow if its hit rate collapsed since the
	// last check.
	if 4*live >= len(m.nodes) {
		m.sweepCaches()
	} else {
		m.clearCaches(demand)
	}
	m.adaptCaches()
	if t := telemetry.T(); t != nil {
		telemetry.PublishNodes(m.Size(), m.peakLive)
		t.Emit("bdd.gc",
			telemetry.Int("live", live),
			telemetry.Int("dead", len(m.nodes)-live),
			telemetry.Int("kept_cache_entries", m.statCacheKept),
			telemetry.I64("elapsed_us", time.Since(gcStart).Microseconds()))
	}
	if m.OnGC != nil {
		m.OnGC(live, len(m.nodes)-live)
	}
}

// mark sets the live bit on f's stored node and everything below it,
// iterating down high chains to keep recursion depth at the BDD width.
func (m *Manager) mark(f Ref) {
	f = regular(f)
	for !m.marked(f) {
		m.setMark(f)
		n := m.nodes[f]
		m.mark(n.low)
		f = regular(n.high)
	}
}

// MaybeGC runs a collection if the node count has crossed the adaptive
// threshold. It returns true if a collection ran. Even when no
// collection is due it performs the O(1) cache-adaptation check, so
// fixpoint loops that never trigger a GC still grow their caches.
func (m *Manager) MaybeGC() bool {
	// MaybeGC call sites already satisfy the protection contract a
	// reorder needs, so a pending automatic reorder drains here too.
	m.MaybeReorder()
	if !m.gcEnabled || m.Size() < m.autoGCAt {
		m.adaptCaches()
		return false
	}
	before := m.Size()
	m.GC()
	freed := before - m.lastLive
	if freed < before/4 {
		// Collection was not productive; defer the next one.
		m.autoGCAt *= 2
	}
	return true
}

// SetGCThreshold sets the node count at which MaybeGC collects.
func (m *Manager) SetGCThreshold(n int) { m.autoGCAt = n }

// DisableGC turns MaybeGC into a no-op (explicit GC still works).
func (m *Manager) DisableGC() { m.gcEnabled = false }
