package bdd

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// xorshift32 is the tiny deterministic RNG the parallel tests use to
// build reproducible "large" inputs without math/rand.
type xorshift32 uint32

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}

// buildDNF constructs a disjunction of random cubes: terms conjunctions
// of width literals each, over nv variables. Same seed, same manager
// variable order ⇒ same function, in any manager.
func buildDNF(m *Manager, rng *xorshift32, nv, terms, width int) Ref {
	f := False
	for i := 0; i < terms; i++ {
		term := True
		for j := 0; j < width; j++ {
			v := int(rng.next()) % nv
			if rng.next()&1 == 0 {
				term = m.And(term, m.Var(v))
			} else {
				term = m.And(term, m.NVar(v))
			}
		}
		f = m.Or(f, term)
	}
	return f
}

// transfer moves f from src into dst through the serialized dump format,
// returning the canonical Ref of the same function in dst. Canonicity
// makes this an exact cross-manager equality check.
func transfer(t *testing.T, src, dst *Manager, f Ref) Ref {
	t.Helper()
	var buf bytes.Buffer
	if err := src.WriteBDDs(&buf, map[string]Ref{"f": f}); err != nil {
		t.Fatalf("WriteBDDs: %v", err)
	}
	roots, err := dst.ReadBDDs(&buf)
	if err != nil {
		t.Fatalf("ReadBDDs: %v", err)
	}
	return roots["f"]
}

// TestParallelCorpus replays the differential fuzz corpus on managers in
// parallel mode: the sharded table, seqlock caches and stop-the-world
// GC/reorder epochs all engage, and every stack entry must still match
// its truth table bit for bit.
func TestParallelCorpus(t *testing.T) {
	progs := [][]byte{
		{0, 1, 0, 2, 3},
		{0, 0, 0, 3, 2, 2, 8, 4},
		{0, 1, 0, 5, 5, 0, 7, 11, 0, 3, 3},
		{0, 9, 0, 3, 0, 7, 9, 2, 11, 5, 0, 0, 7, 7},
		{1, 0, 1, 1, 2, 10, 0, 4, 9, 1, 11, 0, 6, 6, 3},
		{0, 3, 0, 5, 3, 12, 0, 0, 4, 3, 12, 4, 8, 2},
		{0, 1, 0, 2, 12, 8, 3, 11, 0, 6, 12, 0, 7, 7, 12, 1},
	}
	for _, workers := range []int{2, 4} {
		for _, prog := range progs {
			m := New()
			m.NewVars(fuzzVars)
			m.SetWorkers(workers)
			stack := runFuzzProgram(m, prog)
			checkFuzzStack(t, m, stack)
			checkKernelInvariants(t, m)
			m.SetWorkers(1)
		}
	}
}

// TestParallelForkDifferential builds inputs wide enough to clear the
// fork headroom, runs And / Exists / AndExists in a 4-worker manager,
// and checks the results against a sequential manager through the exact
// dump-transfer equality. It also insists the pool actually forked:
// a cutoff bug that silently serialized everything would otherwise pass.
func TestParallelForkDifferential(t *testing.T) {
	const nv = 26
	build := func(m *Manager) (f, g, cube Ref) {
		rngF := xorshift32(0x1234567)
		rngG := xorshift32(0xfedcba9)
		f = m.IncRef(buildDNF(m, &rngF, nv, 60, 8))
		g = m.IncRef(buildDNF(m, &rngG, nv, 60, 8))
		vars := make([]int, 0, nv/2)
		for v := 0; v < nv; v += 2 {
			vars = append(vars, v)
		}
		cube = m.IncRef(m.Cube(vars))
		return
	}

	seq := New()
	seq.NewVars(nv)
	sf, sg, scube := build(seq)
	sAnd := seq.And(sf, sg)
	sEx := seq.Exists(sf, scube)
	sAex := seq.AndExists(sf, sg, scube)

	par := New()
	par.NewVars(nv)
	par.SetWorkers(4)
	pf, pg, pcube := build(par)
	pAnd := par.And(pf, pg)
	pEx := par.Exists(pf, pcube)
	pAex := par.AndExists(pf, pg, pcube)

	if st := par.Stats(); st.Forks == 0 {
		t.Fatalf("no subproblems were forked (stats: %+v)", st)
	}
	if got := transfer(t, par, seq, pAnd); got != sAnd {
		t.Errorf("parallel And disagrees with sequential: %d vs %d", got, sAnd)
	}
	if got := transfer(t, par, seq, pEx); got != sEx {
		t.Errorf("parallel Exists disagrees with sequential: %d vs %d", got, sEx)
	}
	if got := transfer(t, par, seq, pAex); got != sAex {
		t.Errorf("parallel AndExists disagrees with sequential: %d vs %d", got, sAex)
	}
	checkKernelInvariants(t, par)
	par.SetWorkers(1)
}

// TestConcurrentOpsDifferential runs several goroutines of independent
// operation chains against one shared 4-worker manager, each goroutine
// checking every result against a private sequential oracle manager by
// sampled evaluation. This is the concurrency analogue of the fuzz
// harness: shard locks, lock-free cache publication and the fork pool
// all run under true multi-goroutine load.
func TestConcurrentOpsDifferential(t *testing.T) {
	const (
		nv         = 24
		goroutines = 8
		rounds     = 6
	)
	shared := New()
	shared.NewVars(nv)
	shared.SetWorkers(4)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			oracle := New()
			oracle.NewVars(nv)
			run := func(m *Manager) []Ref {
				rng := xorshift32(seed)
				var out []Ref
				a := buildDNF(m, &rng, nv, 20, 6)
				b := buildDNF(m, &rng, nv, 20, 6)
				for r := 0; r < rounds; r++ {
					switch r % 4 {
					case 0:
						a = m.And(a, m.Or(b, m.Not(a)))
					case 1:
						b = m.Xor(a, b)
					case 2:
						a = m.ITE(b, a, m.Not(b))
					case 3:
						cube := m.Cube([]int{int(rng.next()) % nv, int(rng.next()) % nv})
						a = m.AndExists(a, b, cube)
						b = m.Exists(b, cube)
					}
					out = append(out, a, b)
				}
				return out
			}
			got := run(shared)
			want := run(oracle)
			rng := xorshift32(seed ^ 0xabcdef)
			assignment := make([]bool, nv)
			for trial := 0; trial < 400; trial++ {
				w := rng.next()
				for v := range assignment {
					if v%32 == 0 && v > 0 {
						w = rng.next()
					}
					assignment[v] = w>>(v%32)&1 == 1
				}
				for i := range got {
					if shared.Eval(got[i], assignment) != oracle.Eval(want[i], assignment) {
						errs <- fmt.Errorf("seed %#x result %d trial %d: concurrent result disagrees with sequential oracle", seed, i, trial)
						return
					}
				}
			}
		}(uint32(g)*0x9e370001 + 7)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	checkKernelInvariants(t, shared)
	shared.SetWorkers(1)
}

// runConcurrentFuzz interprets prog against a shared parallel manager
// from several goroutines at once. Each goroutine runs a rotation of the
// program restricted to pure operations (no GC, no reorder: those are
// orchestrator-only under the safe-point contract) and verifies its own
// stack against the truth-table oracle afterwards.
func runConcurrentFuzz(t *testing.T, prog []byte) {
	t.Helper()
	const goroutines = 4
	m := New()
	m.NewVars(fuzzVars)
	m.SetWorkers(4)
	stacks := make([][]fuzzEntry, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rot := make([]byte, len(prog))
			for i := range prog {
				// rotate per goroutine for divergent schedules, and remap
				// away the GC(11)/reorder(12) opcodes
				rot[i] = (prog[(i+g)%len(prog)] + byte(g)) % 11
			}
			stacks[g] = runFuzzProgram(m, rot)
		}(g)
	}
	wg.Wait()
	for _, stack := range stacks {
		checkFuzzStack(t, m, stack)
	}
	checkKernelInvariants(t, m)
	// A stop-the-world collection with every stack rooted must not
	// change any function.
	for _, stack := range stacks {
		for _, e := range stack {
			m.IncRef(e.f)
		}
	}
	m.GC()
	for _, stack := range stacks {
		checkFuzzStack(t, m, stack)
	}
	m.SetWorkers(1)
}

// FuzzConcurrentKernel is the concurrent arm of the differential fuzz
// harness: arbitrary operation programs executed by multiple goroutines
// against one parallel manager, each checked against the truth-table
// oracle.
func FuzzConcurrentKernel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 3})
	f.Add([]byte{0, 0, 0, 3, 2, 2, 8, 4})
	f.Add([]byte{0, 9, 0, 3, 0, 7, 9, 2, 5, 0, 0, 7, 7})
	f.Add([]byte{1, 0, 1, 1, 2, 10, 0, 4, 9, 1, 0, 6, 6, 3})
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) == 0 || len(prog) > 128 {
			t.Skip()
		}
		runConcurrentFuzz(t, prog)
	})
}

// TestConcurrentFuzzCorpus runs the concurrent fuzz seeds as a plain
// test so `go test` (and the -race shard in make check) exercises the
// multi-goroutine harness without -fuzz.
func TestConcurrentFuzzCorpus(t *testing.T) {
	progs := [][]byte{
		{0, 1, 0, 2, 3},
		{0, 0, 0, 3, 2, 2, 8, 4},
		{0, 9, 0, 3, 0, 7, 9, 2, 5, 0, 0, 7, 7},
		{1, 0, 1, 1, 2, 10, 0, 4, 9, 1, 0, 6, 6, 3},
		{0, 3, 0, 5, 3, 0, 0, 4, 3, 4, 8, 2, 7, 10, 9, 1},
	}
	for _, prog := range progs {
		runConcurrentFuzz(t, prog)
	}
}

// TestParallelDo checks the task-level section: results match the
// sequential execution of the same closures, and MaybeGC inside a
// section is a no-op (sibling tasks hold unprotected Refs).
func TestParallelDo(t *testing.T) {
	const nv = 16
	m := New()
	vars := m.NewVars(nv)
	m.SetWorkers(4)

	results := make([]Ref, 8)
	gcInSection := false
	tasks := make([]func(), len(results))
	for i := range tasks {
		i := i
		tasks[i] = func() {
			f := True
			for j := 0; j < nv-1; j++ {
				f = m.And(f, m.Or(vars[(i+j)%nv], m.Not(vars[(i+j+1)%nv])))
			}
			if m.MaybeGC() {
				gcInSection = true // racy write is fine: only ever set under failure
			}
			results[i] = f
		}
	}
	m.ParallelDo(tasks...)
	if gcInSection {
		t.Fatal("MaybeGC collected inside a ParallelDo section")
	}
	m.SetWorkers(1)
	for i, got := range results {
		f := True
		for j := 0; j < nv-1; j++ {
			f = m.And(f, m.Or(vars[(i+j)%nv], m.Not(vars[(i+j+1)%nv])))
		}
		if got != f {
			t.Fatalf("task %d: parallel section result %d != sequential %d", i, got, f)
		}
	}
}

// TestSetWorkersRoundTrip switches one manager seq → par → seq with GC
// and a reorder session in parallel mode in between; functions built
// before the switches must keep their semantics throughout.
func TestSetWorkersRoundTrip(t *testing.T) {
	m := New()
	m.NewVars(fuzzVars)
	stack := runFuzzProgram(m, []byte{0, 1, 0, 5, 5, 0, 7, 0, 3, 3})
	m.SetWorkers(2)
	if m.Workers() != 2 {
		t.Fatalf("Workers() = %d after SetWorkers(2)", m.Workers())
	}
	stack = append(stack, runFuzzProgram(m, []byte{0, 9, 0, 3, 0, 7, 9, 2, 5})...)
	for _, e := range stack {
		m.IncRef(e.f)
	}
	m.GC() // stop-the-world collection in parallel mode
	s := m.StartReorder()
	for k := 0; k < fuzzVars-1; k++ {
		s.Swap(k)
	}
	s.Close() // stop-the-world reorder epoch in parallel mode
	checkFuzzStack(t, m, stack)
	m.SetWorkers(1)
	checkFuzzStack(t, m, stack)
	checkKernelInvariants(t, m)
	if m.Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(1)", m.Workers())
	}
}
