// Package emptiness implements the BDD-based fair-cycle machinery at the
// heart of both verification paradigms (paper §5.3): language
// containment reduces to language emptiness — "a fair state is one that
// is involved in some cycle satisfying all fairness constraints, and
// thus a reachable fair state means a failing language containment
// check" — and fair CTL's EG operator is the same computation restricted
// to an invariant.
//
// The algorithm is the Emerson–Lei style hull iteration of ref [17]:
// alternate (1) pruning to states with an infinite path inside the hull,
// (2) for each Büchi condition, pruning to states that can reach the
// condition inside the hull, and (3) for each Streett pair GF(L)→GF(U),
// pruning L-states that cannot reach U inside the hull. At the fixpoint
// every terminal SCC of the hull is fair, so the hull is non-empty iff a
// fair cycle exists; the hull itself is the paper's "approximation to
// the set of fair states".
package emptiness

import (
	"hsis/internal/bdd"
	"hsis/internal/fair"
	"hsis/internal/sys"
	"hsis/internal/telemetry"
)

// EG returns the states of z with an infinite path staying inside z:
// νY. z ∧ Pre(Y).
func EG(s sys.System, z bdd.Ref) bdd.Ref {
	m := s.Manager()
	y := z
	for {
		m.CheckInterrupt() // cancellation safe point
		ny := m.And(z, s.Pre(y))
		ny = m.And(ny, y)
		if ny == y {
			return y
		}
		y = ny
	}
}

// EU returns the states with a path inside z reaching target∩z:
// μY. (target∧z) ∨ (z ∧ Pre(Y)).
func EU(s sys.System, z, target bdd.Ref) bdd.Ref {
	m := s.Manager()
	y := m.And(target, z)
	for {
		m.CheckInterrupt() // cancellation safe point
		ny := m.Or(y, m.And(z, s.Pre(y)))
		if ny == y {
			return y
		}
		y = ny
	}
}

// Result reports a fair-states computation.
type Result struct {
	// Fair is the hull: an over-approximation of the states lying on
	// fair cycles, exact for emptiness (nonempty iff a fair cycle
	// exists within the restriction).
	Fair bdd.Ref
	// Iterations counts outer hull iterations until the fixpoint.
	Iterations int
}

// FairStates computes the fair hull within the restriction set (pass
// bdd.True — or the reachable set — for the whole space). With empty
// constraints this degenerates to EG(restrict): states with any
// infinite path, matching unconstrained ω-semantics.
func FairStates(s sys.System, fc *fair.Constraints, restrict bdd.Ref) Result {
	m := s.Manager()
	z := restrict
	iter := 0
	t := m.Telemetry()
	for {
		m.CheckInterrupt() // cancellation safe point
		iter++
		old := z
		var sp telemetry.Span
		if t != nil {
			sp = t.Start("emptiness.hull.iter")
		}
		// (1) infinite-path hull
		z = EG(s, z)
		if z == bdd.False {
			sp.End(telemetry.Int("iter", iter), telemetry.Int("z_nodes", 0))
			return Result{Fair: z, Iterations: iter}
		}
		// (2) Büchi conditions: must be able to revisit each set
		if fc != nil {
			for _, b := range fc.Buchi {
				var target bdd.Ref
				if b.IsEdge {
					target = s.EdgeSources(b.Set, z)
				} else {
					target = m.And(b.Set, z)
				}
				z = m.And(z, EU(s, z, target))
				if z == bdd.False {
					sp.End(telemetry.Int("iter", iter), telemetry.Int("z_nodes", 0))
					return Result{Fair: z, Iterations: iter}
				}
			}
			// (3) Streett pairs: L-states must be able to reach U
			for _, p := range fc.Streett {
				var lset bdd.Ref
				if p.LEdge {
					lset = s.EdgeSources(p.L, z)
				} else {
					lset = m.And(p.L, z)
				}
				if lset == bdd.False {
					continue
				}
				var uset bdd.Ref
				if p.UEdge {
					uset = s.EdgeSources(p.U, z)
				} else {
					uset = m.And(p.U, z)
				}
				canReachU := EU(s, z, uset)
				z = m.And(z, m.Or(m.Not(lset), canReachU))
				if z == bdd.False {
					sp.End(telemetry.Int("iter", iter), telemetry.Int("z_nodes", 0))
					return Result{Fair: z, Iterations: iter}
				}
			}
		}
		if t != nil {
			sp.End(telemetry.Int("iter", iter),
				telemetry.Int("z_nodes", m.NodeCount(z)))
		}
		if z == old {
			return Result{Fair: z, Iterations: iter}
		}
	}
}

// Check runs the full language-emptiness check: compute the reachable
// states, the fair hull within them, and report whether any fair cycle
// is reachable. It returns the reachable set and the reachable fair
// hull (empty means the language is empty — the property PASSES in the
// language-containment reading).
func Check(s sys.System, fc *fair.Constraints) (reached, fairHull bdd.Ref, iterations int) {
	reached = sys.Reached(s)
	r := FairStates(s, fc, reached)
	return reached, r.Fair, r.Iterations
}

// EarlyFairnessFailure is the second early-detection technique of paper
// §5.4, usable only for language containment: it inspects the structure
// induced by the fairness constraints on a subset of the reachable
// states (typically obtained from a few reachability steps) without the
// full fair-path computation. It reports true when a fair cycle already
// exists inside the subset — an error found early. A false result says
// nothing (the full check must still run).
func EarlyFairnessFailure(s sys.System, fc *fair.Constraints, subset bdd.Ref) bool {
	r := FairStates(s, fc, subset)
	return r.Fair != bdd.False
}
