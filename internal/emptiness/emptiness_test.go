package emptiness

import (
	"testing"

	"hsis/internal/bdd"
	"hsis/internal/blifmv"
	"hsis/internal/fair"
	"hsis/internal/network"
	"hsis/internal/sys"
)

func compile(t *testing.T, src string) *sys.NetSystem {
	t.Helper()
	d, err := blifmv.ParseString(src, "test.mv")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := blifmv.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.Build(flat, network.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys.FromNetwork(n)
}

// counter4: 0→1→2→3→0
const counter4 = `
.model counter4
.mv s,n 4
.table s n
0 1
1 2
2 3
3 0
.latch n s
.reset s
0
.end
`

// branch: 0→1, 1→{0,2}, 2→2 (absorbing self-loop)
const branch = `
.model branch
.mv s,n 3
.table s n
0 1
1 {0,2}
2 2
.latch n s
.reset s
0
.end
`

// pause: 0→{0,1}, 1→0 (may stay at 0 forever)
const pause = `
.model pause
.table s n
0 {0,1}
1 0
.latch n s
.reset s
0
.end
`

func TestEGUnfairnessFree(t *testing.T) {
	s := compile(t, counter4)
	sv := s.N.VarByName("s")
	all := sv.Domain()
	if got := EG(s, all); got != all {
		t.Fatal("total system: every state has an infinite path")
	}
	// within z = {1,2}: no cycle, no infinite path
	z := s.Manager().Or(sv.Eq(1), sv.Eq(2))
	if EG(s, z) != bdd.False {
		t.Fatal("no infinite path inside {1,2}")
	}
}

func TestEU(t *testing.T) {
	s := compile(t, counter4)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// within everything, all states reach 2
	got := EU(s, sv.Domain(), sv.Eq(2))
	if got != sv.Domain() {
		t.Fatal("every state reaches 2 in the cycle")
	}
	// within z = {0,1,2}: 3 excluded, 0,1,2 reach 2 via path inside z
	z := m.Not(sv.Eq(3))
	got = EU(s, z, sv.Eq(2))
	want := m.AndN(z, sv.Domain())
	if got != want {
		t.Fatalf("EU inside restriction wrong")
	}
	// target outside z is unreachable
	if EU(s, sv.Eq(0), sv.Eq(2)) != bdd.False {
		t.Fatal("EU must intersect target with z")
	}
}

func TestNoFairnessHullIsEG(t *testing.T) {
	s := compile(t, branch)
	sv := s.N.VarByName("s")
	r := FairStates(s, nil, sv.Domain())
	if r.Fair != sv.Domain() {
		t.Fatal("unconstrained hull should be all states (total system)")
	}
}

func TestBuchiPrunesNonRecurring(t *testing.T) {
	s := compile(t, branch)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// GF(s=0): state 2 is absorbing and never revisits 0
	fc := &fair.Constraints{}
	fc.AddPositiveStateSubset("gf0", sv.Eq(0))
	r := FairStates(s, fc, sv.Domain())
	want := m.Or(sv.Eq(0), sv.Eq(1))
	if r.Fair != want {
		t.Fatalf("Büchi hull wrong")
	}
	// GF(s=2): only the self-loop at 2 qualifies... and states that can
	// reach it stay fair-hull members only if they can revisit 2 — all
	// of 0,1 can reach 2, and 2 loops, so the hull is everything.
	fc2 := &fair.Constraints{}
	fc2.AddPositiveStateSubset("gf2", sv.Eq(2))
	r2 := FairStates(s, fc2, sv.Domain())
	if r2.Fair != sv.Domain() {
		t.Fatal("hull with reachable recurring set should keep feeders")
	}
}

func TestNegativeSubsetExcludesStutter(t *testing.T) {
	s := compile(t, pause)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// Unconstrained: staying at 0 forever is an infinite path.
	// With the negative constraint "may not stay in {0} forever",
	// the fair hull is still {0,1} (the alternating cycle is fair),
	// but EG restricted to {0} becomes empty.
	fc := &fair.Constraints{}
	fc.AddNegativeStateSubset(m, "no-stutter", sv.Eq(0))
	r := FairStates(s, fc, sv.Domain())
	if r.Fair != sv.Domain() {
		t.Fatal("alternating cycle should remain fair")
	}
	rOnly0 := FairStates(s, fc, sv.Eq(0))
	if rOnly0.Fair != bdd.False {
		t.Fatal("staying in 0 forever must be excluded by the negative constraint")
	}
}

func TestStreettPrunesUnfairSCC(t *testing.T) {
	s := compile(t, branch)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// GF(s=2) → GF(s=0): the self-loop at 2 visits L forever, never U.
	fc := &fair.Constraints{}
	fc.AddStreett("pair", sv.Eq(2), sv.Eq(0))
	r := FairStates(s, fc, sv.Domain())
	want := m.Or(sv.Eq(0), sv.Eq(1))
	if r.Fair != want {
		t.Fatal("Streett pruning failed to remove the unfair absorbing loop")
	}
}

func TestStreettVacuouslyFair(t *testing.T) {
	s := compile(t, counter4)
	sv := s.N.VarByName("s")
	// L never intersects the cycle (L = invalid region is empty) —
	// constraint vacuous, hull unchanged.
	fc := &fair.Constraints{}
	fc.AddStreett("vacuous", bdd.False, sv.Eq(0))
	r := FairStates(s, fc, sv.Domain())
	if r.Fair != sv.Domain() {
		t.Fatal("vacuous Streett pair pruned states")
	}
}

func TestEdgeBuchi(t *testing.T) {
	s := compile(t, branch)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// fair edge: the transition 1→0. The absorbing state 2 can never
	// take it again.
	edge := m.And(sv.Eq(1), s.SwapRails(sv.Eq(0)))
	fc := &fair.Constraints{}
	fc.AddPositiveFairEdges("e10", edge)
	r := FairStates(s, fc, sv.Domain())
	want := m.Or(sv.Eq(0), sv.Eq(1))
	if r.Fair != want {
		t.Fatal("edge-Büchi hull wrong")
	}
}

func TestEdgeStreett(t *testing.T) {
	s := compile(t, branch)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// GF(edge 2→2) → GF(edge 1→0): taking the self-loop forever is
	// unfair; the 0↔1 cycle never takes 2→2 so it is fair.
	loop22 := m.And(sv.Eq(2), s.SwapRails(sv.Eq(2)))
	e10 := m.And(sv.Eq(1), s.SwapRails(sv.Eq(0)))
	fc := &fair.Constraints{}
	fc.AddEdgeStreett("pair", loop22, e10)
	r := FairStates(s, fc, sv.Domain())
	want := m.Or(sv.Eq(0), sv.Eq(1))
	if r.Fair != want {
		t.Fatal("edge-Streett hull wrong")
	}
}

func TestCheckEndToEnd(t *testing.T) {
	s := compile(t, branch)
	m := s.Manager()
	sv := s.N.VarByName("s")
	// no fairness: nonempty (system has infinite runs)
	reached, hull, _ := Check(s, nil)
	if reached != sv.Domain() {
		t.Fatal("reached set wrong")
	}
	if hull == bdd.False {
		t.Fatal("unconstrained language cannot be empty")
	}
	// impossible fairness: GF(False)
	fc := &fair.Constraints{}
	fc.AddPositiveStateSubset("never", bdd.False)
	_, hull, _ = Check(s, fc)
	if hull != bdd.False {
		t.Fatal("GF(False) must empty the language")
	}
	_ = m
}

func TestEarlyFairnessFailure(t *testing.T) {
	s := compile(t, branch)
	m := s.Manager()
	sv := s.N.VarByName("s")
	fc := &fair.Constraints{}
	fc.AddPositiveStateSubset("gf2", sv.Eq(2))
	// subset {2} alone already contains a fair cycle
	if !EarlyFairnessFailure(s, fc, sv.Eq(2)) {
		t.Fatal("fair self-loop should be detected in the subset")
	}
	// subset {0,1} contains a cycle but it never visits 2
	if EarlyFairnessFailure(s, fc, m.Or(sv.Eq(0), sv.Eq(1))) {
		t.Fatal("no fair cycle inside {0,1} under GF(2)")
	}
}

func TestFairStatesIterationsReported(t *testing.T) {
	s := compile(t, branch)
	sv := s.N.VarByName("s")
	fc := &fair.Constraints{}
	fc.AddStreett("pair", sv.Eq(2), sv.Eq(0))
	r := FairStates(s, fc, sv.Domain())
	if r.Iterations < 2 {
		t.Fatalf("expected at least 2 hull iterations, got %d", r.Iterations)
	}
}

// Hull properties: the fair hull is contained in the unconstrained EG
// hull, and adding constraints only shrinks it (monotonicity).
func TestHullMonotonicity(t *testing.T) {
	s := compile(t, branch)
	sv := s.N.VarByName("s")
	m := s.Manager()

	unconstrained := FairStates(s, nil, sv.Domain()).Fair

	fc1 := &fair.Constraints{}
	fc1.AddPositiveStateSubset("gf0", sv.Eq(0))
	h1 := FairStates(s, fc1, sv.Domain()).Fair

	fc2 := fc1.Clone()
	fc2.AddPositiveStateSubset("gf1", sv.Eq(1))
	h2 := FairStates(s, fc2, sv.Domain()).Fair

	if !m.Leq(h1, unconstrained) {
		t.Fatal("constrained hull escaped the EG hull")
	}
	if !m.Leq(h2, h1) {
		t.Fatal("more constraints must shrink the hull")
	}
}

func TestHullRestrictionMonotone(t *testing.T) {
	s := compile(t, counter4)
	sv := s.N.VarByName("s")
	m := s.Manager()
	full := FairStates(s, nil, sv.Domain()).Fair
	// restricting to {0,1} breaks the 4-cycle: no cycle remains
	part := FairStates(s, nil, m.Or(sv.Eq(0), sv.Eq(1))).Fair
	if part != bdd.False {
		t.Fatal("no cycle exists inside {0,1}")
	}
	if !m.Leq(part, full) {
		t.Fatal("restriction monotonicity violated")
	}
}

// The hull must contain every genuine fair cycle (completeness witness).
func TestHullContainsKnownFairCycle(t *testing.T) {
	s := compile(t, branch)
	sv := s.N.VarByName("s")
	m := s.Manager()
	fc := &fair.Constraints{}
	fc.AddPositiveStateSubset("gf0", sv.Eq(0))
	fc.AddPositiveStateSubset("gf1", sv.Eq(1))
	hull := FairStates(s, fc, sv.Domain()).Fair
	cyc := m.Or(sv.Eq(0), sv.Eq(1)) // the 0↔1 cycle satisfies both
	if !m.Leq(cyc, hull) {
		t.Fatal("hull lost a genuine fair cycle")
	}
}

func TestMixedConstraintKinds(t *testing.T) {
	s := compile(t, branch)
	sv := s.N.VarByName("s")
	m := s.Manager()
	// mix: Büchi state + edge Streett, satisfied only by the 0↔1 cycle
	fc := &fair.Constraints{}
	fc.AddPositiveStateSubset("gf1", sv.Eq(1))
	fc.AddEdgeStreett("es",
		m.And(sv.Eq(1), s.SwapRails(sv.Eq(2))), // if 1→2 taken infinitely...
		bdd.False)                              // ...then impossible — forbids 1→2 recurring
	hull := FairStates(s, fc, sv.Domain()).Fair
	want := m.Or(sv.Eq(0), sv.Eq(1))
	if hull != want {
		t.Fatal("mixed constraints hull wrong")
	}
}
