// Package quant solves the early quantification problem (paper §4): given
// a set of BDD conjuncts and a set of variables to existentially
// quantify, find a schedule of pairwise multiplications and
// quantifications that keeps intermediate products small. A variable can
// be quantified out of a partial product as soon as no *other* remaining
// conjunct depends on it.
//
// Two scheduling heuristics are provided, mirroring the "two different
// packages for this problem" the paper mentions (ref [14]):
//
//   - MinWidth: bucket-elimination style. Repeatedly eliminate the
//     quantifiable variable whose conjunct cluster has the smallest
//     combined support, conjoin that cluster, and quantify every
//     variable local to it.
//   - Linear: order the conjuncts, sweep left to right keeping one
//     running product, and quantify each variable at its last
//     occurrence (the classic linear "IWLS-95" style schedule).
package quant

import (
	"sort"

	"hsis/internal/bdd"
)

// Conjunct pairs a BDD with its support (BDD variable IDs). Support may
// be computed by bdd.Manager.Support or supplied structurally (cheaper
// and the common case for relation BDDs whose columns are known).
type Conjunct struct {
	F       bdd.Ref
	Support []int
}

// Heuristic selects the scheduling strategy.
type Heuristic int

const (
	// MinWidth eliminates the variable with the smallest cluster width.
	MinWidth Heuristic = iota
	// Linear sweeps the conjuncts in order with one running product.
	Linear
)

func (h Heuristic) String() string {
	switch h {
	case MinWidth:
		return "minwidth"
	case Linear:
		return "linear"
	default:
		return "unknown"
	}
}

// AndExists conjoins all conjuncts and existentially quantifies the
// variables in quantify, using heuristic h to schedule the work. It is
// semantically equivalent to (but usually far cheaper than) building the
// monolithic conjunction and quantifying at the end.
func AndExists(m *bdd.Manager, conjuncts []Conjunct, quantify []int, h Heuristic) bdd.Ref {
	switch h {
	case Linear:
		return linearAndExists(m, conjuncts, quantify)
	default:
		return minWidthAndExists(m, conjuncts, quantify)
	}
}

// Naive builds the full conjunction first and quantifies afterwards. It
// exists as the baseline for Ablation A.
func Naive(m *bdd.Manager, conjuncts []Conjunct, quantify []int) bdd.Ref {
	prod := bdd.True
	for _, c := range conjuncts {
		prod = m.And(prod, c.F)
	}
	return m.Exists(prod, m.Cube(quantify))
}

type cluster struct {
	f       bdd.Ref
	support map[int]bool
	dead    bool
}

func newCluster(c Conjunct) *cluster {
	s := make(map[int]bool, len(c.Support))
	for _, v := range c.Support {
		s[v] = true
	}
	return &cluster{f: c.F, support: s}
}

func minWidthAndExists(m *bdd.Manager, conjuncts []Conjunct, quantify []int) bdd.Ref {
	clusters := make([]*cluster, 0, len(conjuncts))
	for _, c := range conjuncts {
		clusters = append(clusters, newCluster(c))
	}
	qset := make(map[int]bool, len(quantify))
	for _, v := range quantify {
		qset[v] = true
	}
	for {
		v, members := pickMinWidthVar(clusters, qset)
		if v < 0 {
			break
		}
		merged := mergeCluster(m, clusters, members, qset)
		clusters = append(clusters, merged)
	}
	// Conjoin survivors (no quantifiable variables remain in any).
	res := bdd.True
	for _, c := range clusters {
		if !c.dead {
			res = m.And(res, c.f)
		}
	}
	return res
}

// pickMinWidthVar returns the quantifiable variable whose cluster of
// live conjuncts has the smallest combined support, with its member
// indices; (-1, nil) when no quantifiable variable occurs anywhere.
func pickMinWidthVar(clusters []*cluster, qset map[int]bool) (int, []int) {
	occ := make(map[int][]int) // var -> cluster indices
	for i, c := range clusters {
		if c.dead {
			continue
		}
		for v := range c.support {
			if qset[v] {
				occ[v] = append(occ[v], i)
			}
		}
	}
	bestVar, bestWidth := -1, int(^uint(0)>>1)
	var bestMembers []int
	vars := make([]int, 0, len(occ))
	for v := range occ {
		vars = append(vars, v)
	}
	sort.Ints(vars) // deterministic tie-breaking
	for _, v := range vars {
		width := clusterWidth(clusters, occ[v])
		if width < bestWidth {
			bestVar, bestWidth, bestMembers = v, width, occ[v]
		}
	}
	return bestVar, bestMembers
}

func clusterWidth(clusters []*cluster, members []int) int {
	union := make(map[int]bool)
	for _, i := range members {
		for v := range clusters[i].support {
			union[v] = true
		}
	}
	return len(union)
}

// mergeCluster conjoins the member clusters and quantifies out every
// quantifiable variable that occurs in no other live cluster.
func mergeCluster(m *bdd.Manager, clusters []*cluster, members []int, qset map[int]bool) *cluster {
	support := make(map[int]bool)
	for _, i := range members {
		for v := range clusters[i].support {
			support[v] = true
		}
	}
	// Find variables local to this merge.
	var local []int
	for v := range support {
		if !qset[v] {
			continue
		}
		external := false
		for j, c := range clusters {
			if c.dead || isMember(members, j) {
				continue
			}
			if c.support[v] {
				external = true
				break
			}
		}
		if !external {
			local = append(local, v)
		}
	}
	sort.Ints(local)
	cube := m.Cube(local)
	// Multiply members smallest-support-first, fusing the final AND with
	// the quantification.
	ordered := append([]int(nil), members...)
	sort.Slice(ordered, func(a, b int) bool {
		sa, sb := len(clusters[ordered[a]].support), len(clusters[ordered[b]].support)
		if sa != sb {
			return sa < sb
		}
		return ordered[a] < ordered[b]
	})
	prod := bdd.True
	for k, i := range ordered {
		c := clusters[i]
		c.dead = true
		if k == len(ordered)-1 {
			prod = m.AndExists(prod, c.f, cube)
		} else {
			prod = m.And(prod, c.f)
		}
	}
	if len(ordered) == 0 {
		prod = m.Exists(prod, cube)
	}
	for _, v := range local {
		delete(support, v)
	}
	return &cluster{f: prod, support: support}
}

func isMember(members []int, j int) bool {
	for _, i := range members {
		if i == j {
			return true
		}
	}
	return false
}

func linearAndExists(m *bdd.Manager, conjuncts []Conjunct, quantify []int) bdd.Ref {
	qset := make(map[int]bool, len(quantify))
	for _, v := range quantify {
		qset[v] = true
	}
	// last occurrence index of each quantifiable variable
	last := make(map[int]int)
	for i, c := range conjuncts {
		for _, v := range c.Support {
			if qset[v] {
				last[v] = i
			}
		}
	}
	prod := bdd.True
	for i, c := range conjuncts {
		var dying []int
		for _, v := range c.Support {
			if qset[v] && last[v] == i {
				dying = append(dying, v)
			}
		}
		sort.Ints(dying)
		prod = m.AndExists(prod, c.F, m.Cube(dying))
	}
	// Quantifiable variables that occur nowhere are vacuous; those that
	// occur are gone. Variables in quantify but absent from all supports
	// need no action.
	return prod
}

// SupportsOf computes the BDD support of each conjunct, for callers that
// do not know it structurally.
func SupportsOf(m *bdd.Manager, fs []bdd.Ref) []Conjunct {
	out := make([]Conjunct, len(fs))
	for i, f := range fs {
		out[i] = Conjunct{F: f, Support: m.Support(f)}
	}
	return out
}
