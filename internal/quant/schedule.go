package quant

import (
	"fmt"
	"sort"
	"strings"

	"hsis/internal/bdd"
)

// Step is one entry of an early-quantification schedule: conjoin the
// given operands (indices into the original conjunct list for inputs,
// or earlier step results), then existentially quantify the listed
// variables out of the partial product.
type Step struct {
	// Inputs are original conjunct indices consumed by this step.
	Inputs []int
	// PrevSteps are earlier step indices whose results are consumed.
	PrevSteps []int
	// Quantify lists the BDD variables eliminated after the product.
	Quantify []int
	// Width is the predicted support size of the step's result.
	Width int
}

// Schedule is a complete multiply-and-quantify plan, computed purely
// from the conjuncts' supports — the artifact the paper's heuristic
// procedures produce ("an automatic procedure that gives a schedule of
// how to multiply and quantify out variables").
type Schedule struct {
	Heuristic Heuristic
	Steps     []Step
	// MaxWidth is the largest predicted intermediate support.
	MaxWidth int
	// Final lists the operands of the final conjunction: original
	// conjunct indices (Inputs) and step indices (PrevSteps) that
	// survive with no quantifiable variables.
	Final Step
}

// String renders a compact description of the plan.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule(%s): %d steps, max width %d\n", s.Heuristic, len(s.Steps), s.MaxWidth)
	for i, st := range s.Steps {
		fmt.Fprintf(&sb, "  step %d: conjuncts %v + steps %v, quantify %v (width %d)\n",
			i, st.Inputs, st.PrevSteps, st.Quantify, st.Width)
	}
	fmt.Fprintf(&sb, "  final: conjuncts %v + steps %v\n", s.Final.Inputs, s.Final.PrevSteps)
	return sb.String()
}

// planItem tracks one live operand during planning.
type planItem struct {
	conjunct int // original index, or -1
	step     int // producing step index, or -1
	support  map[int]bool
	dead     bool
}

// Plan computes an early-quantification schedule from supports alone.
func Plan(conjuncts []Conjunct, quantify []int, h Heuristic) *Schedule {
	switch h {
	case Linear:
		return planLinear(conjuncts, quantify)
	default:
		return planMinWidth(conjuncts, quantify)
	}
}

func planMinWidth(conjuncts []Conjunct, quantify []int) *Schedule {
	sched := &Schedule{Heuristic: MinWidth}
	items := make([]*planItem, 0, len(conjuncts))
	for i, c := range conjuncts {
		sup := make(map[int]bool, len(c.Support))
		for _, v := range c.Support {
			sup[v] = true
		}
		items = append(items, &planItem{conjunct: i, step: -1, support: sup})
	}
	qset := make(map[int]bool, len(quantify))
	for _, v := range quantify {
		qset[v] = true
	}
	for {
		v, members := pickMinWidthItem(items, qset)
		if v < 0 {
			break
		}
		// merge members, quantify locals
		support := map[int]bool{}
		var st Step
		for _, i := range members {
			it := items[i]
			it.dead = true
			if it.conjunct >= 0 {
				st.Inputs = append(st.Inputs, it.conjunct)
			} else {
				st.PrevSteps = append(st.PrevSteps, it.step)
			}
			for w := range it.support {
				support[w] = true
			}
		}
		for w := range support {
			if !qset[w] {
				continue
			}
			external := false
			for j, it := range items {
				if it.dead || isMember(members, j) {
					continue
				}
				if it.support[w] {
					external = true
					break
				}
			}
			if !external {
				st.Quantify = append(st.Quantify, w)
			}
		}
		sort.Ints(st.Quantify)
		sort.Ints(st.Inputs)
		sort.Ints(st.PrevSteps)
		if w := len(support); w > sched.MaxWidth {
			sched.MaxWidth = w
		}
		for _, w := range st.Quantify {
			delete(support, w)
		}
		st.Width = len(support)
		items = append(items, &planItem{conjunct: -1, step: len(sched.Steps), support: support})
		sched.Steps = append(sched.Steps, st)
	}
	for _, it := range items {
		if it.dead {
			continue
		}
		if it.conjunct >= 0 {
			sched.Final.Inputs = append(sched.Final.Inputs, it.conjunct)
		} else {
			sched.Final.PrevSteps = append(sched.Final.PrevSteps, it.step)
		}
	}
	sort.Ints(sched.Final.Inputs)
	sort.Ints(sched.Final.PrevSteps)
	return sched
}

// pickMinWidthItem mirrors pickMinWidthVar over plan items.
func pickMinWidthItem(items []*planItem, qset map[int]bool) (int, []int) {
	occ := map[int][]int{}
	for i, it := range items {
		if it.dead {
			continue
		}
		for v := range it.support {
			if qset[v] {
				occ[v] = append(occ[v], i)
			}
		}
	}
	bestVar, bestWidth := -1, int(^uint(0)>>1)
	var bestMembers []int
	vars := make([]int, 0, len(occ))
	for v := range occ {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		union := map[int]bool{}
		for _, i := range occ[v] {
			for w := range items[i].support {
				union[w] = true
			}
		}
		if len(union) < bestWidth {
			bestVar, bestWidth, bestMembers = v, len(union), occ[v]
		}
	}
	return bestVar, bestMembers
}

func planLinear(conjuncts []Conjunct, quantify []int) *Schedule {
	sched := &Schedule{Heuristic: Linear}
	qset := make(map[int]bool, len(quantify))
	for _, v := range quantify {
		qset[v] = true
	}
	last := map[int]int{}
	for i, c := range conjuncts {
		for _, v := range c.Support {
			if qset[v] {
				last[v] = i
			}
		}
	}
	running := map[int]bool{}
	for i, c := range conjuncts {
		st := Step{Inputs: []int{i}}
		if i > 0 {
			st.PrevSteps = []int{i - 1}
		}
		for _, v := range c.Support {
			running[v] = true
		}
		if w := len(running); w > sched.MaxWidth {
			sched.MaxWidth = w
		}
		for _, v := range c.Support {
			if qset[v] && last[v] == i {
				st.Quantify = append(st.Quantify, v)
			}
		}
		sort.Ints(st.Quantify)
		for _, v := range st.Quantify {
			delete(running, v)
		}
		st.Width = len(running)
		sched.Steps = append(sched.Steps, st)
	}
	if n := len(conjuncts); n > 0 {
		sched.Final.PrevSteps = []int{n - 1}
	}
	return sched
}

// Execute runs a schedule against the actual BDDs. For schedules from
// Plan over the same conjunct list, Execute(Plan(...)) computes the
// same function as AndExists.
//
// When the manager is in parallel mode the steps run wave by wave:
// every step whose PrevSteps producers have already finished is
// independent of the other ready steps, so one wave's conjunctions
// execute concurrently on the manager's worker pool. Canonicity makes
// the result identical to the sequential order.
func Execute(m *bdd.Manager, conjuncts []Conjunct, sched *Schedule) bdd.Ref {
	results := make([]bdd.Ref, len(sched.Steps))
	runStep := func(st Step) bdd.Ref {
		// multiply smallest-first to keep intermediates small
		var ops []bdd.Ref
		for _, i := range st.Inputs {
			ops = append(ops, conjuncts[i].F)
		}
		for _, s := range st.PrevSteps {
			ops = append(ops, results[s])
		}
		sort.Slice(ops, func(a, b int) bool { return ops[a] < ops[b] })
		cube := m.Cube(st.Quantify)
		prod := bdd.True
		for k, f := range ops {
			if k == len(ops)-1 {
				prod = m.AndExists(prod, f, cube)
			} else {
				prod = m.And(prod, f)
			}
		}
		if len(ops) == 0 {
			prod = m.Exists(prod, cube)
		}
		return prod
	}
	if m.Workers() > 1 && len(sched.Steps) > 1 {
		for _, wave := range stepWaves(sched.Steps) {
			tasks := make([]func(), len(wave))
			for k, idx := range wave {
				idx := idx
				tasks[k] = func() { results[idx] = runStep(sched.Steps[idx]) }
			}
			m.ParallelDo(tasks...)
		}
	} else {
		for i, st := range sched.Steps {
			results[i] = runStep(st)
		}
	}
	return runStep(sched.Final)
}

// stepWaves partitions step indices into dependency waves: wave 0 holds
// steps consuming original conjuncts only, and wave d holds steps whose
// deepest PrevSteps producer sits in wave d-1. Steps inside one wave
// never consume each other's results, so they may run concurrently.
func stepWaves(steps []Step) [][]int {
	depth := make([]int, len(steps))
	var waves [][]int
	for i, st := range steps {
		d := 0
		for _, p := range st.PrevSteps {
			if depth[p] >= d {
				d = depth[p] + 1
			}
		}
		depth[i] = d
		if d == len(waves) {
			waves = append(waves, nil)
		}
		waves[d] = append(waves[d], i)
	}
	return waves
}
