package quant

import (
	"testing"

	"hsis/internal/bdd"
)

// TestCompiledPlanSurvivesReorder pins the reorder-safety of precompiled
// quantification schedules: a plan is keyed on variable IDs and retains
// its cluster refs, so after an adjacent-level reorder session it must
// replay to the exact same canonical result as before.
func TestCompiledPlanSurvivesReorder(t *testing.T) {
	m := bdd.New()
	v := m.NewVars(6)
	conjs := []Conjunct{
		{F: m.Or(m.And(v[0], v[2]), v[4]), Support: []int{0, 2, 4}},
		{F: m.Equiv(v[1], m.And(v[2], v[5])), Support: []int{1, 2, 5}},
		{F: m.Or(v[3], m.Not(v[5])), Support: []int{3, 5}},
	}
	clusters := Clusters(m, conjs, []int{4, 5}, 0)
	for _, c := range clusters {
		m.IncRef(c.F)
	}
	plan := Compile(m, clusters, []int{0, 1}, []int{2, 3, 4, 5})
	plan.Retain(m)

	seed := m.IncRef(m.And(v[0], m.Not(v[1])))
	before := m.IncRef(plan.Run(m, seed))

	s := m.StartReorder()
	for _, l := range []int{0, 2, 4, 1, 3, 0} {
		s.Swap(l)
	}
	s.Close()

	if after := plan.Run(m, seed); after != before {
		t.Fatalf("compiled plan changed its result across a reorder: %d != %d", after, before)
	}
	// And again after a full sweep back, interleaved with a GC.
	m.GC()
	if after := plan.Run(m, seed); after != before {
		t.Fatalf("compiled plan changed its result after reorder+GC: %d != %d", after, before)
	}
}
