package quant

// Conjunction clustering and precompiled quantification schedules
// (IWLS95 style): instead of re-deriving an early-quantification
// schedule on every image computation, the per-table conjuncts are
// greedily merged once into clusters bounded by a BDD-size threshold,
// and a linear multiply-and-quantify plan over those clusters is
// compiled once per direction (image/preimage). Image computation then
// becomes pure replay: one AndExists per cluster with a precomputed
// cube.

import (
	"sort"

	"hsis/internal/bdd"
	"hsis/internal/telemetry"
)

// DefaultClusterLimit bounds the BDD size of one merged cluster when the
// caller passes no explicit limit.
const DefaultClusterLimit = 5000

// Clusters greedily merges conjuncts into clusters whose BDDs stay under
// limit nodes. The merge order is the consumption order of the MinWidth
// schedule over preQuantify (the variables every later quantification
// will eliminate regardless of direction — the non-state variables, for
// a transition relation). Any preQuantify variable whose occurrences all
// fall inside a single cluster is existentially quantified out of that
// cluster right here, so per-image replays never see it again.
func Clusters(m *bdd.Manager, conjuncts []Conjunct, preQuantify []int, limit int) []Conjunct {
	if limit <= 0 {
		limit = DefaultClusterLimit
	}
	if len(conjuncts) == 0 {
		return nil
	}
	order := mergeOrder(conjuncts, preQuantify)

	// Sweep the ordered conjuncts, conjoining while the product stays
	// under the size limit.
	type span struct {
		f          bdd.Ref
		start, end int // inclusive range of order positions
	}
	var spans []span
	cur := span{f: conjuncts[order[0]].F, start: 0, end: 0}
	for pos := 1; pos < len(order); pos++ {
		f := conjuncts[order[pos]].F
		merged := m.And(cur.f, f)
		if m.NodeCount(merged) > limit {
			spans = append(spans, cur)
			cur = span{f: f, start: pos, end: pos}
			continue
		}
		cur.f = merged
		cur.end = pos
	}
	spans = append(spans, cur)

	// First/last occurrence position of every preQuantify variable.
	qset := make(map[int]bool, len(preQuantify))
	for _, v := range preQuantify {
		qset[v] = true
	}
	first := map[int]int{}
	last := map[int]int{}
	for pos, ci := range order {
		for _, v := range conjuncts[ci].Support {
			if !qset[v] {
				continue
			}
			if _, ok := first[v]; !ok {
				first[v] = pos
			}
			last[v] = pos
		}
	}

	out := make([]Conjunct, 0, len(spans))
	for _, sp := range spans {
		sup := map[int]bool{}
		for pos := sp.start; pos <= sp.end; pos++ {
			for _, v := range conjuncts[order[pos]].Support {
				sup[v] = true
			}
		}
		// Variables local to this cluster can be eliminated now.
		var local []int
		for v := range sup {
			if qset[v] && first[v] >= sp.start && last[v] <= sp.end {
				local = append(local, v)
			}
		}
		sort.Ints(local)
		f := sp.f
		if len(local) > 0 {
			f = m.Exists(f, m.Cube(local))
			for _, v := range local {
				delete(sup, v)
			}
		}
		support := make([]int, 0, len(sup))
		for v := range sup {
			support = append(support, v)
		}
		sort.Ints(support)
		out = append(out, Conjunct{F: f, Support: support})
	}
	return out
}

// mergeOrder derives a conjunct order from the MinWidth plan: conjuncts
// appear in the order the schedule consumes them, so conjuncts sharing
// soon-to-die variables end up adjacent and merge into the same cluster.
func mergeOrder(conjuncts []Conjunct, quantify []int) []int {
	sched := planMinWidth(conjuncts, quantify)
	order := make([]int, 0, len(conjuncts))
	seen := make([]bool, len(conjuncts))
	take := func(is []int) {
		for _, i := range is {
			if !seen[i] {
				seen[i] = true
				order = append(order, i)
			}
		}
	}
	for _, st := range sched.Steps {
		take(st.Inputs)
	}
	take(sched.Final.Inputs)
	for i := range conjuncts {
		if !seen[i] {
			order = append(order, i)
		}
	}
	return order
}

// CompiledStep is one replay step of a precompiled plan: conjoin F into
// the running product and existentially quantify Cube in the same pass.
type CompiledStep struct {
	F    bdd.Ref
	Cube bdd.Ref
}

// CompiledPlan is a frozen multiply-and-quantify schedule over clustered
// conjuncts. It is compiled once (per network, per direction) and
// replayed by every image/preimage call; replay performs no scheduling
// work and allocates nothing.
type CompiledPlan struct {
	Steps []CompiledStep
	// Tail quantifies variables that occur in the seed set only (it is
	// bdd.True when the plan has at least one step, since such variables
	// fold into the first step's cube).
	Tail bdd.Ref
}

// Compile orders the clusters greedily (minimizing the predicted live
// support width after each step, the MinWidth criterion) and assigns
// every quantifiable variable to the step of its last occurrence. The
// seed — the state set a later Run conjoins first — is represented by
// its support alone.
func Compile(m *bdd.Manager, clusters []Conjunct, seedSupport []int, quantify []int) *CompiledPlan {
	plan := &CompiledPlan{Tail: bdd.True}
	qset := make(map[int]bool, len(quantify))
	for _, v := range quantify {
		qset[v] = true
	}
	// How many clusters mention each quantifiable variable.
	occ := map[int]int{}
	for _, c := range clusters {
		for _, v := range c.Support {
			if qset[v] {
				occ[v]++
			}
		}
	}
	running := map[int]bool{}
	for _, v := range seedSupport {
		running[v] = true
	}
	totalNonQuant := 0
	nonQuantSeen := map[int]bool{}
	for _, c := range clusters {
		for _, v := range c.Support {
			if !qset[v] && !nonQuantSeen[v] {
				nonQuantSeen[v] = true
				totalNonQuant++
			}
		}
	}
	remaining := make([]int, len(clusters))
	for i := range clusters {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		// IWLS95 benefit: favor clusters that quantify away a large
		// fraction of their own quantifiable support (vars with no later
		// occurrence die in this step's cube), penalize ones dragging in
		// many unquantifiable (next-rail) variables, and lightly penalize
		// widening the live product.
		best, bestScore := -1, -1e18
		for pos, ci := range remaining {
			var dying, quantSup, nonQuantSup, introduced int
			for _, v := range clusters[ci].Support {
				if !running[v] {
					introduced++
				}
				if qset[v] {
					quantSup++
					if occ[v] == 1 {
						dying++
					}
				} else {
					nonQuantSup++
				}
			}
			score := 0.0
			if quantSup > 0 {
				score += 6 * float64(dying) / float64(quantSup)
			}
			if totalNonQuant > 0 {
				score -= float64(nonQuantSup) / float64(totalNonQuant)
			}
			score -= float64(introduced) / float64(len(running)+introduced+1)
			if score > bestScore {
				best, bestScore = pos, score
			}
		}
		ci := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, v := range clusters[ci].Support {
			running[v] = true
			if qset[v] {
				occ[v]--
			}
		}
		// Everything quantifiable with no future occurrence dies here.
		var dying []int
		for v := range running {
			if qset[v] && occ[v] == 0 {
				dying = append(dying, v)
			}
		}
		sort.Ints(dying)
		for _, v := range dying {
			delete(running, v)
			delete(occ, v)
		}
		plan.Steps = append(plan.Steps, CompiledStep{F: clusters[ci].F, Cube: m.Cube(dying)})
	}
	// Quantifiable variables in the seed that no cluster mentions.
	var leftover []int
	for v := range running {
		if qset[v] {
			leftover = append(leftover, v)
		}
	}
	sort.Ints(leftover)
	if len(leftover) > 0 {
		plan.Tail = m.Cube(leftover)
		if len(plan.Steps) > 0 {
			// Fold into the first step's cube; no separate pass needed.
			first := m.CubeVars(plan.Steps[0].Cube)
			plan.Steps[0].Cube = m.Cube(append(first, leftover...))
			plan.Tail = bdd.True
		}
	}
	return plan
}

// Run replays the plan: conjoin the seed with each step's cluster,
// quantifying that step's cube in the same AndExists pass.
func (p *CompiledPlan) Run(m *bdd.Manager, seed bdd.Ref) bdd.Ref {
	t := m.Telemetry()
	if t == nil {
		r := seed
		for _, st := range p.Steps {
			r = m.AndExists(r, st.F, st.Cube)
		}
		if p.Tail != bdd.True {
			r = m.Exists(r, p.Tail)
		}
		return r
	}
	sp := t.Start("quant.image")
	r := seed
	for i, st := range p.Steps {
		csp := t.Start("quant.cluster")
		r = m.AndExists(r, st.F, st.Cube)
		csp.End(telemetry.Int("step", i+1),
			telemetry.Int("result_nodes", m.NodeCount(r)))
	}
	if p.Tail != bdd.True {
		r = m.Exists(r, p.Tail)
	}
	sp.End(telemetry.Int("steps", len(p.Steps)),
		telemetry.Int("result_nodes", m.NodeCount(r)))
	return r
}

// Retain IncRefs every BDD the plan holds so it survives garbage
// collections for the lifetime of its owner.
func (p *CompiledPlan) Retain(m *bdd.Manager) {
	for _, st := range p.Steps {
		m.IncRef(st.F)
		m.IncRef(st.Cube)
	}
	m.IncRef(p.Tail)
}

// Release drops the references Retain took, so a superseded plan (e.g.
// one recompiled after a reorder session) can be collected.
func (p *CompiledPlan) Release(m *bdd.Manager) {
	for _, st := range p.Steps {
		m.DecRef(st.F)
		m.DecRef(st.Cube)
	}
	m.DecRef(p.Tail)
}
