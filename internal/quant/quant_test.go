package quant

import (
	"math/rand"
	"strings"
	"testing"

	"hsis/internal/bdd"
)

// randomInstance builds a random conjunction-and-quantify instance that
// resembles transition-relation construction: many small relations over
// overlapping variable sets.
func randomInstance(m *bdd.Manager, rng *rand.Rand, nvars, nconj int) ([]Conjunct, []int) {
	vs := make([]bdd.Ref, nvars)
	for i := range vs {
		if m.NumVars() > i {
			vs[i] = m.Var(i)
		} else {
			vs[i] = m.NewVar()
		}
	}
	conjuncts := make([]Conjunct, nconj)
	for i := range conjuncts {
		k := 2 + rng.Intn(3)
		seen := map[int]bool{}
		f := bdd.False
		var sup []int
		for j := 0; j < k; j++ {
			v := rng.Intn(nvars)
			if seen[v] {
				continue
			}
			seen[v] = true
			sup = append(sup, v)
			lit := vs[v]
			if rng.Intn(2) == 0 {
				lit = m.Not(lit)
			}
			f = m.Or(f, lit)
		}
		if f == bdd.False {
			f = bdd.True
			sup = nil
		}
		conjuncts[i] = Conjunct{F: f, Support: sup}
	}
	var quantify []int
	for v := 0; v < nvars; v++ {
		if rng.Intn(2) == 0 {
			quantify = append(quantify, v)
		}
	}
	return conjuncts, quantify
}

func TestHeuristicsMatchNaive(t *testing.T) {
	m := bdd.New()
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 60; trial++ {
		conjuncts, quantify := randomInstance(m, rng, 10, 12)
		want := Naive(m, conjuncts, quantify)
		for _, h := range []Heuristic{MinWidth, Linear} {
			got := AndExists(m, conjuncts, quantify, h)
			if got != want {
				t.Fatalf("trial %d: %v disagrees with naive", trial, h)
			}
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	m := bdd.New()
	if got := AndExists(m, nil, nil, MinWidth); got != bdd.True {
		t.Fatal("empty conjunction should be True")
	}
	if got := AndExists(m, nil, nil, Linear); got != bdd.True {
		t.Fatal("empty conjunction should be True (linear)")
	}
}

func TestQuantifyAbsentVariable(t *testing.T) {
	m := bdd.New()
	a, b := m.NewVar(), m.NewVar()
	cs := []Conjunct{{F: m.And(a, b), Support: []int{0, 1}}}
	// variable 5 does not exist in any support (create it so Cube works)
	m.NewVars(4)
	got := AndExists(m, cs, []int{5}, MinWidth)
	if got != m.And(a, b) {
		t.Fatal("quantifying an absent variable must be a no-op")
	}
}

func TestContradictionCollapses(t *testing.T) {
	m := bdd.New()
	a := m.NewVar()
	cs := []Conjunct{
		{F: a, Support: []int{0}},
		{F: m.Not(a), Support: []int{0}},
	}
	for _, h := range []Heuristic{MinWidth, Linear} {
		if got := AndExists(m, cs, nil, h); got != bdd.False {
			t.Fatalf("%v: contradiction should be False", h)
		}
	}
}

// The paper's motivating scenario: a chain x0 -x1- x2 -x3- ... where all
// intermediate variables are quantified. Early quantification keeps the
// peak BDD linear in the chain length; the naive approach builds the
// full conjunction first.
func TestChainEliminationKeepsProductsSmall(t *testing.T) {
	m := bdd.New()
	const n = 24
	vs := m.NewVars(n)
	var cs []Conjunct
	for i := 0; i+1 < n; i++ {
		cs = append(cs, Conjunct{F: m.Equiv(vs[i], vs[i+1]), Support: []int{i, i + 1}})
	}
	var quantify []int
	for i := 1; i < n-1; i++ {
		quantify = append(quantify, i)
	}
	got := AndExists(m, cs, quantify, MinWidth)
	want := m.Equiv(vs[0], vs[n-1])
	if got != want {
		t.Fatal("chain elimination wrong result")
	}
	got = AndExists(m, cs, quantify, Linear)
	if got != want {
		t.Fatal("chain elimination wrong result (linear)")
	}
}

func TestSupportsOf(t *testing.T) {
	m := bdd.New()
	vs := m.NewVars(4)
	fs := []bdd.Ref{m.And(vs[0], vs[2]), vs[3]}
	cs := SupportsOf(m, fs)
	if len(cs[0].Support) != 2 || cs[0].Support[0] != 0 || cs[0].Support[1] != 2 {
		t.Fatalf("support[0] = %v", cs[0].Support)
	}
	if len(cs[1].Support) != 1 || cs[1].Support[0] != 3 {
		t.Fatalf("support[1] = %v", cs[1].Support)
	}
}

func TestHeuristicString(t *testing.T) {
	if MinWidth.String() != "minwidth" || Linear.String() != "linear" {
		t.Fatal("Heuristic.String wrong")
	}
	if Heuristic(99).String() != "unknown" {
		t.Fatal("unknown heuristic string wrong")
	}
}

func TestDeterminism(t *testing.T) {
	m := bdd.New()
	rng := rand.New(rand.NewSource(1))
	conjuncts, quantify := randomInstance(m, rng, 12, 15)
	a := AndExists(m, conjuncts, quantify, MinWidth)
	b := AndExists(m, conjuncts, quantify, MinWidth)
	if a != b {
		t.Fatal("MinWidth schedule not deterministic")
	}
}

func TestPlanExecuteMatchesAndExists(t *testing.T) {
	m := bdd.New()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		conjuncts, quantify := randomInstance(m, rng, 10, 12)
		want := Naive(m, conjuncts, quantify)
		for _, h := range []Heuristic{MinWidth, Linear} {
			sched := Plan(conjuncts, quantify, h)
			got := Execute(m, conjuncts, sched)
			if got != want {
				t.Fatalf("trial %d: Execute(Plan(%v)) disagrees with naive", trial, h)
			}
		}
	}
}

func TestPlanChainWidthLinearInLength(t *testing.T) {
	// the chain instance from TestChainElimination: min-width schedules
	// keep every intermediate width at 2 (one live variable pair).
	const n = 24
	conjuncts := make([]Conjunct, 0, n-1)
	for i := 0; i+1 < n; i++ {
		conjuncts = append(conjuncts, Conjunct{F: bdd.True, Support: []int{i, i + 1}})
	}
	var quantify []int
	for i := 1; i < n-1; i++ {
		quantify = append(quantify, i)
	}
	sched := Plan(conjuncts, quantify, MinWidth)
	if sched.MaxWidth > 3 {
		t.Fatalf("chain elimination width = %d, want ≤ 3", sched.MaxWidth)
	}
	// the plan consumes every conjunct exactly once
	used := map[int]int{}
	for _, st := range sched.Steps {
		for _, i := range st.Inputs {
			used[i]++
		}
	}
	for _, i := range sched.Final.Inputs {
		used[i]++
	}
	for i := range conjuncts {
		if used[i] != 1 {
			t.Fatalf("conjunct %d used %d times", i, used[i])
		}
	}
}

func TestPlanStringAndWidths(t *testing.T) {
	conjuncts := []Conjunct{
		{F: bdd.True, Support: []int{0, 1}},
		{F: bdd.True, Support: []int{1, 2}},
	}
	sched := Plan(conjuncts, []int{1}, MinWidth)
	s := sched.String()
	if !strings.Contains(s, "max width 3") {
		t.Fatalf("schedule: %s", s)
	}
	lin := Plan(conjuncts, []int{1}, Linear)
	if lin.MaxWidth != 3 {
		t.Fatalf("linear width = %d", lin.MaxWidth)
	}
}
