package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// disarm resets the process-default scope after a test; tests in this
// package share the default arming point.
func disarm(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { SetDefault(nil) })
}

func TestDisarmedIsNil(t *testing.T) {
	disarm(t)
	if Default() != nil {
		t.Fatal("Default() should be nil before arming")
	}
	if T() != nil {
		t.Fatal("T() should be nil before arming")
	}
	if Enabled() {
		t.Fatal("Enabled() should be false before arming")
	}
}

func TestArmDisarm(t *testing.T) {
	disarm(t)
	var buf bytes.Buffer
	tr := New(&buf)
	Arm(tr)
	if T() != tr {
		t.Fatal("T() should return the armed tracer")
	}
	if got := Disarm(); got != tr {
		t.Fatal("Disarm should return the armed tracer")
	}
	if T() != nil {
		t.Fatal("T() should be nil after Disarm")
	}
}

// TestEmitJSONL checks every emitted line is a valid JSON object with
// "ev" first, "t_us" second, and the caller's fields in call order.
func TestEmitJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	sc := NewScope(tr)
	tr.Emit("test.plain",
		Int("a", 1), I64("b", -2), Str("s", `x"y`), F64("f", 0.5), Bool("yes", true))
	sp := sc.Start("test.span")
	time.Sleep(time.Millisecond)
	sp.End(Int("n", 7))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	var plain map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &plain); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if plain["ev"] != "test.plain" || plain["a"] != 1.0 || plain["b"] != -2.0 ||
		plain["s"] != `x"y` || plain["f"] != 0.5 || plain["yes"] != true {
		t.Fatalf("bad plain event: %v", plain)
	}
	if !strings.HasPrefix(lines[0], `{"ev":"test.plain","t_us":`) {
		t.Fatalf("field order not deterministic: %s", lines[0])
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if span["ev"] != "test.span" || span["n"] != 7.0 {
		t.Fatalf("bad span event: %v", span)
	}
	if e, ok := span["elapsed_us"].(float64); !ok || e < 500 {
		t.Fatalf("span elapsed_us missing or too small: %v", span["elapsed_us"])
	}
	if tr.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", tr.Events())
	}
	if tr.Count("test.plain") != 1 || tr.Count("test.span") != 1 {
		t.Fatal("per-kind counts wrong")
	}
}

func TestZeroSpanEndIsNoop(t *testing.T) {
	var sp Span
	sp.End(Int("x", 1)) // must not panic
}

func TestPublishNodesAndSampler(t *testing.T) {
	disarm(t)
	var buf bytes.Buffer
	tr := New(&buf)
	Arm(tr)
	sc := Default()
	PublishNodes(123, 456)
	if live, peak := LiveNodes(); live != 123 || peak != 456 {
		t.Fatalf("gauges = %d/%d, want 123/456", live, peak)
	}
	// The publication lands in the timeline without emitting an event.
	if got := tr.Events(); got != 0 {
		t.Fatalf("publication should not emit events, got %d", got)
	}
	if s := tr.Samples(); len(s) != 1 || s[0].Live != 123 || s[0].Peak != 456 {
		t.Fatalf("bad timeline: %v", s)
	}
	// The sampler reads the gauges and emits bdd.sample events.
	sc.StartSampler(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for tr.Count("bdd.sample") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sc.StopSampler()
	if tr.Count("bdd.sample") == 0 {
		t.Fatal("sampler emitted no bdd.sample events")
	}
}

// TestScopeIsolation checks two scopes keep separate gauges and sinks —
// the property that lets the daemon trace jobs concurrently.
func TestScopeIsolation(t *testing.T) {
	var buf1, buf2 bytes.Buffer
	sc1 := NewScope(New(&buf1))
	sc2 := NewScope(New(&buf2))
	sc1.PublishNodes(10, 10)
	sc2.PublishNodes(20, 30)
	if live, _ := sc1.LiveNodes(); live != 10 {
		t.Fatalf("scope 1 gauge = %d, want 10", live)
	}
	if live, peak := sc2.LiveNodes(); live != 20 || peak != 30 {
		t.Fatalf("scope 2 gauges = %d/%d, want 20/30", live, peak)
	}
	sc1.Emit("only.one")
	sc1.Close()
	sc2.Close()
	if !strings.Contains(buf1.String(), "only.one") {
		t.Fatal("scope 1 sink missed its event")
	}
	if strings.Contains(buf2.String(), "only.one") {
		t.Fatal("scope 2 sink saw scope 1's event")
	}
}

// TestSamplerCloseRace drives a fast sampler against concurrent
// publications and a racing StopSampler/Close — the shutdown-ordering
// audit from the issue, meaningful under -race.
func TestSamplerCloseRace(t *testing.T) {
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		sc := NewScope(New(&buf))
		sc.PublishNodes(1, 1)
		sc.StartSampler(time.Millisecond)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sc.PublishNodes(j, j)
			}
		}()
		go func() {
			defer wg.Done()
			sc.StopSampler() // concurrent with Close's own StopSampler
		}()
		time.Sleep(time.Millisecond)
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// After Close, the sampler goroutine has exited: no further
		// events can appear.
		n := sc.Tracer().Events()
		time.Sleep(2 * time.Millisecond)
		if got := sc.Tracer().Events(); got != n {
			t.Fatalf("events after Close: %d -> %d", n, got)
		}
	}
}

// TestConcurrentEmit drives the tracer from several goroutines at once
// — the kernel emits from the verification goroutine while the sampler
// ticks — and checks the sink still holds one valid JSON object per line.
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	var wg sync.WaitGroup
	const goroutines, events = 4, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				tr.Emit("conc", Int("g", g), Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*events {
		t.Fatalf("want %d lines, got %d", goroutines*events, len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("corrupt line %q: %v", l, err)
		}
	}
}

func TestSummaryBlocks(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	sc := NewScope(tr)
	sp := sc.Start("phase.a")
	sp.End()
	tr.Emit("phase.b")
	tr.RecordSample(10, 20)
	tr.RecordSample(50, 50)
	tr.RecordSample(30, 50)
	sum := tr.Summary("  stats-block-line\n")
	for _, want := range []string{
		"telemetry summary", "phase.a", "phase.b",
		"node growth", "<- peak", "stats-block-line",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestTimelineCompaction checks long timelines compact to few rows while
// keeping the first, last and peak samples.
func TestTimelineCompaction(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	for i := 0; i < 100; i++ {
		live := int64(i)
		if i == 37 {
			live = 1000 // the peak, off the even grid
		}
		tr.RecordSample(live, 1000)
	}
	tl := tr.Timeline(10)
	if !strings.Contains(tl, "1000") || !strings.Contains(tl, "<- peak") {
		t.Fatalf("timeline lost the peak:\n%s", tl)
	}
	if rows := strings.Count(tl, "\n"); rows > 14 {
		t.Fatalf("timeline not compacted: %d rows", rows)
	}
}

// BenchmarkDisabledSite measures the disabled-path cost contract: an
// instrumentation site behind a nil T() check must cost one atomic load
// and a branch — no allocation, no time syscall.
func BenchmarkDisabledSite(b *testing.B) {
	if Enabled() {
		b.Fatal("telemetry must be disarmed for this benchmark")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t := T(); t != nil {
			t.Emit("never", Int("x", i))
		}
	}
}

// BenchmarkDisabledScopeSite is the same contract for the instance-
// scoped form every kernel/fixpoint site now uses: a nil-scope check
// must stay free.
func BenchmarkDisabledScopeSite(b *testing.B) {
	var sc *Scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sc != nil {
			sc.Emit("never", Int("x", i))
		}
	}
}
