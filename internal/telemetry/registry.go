package telemetry

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"sync"
)

// Registry is a flat collection of named metric families exported as
// Prometheus text exposition (format 0.0.4) and as structured
// snapshots for the JSON metrics surface. Families are registered once
// at server construction; registration panics on a duplicate or
// ill-formed name, so a bad series is a startup failure, not a silent
// scrape gap. Every exported name must match MetricNameRE — the
// `make check` lint asserts the same over the live registry.
//
// Counter and gauge families are function-backed (the server already
// keeps its lifetime counters as atomics; the registry reads them at
// scrape time rather than duplicating state). Histogram families own
// their Histogram values; vector families fan out over one label.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]bool
}

// MetricNameRE is the shape every exported series name must have.
var MetricNameRE = regexp.MustCompile(`^hsis_[a-z_]+$`)

const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

type family struct {
	name  string
	help  string
	kind  string
	label string       // label key for vector families, "" otherwise
	fn    func() int64 // counter/gauge value source

	hmu      sync.RWMutex
	hist     *Histogram            // scalar histogram
	children map[string]*Histogram // label value → histogram (vector)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(f *family) {
	if !MetricNameRE.MatchString(f.name) {
		panic(fmt.Sprintf("telemetry: metric name %q does not match %s", f.name, MetricNameRE))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.names[f.name] = true
	r.fams = append(r.fams, f)
}

// CounterFunc registers a monotonic counter read from fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&family{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers an instantaneous value read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// NewHistogram registers and returns a scalar histogram family. The
// name should end in _seconds: observations are stored in microseconds
// and exposed to Prometheus in seconds.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{name: name}
	r.register(&family{name: name, help: help, kind: kindHist, hist: h})
	return h
}

// HistogramVec is a histogram family fanned out over one label; child
// histograms are created on first use of a label value.
type HistogramVec struct {
	fam *family
}

// NewHistogramVec registers a histogram vector with the given label key.
func (r *Registry) NewHistogramVec(name, help, label string) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHist, label: label,
		children: make(map[string]*Histogram)}
	r.register(f)
	return &HistogramVec{fam: f}
}

// With returns the child histogram for a label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	f := v.fam
	f.hmu.RLock()
	h := f.children[value]
	f.hmu.RUnlock()
	if h != nil {
		return h
	}
	f.hmu.Lock()
	defer f.hmu.Unlock()
	if h = f.children[value]; h == nil {
		h = &Histogram{name: f.name}
		f.children[value] = h
	}
	return h
}

// Names returns every registered family name, sorted — the metrics-name
// lint walks this.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}

// LabeledSnapshot is one (possibly labeled) histogram snapshot, for
// the JSON metrics surface.
type LabeledSnapshot struct {
	HistogramSnapshot
	Label string // label key ("" for scalar families)
	Value string // label value
}

// HistogramSnapshots returns a snapshot of every histogram family,
// scalar families first-registered first, vector children sorted by
// label value.
func (r *Registry) HistogramSnapshots() []LabeledSnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var out []LabeledSnapshot
	for _, f := range fams {
		if f.kind != kindHist {
			continue
		}
		if f.hist != nil {
			out = append(out, LabeledSnapshot{HistogramSnapshot: f.hist.Snapshot()})
			continue
		}
		f.hmu.RLock()
		vals := make([]string, 0, len(f.children))
		for v := range f.children {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		snaps := make([]LabeledSnapshot, 0, len(vals))
		for _, v := range vals {
			snaps = append(snaps, LabeledSnapshot{
				HistogramSnapshot: f.children[v].Snapshot(),
				Label:             f.label, Value: v,
			})
		}
		f.hmu.RUnlock()
		out = append(out, snaps...)
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4: HELP/TYPE headers, cumulative le buckets in seconds
// with a +Inf bucket, and _sum/_count series per histogram.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind...)
		b = append(b, '\n')
		switch f.kind {
		case kindCounter, kindGauge:
			b = append(b, f.name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, f.fn(), 10)
			b = append(b, '\n')
		case kindHist:
			if f.hist != nil {
				b = appendPromHistogram(b, f.name, "", "", f.hist.Snapshot())
				break
			}
			f.hmu.RLock()
			vals := make([]string, 0, len(f.children))
			for v := range f.children {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				b = appendPromHistogram(b, f.name, f.label, v, f.children[v].Snapshot())
			}
			f.hmu.RUnlock()
		}
	}
	_, err := w.Write(b)
	return err
}

// appendPromHistogram renders one histogram's bucket/sum/count series.
// Buckets are collapsed to the non-empty prefix (plus +Inf) to keep the
// exposition compact: trailing empty buckets add no information since
// the series is cumulative.
func appendPromHistogram(b []byte, name, label, value string, s HistogramSnapshot) []byte {
	last := 0
	for i, c := range s.Buckets {
		if c != 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		le := float64(bucketUpperUS(i)) / 1e6
		b = appendPromSeries(b, name, "_bucket", label, value, "le", strconv.FormatFloat(le, 'g', -1, 64))
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = appendPromSeries(b, name, "_bucket", label, value, "le", "+Inf")
	b = strconv.AppendInt(b, s.Count, 10)
	b = append(b, '\n')
	b = appendPromSeries(b, name, "_sum", label, value, "", "")
	b = strconv.AppendFloat(b, float64(s.SumUS)/1e6, 'g', -1, 64)
	b = append(b, '\n')
	b = appendPromSeries(b, name, "_count", label, value, "", "")
	b = strconv.AppendInt(b, s.Count, 10)
	b = append(b, '\n')
	return b
}

// appendPromSeries writes `name_suffix{label="value",k2="v2"} ` up to
// and including the separating space.
func appendPromSeries(b []byte, name, suffix, label, value, k2, v2 string) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if label != "" || k2 != "" {
		b = append(b, '{')
		first := true
		if label != "" {
			b = append(b, label...)
			b = append(b, '=')
			b = strconv.AppendQuote(b, value)
			first = false
		}
		if k2 != "" {
			if !first {
				b = append(b, ',')
			}
			b = append(b, k2...)
			b = append(b, '=')
			b = strconv.AppendQuote(b, v2)
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	return b
}
