package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Scope is one instance of armed observability: an optional JSONL
// tracer, an optional flight recorder, an optional metric set, and the
// live/peak node gauges the kernel publishes into. The daemon builds
// one Scope per job; the CLIs arm one process-default Scope under
// -trace/-stats. A nil *Scope is the disarmed state — instrumentation
// sites check for nil and pay nothing else.
//
// The three sinks are independent: a stats-only run has a MetricSet
// and no tracer; a daemon job always has a Recorder and MetricSet and
// gains a Tracer only when the job asked for one. Sinks are fixed at
// construction (With* builders) — Scope has no post-publication
// mutation, so readers need no synchronization beyond the pointer
// load that found the scope.
type Scope struct {
	tracer *Tracer
	rec    *Recorder
	met    *MetricSet

	// Live/peak node gauges, published by the owning manager's
	// allocator at its adaptation checkpoints and read by the sampler
	// and by end-of-run reporting. Per-scope, so concurrent jobs'
	// kernels never mix their curves.
	gaugeLive atomic.Int64
	gaugePeak atomic.Int64

	// Sampler state; guarded by mu. stop is closed to ask the sampler
	// goroutine to exit, done is closed by the goroutine on exit.
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewScope builds a scope around a tracer (which may be nil for a
// metrics- or recorder-only scope).
func NewScope(t *Tracer) *Scope {
	return &Scope{tracer: t}
}

// WithRecorder attaches a flight recorder and returns the scope.
// Attach sinks before the scope is shared; sinks are immutable after.
func (sc *Scope) WithRecorder(r *Recorder) *Scope {
	sc.rec = r
	return sc
}

// WithMetrics attaches a metric set and returns the scope.
func (sc *Scope) WithMetrics(ms *MetricSet) *Scope {
	sc.met = ms
	return sc
}

// Tracer returns the scope's tracer, or nil.
func (sc *Scope) Tracer() *Tracer {
	if sc == nil {
		return nil
	}
	return sc.tracer
}

// Recorder returns the scope's flight recorder, or nil.
func (sc *Scope) Recorder() *Recorder {
	if sc == nil {
		return nil
	}
	return sc.rec
}

// Metrics returns the scope's metric set, or nil.
func (sc *Scope) Metrics() *MetricSet {
	if sc == nil {
		return nil
	}
	return sc.met
}

// Emit appends one untimed event to every armed sink.
func (sc *Scope) Emit(kind string, fields ...Field) {
	sc.emit(kind, 0, fields)
}

// EmitElapsed appends one timed event (rendered with elapsed_us, fed
// to the kind's histogram) without the Span dance — for sites that
// measured the duration themselves.
func (sc *Scope) EmitElapsed(kind string, elapsed time.Duration, fields ...Field) {
	sc.emit(kind, elapsed, fields)
}

// Start opens a timed span; finish it with Span.End.
func (sc *Scope) Start(kind string) Span {
	return Span{sc: sc, kind: kind, begin: time.Now()}
}

// emit fans one event out to the tracer, the flight recorder, and —
// for timed events — the metric set's histogram for the kind.
func (sc *Scope) emit(kind string, elapsed time.Duration, fields []Field) {
	if sc.met != nil && elapsed > 0 {
		sc.met.observeKind(kind, elapsed)
	}
	if sc.tracer != nil {
		sc.tracer.emit(kind, elapsed, fields)
	}
	if sc.rec != nil {
		sc.rec.record(kind, elapsed, fields)
	}
}

// PublishNodes updates the scope's live/peak node gauges and, when a
// tracer is armed, appends a point to its node-growth timeline. The
// kernel calls this from allocation checkpoints, GC and reorder ends.
func (sc *Scope) PublishNodes(live, peak int) {
	sc.gaugeLive.Store(int64(live))
	sc.gaugePeak.Store(int64(peak))
	if sc.tracer != nil {
		sc.tracer.record(int64(live), int64(peak), false)
	}
}

// LiveNodes returns the gauges' current values.
func (sc *Scope) LiveNodes() (live, peak int64) {
	return sc.gaugeLive.Load(), sc.gaugePeak.Load()
}

// RecordSample forces one timeline sample from the current gauges
// (emitting a bdd.sample event), e.g. at end of run so the timeline's
// last point is the final state.
func (sc *Scope) RecordSample() {
	if sc.tracer == nil {
		return
	}
	sc.tracer.record(sc.gaugeLive.Load(), sc.gaugePeak.Load(), true)
}

// DefaultSampleInterval is the sampler cadence when StartSampler is
// given a non-positive interval.
const DefaultSampleInterval = 100 * time.Millisecond

// StartSampler launches a background goroutine that snapshots the node
// gauges into the tracer's timeline every interval (emitting
// bdd.sample events). No-op without a tracer or when already running.
func (sc *Scope) StartSampler(interval time.Duration) {
	if sc.tracer == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	sc.mu.Lock()
	if sc.stop != nil {
		sc.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	sc.stop, sc.done = stop, done
	sc.mu.Unlock()

	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				live := sc.gaugeLive.Load()
				if live == 0 {
					continue // kernel hasn't published yet
				}
				sc.tracer.record(live, sc.gaugePeak.Load(), true)
			}
		}
	}()
}

// StopSampler stops the background sampler and waits for its goroutine
// to exit, so no sample can race a subsequent Tracer.Close. Safe to
// call when no sampler runs, and safe concurrently with itself.
func (sc *Scope) StopSampler() {
	sc.mu.Lock()
	stop, done := sc.stop, sc.done
	sc.stop, sc.done = nil, nil
	sc.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Close stops the sampler (waiting for it) and closes the tracer, in
// that order — the ordering is what makes Tracer.Close race-free
// against sampler ticks. Returns the tracer's first write error.
func (sc *Scope) Close() error {
	sc.StopSampler()
	if sc.tracer != nil {
		return sc.tracer.Close()
	}
	return nil
}
