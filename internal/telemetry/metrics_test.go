package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.SumUS != 0 {
		t.Fatalf("empty histogram count/sum = %d/%d", s.Count, s.SumUS)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if got := s.QuantileUS(q); got != 0 {
			t.Fatalf("empty histogram q%.2f = %d, want 0", q, got)
		}
	}
	if s.MeanUS() != 0 {
		t.Fatal("empty histogram mean != 0")
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.ObserveUS(100) // bucket 7: [64, 127]
	s := h.Snapshot()
	if s.Count != 1 || s.SumUS != 100 {
		t.Fatalf("count/sum = %d/%d, want 1/100", s.Count, s.SumUS)
	}
	// Every quantile of a single observation reports that observation's
	// bucket upper bound.
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := s.QuantileUS(q); got != 127 {
			t.Fatalf("q%.2f = %d, want 127", q, got)
		}
	}
	if s.MeanUS() != 100 {
		t.Fatalf("mean = %d, want 100", s.MeanUS())
	}
}

// TestHistogramBucketBoundaries pins the log-2 bucketing: 2^k-1 and 2^k
// land in adjacent buckets, 0 and negatives in bucket 0, and huge
// values clamp to the open-ended last bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		us     int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{127, 7}, {128, 8}, {255, 8}, {256, 9},
		{1 << 50, HistogramBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.us); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.us, got, c.bucket)
		}
	}
	// Upper bounds: bucket i holds values up to 2^i - 1.
	var h Histogram
	h.ObserveUS(127)
	if got := h.Snapshot().P50US(); got != 127 {
		t.Fatalf("p50 of a 127µs observation = %d, want 127 (exact boundary)", got)
	}
	var h2 Histogram
	h2.ObserveUS(128)
	if got := h2.Snapshot().P50US(); got != 255 {
		t.Fatalf("p50 of a 128µs observation = %d, want 255", got)
	}
}

func TestHistogramQuantileRanks(t *testing.T) {
	var h Histogram
	// 90 fast observations (bucket 1: ≤1µs), 10 slow (bucket 11: ≤2047µs).
	for i := 0; i < 90; i++ {
		h.ObserveUS(1)
	}
	for i := 0; i < 10; i++ {
		h.ObserveUS(2000)
	}
	s := h.Snapshot()
	if got := s.P50US(); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	// Rank ceil(0.9*100) = 90 is the last fast observation.
	if got := s.P90US(); got != 1 {
		t.Fatalf("p90 = %d, want 1", got)
	}
	if got := s.P99US(); got != 2047 {
		t.Fatalf("p99 = %d, want 2047", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.ObserveUS(10)
	b.ObserveUS(1000)
	b.ObserveUS(1000)
	a.Merge(b.Snapshot())
	s := a.Snapshot()
	if s.Count != 3 || s.SumUS != 2010 {
		t.Fatalf("merged count/sum = %d/%d, want 3/2010", s.Count, s.SumUS)
	}
	a.Merge(HistogramSnapshot{}) // empty merge is a no-op
	if a.Snapshot().Count != 3 {
		t.Fatal("empty merge changed the histogram")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveUS(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

func TestMetricSetKindRouting(t *testing.T) {
	ms := NewMetricSet()
	sc := NewScope(nil).WithMetrics(ms)
	for _, kind := range []string{"reach.iter", "reach.back.iter", "sys.reach.iter",
		"ctl.eu.iter", "emptiness.hull.iter", "lc.bounded.iter"} {
		sc.EmitElapsed(kind, time.Millisecond)
	}
	sc.EmitElapsed("quant.image", time.Millisecond)
	sc.EmitElapsed("bdd.gc", time.Millisecond)
	sc.EmitElapsed("bdd.gc_mark", time.Millisecond)
	sc.EmitElapsed("bdd.reorder_end", time.Millisecond)
	sc.EmitElapsed("quant.cluster", time.Millisecond) // trace-only kind
	sc.Emit("reach.iter")                             // untimed: not an observation
	if got := ms.FixpointIter.Snapshot().Count; got != 6 {
		t.Fatalf("fixpoint iterations = %d, want 6", got)
	}
	if ms.Image.Snapshot().Count != 1 || ms.GCPause.Snapshot().Count != 1 ||
		ms.GCMark.Snapshot().Count != 1 || ms.Reorder.Snapshot().Count != 1 {
		t.Fatal("image/gc/reorder routing wrong")
	}
	snaps := ms.Snapshots()
	if len(snaps) != 5 || snaps[0].Name != "fixpoint_iteration" {
		t.Fatalf("bad snapshots: %+v", snaps)
	}
}

func TestRegistryValidatesNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"queue_depth", "hsis_Queue", "hsis_q1", "hsis-q", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q was accepted", bad)
				}
			}()
			r.GaugeFunc(bad, "", func() int64 { return 0 })
		}()
	}
	r.GaugeFunc("hsis_queue_depth", "ok", func() int64 { return 0 })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration was accepted")
			}
		}()
		r.CounterFunc("hsis_queue_depth", "dup", func() int64 { return 0 })
	}()
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("hsis_jobs_total", "jobs ever", func() int64 { return 42 })
	r.GaugeFunc("hsis_queue_depth", "queued now", func() int64 { return 3 })
	h := r.NewHistogram("hsis_gc_pause_seconds", "gc pauses")
	h.ObserveUS(100)
	h.ObserveUS(5000)
	vec := r.NewHistogramVec("hsis_queue_wait_seconds", "queue wait", "tenant")
	vec.With("acme").ObserveUS(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP hsis_jobs_total jobs ever",
		"# TYPE hsis_jobs_total counter",
		"hsis_jobs_total 42",
		"# TYPE hsis_queue_depth gauge",
		"hsis_queue_depth 3",
		"# TYPE hsis_gc_pause_seconds histogram",
		`hsis_gc_pause_seconds_bucket{le="+Inf"} 2`,
		"hsis_gc_pause_seconds_count 2",
		"hsis_gc_pause_seconds_sum 0.0051",
		`hsis_queue_wait_seconds_bucket{tenant="acme",le="+Inf"} 1`,
		`hsis_queue_wait_seconds_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the le series for the scalar histogram must be
	// non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "hsis_gc_pause_seconds_bucket{le=") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		prev = v
	}
}

// BenchmarkHistogramObserve pins the lock-free observation cost.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveUS(int64(i & 0xffff))
	}
}
