package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// Summary rendering: the end-of-run table the CLIs print in place of the
// bare Statistics dump. It has three blocks — phase timings aggregated
// per event kind, the node-growth timeline, and a caller-supplied
// statistics block (the unified BDD stats formatter; this package cannot
// import the bdd package, so the text is passed in).

// PhaseTable renders the per-kind event aggregation: count and total
// span time per kind, ordered by time spent. Kinds that only emitted
// plain (unspanned) events show a count with a blank time column.
func (t *Tracer) PhaseTable() string {
	rows := t.kinds()
	if len(rows) == 0 {
		return "telemetry: no events recorded\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %10s %12s\n", "event", "count", "total")
	for _, r := range rows {
		total := ""
		if r.Total > 0 {
			total = r.Total.Round(10 * time.Microsecond).String()
		}
		fmt.Fprintf(&sb, "%-24s %10d %12s\n", r.Kind, r.Count, total)
	}
	return sb.String()
}

// Timeline renders the node-growth timeline compacted to at most
// maxRows evenly spaced samples (always keeping the first, the last and
// the peak-live sample). Pass 0 for the default of 12 rows.
func (t *Tracer) Timeline(maxRows int) string {
	if maxRows <= 0 {
		maxRows = 12
	}
	samples := t.Samples()
	if len(samples) == 0 {
		return "telemetry: no node samples recorded\n"
	}
	peakAt := 0
	for i, s := range samples {
		if s.Live > samples[peakAt].Live {
			peakAt = i
		}
	}
	keep := map[int]bool{0: true, len(samples) - 1: true, peakAt: true}
	if len(samples) > maxRows {
		for i := 0; i < maxRows; i++ {
			keep[i*(len(samples)-1)/(maxRows-1)] = true
		}
	} else {
		for i := range samples {
			keep[i] = true
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %12s\n", "time", "live-nodes", "peak-live")
	for i, s := range samples {
		if !keep[i] {
			continue
		}
		mark := ""
		if i == peakAt {
			mark = "  <- peak"
		}
		fmt.Fprintf(&sb, "%-12s %12d %12d%s\n",
			(time.Duration(s.TUs) * time.Microsecond).Round(time.Millisecond).String(),
			s.Live, s.Peak, mark)
	}
	return sb.String()
}

// Summary renders the full end-of-run report: event totals, the phase
// table, the node-growth timeline, and the supplied statistics block
// (cache hit rates etc. from the unified BDD formatter; pass "" when no
// manager is alive).
func (t *Tracer) Summary(statsBlock string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== telemetry summary (%d events, %s) ===\n",
		t.Events(), time.Since(t.start).Round(time.Millisecond))
	sb.WriteString(t.PhaseTable())
	sb.WriteString("--- node growth ---\n")
	sb.WriteString(t.Timeline(0))
	if statsBlock != "" {
		sb.WriteString("--- bdd statistics ---\n")
		sb.WriteString(statsBlock)
		if !strings.HasSuffix(statsBlock, "\n") {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
