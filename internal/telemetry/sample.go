package telemetry

// Live-node gauges and the background sampler live on the Scope (see
// scope.go): the kernel *publishes* its node counts into the owning
// scope's atomics at points where the numbers are coherent (garbage
// collections, the periodic allocation checkpoint, reorder-session
// boundaries), and the sampler goroutine reads only the atomics. That
// keeps live-node sampling race-free under -race without putting a
// lock anywhere near the kernel hot path, and — now that gauges are
// per-scope — keeps concurrent jobs' node curves separate.
//
// The package-level helpers below act on the process-default scope and
// exist for the CLIs and tests; kernel code publishes through the
// manager's own scope.

// PublishNodes records live/peak node counts on the default scope.
// No-op when no default scope is armed.
func PublishNodes(live, peak int) {
	if sc := Default(); sc != nil {
		sc.PublishNodes(live, peak)
	}
}

// LiveNodes returns the default scope's last published live/peak node
// counts (zeros when no default scope is armed).
func LiveNodes() (live, peak int64) {
	if sc := Default(); sc != nil {
		return sc.LiveNodes()
	}
	return 0, 0
}

// RecordSample appends one explicit point to the node-growth timeline
// (without emitting an event) — the CLIs use it to stamp the end-of-run
// state even when the kernel never crossed a publish checkpoint.
func (t *Tracer) RecordSample(live, peak int64) {
	t.record(live, peak, false)
}
