package telemetry

import (
	"sync/atomic"
	"time"
)

// Live-node gauges. The BDD kernel is single-threaded and its Manager
// must never be read from another goroutine, so the kernel *publishes*
// its node counts into these process-wide atomics at points where the
// numbers are coherent (garbage collections, the periodic allocation
// checkpoint, reorder-session boundaries), and the background sampler
// reads only the atomics. That keeps live-node sampling race-free under
// -race without putting a lock anywhere near the kernel hot path.
//
// With several managers alive at once (e.g. cone-of-influence
// sub-workspaces) the gauges track whichever manager published last —
// the one currently doing the work, which is the one worth watching.
var (
	gaugeLive atomic.Int64
	gaugePeak atomic.Int64
)

// PublishNodes records the current and peak live node counts of the
// active BDD manager. Callers guard with Enabled(); the sampled timeline
// also picks the publication up immediately (without emitting an event),
// so GC cliffs appear in the timeline even between sampler ticks.
func PublishNodes(live, peak int) {
	gaugeLive.Store(int64(live))
	gaugePeak.Store(int64(peak))
	if t := T(); t != nil {
		t.record(int64(live), int64(peak), false)
	}
}

// LiveNodes returns the last published live/peak node counts.
func LiveNodes() (live, peak int64) {
	return gaugeLive.Load(), gaugePeak.Load()
}

// RecordSample appends one explicit point to the node-growth timeline
// (without emitting an event) — the CLIs use it to stamp the end-of-run
// state even when the kernel never crossed a publish checkpoint.
func (t *Tracer) RecordSample(live, peak int64) {
	t.record(live, peak, false)
}

// StartSampler launches a background goroutine that appends a timeline
// sample and emits a "bdd.sample" event every interval, reading only the
// published gauges. It is a no-op if a sampler is already running; zero
// published state (no kernel activity yet) is skipped. StopSampler (or
// Close) terminates it.
func (t *Tracer) StartSampler(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t.mu.Lock()
	if t.samplerStop != nil {
		t.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t.samplerStop, t.samplerDone = stop, done
	t.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if live := gaugeLive.Load(); live > 0 {
					t.record(live, gaugePeak.Load(), true)
				}
			}
		}
	}()
}

// StopSampler terminates the background sampler, if one is running, and
// waits for it to exit.
func (t *Tracer) StopSampler() {
	t.mu.Lock()
	stop, done := t.samplerStop, t.samplerDone
	t.samplerStop, t.samplerDone = nil, nil
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
