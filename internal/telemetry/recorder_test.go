package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRecorderKeepsLastEvents(t *testing.T) {
	r := NewRecorder()
	sc := NewScope(nil).WithRecorder(r)
	for i := 0; i < RecorderEvents+10; i++ {
		sc.Emit("ring.ev", Int("i", i))
	}
	if got := r.Total(); got != RecorderEvents+10 {
		t.Fatalf("total = %d, want %d", got, RecorderEvents+10)
	}
	lines := r.Dump()
	if len(lines) != RecorderEvents {
		t.Fatalf("dump has %d lines, want %d", len(lines), RecorderEvents)
	}
	// Oldest surviving event is number 10; newest is the last emitted.
	var first, last map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("first line not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last line not JSON: %v", err)
	}
	if first["i"] != 10.0 {
		t.Fatalf("oldest event i = %v, want 10", first["i"])
	}
	if last["i"] != float64(RecorderEvents+9) {
		t.Fatalf("newest event i = %v, want %d", last["i"], RecorderEvents+9)
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder()
	sc := NewScope(nil).WithRecorder(r)
	sc.Emit("a", Str("k", "v"))
	sc.EmitElapsed("b", 3*time.Millisecond, Int("n", 1))
	lines := r.Dump()
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], `{"ev":"a","t_us":`) {
		t.Fatalf("bad first line: %s", lines[0])
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if ev["elapsed_us"] != 3000.0 || ev["n"] != 1.0 {
		t.Fatalf("timed event lost data: %v", ev)
	}
}

func TestRecorderTruncatesWideEvents(t *testing.T) {
	r := NewRecorder()
	sc := NewScope(nil).WithRecorder(r)
	fields := make([]Field, recorderFields+3)
	for i := range fields {
		fields[i] = Int("f"+itoa(i), i)
	}
	sc.Emit("wide", fields...)
	lines := r.Dump()
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("truncated line not JSON: %v: %s", err, lines[0])
	}
	if ev["fields_dropped"] != 3.0 {
		t.Fatalf("fields_dropped = %v, want 3", ev["fields_dropped"])
	}
}

// TestRecorderSteadyStateAllocs pins the flight-recorder contract: an
// armed recorder-only scope records events without allocating once the
// ring is warm (the fields arrays are preallocated slots).
func TestRecorderSteadyStateAllocs(t *testing.T) {
	r := NewRecorder()
	fields := []Field{Int("a", 1), I64("b", 2)}
	allocs := testing.AllocsPerRun(1000, func() {
		r.record("steady", 0, fields)
	})
	if allocs != 0 {
		t.Fatalf("recorder allocates %v per event, want 0", allocs)
	}
}
