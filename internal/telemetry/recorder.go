package telemetry

import (
	"sync"
	"time"
)

// Flight recorder: a fixed-size ring of the most recent telemetry
// events, kept even when tracing is off, so a failed/timed-out/
// cancelled job can dump its last moments into the job result without
// a re-run under -trace.
//
// The ring is allocation-free in steady state: events are copied into
// preallocated slots (Field is a plain value struct — copying it
// copies string headers, not their bytes), and fields beyond the
// per-event cap are counted but dropped. The cost of an armed recorder
// site is one short mutex hold and a few word copies.

// RecorderEvents is the ring capacity: the last N events survive.
const RecorderEvents = 256

// recorderFields caps the fields kept per event; the taxonomy's widest
// events (bdd.reorder_end) carry 8.
const recorderFields = 8

// RecEvent is one recorded event slot.
type RecEvent struct {
	Kind      string
	TUs       int64 // microseconds since the recorder started
	ElapsedUs int64 // span duration, 0 for plain events
	NFields   int   // fields present (may exceed len(Fields) if truncated)
	Fields    [recorderFields]Field
}

// Recorder is the fixed ring. Safe for concurrent use.
type Recorder struct {
	start time.Time
	mu    sync.Mutex
	ring  [RecorderEvents]RecEvent
	next  int   // next slot to overwrite
	total int64 // events ever recorded
}

// NewRecorder builds an empty flight recorder.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// record copies one event into the ring.
func (r *Recorder) record(kind string, elapsed time.Duration, fields []Field) {
	tus := time.Since(r.start).Microseconds()
	r.mu.Lock()
	ev := &r.ring[r.next]
	ev.Kind = kind
	ev.TUs = tus
	ev.ElapsedUs = elapsed.Microseconds()
	ev.NFields = len(fields)
	n := copy(ev.Fields[:], fields)
	for i := n; i < recorderFields; i++ {
		ev.Fields[i] = Field{}
	}
	r.next = (r.next + 1) % RecorderEvents
	r.total++
	r.mu.Unlock()
}

// Total returns how many events have ever been recorded (not just the
// ones still in the ring).
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump renders the ring's events, oldest first, as canonical JSONL
// lines (same encoding as the tracer, so post-mortem tooling parses
// both). Truncated events gain a "fields_dropped" count.
func (r *Recorder) Dump() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.total)
	if n > RecorderEvents {
		n = RecorderEvents
	}
	out := make([]string, 0, n)
	var buf []byte
	for i := 0; i < n; i++ {
		// Oldest event: when the ring wrapped, it's at next; otherwise
		// the ring starts at slot 0.
		idx := i
		if r.total > RecorderEvents {
			idx = (r.next + i) % RecorderEvents
		}
		ev := &r.ring[idx]
		nf := ev.NFields
		fields := ev.Fields[:]
		if nf <= recorderFields {
			fields = ev.Fields[:nf]
		}
		buf = appendEvent(buf[:0], ev.Kind, ev.TUs, time.Duration(ev.ElapsedUs)*time.Microsecond, fields)
		line := string(buf[:len(buf)-1]) // strip trailing newline
		if nf > recorderFields {
			// Splice a marker before the closing brace.
			line = line[:len(line)-1] + `,"fields_dropped":` + itoa(nf-recorderFields) + "}"
		}
		out = append(out, line)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 && i > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
