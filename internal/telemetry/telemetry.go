// Package telemetry is the process-wide observability substrate of the
// verification stack: an event sink with spans and counters that every
// hot layer (the BDD kernel, the fixpoint drivers, the image pipeline,
// the simulator) reports into, and that is a strict no-op unless armed.
//
// The disabled-path contract is the whole design: instrumentation sites
// guard every emission with
//
//	if t := telemetry.T(); t != nil { ... t.Emit(...) ... }
//
// so a disarmed process pays one atomic pointer load and a predicted
// branch per site — no field construction, no time syscalls, no
// allocation (BenchmarkDisabledSite verifies the cost). The package
// deliberately imports nothing from this repository, so any layer down
// to the BDD kernel may emit without an import cycle.
//
// An armed Tracer appends one JSON object per event to its sink (a
// JSONL trace file under the CLIs' -trace flag), aggregates per-kind
// counts and span durations for the end-of-run summary, and keeps a
// node-growth timeline fed by the kernel's gauge publications and an
// optional background sampler (see sample.go). Event encoding is
// hand-rolled so field order is deterministic: "ev" first, then "t_us",
// then the caller's fields in call order — a trace with its clock
// fields stripped is reproducible run to run, which is what the golden
// trace test pins down.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// active is the process-wide armed tracer; nil means telemetry is off.
var active atomic.Pointer[Tracer]

// T returns the armed tracer, or nil when telemetry is disabled. Every
// instrumentation site starts with this nil check.
func T() *Tracer { return active.Load() }

// Enabled reports whether a tracer is armed.
func Enabled() bool { return active.Load() != nil }

// Arm installs t as the process-wide tracer. Passing nil disarms.
func Arm(t *Tracer) { active.Store(t) }

// Disarm removes and returns the armed tracer (nil if none was armed).
func Disarm() *Tracer { return active.Swap(nil) }

// fieldKind discriminates the value held by a Field.
type fieldKind byte

const (
	fieldInt fieldKind = iota
	fieldStr
	fieldFloat
	fieldBool
)

// Field is one key/value attribute of an event. Construct with Int,
// I64, Str, F64 or Bool; fields are encoded in the order given.
type Field struct {
	Key  string
	kind fieldKind
	i    int64
	s    string
	f    float64
}

// Int builds an integer field.
func Int(k string, v int) Field { return Field{Key: k, kind: fieldInt, i: int64(v)} }

// I64 builds a 64-bit integer field.
func I64(k string, v int64) Field { return Field{Key: k, kind: fieldInt, i: v} }

// Str builds a string field.
func Str(k, v string) Field { return Field{Key: k, kind: fieldStr, s: v} }

// F64 builds a float field (encoded with %g).
func F64(k string, v float64) Field { return Field{Key: k, kind: fieldFloat, f: v} }

// Bool builds a boolean field.
func Bool(k string, v bool) Field {
	f := Field{Key: k, kind: fieldBool}
	if v {
		f.i = 1
	}
	return f
}

// kindStat aggregates one event kind for the summary table.
type kindStat struct {
	count int64
	total time.Duration // accumulated span durations (0 for plain events)
}

// Sample is one point of the node-growth timeline.
type Sample struct {
	TUs  int64 // microseconds since the tracer started
	Live int64 // live BDD nodes at the sample
	Peak int64 // peak live nodes seen so far
}

// Tracer is an armed event sink. All methods are safe for concurrent
// use: the kernel emits from the verification goroutine while the
// background sampler emits from its ticker goroutine.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer // underlying file, when OpenTrace created it
	buf     []byte    // reusable encoding buffer
	events  int64
	agg     map[string]*kindStat
	samples []Sample
	err     error // first sink write error, reported by Close

	samplerStop chan struct{}
	samplerDone chan struct{}
}

// New builds a tracer writing JSONL events to w. The caller owns w; use
// OpenTrace to write to a file the tracer closes itself.
func New(w io.Writer) *Tracer {
	return &Tracer{
		start: time.Now(),
		w:     bufio.NewWriter(w),
		agg:   make(map[string]*kindStat),
	}
}

// OpenTrace creates (truncating) the JSONL trace file at path and
// returns a tracer writing to it. Close flushes and closes the file.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := New(f)
	t.c = f
	return t, nil
}

// Emit appends one event. Fields are encoded after "ev" and "t_us" in
// the order given; keys must be plain identifiers (no escaping is done).
func (t *Tracer) Emit(kind string, fields ...Field) {
	t.emit(kind, 0, fields)
}

// Span is an in-flight timed event, created by Start and finished by
// End. The zero Span is valid and End on it is a no-op, so call sites
// can hold one unconditionally.
type Span struct {
	t     *Tracer
	kind  string
	begin time.Time
}

// Start opens a span of the given kind. End emits the event with an
// elapsed_us field and adds the duration to the kind's summary total.
func (t *Tracer) Start(kind string) Span {
	return Span{t: t, kind: kind, begin: time.Now()}
}

// End finishes the span, emitting its event with the given fields plus
// elapsed_us.
func (sp Span) End(fields ...Field) {
	if sp.t == nil {
		return
	}
	sp.t.emit(sp.kind, time.Since(sp.begin), fields)
}

func (t *Tracer) emit(kind string, elapsed time.Duration, fields []Field) {
	tus := time.Since(t.start).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	st := t.agg[kind]
	if st == nil {
		st = &kindStat{}
		t.agg[kind] = st
	}
	st.count++
	st.total += elapsed

	b := t.buf[:0]
	b = append(b, `{"ev":"`...)
	b = append(b, kind...)
	b = append(b, `","t_us":`...)
	b = strconv.AppendInt(b, tus, 10)
	for _, f := range fields {
		b = append(b, ',', '"')
		b = append(b, f.Key...)
		b = append(b, '"', ':')
		switch f.kind {
		case fieldInt:
			b = strconv.AppendInt(b, f.i, 10)
		case fieldStr:
			b = strconv.AppendQuote(b, f.s)
		case fieldFloat:
			b = strconv.AppendFloat(b, f.f, 'g', -1, 64)
		case fieldBool:
			b = strconv.AppendBool(b, f.i != 0)
		}
	}
	if elapsed > 0 {
		b = append(b, `,"elapsed_us":`...)
		b = strconv.AppendInt(b, elapsed.Microseconds(), 10)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// record appends a node-growth sample (and counts it as a sample event
// when emitEvent is set — the background sampler emits, gauge-driven
// kernel publications only append).
func (t *Tracer) record(live, peak int64, emitEvent bool) {
	tus := time.Since(t.start).Microseconds()
	t.mu.Lock()
	t.samples = append(t.samples, Sample{TUs: tus, Live: live, Peak: peak})
	t.mu.Unlock()
	if emitEvent {
		t.Emit("bdd.sample", I64("live", live), I64("peak_live", peak))
	}
}

// Samples returns a copy of the node-growth timeline.
func (t *Tracer) Samples() []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Sample(nil), t.samples...)
}

// Flush writes buffered events to the sink.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close stops the sampler (if running), flushes the sink and closes the
// trace file when the tracer opened it. It returns the first write
// error seen over the tracer's lifetime. A closed tracer must not be
// armed.
func (t *Tracer) Close() error {
	t.StopSampler()
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		t.c = nil
	}
	return err
}

// kindRow is one line of the summary's per-kind table.
type kindRow struct {
	Kind  string
	Count int64
	Total time.Duration
}

// kinds snapshots the per-kind aggregation, sorted by total duration
// (descending), then count, then name.
func (t *Tracer) kinds() []kindRow {
	t.mu.Lock()
	rows := make([]kindRow, 0, len(t.agg))
	for k, st := range t.agg {
		rows = append(rows, kindRow{Kind: k, Count: st.count, Total: st.total})
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Kind < b.Kind
	})
	return rows
}

// Count returns how many events of the given kind have been emitted.
func (t *Tracer) Count(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.agg[kind]; st != nil {
		return st.count
	}
	return 0
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// String identifies the tracer in shell diagnostics.
func (t *Tracer) String() string {
	return fmt.Sprintf("tracer(%d events)", t.Events())
}
