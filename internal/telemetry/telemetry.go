// Package telemetry is the observability substrate of the verification
// stack: event tracing (JSONL spans and counters), latency histograms,
// a per-job flight recorder, and live-node gauges that every hot layer
// (the BDD kernel, the fixpoint drivers, the image pipeline, the
// simulator) reports into — and that is a strict no-op unless armed.
//
// # Scopes
//
// The unit of arming is the Scope: an instance-scoped bundle of an
// optional Tracer (JSONL sink), an optional flight Recorder, an
// optional MetricSet (latency histograms), and the live-node gauges.
// Every bdd.Manager carries a Scope pointer; instrumentation sites ask
// the manager (not the process) for their sink:
//
//	if sc := m.Telemetry(); sc != nil { ... sc.Emit(...) ... }
//
// so any number of managers — one per daemon job — can be traced
// concurrently without sharing a stream. A process-wide *default*
// scope exists purely as a CLI convenience (one process, one
// verification, `-trace`/`-stats` flags): a manager with no instance
// scope falls back to Default(). The daemon never arms the default
// scope; it hands each job its own.
//
// The disabled-path contract is unchanged from the original design: a
// disarmed site pays one or two atomic pointer loads and a predicted
// branch — no field construction, no time syscalls, no allocation
// (BenchmarkDisabledSite and BenchmarkDisabledScopeSite verify the
// cost). The package deliberately imports nothing from this
// repository, so any layer down to the BDD kernel may emit without an
// import cycle.
//
// An armed Tracer appends one JSON object per event to its sink (a
// JSONL trace file under the CLIs' -trace flag), aggregates per-kind
// counts and span durations for the end-of-run summary, and keeps a
// node-growth timeline fed by the kernel's gauge publications and an
// optional background sampler (see sample.go). Event encoding is
// hand-rolled so field order is deterministic: "ev" first, then "t_us",
// then the caller's fields in call order — a trace with its clock
// fields stripped is reproducible run to run, which is what the golden
// trace test pins down.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// def is the process-default scope; nil means no default observability
// is armed. Instance scopes (one per daemon job) never touch it.
var def atomic.Pointer[Scope]

// Default returns the process-default scope, or nil when none is
// armed. Managers without an instance scope fall back to it.
func Default() *Scope { return def.Load() }

// SetDefault installs sc as the process-default scope (nil disarms)
// and returns the previous default.
func SetDefault(sc *Scope) *Scope { return def.Swap(sc) }

// T returns the default scope's tracer, or nil when no default tracer
// is armed. CLI-era instrumentation and tests use this; kernel sites
// go through Manager.Telemetry instead.
func T() *Tracer {
	if sc := def.Load(); sc != nil {
		return sc.Tracer()
	}
	return nil
}

// Enabled reports whether a default-scope tracer is armed.
func Enabled() bool { return T() != nil }

// Arm installs t as the process-default tracer (wrapped in a fresh
// tracer-only scope). Passing nil disarms the default scope.
func Arm(t *Tracer) {
	if t == nil {
		def.Store(nil)
		return
	}
	def.Store(NewScope(t))
}

// Disarm removes the default scope and returns its tracer (nil if none
// was armed).
func Disarm() *Tracer {
	if sc := def.Swap(nil); sc != nil {
		return sc.Tracer()
	}
	return nil
}

// fieldKind discriminates the value held by a Field.
type fieldKind byte

const (
	fieldInt fieldKind = iota
	fieldStr
	fieldFloat
	fieldBool
)

// Field is one key/value attribute of an event. Construct with Int,
// I64, Str, F64 or Bool; fields are encoded in the order given.
type Field struct {
	Key  string
	kind fieldKind
	i    int64
	s    string
	f    float64
}

// Int builds an integer field.
func Int(k string, v int) Field { return Field{Key: k, kind: fieldInt, i: int64(v)} }

// I64 builds a 64-bit integer field.
func I64(k string, v int64) Field { return Field{Key: k, kind: fieldInt, i: v} }

// Str builds a string field.
func Str(k, v string) Field { return Field{Key: k, kind: fieldStr, s: v} }

// F64 builds a float field (encoded with %g).
func F64(k string, v float64) Field { return Field{Key: k, kind: fieldFloat, f: v} }

// Bool builds a boolean field.
func Bool(k string, v bool) Field {
	f := Field{Key: k, kind: fieldBool}
	if v {
		f.i = 1
	}
	return f
}

// appendEvent encodes one event onto b in the canonical JSONL form:
// "ev" first, "t_us" second, the fields in call order, then
// "elapsed_us" when elapsed > 0. Shared by the tracer sink and the
// flight-recorder dump so both render identical lines.
func appendEvent(b []byte, kind string, tus int64, elapsed time.Duration, fields []Field) []byte {
	b = append(b, `{"ev":"`...)
	b = append(b, kind...)
	b = append(b, `","t_us":`...)
	b = strconv.AppendInt(b, tus, 10)
	for _, f := range fields {
		b = append(b, ',', '"')
		b = append(b, f.Key...)
		b = append(b, '"', ':')
		switch f.kind {
		case fieldInt:
			b = strconv.AppendInt(b, f.i, 10)
		case fieldStr:
			b = strconv.AppendQuote(b, f.s)
		case fieldFloat:
			b = strconv.AppendFloat(b, f.f, 'g', -1, 64)
		case fieldBool:
			b = strconv.AppendBool(b, f.i != 0)
		}
	}
	if elapsed > 0 {
		b = append(b, `,"elapsed_us":`...)
		b = strconv.AppendInt(b, elapsed.Microseconds(), 10)
	}
	b = append(b, '}', '\n')
	return b
}

// kindStat aggregates one event kind for the summary table.
type kindStat struct {
	count int64
	total time.Duration // accumulated span durations (0 for plain events)
}

// Sample is one point of the node-growth timeline.
type Sample struct {
	TUs  int64 // microseconds since the tracer started
	Live int64 // live BDD nodes at the sample
	Peak int64 // peak live nodes seen so far
}

// Tracer is an armed event sink. All methods are safe for concurrent
// use: with per-job scopes several goroutines of one job (the
// verification goroutine, the background sampler) may emit at once.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer // underlying file, when OpenTrace created it
	buf     []byte    // reusable encoding buffer
	events  int64
	agg     map[string]*kindStat
	samples []Sample
	err     error // first sink write error, reported by Close
}

// New builds a tracer writing JSONL events to w. The caller owns w; use
// OpenTrace to write to a file the tracer closes itself.
func New(w io.Writer) *Tracer {
	return &Tracer{
		start: time.Now(),
		w:     bufio.NewWriter(w),
		agg:   make(map[string]*kindStat),
	}
}

// OpenTrace creates (truncating) the JSONL trace file at path and
// returns a tracer writing to it. Close flushes and closes the file.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := New(f)
	t.c = f
	return t, nil
}

// Emit appends one event. Fields are encoded after "ev" and "t_us" in
// the order given; keys must be plain identifiers (no escaping is done).
func (t *Tracer) Emit(kind string, fields ...Field) {
	t.emit(kind, 0, fields)
}

// Span is an in-flight timed event, created by Scope.Start and
// finished by End. The zero Span is valid and End on it is a no-op, so
// call sites can hold one unconditionally.
type Span struct {
	sc    *Scope
	kind  string
	begin time.Time
}

// End finishes the span, emitting its event with the given fields plus
// elapsed_us, and feeding the duration into the scope's histogram for
// the span's kind (when a MetricSet is armed).
func (sp Span) End(fields ...Field) {
	if sp.sc == nil {
		return
	}
	sp.sc.emit(sp.kind, time.Since(sp.begin), fields)
}

func (t *Tracer) emit(kind string, elapsed time.Duration, fields []Field) {
	tus := time.Since(t.start).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	st := t.agg[kind]
	if st == nil {
		st = &kindStat{}
		t.agg[kind] = st
	}
	st.count++
	st.total += elapsed

	b := appendEvent(t.buf[:0], kind, tus, elapsed, fields)
	t.buf = b
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// record appends a node-growth sample (and counts it as a sample event
// when emitEvent is set — the background sampler emits, gauge-driven
// kernel publications only append).
func (t *Tracer) record(live, peak int64, emitEvent bool) {
	tus := time.Since(t.start).Microseconds()
	t.mu.Lock()
	t.samples = append(t.samples, Sample{TUs: tus, Live: live, Peak: peak})
	t.mu.Unlock()
	if emitEvent {
		t.Emit("bdd.sample", I64("live", live), I64("peak_live", peak))
	}
}

// Samples returns a copy of the node-growth timeline.
func (t *Tracer) Samples() []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Sample(nil), t.samples...)
}

// Flush writes buffered events to the sink.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes the sink and closes the trace file when the tracer
// opened it. It returns the first write error seen over the tracer's
// lifetime. A closed tracer must not be armed; a scope whose sampler
// feeds this tracer must StopSampler (or Scope.Close) first.
func (t *Tracer) Close() error {
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		t.c = nil
	}
	return err
}

// kindRow is one line of the summary's per-kind table.
type kindRow struct {
	Kind  string
	Count int64
	Total time.Duration
}

// kinds snapshots the per-kind aggregation, sorted by total duration
// (descending), then count, then name.
func (t *Tracer) kinds() []kindRow {
	t.mu.Lock()
	rows := make([]kindRow, 0, len(t.agg))
	for k, st := range t.agg {
		rows = append(rows, kindRow{Kind: k, Count: st.count, Total: st.total})
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Kind < b.Kind
	})
	return rows
}

// Count returns how many events of the given kind have been emitted.
func (t *Tracer) Count(kind string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.agg[kind]; st != nil {
		return st.count
	}
	return 0
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// String identifies the tracer in shell diagnostics.
func (t *Tracer) String() string {
	return fmt.Sprintf("tracer(%d events)", t.Events())
}
