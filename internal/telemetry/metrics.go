package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Lock-free latency histograms.
//
// A Histogram is a fixed array of atomic bucket counters over
// power-of-two microsecond boundaries: bucket i counts observations v
// with 2^(i-1) <= v < 2^i µs (bucket 0 counts sub-microsecond
// observations, the last bucket is open-ended). Observe is two atomic
// adds and one atomic increment — no locks, no allocation — so the
// kernel can feed GC-pause and iteration timings from hot paths, and
// the server can observe queue waits from every worker concurrently.
// Quantiles are reconstructed from the bucket counts, so a reported
// p99 is exact only up to the bucket width (a factor of two); that
// resolution is the price of lock-freedom and is plenty for the
// operational questions the daemon answers ("did queue wait jump an
// order of magnitude?").

// HistogramBuckets is the number of log-2 buckets; the last bucket
// absorbs everything at or above 2^(HistogramBuckets-2) µs (~9.2 min),
// far beyond the daemon's maximum job timeout.
const HistogramBuckets = 40

// bucketIndex maps a non-negative microsecond value to its bucket:
// the number of significant bits, clamped to the last bucket. 0 → 0,
// 1 → 1, 127 → 7, 128 → 8.
func bucketIndex(us int64) int {
	if us <= 0 {
		return 0
	}
	i := bits.Len64(uint64(us))
	if i >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	return i
}

// bucketUpperUS returns the largest microsecond value bucket i can
// hold: 2^i - 1 (the last bucket reports its lower bound instead,
// being open-ended).
func bucketUpperUS(i int) int64 {
	return int64(1)<<uint(i) - 1
}

// Histogram is a lock-free log-bucketed latency histogram. The zero
// value is ready to use; name it via Registry.NewHistogram or
// NewMetricSet.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [HistogramBuckets]atomic.Int64
}

// Name returns the histogram's registered name ("" for anonymous).
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveUS(d.Microseconds()) }

// ObserveUS records one duration given in microseconds.
func (h *Histogram) ObserveUS(us int64) {
	if us < 0 {
		us = 0
	}
	h.buckets[bucketIndex(us)].Add(1)
	h.sumUS.Add(us)
	h.count.Add(1)
}

// Merge folds a snapshot (e.g. from a finished job's MetricSet) into
// this histogram. Concurrent-safe like Observe.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	for i, c := range s.Buckets {
		if c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.sumUS.Add(s.SumUS)
	h.count.Add(s.Count)
}

// Snapshot captures the histogram's current state. Buckets are read
// individually, so a snapshot taken during concurrent observation may
// be off by in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Name = h.name
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, from which
// quantiles are extracted.
type HistogramSnapshot struct {
	Name    string
	Count   int64
	SumUS   int64
	Buckets [HistogramBuckets]int64
}

// QuantileUS returns the q-quantile (0 < q <= 1) in microseconds: the
// upper bound of the bucket containing the observation of rank
// ceil(q·count). An empty histogram reports 0. The result is an upper
// bound on the true quantile, tight to a factor of two.
func (s HistogramSnapshot) QuantileUS(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i == HistogramBuckets-1 {
				// Open-ended: report the lower bound rather than
				// inventing a ceiling.
				return int64(1) << uint(HistogramBuckets-2)
			}
			return bucketUpperUS(i)
		}
	}
	return bucketUpperUS(HistogramBuckets - 1)
}

// P50US returns the median in microseconds.
func (s HistogramSnapshot) P50US() int64 { return s.QuantileUS(0.50) }

// P90US returns the 90th percentile in microseconds.
func (s HistogramSnapshot) P90US() int64 { return s.QuantileUS(0.90) }

// P99US returns the 99th percentile in microseconds.
func (s HistogramSnapshot) P99US() int64 { return s.QuantileUS(0.99) }

// MeanUS returns the arithmetic mean in microseconds (exact — sums are
// tracked separately from buckets).
func (s HistogramSnapshot) MeanUS() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumUS / s.Count
}

// Gauge is an atomic instantaneous value, for registry exposure of
// quantities that rise and fall (queue depth, running jobs).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MetricSet is the per-scope bundle of kernel/fixpoint latency
// histograms. Scope.emit routes timed events into it by kind, so the
// instrumentation sites in reach/ctl/lc/sys/emptiness/quant/bdd feed
// histograms without knowing they exist. One MetricSet per job in the
// daemon; merged into per-engine registry families when the job ends.
type MetricSet struct {
	FixpointIter Histogram // one frontier extension of any fixpoint driver
	Image        Histogram // one full (clustered or monolithic) image computation
	GCPause      Histogram // the exclusive portion of one kernel garbage collection
	GCMark       Histogram // the concurrent mark phase of one parallel collection
	Reorder      Histogram // one dynamic-reordering session, start to close
}

// NewMetricSet builds a MetricSet with its histograms named.
func NewMetricSet() *MetricSet {
	ms := &MetricSet{}
	ms.FixpointIter.name = "fixpoint_iteration"
	ms.Image.name = "image"
	ms.GCPause.name = "gc_pause"
	ms.GCMark.name = "gc_mark"
	ms.Reorder.name = "reorder_session"
	return ms
}

// observeKind feeds a timed event into the histogram for its kind.
// Kinds not in the routing table (per-cluster sub-steps, sift blocks,
// property-level spans) stay trace-only.
func (ms *MetricSet) observeKind(kind string, d time.Duration) {
	switch kind {
	case "reach.iter", "reach.back.iter", "sys.reach.iter",
		"ctl.eu.iter", "emptiness.hull.iter", "lc.bounded.iter":
		ms.FixpointIter.Observe(d)
	case "quant.image":
		ms.Image.Observe(d)
	case "bdd.gc":
		ms.GCPause.Observe(d)
	case "bdd.gc_mark":
		ms.GCMark.Observe(d)
	case "bdd.reorder_end":
		ms.Reorder.Observe(d)
	}
}

// Snapshots returns the snapshots of all five histograms, in a fixed
// order, including empty ones (callers filter on Count as needed).
func (ms *MetricSet) Snapshots() []HistogramSnapshot {
	return []HistogramSnapshot{
		ms.FixpointIter.Snapshot(),
		ms.Image.Snapshot(),
		ms.GCPause.Snapshot(),
		ms.GCMark.Snapshot(),
		ms.Reorder.Snapshot(),
	}
}
