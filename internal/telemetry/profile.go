package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Opt-in pprof capture behind the CLIs' -profile flag: a CPU profile
// recorded over the whole run and a heap profile snapped at exit, both
// written into one directory so a single flag captures everything
// needed to see where a verification run burns its time and memory.

// StartProfiling begins a CPU profile in dir (created if needed) and
// returns a stop function that ends the CPU profile and writes a heap
// profile. The profiles land in dir/cpu.pprof and dir/heap.pprof.
func StartProfiling(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		err := cpu.Close()
		heap, herr := os.Create(filepath.Join(dir, "heap.pprof"))
		if herr != nil {
			if err == nil {
				err = herr
			}
			return err
		}
		runtime.GC() // get up-to-date allocation statistics
		if werr := pprof.WriteHeapProfile(heap); werr != nil && err == nil {
			err = werr
		}
		if cerr := heap.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}, nil
}
