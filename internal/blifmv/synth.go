package blifmv

import "fmt"

// Nondeterminism locates the sources of non-determinism in a model.
// Paper §4: "A BLIF-MV description with no non-determinism is
// synthesizable" — the synthesis half of the HSIS flow accepts exactly
// the models this reports empty for.
type Nondeterminism struct {
	// Tables lists indices of tables that permit more than one output
	// for some input pattern (or none — an incompletely specified
	// function is not synthesizable as-is either).
	Tables []int
	// MultiResetLatches lists latch outputs with more than one initial
	// value.
	MultiResetLatches []string
	// FreeInputs lists primary inputs (free variables are
	// environmental non-determinism; they do not block synthesis but
	// are reported for completeness).
	FreeInputs []string
}

// IsSynthesizable reports whether the model is deterministic hardware:
// every table is a completely specified function and every latch has a
// single reset value.
func (n *Nondeterminism) IsSynthesizable() bool {
	return len(n.Tables) == 0 && len(n.MultiResetLatches) == 0
}

// String summarizes the findings.
func (n *Nondeterminism) String() string {
	if n.IsSynthesizable() {
		return "deterministic: synthesizable"
	}
	return fmt.Sprintf("non-deterministic: %d tables, %d multi-reset latches",
		len(n.Tables), len(n.MultiResetLatches))
}

// FindNondeterminism analyzes a flat model. Table analysis enumerates
// input patterns, so it is intended for the moderate table sizes the
// front end produces.
func (m *Model) FindNondeterminism() *Nondeterminism {
	out := &Nondeterminism{}
	for ti, t := range m.Tables {
		if !m.tableIsFunction(t) {
			out.Tables = append(out.Tables, ti)
		}
	}
	for _, l := range m.Latches {
		if len(l.Init) > 1 {
			out.MultiResetLatches = append(out.MultiResetLatches, l.Output)
		}
	}
	out.FreeInputs = append(out.FreeInputs, m.Inputs...)
	return out
}

// tableIsFunction checks that every input pattern admits exactly one
// output pattern.
func (m *Model) tableIsFunction(t *Table) bool {
	cards := make([]int, len(t.Inputs))
	for i, in := range t.Inputs {
		cards[i] = m.Var(in).Card
	}
	outCards := make([]int, len(t.Outputs))
	for i, o := range t.Outputs {
		outCards[i] = m.Var(o).Card
	}
	pattern := make([]int, len(t.Inputs))
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(pattern) {
			return m.outputsForPattern(t, pattern, outCards) == 1
		}
		for v := 0; v < cards[i]; v++ {
			pattern[i] = v
			if !walk(i + 1) {
				return false
			}
		}
		return true
	}
	return walk(0)
}

// outputsForPattern counts the distinct permitted output patterns for
// one input pattern.
func (m *Model) outputsForPattern(t *Table, pattern, outCards []int) int {
	matched := false
	count := 0
	outs := make([]int, len(t.Outputs))
	countRows := func(rows []Row) {
		var rec func(i int)
		rec = func(i int) {
			if i == len(outs) {
				for _, r := range rows {
					ok := true
					for c, o := range r.Out {
						if o.EqInput >= 0 {
							if outs[c] != pattern[o.EqInput] {
								ok = false
								break
							}
						} else if !o.Set.Contains(outs[c]) {
							ok = false
							break
						}
					}
					if ok {
						count++
						return // each output pattern counted once
					}
				}
			} else {
				for v := 0; v < outCards[i]; v++ {
					outs[i] = v
					rec(i + 1)
				}
			}
		}
		rec(0)
	}
	var matchingRows []Row
	for _, r := range t.Rows {
		rowMatches := true
		for c, vs := range r.In {
			if !vs.Contains(pattern[c]) {
				rowMatches = false
				break
			}
		}
		if rowMatches {
			matched = true
			matchingRows = append(matchingRows, r)
		}
	}
	if !matched {
		if t.Default == nil {
			return 0
		}
		// default supplies the outputs
		n := 1
		for _, vs := range t.Default {
			if vs.All {
				return 2 // any-value default: non-deterministic unless card 1
			}
			n *= len(vs.Vals)
		}
		return n
	}
	countRows(matchingRows)
	return count
}
